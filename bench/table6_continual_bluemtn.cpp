// Table 6: continual interstitial computing on Blue Mountain
// (32-CPU jobs of 458 s and 3664 s; paper: util .776 -> .942/.939).

#include "common.hpp"

int main() {
  istc::bench::print_preamble(
      "Table 6 — Continual Interstitial Computing on Blue Mountain",
      "Unlimited low-priority 32-CPU streams over the whole log.");
  istc::bench::print_continual_table(istc::cluster::Site::kBlueMountain, 120,
                                     960);
  std::printf(
      "\nPaper: 408,685 / 49,465 interstitial jobs; overall util .776 ->\n"
      ".942/.939 with native util unchanged and median waits rising by\n"
      "about one interstitial runtime (0 -> 0.2k / 0.4k).\n");
  return 0;
}
