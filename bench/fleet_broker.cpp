#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/sweep.hpp"
#include "grid/fleet.hpp"
#include "util/thread_pool.hpp"

/// \file fleet_broker.cpp
/// Fleet-scale federated simulation driver: a global broker routes a
/// competing-project parameter sweep across the paper's three machines
/// plus a synthetic Ross-class variant (DESIGN.md, "Grid / federated
/// simulation").  Prints harvest, native-impact and fairness tables, and
/// enforces two exit-code gates:
///
///   1. determinism — the fleet hash must be bit-identical at 1, 2 and 8
///      shard threads (always enforced);
///   2. speedup — with >= 4 hardware threads, 4 shard threads must beat 1
///      by ISTC_GRID_SPEEDUP_MIN (default 2.0x) on a shard-heavy fleet
///      (skipped, not failed, on narrower hosts such as 1-core CI).

namespace {

using namespace istc;
using bench::artifact_path;

constexpr std::uint64_t kSweepSeed = 0x6121D;

struct SweepConfig {
  std::size_t nprojects;
  std::size_t jobs_each;
  double quota_frac;
};

std::unique_ptr<grid::FleetRun> make_fleet_run(const SweepConfig& sweep,
                                               grid::BrokerPolicy policy,
                                               std::size_t threads) {
  auto fleet = grid::default_fleet();
  int fleet_cpus = 0;
  for (const auto& m : fleet) fleet_cpus += m.spec.cpus;
  auto projects = grid::sweep_projects(sweep.nprojects, sweep.jobs_each,
                                       fleet_cpus, sweep.quota_frac,
                                       kSweepSeed);
  grid::FleetConfig cfg;
  cfg.broker.policy = policy;
  cfg.threads = threads;
  return std::make_unique<grid::FleetRun>(std::move(fleet),
                                          std::move(projects), cfg);
}

grid::FleetResult run_default_fleet(const SweepConfig& sweep,
                                    grid::BrokerPolicy policy,
                                    std::size_t threads) {
  return make_fleet_run(sweep, policy, threads)->finish();
}

double wall_of(std::size_t threads, std::size_t machines,
               std::size_t jobs_each) {
  std::vector<grid::MachineSetup> fleet;
  for (std::size_t i = 0; i < machines; ++i)
    fleet.push_back(grid::synthetic_machine_setup(static_cast<int>(i) + 1));
  int fleet_cpus = 0;
  for (const auto& m : fleet) fleet_cpus += m.spec.cpus;
  auto projects =
      grid::sweep_projects(4, jobs_each, fleet_cpus, 0.0, kSweepSeed);
  grid::FleetConfig cfg;
  cfg.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  (void)grid::run_fleet(std::move(fleet), std::move(projects), cfg);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int main() {
  bench::print_preamble(
      "fleet_broker",
      "Fleet-scale harvest: global broker over Ross + Blue Mountain +\n"
      "Blue Pacific + 1 synthetic, competing projects under fair-share");

  const bool quick = [] {
    const char* q = std::getenv("ISTC_QUICK");
    return q && q[0] == '1';
  }();
  const SweepConfig sweep{6, quick ? std::size_t{60} : std::size_t{250},
                          0.25};

  // -- determinism gate: bit-identical fleet hash at 1, 2, 8 shard threads.
  const auto r1 = run_default_fleet(sweep, grid::BrokerPolicy::kBestFit, 1);
  const auto r2 = run_default_fleet(sweep, grid::BrokerPolicy::kBestFit, 2);
  const auto r8 = run_default_fleet(sweep, grid::BrokerPolicy::kBestFit, 8);
  const bool hash_equal = r1.hash == r2.hash && r1.hash == r8.hash;
  std::printf("fleet hash @1/2/8 shard threads: %s / %s / %s  [%s]\n\n",
              hex64(r1.hash).c_str(), hex64(r2.hash).c_str(),
              hex64(r8.hash).c_str(), hash_equal ? "EQUAL" : "MISMATCH");

  // -- harvest / native-impact table (vs. per-machine native-only runs).
  const auto baselines = [] {
    std::vector<sched::RunResult> out;
    for (auto& setup : grid::default_fleet())
      out.push_back(grid::run_native_only(std::move(setup)));
    return out;
  }();

  Table harvest("Fleet harvest and native impact (best-fit broker)");
  harvest.headers({"machine", "cpus", "grid done", "bounced", "killed",
                   "overall util", "native util", "native-only util",
                   "native delta"});
  double worst_native_delta = 0.0;
  for (std::size_t i = 0; i < r1.machines.size(); ++i) {
    const auto& m = r1.machines[i];
    const double nu = bench::native_util_of(m.run);
    const double nu0 = bench::native_util_of(baselines[i]);
    const double delta = nu - nu0;
    if (delta < worst_native_delta) worst_native_delta = delta;
    harvest.row({m.name, Table::integer(m.run.machine.cpus),
                 Table::integer(static_cast<long long>(m.port.completed)),
                 Table::integer(static_cast<long long>(m.port.bounced)),
                 Table::integer(static_cast<long long>(m.port.killed)),
                 Table::num(bench::overall_util(m.run), 3),
                 Table::num(nu, 3), Table::num(nu0, 3),
                 Table::num(delta, 4)});
  }
  harvest.print();

  double harvested_cpu_h = 0.0;
  for (const auto& led : r1.ledgers)
    harvested_cpu_h += static_cast<double>(led.harvested_cpu_sec) / 3600.0;
  std::printf("\nharvested %.1f cpu-h across %zu dispatches in %zu epochs\n\n",
              harvested_cpu_h, r1.dispatches.size(), r1.epochs);

  // -- fairness table across broker policies: a SweepRunner<FleetRun>
  // scratch sweep (a whole-run policy comparison has no shared prefix —
  // routing diverges from the first boundary).  Each fleet runs its shards
  // serially (cfg.threads = 1) while the sweep advances the three policy
  // points in parallel; the best-fit point must reproduce r1's hash, which
  // pins the FleetRun path against run_fleet.
  const grid::BrokerPolicy policies[] = {grid::BrokerPolicy::kBestFit,
                                         grid::BrokerPolicy::kRoundRobin,
                                         grid::BrokerPolicy::kLeastLoaded};
  core::SweepRunner<grid::FleetRun> policy_sweep(
      std::size(policies),
      [&](std::size_t i) { return make_fleet_run(sweep, policies[i], 1); });
  const auto policy_results = policy_sweep.run_scratch(
      0, [](grid::FleetRun& run, std::size_t) { return run.finish(); });
  const bool sweep_hash_equal = policy_results[0].hash == r1.hash;
  if (!sweep_hash_equal) {
    std::printf("SWEEP MISMATCH: best-fit via SweepRunner %s vs run_fleet "
                "%s\n",
                hex64(policy_results[0].hash).c_str(), hex64(r1.hash).c_str());
  }

  Table fair("Broker policy comparison");
  fair.headers({"policy", "dispatches", "completed", "abandoned",
                "fairness (Jain)"});
  std::vector<std::pair<std::string, double>> fairness_json;
  for (std::size_t i = 0; i < policy_results.size(); ++i) {
    const grid::FleetResult& res = policy_results[i];
    std::size_t completed = 0, abandoned = 0;
    for (const auto& led : res.ledgers) {
      completed += led.completed;
      abandoned += led.abandoned();
    }
    fair.row({grid::broker_policy_name(policies[i]),
              Table::integer(static_cast<long long>(res.dispatches.size())),
              Table::integer(static_cast<long long>(completed)),
              Table::integer(static_cast<long long>(abandoned)),
              Table::num(res.fairness, 3)});
    fairness_json.emplace_back(grid::broker_policy_name(policies[i]),
                               res.fairness);
  }
  fair.print();

  // -- speedup gate (skipped on hosts without >= 4 hardware threads).
  const unsigned hw = std::thread::hardware_concurrency();
  const double speedup_min = [] {
    const char* env = std::getenv("ISTC_GRID_SPEEDUP_MIN");
    return (env && env[0] != '\0') ? std::atof(env) : 2.0;
  }();
  double speedup = 0.0;
  bool speedup_skipped = true;
  bool speedup_ok = true;
  if (hw >= 4) {
    speedup_skipped = false;
    const std::size_t machines = 8;
    const std::size_t jobs = quick ? 120 : 400;
    (void)wall_of(1, machines, jobs);  // warm caches/logs
    const double serial = wall_of(1, machines, jobs);
    const double sharded = wall_of(4, machines, jobs);
    speedup = sharded > 0.0 ? serial / sharded : 0.0;
    speedup_ok = speedup >= speedup_min;
    std::printf("\nshard speedup (8 synthetic machines, 4 vs 1 threads): "
                "%.2fx (serial %.2fs, sharded %.2fs, min %.2fx)  [%s]\n",
                speedup, serial, sharded, speedup_min,
                speedup_ok ? "PASS" : "FAIL");
  } else {
    std::printf("\nshard speedup gate skipped: hardware_concurrency=%u < 4\n",
                hw);
  }

  // -- artifact.
  const std::string path = artifact_path("BENCH_grid.json");
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\n";
    out << "  \"schema\": \"istc.bench_grid.v1\",\n";
    out << "  \"fleet_hash\": \"" << hex64(r1.hash) << "\",\n";
    out << "  \"hash_equal_threads_1_2_8\": "
        << (hash_equal ? "true" : "false") << ",\n";
    out << "  \"epochs\": " << r1.epochs << ",\n";
    out << "  \"dispatches\": " << r1.dispatches.size() << ",\n";
    out << "  \"harvested_cpu_h\": " << harvested_cpu_h << ",\n";
    out << "  \"worst_native_util_delta\": " << worst_native_delta << ",\n";
    out << "  \"fairness\": {";
    for (std::size_t i = 0; i < fairness_json.size(); ++i)
      out << (i ? ", " : "") << "\"" << fairness_json[i].first
          << "\": " << fairness_json[i].second;
    out << "},\n";
    out << "  \"speedup\": {\"measured\": " << speedup
        << ", \"threshold\": " << speedup_min << ", \"skipped\": "
        << (speedup_skipped ? "true" : "false") << "},\n";
    out << "  \"gates\": {\"determinism\": \""
        << (hash_equal && sweep_hash_equal ? "pass" : "fail")
        << "\", \"speedup\": \""
        << (speedup_skipped ? "skip" : (speedup_ok ? "pass" : "fail"))
        << "\"}\n";
    out << "}\n";
  }
  std::printf("\nwrote %s\n", path.c_str());

  if (!hash_equal) {
    std::fprintf(stderr,
                 "FAIL: fleet hash differs across shard thread counts\n");
    return 1;
  }
  if (!sweep_hash_equal) {
    std::fprintf(stderr,
                 "FAIL: SweepRunner<FleetRun> best-fit hash differs from "
                 "run_fleet\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr, "FAIL: shard speedup %.2fx below %.2fx floor\n",
                 speedup, speedup_min);
    return 1;
  }
  std::printf("fleet_broker gates: PASS\n");
  return 0;
}
