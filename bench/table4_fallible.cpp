// Table 4: average makespans for differently sized interstitial projects
// under *estimate-driven* (fallible) submission, via the paper's
// continual-sampling method: one continual co-simulation per job shape,
// 500 random project start times sampled from it.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Table 4 — Avg. makespan (h) for fallible interstitial projects",
      "500 random samples from continual runs; n/a* = exceeds log time.");

  struct Row {
    double peta;
    std::size_t jobs;
    int cpus;
    Seconds sec_1ghz;
  };
  const Row rows[] = {
      {7.7, 2000, 32, 120},  {7.7, 250, 32, 960},
      {7.7, 8000, 8, 120},   {7.7, 1000, 8, 960},
      {123.0, 32000, 32, 120}, {123.0, 4000, 32, 960},
      {123.0, 128000, 8, 120}, {123.0, 16000, 8, 960},
  };
  const int n = bench::reps(500);

  Table t;
  t.headers({"PetaCycle", "kJobs", "CPU", "Runtime s@1GHz", "Blue Mtn (h)",
             "Blue Pacific (h)"});
  for (const auto& row : rows) {
    auto spec = core::ProjectSpec::paper(row.jobs, row.cpus, row.sec_1ghz);
    std::vector<std::string> cells{
        Table::num(row.peta, 1), bench::kjobs_label(row.jobs),
        Table::integer(row.cpus), Table::integer(row.sec_1ghz)};
    for (auto site :
         {cluster::Site::kBlueMountain, cluster::Site::kBluePacific}) {
      cells.push_back(
          bench::makespan_cell(core::fallible_makespans(site, spec, n)));
    }
    t.row(std::move(cells));
  }
  t.print();
  std::printf(
      "\nPaper shape checks: fallible makespans exceed the omniscient ones\n"
      "(Table 2); the smallest-CPU/shortest-runtime configuration has the\n"
      "shortest makespan on the loaded machine; 123-Pc projects do not fit\n"
      "inside the Blue Pacific log (n/a*).\n");
  return 0;
}
