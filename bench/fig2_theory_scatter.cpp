// Figure 2: actual omniscient makespan vs theoretical makespan, with the
// paper's fitted line makespan = 5256 + 1.16 * P/(N*C*(1-U)).

#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Figure 2 — Actual vs theoretical omniscient makespan",
      "One point per (project size, CPUs/job, machine); hours on both axes.");

  struct Cfg {
    std::size_t jobs;
    int cpus;
  };
  const Cfg cfgs[] = {{64000, 1},  {2000, 32},   {256000, 1},
                      {8000, 32},  {1024000, 1}, {32000, 32}};
  const int n = bench::reps(20);

  Table t;
  t.headers({"machine", "Pc", "CPU/job", "theory (h)", "actual (h)",
             "actual/theory"});
  std::vector<double> xs, ys;
  for (auto site : cluster::all_sites()) {
    const auto in = core::theory_inputs(cluster::machine_spec(site),
                                        core::native_utilization(site));
    for (const auto& c : cfgs) {
      const auto spec = core::ProjectSpec::paper(c.jobs, c.cpus, 120);
      const double theory_h =
          core::ideal_makespan_s(in, spec.total_cycles()) / 3600.0;
      const auto sample = core::omniscient_makespans(site, spec, n);
      const double actual_h = sample.summary().mean();
      xs.push_back(theory_h);
      ys.push_back(actual_h);
      t.row({cluster::site_name(site), Table::num(spec.peta_cycles(), 1),
             Table::integer(c.cpus), Table::num(theory_h, 1),
             Table::num(actual_h, 1), Table::num(actual_h / theory_h, 2)});
    }
  }
  t.print();

  const LinearFit fit = linear_fit(xs, ys);
  std::printf(
      "\nFit over all points: actual = %.0f s + %.2f * theory (R^2 = %.3f)\n"
      "Paper's fit:          actual = 5256 s + 1.16 * theory (±17%%)\n",
      fit.intercept * 3600.0, fit.slope, fit.r2);
  return 0;
}
