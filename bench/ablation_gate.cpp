// Ablation: the Figure 1 submission gate.  Three variants of "when may an
// interstitial job be submitted":
//   queue-protective — no waiting native could start before we finish
//                      (this repo's default; see DESIGN.md)
//   head-only        — the paper's pseudocode verbatim (protects only the
//                      highest-priority waiter)
//   always           — no gate, fill every hole
// measured on the Blue Mountain continual 32-CPU x 458 s scenario.

#include "common.hpp"

namespace {

istc::sched::RunResult run_with(istc::core::GatePolicy gate) {
  using namespace istc;
  core::Scenario sc;
  sc.site = cluster::Site::kBlueMountain;
  auto stream = core::ProjectSpec::continual_stream(
      32, 120, cluster::site_span(sc.site));
  stream.gate = gate;
  sc.project = stream;
  return core::run_scenario(sc);
}

}  // namespace

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — interstitial submission gate (Blue Mountain, 32CPU x 458s)",
      "Native protection vs harvest for three gate policies.");

  const auto& base = core::native_baseline(cluster::Site::kBlueMountain);
  const auto w_base = metrics::wait_stats(base.records);

  Table t;
  t.headers({"gate", "interstitial jobs", "overall util",
             "median wait (s)", "avg wait (s)", "largest-5% median (s)"});
  t.row({"(native only)", "0", Table::num(bench::overall_util(base), 3),
         Table::num(w_base.median_wait_s, 0),
         Table::num(w_base.avg_wait_s, 0),
         Table::num(metrics::wait_stats(
                        metrics::largest_native(base.records, 0.05))
                        .median_wait_s,
                    0)});

  struct Case {
    const char* name;
    core::GatePolicy gate;
  };
  const Case cases[] = {
      {"queue-protective (default)", core::GatePolicy::kQueueProtective},
      {"head-only (Fig. 1 verbatim)", core::GatePolicy::kHeadOnly},
      {"always (no gate)", core::GatePolicy::kAlways},
  };
  for (const auto& c : cases) {
    const auto run = run_with(c.gate);
    const auto w = metrics::wait_stats(run.records);
    const auto wl =
        metrics::wait_stats(metrics::largest_native(run.records, 0.05));
    t.row({c.name,
           Table::integer(static_cast<long long>(run.interstitial_count())),
           Table::num(bench::overall_util(run), 3),
           Table::num(w.median_wait_s, 0), Table::num(w.avg_wait_s, 0),
           Table::num(wl.median_wait_s, 0)});
  }
  t.print();
  std::printf(
      "\nReading: the gate costs little harvest but buys most of the native\n"
      "protection; the verbatim head-only gate admits slightly more jobs at\n"
      "higher mid-queue delay, and removing the gate entirely shows the\n"
      "damage an unmanaged scavenger stream would do.\n");
  return 0;
}
