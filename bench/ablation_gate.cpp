// Ablation: the Figure 1 submission gate.  Three variants of "when may an
// interstitial job be submitted":
//   queue-protective — no waiting native could start before we finish
//                      (this repo's default; see DESIGN.md)
//   head-only        — the paper's pseudocode verbatim (protects only the
//                      highest-priority waiter)
//   always           — no gate, fill every hole
// measured on the Blue Mountain continual 32-CPU x 458 s scenario.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — interstitial submission gate (Blue Mountain, 32CPU x 458s)",
      "Native protection vs harvest for three gate policies.");

  const auto& base = core::native_baseline(cluster::Site::kBlueMountain);
  const auto w_base = bench::wait_cells(base.records);

  struct Case {
    const char* name;
    core::GatePolicy gate;
  };
  const Case cases[] = {
      {"queue-protective (default)", core::GatePolicy::kQueueProtective},
      {"head-only (Fig. 1 verbatim)", core::GatePolicy::kHeadOnly},
      {"always (no gate)", core::GatePolicy::kAlways},
  };

  std::vector<core::Scenario> scenarios;
  for (const Case& c : cases) {
    core::Scenario sc = bench::bluemtn_scenario(32, 120);
    sc.project->gate = c.gate;
    scenarios.push_back(sc);
  }
  const auto runs = bench::run_scenarios(scenarios);

  Table t;
  t.headers({"gate", "interstitial jobs", "overall util",
             "median wait (s)", "avg wait (s)", "largest-5% median (s)"});
  t.row({"(native only)", "0", Table::num(bench::overall_util(base), 3),
         w_base.median, w_base.avg, w_base.largest5});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto w = bench::wait_cells(runs[i].records);
    t.row({cases[i].name,
           Table::integer(
               static_cast<long long>(runs[i].interstitial_count())),
           Table::num(bench::overall_util(runs[i]), 3), w.median, w.avg,
           w.largest5});
  }
  t.print();
  std::printf(
      "\nReading: the gate costs little harvest but buys most of the native\n"
      "protection; the verbatim head-only gate admits slightly more jobs at\n"
      "higher mid-queue delay, and removing the gate entirely shows the\n"
      "damage an unmanaged scavenger stream would do.\n");
  return 0;
}
