// Ablation: user runtime estimates.  §4.3 attributes the fallible-mode
// native impact to gross overestimates (median estimate 6 h vs 0.8 h
// actual).  This driver reruns Blue Mountain with *perfect* estimates —
// the counterfactual a Network-Weather-Service-style predictor (paper's
// ref [28]) would approach — and compares native impact and harvest.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — user estimates (Blue Mountain, continual 32CPU x 458s)",
      "Gross overestimates (real logs) vs perfect estimates.");

  struct Case {
    const char* name;
    bool perfect;
    bool interstitial;
  };
  const Case cases[] = {
      {"overestimates, native only", false, false},
      {"overestimates + interstitial", false, true},
      {"perfect, native only", true, false},
      {"perfect + interstitial", true, true},
  };

  std::vector<core::Scenario> scenarios;
  for (const Case& c : cases) {
    core::Scenario sc =
        bench::bluemtn_scenario(c.interstitial ? 32 : 0, 120);
    sc.perfect_estimates = c.perfect;
    scenarios.push_back(sc);
  }
  const auto runs = bench::run_scenarios(scenarios);

  Table t;
  t.headers({"scenario", "interstitial jobs", "overall util", "native util",
             "median wait (s)", "avg wait (s)"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto w = bench::wait_cells(runs[i].records);
    t.row({cases[i].name,
           Table::integer(
               static_cast<long long>(runs[i].interstitial_count())),
           Table::num(bench::overall_util(runs[i]), 3),
           Table::num(bench::native_util_of(runs[i]), 3), w.median, w.avg});
  }
  t.print();
  std::printf(
      "\nReading: with perfect estimates the gate's promise is exact — a\n"
      "waiting native is deferred at most one interstitial runtime and the\n"
      "wait deltas shrink — while the harvest barely changes.  Better\n"
      "estimates help the natives, not the scavenger (paper §4.3).\n");
  return 0;
}
