// Ablation: user runtime estimates.  §4.3 attributes the fallible-mode
// native impact to gross overestimates (median estimate 6 h vs 0.8 h
// actual).  This driver reruns Blue Mountain with *perfect* estimates —
// the counterfactual a Network-Weather-Service-style predictor (paper's
// ref [28]) would approach — and compares native impact and harvest.

#include "common.hpp"

namespace {

istc::sched::RunResult run_case(bool perfect, bool interstitial) {
  using namespace istc;
  core::Scenario sc;
  sc.site = cluster::Site::kBlueMountain;
  sc.perfect_estimates = perfect;
  if (interstitial) {
    sc.project = core::ProjectSpec::continual_stream(
        32, 120, cluster::site_span(sc.site));
  }
  return core::run_scenario(sc);
}

}  // namespace

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — user estimates (Blue Mountain, continual 32CPU x 458s)",
      "Gross overestimates (real logs) vs perfect estimates.");

  Table t;
  t.headers({"scenario", "interstitial jobs", "overall util", "native util",
             "median wait (s)", "avg wait (s)"});
  struct Case {
    const char* name;
    bool perfect;
    bool interstitial;
  };
  const Case cases[] = {
      {"overestimates, native only", false, false},
      {"overestimates + interstitial", false, true},
      {"perfect, native only", true, false},
      {"perfect + interstitial", true, true},
  };
  for (const auto& c : cases) {
    const auto run = run_case(c.perfect, c.interstitial);
    const auto w = metrics::wait_stats(run.records);
    t.row({c.name,
           Table::integer(static_cast<long long>(run.interstitial_count())),
           Table::num(bench::overall_util(run), 3),
           Table::num(bench::native_util_of(run), 3),
           Table::num(w.median_wait_s, 0), Table::num(w.avg_wait_s, 0)});
  }
  t.print();
  std::printf(
      "\nReading: with perfect estimates the gate's promise is exact — a\n"
      "waiting native is deferred at most one interstitial runtime and the\n"
      "wait deltas shrink — while the harvest barely changes.  Better\n"
      "estimates help the natives, not the scavenger (paper §4.3).\n");
  return 0;
}
