// Microbenchmarks of the ResourceProfile (the backfill hot path).

#include <benchmark/benchmark.h>

#include "sched/resource_profile.hpp"
#include "util/rng.hpp"

namespace {

using istc::Rng;
using istc::SimTime;
using istc::sched::ResourceProfile;

ResourceProfile busy_profile(int segments, Rng& rng) {
  ResourceProfile p(0, 4096);
  for (int i = 0; i < segments; ++i) {
    const SimTime start = rng.range(0, 500000);
    const auto dur = rng.range(60, 7200);
    const int cpus = static_cast<int>(rng.range(1, 256));
    if (p.min_free(start, start + dur) >= cpus) {
      p.reserve(start, start + dur, cpus);
    }
  }
  return p;
}

// Trailing arg A/B's the hole index: 0 = linear scan (kIndexDisabled),
// 1 = segment-tree descents forced on (threshold 1).  Same seeds, same
// queries; only the search strategy differs.
void BM_ProfileEarliestFit(benchmark::State& state) {
  Rng rng(1);
  auto p = busy_profile(static_cast<int>(state.range(0)), rng);
  p.set_index_threshold(state.range(1) != 0
                            ? std::size_t{1}
                            : ResourceProfile::kIndexDisabled);
  Rng qrng(2);
  for (auto _ : state) {
    const int cpus = static_cast<int>(qrng.range(1, 2048));
    const auto t = p.earliest_fit(cpus, qrng.range(60, 3600), 0);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ProfileEarliestFit)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

void BM_ProfileReserveRelease(benchmark::State& state) {
  Rng rng(3);
  auto p = busy_profile(500, rng);
  Rng qrng(4);
  for (auto _ : state) {
    const int cpus = static_cast<int>(qrng.range(1, 128));
    const auto dur = qrng.range(60, 3600);
    const SimTime t = p.earliest_fit(cpus, dur, 0);
    p.reserve(t, t + dur, cpus);
    p.release(t, t + dur, cpus);
  }
}
BENCHMARK(BM_ProfileReserveRelease);

// The incremental path's per-pass cost: advancing the origin through a busy
// profile in coarse steps (history chop + re-anchor), vs. BM_ProfileRebuild
// below, the old path's per-pass cost.
void BM_ProfileAdvanceOrigin(benchmark::State& state) {
  Rng rng(7);
  const auto base = busy_profile(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    ResourceProfile p = base;
    for (SimTime t = 0; t <= 500000; t += 10000) p.advance_origin(t);
    benchmark::DoNotOptimize(p.steps());
  }
}
BENCHMARK(BM_ProfileAdvanceOrigin)->Arg(100)->Arg(1000);

// The old per-pass construction: reconstruct the profile from `running`
// jobs' estimated remainders, every pass.
void BM_ProfileRebuild(benchmark::State& state) {
  const int running = static_cast<int>(state.range(0));
  const int cpus_each = 4096 / running;
  Rng rng(8);
  std::vector<SimTime> ends;
  ends.reserve(static_cast<std::size_t>(running));
  for (int i = 0; i < running; ++i) ends.push_back(rng.range(60, 500000));
  for (auto _ : state) {
    ResourceProfile p(0, 4096);
    for (const SimTime end : ends) p.reserve(0, end, cpus_each);
    benchmark::DoNotOptimize(p.steps());
  }
}
BENCHMARK(BM_ProfileRebuild)->Arg(64)->Arg(512);

// Full canonicalization sweep on an already-canonical profile: the
// worst-case steady-state cost GateStage pays once per pass.
void BM_ProfileCoalesce(benchmark::State& state) {
  Rng rng(9);
  auto p = busy_profile(1000, rng);
  for (auto _ : state) {
    p.coalesce();
    benchmark::DoNotOptimize(p.steps());
  }
}
BENCHMARK(BM_ProfileCoalesce);

// Same linear-vs-indexed A/B as BM_ProfileEarliestFit for the window
// scan, at a short (one-hour) and a long (quarter-span) window: the
// tree's range_min only amortizes once the window covers many
// breakpoints, which is the regime the omniscient packer queries in.
void BM_ProfileMinFree(benchmark::State& state) {
  Rng rng(5);
  auto p = busy_profile(1000, rng);
  p.set_index_threshold(state.range(1) != 0
                            ? std::size_t{1}
                            : ResourceProfile::kIndexDisabled);
  const SimTime window = state.range(0);
  Rng qrng(6);
  for (auto _ : state) {
    const SimTime a = qrng.range(0, 400000);
    benchmark::DoNotOptimize(p.min_free(a, a + window));
  }
}
BENCHMARK(BM_ProfileMinFree)
    ->Args({3600, 0})
    ->Args({3600, 1})
    ->Args({120000, 0})
    ->Args({120000, 1});

}  // namespace
