// Microbenchmarks of the ResourceProfile (the backfill hot path).

#include <benchmark/benchmark.h>

#include "sched/resource_profile.hpp"
#include "util/rng.hpp"

namespace {

using istc::Rng;
using istc::SimTime;
using istc::sched::ResourceProfile;

ResourceProfile busy_profile(int segments, Rng& rng) {
  ResourceProfile p(0, 4096);
  for (int i = 0; i < segments; ++i) {
    const SimTime start = rng.range(0, 500000);
    const auto dur = rng.range(60, 7200);
    const int cpus = static_cast<int>(rng.range(1, 256));
    if (p.min_free(start, start + dur) >= cpus) {
      p.reserve(start, start + dur, cpus);
    }
  }
  return p;
}

void BM_ProfileEarliestFit(benchmark::State& state) {
  Rng rng(1);
  const auto p = busy_profile(static_cast<int>(state.range(0)), rng);
  Rng qrng(2);
  for (auto _ : state) {
    const int cpus = static_cast<int>(qrng.range(1, 2048));
    const auto t = p.earliest_fit(cpus, qrng.range(60, 3600), 0);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ProfileEarliestFit)->Arg(100)->Arg(1000);

void BM_ProfileReserveRelease(benchmark::State& state) {
  Rng rng(3);
  auto p = busy_profile(500, rng);
  Rng qrng(4);
  for (auto _ : state) {
    const int cpus = static_cast<int>(qrng.range(1, 128));
    const auto dur = qrng.range(60, 3600);
    const SimTime t = p.earliest_fit(cpus, dur, 0);
    p.reserve(t, t + dur, cpus);
    p.release(t, t + dur, cpus);
  }
}
BENCHMARK(BM_ProfileReserveRelease);

void BM_ProfileMinFree(benchmark::State& state) {
  Rng rng(5);
  const auto p = busy_profile(1000, rng);
  Rng qrng(6);
  for (auto _ : state) {
    const SimTime a = qrng.range(0, 400000);
    benchmark::DoNotOptimize(p.min_free(a, a + 3600));
  }
}
BENCHMARK(BM_ProfileMinFree);

}  // namespace
