// Macro-scale benchmarks: full site simulations per iteration, reported in
// wall milliseconds (these dominate every experiment driver's runtime).

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "trace/tracer.hpp"

namespace {

using istc::cluster::Site;

void BM_NativeOnlySimulation(benchmark::State& state) {
  const auto site = static_cast<Site>(state.range(0));
  std::uint64_t seed = 100;
  for (auto _ : state) {
    istc::core::Scenario sc;
    sc.site = site;
    sc.log_seed = seed++;  // avoid the process-wide cache
    const auto run = istc::core::run_scenario(sc);
    benchmark::DoNotOptimize(run.records.size());
  }
}
BENCHMARK(BM_NativeOnlySimulation)
    ->Arg(static_cast<int>(Site::kRoss))
    ->Arg(static_cast<int>(Site::kBlueMountain))
    ->Arg(static_cast<int>(Site::kBluePacific))
    ->Unit(benchmark::kMillisecond);

void BM_ContinualCoSimulation(benchmark::State& state) {
  // The heaviest scenario class: a full continual co-simulation, hundreds
  // of thousands of interstitial jobs.
  std::uint64_t seed = 200;
  for (auto _ : state) {
    istc::core::Scenario sc;
    sc.site = Site::kBlueMountain;
    sc.log_seed = seed++;
    sc.project = istc::core::ProjectSpec::continual_stream(
        32, 120, istc::cluster::site_span(sc.site));
    const auto run = istc::core::run_scenario(sc);
    benchmark::DoNotOptimize(run.records.size());
  }
}
BENCHMARK(BM_ContinualCoSimulation)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// A/B of the incremental pass-persistent ResourceProfile (Arg 1) against
// the old from-scratch per-pass rebuild (Arg 0) on the heaviest pass
// workload: the continual co-simulation, where every pass used to
// reconstruct the profile from hundreds of running jobs.  Schedules are
// identical either way (the determinism suite pins that); only pass cost
// moves.  `pass_us` is the counter to compare — wall ms includes event-heap
// and workload-generation time common to both.
void BM_ContinualPassWorkload(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  std::uint64_t seed = 300;
  std::uint64_t pass_us = 0;
  std::uint64_t passes = 0;
  for (auto _ : state) {
    istc::trace::Tracer tracer(istc::trace::TraceMode::kCountersOnly);
    istc::core::Scenario sc;
    sc.site = Site::kBlueMountain;
    sc.log_seed = seed++;
    sc.project = istc::core::ProjectSpec::continual_stream(
        32, 120, istc::cluster::site_span(sc.site));
    sc.incremental_profile = incremental;
    sc.tracer = &tracer;
    const auto run = istc::core::run_scenario(sc);
    benchmark::DoNotOptimize(run.records.size());
    pass_us += run.trace.sched_pass_us_total;
    passes += run.trace.sched_passes;
  }
  state.counters["pass_us"] = benchmark::Counter(
      static_cast<double>(pass_us) / static_cast<double>(state.iterations()));
  state.counters["passes"] = benchmark::Counter(
      static_cast<double>(passes) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ContinualPassWorkload)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_OmniscientPack(benchmark::State& state) {
  const auto spec = istc::core::ProjectSpec::paper(
      static_cast<std::size_t>(state.range(0)), 32, 120);
  int rep = 0;
  for (auto _ : state) {
    const auto s = istc::core::omniscient_makespans(
        Site::kBlueMountain, spec, 1,
        0xBEEF + static_cast<std::uint64_t>(rep++));
    benchmark::DoNotOptimize(s.hours.size());
  }
}
BENCHMARK(BM_OmniscientPack)->Arg(2000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
