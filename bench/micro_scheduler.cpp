// Macro-scale benchmarks: full site simulations per iteration, reported in
// wall milliseconds (these dominate every experiment driver's runtime).

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"

namespace {

using istc::cluster::Site;

void BM_NativeOnlySimulation(benchmark::State& state) {
  const auto site = static_cast<Site>(state.range(0));
  std::uint64_t seed = 100;
  for (auto _ : state) {
    istc::core::Scenario sc;
    sc.site = site;
    sc.log_seed = seed++;  // avoid the process-wide cache
    const auto run = istc::core::run_scenario(sc);
    benchmark::DoNotOptimize(run.records.size());
  }
}
BENCHMARK(BM_NativeOnlySimulation)
    ->Arg(static_cast<int>(Site::kRoss))
    ->Arg(static_cast<int>(Site::kBlueMountain))
    ->Arg(static_cast<int>(Site::kBluePacific))
    ->Unit(benchmark::kMillisecond);

void BM_ContinualCoSimulation(benchmark::State& state) {
  // The heaviest scenario class: a full continual co-simulation, hundreds
  // of thousands of interstitial jobs.
  std::uint64_t seed = 200;
  for (auto _ : state) {
    istc::core::Scenario sc;
    sc.site = Site::kBlueMountain;
    sc.log_seed = seed++;
    sc.project = istc::core::ProjectSpec::continual_stream(
        32, 120, istc::cluster::site_span(sc.site));
    const auto run = istc::core::run_scenario(sc);
    benchmark::DoNotOptimize(run.records.size());
  }
}
BENCHMARK(BM_ContinualCoSimulation)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_OmniscientPack(benchmark::State& state) {
  const auto spec = istc::core::ProjectSpec::paper(
      static_cast<std::size_t>(state.range(0)), 32, 120);
  int rep = 0;
  for (auto _ : state) {
    const auto s = istc::core::omniscient_makespans(
        Site::kBlueMountain, spec, 1,
        0xBEEF + static_cast<std::uint64_t>(rep++));
    benchmark::DoNotOptimize(s.hours.size());
  }
}
BENCHMARK(BM_OmniscientPack)->Arg(2000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
