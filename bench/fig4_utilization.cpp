// Figure 4: Blue Mountain utilization over the log, without (top) and with
// (bottom) continual interstitial computing.  Ported to the telemetry
// layer: the hourly series comes from the sim-time sampler's busy-CPU
// integral deltas, and is asserted bucket-by-bucket against the legacy
// record-based metrics::utilization_series (exit 1 on mismatch).

#include <cmath>

#include "common.hpp"
#include "metrics/report.hpp"
#include "util/csv.hpp"

namespace {

using namespace istc;

std::string strip_chart(const std::vector<double>& series) {
  // One character per sample: utilization decile (0-9), '#' for >= 0.95.
  std::string s;
  s.reserve(series.size());
  for (double u : series) {
    if (u >= 0.95) {
      s += '#';
    } else {
      s += static_cast<char>('0' + static_cast<int>(u * 10.0));
    }
  }
  return s;
}

std::vector<double> daily(const std::vector<double>& hourly) {
  std::vector<double> out;
  for (std::size_t i = 0; i < hourly.size(); i += 24) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t k = i; k < std::min(i + 24, hourly.size()); ++k) {
      sum += hourly[k];
      ++n;
    }
    out.push_back(sum / static_cast<double>(n));
  }
  return out;
}

/// Hourly utilization from the sampler's per-interval busy-CPU-second
/// deltas (native + interstitial), divided by the full-hour capacity —
/// the same convention as metrics::utilization_series.
std::vector<double> sampled_hourly(const metrics::RunMetrics& m, int cpus) {
  const metrics::SimSampler* s = m.sampler();
  std::vector<double> out;
  out.reserve(s->rows().size());
  const double denom =
      static_cast<double>(cpus) * static_cast<double>(kSecondsPerHour);
  for (const auto& row : s->rows()) {
    out.push_back(static_cast<double>(row[12] + row[13]) / denom);
  }
  return out;
}

/// The cross-check the port hangs on: sampled integral deltas must equal
/// the record-overlap computation exactly (both are integer CPU-second
/// sums below 2^53, so the doubles are exact).
bool series_match(const std::vector<double>& sampled,
                  const std::vector<double>& legacy, const char* what) {
  if (sampled.size() != legacy.size()) {
    std::fprintf(stderr, "FAIL %s: %zu sampled buckets vs %zu legacy\n", what,
                 sampled.size(), legacy.size());
    return false;
  }
  for (std::size_t h = 0; h < sampled.size(); ++h) {
    if (std::fabs(sampled[h] - legacy[h]) > 1e-9) {
      std::fprintf(stderr, "FAIL %s: bucket %zu sampled %.12f legacy %.12f\n",
                   what, h, sampled[h], legacy[h]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::string csv_path = bench::artifact_path("fig4_util.csv");
  bench::print_preamble(
      "Figure 4 — Blue Mountain utilization, native vs continual",
      ("Hourly utilization from the sim-time sampler; dips to zero are "
       "outages.  CSV: " + csv_path).c_str());

  const auto site = cluster::Site::kBlueMountain;
  const SimTime span = cluster::site_span(site);

  metrics::SamplerConfig cfg;
  cfg.interval = kSecondsPerHour;  // stop defaults to the site span

  metrics::RunMetrics m0(cfg);
  core::Scenario native;
  native.site = site;
  native.metrics = &m0;
  const auto base = core::run_scenario(native);

  metrics::RunMetrics m1(cfg);
  core::Scenario continual;
  continual.site = site;
  continual.project =
      core::ProjectSpec::continual_stream(32, 120, span);
  continual.metrics = &m1;
  const auto with_i = core::run_scenario(continual);

  const auto u0 = sampled_hourly(m0, base.machine.cpus);
  const auto u1 = sampled_hourly(m1, with_i.machine.cpus);

  // Port check: the sampler-derived series must reproduce the legacy
  // record-based series on both scenarios.
  const bool ok =
      series_match(u0, metrics::utilization_series(
                           base.records, base.machine.cpus, base.span),
                   "native") &&
      series_match(u1, metrics::utilization_series(
                           with_i.records, with_i.machine.cpus, with_i.span),
                   "continual");

  try {
    CsvWriter csv(csv_path);
    csv.header({"hour", "native_only", "with_interstitial"});
    for (std::size_t h = 0; h < u0.size(); ++h) {
      csv.row({static_cast<double>(h), u0[h], u1[h]});
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "(CSV not written: %s)\n", e.what());
  }

  std::printf("daily-average utilization, one char per day "
              "(0-9 = deciles, # = >=95%%):\n\n");
  std::printf("native only      : %s\n", strip_chart(daily(u0)).c_str());
  std::printf("with interstitial: %s\n\n", strip_chart(daily(u1)).c_str());

  // Distribution summary matching the paper's visual claim: with
  // interstitial jobs the machine sits at ~100% except during outages.
  std::size_t h0_sat = 0, h1_sat = 0, h0_idle = 0, h1_idle = 0;
  for (double u : u0) {
    h0_sat += u >= 0.95;
    h0_idle += u <= 0.05;
  }
  for (double u : u1) {
    h1_sat += u >= 0.95;
    h1_idle += u <= 0.05;
  }
  Table t;
  t.headers({"", "native only", "with interstitial"});
  t.row({"mean utilization",
         Table::num(bench::overall_util(base), 3),
         Table::num(bench::overall_util(with_i), 3)});
  t.row({"hours at >= 95%",
         Table::integer(static_cast<long long>(h0_sat)),
         Table::integer(static_cast<long long>(h1_sat))});
  t.row({"hours at <= 5% (outages)",
         Table::integer(static_cast<long long>(h0_idle)),
         Table::integer(static_cast<long long>(h1_idle))});
  t.row({"total hours", Table::integer(static_cast<long long>(u0.size())),
         Table::integer(static_cast<long long>(u1.size()))});
  t.print();
  std::printf(
      "\nPaper shape check: with interstitial computing the machine runs at\n"
      "essentially 100%% except for outages (the bottom panel of Fig. 4).\n");
  std::printf("\nsampler vs record series cross-check: %s\n",
              ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
