#include "common.hpp"

#include <cstdlib>
#include <filesystem>

#include "core/fork.hpp"
#include "core/sweep.hpp"
#include "metrics/waits.hpp"
#include "trace/summary.hpp"
#include "util/thread_pool.hpp"

namespace istc::bench {

void print_preamble(const char* artifact, const char* description) {
  // Benches take the pool width from the environment (the CLI uses
  // --threads); either way the effective count lands in the header so a
  // saved log pins the parallelism it ran with.
  const char* env = std::getenv("ISTC_THREADS");
  if (env && env[0] != '\0') {
    const long n = std::atol(env);
    if (n > 0) set_default_thread_count(static_cast<std::size_t>(n));
  }
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("%s\n", description);
  std::printf("Workload: synthetic logs calibrated to the paper's Table 1\n");
  std::printf("(shape reproduction; absolute values differ — EXPERIMENTS.md)\n");
  std::printf("Threads: %zu (ISTC_THREADS or hardware)\n",
              default_thread_count());
  const auto pool = ThreadPool::global_stats();
  std::printf("Pool: %llu tasks executed, queue hwm %zu, busy hwm %zu "
              "(process-lifetime)\n",
              static_cast<unsigned long long>(pool.tasks_executed),
              pool.queue_hwm, pool.busy_hwm);
  std::printf("==============================================================\n\n");
}

void print_pool_stats(const char* when) {
  const auto pool = ThreadPool::global_stats();
  std::printf("pool stats (%s): %llu submitted, %llu executed, "
              "queue hwm %zu, busy hwm %zu, %llu pools\n",
              when, static_cast<unsigned long long>(pool.tasks_submitted),
              static_cast<unsigned long long>(pool.tasks_executed),
              pool.queue_hwm, pool.busy_hwm,
              static_cast<unsigned long long>(pool.pools_created));
}

std::string artifact_path(const char* filename) {
  const char* env = std::getenv("ISTC_OUT_DIR");
  const std::filesystem::path dir = (env && env[0] != '\0') ? env : "build";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open reports
  return (dir / filename).string();
}

std::string makespan_cell(const core::MakespanSample& sample) {
  if (!sample.feasible()) return "n/a*";
  const Summary s = sample.summary();
  return Table::pm(s.mean(), s.stddev(), 1);
}

int reps(int full) {
  const char* quick = std::getenv("ISTC_QUICK");
  if (quick && quick[0] == '1') return std::max(2, full / 10);
  return full;
}

std::string kjobs_label(std::size_t jobs) {
  char buf[32];
  if (jobs % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%zuk", jobs / 1000);
  } else {
    std::snprintf(buf, sizeof buf, "%.2gk",
                  static_cast<double>(jobs) / 1000.0);
  }
  return buf;
}

std::string median_waits_cell(std::span<const sched::JobRecord> records) {
  const auto all = metrics::wait_stats(records);
  const auto big = metrics::wait_stats(metrics::largest_native(records, 0.05));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1fk / %.1fk", all.median_wait_s / 1000.0,
                big.median_wait_s / 1000.0);
  return buf;
}

double overall_util(const sched::RunResult& run) {
  return metrics::average_utilization(run.records, run.machine.cpus, 0,
                                      run.span, metrics::JobFilter::kAll);
}

double native_util_of(const sched::RunResult& run) {
  return metrics::average_utilization(run.records, run.machine.cpus, 0,
                                      run.span,
                                      metrics::JobFilter::kNativeOnly);
}

WaitCells wait_cells(std::span<const sched::JobRecord> records) {
  const auto all = metrics::wait_stats(records);
  const auto big = metrics::wait_stats(metrics::largest_native(records, 0.05));
  WaitCells c;
  c.median = Table::num(all.median_wait_s, 0);
  c.avg = Table::num(all.avg_wait_s, 0);
  c.largest5 = Table::num(big.median_wait_s, 0);
  c.median_ef = Table::num(all.median_ef, 2);
  c.avg_ef = Table::num(all.avg_ef, 1);
  return c;
}

core::Scenario bluemtn_scenario(int cpus_per_job, Seconds sec_at_1ghz) {
  core::Scenario sc;
  sc.site = cluster::Site::kBlueMountain;
  if (cpus_per_job > 0) {
    sc.project = core::ProjectSpec::continual_stream(
        cpus_per_job, sec_at_1ghz, cluster::site_span(sc.site));
  }
  return sc;
}

std::vector<sched::RunResult> run_scenarios(
    const std::vector<core::Scenario>& scenarios) {
  core::SweepRunner<core::SimRun> sweep(
      scenarios.size(), [&](std::size_t i) {
        return std::make_unique<core::SimRun>(scenarios[i]);
      });
  return sweep.run_scratch(
      0, [](core::SimRun& run, std::size_t) { return run.finish(); });
}

void print_trace_counters(const char* title, const sched::RunResult& run) {
  const trace::TraceSummary& t = run.trace;
  if (t.sched_passes == 0) return;  // run predates tracing or untraced
  KeyValueBlock kv(title);
  kv.add("scheduler passes",
         Table::integer(static_cast<long long>(t.sched_passes)));
  kv.add("pass cost total (us)",
         Table::integer(static_cast<long long>(t.sched_pass_us_total)));
  kv.add("pass cost mean (us)", t.mean_pass_us(), 2);
  kv.add("pass cost max (us)",
         Table::integer(static_cast<long long>(t.sched_pass_us_max)));
  kv.add("backfill scans",
         Table::integer(static_cast<long long>(t.backfill_scans)));
  kv.add("events drained",
         Table::integer(static_cast<long long>(t.engine_events_drained)));
  kv.add("gate open / closed",
         Table::integer(static_cast<long long>(t.gate_open)) + " / " +
             Table::integer(static_cast<long long>(t.gate_closed)));
  kv.add("interstitial submitted",
         Table::integer(static_cast<long long>(t.interstitial_submitted)));
  kv.add("rejected by gate",
         Table::integer(
             static_cast<long long>(t.interstitial_rejected_by_gate)));
  kv.add("interstitial killed",
         Table::integer(static_cast<long long>(t.interstitial_killed)));
  kv.add("event queue peak depth",
         Table::integer(static_cast<long long>(t.engine_peak_queue_depth)));
  kv.add("largest timestep batch",
         Table::integer(static_cast<long long>(t.engine_max_timestep_batch)));
  kv.add("events submit/finish/wake",
         Table::integer(static_cast<long long>(t.engine_events_job_submit)) +
             " / " +
             Table::integer(
                 static_cast<long long>(t.engine_events_job_finish)) +
             " / " +
             Table::integer(static_cast<long long>(t.engine_events_wake)));
  kv.add("event queue heap allocs",
         Table::integer(static_cast<long long>(t.engine_heap_allocations)));
  kv.print();
}

void print_continual_table(cluster::Site site, Seconds short_1ghz,
                           Seconds long_1ghz) {
  const auto& base = core::native_baseline(site);
  const auto& s_run = core::continual_run(site, 32, short_1ghz);
  const auto& l_run = core::continual_run(site, 32, long_1ghz);
  const auto spec_s = core::ProjectSpec::continual_stream(32, short_1ghz, 1);
  const auto spec_l = core::ProjectSpec::continual_stream(32, long_1ghz, 1);
  const Seconds rs = spec_s.runtime_on(base.machine);
  const Seconds rl = spec_l.runtime_on(base.machine);

  char h_short[48], h_long[48];
  std::snprintf(h_short, sizeof h_short, "32CPU x %lds",
                static_cast<long>(rs));
  std::snprintf(h_long, sizeof h_long, "32CPU x %lds",
                static_cast<long>(rl));

  Table t;
  t.headers({"", "Native Jobs", h_short, h_long});
  t.row({"Interstitial jobs", "0",
         Table::integer(static_cast<long long>(s_run.interstitial_count())),
         Table::integer(static_cast<long long>(l_run.interstitial_count()))});
  t.row({"Native jobs",
         Table::integer(static_cast<long long>(base.native_count())),
         Table::integer(static_cast<long long>(s_run.native_count())),
         Table::integer(static_cast<long long>(l_run.native_count()))});
  t.row({"Overall Util", Table::num(overall_util(base), 3),
         Table::num(overall_util(s_run), 3),
         Table::num(overall_util(l_run), 3)});
  t.row({"Native Util", Table::num(native_util_of(base), 3),
         Table::num(native_util_of(s_run), 3),
         Table::num(native_util_of(l_run), 3)});
  t.row({"Median wait (ks) all / 5% largest",
         median_waits_cell(base.records), median_waits_cell(s_run.records),
         median_waits_cell(l_run.records)});
  t.print();

  std::printf("\n");
  char title[64];
  std::snprintf(title, sizeof title, "scheduling cost (%s stream)", h_short);
  print_trace_counters(title, s_run);
}

}  // namespace istc::bench
