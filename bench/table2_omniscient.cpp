// Table 2: interstitial project makespans assuming perfect prior knowledge
// of native job start times (zero native impact by construction).
// 20 random project starts per cell, mean ± std in hours.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Table 2 — Omniscient Interstitial Project Makespan",
      "Projects packed into the native-only free-capacity profile.");

  struct Row {
    double peta;
    std::size_t jobs;
    int cpus;
  };
  // The paper's six rows: each project size with 1-CPU and 32-CPU jobs,
  // all jobs 120 s @ 1 GHz.
  const Row rows[] = {
      {7.7, 64000, 1},    {7.7, 2000, 32},   {30.1, 256000, 1},
      {30.1, 8000, 32},   {123.0, 1024000, 1}, {123.0, 32000, 32},
  };

  const int n = bench::reps(20);
  Table t;
  t.headers({"Peta Cycles", "kJobs", "CPU/Job", "Ross (h)", "Blue Mtn (h)",
             "Blue Pacific (h)"});
  for (const auto& row : rows) {
    const auto spec = core::ProjectSpec::paper(row.jobs, row.cpus, 120);
    std::vector<std::string> cells{
        Table::num(row.peta, 1), bench::kjobs_label(row.jobs),
        Table::integer(row.cpus)};
    for (auto site : cluster::all_sites()) {
      cells.push_back(
          bench::makespan_cell(core::omniscient_makespans(site, spec, n)));
    }
    t.row(std::move(cells));
  }
  t.print();
  std::printf(
      "\nPaper shape checks: 32-CPU rows are within a few %% of 1-CPU rows\n"
      "except on Blue Pacific (severe breakage), and each 4x project-size\n"
      "step roughly quadruples the makespan.\n");
  return 0;
}
