// Table 7: continual interstitial computing on Blue Pacific
// (32-CPU jobs of 325 s and 2601 s; paper: util .916 -> .964/.946).

#include "common.hpp"

int main() {
  istc::bench::print_preamble(
      "Table 7 — Continual Interstitial Computing on Blue Pacific",
      "The near-saturated machine: small lift, quick native turnover.");
  istc::bench::print_continual_table(istc::cluster::Site::kBluePacific, 120,
                                     960);
  std::printf(
      "\nPaper: 11,392 / 1,066 interstitial jobs; utilization already .916\n"
      "so the lift is only a few points, and the median wait is essentially\n"
      "unchanged (jobs turn over quickly).\n");
  return 0;
}
