// Table 1: Comparison of ASCI Machines — the machine models and the
// calibrated synthetic logs standing in for the site traces.

#include "common.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Table 1 — Comparison of ASCI Machines",
      "Machine presets plus measured properties of the calibrated logs.");

  Table t;
  t.headers({"", "Ross", "Blue Mtn", "Blue Pacific"});
  std::vector<std::string> cpus{"CPUs"}, clock{"clock GHz"},
      tcycles{"TCycles"}, util_t{"Utilization (paper)"},
      util_m{"Utilization (measured)"}, days{"times days"}, jobs{"Jobs"},
      queue{"Queue algorithm"}, mean_cpus{"mean CPUs/job (log)"},
      med_run{"median runtime h (log)"}, med_est{"median estimate h (log)"};

  for (auto site : cluster::all_sites()) {
    const auto m = cluster::machine_spec(site);
    const auto targets = cluster::site_targets(site);
    const auto log = workload::site_log(site);
    const auto stats =
        workload::compute_stats(log, m, cluster::site_span(site));
    const double measured = core::native_utilization(site);

    cpus.push_back(Table::integer(m.cpus));
    clock.push_back(Table::num(m.clock_ghz, 3));
    tcycles.push_back(Table::num(m.tera_cycles(), 3));
    util_t.push_back(Table::num(targets.utilization, 3));
    util_m.push_back(Table::num(measured, 3));
    days.push_back(Table::num(targets.span_days, 1));
    jobs.push_back(Table::integer(targets.jobs));
    queue.push_back(m.queue_system);
    mean_cpus.push_back(Table::num(stats.mean_cpus, 0));
    med_run.push_back(Table::num(stats.median_runtime_h, 2));
    med_est.push_back(Table::num(stats.median_estimate_h, 1));
  }
  for (auto* row : {&cpus, &clock, &tcycles, &util_t, &util_m, &days, &jobs,
                    &queue, &mean_cpus, &med_run, &med_est}) {
    t.row(*row);
  }
  t.print();
  return 0;
}
