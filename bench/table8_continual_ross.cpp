// Table 8 (first): continual interstitial computing on Ross
// (32-CPU jobs of 204 s and 1633 s; paper: util .631 -> .988).

#include "common.hpp"

int main() {
  istc::bench::print_preamble(
      "Table 8 — Continual Interstitial Computing on Ross",
      "Low-utilization machine under conservative (PBS) backfill.");
  istc::bench::print_continual_table(istc::cluster::Site::kRoss, 120, 960);
  std::printf(
      "\nPaper: 257,396 / 33,780 interstitial jobs; overall util .631 ->\n"
      ".988 — the biggest harvest of the three machines.  The 1633 s jobs\n"
      "noticeably delay the largest (multi-day) native jobs.\n");
  return 0;
}
