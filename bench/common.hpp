#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/project.hpp"
#include "core/theory.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"
#include "util/table.hpp"

/// \file common.hpp
/// Shared plumbing for the experiment drivers (one binary per paper table
/// or figure).  Each driver prints the rows/series the paper reports, from
/// the calibrated synthetic logs; absolute numbers therefore differ from
/// the paper, the shape is what must match (see EXPERIMENTS.md).

namespace istc::bench {

/// Standard header for every experiment binary.
void print_preamble(const char* artifact, const char* description);

/// One-line ThreadPool saturation summary (process-lifetime global
/// gauges): submitted/executed tasks, queue and busy high-water marks.
/// Print after a parallel phase so saved logs pin how hard the pool ran.
void print_pool_stats(const char* when);

/// Where experiment drivers write plot data (CSV etc.): `ISTC_OUT_DIR` if
/// set, else `build/`, created on demand.  Keeps run-from-repo-root
/// invocations from littering the source tree with artifacts.
std::string artifact_path(const char* filename);

/// "12.3 ± 4.5" in hours, or the paper's "n/a*" for infeasible cells.
std::string makespan_cell(const core::MakespanSample& sample);

/// Number of replications for Monte-Carlo experiments; the paper uses 20
/// random starts (Table 2) and 500 samples (Table 4).  Honouring
/// ISTC_QUICK=1 keeps CI fast without changing defaults.
int reps(int full);

/// "2k" / "¼k" style job-count label used by the paper's tables.
std::string kjobs_label(std::size_t jobs);

/// Median wait summary "all / largest-5%" in the paper's "0.2k / 4.4k"
/// kiloseconds style.
std::string median_waits_cell(std::span<const sched::JobRecord> records);

/// Utilization over [0, span) for a run.
double overall_util(const sched::RunResult& run);
double native_util_of(const sched::RunResult& run);

/// Wait-statistic cells shared by the ablation/comparator tables: waits in
/// whole seconds, expansion factors with the papers' precision.  Computed
/// in one wait_stats pass per field group.
struct WaitCells {
  std::string median;     ///< median wait (s)
  std::string avg;        ///< average wait (s)
  std::string largest5;   ///< largest-5% median wait (s)
  std::string median_ef;  ///< median expansion factor
  std::string avg_ef;     ///< average expansion factor
};
WaitCells wait_cells(std::span<const sched::JobRecord> records);

/// The Blue Mountain scenario every ablation driver perturbs: site set,
/// and (when cpus_per_job > 0) a continual `cpus_per_job` x `sec_at_1ghz`
/// stream attached.  Pass cpus_per_job = 0 for the native-only variant.
core::Scenario bluemtn_scenario(int cpus_per_job = 0, Seconds sec_at_1ghz = 0);

/// Run a family of scenario variants through the fork-tree sweep engine
/// (core::SweepRunner) in scratch mode — variants that differ from t = 0
/// cannot share a prefix — returning results in point order regardless of
/// thread count.  Replaces the hand-rolled run_with()/parallel_for loops
/// the ablation and sensitivity drivers used to copy.
std::vector<sched::RunResult> run_scenarios(
    const std::vector<core::Scenario>& scenarios);

/// Scheduling-cost counters of a run (RunResult::trace, populated by the
/// counters-only tracer every cached experiment run carries), printed as a
/// key-value block so BENCH_*.json trajectories can track scheduler-pass
/// cost per experiment.  No-op for runs without trace data.
void print_trace_counters(const char* title, const sched::RunResult& run);

/// The shared body of Tables 6, 7 and 8: continual interstitial computing
/// on one machine with two job lengths (seconds @ 1 GHz).
void print_continual_table(cluster::Site site, Seconds short_1ghz,
                           Seconds long_1ghz);

}  // namespace istc::bench
