// What-if admission-control service gates (src/service) — the daemon's
// bench.  A Session is preloaded with a synthetic Ross tail (including
// out-of-order stragglers, so the snapshot/rewind path is part of the
// baseline under test), then:
//
//   1. purity gate — 8 concurrent client threads replay a deterministic
//      query set against the live baseline (forked mode).  Every reply
//      must be byte-identical to the same query answered serially in
//      scratch mode (from-scratch re-simulation, single thread): the
//      fork-sweep fast path may never change an answer, and concurrency
//      may never change an answer.
//   2. latency gate — p99 per-query wall time across those 8 concurrent
//      clients must come in under a budget (ISTC_WHATIF_P99_MS overrides;
//      quick mode relaxes the default).
//
// Both gates drive the exit code; the numbers land in BENCH_whatif.json
// for CI trend tracking.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "service/json.hpp"
#include "service/session.hpp"

namespace {

using namespace istc;

bool quick_mode() {
  const char* q = std::getenv("ISTC_QUICK");
  return q && q[0] == '1';
}

double env_ms(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return (env && env[0] != '\0') ? std::atof(env) : fallback;
}

std::string swf_line(SimTime submit, Seconds runtime, int cpus,
                     Seconds estimate) {
  return "1 " + std::to_string(submit) + " 0 " + std::to_string(runtime) +
         " " + std::to_string(cpus) + " -1 -1 " + std::to_string(cpus) + " " +
         std::to_string(estimate) + " -1 1 3 2 -1 -1 -1 -1 -1";
}

void preload_tail(service::Session& session, int jobs) {
  int fed = 0;
  for (int i = 0; i < jobs; ++i) {
    const std::string line =
        swf_line(100 + 45 * i, 240 + 60 * (i % 9), 8 + 16 * (i % 8), 1200);
    const std::string reply = session.handle_line(
        "{\"op\":\"ingest\",\"line\":\"" + service::json_escape(line) + "\"}");
    if (reply.find("\"accepted\":true") != std::string::npos) ++fed;
    // Every ~50 lines a straggler lands behind the frontier, forcing a
    // rewind: the bench baseline exercises the staleness machinery, not
    // just the append-only fast path.
    if (i > 0 && i % 50 == 0) {
      const std::string late = swf_line(45 * i / 2, 300, 32, 600);
      const std::string r2 = session.handle_line(
          "{\"op\":\"ingest\",\"line\":\"" + service::json_escape(late) +
          "\"}");
      if (r2.find("\"accepted\":true") != std::string::npos) ++fed;
    }
  }
  std::printf("preloaded %d tail lines (%zu rewinds, %zu snapshots)\n", fed,
              session.rewinds(), session.snapshot_count());
}

/// The deterministic query set, as open JSON prefixes ("...}" appended
/// per mode).  Mixed shapes: single/multi point, native/interstitial,
/// narrow/wide.
std::vector<std::string> query_prefixes(bool quick) {
  std::vector<std::string> qs = {
      "{\"op\":\"whatif\",\"jobs\":2,\"cpus\":32,\"runtime_s\":600,"
      "\"horizon_s\":14400",
      "{\"op\":\"whatif\",\"jobs\":6,\"cpus\":16,\"runtime_s\":300,"
      "\"horizon_s\":14400,\"points_s\":[0,3600]",
      "{\"op\":\"whatif\",\"jobs\":1,\"cpus\":256,\"runtime_s\":900,"
      "\"horizon_s\":21600",
      "{\"op\":\"whatif\",\"class\":\"interstitial\",\"jobs\":8,\"cpus\":8,"
      "\"runtime_s\":204,\"horizon_s\":28800",
      "{\"op\":\"whatif\",\"jobs\":4,\"cpus\":64,\"runtime_s\":450,"
      "\"horizon_s\":14400,\"points_s\":[0,1800,7200]",
      "{\"op\":\"whatif\",\"jobs\":3,\"cpus\":128,\"runtime_s\":600,"
      "\"horizon_s\":21600",
  };
  if (quick) qs.resize(4);
  return qs;
}

struct BenchResult {
  std::size_t queries = 0;
  int threads = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double budget_ms = 0.0;
  double throughput_qps = 0.0;
  bool purity_equal = false;
  // Observability overhead gate: the same serial query sweep with the
  // span recorder + stage profiler off vs fully on.
  double obs_off_ms = 0.0;
  double obs_on_ms = 0.0;
  double obs_overhead = 0.0;      ///< on/off - 1 (best-of-reps)
  double obs_overhead_max = 0.0;  ///< gate (ISTC_OBS_OVERHEAD_MAX)
  bool obs_pure = false;          ///< replies byte-identical with obs on
  bool pass() const {
    return purity_equal && p99_ms <= budget_ms && obs_pure &&
           obs_overhead <= obs_overhead_max;
  }
};

BenchResult run_gates() {
  const bool quick = quick_mode();
  BenchResult b;
  b.threads = 8;
  b.budget_ms = env_ms("ISTC_WHATIF_P99_MS", quick ? 400.0 : 250.0);

  service::SessionConfig cfg;
  cfg.site = cluster::Site::kRoss;
  cfg.snapshot_interval = 2 * kSecondsPerHour;
  service::Session session(cfg);
  preload_tail(session, quick ? 120 : 400);

  const auto prefixes = query_prefixes(quick);

  // Reference arm: serial, from-scratch re-simulation per query.
  std::vector<std::string> scratch;
  const auto scratch_t0 = std::chrono::steady_clock::now();
  for (const auto& p : prefixes) {
    scratch.push_back(session.handle_line(p + ",\"mode\":\"scratch\"}"));
  }
  const double scratch_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    scratch_t0)
          .count();

  // Measured arm: 8 concurrent clients, forked mode, per-query latency.
  const int rounds = quick ? 3 : 8;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(b.threads));
  std::vector<int> mismatches(static_cast<std::size_t>(b.threads), 0);
  const auto wall_t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < b.threads; ++t) {
    clients.emplace_back([&, t] {
      const auto ti = static_cast<std::size_t>(t);
      for (int r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < prefixes.size(); ++i) {
          // Deterministic per-thread walk so interleavings differ.
          const std::size_t pick =
              (i + ti * 3 + static_cast<std::size_t>(r)) % prefixes.size();
          const auto q_t0 = std::chrono::steady_clock::now();
          const std::string reply = session.handle_line(prefixes[pick] + "}");
          lat[ti].push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - q_t0)
                                .count());
          if (reply != scratch[pick]) ++mismatches[ti];
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_t0)
                            .count();

  std::vector<double> all;
  for (const auto& per_thread : lat) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  b.queries = all.size();
  b.p50_ms = all[all.size() / 2];
  b.p99_ms = all[(all.size() * 99 + 99) / 100 - 1];
  b.throughput_qps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0;

  int total_mismatches = 0;
  for (const int m : mismatches) total_mismatches += m;
  b.purity_equal = total_mismatches == 0;

  // Observability overhead gate.  Each timed arm first ingests one fresh
  // in-order tail line: the epoch bump invalidates the per-epoch reply
  // memoization, so both arms time real speculative simulation (fork +
  // sweep + verdict), not cache hits — the representative serving cost.
  // Off/on arms interleave rep-by-rep so slow drift in machine load hits
  // both equally, and best-of-reps (min) tames scheduler noise in CI.
  // Purity sub-gate: re-asking obs-off at the obs-on arm's epoch must
  // return byte-identical replies (observability never touches answers).
  // Quick mode runs inside ctest on whatever loaded box the suite gets
  // (possibly a single shared core, where a ms-scale wall-time ratio
  // measures the OS scheduler, not this code) — its default budget is a
  // catastrophic-regression backstop only.  The tight 3% bar is the full
  // run's, on the dedicated perf-smoke runner.
  b.obs_overhead_max =
      env_ms("ISTC_OBS_OVERHEAD_MAX", quick ? 1.00 : 0.03);
  const int ab_reps = quick ? 9 : 15;
  const int ab_cycles = quick ? 24 : 12;
  int obs_mismatches = 0;
  SimTime ab_submit = session.frontier() + 600;
  const auto bump_epoch = [&] {
    const std::string line = swf_line(ab_submit, 300, 8, 1200);
    ab_submit += 60;
    session.handle_line("{\"op\":\"ingest\",\"line\":\"" +
                        service::json_escape(line) + "\"}");
  };
  std::vector<std::string> ab_replies(prefixes.size());
  const auto timed_sweep_ms = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      ab_replies[i] = session.handle_line(prefixes[i] + "}");
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  // Only the query sweeps are timed: the epoch bump between sweeps keeps
  // the queries cold (the first ask per epoch recomputes the memoized
  // reference arm), but ingest itself stays outside the clock — its cost
  // is lumpy (cadence snapshots fork the whole run every
  // snapshot_interval) and would swamp the A/B with unrelated noise.
  // Off/on alternate per cycle, so each pair of measurements sits ~1 ms
  // apart and slow drift in machine load hits both arms equally;
  // best-of-reps (min) then discards reps hit by background stalls.
  b.obs_off_ms = std::numeric_limits<double>::infinity();
  b.obs_on_ms = std::numeric_limits<double>::infinity();
  std::vector<double> rep_ratios;
  for (int r = 0; r < ab_reps; ++r) {
    double off_ms = 0.0;
    double on_ms = 0.0;
    for (int cycle = 0; cycle < ab_cycles; ++cycle) {
      bump_epoch();
      obs::set_enabled(false);
      off_ms += timed_sweep_ms();
      bump_epoch();
      obs::set_enabled(true);
      on_ms += timed_sweep_ms();
      obs::set_enabled(false);
    }
    b.obs_off_ms = std::min(b.obs_off_ms, off_ms);
    b.obs_on_ms = std::min(b.obs_on_ms, on_ms);
    if (off_ms > 0) rep_ratios.push_back(on_ms / off_ms);
    // Purity: obs-off at the obs-on arm's final epoch must reproduce the
    // obs-on replies byte-for-byte.
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (session.handle_line(prefixes[i] + "}") != ab_replies[i]) {
        ++obs_mismatches;
      }
    }
  }
  obs::reset();
  b.obs_pure = obs_mismatches == 0;
  // The gated estimate is the MEDIAN of per-rep on/off ratios: each rep's
  // arms interleave cycle-by-cycle, so a background stall inflates both
  // sides of that rep's ratio, and the median discards the reps a stall
  // lands in anyway.  Min-vs-min would compare arms from different load
  // phases and swing wildly on a busy box.
  std::sort(rep_ratios.begin(), rep_ratios.end());
  b.obs_overhead = rep_ratios.empty()
                       ? 0.0
                       : rep_ratios[rep_ratios.size() / 2] - 1.0;

  const std::string purity_cell =
      b.purity_equal ? "BYTE-IDENTICAL"
                     : std::to_string(total_mismatches) + " MISMATCHES";
  std::printf(
      "%zu queries over %d clients x %d rounds: p50 %.2f ms, p99 %.2f ms "
      "(budget %.0f ms), %.1f q/s\n"
      "scratch reference: %zu queries in %.2f s\n"
      "concurrent forked replies vs serial scratch replies: %s\n"
      "obs overhead: %.2f ms off -> %.2f ms on = %+.1f%% "
      "(budget %.0f%%), obs-on replies %s\n",
      b.queries, b.threads, rounds, b.p50_ms, b.p99_ms, b.budget_ms,
      b.throughput_qps, prefixes.size(), scratch_s, purity_cell.c_str(),
      b.obs_off_ms, b.obs_on_ms, 100.0 * b.obs_overhead,
      100.0 * b.obs_overhead_max,
      b.obs_pure ? "BYTE-IDENTICAL" : "DIVERGED");
  bench::print_pool_stats("after gates");
  return b;
}

}  // namespace

int main() {
  bench::print_preamble(
      "whatif_service",
      "What-if admission-control service gates: 8-client concurrent query\n"
      "purity (forked == scratch, byte-identical) and p99 latency budget");

  const BenchResult b = run_gates();

  const std::string path = bench::artifact_path("BENCH_whatif.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(
        f,
        "{\n  \"schema\": \"istc.bench_whatif.v1\",\n"
        "  \"queries\": %zu,\n  \"threads\": %d,\n"
        "  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f,\n"
        "  \"budget_ms\": %.1f,\n  \"throughput_qps\": %.1f,\n"
        "  \"purity_equal\": %s,\n"
        "  \"obs_off_ms\": %.3f,\n  \"obs_on_ms\": %.3f,\n"
        "  \"obs_overhead\": %.4f,\n  \"obs_overhead_max\": %.4f,\n"
        "  \"obs_pure\": %s,\n  \"gate\": \"%s\"\n}\n",
        b.queries, b.threads, b.p50_ms, b.p99_ms, b.budget_ms,
        b.throughput_qps, b.purity_equal ? "true" : "false", b.obs_off_ms,
        b.obs_on_ms, b.obs_overhead, b.obs_overhead_max,
        b.obs_pure ? "true" : "false", b.pass() ? "pass" : "fail");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  if (!b.pass()) {
    const char* why = !b.purity_equal
                          ? "concurrent replies diverged from scratch"
                          : !b.obs_pure
                                ? "obs-on replies diverged from scratch"
                                : b.p99_ms > b.budget_ms
                                      ? "p99 latency over budget"
                                      : "observability overhead over budget";
    std::printf("GATE FAILED: %s\n", why);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
