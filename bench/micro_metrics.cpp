// Telemetry overhead gate: the Blue Mountain continual co-simulation run
// bare vs. with the full telemetry bundle (RunMetrics + 1-minute sim-time
// sampler, ~121k ticks over the 84-day log).  Reports min-of-reps wall
// milliseconds for both sides, writes BENCH_metrics.json, and exits
// nonzero when the relative overhead exceeds the budget (default 3%,
// override via ISTC_METRICS_OVERHEAD_MAX) — the CI hook that keeps the
// sampler's hook-transparent fast path honest.

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common.hpp"
#include "metrics/report.hpp"

namespace {

using namespace istc;

struct RepResult {
  double ms = 0.0;
  std::size_t records = 0;
  std::size_t samples = 0;
};

RepResult run_once(std::uint64_t log_seed, bool with_metrics) {
  core::Scenario sc;
  sc.site = cluster::Site::kBlueMountain;
  sc.log_seed = log_seed;  // fresh log: keep the run out of the RunCache
  sc.project = core::ProjectSpec::continual_stream(
      32, 120, cluster::site_span(sc.site));

  metrics::SamplerConfig cfg;
  cfg.interval = 60;  // one tick per sim minute; stop defaults to the span
  metrics::RunMetrics m(cfg);
  if (with_metrics) sc.metrics = &m;

  const auto t0 = std::chrono::steady_clock::now();
  const auto run = core::run_scenario(sc);
  const auto t1 = std::chrono::steady_clock::now();

  RepResult r;
  r.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.records = run.records.size();
  r.samples = m.sampler() != nullptr ? m.sampler()->rows().size() : 0;
  return r;
}

double overhead_limit() {
  if (const char* env = std::getenv("ISTC_METRICS_OVERHEAD_MAX");
      env != nullptr && env[0] != '\0') {
    return std::atof(env);
  }
  return 0.03;
}

}  // namespace

int main() {
  bench::print_preamble(
      "Telemetry overhead — continual co-simulation, metrics off vs. on",
      "Wall time of the heaviest scenario with a 1-minute sim-time sampler.");

  const int n = bench::reps(5);
  double min_off = 0.0, min_on = 0.0;
  std::size_t records_off = 0, records_on = 0, samples = 0;
  for (int rep = 0; rep < n; ++rep) {
    // Same fresh log seed on both sides of a rep; interleaved so ambient
    // machine load hits off and on runs alike.
    const auto seed = 0xCAFE + static_cast<std::uint64_t>(rep);
    const RepResult off = run_once(seed, /*with_metrics=*/false);
    const RepResult on = run_once(seed, /*with_metrics=*/true);
    min_off = rep == 0 ? off.ms : std::min(min_off, off.ms);
    min_on = rep == 0 ? on.ms : std::min(min_on, on.ms);
    records_off = off.records;
    records_on = on.records;
    samples = on.samples;
    std::printf("rep %d: off %8.1f ms   on %8.1f ms\n", rep, off.ms, on.ms);
  }

  // Sampling must be schedule-neutral; the record counts are the cheap
  // smoke of that here (the byte-level pin lives in the determinism tests).
  bool ok = records_off == records_on;
  if (!ok) {
    std::fprintf(stderr, "FAIL: metrics changed the schedule (%zu vs %zu "
                 "records)\n", records_off, records_on);
  }

  const double overhead = (min_on - min_off) / min_off;
  const double limit = overhead_limit();
  Table t;
  t.headers({"", "metrics off", "metrics on"});
  t.row({"min wall (ms)", Table::num(min_off, 1), Table::num(min_on, 1)});
  t.row({"job records", Table::integer(static_cast<long long>(records_off)),
         Table::integer(static_cast<long long>(records_on))});
  t.row({"sampler rows", "0", Table::integer(static_cast<long long>(samples))});
  t.print();
  std::printf("\noverhead: %+.2f%% (budget %.0f%%)\n", overhead * 100.0,
              limit * 100.0);

  const std::string path = bench::artifact_path("BENCH_metrics.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\"benchmarks\":[\n"
                 "{\"name\":\"metrics/continual_bluemtn/off\","
                 "\"min_ms\":%.3f,\"records\":%zu},\n"
                 "{\"name\":\"metrics/continual_bluemtn/on_60s\","
                 "\"min_ms\":%.3f,\"records\":%zu,\"samples\":%zu,"
                 "\"overhead\":%.6f,\"overhead_budget\":%.6f}\n"
                 "]}\n",
                 min_off, records_off, min_on, records_on, samples, overhead,
                 limit);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  if (overhead > limit) {
    std::fprintf(stderr, "FAIL: telemetry overhead %.2f%% exceeds budget "
                 "%.0f%%\n", overhead * 100.0, limit * 100.0);
    ok = false;
  }
  return ok ? 0 : 1;
}
