// Tracing overhead on the heaviest continual scenario (Blue Pacific,
// 12k-job log, 32-CPU x 120 s @ 1 GHz stream).  The acceptance bar for the
// trace subsystem: full tracing <= 5% wall time over the untraced run,
// disabled tracing (attached but inert) <= 0.5%.
//
//   ./bench/micro_trace --benchmark_filter=Continual
//
// Compare the four variants' wall times directly; they run the identical
// seeded scenario, so all schedule work is equal by construction (the
// determinism tests enforce it).

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "core/project.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace istc;

core::Scenario bluepac_continual(trace::Tracer* tracer) {
  core::Scenario sc;
  sc.site = cluster::Site::kBluePacific;
  sc.project = core::ProjectSpec::continual_stream(
      32, 120, cluster::site_span(cluster::Site::kBluePacific));
  sc.tracer = tracer;
  return sc;
}

void BM_ContinualUntraced(benchmark::State& state) {
  for (auto _ : state) {
    auto run = core::run_scenario(bluepac_continual(nullptr));
    benchmark::DoNotOptimize(run.records.data());
  }
}
BENCHMARK(BM_ContinualUntraced)->Unit(benchmark::kMillisecond);

void BM_ContinualTracerDisabled(benchmark::State& state) {
  for (auto _ : state) {
    trace::Tracer tracer(trace::TraceMode::kDisabled);
    auto run = core::run_scenario(bluepac_continual(&tracer));
    benchmark::DoNotOptimize(run.records.data());
  }
}
BENCHMARK(BM_ContinualTracerDisabled)->Unit(benchmark::kMillisecond);

void BM_ContinualCountersOnly(benchmark::State& state) {
  for (auto _ : state) {
    trace::Tracer tracer(trace::TraceMode::kCountersOnly);
    auto run = core::run_scenario(bluepac_continual(&tracer));
    benchmark::DoNotOptimize(run.trace.sched_pass_us_total);
  }
}
BENCHMARK(BM_ContinualCountersOnly)->Unit(benchmark::kMillisecond);

void BM_ContinualFullTracing(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    // Cap high enough that the whole replay fits (no drop path measured).
    trace::Tracer tracer(trace::TraceMode::kFull, 8u << 20);
    auto run = core::run_scenario(bluepac_continual(&tracer));
    benchmark::DoNotOptimize(run.records.data());
    events = tracer.size();
  }
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_ContinualFullTracing)->Unit(benchmark::kMillisecond);

// Wall-clock observability (src/obs) A/B on the same scenario: the span
// recorder + stage profiler fully enabled, no tracer attached.  Compare
// against BM_ContinualUntraced — the obs acceptance bar is <= 3%.
void BM_ContinualObsEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  for (auto _ : state) {
    auto run = core::run_scenario(bluepac_continual(nullptr));
    benchmark::DoNotOptimize(run.records.data());
  }
  obs::set_enabled(false);
  const obs::RecorderStats rec = obs::recorder_stats();
  state.counters["stage_samples"] = [] {
    double n = 0;
    for (const auto& p : obs::profile_snapshot()) {
      n += static_cast<double>(p.count);
    }
    return n;
  }();
  state.counters["spans"] = static_cast<double>(rec.recorded);
  obs::reset();
}
BENCHMARK(BM_ContinualObsEnabled)->Unit(benchmark::kMillisecond);

}  // namespace
