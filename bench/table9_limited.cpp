// Table 8 (second, "limited"): continual interstitial computing on Blue
// Mountain with submission restricted to instantaneous utilization caps of
// 90%, 95% and 98% (32-CPU x 458 s jobs).

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Table 8 (limited) — Capped continual interstitial, Blue Mountain",
      "Interstitial jobs submitted only while (busy + new)/N stays below "
      "the cap.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto& unlimited = core::continual_run(site, 32, 120);

  Table t;
  t.headers({"", "Util < 90%", "Util < 95%", "Util < 98%", "Unlimited"});
  std::vector<std::string> inter{"Interstitial jobs"},
      native{"Native jobs"}, overall{"Overall Utilization"},
      nutil{"Native Utilization"}, waits{"Median wait (ks) all / 5% largest"};

  const double caps[] = {0.90, 0.95, 0.98, 1.0};
  for (double cap : caps) {
    const auto& run = cap < 1.0 ? core::continual_run(site, 32, 120, cap)
                                : unlimited;
    inter.push_back(
        Table::integer(static_cast<long long>(run.interstitial_count())));
    native.push_back(
        Table::integer(static_cast<long long>(run.native_count())));
    overall.push_back(Table::num(bench::overall_util(run), 3));
    nutil.push_back(Table::num(bench::native_util_of(run), 3));
    waits.push_back(bench::median_waits_cell(run.records));
  }
  for (auto* row : {&inter, &native, &overall, &nutil, &waits}) t.row(*row);
  t.print();

  const double base_util = bench::overall_util(base);
  std::printf(
      "\nNative-only baseline utilization: %.3f\n"
      "Paper: the 90%% cap costs ~40%% of the interstitial jobs and ~6\n"
      "utilization points vs unlimited, but leaves the natives essentially\n"
      "untouched; 95%% costs ~20%% of jobs / 3 points; 98%% ~10%% / 1 point.\n",
      base_util);
  return 0;
}
