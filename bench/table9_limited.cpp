// Table 8 (second, "limited"): continual interstitial computing on Blue
// Mountain with submission restricted to instantaneous utilization caps of
// 90%, 95% and 98% (32-CPU x 458 s jobs) — run as a fork-tree sweep.
//
// All four cap settings share the identical uncapped stream up to the
// divergence time t0 (three quarters of the log); from there each point
// caps its own fork of the run (windowed-cap semantics: the cap governs
// submission from t0 on).  core::SweepRunner simulates [0, t0] once, forks
// one SimRun per cap, and re-simulates every point from scratch as the
// reference arm.  The exit gate is the tentpole's contract: every capped
// window bit-identical between the arms, and the forked sweep at least 2x
// faster end-to-end (1.3x under ISTC_QUICK; ISTC_FORK_SPEEDUP_MIN
// overrides).  Threads are pinned to 1 so the speedup measures prefix
// reuse, not host parallelism.

#include <cstdlib>
#include <memory>

#include "common.hpp"
#include "core/fork.hpp"
#include "core/sweep.hpp"

namespace {

using namespace istc;

bool same_run(const sched::RunResult& a, const sched::RunResult& b) {
  if (a.sim_end != b.sim_end || a.records.size() != b.records.size() ||
      a.killed.size() != b.killed.size()) {
    return false;
  }
  const auto same = [](const sched::JobRecord& x, const sched::JobRecord& y) {
    return x.job.id == y.job.id && x.job.cpus == y.job.cpus &&
           x.start == y.start && x.end == y.end;
  };
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!same(a.records[i], b.records[i])) return false;
  }
  for (std::size_t i = 0; i < a.killed.size(); ++i) {
    if (!same(a.killed[i], b.killed[i])) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace istc;
  bench::print_preamble(
      "Table 8 (limited) — Capped continual interstitial, Blue Mountain",
      "Caps applied from the fork point on; interstitial jobs submitted "
      "only while (busy + new)/N stays below the cap.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const SimTime span = cluster::site_span(site);
  // The uncapped stream is the shared prefix; caps bite in the back
  // eighth of the log.  (Sim-time is not wall-time: the back stretch is
  // denser in events — stream churn plus the drain — so the final eighth
  // still holds roughly a quarter of the per-run wall clock.)
  const SimTime t0 = span / 8 * 7;

  const double caps[] = {0.90, 0.95, 0.98, 1.0};
  constexpr std::size_t kPoints = std::size(caps);

  core::SweepRunner<core::SimRun> sweep(kPoints, [&](std::size_t) {
    return std::make_unique<core::SimRun>(bench::bluemtn_scenario(32, 120));
  });
  sweep.set_threads(1);  // measure prefix reuse, not host parallelism
  const auto verified = sweep.run_verified(
      t0,
      [&](core::SimRun& run, std::size_t i) {
        if (caps[i] < 1.0) run.driver()->set_utilization_cap(caps[i]);
        return run.finish();
      },
      same_run);

  Table t;
  t.headers({"", "Util < 90%", "Util < 95%", "Util < 98%", "Unlimited"});
  std::vector<std::string> inter{"Interstitial jobs"},
      native{"Native jobs"}, overall{"Overall Utilization"},
      nutil{"Native Utilization"}, waits{"Median wait (ks) all / 5% largest"};
  for (const auto& run : verified.forked) {
    inter.push_back(
        Table::integer(static_cast<long long>(run.interstitial_count())));
    native.push_back(
        Table::integer(static_cast<long long>(run.native_count())));
    overall.push_back(Table::num(bench::overall_util(run), 3));
    nutil.push_back(Table::num(bench::native_util_of(run), 3));
    waits.push_back(bench::median_waits_cell(run.records));
  }
  for (auto* row : {&inter, &native, &overall, &nutil, &waits}) t.row(*row);
  t.print();

  const bool quick = std::getenv("ISTC_QUICK") != nullptr;
  double min_speedup = quick ? 1.3 : 2.0;
  if (const char* env = std::getenv("ISTC_FORK_SPEEDUP_MIN")) {
    min_speedup = std::atof(env);
  }
  const bool fast_enough =
      min_speedup <= 0 || verified.speedup() >= min_speedup;

  const double base_util = bench::overall_util(base);
  std::printf(
      "\nNative-only baseline utilization: %.3f\n"
      "Caps are applied at the fork point t0 = %.0f h (of %.0f h): the\n"
      "four settings share one uncapped prefix simulation, then each fork\n"
      "caps its own submission stream.  Paper (whole-run caps): 90%%\n"
      "costs ~40%% of the interstitial jobs, 95%% ~20%%, 98%% ~10%%; here\n"
      "the cap only governs the final eighth, so the job deltas are\n"
      "proportionally smaller but ordered the same way.\n"
      "fork results bit-identical to from-scratch runs: %s\n"
      "sweep wall time: forked %.2fs vs from-scratch %.2fs (%.2fx, need "
      ">=%.2fx)\n",
      base_util, static_cast<double>(t0) / 3600.0,
      static_cast<double>(span) / 3600.0, verified.equal ? "yes" : "NO",
      verified.forked_wall_s, verified.scratch_wall_s, verified.speedup(),
      min_speedup);
  return (verified.equal && fast_enough) ? 0 : 1;
}
