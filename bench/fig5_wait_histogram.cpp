// Figure 5: distribution of native-job wait times on Blue Mountain, binned
// by log10(seconds): no interstitial vs 32CPUx458s vs 32CPUx3664s.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Figure 5 — Wait times of native jobs on Blue Mountain",
      "Fraction of native jobs per log10(wait seconds) decade.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto& short_run = core::continual_run(site, 32, 120);
  const auto& long_run = core::continual_run(site, 32, 960);

  const auto h0 = metrics::wait_histogram(base.records);
  const auto h1 = metrics::wait_histogram(short_run.records);
  const auto h2 = metrics::wait_histogram(long_run.records);

  Table t;
  t.headers({"wait log10(s)", "no interstitial", "32CPU x 458s",
             "32CPU x 3664s"});
  for (std::size_t d = 0; d < h0.decades(); ++d) {
    t.row({Log10Histogram::bin_label(d), Table::num(h0.fraction(d), 3),
           Table::num(h1.fraction(d), 3), Table::num(h2.fraction(d), 3)});
  }
  t.print();
  std::printf(
      "\nPaper shape check: the big [0,1) peak of the no-interstitial case\n"
      "is pushed out to the decade of one interstitial runtime ([2,3) for\n"
      "458 s, [3,4) for 3664 s), with a small cascade tail in [4,6).\n");
  return 0;
}
