// Figure 5: distribution of native-job wait times on Blue Mountain: no
// interstitial vs 32CPUx458s vs 32CPUx3664s.  Ported to the telemetry
// layer: the bins are the shared metrics::Log2Histogram (power-of-two
// seconds) filled through RunMetrics, cross-checked against a naive
// reference binner and against the legacy log10 histogram's totals on the
// baseline scenario (exit 1 on mismatch).

#include <array>

#include "common.hpp"
#include "metrics/histogram.hpp"
#include "metrics/report.hpp"

namespace {

using namespace istc;

const metrics::Log2Histogram& native_wait_hist(
    metrics::RunMetrics& m, std::span<const sched::JobRecord> records) {
  m.ingest_records(records);
  return m.registry().find_histogram("native_wait_s")->hist;
}

/// Naive reference binner: linear scan over the bucket edges, no bit
/// tricks.  The port assertion compares it bucket-by-bucket with the
/// Log2Histogram fill.
std::array<std::uint64_t, metrics::Log2Histogram::kBuckets> naive_bins(
    std::span<const sched::JobRecord> records) {
  std::array<std::uint64_t, metrics::Log2Histogram::kBuckets> counts{};
  for (const auto& r : records) {
    if (r.interstitial()) continue;
    const auto v = static_cast<std::uint64_t>(r.wait());
    for (int k = 0; k < metrics::Log2Histogram::kBuckets; ++k) {
      if (v >= metrics::Log2Histogram::bucket_lo(k) &&
          (k == metrics::Log2Histogram::kBuckets - 1 ||
           v < metrics::Log2Histogram::bucket_hi(k))) {
        ++counts[static_cast<std::size_t>(k)];
        break;
      }
    }
  }
  return counts;
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figure 5 — Wait times of native jobs on Blue Mountain",
      "Fraction of native jobs per power-of-two wait bucket (seconds).");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto& short_run = core::continual_run(site, 32, 120);
  const auto& long_run = core::continual_run(site, 32, 960);

  metrics::RunMetrics m0, m1, m2;
  const auto& h0 = native_wait_hist(m0, base.records);
  const auto& h1 = native_wait_hist(m1, short_run.records);
  const auto& h2 = native_wait_hist(m2, long_run.records);

  const int lo = std::max(0, std::min({h0.first_nonzero(), h1.first_nonzero(),
                                       h2.first_nonzero()}));
  const int hi = std::max({h0.last_nonzero(), h1.last_nonzero(),
                           h2.last_nonzero()});
  Table t;
  t.headers({"wait seconds", "no interstitial", "32CPU x 458s",
             "32CPU x 3664s"});
  const auto frac = [](const metrics::Log2Histogram& h, int k) {
    return h.total() == 0 ? 0.0
                          : static_cast<double>(h.count(k)) /
                                static_cast<double>(h.total());
  };
  for (int k = lo; k <= hi; ++k) {
    t.row({metrics::bucket_label(k), Table::num(frac(h0, k), 3),
           Table::num(frac(h1, k), 3), Table::num(frac(h2, k), 3)});
  }
  t.print();
  std::printf(
      "\nPaper shape check: the big zero-wait peak of the no-interstitial\n"
      "case is pushed out to buckets around one interstitial runtime\n"
      "(458 s resp. 3664 s), with a small cascade tail beyond.\n");

  // Port assertions (baseline scenario): the histogram fill must match the
  // naive reference binner exactly, and its total must equal the legacy
  // log10 histogram's native-job total.
  bool ok = true;
  const auto naive = naive_bins(base.records);
  for (int k = 0; k < metrics::Log2Histogram::kBuckets; ++k) {
    if (naive[static_cast<std::size_t>(k)] != h0.count(k)) {
      std::fprintf(stderr, "FAIL: bucket %d naive %llu vs histogram %llu\n",
                   k,
                   static_cast<unsigned long long>(
                       naive[static_cast<std::size_t>(k)]),
                   static_cast<unsigned long long>(h0.count(k)));
      ok = false;
    }
  }
  const auto legacy = metrics::wait_histogram(base.records);
  if (legacy.total() != h0.total()) {
    std::fprintf(stderr, "FAIL: legacy total %zu vs histogram total %llu\n",
                 legacy.total(),
                 static_cast<unsigned long long>(h0.total()));
    ok = false;
  }
  std::printf("\nported-binning cross-check: %s\n", ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
