// Sensitivity: are the headline results artifacts of one synthetic trace?
// Regenerate each site's log under several alternate seeds, rerun the
// native baseline and the Blue Mountain continual scenario, and report the
// spread.  Replications run in parallel (one forked RNG stream per seed).

#include <array>
#include <mutex>

#include "common.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Sensitivity — alternate workload seeds",
      "Utilization and harvest spread across regenerated logs.");

  constexpr std::array<std::uint64_t, 5> kSeeds{11, 22, 33, 44, 55};

  {
    Table t("native utilization by seed (target from Table 1)");
    t.headers({"site", "target", "seed mean ± std", "min", "max"});
    for (auto site : cluster::all_sites()) {
      std::vector<double> utils(kSeeds.size());
      parallel_for(kSeeds.size(), [&](std::size_t i) {
        core::Scenario sc;
        sc.site = site;
        sc.log_seed = kSeeds[i];
        const auto run = core::run_scenario(sc);
        utils[i] = metrics::average_utilization(run.records,
                                                run.machine.cpus, 0,
                                                run.span);
      });
      const Summary s(utils);
      t.row({cluster::site_name(site),
             Table::num(cluster::site_targets(site).utilization, 3),
             Table::pm(s.mean(), s.stddev(), 3), Table::num(s.min(), 3),
             Table::num(s.max(), 3)});
    }
    t.print();
  }

  std::printf("\n");
  {
    Table t("Blue Mountain continual interstitial (32CPU x 458s) by seed");
    t.headers({"seed", "interstitial jobs", "overall util", "native util",
               "median wait (s)"});
    std::mutex mu;
    std::vector<std::vector<std::string>> rows(kSeeds.size());
    parallel_for(kSeeds.size(), [&](std::size_t i) {
      core::Scenario sc;
      sc.site = cluster::Site::kBlueMountain;
      sc.log_seed = kSeeds[i];
      sc.project = core::ProjectSpec::continual_stream(
          32, 120, cluster::site_span(sc.site));
      const auto run = core::run_scenario(sc);
      const auto w = metrics::wait_stats(run.records);
      std::lock_guard lk(mu);
      rows[i] = {Table::integer(static_cast<long long>(kSeeds[i])),
                 Table::integer(
                     static_cast<long long>(run.interstitial_count())),
                 Table::num(bench::overall_util(run), 3),
                 Table::num(bench::native_util_of(run), 3),
                 Table::num(w.median_wait_s, 0)};
    });
    for (auto& r : rows) t.row(std::move(r));
    t.print();
  }

  std::printf(
      "\nReading: the calibration and the utilization-lift conclusion are\n"
      "stable across regenerated traces — the canonical-seed results are\n"
      "not lucky draws.\n");
  return 0;
}
