// Sensitivity: are the headline results artifacts of one synthetic trace?
// Regenerate each site's log under several alternate seeds, rerun the
// native baseline and the Blue Mountain continual scenario, and report the
// spread.  Each seed family is a SweepRunner scratch sweep (per-seed logs
// differ from t = 0, so there is no prefix to share); points still run in
// parallel with thread-count-independent ordering.

#include <array>

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Sensitivity — alternate workload seeds",
      "Utilization and harvest spread across regenerated logs.");

  constexpr std::array<std::uint64_t, 5> kSeeds{11, 22, 33, 44, 55};

  {
    Table t("native utilization by seed (target from Table 1)");
    t.headers({"site", "target", "seed mean ± std", "min", "max"});
    for (auto site : cluster::all_sites()) {
      std::vector<core::Scenario> scenarios;
      for (std::uint64_t seed : kSeeds) {
        core::Scenario sc;
        sc.site = site;
        sc.log_seed = seed;
        scenarios.push_back(sc);
      }
      const auto runs = bench::run_scenarios(scenarios);
      std::vector<double> utils;
      for (const auto& run : runs) utils.push_back(bench::overall_util(run));
      const Summary s(utils);
      t.row({cluster::site_name(site),
             Table::num(cluster::site_targets(site).utilization, 3),
             Table::pm(s.mean(), s.stddev(), 3), Table::num(s.min(), 3),
             Table::num(s.max(), 3)});
    }
    t.print();
  }

  std::printf("\n");
  {
    std::vector<core::Scenario> scenarios;
    for (std::uint64_t seed : kSeeds) {
      core::Scenario sc = bench::bluemtn_scenario(32, 120);
      sc.log_seed = seed;
      scenarios.push_back(sc);
    }
    const auto runs = bench::run_scenarios(scenarios);

    Table t("Blue Mountain continual interstitial (32CPU x 458s) by seed");
    t.headers({"seed", "interstitial jobs", "overall util", "native util",
               "median wait (s)"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto w = bench::wait_cells(runs[i].records);
      t.row({Table::integer(static_cast<long long>(kSeeds[i])),
             Table::integer(
                 static_cast<long long>(runs[i].interstitial_count())),
             Table::num(bench::overall_util(runs[i]), 3),
             Table::num(bench::native_util_of(runs[i]), 3), w.median});
    }
    t.print();
  }

  std::printf(
      "\nReading: the calibration and the utilization-lift conclusion are\n"
      "stable across regenerated traces — the canonical-seed results are\n"
      "not lucky draws.\n");
  return 0;
}
