// Table 5: native job performance on Blue Mountain without interstitial
// jobs and under the two continual 32-CPU streams of Fig. 3.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Table 5 — Native job performance on Blue Mountain",
      "Wait and expansion factor (EF = 1 + wait/runtime), avg and median.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto& short_run = core::continual_run(site, 32, 120);   // 458 s
  const auto& long_run = core::continual_run(site, 32, 960);    // 3664 s

  struct Scenario {
    const char* name;
    const sched::RunResult* run;
  };
  const Scenario scenarios[] = {
      {"Native", &base},
      {"Native + 32-CPU x 458 s", &short_run},
      {"Native + 32-CPU x 3664 s", &long_run},
  };

  for (double frac : {1.0, 0.05}) {
    Table t(frac == 1.0 ? "All native jobs" : "5% largest jobs (CPU-sec)");
    t.headers({"scenario", "avg wait (s)", "median wait (s)", "avg EF",
               "median EF"});
    for (const auto& sc : scenarios) {
      const auto subset =
          frac == 1.0
              ? std::vector<sched::JobRecord>(sc.run->records.begin(),
                                              sc.run->records.end())
              : metrics::largest_native(sc.run->records, frac);
      const auto w = metrics::wait_stats(subset);
      t.row({sc.name, Table::num(w.avg_wait_s, 0),
             Table::num(w.median_wait_s, 0), Table::num(w.avg_ef, 1),
             Table::num(w.median_ef, 1)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape checks: both streams raise waits and EF noticeably; the\n"
      "longer (3664 s) jobs hurt more than the shorter (458 s) jobs; the\n"
      "5%% largest jobs bear a disproportionate share of the delay.\n");
  return 0;
}
