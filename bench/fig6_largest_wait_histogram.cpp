// Figure 6: wait-time distribution of the 5% largest native jobs (by
// CPU-seconds) on Blue Mountain, same scenarios as Fig. 5.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Figure 6 — Wait times of 5% largest native jobs (CPU-sec)",
      "Fraction of the largest-5% native jobs per log10(wait) decade.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto& short_run = core::continual_run(site, 32, 120);
  const auto& long_run = core::continual_run(site, 32, 960);

  auto hist_of = [](const sched::RunResult& run) {
    const auto largest = metrics::largest_native(run.records, 0.05);
    return metrics::wait_histogram(largest);
  };
  const auto h0 = hist_of(base);
  const auto h1 = hist_of(short_run);
  const auto h2 = hist_of(long_run);

  Table t;
  t.headers({"wait log10(s)", "no interstitial", "32CPU x 458s",
             "32CPU x 3664s"});
  for (std::size_t d = 0; d < h0.decades(); ++d) {
    t.row({Log10Histogram::bin_label(d), Table::num(h0.fraction(d), 3),
           Table::num(h1.fraction(d), 3), Table::num(h2.fraction(d), 3)});
  }
  t.print();
  std::printf(
      "\nPaper shape check: the largest jobs shift toward the high decades\n"
      "more strongly than the overall population (compare Figure 5) — they\n"
      "bear the brunt of the interstitial delay cascades.\n");
  return 0;
}
