// Figure 6: wait-time distribution of the 5% largest native jobs (by
// CPU-seconds) on Blue Mountain, same scenarios as Fig. 5.  Ported to the
// shared metrics::Log2Histogram through RunMetrics::ingest_records on the
// largest-5% subset; totals are checked against the legacy log10 binning.

#include "common.hpp"
#include "metrics/histogram.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Figure 6 — Wait times of 5% largest native jobs (CPU-sec)",
      "Fraction of the largest-5% native jobs per power-of-two bucket.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto& short_run = core::continual_run(site, 32, 120);
  const auto& long_run = core::continual_run(site, 32, 960);

  metrics::RunMetrics m0, m1, m2;
  const auto hist_of = [](metrics::RunMetrics& m,
                          const sched::RunResult& run)
      -> const metrics::Log2Histogram& {
    m.ingest_records(metrics::largest_native(run.records, 0.05));
    return m.registry().find_histogram("native_wait_s")->hist;
  };
  const auto& h0 = hist_of(m0, base);
  const auto& h1 = hist_of(m1, short_run);
  const auto& h2 = hist_of(m2, long_run);

  const int lo = std::max(0, std::min({h0.first_nonzero(), h1.first_nonzero(),
                                       h2.first_nonzero()}));
  const int hi = std::max({h0.last_nonzero(), h1.last_nonzero(),
                           h2.last_nonzero()});
  Table t;
  t.headers({"wait seconds", "no interstitial", "32CPU x 458s",
             "32CPU x 3664s"});
  const auto frac = [](const metrics::Log2Histogram& h, int k) {
    return h.total() == 0 ? 0.0
                          : static_cast<double>(h.count(k)) /
                                static_cast<double>(h.total());
  };
  for (int k = lo; k <= hi; ++k) {
    t.row({metrics::bucket_label(k), Table::num(frac(h0, k), 3),
           Table::num(frac(h1, k), 3), Table::num(frac(h2, k), 3)});
  }
  t.print();
  std::printf(
      "\nPaper shape check: the largest jobs shift toward the high buckets\n"
      "more strongly than the overall population (compare Figure 5) — they\n"
      "bear the brunt of the interstitial delay cascades.\n");

  // Port assertion: same subset, same jobs — the Log2 total must equal the
  // legacy log10 histogram's total on every scenario.
  bool ok = true;
  const auto check = [&ok](const char* what, const sched::RunResult& run,
                           const metrics::Log2Histogram& h) {
    const auto subset = metrics::largest_native(run.records, 0.05);
    const auto legacy = metrics::wait_histogram(subset);
    if (legacy.total() != h.total()) {
      std::fprintf(stderr, "FAIL %s: legacy total %zu vs histogram %llu\n",
                   what, legacy.total(),
                   static_cast<unsigned long long>(h.total()));
      ok = false;
    }
  };
  check("baseline", base, h0);
  check("458s", short_run, h1);
  check("3664s", long_run, h2);
  std::printf("\nported-binning cross-check: %s\n", ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
