// Microbenchmarks of the workload generator.

#include <benchmark/benchmark.h>

#include "workload/presets.hpp"

namespace {

using istc::cluster::Site;

void BM_GenerateSiteLog(benchmark::State& state) {
  const auto site = static_cast<Site>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto log = istc::workload::site_log(site, seed++);
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<long>(istc::cluster::site_targets(site).jobs));
}
BENCHMARK(BM_GenerateSiteLog)
    ->Arg(static_cast<int>(Site::kRoss))
    ->Arg(static_cast<int>(Site::kBlueMountain))
    ->Arg(static_cast<int>(Site::kBluePacific))
    ->Unit(benchmark::kMillisecond);

void BM_ArrivalProcess(benchmark::State& state) {
  istc::workload::ArrivalProcess proc{istc::workload::ArrivalSpec{}};
  istc::Rng rng(7);
  for (auto _ : state) {
    const auto a = proc.generate(istc::days(30),
                                 static_cast<std::size_t>(state.range(0)),
                                 rng);
    benchmark::DoNotOptimize(a.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ArrivalProcess)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
