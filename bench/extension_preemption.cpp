// Extension beyond the paper: preemptible interstitial jobs.
//
// The paper's jobs are strictly non-preemptive, so interstitial computing
// must gate submissions to protect natives.  Modern scavenger systems
// (HTCondor-style) instead *evict* scavenger jobs on demand.  This driver
// quantifies the trade on the Blue Mountain continual scenario:
//   - non-preemptive + gate (the paper's design)
//   - preemptive + no gate  (fill everything, kill on native demand)
// measuring native impact, harvest, and the cycles wasted by kills.

#include <algorithm>

#include "common.hpp"

namespace {

istc::sched::RunResult run_case(
    bool preempt, istc::core::GatePolicy gate,
    istc::core::PreemptionRecovery recovery =
        istc::core::PreemptionRecovery::kNone) {
  istc::core::Scenario sc;
  sc.site = istc::cluster::Site::kBlueMountain;
  auto stream = istc::core::ProjectSpec::continual_stream(
      32, 120, istc::cluster::site_span(sc.site));
  stream.gate = gate;
  stream.recovery = recovery;
  sc.project = stream;
  sc.preempt_interstitial = preempt;
  return istc::core::run_scenario(sc);
}

}  // namespace

int main() {
  using namespace istc;
  bench::print_preamble(
      "Extension — preemptible interstitial jobs (Blue Mountain, 32CPU x 458s)",
      "Gate-and-wait (the paper) vs fill-and-evict (scavenger style).");

  const auto& base = core::native_baseline(cluster::Site::kBlueMountain);
  const auto gated = run_case(false, core::GatePolicy::kQueueProtective);
  const auto evict = run_case(true, core::GatePolicy::kAlways);
  const auto evict_ckpt = run_case(true, core::GatePolicy::kAlways,
                                   core::PreemptionRecovery::kCheckpoint);

  Table t;
  t.headers({"scenario", "interstitial jobs", "killed", "lost cpu-h",
             "useful util", "median wait (s)", "avg wait (s)"});
  auto add = [&](const char* name, const sched::RunResult& run,
                 bool checkpointed) {
    const auto w = metrics::wait_stats(run.records);
    // Under checkpoint recovery the executed part of a kill is preserved,
    // so nothing is lost; otherwise the killed jobs' cycles are wasted.
    const double lost =
        checkpointed ? 0.0 : run.wasted_cpu_seconds() / 3600.0;
    double useful_busy = metrics::busy_cpu_seconds(
        run.records, 0, run.span, metrics::JobFilter::kAll);
    if (checkpointed) {
      for (const auto& k : run.killed) {
        const SimTime a = std::max<SimTime>(0, k.start);
        const SimTime b = std::min(run.span, k.end);
        if (b > a) useful_busy += static_cast<double>(k.job.cpus) *
                                  static_cast<double>(b - a);
      }
    }
    const double useful_util =
        useful_busy / (static_cast<double>(run.machine.cpus) *
                       static_cast<double>(run.span));
    t.row({name,
           Table::integer(static_cast<long long>(run.interstitial_count())),
           Table::integer(static_cast<long long>(run.killed.size())),
           Table::num(lost, 0), Table::num(useful_util, 3),
           Table::num(w.median_wait_s, 0), Table::num(w.avg_wait_s, 0)});
  };
  add("native only", base, false);
  add("gate, no preemption (paper)", gated, false);
  add("no gate, evict + restart", evict, false);
  add("no gate, evict + checkpoint", evict_ckpt, true);
  t.print();

  std::printf(
      "\nReading: eviction returns native waits *exactly* to the baseline —\n"
      "natives are literally unaffected.  Without checkpointing the price\n"
      "is the killed jobs' lost cycles (~an eighth of the harvest here);\n"
      "with checkpoint/restart — the capability whose absence the paper's\n"
      "§4.2 'breakage in time' laments — the stream matches the gated\n"
      "design's useful utilization while eliminating native impact\n"
      "entirely.  The paper's gate is exactly the right design for its\n"
      "non-preemptive world; preemption+checkpoint strictly dominates it\n"
      "when the platform allows.\n");
  return 0;
}
