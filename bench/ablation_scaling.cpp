// Comparator: §4.3.2's headline — "this is a far more efficient way for
// increasing utilization than say by increasing the job mix by using
// longer or larger jobs ... even a 10% increase in utilization leads to
// large increases in wait time and expansion factor, beyond those seen in
// our interstitial study."
//
// We raise Blue Mountain utilization two ways and compare the native cost:
//   (a) interstitial: continual 32-CPU x 458 s stream
//   (b) longer native jobs: runtimes scaled x1.1 / x1.2
//   (c) larger native jobs: widths scaled x1.1 / x1.2

#include "common.hpp"

namespace {

istc::sched::RunResult run_scaled(double time_f, double size_f) {
  istc::core::Scenario sc;
  sc.site = istc::cluster::Site::kBlueMountain;
  sc.native_time_factor = time_f;
  sc.native_size_factor = size_f;
  return istc::core::run_scenario(sc);
}

}  // namespace

int main() {
  using namespace istc;
  bench::print_preamble(
      "Comparator — interstitial vs scaling the native job mix (Blue Mtn)",
      "Same utilization lift, very different native price (§4.3.2).");

  const auto& base = core::native_baseline(cluster::Site::kBlueMountain);
  const auto& inter = core::continual_run(cluster::Site::kBlueMountain, 32,
                                          120);

  struct Row {
    std::string name;
    const sched::RunResult* run = nullptr;
    sched::RunResult owned;  // for the scaled scenarios
  };
  std::vector<Row> rows;
  rows.push_back({"native baseline", &base, {}});
  rows.push_back({"interstitial 32CPU x 458s", &inter, {}});
  for (double f : {1.1, 1.2}) {
    Row r;
    r.name = "runtimes x " + Table::num(f, 1);
    r.owned = run_scaled(f, 1.0);
    rows.push_back(std::move(r));
  }
  for (double f : {1.1, 1.2}) {
    Row r;
    r.name = "widths x " + Table::num(f, 1);
    r.owned = run_scaled(1.0, f);
    rows.push_back(std::move(r));
  }

  Table t;
  t.headers({"scenario", "overall util", "median wait (s)", "avg wait (s)",
             "median EF", "avg EF"});
  for (auto& row : rows) {
    const sched::RunResult& run = row.run ? *row.run : row.owned;
    const auto w = metrics::wait_stats(run.records);
    t.row({row.name, Table::num(bench::overall_util(run), 3),
           Table::num(w.median_wait_s, 0), Table::num(w.avg_wait_s, 0),
           Table::num(w.median_ef, 2), Table::num(w.avg_ef, 1)});
  }
  t.print();

  std::printf(
      "\nReading: the interstitial stream buys ~16 utilization points for a\n"
      "~200 s median-wait increase; scaling the native mix buys far fewer\n"
      "points and pays for them in hours of native wait — the paper's\n"
      "\"all but unachievable through a job mix scaled up in time or\n"
      "space\".\n");
  return 0;
}
