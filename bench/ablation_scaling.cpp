// Comparator: §4.3.2's headline — "this is a far more efficient way for
// increasing utilization than say by increasing the job mix by using
// longer or larger jobs ... even a 10% increase in utilization leads to
// large increases in wait time and expansion factor, beyond those seen in
// our interstitial study."
//
// We raise Blue Mountain utilization two ways and compare the native cost:
//   (a) interstitial: continual 32-CPU x 458 s stream
//   (b) longer native jobs: runtimes scaled x1.1 / x1.2
//   (c) larger native jobs: widths scaled x1.1 / x1.2

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Comparator — interstitial vs scaling the native job mix (Blue Mtn)",
      "Same utilization lift, very different native price (§4.3.2).");

  const auto& base = core::native_baseline(cluster::Site::kBlueMountain);
  const auto& inter = core::continual_run(cluster::Site::kBlueMountain, 32,
                                          120);

  std::vector<std::string> names;
  std::vector<core::Scenario> scenarios;
  for (double f : {1.1, 1.2}) {
    core::Scenario sc = bench::bluemtn_scenario();
    sc.native_time_factor = f;
    names.push_back("runtimes x " + Table::num(f, 1));
    scenarios.push_back(sc);
  }
  for (double f : {1.1, 1.2}) {
    core::Scenario sc = bench::bluemtn_scenario();
    sc.native_size_factor = f;
    names.push_back("widths x " + Table::num(f, 1));
    scenarios.push_back(sc);
  }
  const auto scaled = bench::run_scenarios(scenarios);

  Table t;
  t.headers({"scenario", "overall util", "median wait (s)", "avg wait (s)",
             "median EF", "avg EF"});
  const auto emit = [&t](const std::string& name,
                         const sched::RunResult& run) {
    const auto w = bench::wait_cells(run.records);
    t.row({name, Table::num(bench::overall_util(run), 3), w.median, w.avg,
           w.median_ef, w.avg_ef});
  };
  emit("native baseline", base);
  emit("interstitial 32CPU x 458s", inter);
  for (std::size_t i = 0; i < scaled.size(); ++i) emit(names[i], scaled[i]);
  t.print();

  std::printf(
      "\nReading: the interstitial stream buys ~16 utilization points for a\n"
      "~200 s median-wait increase; scaling the native mix buys far fewer\n"
      "points and pays for them in hours of native wait — the paper's\n"
      "\"all but unachievable through a job mix scaled up in time or\n"
      "space\".\n");
  return 0;
}
