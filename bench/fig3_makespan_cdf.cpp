// Figure 3: CDF (survival form, P(X > makespan)) of the makespan on Blue
// Mountain for two equal-size 123-Pc projects: 32,000 jobs x 458 s vs
// 4,000 jobs x 3664 s (both 32 CPUs), plus the theory reference lines.

#include "common.hpp"
#include "util/histogram.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Figure 3 — Makespan survival CDF, Blue Mountain, 32-CPU jobs",
      "Equal project size (123 Pc); black = 32k x 458 s, gray = 4k x 3664 s.");

  const auto site = cluster::Site::kBlueMountain;
  const int n = bench::reps(500);
  const auto short_spec = core::ProjectSpec::paper(32000, 32, 120);
  const auto long_spec = core::ProjectSpec::paper(4000, 32, 960);

  const auto m_short = core::fallible_makespans(site, short_spec, n);
  const auto m_long = core::fallible_makespans(site, long_spec, n);

  const auto in = core::theory_inputs(cluster::machine_spec(site),
                                      core::native_utilization(site));
  const double min_h =
      core::dedicated_makespan_s(in, short_spec.total_cycles()) / 3600.0;
  const double util_h =
      core::ideal_makespan_s(in, short_spec.total_cycles()) / 3600.0;

  std::printf("theoretical minimum makespan (whole machine): %.0f h\n", min_h);
  std::printf("minimum at avg utilization, 1/(1-<U>):          %.0f h\n\n",
              util_h);

  const SurvivalCurve c_short(m_short.hours);
  const SurvivalCurve c_long(m_long.hours);
  Table t;
  t.headers({"makespan (h)", "P(>m) 32k x 458s", "P(>m) 4k x 3664s"});
  for (double h = 0; h <= 800.0; h += 25.0) {
    t.row({Table::num(h, 0), Table::num(c_short.at(h), 3),
           Table::num(c_long.at(h), 3)});
  }
  t.print();

  const auto s_short = m_short.summary();
  const auto s_long = m_long.summary();
  std::printf(
      "\n32k x 458 s : mean %.0f h, std %.0f h\n"
      "4k x 3664 s: mean %.0f h, std %.0f h\n"
      "Paper: 186±157 h and 200±227 h — the longer-job project has the\n"
      "larger mean and the fatter tail (long-tail check: P(>2x mean) > 0).\n",
      s_short.mean(), s_short.stddev(), s_long.mean(), s_long.stddev());
  return 0;
}
