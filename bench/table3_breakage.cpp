// Table 3: breakage — theoretical vs measured inflation of 32-CPU-job
// makespans over 1-CPU-job makespans.

#include "common.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Table 3 — 1-CPU jobs versus 32-CPU jobs (breakage)",
      "Theory: (N(1-U)/32) / floor(N(1-U)/32); actual: omniscient ratio.");

  const int n = bench::reps(20);
  Table t;
  t.headers({"", "Ross", "Blue Mountain", "Blue Pacific"});
  std::vector<std::string> theory_paper{"Theory (paper U)"},
      theory_measured{"Theory (measured U)"}, actual{"Actual (32/1 ratio)"};

  for (auto site : cluster::all_sites()) {
    // Theory at the paper's Table 1 utilization (the printed 1.035 / 1.020
    // / 1.346 values) and at our measured utilization.
    const auto m = cluster::machine_spec(site);
    const auto paper_in =
        core::theory_inputs(m, cluster::site_targets(site).utilization);
    const auto meas_in =
        core::theory_inputs(m, core::native_utilization(site));
    theory_paper.push_back(
        Table::num(core::breakage_factor(paper_in, 32), 3));
    theory_measured.push_back(
        Table::num(core::breakage_factor(meas_in, 32), 3));

    // Measured: 30.1 Pc project with 1- and 32-CPU jobs (the paper uses
    // Table 2's rows).
    const auto narrow = core::omniscient_makespans(
        site, core::ProjectSpec::paper(256000, 1, 120), n);
    const auto wide = core::omniscient_makespans(
        site, core::ProjectSpec::paper(8000, 32, 120), n);
    actual.push_back(
        Table::num(wide.summary().mean() / narrow.summary().mean(), 3));
  }
  t.row(theory_paper);
  t.row(theory_measured);
  t.row(actual);
  t.print();
  std::printf(
      "\nPaper: theory 1.035 / 1.020 / 1.346, actual 1.023 / 1.024 / 1.105.\n"
      "Shape check: Blue Pacific shows the large breakage penalty; the two\n"
      "big machines are within a few percent of 1.\n");
  return 0;
}
