// Extension beyond the paper: unplanned failures — and the run-fork sweep.
//
// The paper's outage model is entirely *planned* — the scheduler drains
// ahead of calendar windows and no running job ever overlaps one.  Real
// machines also crash unannounced, and the cheapest place to absorb those
// kills is the interstitial stream: its jobs are small, restartable, and
// nobody waits on them.  This driver sweeps failure rate (machine-crash
// MTBF, plus node failures at twice that rate) x checkpoint interval on
// the Blue Mountain continual scenario, with failures confined to the
// back stretch of the log (the last quarter), and reports the headline
// result: the harvested utilization lift degrades gracefully as failures
// get more frequent, while native utilization stays pinned to what a
// native-only machine achieves under the *same* fault timeline.
//
// Because every variant shares the identical fault-free prefix (the first
// three quarters of the log), the sweep runs on core::SimRun forks: one
// prefix simulation per scenario family (with-stream / native-only), then
// one cheap fork per variant.  A from-scratch arm re-simulates every
// variant from t=0 and must match the forked arm bit for bit — that
// equality, plus the measured end-to-end speedup, is this driver's exit
// gate alongside the native-pinned check.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/fork.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace istc;

/// One sweep cell: an MTBF (0 = fault-free) x checkpoint cadence.
struct Variant {
  const char* name = "";
  Seconds mtbf = 0;
  Seconds checkpoint = 0;
};

struct VariantResult {
  Variant variant;
  sched::RunResult run;
  trace::TraceSummary counters;
};

fault::FaultSpec faults_for(Seconds crash_mtbf, SimTime start) {
  fault::FaultSpec spec;
  if (crash_mtbf <= 0) return spec;
  spec.crash_mtbf = crash_mtbf;
  spec.crash_repair = 4 * kSecondsPerHour;
  // Node-sized failures arrive twice as often as full crashes.
  spec.node_mtbf = crash_mtbf / 2;
  spec.node_repair = 2 * kSecondsPerHour;
  spec.node_cpus = 256;
  spec.start = start;  // stop is clamped to the site span by the run
  return spec;
}

core::Scenario base_scenario(bool with_stream) {
  core::Scenario sc;
  sc.site = cluster::Site::kBlueMountain;
  if (with_stream) {
    // The long continual stream (Table 6's 4500 s @ 1 GHz, ~4.8 h on Blue
    // Mountain): long enough that a 30-minute checkpoint cadence genuinely
    // divides a job, which is what makes the checkpoint axis meaningful.
    auto stream = core::ProjectSpec::continual_stream(
        32, 4500, cluster::site_span(sc.site));
    stream.fault_retry.max_retries = 5;
    stream.fault_retry.backoff = 10 * kSecondsPerMinute;
    sc.project = stream;
  }
  return sc;
}

/// Configure a run standing at the fork point t0 for `v` and drain it:
/// install the checkpoint cadence, inject the variant's fault process, and
/// attach a counters-only tracer covering the fault window.  Shared by
/// both arms so they diverge in *how they reached t0* and nothing else.
VariantResult finish_variant(core::SimRun& run, const Variant& v,
                             trace::Tracer& tracer) {
  if (core::InterstitialDriver* driver = run.driver()) {
    core::FaultRetryPolicy retry = driver->spec().fault_retry;
    retry.checkpoint_interval = v.checkpoint;
    driver->set_fault_retry(retry);
  }
  if (v.mtbf > 0) run.add_faults(faults_for(v.mtbf, run.now()));
  run.set_tracer(&tracer);
  VariantResult r;
  r.variant = v;
  r.run = run.finish();
  r.counters = tracer.counters();
  return r;
}

bool same_run(const sched::RunResult& a, const sched::RunResult& b) {
  if (a.sim_end != b.sim_end || a.records.size() != b.records.size() ||
      a.killed.size() != b.killed.size()) {
    return false;
  }
  const auto same = [](const sched::JobRecord& x, const sched::JobRecord& y) {
    return x.job.id == y.job.id && x.job.cpus == y.job.cpus &&
           x.start == y.start && x.end == y.end;
  };
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!same(a.records[i], b.records[i])) return false;
  }
  for (std::size_t i = 0; i < a.killed.size(); ++i) {
    if (!same(a.killed[i], b.killed[i])) return false;
  }
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::print_preamble(
      "Extension — unplanned failures (Blue Mountain, 32CPU x ~4.8h)",
      "Harvest lift vs crash MTBF x checkpoint interval via run forks; "
      "natives stay pinned.");

  const bool quick = std::getenv("ISTC_QUICK") != nullptr;
  const SimTime span = cluster::site_span(cluster::Site::kBlueMountain);
  // Failures are confined to the back stretch; everything before t0 is the
  // shared fault-free prefix the forks reuse.
  const SimTime t0 = span / 4 * 3;

  std::vector<Variant> variants;
  variants.push_back({"fault-free", 0, 0});
  struct Setting {
    const char* name;
    Seconds mtbf;
  };
  const std::vector<Setting> mtbfs =
      quick ? std::vector<Setting>{{"mtbf 1 week", kSecondsPerWeek}}
            : std::vector<Setting>{{"mtbf 4 weeks", 4 * kSecondsPerWeek},
                                   {"mtbf 1 week", kSecondsPerWeek},
                                   {"mtbf 2 days", 2 * kSecondsPerDay}};
  for (const Setting& s : mtbfs) {
    variants.push_back({s.name, s.mtbf, 0});
    variants.push_back({s.name, s.mtbf, 30 * kSecondsPerMinute});
  }
  // The native-only references: checkpointing is a property of the stream,
  // so one native variant per MTBF suffices.
  std::vector<Variant> native_variants;
  native_variants.push_back({"fault-free", 0, 0});
  for (const Setting& s : mtbfs) native_variants.push_back({s.name, s.mtbf, 0});

  // --- Arm A: shared prefix once per scenario family, one fork per
  // variant.  The prefix simulates [0, t0] exactly once.
  const auto forked_t0 = std::chrono::steady_clock::now();
  std::vector<VariantResult> forked, forked_native;
  {
    core::SimRun prefix(base_scenario(true));
    prefix.run_until(t0);
    for (const Variant& v : variants) {
      trace::Tracer tracer(trace::TraceMode::kCountersOnly);
      std::unique_ptr<core::SimRun> fork = prefix.fork();
      forked.push_back(finish_variant(*fork, v, tracer));
    }
  }
  {
    core::SimRun prefix(base_scenario(false));
    prefix.run_until(t0);
    for (const Variant& v : native_variants) {
      trace::Tracer tracer(trace::TraceMode::kCountersOnly);
      std::unique_ptr<core::SimRun> fork = prefix.fork();
      forked_native.push_back(finish_variant(*fork, v, tracer));
    }
  }
  const double forked_wall = seconds_since(forked_t0);

  // --- Arm B: every variant re-simulated from t=0 (the pre-fork world).
  // Identical fault construction at t0, so the results must be
  // bit-identical — and the wall-clock difference is pure prefix reuse.
  const auto scratch_t0 = std::chrono::steady_clock::now();
  std::vector<VariantResult> scratch, scratch_native;
  for (const Variant& v : variants) {
    trace::Tracer tracer(trace::TraceMode::kCountersOnly);
    core::SimRun run(base_scenario(true));
    run.run_until(t0);
    scratch.push_back(finish_variant(run, v, tracer));
  }
  for (const Variant& v : native_variants) {
    trace::Tracer tracer(trace::TraceMode::kCountersOnly);
    core::SimRun run(base_scenario(false));
    run.run_until(t0);
    scratch_native.push_back(finish_variant(run, v, tracer));
  }
  const double scratch_wall = seconds_since(scratch_t0);

  // --- Fork determinism gate: forked == from-scratch, every variant.
  bool forks_exact = true;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (!same_run(forked[i].run, scratch[i].run) ||
        forked[i].counters.faults_injected !=
            scratch[i].counters.faults_injected) {
      std::printf("FORK MISMATCH: %s ckpt=%lld\n", variants[i].name,
                  static_cast<long long>(variants[i].checkpoint));
      forks_exact = false;
    }
  }
  for (std::size_t i = 0; i < native_variants.size(); ++i) {
    if (!same_run(forked_native[i].run, scratch_native[i].run)) {
      std::printf("FORK MISMATCH (native-only): %s\n", native_variants[i].name);
      forks_exact = false;
    }
  }

  // Native-only utilization per MTBF — the fair "pinned" reference: faults
  // cost everyone capacity; the question is what harvesting *adds*.
  const auto native_ref = [&](Seconds mtbf) {
    for (const VariantResult& r : forked_native) {
      if (r.variant.mtbf == mtbf) return bench::native_util_of(r.run);
    }
    return 0.0;
  };

  Table t;
  t.headers({"scenario", "ckpt", "faults", "killed n/i", "lost cpu-h",
             "recovered", "overall util", "native util", "d-native"});
  bool native_pinned = true;
  for (const VariantResult& c : forked) {
    const auto& s = c.counters;
    const double nat = bench::native_util_of(c.run);
    // One-sided check — natives may only come out *ahead* (interstitial
    // jobs, being the youngest running work, absorb partial-capacity kills
    // that would otherwise land on natives); that is a win, not drift.
    const double dnat = nat - native_ref(c.variant.mtbf);
    native_pinned = native_pinned && dnat >= -0.005;
    t.row({c.variant.name, c.variant.checkpoint > 0 ? "30m" : "-",
           Table::integer(static_cast<long long>(s.faults_injected)),
           Table::integer(static_cast<long long>(s.fault_killed_native)) +
               "/" +
               Table::integer(
                   static_cast<long long>(s.fault_killed_interstitial)),
           Table::num(static_cast<double>(s.fault_cpu_sec_lost) / 3600.0, 0),
           Table::num(static_cast<double>(s.fault_cpu_sec_recovered) / 3600.0,
                      0),
           Table::num(bench::overall_util(c.run), 3), Table::num(nat, 3),
           Table::num(dnat, 4)});
  }
  t.print();

  // --- Speedup gate: prefix sharing must actually pay.  The forked arm
  // simulates each shared prefix once (two prefixes) plus one fault
  // window per variant; the scratch arm re-simulates everything.
  const double speedup = forked_wall > 0 ? scratch_wall / forked_wall : 0;
  double min_speedup = quick ? 1.3 : 2.0;
  if (const char* env = std::getenv("ISTC_FORK_SPEEDUP_MIN")) {
    min_speedup = std::atof(env);
  }
  const bool fast_enough = min_speedup <= 0 || speedup >= min_speedup;

  std::printf(
      "\nReading: failures land in the back quarter of the log ([%.0f h,\n"
      "%.0f h)); every variant shares the fault-free prefix before that.\n"
      "d-native compares each row against a native-only run under the\n"
      "*same* fault timeline.  Faults cost the machine capacity no matter\n"
      "what, so the fair question is whether harvesting adds native damage\n"
      "on top — it does not: no row drops more than 0.5 points below its\n"
      "reference, and rows can come out ahead because interstitials (the\n"
      "youngest running work) absorb partial-capacity kills that would\n"
      "otherwise land on natives.  Checkpointing claws back much of the\n"
      "interstitial loss: only work since the last 30-minute checkpoint is\n"
      "redone.\n"
      "native pinned within 0.5 points at every setting: %s\n"
      "fork results bit-identical to from-scratch runs:  %s\n"
      "sweep wall time: forked %.2fs vs from-scratch %.2fs (%.2fx, need "
      ">=%.2fx)\n",
      static_cast<double>(t0) / 3600.0, static_cast<double>(span) / 3600.0,
      native_pinned ? "yes" : "NO", forks_exact ? "yes" : "NO", forked_wall,
      scratch_wall, speedup, min_speedup);

  // BENCH-style JSON artifact (same shape the micro benches emit) so CI
  // can track the degradation curve and the fork speedup across commits.
  const std::string path = bench::artifact_path("BENCH_faults.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\"benchmarks\":[\n");
    for (std::size_t i = 0; i < forked.size(); ++i) {
      const VariantResult& c = forked[i];
      const auto& s = c.counters;
      std::fprintf(
          f,
          "{\"name\":\"faults/%s/ckpt_%lld\",\"mtbf_s\":%lld,"
          "\"checkpoint_s\":%lld,\"faults_injected\":%llu,"
          "\"overall_util\":%.6f,\"native_util\":%.6f,"
          "\"native_util_reference\":%.6f,\"cpu_h_lost\":%.2f,"
          "\"cpu_h_recovered\":%.2f,\"retries\":%llu,"
          "\"retries_exhausted\":%llu},\n",
          c.variant.name, static_cast<long long>(c.variant.checkpoint),
          static_cast<long long>(c.variant.mtbf),
          static_cast<long long>(c.variant.checkpoint),
          static_cast<unsigned long long>(s.faults_injected),
          bench::overall_util(c.run), bench::native_util_of(c.run),
          native_ref(c.variant.mtbf),
          static_cast<double>(s.fault_cpu_sec_lost) / 3600.0,
          static_cast<double>(s.fault_cpu_sec_recovered) / 3600.0,
          static_cast<unsigned long long>(s.fault_retries),
          static_cast<unsigned long long>(s.fault_retries_exhausted));
    }
    std::fprintf(f,
                 "{\"name\":\"faults/fork_sweep\",\"forked_wall_s\":%.3f,"
                 "\"scratch_wall_s\":%.3f,\"speedup\":%.3f}\n",
                 forked_wall, scratch_wall, speedup);
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return (native_pinned && forks_exact && fast_enough) ? 0 : 1;
}
