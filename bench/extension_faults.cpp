// Extension beyond the paper: unplanned failures.
//
// The paper's outage model is entirely *planned* — the scheduler drains
// ahead of calendar windows and no running job ever overlaps one.  Real
// machines also crash unannounced, and the cheapest place to absorb those
// kills is the interstitial stream: its jobs are small, restartable, and
// nobody waits on them.  This driver sweeps failure rate (machine-crash
// MTBF, plus node failures at twice that rate) x checkpoint interval on
// the Blue Mountain continual scenario and reports the headline result:
// the harvested utilization lift degrades gracefully as failures get more
// frequent, while native utilization stays pinned to what a native-only
// machine achieves under the *same* fault timeline (natives are
// resubmitted and re-run; the crash, not the harvest, is what costs
// capacity).

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace istc;

struct CaseResult {
  const char* name = "";
  Seconds mtbf = 0;           // 0 = fault-free
  Seconds checkpoint = 0;
  sched::RunResult run;
  /// Native utilization of the fault-matched native-only run (same crash
  /// timeline, no interstitial stream): the fair "pinned" reference —
  /// faults cost everyone capacity; the question is what the interstitial
  /// machinery *adds* on top.
  double native_only_util = 0;
};

void set_faults(core::Scenario& sc, Seconds crash_mtbf) {
  if (crash_mtbf <= 0) return;
  sc.faults.crash_mtbf = crash_mtbf;
  sc.faults.crash_repair = 4 * kSecondsPerHour;
  // Node-sized failures arrive twice as often as full crashes.
  sc.faults.node_mtbf = crash_mtbf / 2;
  sc.faults.node_repair = 2 * kSecondsPerHour;
  sc.faults.node_cpus = 256;
}

CaseResult run_case(const char* name, Seconds crash_mtbf,
                    Seconds checkpoint_interval) {
  core::Scenario sc;
  sc.site = cluster::Site::kBlueMountain;
  // The long continual stream (Table 6's 4500 s @ 1 GHz, ~4.8 h on Blue
  // Mountain): long enough that a 30-minute checkpoint cadence genuinely
  // divides a job, which is what makes the checkpoint axis meaningful.
  auto stream = core::ProjectSpec::continual_stream(
      32, 4500, cluster::site_span(sc.site));
  stream.fault_retry.max_retries = 5;
  stream.fault_retry.backoff = 10 * kSecondsPerMinute;
  stream.fault_retry.checkpoint_interval = checkpoint_interval;
  sc.project = stream;
  set_faults(sc, crash_mtbf);
  // Counters-only tracing so RunResult::trace carries the fault ledger
  // (kills by class, cpu-time lost/recovered, retries) without an event
  // buffer; tracing never perturbs the schedule.
  trace::Tracer tracer(trace::TraceMode::kCountersOnly);
  sc.tracer = &tracer;
  CaseResult r;
  r.name = name;
  r.mtbf = crash_mtbf;
  r.checkpoint = checkpoint_interval;
  r.run = core::run_scenario(sc);

  core::Scenario native_only;
  native_only.site = sc.site;
  set_faults(native_only, crash_mtbf);
  r.native_only_util = bench::native_util_of(core::run_scenario(native_only));
  return r;
}

}  // namespace

int main() {
  bench::print_preamble(
      "Extension — unplanned failures (Blue Mountain, 32CPU x ~4.8h)",
      "Harvest lift vs crash MTBF x checkpoint interval; natives stay "
      "pinned.");

  const double base_native_util =
      core::native_utilization(cluster::Site::kBlueMountain);

  std::vector<CaseResult> cases;
  cases.push_back(run_case("fault-free", 0, 0));
  const bool quick = std::getenv("ISTC_QUICK") != nullptr;
  struct Setting {
    const char* name;
    Seconds mtbf;
  };
  const std::vector<Setting> mtbfs =
      quick ? std::vector<Setting>{{"mtbf 1 week", kSecondsPerWeek}}
            : std::vector<Setting>{{"mtbf 4 weeks", 4 * kSecondsPerWeek},
                                   {"mtbf 1 week", kSecondsPerWeek},
                                   {"mtbf 2 days", 2 * kSecondsPerDay}};
  for (const Setting& s : mtbfs) {
    cases.push_back(run_case(s.name, s.mtbf, 0));
    cases.push_back(run_case(s.name, s.mtbf, 30 * kSecondsPerMinute));
  }

  Table t;
  t.headers({"scenario", "ckpt", "faults", "killed n/i", "lost cpu-h",
             "recovered", "overall util", "native util", "d-native"});
  bool native_pinned = true;
  for (const CaseResult& c : cases) {
    const auto& s = c.run.trace;
    const double nat = bench::native_util_of(c.run);
    // "Pinned" is judged against the fault-matched native-only run: the
    // same crash timeline with the interstitial stream removed.  Faults
    // cost everyone capacity; this isolates what harvesting *adds*.  The
    // check is one-sided — natives may only come out *ahead* (interstitial
    // jobs, being the youngest running work, absorb partial-capacity kills
    // that would otherwise land on natives), and that is a win, not drift.
    const double reference =
        c.mtbf > 0 ? c.native_only_util : base_native_util;
    const double dnat = nat - reference;
    native_pinned = native_pinned && dnat >= -0.005;
    t.row({c.name, c.checkpoint > 0 ? "30m" : "-",
           Table::integer(static_cast<long long>(s.faults_injected)),
           Table::integer(static_cast<long long>(s.fault_killed_native)) +
               "/" +
               Table::integer(
                   static_cast<long long>(s.fault_killed_interstitial)),
           Table::num(static_cast<double>(s.fault_cpu_sec_lost) / 3600.0, 0),
           Table::num(static_cast<double>(s.fault_cpu_sec_recovered) / 3600.0,
                      0),
           Table::num(bench::overall_util(c.run), 3), Table::num(nat, 3),
           Table::num(dnat, 4)});
  }
  t.print();

  std::printf(
      "\nReading: d-native compares each row against a native-only run with\n"
      "the *same* fault timeline (fault-free rows against the fault-free\n"
      "baseline %.3f).  Faults cost the machine capacity no matter what,\n"
      "so the fair question is whether harvesting adds native damage on\n"
      "top — it does not: no row drops more than 0.5 points below its\n"
      "reference, and rows can come out ahead because interstitials (the\n"
      "youngest running work) absorb partial-capacity kills that would\n"
      "otherwise land on natives.  The harvest lift shrinks with the MTBF\n"
      "(killed interstitial work plus repair downtime), and checkpointing\n"
      "claws back much of the loss: only work since the last 30-minute\n"
      "checkpoint is redone.\n"
      "native pinned within 0.5 points at every setting: %s\n",
      base_native_util, native_pinned ? "yes" : "NO");

  // BENCH-style JSON artifact (same shape the micro benches emit) so CI
  // can track the degradation curve across commits.
  const std::string path = bench::artifact_path("BENCH_faults.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\"benchmarks\":[\n");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const CaseResult& c = cases[i];
      const auto& s = c.run.trace;
      std::fprintf(
          f,
          "{\"name\":\"faults/%s/ckpt_%lld\",\"mtbf_s\":%lld,"
          "\"checkpoint_s\":%lld,\"faults_injected\":%llu,"
          "\"overall_util\":%.6f,\"native_util\":%.6f,"
          "\"native_util_reference\":%.6f,\"cpu_h_lost\":%.2f,"
          "\"cpu_h_recovered\":%.2f,\"retries\":%llu,"
          "\"retries_exhausted\":%llu}%s\n",
          c.name, static_cast<long long>(c.checkpoint),
          static_cast<long long>(c.mtbf),
          static_cast<long long>(c.checkpoint),
          static_cast<unsigned long long>(s.faults_injected),
          bench::overall_util(c.run), bench::native_util_of(c.run),
          c.mtbf > 0 ? c.native_only_util : base_native_util,
          static_cast<double>(s.fault_cpu_sec_lost) / 3600.0,
          static_cast<double>(s.fault_cpu_sec_recovered) / 3600.0,
          static_cast<unsigned long long>(s.fault_retries),
          static_cast<unsigned long long>(s.fault_retries_exhausted),
          i + 1 < cases.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return native_pinned ? 0 : 1;
}
