// Ablation: interstitial job shape (the §5 guidelines, measured).
// Sweep job width at fixed work-per-CPU, then job length at fixed width,
// on the Blue Mountain continual scenario.

#include "common.hpp"
#include "core/theory.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — interstitial job shape (Blue Mountain, continual)",
      "Width sweep at 120 s @ 1 GHz; length sweep at 32 CPUs.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto w_base = metrics::wait_stats(base.records);
  const auto in = core::theory_inputs(cluster::machine_spec(site),
                                      core::native_utilization(site));

  {
    const int widths[] = {8, 32, 128, 512};
    std::vector<core::Scenario> scenarios;
    for (int cpus : widths) {
      scenarios.push_back(bench::bluemtn_scenario(cpus, 120));
    }
    const auto runs = bench::run_scenarios(scenarios);

    Table t("width sweep (120 s @ 1 GHz = 458 s jobs)");
    t.headers({"CPUs/job", "breakage (theory)", "interstitial jobs",
               "overall util", "median wait (s)", "avg wait (s)"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto w = bench::wait_cells(runs[i].records);
      t.row({Table::integer(widths[i]),
             Table::num(core::breakage_factor(in, widths[i]), 3),
             Table::integer(
                 static_cast<long long>(runs[i].interstitial_count())),
             Table::num(bench::overall_util(runs[i]), 3), w.median, w.avg});
    }
    t.print();
  }
  std::printf("\n");
  {
    const Seconds lengths[] = {30, 120, 480, 960};
    std::vector<core::Scenario> scenarios;
    for (Seconds sec : lengths) {
      scenarios.push_back(bench::bluemtn_scenario(32, sec));
    }
    const auto runs = bench::run_scenarios(scenarios);

    Table t("length sweep (32-CPU jobs)");
    t.headers({"sec @ 1 GHz", "runtime here (s)", "interstitial jobs",
               "overall util", "median wait (s)", "avg wait (s)"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto spec = core::ProjectSpec::continual_stream(32, lengths[i], 1);
      const auto w = bench::wait_cells(runs[i].records);
      t.row({Table::integer(lengths[i]),
             Table::integer(spec.runtime_on(runs[i].machine)),
             Table::integer(
                 static_cast<long long>(runs[i].interstitial_count())),
             Table::num(bench::overall_util(runs[i]), 3), w.median, w.avg});
    }
    t.print();
  }
  std::printf(
      "\nNative-only baseline: util %.3f, median wait %.0f s.\n"
      "Reading (the paper's guidelines): width matters little until\n"
      "breakage bites; length directly prices the median native delay —\n"
      "short jobs are the knob that protects the natives.\n",
      bench::overall_util(base), w_base.median_wait_s);
  return 0;
}
