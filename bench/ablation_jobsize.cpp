// Ablation: interstitial job shape (the §5 guidelines, measured).
// Sweep job width at fixed work-per-CPU, then job length at fixed width,
// on the Blue Mountain continual scenario.

#include "common.hpp"
#include "core/theory.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — interstitial job shape (Blue Mountain, continual)",
      "Width sweep at 120 s @ 1 GHz; length sweep at 32 CPUs.");

  const auto site = cluster::Site::kBlueMountain;
  const auto& base = core::native_baseline(site);
  const auto w_base = metrics::wait_stats(base.records);
  const auto in = core::theory_inputs(cluster::machine_spec(site),
                                      core::native_utilization(site));

  {
    Table t("width sweep (120 s @ 1 GHz = 458 s jobs)");
    t.headers({"CPUs/job", "breakage (theory)", "interstitial jobs",
               "overall util", "median wait (s)", "avg wait (s)"});
    for (int cpus : {8, 32, 128, 512}) {
      const auto& run = core::continual_run(site, cpus, 120);
      const auto w = metrics::wait_stats(run.records);
      t.row({Table::integer(cpus),
             Table::num(core::breakage_factor(in, cpus), 3),
             Table::integer(static_cast<long long>(run.interstitial_count())),
             Table::num(bench::overall_util(run), 3),
             Table::num(w.median_wait_s, 0), Table::num(w.avg_wait_s, 0)});
    }
    t.print();
  }
  std::printf("\n");
  {
    Table t("length sweep (32-CPU jobs)");
    t.headers({"sec @ 1 GHz", "runtime here (s)", "interstitial jobs",
               "overall util", "median wait (s)", "avg wait (s)"});
    for (Seconds sec : {Seconds{30}, Seconds{120}, Seconds{480},
                        Seconds{960}}) {
      const auto& run = core::continual_run(site, 32, sec);
      const auto spec = core::ProjectSpec::continual_stream(32, sec, 1);
      const auto w = metrics::wait_stats(run.records);
      t.row({Table::integer(sec),
             Table::integer(spec.runtime_on(run.machine)),
             Table::integer(static_cast<long long>(run.interstitial_count())),
             Table::num(bench::overall_util(run), 3),
             Table::num(w.median_wait_s, 0), Table::num(w.avg_wait_s, 0)});
    }
    t.print();
  }
  std::printf(
      "\nNative-only baseline: util %.3f, median wait %.0f s.\n"
      "Reading (the paper's guidelines): width matters little until\n"
      "breakage bites; length directly prices the median native delay —\n"
      "short jobs are the knob that protects the natives.\n",
      bench::overall_util(base), w_base.median_wait_s);
  return 0;
}
