// Microbenchmarks of the discrete-event engine.

#include <benchmark/benchmark.h>

#include "sim/engine.hpp"

namespace {

using istc::SimTime;

void BM_EngineScheduleAndDrain(benchmark::State& state) {
  const auto n = static_cast<SimTime>(state.range(0));
  for (auto _ : state) {
    istc::sim::Engine eng;
    long sink = 0;
    for (SimTime t = 0; t < n; ++t) {
      eng.schedule(t, [&sink] { ++sink; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleAndDrain)->Arg(1000)->Arg(100000);

void BM_EngineSameTimestampBatch(benchmark::State& state) {
  // Many events at one timestamp: one quiescent pass per step.
  const auto n = static_cast<SimTime>(state.range(0));
  for (auto _ : state) {
    istc::sim::Engine eng;
    long hook_calls = 0;
    eng.on_quiescent([&hook_calls](SimTime) { ++hook_calls; });
    for (SimTime i = 0; i < n; ++i) eng.schedule(42, [] {});
    eng.run();
    benchmark::DoNotOptimize(hook_calls);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSameTimestampBatch)->Arg(10000);

void BM_EngineSelfPerpetuatingChain(benchmark::State& state) {
  const long links = state.range(0);
  for (auto _ : state) {
    istc::sim::Engine eng;
    long count = 0;
    std::function<void()> link = [&] {
      if (++count < links) eng.schedule_in(1, link);
    };
    eng.schedule(0, link);
    eng.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * links);
}
BENCHMARK(BM_EngineSelfPerpetuatingChain)->Arg(100000);

}  // namespace
