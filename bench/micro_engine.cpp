// Microbenchmarks of the discrete-event engine.
//
// Every benchmark takes a trailing queue-impl arg selecting the event
// queue in the same binary: 0 = the legacy std::function heap, 1 = the
// typed flat binary heap, 2 = the typed calendar/ladder queue (the
// production default).  Schedules are identical in every mode (the
// determinism suite pins that); only the per-event representation and
// ordering cost moves.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace {

using istc::SimTime;
using istc::sim::QueueImpl;

QueueImpl impl_of(long arg) {
  switch (arg) {
    case 0:
      return QueueImpl::kLegacy;
    case 1:
      return QueueImpl::kBinaryHeap;
    default:
      return QueueImpl::kCalendar;
  }
}

void BM_EngineScheduleAndDrain(benchmark::State& state) {
  const auto n = static_cast<SimTime>(state.range(0));
  const QueueImpl impl = impl_of(state.range(1));
  for (auto _ : state) {
    istc::sim::Engine eng(impl);
    if (impl != QueueImpl::kLegacy) {
      eng.reserve_events(static_cast<std::size_t>(n));
    }
    long sink = 0;
    for (SimTime t = 0; t < n; ++t) {
      eng.schedule(t, [&sink] { ++sink; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleAndDrain)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2});

// The steady-state shape of a site replay: every event a typed job event
// dispatched through the JobEventSink vtable, no callbacks at all.  Only
// meaningful on the typed paths (legacy wraps these in std::function,
// which BM_EngineScheduleAndDrain already measures).
void BM_EngineTypedJobStream(benchmark::State& state) {
  struct CountingSink final : istc::sim::JobEventSink {
    long submits = 0;
    long finishes = 0;
    void job_submit(std::uint32_t) override { ++submits; }
    void job_finish(std::uint32_t) override { ++finishes; }
  };
  const auto n = static_cast<SimTime>(state.range(0));
  const QueueImpl impl = impl_of(state.range(1));
  for (auto _ : state) {
    istc::sim::Engine eng(impl);
    CountingSink sink;
    eng.set_job_sink(&sink);
    eng.reserve_events(static_cast<std::size_t>(2 * n));
    for (SimTime t = 0; t < n; ++t) {
      eng.schedule_job_submit(t, static_cast<std::uint32_t>(t));
      eng.schedule_job_finish(t + 50, static_cast<std::uint32_t>(t));
    }
    eng.run();
    benchmark::DoNotOptimize(sink.finishes);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_EngineTypedJobStream)->Args({100000, 1})->Args({100000, 2});

void BM_EngineSameTimestampBatch(benchmark::State& state) {
  // Many events at one timestamp: one quiescent pass per step.
  const auto n = static_cast<SimTime>(state.range(0));
  const QueueImpl impl = impl_of(state.range(1));
  for (auto _ : state) {
    istc::sim::Engine eng(impl);
    long hook_calls = 0;
    eng.on_quiescent([&hook_calls](SimTime) { ++hook_calls; });
    for (SimTime i = 0; i < n; ++i) eng.schedule(42, [] {});
    eng.run();
    benchmark::DoNotOptimize(hook_calls);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSameTimestampBatch)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2});

// Deliberately the typed core's worst case: a recursive chain needs a
// self-referential callable, and copying a std::function into the queue
// boxes it (one extra allocation per link vs. the legacy queue, which
// stores the std::function directly).  Steady-state simulation code never
// takes this path — it exists to keep the fallback's cost visible.
void BM_EngineSelfPerpetuatingChain(benchmark::State& state) {
  const long links = state.range(0);
  const QueueImpl impl = impl_of(state.range(1));
  for (auto _ : state) {
    istc::sim::Engine eng(impl);
    long count = 0;
    std::function<void()> link = [&] {
      if (++count < links) eng.schedule_in(1, link);
    };
    eng.schedule(0, link);
    eng.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * links);
}
BENCHMARK(BM_EngineSelfPerpetuatingChain)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2});

// End-to-end: the continual-harvest co-simulation (the heaviest scenario
// class) with the event core A/B'd across all three queue impls.  Wall ms
// is the number to compare — this is the event queue's share of a real
// experiment, everything else held constant.
void BM_ContinualHarvestEventCore(benchmark::State& state) {
  const QueueImpl impl = impl_of(state.range(0));
  std::uint64_t seed = 400;
  std::uint64_t heap_allocs = 0;
  for (auto _ : state) {
    istc::trace::Tracer tracer(istc::trace::TraceMode::kCountersOnly);
    istc::core::Scenario sc;
    sc.site = istc::cluster::Site::kBlueMountain;
    sc.log_seed = seed++;  // avoid the process-wide cache
    sc.project = istc::core::ProjectSpec::continual_stream(
        32, 120, istc::cluster::site_span(sc.site));
    sc.typed_events = impl != QueueImpl::kLegacy;
    sc.queue = impl == QueueImpl::kLegacy ? QueueImpl::kCalendar : impl;
    sc.tracer = &tracer;
    const auto run = istc::core::run_scenario(sc);
    benchmark::DoNotOptimize(run.records.size());
    heap_allocs += run.trace.engine_heap_allocations;
  }
  state.counters["queue_heap_allocs"] = benchmark::Counter(
      static_cast<double>(heap_allocs) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ContinualHarvestEventCore)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
