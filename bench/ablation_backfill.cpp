// Ablation: backfill discipline.  The paper leans on backfill both for the
// native baseline (PBS/LSF/DPCS all backfill) and as the mental model for
// "meta-backfilled" interstitial jobs.  This driver quantifies what each
// discipline contributes on the Blue Mountain log: EASY (site default),
// conservative, and no backfill at all.

#include "common.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — backfill discipline (native-only, Blue Mountain)",
      "EASY vs conservative vs none: utilization and native waits.");

  struct Case {
    const char* name;
    sched::BackfillMode mode;
  };
  const Case cases[] = {
      {"EASY (site default)", sched::BackfillMode::kEasy},
      {"conservative", sched::BackfillMode::kConservative},
      {"no backfill", sched::BackfillMode::kNone},
  };

  std::vector<core::Scenario> scenarios;
  for (const Case& c : cases) {
    core::Scenario sc = bench::bluemtn_scenario();
    sc.backfill = c.mode;
    scenarios.push_back(sc);
  }
  const auto runs = bench::run_scenarios(scenarios);

  Table t;
  t.headers({"backfill", "utilization", "median wait (s)", "avg wait (s)",
             "largest-5% median (s)", "drain time (d)"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto w = bench::wait_cells(runs[i].records);
    t.row({cases[i].name, Table::num(bench::overall_util(runs[i]), 3),
           w.median, w.avg, w.largest5,
           Table::num(to_days(runs[i].sim_end), 1)});
  }
  t.print();
  std::printf(
      "\nReading: without backfill the machine idles behind wide blocked\n"
      "jobs (lower utilization, far longer waits and drain) — the very\n"
      "interstices interstitial computing targets.  Conservative backfill\n"
      "trades a little small-job responsiveness for protected reservations.\n");
  return 0;
}
