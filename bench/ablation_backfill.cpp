// Ablation: backfill discipline.  The paper leans on backfill both for the
// native baseline (PBS/LSF/DPCS all backfill) and as the mental model for
// "meta-backfilled" interstitial jobs.  This driver quantifies what each
// discipline contributes on the Blue Mountain log: EASY (site default),
// conservative, and no backfill at all.

#include "common.hpp"
#include "sched/presets.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/presets.hpp"

namespace {

istc::sched::RunResult run_with(istc::sched::BackfillMode mode) {
  using namespace istc;
  const auto site = cluster::Site::kBlueMountain;
  sim::Engine engine;
  sched::PolicySpec policy = sched::site_policy(site);
  policy.backfill = mode;
  sched::BatchScheduler scheduler(engine, cluster::make_machine(site),
                                  policy);
  scheduler.load(workload::site_log(site));
  engine.run();
  return scheduler.take_result(cluster::site_span(site));
}

}  // namespace

int main() {
  using namespace istc;
  bench::print_preamble(
      "Ablation — backfill discipline (native-only, Blue Mountain)",
      "EASY vs conservative vs none: utilization and native waits.");

  struct Case {
    const char* name;
    sched::BackfillMode mode;
  };
  const Case cases[] = {
      {"EASY (site default)", sched::BackfillMode::kEasy},
      {"conservative", sched::BackfillMode::kConservative},
      {"no backfill", sched::BackfillMode::kNone},
  };

  Table t;
  t.headers({"backfill", "utilization", "median wait (s)", "avg wait (s)",
             "largest-5% median (s)", "drain time (d)"});
  for (const auto& c : cases) {
    const auto run = run_with(c.mode);
    const auto w = metrics::wait_stats(run.records);
    const auto wl =
        metrics::wait_stats(metrics::largest_native(run.records, 0.05));
    t.row({c.name, Table::num(bench::overall_util(run), 3),
           Table::num(w.median_wait_s, 0), Table::num(w.avg_wait_s, 0),
           Table::num(wl.median_wait_s, 0),
           Table::num(to_days(run.sim_end), 1)});
  }
  t.print();
  std::printf(
      "\nReading: without backfill the machine idles behind wide blocked\n"
      "jobs (lower utilization, far longer waits and drain) — the very\n"
      "interstices interstitial computing targets.  Conservative backfill\n"
      "trades a little small-job responsiveness for protected reservations.\n");
  return 0;
}
