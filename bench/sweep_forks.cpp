// Fork-tree sweep engine gates (core/sweep.hpp) — the tentpole bench.
//
// Three sections, each an exit-code gate, all summarized in
// BENCH_sweep.json for CI trend tracking:
//
//   1. cap sweep (core::SimRun) — Table 8-limited's utilization-cap sweep
//      as a verified fork tree: bit-equality against from-scratch runs and
//      a >= 2x end-to-end speedup (1.3x quick; ISTC_FORK_SPEEDUP_MIN
//      overrides), plus fork-result hashes bit-identical at 1, 2 and 8
//      sweep threads.
//   2. fleet policy x quota sweep (grid::FleetRun) — a whole brokered
//      fleet forked per parameter point at a mid-run boundary: routing
//      policy and per-project quotas applied from the fork point on,
//      verified against scratch runs, >= 1.5x speedup (1.2x quick;
//      ISTC_FLEET_SPEEDUP_MIN overrides), and thread-count determinism.
//   3. million-job stream — a 1M-job (100k quick) four-project stream
//      through four Ross-class machines, exercising the batched
//      delivery/report path: one packed span per (machine, boundary)
//      instead of one timed event per job.  Fleet hash must be identical
//      at 1, 2 and 8 shard threads and every job accounted for.
//
// Speedup arms run at one sweep thread so the ratio measures prefix
// reuse, not host parallelism; thread-count gates rerun the forked arm at
// 2 and 8 threads and require identical hashes, not identical wall.

#include <chrono>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/fork.hpp"
#include "core/sweep.hpp"
#include "grid/fleet.hpp"

namespace {

using namespace istc;

bool quick_mode() {
  const char* q = std::getenv("ISTC_QUICK");
  return q && q[0] == '1';
}

double env_min(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return (env && env[0] != '\0') ? std::atof(env) : fallback;
}

bool same_run(const sched::RunResult& a, const sched::RunResult& b) {
  return grid::hash_run(a) == grid::hash_run(b);
}

bool same_fleet(const grid::FleetResult& a, const grid::FleetResult& b) {
  if (a.hash != b.hash || a.epochs != b.epochs || a.sim_end != b.sim_end ||
      a.dispatches.size() != b.dispatches.size() ||
      a.ledgers.size() != b.ledgers.size()) {
    return false;
  }
  for (std::size_t p = 0; p < a.ledgers.size(); ++p) {
    const auto& la = a.ledgers[p];
    const auto& lb = b.ledgers[p];
    if (la.completed != lb.completed || la.abandoned() != lb.abandoned() ||
        la.harvested_cpu_sec != lb.harvested_cpu_sec ||
        la.consumed_cpu_sec != lb.consumed_cpu_sec) {
      return false;
    }
  }
  return true;
}

struct GateResult {
  double speedup = 0.0;
  double threshold = 0.0;
  bool equal = false;         ///< forked == scratch, every point
  bool threads_equal = false; ///< identical hashes at 1/2/8 sweep threads
  double forked_wall_s = 0.0;
  double scratch_wall_s = 0.0;
  bool pass() const {
    return equal && threads_equal &&
           (threshold <= 0 || speedup >= threshold);
  }
};

// -- 1. cap sweep on SimRun -------------------------------------------------

GateResult cap_sweep() {
  const double caps[] = {0.90, 0.95, 0.98, 1.0};
  constexpr std::size_t kPoints = std::size(caps);
  const SimTime span = cluster::site_span(cluster::Site::kBlueMountain);
  const SimTime t0 = span / 8 * 7;

  const auto make = [](std::size_t) {
    return std::make_unique<core::SimRun>(bench::bluemtn_scenario(32, 120));
  };
  const auto finish = [&caps](core::SimRun& run, std::size_t i) {
    if (caps[i] < 1.0) run.driver()->set_utilization_cap(caps[i]);
    return run.finish();
  };

  core::SweepRunner<core::SimRun> sweep(kPoints, make);
  sweep.set_threads(1);
  const auto verified = sweep.run_verified(t0, finish, same_run);

  GateResult g;
  g.speedup = verified.speedup();
  g.threshold = env_min("ISTC_FORK_SPEEDUP_MIN", quick_mode() ? 1.3 : 2.0);
  g.equal = verified.equal;
  g.forked_wall_s = verified.forked_wall_s;
  g.scratch_wall_s = verified.scratch_wall_s;

  g.threads_equal = true;
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    sweep.set_threads(threads);
    const auto rerun = sweep.run_forked(t0, finish);
    for (std::size_t i = 0; i < kPoints; ++i) {
      if (grid::hash_run(rerun[i]) != grid::hash_run(verified.forked[i])) {
        std::printf("CAP SWEEP MISMATCH at %zu threads, point %zu\n",
                    threads, i);
        g.threads_equal = false;
      }
    }
  }

  std::printf(
      "cap sweep (4 caps, fork at 7/8 span): forked %.2fs vs scratch %.2fs "
      "(%.2fx, need >=%.2fx)  equal=%s  threads(1/2/8)=%s\n",
      g.forked_wall_s, g.scratch_wall_s, g.speedup, g.threshold,
      g.equal ? "yes" : "NO", g.threads_equal ? "equal" : "MISMATCH");
  return g;
}

// -- 2. fleet policy x quota sweep on FleetRun ------------------------------

GateResult fleet_sweep() {
  const bool quick = quick_mode();
  // The fork point sits at the Ross span: four projects arrive before it
  // (their routing is prefix work shared by all nine points, along with
  // both Ross-class machines' entire native logs), and the last two arrive
  // after it — routed from scratch under each point's policy and quota on
  // the machines still in service (Blue Mountain / Blue Pacific).
  const SimTime ross_span = cluster::site_span(cluster::Site::kRoss);
  const SimTime t0 = ross_span;

  const auto make = [&](std::size_t) {
    auto fleet = grid::default_fleet();
    int fleet_cpus = 0;
    for (const auto& m : fleet) fleet_cpus += m.spec.cpus;
    auto projects = grid::sweep_projects(6, quick ? 40 : 150, fleet_cpus,
                                         0.0, 0x517EE9);
    for (std::size_t p = 0; p < 4; ++p) {
      projects[p].submit_time = static_cast<SimTime>(p) * ross_span / 4;
    }
    projects[4].submit_time = ross_span + ross_span / 8;
    projects[5].submit_time = ross_span + ross_span / 4;
    grid::FleetConfig cfg;
    cfg.threads = 1;  // shards serial; the sweep parallelizes points
    return std::make_unique<grid::FleetRun>(std::move(fleet),
                                            std::move(projects), cfg);
  };

  const grid::BrokerPolicy policies[] = {grid::BrokerPolicy::kBestFit,
                                         grid::BrokerPolicy::kRoundRobin,
                                         grid::BrokerPolicy::kLeastLoaded};
  const int quota_div[] = {0, 16, 32};  // fleet_cpus / div; 0 = unlimited
  constexpr std::size_t kPoints = std::size(policies) * std::size(quota_div);

  const auto finish = [&](grid::FleetRun& run, std::size_t i) {
    run.set_policy(policies[i % std::size(policies)]);
    const int div = quota_div[i / std::size(policies)];
    if (div > 0) {
      int fleet_cpus = 0;
      for (std::size_t m = 0; m < run.machine_count(); ++m) {
        fleet_cpus += run.machine(m).capacity();
      }
      const std::size_t nprojects = run.broker().project_specs().size();
      for (std::size_t p = 0; p < nprojects; ++p) {
        run.set_project_quota(p, fleet_cpus / div);
      }
    }
    return run.finish();
  };

  core::SweepRunner<grid::FleetRun> sweep(kPoints, make);
  sweep.set_threads(1);
  const auto verified = sweep.run_verified(t0, finish, same_fleet);

  GateResult g;
  g.speedup = verified.speedup();
  g.threshold = env_min("ISTC_FLEET_SPEEDUP_MIN", quick ? 1.2 : 1.5);
  g.equal = verified.equal;
  g.forked_wall_s = verified.forked_wall_s;
  g.scratch_wall_s = verified.scratch_wall_s;

  g.threads_equal = true;
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    sweep.set_threads(threads);
    const auto rerun = sweep.run_forked(t0, finish);
    for (std::size_t i = 0; i < kPoints; ++i) {
      if (!same_fleet(rerun[i], verified.forked[i])) {
        std::printf("FLEET SWEEP MISMATCH at %zu threads, point %zu\n",
                    threads, i);
        g.threads_equal = false;
      }
    }
  }

  Table t("policy x quota at the fork boundary (forked arm)");
  t.headers({"policy", "quota", "dispatches", "completed", "abandoned",
             "fairness (Jain)", "fleet hash"});
  for (std::size_t i = 0; i < kPoints; ++i) {
    const grid::FleetResult& res = verified.forked[i];
    std::size_t completed = 0, abandoned = 0;
    for (const auto& led : res.ledgers) {
      completed += led.completed;
      abandoned += led.abandoned();
    }
    char hash_hex[24];
    std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                  static_cast<unsigned long long>(res.hash));
    const int div = quota_div[i / std::size(policies)];
    t.row({grid::broker_policy_name(policies[i % std::size(policies)]),
           div == 0 ? "-" : ("fleet/" + Table::integer(div)),
           Table::integer(static_cast<long long>(res.dispatches.size())),
           Table::integer(static_cast<long long>(completed)),
           Table::integer(static_cast<long long>(abandoned)),
           Table::num(res.fairness, 3), hash_hex});
  }
  t.print();

  std::printf(
      "fleet sweep (9 points, fork at Ross span): forked %.2fs vs scratch "
      "%.2fs (%.2fx, need >=%.2fx)  equal=%s  threads(1/2/8)=%s\n",
      g.forked_wall_s, g.scratch_wall_s, g.speedup, g.threshold,
      g.equal ? "yes" : "NO", g.threads_equal ? "equal" : "MISMATCH");
  return g;
}

// -- 3. million-job batched stream ------------------------------------------

struct StreamResult {
  std::size_t jobs = 0;
  std::size_t delivered = 0;
  std::size_t batches = 0;
  std::size_t completed = 0;
  std::size_t abandoned = 0;
  std::size_t epochs = 0;
  std::uint64_t hash = 0;
  double wall_s = 0.0;
  bool hash_equal = false;
  bool accounted = false;
  bool pass() const { return hash_equal && accounted; }
};

StreamResult million_stream() {
  const bool quick = quick_mode();
  const std::size_t jobs_each = quick ? 25'000 : 250'000;
  constexpr std::size_t kProjects = 4;
  const int widths[kProjects] = {1, 2, 4, 8};

  const auto run_at = [&](std::size_t threads, std::size_t* batches_out,
                          std::size_t* delivered_out) {
    std::vector<grid::MachineSetup> fleet;
    for (int i = 0; i < 4; ++i) {
      fleet.push_back(grid::synthetic_machine_setup(i + 10));
    }
    std::vector<grid::GridProjectSpec> projects;
    for (std::size_t p = 0; p < kProjects; ++p) {
      grid::GridProjectSpec spec;
      spec.name = "S" + std::to_string(p);
      spec.cpus_per_job = widths[p];
      spec.work_per_cpu = 5.0 * cluster::kGiga;  // ~8.5 s on a Ross clock
      spec.jobs = jobs_each;
      projects.push_back(std::move(spec));
    }
    grid::FleetConfig cfg;
    cfg.threads = threads;
    grid::FleetRun run(std::move(fleet), std::move(projects), cfg);
    grid::FleetResult res = run.finish();
    if (batches_out != nullptr || delivered_out != nullptr) {
      std::size_t batches = 0, delivered = 0;
      for (std::size_t m = 0; m < run.machine_count(); ++m) {
        batches += run.machine(m).delivery_batches();
        delivered += run.machine(m).port_stats().delivered;
      }
      if (batches_out != nullptr) *batches_out = batches;
      if (delivered_out != nullptr) *delivered_out = delivered;
    }
    return res;
  };

  StreamResult s;
  s.jobs = jobs_each * kProjects;
  const auto wall_t0 = std::chrono::steady_clock::now();
  const grid::FleetResult r1 = run_at(1, &s.batches, &s.delivered);
  s.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_t0)
                 .count();
  const grid::FleetResult r2 = run_at(2, nullptr, nullptr);
  const grid::FleetResult r8 = run_at(8, nullptr, nullptr);

  s.hash = r1.hash;
  s.hash_equal = r1.hash == r2.hash && r1.hash == r8.hash;
  s.epochs = r1.epochs;
  for (const auto& led : r1.ledgers) {
    s.completed += led.completed;
    s.abandoned += led.abandoned();
  }
  s.accounted = s.completed + s.abandoned == s.jobs;

  std::printf(
      "million-job stream: %zu jobs, %zu delivered in %zu batches "
      "(%.0f jobs/batch), %zu epochs, %zu completed, %zu abandoned, "
      "%.1fs @1 thread\n"
      "fleet hash @1/2/8 shard threads: %016llx  [%s]  accounted=%s\n",
      s.jobs, s.delivered, s.batches,
      s.batches > 0 ? static_cast<double>(s.delivered) /
                          static_cast<double>(s.batches)
                    : 0.0,
      s.epochs, s.completed, s.abandoned, s.wall_s,
      static_cast<unsigned long long>(s.hash),
      s.hash_equal ? "EQUAL" : "MISMATCH", s.accounted ? "yes" : "NO");
  return s;
}

}  // namespace

int main() {
  bench::print_preamble(
      "sweep_forks",
      "Fork-tree sweep engine gates: verified cap sweep (SimRun), fleet\n"
      "policy x quota sweep (FleetRun), and the million-job batched stream");

  std::printf("-- 1. utilization-cap fork sweep (Blue Mountain) --\n");
  const GateResult cap = cap_sweep();
  std::printf("\n-- 2. fleet policy x quota fork sweep (default fleet) --\n");
  const GateResult fleet = fleet_sweep();
  std::printf("\n-- 3. million-job batched delivery stream --\n");
  const StreamResult stream = million_stream();

  const std::string path = bench::artifact_path("BENCH_sweep.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const auto gate_json = [f](const char* name, const GateResult& g) {
      std::fprintf(f,
                   "  \"%s\": {\"speedup\": %.3f, \"threshold\": %.2f, "
                   "\"forked_wall_s\": %.3f, \"scratch_wall_s\": %.3f, "
                   "\"equal\": %s, \"threads_equal\": %s, \"gate\": "
                   "\"%s\"},\n",
                   name, g.speedup, g.threshold, g.forked_wall_s,
                   g.scratch_wall_s, g.equal ? "true" : "false",
                   g.threads_equal ? "true" : "false",
                   g.pass() ? "pass" : "fail");
    };
    std::fprintf(f, "{\n  \"schema\": \"istc.bench_sweep.v1\",\n");
    gate_json("cap_sweep", cap);
    gate_json("fleet_sweep", fleet);
    std::fprintf(
        f,
        "  \"million_stream\": {\"jobs\": %zu, \"delivered\": %zu, "
        "\"batches\": %zu, \"epochs\": %zu, \"completed\": %zu, "
        "\"abandoned\": %zu, \"wall_s\": %.3f, \"hash\": \"%016llx\", "
        "\"hash_equal_threads_1_2_8\": %s, \"gate\": \"%s\"}\n}\n",
        stream.jobs, stream.delivered, stream.batches, stream.epochs,
        stream.completed, stream.abandoned, stream.wall_s,
        static_cast<unsigned long long>(stream.hash),
        stream.hash_equal ? "true" : "false",
        stream.pass() ? "pass" : "fail");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }

  const bool pass = cap.pass() && fleet.pass() && stream.pass();
  std::printf("sweep_forks gates: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
