#include "workload/job.hpp"

#include <gtest/gtest.h>

namespace istc::workload {
namespace {

Job make(JobId id, SimTime submit, int cpus = 4, Seconds run = 100,
         Seconds est = 200) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.cpus = cpus;
  j.runtime = run;
  j.estimate = est;
  return j;
}

TEST(Job, DefaultsAreNative) {
  Job j;
  EXPECT_EQ(j.klass, JobClass::kNative);
  EXPECT_FALSE(j.interstitial());
}

TEST(Job, InterstitialFlag) {
  Job j = make(1, 0);
  j.klass = JobClass::kInterstitial;
  EXPECT_TRUE(j.interstitial());
}

TEST(Job, CpuSeconds) {
  const Job j = make(1, 0, 8, 250);
  EXPECT_DOUBLE_EQ(j.cpu_seconds(), 2000.0);
}

TEST(Job, CheckAcceptsValid) {
  make(1, 5).check();  // must not abort
  SUCCEED();
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(JobDeath, EstimateBelowRuntimeRejected) {
  Job j = make(1, 0, 4, 300, 200);
  EXPECT_DEATH(j.check(), "invariant");
}

TEST(JobDeath, ZeroCpusRejected) {
  Job j = make(1, 0, 0);
  EXPECT_DEATH(j.check(), "invariant");
}

TEST(JobDeath, ZeroRuntimeRejected) {
  Job j = make(1, 0, 4, 0, 10);
  EXPECT_DEATH(j.check(), "invariant");
}
#endif

TEST(JobLog, SortsBySubmit) {
  std::vector<Job> jobs{make(0, 50), make(1, 10), make(2, 30)};
  const JobLog log(std::move(jobs));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].submit, 10);
  EXPECT_EQ(log[1].submit, 30);
  EXPECT_EQ(log[2].submit, 50);
  EXPECT_EQ(log.last_submit(), 50);
}

TEST(JobLog, StableForEqualSubmits) {
  std::vector<Job> jobs{make(0, 10), make(1, 10), make(2, 10)};
  const JobLog log(std::move(jobs));
  EXPECT_EQ(log[0].id, 0u);
  EXPECT_EQ(log[1].id, 1u);
  EXPECT_EQ(log[2].id, 2u);
}

TEST(JobLog, TotalCpuSeconds) {
  std::vector<Job> jobs{make(0, 0, 2, 100), make(1, 0, 3, 100)};
  const JobLog log(std::move(jobs));
  EXPECT_DOUBLE_EQ(log.total_cpu_seconds(), 500.0);
}

TEST(JobLog, PerfectEstimatesTransform) {
  std::vector<Job> jobs{make(0, 0, 4, 100, 900), make(1, 5, 2, 50, 50)};
  const JobLog log(std::move(jobs));
  const JobLog perfect = with_perfect_estimates(log);
  ASSERT_EQ(perfect.size(), 2u);
  for (const auto& j : perfect.jobs()) EXPECT_EQ(j.estimate, j.runtime);
  // Original untouched.
  EXPECT_EQ(log[0].estimate, 900);
}

TEST(JobLog, ScaledJobsTime) {
  std::vector<Job> jobs{make(0, 0, 4, 100, 200)};
  const JobLog scaled =
      with_scaled_jobs(JobLog(std::move(jobs)), 1.5, 1.0, 64);
  EXPECT_EQ(scaled[0].runtime, 150);
  EXPECT_EQ(scaled[0].estimate, 300);
  EXPECT_EQ(scaled[0].cpus, 4);
}

TEST(JobLog, ScaledJobsSizeClamped) {
  std::vector<Job> jobs{make(0, 0, 48, 100, 200), make(1, 0, 1, 100, 200)};
  const JobLog scaled =
      with_scaled_jobs(JobLog(std::move(jobs)), 1.0, 1.5, 64);
  EXPECT_EQ(scaled[0].cpus, 64);  // 72 clamped to machine width
  EXPECT_EQ(scaled[1].cpus, 1);
}

TEST(JobLog, ScaledJobsKeepsEstimateInvariant) {
  std::vector<Job> jobs{make(0, 0, 4, 100, 100)};
  const JobLog scaled =
      with_scaled_jobs(JobLog(std::move(jobs)), 0.001, 1.0, 64);
  EXPECT_GE(scaled[0].runtime, 1);
  EXPECT_GE(scaled[0].estimate, scaled[0].runtime);
}

TEST(JobLog, EmptyLog) {
  const JobLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.last_submit(), 0);
  EXPECT_DOUBLE_EQ(log.total_cpu_seconds(), 0.0);
}

}  // namespace
}  // namespace istc::workload
