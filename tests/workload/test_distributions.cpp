#include "workload/distributions.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/stats.hpp"

namespace istc::workload {
namespace {

TEST(FloorPow2, KnownValues) {
  EXPECT_EQ(floor_pow2(1), 1);
  EXPECT_EQ(floor_pow2(2), 2);
  EXPECT_EQ(floor_pow2(3), 2);
  EXPECT_EQ(floor_pow2(4), 4);
  EXPECT_EQ(floor_pow2(1023), 512);
  EXPECT_EQ(floor_pow2(1024), 1024);
}

TEST(SizeDistribution, OnlyEmitsDeclaredClassesWithoutTail) {
  SizeDistribution d({{4, 1.0}, {16, 2.0}}, /*tail_prob=*/0.0,
                     /*tail_alpha=*/1.0, /*max_cpus=*/64);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const int c = d(rng);
    EXPECT_TRUE(c == 4 || c == 16);
  }
}

TEST(SizeDistribution, ClassWeightsRespected) {
  SizeDistribution d({{1, 1.0}, {8, 3.0}}, 0.0, 1.0, 8);
  Rng rng(2);
  int eights = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) eights += d(rng) == 8;
  EXPECT_NEAR(eights / static_cast<double>(draws), 0.75, 0.01);
}

TEST(SizeDistribution, TailEmitsPowersOfTwoUpToMax) {
  SizeDistribution d({{1, 1.0}}, /*tail_prob=*/1.0, /*tail_alpha=*/0.7,
                     /*max_cpus=*/1024);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const int c = d(rng);
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 1024);
    EXPECT_EQ(c & (c - 1), 0) << "not a power of two: " << c;
  }
}

TEST(SizeDistribution, TailReachesLargeSizes) {
  SizeDistribution d({{1, 1.0}}, 1.0, 0.5, 1024);
  Rng rng(4);
  int big = 0;
  for (int i = 0; i < 20000; ++i) big += d(rng) >= 256;
  EXPECT_GT(big, 100);  // a fat tail must actually produce wide jobs
}

TEST(RuntimeDistribution, MedianAndMeanNearTargets) {
  const Seconds med = 3600, mean = 9000;
  RuntimeDistribution d(med, mean, 1, 1000000);
  Rng rng(5);
  std::vector<double> v;
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) {
    const auto r = static_cast<double>(d(rng));
    v.push_back(r);
    s.add(r);
  }
  EXPECT_NEAR(median_of(v), static_cast<double>(med),
              static_cast<double>(med) * 0.05);
  EXPECT_NEAR(s.mean(), static_cast<double>(mean),
              static_cast<double>(mean) * 0.08);
}

TEST(RuntimeDistribution, RespectsClamps) {
  RuntimeDistribution d(3600, 9000, 600, 7200);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const Seconds r = d(rng);
    EXPECT_GE(r, 600);
    EXPECT_LE(r, 7200);
  }
}

TEST(RuntimeDistribution, EqualMeanMedianDegeneratesToConstant) {
  RuntimeDistribution d(1000, 1000, 1, 100000);
  EXPECT_DOUBLE_EQ(d.sigma(), 0.0);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d(rng), 1000);
}

TEST(EstimateModel, AlwaysAtLeastRuntime) {
  EstimateModel m({3600}, {1.0}, 0.5, 1.1, 2.0, 7200);
  Rng rng(8);
  for (Seconds run : {Seconds{10}, Seconds{3600}, Seconds{7000},
                      Seconds{20000}}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_GE(m(run, rng), run);
    }
  }
}

TEST(EstimateModel, CapAtMaxUnlessRuntimeExceedsIt) {
  EstimateModel m({36000}, {1.0}, 1.0, 1.1, 2.0, 7200);
  Rng rng(9);
  EXPECT_EQ(m(100, rng), 7200);      // default 10 h clamped to 2 h max
  EXPECT_EQ(m(9000, rng), 9000);     // runtime above max wins
}

TEST(EstimateModel, DefaultsGrosslyOverestimateShortJobs) {
  // The paper's estimate pathology: median estimate 6 h vs median run 0.8 h.
  EstimateModel m({hours(6), hours(12)}, {4.0, 1.0}, 1.0, 1.1, 2.0,
                  hours(24));
  Rng rng(10);
  const Seconds run = minutes(48);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(m(run, rng)));
  }
  EXPECT_GT(s.mean(), static_cast<double>(hours(6)));
}

TEST(EstimateModel, PaddedEstimatesQuantizedTo15Min) {
  EstimateModel m({hours(6)}, {1.0}, 0.0, 1.2, 2.0, hours(24));
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const Seconds est = m(3000, rng);
    EXPECT_EQ(est % (15 * kSecondsPerMinute), 0) << est;
  }
}

TEST(EstimateModel, PaddedEstimateWithinPadBounds) {
  EstimateModel m({hours(6)}, {1.0}, 0.0, 1.5, 3.0, hours(100));
  Rng rng(12);
  const Seconds run = 10000;
  for (int i = 0; i < 2000; ++i) {
    const Seconds est = m(run, rng);
    EXPECT_GE(est, run);
    // upper bound: 3x padded + one 15-min granule
    EXPECT_LE(est, static_cast<Seconds>(3.0 * 10000) + 900);
  }
}

// Property sweep: distribution parameters across a grid stay in-contract.
struct DistParam {
  Seconds median;
  Seconds mean;
};

class RuntimeSweep : public ::testing::TestWithParam<DistParam> {};

TEST_P(RuntimeSweep, SamplesWithinClamps) {
  const auto p = GetParam();
  RuntimeDistribution d(p.median, p.mean, 60, days(5));
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const Seconds r = d(rng);
    ASSERT_GE(r, 60);
    ASSERT_LE(r, days(5));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RuntimeSweep,
    ::testing::Values(DistParam{600, 600}, DistParam{600, 1800},
                      DistParam{3600, 9000}, DistParam{hours(2), hours(9)},
                      DistParam{minutes(25), minutes(70)}));

}  // namespace
}  // namespace istc::workload
