#include "workload/presets.hpp"

#include <gtest/gtest.h>

namespace istc::workload {
namespace {

using cluster::Site;

TEST(WorkloadPresets, JobCountsMatchTable1) {
  EXPECT_EQ(site_workload(Site::kRoss).jobs, 4423u);
  EXPECT_EQ(site_workload(Site::kBlueMountain).jobs, 7763u);
  EXPECT_EQ(site_workload(Site::kBluePacific).jobs, 12761u);
}

TEST(WorkloadPresets, SpansMatchTable1) {
  for (auto site : cluster::all_sites()) {
    EXPECT_EQ(site_workload(site).span, cluster::site_span(site));
  }
}

TEST(WorkloadPresets, MaxCpusWithinMachines) {
  for (auto site : cluster::all_sites()) {
    EXPECT_LE(site_workload(site).max_cpus,
              cluster::machine_spec(site).cpus);
  }
}

TEST(WorkloadPresets, EstimatesFitBetweenOutages) {
  // If a job's estimate cannot fit between consecutive downtime windows it
  // can never start: the preset must keep estimate_max under the smallest
  // gap in the site's maintenance calendar.
  for (auto site : cluster::all_sites()) {
    const auto cal = cluster::site_downtime(site);
    const auto& ws = cal.windows();
    SimTime min_gap = cluster::site_span(site);
    for (std::size_t i = 1; i < ws.size(); ++i) {
      min_gap = std::min(min_gap, ws[i].start - ws[i - 1].end);
    }
    EXPECT_LT(site_workload(site).estimate_max, min_gap)
        << cluster::site_name(site);
  }
}

TEST(WorkloadPresets, SiteLogGeneratesTargetJobs) {
  for (auto site : cluster::all_sites()) {
    const auto log = site_log(site);
    EXPECT_EQ(log.size(), site_workload(site).jobs);
  }
}

TEST(WorkloadPresets, CanonicalLogIsDeterministic) {
  const auto a = site_log(Site::kBlueMountain);
  const auto b = site_log(Site::kBlueMountain);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].runtime, b[i].runtime);
    EXPECT_EQ(a[i].cpus, b[i].cpus);
  }
}

TEST(WorkloadPresets, OfferedLoadNearTable1Utilization) {
  // Offered load must sit at or slightly above the Table 1 utilization —
  // a scheduler cannot achieve more than what is offered.
  for (auto site : cluster::all_sites()) {
    const auto m = cluster::machine_spec(site);
    const auto spec = site_workload(site);
    const auto log = site_log(site);
    const double offered =
        log.total_cpu_seconds() /
        (static_cast<double>(m.cpus) * static_cast<double>(spec.span));
    const double target = cluster::site_targets(site).utilization;
    EXPECT_GE(offered, target - 0.01) << cluster::site_name(site);
    EXPECT_LE(offered, target + 0.09) << cluster::site_name(site);
  }
}

TEST(WorkloadPresets, BlueMountainEstimatePathologyReproduced) {
  // §4.3: median estimated run time 6 h vs median actual 0.8 h.
  const auto m = cluster::machine_spec(Site::kBlueMountain);
  const auto log = site_log(Site::kBlueMountain);
  const auto s =
      compute_stats(log, m, cluster::site_span(Site::kBlueMountain));
  EXPECT_NEAR(s.median_estimate_h, 6.0, 1.0);
  EXPECT_NEAR(s.median_runtime_h, 0.8, 0.4);
  EXPECT_GT(s.mean_estimate_h, s.mean_runtime_h);
}

TEST(WorkloadPresets, BluePacificJobsSmallerAndShorter) {
  // §4.3.2: Blue Pacific natives are relatively smaller/shorter than Blue
  // Mountain's (they "turn over quickly").
  const auto bp = compute_stats(site_log(Site::kBluePacific),
                                cluster::machine_spec(Site::kBluePacific),
                                cluster::site_span(Site::kBluePacific));
  const auto bm = compute_stats(site_log(Site::kBlueMountain),
                                cluster::machine_spec(Site::kBlueMountain),
                                cluster::site_span(Site::kBlueMountain));
  EXPECT_LT(bp.mean_cpus, bm.mean_cpus);
  EXPECT_LT(bp.mean_runtime_h, bm.mean_runtime_h);
}

TEST(WorkloadPresets, RossHasMultiDayJobs) {
  // The paper: Ross users submit very long jobs.
  const auto log = site_log(Site::kRoss);
  int multiday = 0;
  for (const auto& j : log.jobs()) multiday += j.runtime > days(1);
  EXPECT_GT(multiday, 10);
}

}  // namespace
}  // namespace istc::workload
