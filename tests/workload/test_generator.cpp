#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace istc::workload {
namespace {

cluster::MachineSpec test_machine() {
  return {.name = "t", .site = "", .queue_system = "", .cpus = 512,
          .clock_ghz = 0.5};
}

WorkloadSpec small_spec() {
  WorkloadSpec w;
  w.name = "test";
  w.span = days(10);
  w.jobs = 2000;
  w.offered_load = 0.7;
  w.size_classes = {{1, 2.0}, {4, 2.0}, {16, 1.5}, {64, 1.0}, {128, 0.4}};
  w.size_tail_prob = 0.03;
  w.size_tail_alpha = 1.0;
  w.max_cpus = 256;
  w.runtime_median = minutes(30);
  w.runtime_mean = minutes(90);
  w.runtime_min = 60;
  w.runtime_max = days(1);
  w.estimate_defaults = {hours(4), hours(8)};
  w.estimate_default_weights = {2.0, 1.0};
  w.estimate_default_prob = 0.6;
  w.estimate_max = days(1);
  w.population = {.users = 20, .groups = 4, .zipf_s = 0.8};
  return w;
}

TEST(Generator, ProducesRequestedJobCount) {
  Rng rng(1);
  const auto log = Generator(small_spec()).generate(test_machine(), rng);
  EXPECT_EQ(log.size(), 2000u);
}

TEST(Generator, AllJobsValid) {
  Rng rng(2);
  const auto spec = small_spec();
  const auto log = Generator(spec).generate(test_machine(), rng);
  for (const auto& j : log.jobs()) {
    EXPECT_GE(j.submit, 0);
    EXPECT_LT(j.submit, spec.span);
    EXPECT_GE(j.cpus, 1);
    EXPECT_LE(j.cpus, spec.max_cpus);
    EXPECT_GE(j.runtime, spec.runtime_min);
    EXPECT_LE(j.runtime, spec.runtime_max);
    EXPECT_GE(j.estimate, j.runtime);
    EXPECT_LT(j.user, 20);
    EXPECT_LT(j.group, 4);
  }
}

TEST(Generator, IdsDenseAndUnique) {
  Rng rng(3);
  const auto log = Generator(small_spec()).generate(test_machine(), rng);
  std::set<JobId> ids;
  for (const auto& j : log.jobs()) ids.insert(j.id);
  EXPECT_EQ(ids.size(), log.size());
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), log.size() - 1);
}

TEST(Generator, OfferedLoadCalibrated) {
  Rng rng(4);
  const auto spec = small_spec();
  const auto m = test_machine();
  const auto log = Generator(spec).generate(m, rng);
  const double offered =
      log.total_cpu_seconds() /
      (static_cast<double>(m.cpus) * static_cast<double>(spec.span));
  EXPECT_NEAR(offered, spec.offered_load, spec.offered_load * 0.02);
}

TEST(Generator, CalibrationSurvivesAggressiveClamps) {
  // Tight runtime_max forces the iterative recalibration to work hard.
  auto spec = small_spec();
  spec.runtime_max = hours(4);
  spec.offered_load = 0.6;
  Rng rng(5);
  const auto m = test_machine();
  const auto log = Generator(spec).generate(m, rng);
  const double offered =
      log.total_cpu_seconds() /
      (static_cast<double>(m.cpus) * static_cast<double>(spec.span));
  EXPECT_NEAR(offered, 0.6, 0.05);
}

TEST(Generator, DeterministicPerSeed) {
  const auto spec = small_spec();
  Rng a(6), b(6);
  const auto l1 = Generator(spec).generate(test_machine(), a);
  const auto l2 = Generator(spec).generate(test_machine(), b);
  ASSERT_EQ(l1.size(), l2.size());
  for (std::size_t i = 0; i < l1.size(); ++i) {
    EXPECT_EQ(l1[i].submit, l2[i].submit);
    EXPECT_EQ(l1[i].cpus, l2[i].cpus);
    EXPECT_EQ(l1[i].runtime, l2[i].runtime);
    EXPECT_EQ(l1[i].estimate, l2[i].estimate);
    EXPECT_EQ(l1[i].user, l2[i].user);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto spec = small_spec();
  Rng a(7), b(8);
  const auto l1 = Generator(spec).generate(test_machine(), a);
  const auto l2 = Generator(spec).generate(test_machine(), b);
  int diffs = 0;
  for (std::size_t i = 0; i < l1.size(); ++i) {
    diffs += l1[i].runtime != l2[i].runtime;
  }
  EXPECT_GT(diffs, 100);
}

TEST(Generator, SizeRuntimeCorrelationRaisesJointTail) {
  auto corr = small_spec();
  corr.runtime_size_exponent = 0.6;
  corr.correlation_ref_cpus = 4;
  auto uncorr = small_spec();

  Rng r1(9), r2(9);
  const auto lc = Generator(corr).generate(test_machine(), r1);
  const auto lu = Generator(uncorr).generate(test_machine(), r2);

  auto mean_runtime_of_wide = [](const JobLog& log) {
    double sum = 0;
    int n = 0;
    for (const auto& j : log.jobs()) {
      if (j.cpus >= 64) {
        sum += static_cast<double>(j.runtime);
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  auto mean_runtime_of_narrow = [](const JobLog& log) {
    double sum = 0;
    int n = 0;
    for (const auto& j : log.jobs()) {
      if (j.cpus <= 2) {
        sum += static_cast<double>(j.runtime);
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  // Correlated: wide jobs run much longer than narrow ones.
  EXPECT_GT(mean_runtime_of_wide(lc), 2.0 * mean_runtime_of_narrow(lc));
  // Uncorrelated: roughly comparable.
  EXPECT_LT(mean_runtime_of_wide(lu), 2.0 * mean_runtime_of_narrow(lu));
}

TEST(ComputeStats, ReportsSaneValues) {
  Rng rng(10);
  const auto spec = small_spec();
  const auto m = test_machine();
  const auto log = Generator(spec).generate(m, rng);
  const auto s = compute_stats(log, m, spec.span);
  EXPECT_EQ(s.jobs, 2000u);
  EXPECT_NEAR(s.offered_load, 0.7, 0.02);
  EXPECT_GT(s.mean_cpus, 1.0);
  EXPECT_GT(s.mean_runtime_h, s.median_runtime_h);   // right-skewed
  EXPECT_GT(s.median_estimate_h, s.median_runtime_h);  // overestimates
}

TEST(ComputeStats, EmptyLog) {
  const auto s = compute_stats(JobLog{}, test_machine(), days(1));
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.offered_load, 0.0);
}

}  // namespace
}  // namespace istc::workload
