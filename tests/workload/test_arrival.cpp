#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace istc::workload {
namespace {

TEST(ArrivalProcess, GeneratesExactTargetCount) {
  ArrivalProcess p{ArrivalSpec{}};
  Rng rng(1);
  for (std::size_t target : {1u, 10u, 500u, 5000u}) {
    const auto a = p.generate(days(30), target, rng);
    EXPECT_EQ(a.size(), target);
  }
}

TEST(ArrivalProcess, SortedWithinSpan) {
  ArrivalProcess p{ArrivalSpec{}};
  Rng rng(2);
  const SimTime span = days(20);
  const auto a = p.generate(span, 2000, rng);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GE(a.front(), 0);
  EXPECT_LT(a.back(), span);
}

TEST(ArrivalProcess, DeterministicPerSeed) {
  ArrivalProcess p{ArrivalSpec{}};
  Rng a(3), b(3);
  EXPECT_EQ(p.generate(days(10), 500, a), p.generate(days(10), 500, b));
}

TEST(ArrivalProcess, ModulationPeaksNearPeakHour) {
  ArrivalSpec spec;
  spec.diurnal_amplitude = 0.6;
  spec.diurnal_peak_hour = 14.0;
  ArrivalProcess p{spec};
  const double at_peak = p.modulation(hours(14));
  const double at_trough = p.modulation(hours(2));
  EXPECT_GT(at_peak, at_trough);
  EXPECT_NEAR(at_peak, 1.6, 0.01);
  EXPECT_NEAR(at_trough, 0.4, 0.01);
}

TEST(ArrivalProcess, WeekendDampened) {
  ArrivalSpec spec;
  spec.weekend_factor = 0.5;
  ArrivalProcess p{spec};
  // Day 5 (Saturday, trace starts Monday) at the same hour as day 4.
  const double friday = p.modulation(days(4) + hours(14));
  const double saturday = p.modulation(days(5) + hours(14));
  EXPECT_NEAR(saturday / friday, 0.5, 1e-9);
}

TEST(ArrivalProcess, ZeroAmplitudeIsFlatWeekdays) {
  ArrivalSpec spec;
  spec.diurnal_amplitude = 0.0;
  ArrivalProcess p{spec};
  EXPECT_DOUBLE_EQ(p.modulation(hours(3)), p.modulation(hours(15)));
}

TEST(ArrivalProcess, BurstinessIncreasesClumping) {
  // Compare inter-arrival coefficient of variation: the MMPP+diurnal stream
  // should be more variable than near-Poisson (burst_factor=1, flat).
  ArrivalSpec bursty;
  bursty.burst_factor = 8.0;
  ArrivalSpec calm;
  calm.burst_factor = 1.0;
  calm.diurnal_amplitude = 0.0;
  calm.weekend_factor = 1.0;

  auto cv = [](const std::vector<SimTime>& a) {
    double mean = 0, m2 = 0;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < a.size(); ++i) {
      gaps.push_back(static_cast<double>(a[i] - a[i - 1]));
    }
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    for (double g : gaps) m2 += (g - mean) * (g - mean);
    m2 /= static_cast<double>(gaps.size() - 1);
    return std::sqrt(m2) / mean;
  };

  Rng r1(4), r2(4);
  const auto a_bursty = ArrivalProcess{bursty}.generate(days(60), 8000, r1);
  const auto a_calm = ArrivalProcess{calm}.generate(days(60), 8000, r2);
  EXPECT_GT(cv(a_bursty), cv(a_calm) * 1.3);
}

TEST(ArrivalProcess, HandlesTargetLargerThanInitialEstimate) {
  // Force the retry/upscale path with a very bursty, dampened profile.
  ArrivalSpec spec;
  spec.weekend_factor = 0.3;
  spec.diurnal_amplitude = 0.8;
  ArrivalProcess p{spec};
  Rng rng(5);
  const auto a = p.generate(days(3), 10000, rng);
  EXPECT_EQ(a.size(), 10000u);
}

class ArrivalTargetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArrivalTargetSweep, ExactCountAndRange) {
  ArrivalProcess p{ArrivalSpec{}};
  Rng rng(6 + GetParam());
  const SimTime span = days(15);
  const auto a = p.generate(span, GetParam(), rng);
  ASSERT_EQ(a.size(), GetParam());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (SimTime t : a) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, span);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, ArrivalTargetSweep,
                         ::testing::Values(1, 2, 17, 100, 1234, 20000));

}  // namespace
}  // namespace istc::workload
