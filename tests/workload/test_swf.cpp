#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace istc::workload {
namespace {

constexpr const char* kSample =
    "; Sample SWF trace\n"
    "; Computer: test\n"
    "1 100 5 300 8 -1 -1 8 600 -1 1 3 2 -1 -1 -1 -1 -1\n"
    "2 150 0 120 4 -1 -1 4 240 -1 1 5 1 -1 -1 -1 -1 -1\n";

TEST(Swf, ParsesBasicTrace) {
  std::istringstream in(kSample);
  SwfReadOptions opts;
  opts.rebase_time = false;
  const auto log = read_swf(in, opts);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].submit, 100);
  EXPECT_EQ(log[0].runtime, 300);
  EXPECT_EQ(log[0].cpus, 8);
  EXPECT_EQ(log[0].estimate, 600);
  EXPECT_EQ(log[0].user, 3);
  EXPECT_EQ(log[0].group, 2);
  EXPECT_EQ(log[1].cpus, 4);
}

TEST(Swf, RebasesTimeToFirstSubmit) {
  std::istringstream in(kSample);
  const auto log = read_swf(in);
  EXPECT_EQ(log[0].submit, 0);
  EXPECT_EQ(log[1].submit, 50);
}

TEST(Swf, SkipsCommentsAndBlankLines) {
  std::istringstream in("; comment\n\n   \n" + std::string(kSample));
  EXPECT_EQ(read_swf(in).size(), 2u);
}

TEST(Swf, SkipsInvalidJobsWhenAsked) {
  std::istringstream in(
      "1 100 0 -1 8 -1 -1 8 600 -1 0 1 1 -1 -1 -1 -1 -1\n"   // runtime -1
      "2 150 0 120 0 -1 -1 0 240 -1 0 1 1 -1 -1 -1 -1 -1\n"  // 0 cpus
      "3 200 0 120 4 -1 -1 4 240 -1 1 1 1 -1 -1 -1 -1 -1\n");
  const auto log = read_swf(in);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].runtime, 120);
}

TEST(Swf, ThrowsOnInvalidWhenStrict) {
  std::istringstream in("1 100 0 -1 8 -1 -1 8 600 -1 0 1 1 -1 -1 -1 -1 -1\n");
  SwfReadOptions opts;
  opts.skip_invalid = false;
  EXPECT_THROW(read_swf(in, opts), std::runtime_error);
}

TEST(Swf, ClampsEstimateUpToRuntime) {
  std::istringstream in("1 0 0 500 4 -1 -1 4 100 -1 1 1 1 -1 -1 -1 -1 -1\n");
  const auto log = read_swf(in);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].estimate, 500);
}

TEST(Swf, ThrowsOnLowEstimateWhenStrict) {
  std::istringstream in("1 0 0 500 4 -1 -1 4 100 -1 1 1 1 -1 -1 -1 -1 -1\n");
  SwfReadOptions opts;
  opts.clamp_estimates = false;
  EXPECT_THROW(read_swf(in, opts), std::runtime_error);
}

TEST(Swf, ThrowsOnShortLine) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(Swf, FallsBackToRequestedProcs) {
  // allocated = -1, requested = 16
  std::istringstream in("1 0 0 60 -1 -1 -1 16 120 -1 1 1 1 -1 -1 -1 -1 -1\n");
  const auto log = read_swf(in);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].cpus, 16);
}

TEST(Swf, RoundTrip) {
  std::istringstream in(kSample);
  SwfReadOptions opts;
  opts.rebase_time = false;
  const auto log = read_swf(in, opts);

  std::ostringstream out;
  write_swf(out, log, "round trip\nsecond header line");
  std::istringstream back(out.str());
  const auto log2 = read_swf(back, opts);

  ASSERT_EQ(log2.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log2[i].submit, log[i].submit);
    EXPECT_EQ(log2[i].runtime, log[i].runtime);
    EXPECT_EQ(log2[i].cpus, log[i].cpus);
    EXPECT_EQ(log2[i].estimate, log[i].estimate);
    EXPECT_EQ(log2[i].user, log[i].user);
    EXPECT_EQ(log2[i].group, log[i].group);
  }
}

TEST(Swf, WriteEmitsHeaderComments) {
  std::ostringstream out;
  write_swf(out, JobLog{}, "line one");
  EXPECT_EQ(out.str(), "; line one\n");
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/no/such/file.swf"), std::runtime_error);
}

}  // namespace
}  // namespace istc::workload
