// Cross-cutting physical invariants on full site co-simulations.

#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hpp"
#include "metrics/utilization.hpp"

namespace istc {
namespace {

using cluster::Site;

TEST(Invariants, CoSimNeverOversubscribes) {
  const auto& run = core::continual_run(Site::kBlueMountain, 32, 120);
  const auto steps =
      metrics::busy_step_function(run.records, metrics::JobFilter::kAll);
  for (const auto& [t, busy] : steps) {
    ASSERT_LE(busy, run.machine.cpus) << "t=" << t;
  }
}

TEST(Invariants, NothingRunsThroughOutages) {
  const auto cal = cluster::site_downtime(Site::kBlueMountain);
  const auto& run = core::continual_run(Site::kBlueMountain, 32, 120);
  for (const auto& r : run.records) {
    ASSERT_EQ(cal.down_seconds(r.start, r.end), 0) << "job " << r.job.id;
  }
}

TEST(Invariants, UtilizationCapHoldsAtEverySubmissionInstant) {
  constexpr double kCap = 0.90;
  const auto& run = core::continual_run(Site::kBlueMountain, 32, 120, kCap);
  // Busy CPUs at each interstitial start must respect the cap.
  const auto steps =
      metrics::busy_step_function(run.records, metrics::JobFilter::kAll);
  auto busy_at = [&](SimTime t) {
    int v = 0;
    for (const auto& [time, busy] : steps) {
      if (time > t) break;
      v = busy;
    }
    return v;
  };
  const double cap_cpus = kCap * run.machine.cpus;
  std::size_t checked = 0;
  for (const auto& r : run.records) {
    if (!r.interstitial()) continue;
    if (++checked % 37 != 0) continue;  // sample for speed
    ASSERT_LE(busy_at(r.start), cap_cpus + 1e-9)
        << "cap violated at t=" << r.start;
  }
  EXPECT_GT(checked, 1000u);
}

TEST(Invariants, CappedRunHarvestsLessThanUnlimited) {
  const auto& capped = core::continual_run(Site::kBlueMountain, 32, 120, 0.90);
  const auto& full = core::continual_run(Site::kBlueMountain, 32, 120);
  EXPECT_LT(capped.interstitial_count(), full.interstitial_count());
}

TEST(Invariants, RecordsHaveUniqueIds) {
  const auto& run = core::continual_run(Site::kBlueMountain, 32, 120);
  std::map<workload::JobId, int> seen;
  for (const auto& r : run.records) {
    ASSERT_EQ(++seen[r.job.id], 1) << "duplicate id " << r.job.id;
  }
}

TEST(Invariants, InterstitialIdsDisjointFromNative) {
  const auto& run = core::continual_run(Site::kBlueMountain, 32, 120);
  workload::JobId max_native = 0;
  workload::JobId min_inter = UINT32_MAX;
  for (const auto& r : run.records) {
    if (r.interstitial()) {
      min_inter = std::min(min_inter, r.job.id);
    } else {
      max_native = std::max(max_native, r.job.id);
    }
  }
  EXPECT_GT(min_inter, max_native);
}

TEST(Invariants, WorkConservation) {
  // Busy area equals the summed cpu-seconds of the records.
  const auto& run = core::native_baseline(Site::kRoss);
  double sum = 0;
  for (const auto& r : run.records) sum += r.cpu_seconds();
  const double busy = metrics::busy_cpu_seconds(
      run.records, 0, run.sim_end + 1, metrics::JobFilter::kAll);
  EXPECT_NEAR(busy, sum, sum * 1e-12);
}

TEST(Invariants, ScenarioWithDifferentSeedDiffers) {
  // The calibrated utilization is a property of the *spec*, not one lucky
  // seed: an alternate-seed log still lands near the target, but is a
  // genuinely different trace.
  core::Scenario alt;
  alt.site = Site::kBlueMountain;
  alt.log_seed = 0xABCDEF;
  const auto run = core::run_scenario(alt);
  const double u = metrics::average_utilization(run.records,
                                                run.machine.cpus, 0, run.span);
  EXPECT_NEAR(u, 0.79, 0.03);
  const auto& canonical = core::native_baseline(Site::kBlueMountain);
  bool differs = run.records.size() != canonical.records.size();
  for (std::size_t i = 0; !differs && i < run.records.size(); ++i) {
    differs = run.records[i].start != canonical.records[i].start;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace istc
