// Site-scale invariants of the preemption extension: a full Blue Mountain
// co-simulation under fill-and-evict.

#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"

namespace istc {
namespace {

using cluster::Site;

const sched::RunResult& preemptive_run() {
  static const sched::RunResult run = [] {
    core::Scenario sc;
    sc.site = Site::kBlueMountain;
    auto stream = core::ProjectSpec::continual_stream(
        32, 120, cluster::site_span(sc.site));
    stream.gate = core::GatePolicy::kAlways;
    stream.recovery = core::PreemptionRecovery::kCheckpoint;
    sc.project = stream;
    sc.preempt_interstitial = true;
    return core::run_scenario(sc);
  }();
  return run;
}

TEST(PreemptionSite, NativeStartsIdenticalToBaseline) {
  const auto& base = core::native_baseline(Site::kBlueMountain);
  const auto& run = preemptive_run();
  std::map<workload::JobId, SimTime> base_starts, run_starts;
  for (const auto& r : base.records) base_starts[r.job.id] = r.start;
  for (const auto& r : run.records) {
    if (!r.interstitial()) run_starts[r.job.id] = r.start;
  }
  EXPECT_EQ(base_starts, run_starts);
}

TEST(PreemptionSite, OccupancyIncludingKillsNeverExceedsCapacity) {
  const auto& run = preemptive_run();
  std::map<SimTime, int> delta;
  auto add = [&](const sched::JobRecord& r) {
    if (r.end <= r.start) return;
    delta[r.start] += r.job.cpus;
    delta[r.end] -= r.job.cpus;
  };
  for (const auto& r : run.records) add(r);
  for (const auto& r : run.killed) add(r);
  int busy = 0;
  for (const auto& [t, d] : delta) {
    busy += d;
    ASSERT_GE(busy, 0);
    ASSERT_LE(busy, run.machine.cpus) << "t=" << t;
  }
}

TEST(PreemptionSite, SubstantialHarvestSurvivesEviction) {
  const auto& run = preemptive_run();
  EXPECT_GT(run.interstitial_count(), 200000u);
  EXPECT_GT(run.killed.size(), 10000u);  // evictions really happen
  // Useful utilization (completed + checkpointed work) beats the gated
  // design's floor.
  double busy = metrics::busy_cpu_seconds(run.records, 0, run.span,
                                          metrics::JobFilter::kAll);
  for (const auto& k : run.killed) {
    const SimTime a = std::max<SimTime>(0, k.start);
    const SimTime b = std::min(run.span, k.end);
    if (b > a) {
      busy += static_cast<double>(k.job.cpus) * static_cast<double>(b - a);
    }
  }
  const double useful = busy / (static_cast<double>(run.machine.cpus) *
                                static_cast<double>(run.span));
  EXPECT_GT(useful, 0.94);
}

TEST(PreemptionSite, KilledRecordsAreConsistent) {
  const auto& run = preemptive_run();
  for (const auto& r : run.killed) {
    ASSERT_TRUE(r.interstitial());
    ASSERT_GE(r.start, 0);
    ASSERT_GT(r.end, r.start);                 // some execution happened...
    ASSERT_LT(r.end - r.start, r.job.runtime); // ...but not completion
  }
}

}  // namespace
}  // namespace istc
