// Native-only simulations of the three sites must land on the paper's
// Table 1 utilizations — this is the calibration contract everything else
// builds on.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"

namespace istc {
namespace {

using cluster::Site;

class NativeCalibration : public ::testing::TestWithParam<Site> {};

TEST_P(NativeCalibration, UtilizationMatchesTable1) {
  const Site site = GetParam();
  const double measured = core::native_utilization(site);
  const double target = cluster::site_targets(site).utilization;
  EXPECT_NEAR(measured, target, 0.02) << cluster::site_name(site);
}

TEST_P(NativeCalibration, AllNativeJobsComplete) {
  const Site site = GetParam();
  const auto& base = core::native_baseline(site);
  EXPECT_EQ(base.records.size(),
            static_cast<std::size_t>(cluster::site_targets(site).jobs));
  EXPECT_EQ(base.interstitial_count(), 0u);
}

TEST_P(NativeCalibration, WaitsAreCausal) {
  const Site site = GetParam();
  for (const auto& r : core::native_baseline(site).records) {
    ASSERT_GE(r.start, r.job.submit);
    ASSERT_EQ(r.end - r.start, r.job.runtime);
  }
}

TEST_P(NativeCalibration, NoInstantOversubscribed) {
  const Site site = GetParam();
  const auto& base = core::native_baseline(site);
  const auto steps =
      metrics::busy_step_function(base.records, metrics::JobFilter::kAll);
  const int cap = base.machine.cpus;
  for (const auto& [t, busy] : steps) {
    ASSERT_LE(busy, cap) << "oversubscribed at t=" << t;
  }
}

TEST_P(NativeCalibration, NothingRunsDuringOutages) {
  const Site site = GetParam();
  const auto cal = cluster::site_downtime(site);
  for (const auto& r : core::native_baseline(site).records) {
    ASSERT_EQ(cal.down_seconds(r.start, r.end), 0)
        << "job " << r.job.id << " ran through an outage";
  }
}

INSTANTIATE_TEST_SUITE_P(Sites, NativeCalibration,
                         ::testing::Values(Site::kRoss, Site::kBlueMountain,
                                           Site::kBluePacific),
                         [](const ::testing::TestParamInfo<Site>& param_info) {
                           switch (param_info.param) {
                             case Site::kRoss: return "Ross";
                             case Site::kBlueMountain: return "BlueMountain";
                             case Site::kBluePacific: return "BluePacific";
                           }
                           return "unknown";
                         });

TEST(NativeShape, BlueMountainMedianWaitNearZero) {
  // Table 5/6 baseline: median native wait ~0 on Blue Mountain.
  const auto w =
      metrics::wait_stats(core::native_baseline(Site::kBlueMountain).records);
  EXPECT_LT(w.median_wait_s, 600.0);
}

TEST(NativeShape, BluePacificWaitsLargerThanBlueMountain) {
  // The near-saturated machine queues more (Table 7 vs 6 baselines).
  const auto bp =
      metrics::wait_stats(core::native_baseline(Site::kBluePacific).records);
  const auto bm =
      metrics::wait_stats(core::native_baseline(Site::kBlueMountain).records);
  EXPECT_GT(bp.median_wait_s, bm.median_wait_s);
}

TEST(NativeShape, UtilizationIsErratic) {
  // §1: "the utilization is quite variable" — hourly utilization must swing
  // substantially around its mean (this variability is what interstitial
  // computing exploits).
  const auto& base = core::native_baseline(Site::kBlueMountain);
  const auto series = metrics::utilization_series(
      base.records, base.machine.cpus, base.span);
  double lo = 1.0, hi = 0.0;
  for (double u : series) {
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.4);
  EXPECT_GT(hi, 0.95);
}

}  // namespace
}  // namespace istc
