// The paper's qualitative claims, checked end-to-end: who wins, by roughly
// what factor, and where the crossovers fall.  Absolute numbers differ from
// the paper (synthetic logs), but these shapes must hold.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/omniscient.hpp"
#include "core/theory.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"

namespace istc {
namespace {

using cluster::Site;

TEST(PaperProperties, OmniscientMakespanNearTheory) {
  // Fig. 2: measured omniscient makespans track P/(N*C*(1-U)) within a
  // modest factor (the paper fits slope 1.16 +- 17%).
  const auto spec = core::ProjectSpec::paper(2000, 32, 120);  // 7.7 Pc
  const auto sample =
      core::omniscient_makespans(Site::kBlueMountain, spec, 10);
  ASSERT_TRUE(sample.feasible());
  const auto in = core::theory_inputs(
      cluster::machine_spec(Site::kBlueMountain),
      core::native_utilization(Site::kBlueMountain));
  const double theory_h =
      core::ideal_makespan_s(in, spec.total_cycles()) / 3600.0;
  // The paper's fit puts measured omniscient makespans at 1.16x theory plus
  // a constant.  The synthetic logs' utilization is more strongly
  // autocorrelated than the real traces' (documented in EXPERIMENTS.md), so
  // small projects can wait out saturated stretches; assert the same-order
  // relationship only.
  const double measured_h = sample.summary().mean();
  EXPECT_GT(measured_h, 0.5 * theory_h);
  EXPECT_LT(measured_h, 6.0 * theory_h);
}

TEST(PaperProperties, MakespanScalesWithProjectSize) {
  // Table 2 columns: 7.7 Pc -> 123 Pc is 16x the work; the paper's
  // makespans grow ~12x (13.5 h -> 166 h).  The fit's constant offset and
  // utilization autocorrelation compress the ratio below 16; require the
  // strong-scaling ordering with generous slack for 8 replications.
  const auto small =
      core::omniscient_makespans(Site::kBlueMountain,
                                 core::ProjectSpec::paper(2000, 32, 120), 8);
  const auto big = core::omniscient_makespans(
      Site::kBlueMountain, core::ProjectSpec::paper(32000, 32, 120), 8);
  const double ratio = big.summary().mean() / small.summary().mean();
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 16.0);
}

TEST(PaperProperties, BreakagePenaltySmallOnBigMachines) {
  // Table 3: 32-CPU vs 1-CPU omniscient makespans differ ~2% on Blue
  // Mountain (large spare pool) — equal work per project.
  const auto narrow =
      core::omniscient_makespans(Site::kBlueMountain,
                                 core::ProjectSpec::paper(64000, 1, 120), 8);
  const auto wide =
      core::omniscient_makespans(Site::kBlueMountain,
                                 core::ProjectSpec::paper(2000, 32, 120), 8);
  const double ratio = wide.summary().mean() / narrow.summary().mean();
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.25);
}

TEST(PaperProperties, FallibleSlowerThanOmniscient) {
  // Table 4 vs Table 2: estimate-driven submission lengthens makespans.
  const auto spec = core::ProjectSpec::paper(2000, 32, 120);
  const auto omni =
      core::omniscient_makespans(Site::kBlueMountain, spec, 10);
  const auto fall = core::fallible_makespans(Site::kBlueMountain, spec, 100);
  ASSERT_TRUE(omni.feasible());
  ASSERT_TRUE(fall.feasible());
  // Mean fallible makespan should not be dramatically *shorter*; the paper
  // saw ~10-15% longer.  Allow generous slack but require the ordering.
  EXPECT_GT(fall.summary().mean(), 0.8 * omni.summary().mean());
}

TEST(PaperProperties, UtilizationCapTradeoff) {
  // Table 8: caps of 90/95/98% trade interstitial throughput for native
  // protection — throughput is monotone in the cap, native impact too.
  const auto& full = core::continual_run(Site::kBlueMountain, 32, 120);
  const auto& cap98 = core::continual_run(Site::kBlueMountain, 32, 120, 0.98);
  const auto& cap95 = core::continual_run(Site::kBlueMountain, 32, 120, 0.95);
  const auto& cap90 = core::continual_run(Site::kBlueMountain, 32, 120, 0.90);
  EXPECT_LT(cap90.interstitial_count(), cap95.interstitial_count());
  EXPECT_LT(cap95.interstitial_count(), cap98.interstitial_count());
  EXPECT_LE(cap98.interstitial_count(), full.interstitial_count());
  // The paper: the 90% cap drops jobs by ~40% vs unlimited, 95% by ~20%,
  // 98% by ~10%.
  const double drop90 = 1.0 - static_cast<double>(cap90.interstitial_count()) /
                                  static_cast<double>(full.interstitial_count());
  EXPECT_GT(drop90, 0.10);
  EXPECT_LT(drop90, 0.70);
  // Native wait impact shrinks as the cap tightens.
  const auto w_full = metrics::wait_stats(full.records);
  const auto w_90 = metrics::wait_stats(cap90.records);
  EXPECT_LE(w_90.median_wait_s, w_full.median_wait_s + 1.0);
}

TEST(PaperProperties, InterstitialBeatsScalingNativeJobs) {
  // §4.3.2's headline: interstitial computing raises utilization far more
  // gently than cranking native load.  Compare the native-impact cost of a
  // ~15-point utilization lift via interstitial against the baseline.
  const auto& base = core::native_baseline(Site::kBlueMountain);
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  const double u0 = metrics::average_utilization(base.records,
                                                 base.machine.cpus, 0,
                                                 base.span);
  const double u1 = metrics::average_utilization(
      with_i.records, with_i.machine.cpus, 0, with_i.span);
  EXPECT_GT(u1 - u0, 0.10);
  // ...while the median native wait moves by at most ~one job runtime.
  const auto w0 = metrics::wait_stats(base.records);
  const auto w1 = metrics::wait_stats(with_i.records);
  EXPECT_LT(w1.median_wait_s - w0.median_wait_s, 1000.0);
}

TEST(PaperProperties, LargestJobsBearTheImpact) {
  // Table 5 / Fig. 6: the 5% largest native jobs see a much bigger wait
  // increase than the median job.
  const auto& base = core::native_baseline(Site::kBlueMountain);
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 960);
  const auto big0 = metrics::wait_stats(metrics::largest_native(
      base.records, 0.05));
  const auto big1 = metrics::wait_stats(metrics::largest_native(
      with_i.records, 0.05));
  const auto all0 = metrics::wait_stats(base.records);
  const auto all1 = metrics::wait_stats(with_i.records);
  const double big_delta = big1.avg_wait_s - big0.avg_wait_s;
  const double all_delta = all1.avg_wait_s - all0.avg_wait_s;
  EXPECT_GT(big_delta, all_delta);
}

TEST(PaperProperties, WaitDistributionPushedOutByDecades) {
  // Figs. 5-6: the (0,1] second peak of the no-interstitial case moves out
  // toward the interstitial-runtime decade.
  const auto& base = core::native_baseline(Site::kBlueMountain);
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  const auto h0 = metrics::wait_histogram(base.records);
  const auto h1 = metrics::wait_histogram(with_i.records);
  // Mass in the first decade shrinks...
  EXPECT_LT(h1.fraction(0), h0.fraction(0));
  // ...and re-appears around the 458-second decade ([2,3)).
  EXPECT_GT(h1.fraction(2), h0.fraction(2));
}

TEST(PaperProperties, FallibleInfeasibleForHugeProjectOnBluePacific) {
  // Table 4 marks 123-Pc projects "n/a (makespan >= log time)" on Blue
  // Pacific: the continual-sampling estimator must report infeasibility.
  const auto spec = core::ProjectSpec::paper(32000, 32, 120);  // 123 Pc
  const auto fall = core::fallible_makespans(Site::kBluePacific, spec, 50);
  EXPECT_FALSE(fall.feasible());
}

}  // namespace
}  // namespace istc
