// End-to-end continual interstitial runs: the §4.3.2 behaviours.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "metrics/makespan.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"

namespace istc {
namespace {

using cluster::Site;

TEST(ContinualRun, UtilizationLiftsSubstantially) {
  // Table 6: Blue Mountain 0.776 -> 0.942 overall.
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  const double overall = metrics::average_utilization(
      with_i.records, with_i.machine.cpus, 0, with_i.span);
  const double native = core::native_utilization(Site::kBlueMountain);
  EXPECT_GT(overall, native + 0.10);
  EXPECT_GT(overall, 0.90);
}

TEST(ContinualRun, NativeUtilizationUnchanged) {
  // Table 6: native utilization stays at its baseline — the same native
  // work completes inside the log window.
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  const double native_in_run = metrics::average_utilization(
      with_i.records, with_i.machine.cpus, 0, with_i.span,
      metrics::JobFilter::kNativeOnly);
  EXPECT_NEAR(native_in_run, core::native_utilization(Site::kBlueMountain),
              0.02);
}

TEST(ContinualRun, NativeThroughputPreserved) {
  // "the number of native jobs making it through ... was the same".
  const auto& base = core::native_baseline(Site::kBlueMountain);
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  EXPECT_EQ(with_i.native_count(), base.records.size());
}

TEST(ContinualRun, ManyInterstitialJobsHarvested) {
  // Table 6 reports ~409k 458-second jobs; the calibrated simulation must
  // land in the same regime (hundreds of thousands).
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  EXPECT_GT(with_i.interstitial_count(), 200000u);
  EXPECT_LT(with_i.interstitial_count(), 700000u);
}

TEST(ContinualRun, LongerJobsMeanFewerJobs) {
  // Table 6: 458 s jobs -> ~409k, 3664 s jobs -> ~49k (about 8x fewer).
  const auto& short_j = core::continual_run(Site::kBlueMountain, 32, 120);
  const auto& long_j = core::continual_run(Site::kBlueMountain, 32, 960);
  const double ratio =
      static_cast<double>(short_j.interstitial_count()) /
      static_cast<double>(long_j.interstitial_count());
  EXPECT_NEAR(ratio, 8.0, 1.5);
}

TEST(ContinualRun, MedianWaitRisesByAboutOneInterstitialRuntime) {
  // Table 6: median wait 0 -> 0.2k (458 s jobs) and 0.4k (3664 s jobs):
  // the delay is bounded near the interstitial job runtime.
  const auto& base = core::native_baseline(Site::kBlueMountain);
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  const auto w0 = metrics::wait_stats(base.records);
  const auto w1 = metrics::wait_stats(with_i.records);
  EXPECT_GE(w1.median_wait_s, w0.median_wait_s);
  EXPECT_LT(w1.median_wait_s, w0.median_wait_s + 3 * 458.0);
}

TEST(ContinualRun, LongerInterstitialJobsHurtNativesMore) {
  // Table 5's conclusion: "the fewer jobs that run for a longer time have
  // a greater affect on the native jobs."
  const auto& short_j = core::continual_run(Site::kBlueMountain, 32, 120);
  const auto& long_j = core::continual_run(Site::kBlueMountain, 32, 960);
  const auto ws = metrics::wait_stats(short_j.records);
  const auto wl = metrics::wait_stats(long_j.records);
  EXPECT_GE(wl.median_wait_s, ws.median_wait_s);
}

TEST(ContinualRun, InterstitialStopsAtSpan) {
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  for (const auto& r : with_i.records) {
    if (r.interstitial()) {
      ASSERT_LT(r.start, with_i.span);
    }
  }
}

TEST(ContinualRun, InterstitialJobsHaveUniformShape) {
  const auto& with_i = core::continual_run(Site::kBlueMountain, 32, 120);
  for (const auto& r : with_i.records) {
    if (!r.interstitial()) continue;
    ASSERT_EQ(r.job.cpus, 32);
    ASSERT_EQ(r.job.runtime, 458);
    ASSERT_EQ(r.wait(), 0);  // started the instant they were submitted
  }
}

TEST(ContinualRun, BluePacificSmallLiftAtHighUtilization) {
  // Table 7: already at .916, the lift is only a few points.
  const auto& with_i = core::continual_run(Site::kBluePacific, 32, 120);
  const double overall = metrics::average_utilization(
      with_i.records, with_i.machine.cpus, 0, with_i.span);
  const double native = core::native_utilization(Site::kBluePacific);
  const double lift = overall - native;
  EXPECT_GT(lift, 0.005);
  EXPECT_LT(lift, 0.08);
}

TEST(ContinualRun, RossLargeLiftAtLowUtilization) {
  // Table 8 (Ross): 0.631 -> ~0.988 overall.
  const auto& with_i = core::continual_run(Site::kRoss, 32, 120);
  const double overall = metrics::average_utilization(
      with_i.records, with_i.machine.cpus, 0, with_i.span);
  EXPECT_GT(overall, 0.90);
}

}  // namespace
}  // namespace istc
