// Randomized scenario smoke test: fuzz the Scenario knob space (site x
// project shape x preemption x typed/legacy events x fault spec) with a
// seeded RNG and assert the physical invariants every configuration must
// satisfy — no CPU oversubscription, internally consistent records, nothing
// running through planned outages — plus the determinism contract: the same
// knobs produce the same schedule, twice.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include "cluster/presets.hpp"
#include "core/experiment.hpp"
#include "metrics/utilization.hpp"
#include "util/rng.hpp"

namespace istc {
namespace {

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_run(const sched::RunResult& run) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto* list : {&run.records, &run.killed}) {
    for (const auto& r : *list) {
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.cpus));
    }
  }
  h = fnv1a_u64(h, static_cast<std::uint64_t>(run.sim_end));
  return h;
}

core::Scenario random_scenario(Rng& rng) {
  core::Scenario sc;
  const auto sites = cluster::all_sites();
  sc.site = sites[rng.below(sites.size())];

  core::ProjectSpec stream = core::ProjectSpec::continual_stream(
      static_cast<int>(8u << rng.below(3)),           // 8 / 16 / 32 cpus
      120 * (1 + static_cast<Seconds>(rng.below(8))),  // 2-16 min @ 1 GHz
      cluster::site_span(sc.site));
  if (rng.bernoulli(0.3)) stream.utilization_cap = 0.9;
  stream.fault_retry.max_retries = static_cast<int>(rng.below(4));
  stream.fault_retry.backoff = 60 * static_cast<Seconds>(rng.below(10));
  stream.fault_retry.checkpoint_interval =
      rng.bernoulli(0.5) ? 10 * kSecondsPerMinute : 0;
  sc.project = stream;

  sc.preempt_interstitial = rng.bernoulli(0.5);
  sc.typed_events = rng.bernoulli(0.75);
  if (rng.bernoulli(0.7)) {
    sc.faults.seed = rng.next();
    sc.faults.crash_mtbf = kSecondsPerWeek *
                           (1 + static_cast<Seconds>(rng.below(4)));
    if (rng.bernoulli(0.5)) {
      sc.faults.node_mtbf = sc.faults.crash_mtbf / 2;
      sc.faults.node_cpus = 64 << rng.below(3);
    }
  }
  return sc;
}

void check_invariants(const core::Scenario& sc, const sched::RunResult& run) {
  // Records consistent: causality per record, ids unique across completed
  // and killed jobs alike (retries and resubmissions always run under a
  // fresh id — a reused one would let a stale finish event fire).
  std::map<workload::JobId, int> seen;
  for (const auto& r : run.records) {
    ASSERT_GE(r.start, r.job.submit);
    ASSERT_EQ(r.end - r.start, r.job.runtime);
    ASSERT_EQ(++seen[r.job.id], 1) << "duplicate id " << r.job.id;
  }
  for (const auto& r : run.killed) {
    ASSERT_GE(r.start, r.job.submit);
    ASSERT_GE(r.end, r.start);
    // A fault event ordered before a same-instant finish event can kill a
    // job exactly at its completion time, so <= rather than <.
    ASSERT_LE(r.end - r.start, r.job.runtime);
    ASSERT_EQ(++seen[r.job.id], 1) << "duplicate id " << r.job.id;
  }

  // Nothing — completed or killed — runs through a planned outage window
  // (unplanned fault outages instead kill what they displace).
  const auto cal = cluster::site_downtime(sc.site);
  for (const auto* list : {&run.records, &run.killed}) {
    for (const auto& r : *list) {
      ASSERT_EQ(cal.down_seconds(r.start, r.end), 0) << "job " << r.job.id;
    }
  }

  // No CPU oversubscription at any instant, counting the occupancy of
  // killed jobs up to their kill time.
  std::vector<sched::JobRecord> all = run.records;
  all.insert(all.end(), run.killed.begin(), run.killed.end());
  const auto steps = metrics::busy_step_function(all, metrics::JobFilter::kAll);
  for (const auto& [t, busy] : steps) {
    ASSERT_LE(busy, run.machine.cpus) << "t=" << t;
  }
}

TEST(FuzzScenarios, RandomKnobsHoldInvariantsAndDeterminism) {
  const bool quick = std::getenv("ISTC_QUICK") != nullptr;
  const int kIterations = quick ? 2 : 4;
  const Rng root(0xF022);
  for (int i = 0; i < kIterations; ++i) {
    Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const core::Scenario sc = random_scenario(rng);
    SCOPED_TRACE(::testing::Message()
                 << "iteration " << i << " site "
                 << cluster::site_name(sc.site) << " cpus/job "
                 << sc.project->cpus_per_job << " preempt "
                 << sc.preempt_interstitial << " typed " << sc.typed_events
                 << " faults " << sc.faults.enabled());
    const auto run = core::run_scenario(sc);
    check_invariants(sc, run);

    // Same knobs, fresh run: bit-identical schedule.
    const auto rerun = core::run_scenario(sc);
    ASSERT_EQ(hash_run(run), hash_run(rerun));
  }
  core::clear_experiment_caches();
}

}  // namespace
}  // namespace istc
