// End-to-end export path: a full co-simulation's records exported as SWF,
// read back through the trace reader, and replayed as a foreign log.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "metrics/export.hpp"
#include "metrics/utilization.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/presets.hpp"
#include "workload/swf.hpp"

namespace istc {
namespace {

using cluster::Site;

TEST(ExportRoundTrip, CoSimRecordsSurviveSwf) {
  const auto& run = core::continual_run(Site::kRoss, 32, 960);
  std::ostringstream out;
  metrics::write_swf_records(out, run.records, "Ross co-simulation");

  std::istringstream in(out.str());
  workload::SwfReadOptions opts;
  opts.rebase_time = false;
  const auto log = workload::read_swf(in, opts);

  ASSERT_EQ(log.size(), run.records.size());
  // Work is conserved through the round trip.
  double work = 0;
  for (const auto& r : run.records) work += r.cpu_seconds();
  EXPECT_NEAR(log.total_cpu_seconds(), work, 1.0);
}

TEST(ExportRoundTrip, ExportedNativeLogReplaysDeterministically) {
  // Export the canonical Blue Pacific *input* log, read it back, and
  // replay both through identical schedulers: byte-for-byte equal results.
  const auto original = workload::site_log(Site::kBluePacific);
  std::ostringstream out;
  workload::write_swf(out, original);
  std::istringstream in(out.str());
  workload::SwfReadOptions opts;
  opts.rebase_time = false;
  const auto reread = workload::read_swf(in, opts);
  ASSERT_EQ(reread.size(), original.size());

  auto replay = [](const workload::JobLog& log) {
    sim::Engine engine;
    sched::PolicySpec policy;  // generic policy: user/group ids round-trip
    sched::BatchScheduler scheduler(
        engine, cluster::make_machine(Site::kBluePacific), policy);
    scheduler.load(log);
    engine.run();
    return scheduler.take_result(cluster::site_span(Site::kBluePacific));
  };
  const auto a = replay(original);
  const auto b = replay(reread);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); i += 211) {
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].end, b.records[i].end);
    EXPECT_EQ(a.records[i].job.id, b.records[i].job.id);
  }
}

}  // namespace
}  // namespace istc
