#include "sched/pipeline.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sched/scheduler.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"

namespace istc::sched {
namespace {

using workload::Job;

cluster::Machine machine_of(int cpus) {
  return cluster::Machine(
      {.name = "m", .site = "", .queue_system = "", .cpus = cpus,
       .clock_ghz = 1.0},
      {});
}

Job mk(workload::JobId id, SimTime submit, int cpus, Seconds run,
       Seconds est = 0) {
  Job j;
  j.id = id;
  j.user = static_cast<workload::UserId>(id % 5);
  j.group = static_cast<workload::GroupId>(id % 2);
  j.submit = submit;
  j.cpus = cpus;
  j.runtime = run;
  j.estimate = est ? est : run;
  return j;
}

void submit_random_burst(BatchScheduler& s, int jobs, std::uint64_t seed) {
  Rng rng(seed);
  SimTime submit = 0;
  for (workload::JobId id = 0; id < static_cast<workload::JobId>(jobs); ++id) {
    submit += static_cast<SimTime>(rng.below(50));
    const auto runtime = 15 + static_cast<Seconds>(rng.below(250));
    s.submit(mk(id, submit, 1 + static_cast<int>(rng.below(10)), runtime,
                runtime * (1 + static_cast<Seconds>(rng.below(3)))));
  }
}

TEST(Pipeline, BuildsFourStagesInFixedOrder) {
  const auto stages = build_pipeline(BackfillMode::kEasy, false);
  ASSERT_EQ(stages.size(), static_cast<std::size_t>(kNumPassStages));
  EXPECT_EQ(stages[0]->kind(), StageKind::kPriority);
  EXPECT_EQ(stages[1]->kind(), StageKind::kDispatch);
  EXPECT_EQ(stages[2]->kind(), StageKind::kBackfill);
  EXPECT_EQ(stages[3]->kind(), StageKind::kGate);
  EXPECT_STREQ(stages[0]->name(), "priority");
  EXPECT_STREQ(stages[1]->name(), "dispatch");
  EXPECT_STREQ(stages[2]->name(), "backfill");
  EXPECT_STREQ(stages[3]->name(), "gate");
}

TEST(Pipeline, EveryStageRunsOncePerPass) {
  sim::Engine eng;
  PolicySpec policy;
  BatchScheduler s(eng, machine_of(16), policy);
  submit_random_burst(s, 30, 21);
  eng.run();
  const auto& stages = s.pipeline();
  ASSERT_EQ(stages.size(), static_cast<std::size_t>(kNumPassStages));
  for (const auto& stage : stages) {
    EXPECT_EQ(stage->stats().runs, s.stats().passes) << stage->name();
  }
  s.take_result(10000);
}

TEST(Pipeline, PriorityOrderReusedBetweenLedgerCharges) {
  sim::Engine eng;
  PolicySpec policy;
  BatchScheduler s(eng, machine_of(12), policy);
  // A deep queue on a small machine: many passes see an unchanged pending
  // set between completions (charges), so the sorted order must be reused.
  submit_random_burst(s, 60, 33);
  eng.run();
  const auto& st = s.stats();
  EXPECT_GT(st.priority_reuses, 0u);
  EXPECT_GT(st.priority_recomputes, 0u);
  // Every pass with a non-empty queue either recomputed or reused.
  EXPECT_LE(st.priority_recomputes + st.priority_reuses, st.passes);
  s.take_result(10000);
}

TEST(Pipeline, StageTimersLandInTraceSummaryWhenCounting) {
  sim::Engine eng;
  PolicySpec policy;
  BatchScheduler s(eng, machine_of(16), policy);
  trace::Tracer tracer(trace::TraceMode::kCountersOnly);
  s.set_tracer(&tracer);
  submit_random_burst(s, 30, 55);
  eng.run();
  const auto& sum = tracer.summary();
  EXPECT_GT(sum.sched_passes, 0u);
  for (int i = 0; i < trace::TraceSummary::kNumStages; ++i) {
    EXPECT_EQ(sum.stage_runs[i], sum.sched_passes) << "stage " << i;
  }
  // The priority cache counters mirror the scheduler's own stats.
  EXPECT_EQ(sum.priority_recomputes, s.stats().priority_recomputes);
  EXPECT_EQ(sum.priority_reuses, s.stats().priority_reuses);
  s.take_result(10000);
}

TEST(Pipeline, UntracedRunsRecordNoStageTime) {
  // ScopedPassTimer's contract extends to stages: without a counting
  // tracer the clock is never read, so only run counts move.
  sim::Engine eng;
  PolicySpec policy;
  BatchScheduler s(eng, machine_of(16), policy);
  submit_random_burst(s, 20, 77);
  eng.run();
  for (const auto& stage : s.pipeline()) {
    EXPECT_GT(stage->stats().runs, 0u) << stage->name();
    EXPECT_EQ(stage->stats().us_total, 0u) << stage->name();
    EXPECT_EQ(stage->stats().us_max, 0u) << stage->name();
  }
  s.take_result(10000);
}

TEST(Pipeline, SubmissionInvalidatesCachedOrder) {
  // A newly submitted job must enter the next pass's sort: two equal jobs
  // from the same principal start in submit order even though the second
  // arrives after the order was first established.
  sim::Engine eng;
  PolicySpec policy;
  BatchScheduler s(eng, machine_of(4), policy);
  s.submit(mk(0, 0, 4, 100));   // occupies the machine
  s.submit(mk(1, 10, 4, 50));   // queues; order cached with just job 1
  s.submit(mk(2, 20, 4, 50));   // queues behind it after the cache formed
  eng.run();
  std::map<workload::JobId, SimTime> starts;
  for (const auto& r : s.take_result(1000).records) {
    starts[r.job.id] = r.start;
  }
  EXPECT_EQ(starts.at(1), 100);
  EXPECT_EQ(starts.at(2), 150);
}

}  // namespace
}  // namespace istc::sched
