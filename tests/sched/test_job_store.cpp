#include "sched/job_store.hpp"

#include <gtest/gtest.h>

#include "workload/job.hpp"

namespace istc::sched {
namespace {

workload::Job make_job(workload::JobId id, int cpus = 4) {
  workload::Job j;
  j.id = id;
  j.cpus = cpus;
  j.runtime = 100;
  j.estimate = 200;
  return j;
}

TEST(JobStoreFork, AcquireFillsHotColumnsFromTheJob) {
  JobStore store;
  const std::uint32_t slot = store.acquire(make_job(7, 16));
  EXPECT_EQ(store.state(slot), SlotState::kPending);
  EXPECT_EQ(store.id(slot), 7u);
  EXPECT_EQ(store.cpus(slot), 16);
  EXPECT_FALSE(store.interstitial(slot));
  EXPECT_EQ(store.job(slot).runtime, 100);
  EXPECT_EQ(store.live(), 1u);
  EXPECT_EQ(store.slots(), 1u);
}

TEST(JobStoreFork, LifecycleRunsPendingRunningFree) {
  JobStore store;
  const std::uint32_t slot = store.acquire(make_job(1));
  store.mark_running(slot, 50, 250);
  EXPECT_EQ(store.state(slot), SlotState::kRunning);
  EXPECT_EQ(store.start(slot), 50);
  EXPECT_EQ(store.est_end(slot), 250);
  store.release(slot);
  EXPECT_EQ(store.state(slot), SlotState::kFree);
  EXPECT_EQ(store.live(), 0u);
}

TEST(JobStoreFork, ZombieHoldsTheSlotUntilReleased) {
  JobStore store;
  const std::uint32_t slot = store.acquire(make_job(1));
  store.mark_running(slot, 0, 100);
  store.mark_zombie(slot);
  EXPECT_EQ(store.state(slot), SlotState::kZombie);
  EXPECT_EQ(store.zombies(), 1u);
  EXPECT_EQ(store.live(), 1u);
  // A zombie's slot must not be reissued: the next acquire grows the store
  // instead of recycling it.
  const std::uint32_t other = store.acquire(make_job(2));
  EXPECT_NE(other, slot);
  // The stale finish event firing releases it for real.
  store.release(slot);
  EXPECT_EQ(store.zombies(), 0u);
  const std::uint32_t recycled = store.acquire(make_job(3));
  EXPECT_EQ(recycled, slot);
}

TEST(JobStoreFork, FreeListRecyclesLifoDeterministically) {
  JobStore store;
  const std::uint32_t a = store.acquire(make_job(1));
  const std::uint32_t b = store.acquire(make_job(2));
  const std::uint32_t c = store.acquire(make_job(3));
  EXPECT_EQ(store.slots(), 3u);
  store.release(a);
  store.release(c);
  // LIFO: the most recently freed slot is reissued first.
  EXPECT_EQ(store.acquire(make_job(4)), c);
  EXPECT_EQ(store.acquire(make_job(5)), a);
  EXPECT_EQ(store.slots(), 3u);  // sized to the high-water mark
  store.release(b);
  EXPECT_EQ(store.live(), 2u);
}

TEST(JobStoreFork, CopyIsAnIndependentSnapshot) {
  JobStore store;
  const std::uint32_t slot = store.acquire(make_job(1));
  store.mark_running(slot, 10, 110);
  JobStore copy = store;  // the fork path copies the whole store by value
  store.release(slot);
  EXPECT_EQ(copy.state(slot), SlotState::kRunning);
  EXPECT_EQ(copy.start(slot), 10);
  EXPECT_EQ(copy.live(), 1u);
  // Both sides recycle independently from here on.
  const std::uint32_t in_store = store.acquire(make_job(2));
  EXPECT_EQ(in_store, slot);
  const std::uint32_t in_copy = copy.acquire(make_job(2));
  EXPECT_EQ(in_copy, 1u);
}

}  // namespace
}  // namespace istc::sched
