#include "sched/timeofday.hpp"

#include <gtest/gtest.h>

namespace istc::sched {
namespace {

workload::Job wide_job(int cpus, Seconds est = 3600) {
  workload::Job j;
  j.cpus = cpus;
  j.runtime = est;
  j.estimate = est;
  return j;
}

TimeOfDayRule night_rule() {
  return TimeOfDayRule{.min_cpus_gated = 128,
                       .min_estimate_gated = hours(12),
                       .night_start_hour = 18,
                       .night_end_hour = 8,
                       .weekends_open = true};
}

TEST(TimeOfDay, SmallShortJobsNeverGated) {
  const auto r = night_rule();
  EXPECT_FALSE(r.gates(wide_job(127, hours(11))));
  EXPECT_TRUE(r.allowed(wide_job(1), hours(12)));  // midday
}

TEST(TimeOfDay, WideJobsGated) {
  const auto r = night_rule();
  EXPECT_TRUE(r.gates(wide_job(128)));
  EXPECT_TRUE(r.gates(wide_job(512)));
}

TEST(TimeOfDay, LongJobsGated) {
  const auto r = night_rule();
  EXPECT_TRUE(r.gates(wide_job(1, hours(12))));
}

TEST(TimeOfDay, WrappingNightWindow) {
  const auto r = night_rule();
  // Monday (day 0).
  EXPECT_TRUE(r.window_open(hours(19)));   // 19:00
  EXPECT_TRUE(r.window_open(hours(2)));    // 02:00
  EXPECT_TRUE(r.window_open(hours(7)));    // 07:xx
  EXPECT_FALSE(r.window_open(hours(8)));   // 08:00 closes
  EXPECT_FALSE(r.window_open(hours(12)));  // midday
  EXPECT_FALSE(r.window_open(hours(17)));  // 17:xx
  EXPECT_TRUE(r.window_open(hours(18)));   // 18:00 opens
}

TEST(TimeOfDay, NonWrappingWindow) {
  TimeOfDayRule r{.min_cpus_gated = 1,
                  .min_estimate_gated = kTimeInfinity,
                  .night_start_hour = 9,
                  .night_end_hour = 17,
                  .weekends_open = false};
  EXPECT_FALSE(r.window_open(hours(8)));
  EXPECT_TRUE(r.window_open(hours(9)));
  EXPECT_TRUE(r.window_open(hours(16)));
  EXPECT_FALSE(r.window_open(hours(17)));
}

TEST(TimeOfDay, WeekendsOpenAllDay) {
  const auto r = night_rule();
  // Saturday midday (day 5).
  EXPECT_TRUE(r.window_open(days(5) + hours(12)));
  // The following Monday midday is closed again.
  EXPECT_FALSE(r.window_open(days(7) + hours(12)));
}

TEST(TimeOfDay, EarliestAllowedIdentityWhenOpen) {
  const auto r = night_rule();
  const auto j = wide_job(256);
  EXPECT_EQ(r.earliest_allowed(j, hours(20)), hours(20));
  // Ungated job: always now.
  EXPECT_EQ(r.earliest_allowed(wide_job(1), hours(12)), hours(12));
}

TEST(TimeOfDay, EarliestAllowedJumpsToNightfall) {
  const auto r = night_rule();
  const auto j = wide_job(256);
  // Monday 09:30 -> Monday 18:00.
  EXPECT_EQ(r.earliest_allowed(j, hours(9) + minutes(30)), hours(18));
  // Exactly at the close (08:00) -> 18:00 same day.
  EXPECT_EQ(r.earliest_allowed(j, hours(8)), hours(18));
}

TEST(TimeOfDay, EarliestAllowedRoundsUpToWholeHour) {
  const auto r = night_rule();
  const auto j = wide_job(256);
  const SimTime t = hours(17) + minutes(59) + 59;
  EXPECT_EQ(r.earliest_allowed(j, t), hours(18));
}

TEST(TimeOfDay, FridayMiddayJumpsToEvening) {
  const auto r = night_rule();
  const auto j = wide_job(256);
  const SimTime friday_noon = days(4) + hours(12);
  EXPECT_EQ(r.earliest_allowed(j, friday_noon), days(4) + hours(18));
}

// Property: earliest_allowed always lands in an open window, at or after t.
class TodSweep : public ::testing::TestWithParam<SimTime> {};

TEST_P(TodSweep, EarliestAllowedIsOpenAndMonotone) {
  const auto r = night_rule();
  const auto j = wide_job(512, hours(20));
  const SimTime t = GetParam();
  const SimTime e = r.earliest_allowed(j, t);
  EXPECT_GE(e, t);
  EXPECT_TRUE(r.allowed(j, e));
}

INSTANTIATE_TEST_SUITE_P(
    Times, TodSweep,
    ::testing::Values(0, hours(3), hours(8), hours(12), hours(17) + 1,
                      hours(18), days(4) + hours(16), days(5) + hours(12),
                      days(6) + hours(23), days(13) + hours(9)));

}  // namespace
}  // namespace istc::sched
