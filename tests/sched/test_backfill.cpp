// Randomized property tests of the backfill scheduler: for fuzzed job
// streams under both backfill modes, the produced schedule must satisfy the
// physical and policy invariants regardless of seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cluster/downtime.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace istc::sched {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  BackfillMode mode;
};

class BackfillFuzz : public ::testing::TestWithParam<FuzzCase> {};

constexpr int kCpus = 48;

std::vector<workload::Job> fuzz_jobs(Rng& rng, std::size_t n) {
  std::vector<workload::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    workload::Job j;
    j.id = static_cast<workload::JobId>(i);
    j.user = static_cast<workload::UserId>(rng.below(6));
    j.group = static_cast<workload::GroupId>(j.user % 3);
    j.submit = rng.range(0, 20000);
    j.cpus = static_cast<int>(rng.range(1, kCpus));
    j.runtime = rng.range(1, 800);
    j.estimate = j.runtime + rng.range(0, 2000);
    jobs.push_back(j);
  }
  return jobs;
}

TEST_P(BackfillFuzz, ScheduleInvariants) {
  const auto [seed, mode] = GetParam();
  Rng rng(seed);
  cluster::DowntimeCalendar cal({{8000, 9000}, {25000, 26000}});
  sim::Engine eng;
  PolicySpec policy;
  policy.backfill = mode;
  policy.fairshare.mode = FairShareMode::kUserAndGroup;
  BatchScheduler sched(
      eng, cluster::Machine({.name = "f", .site = "", .queue_system = "",
                             .cpus = kCpus, .clock_ghz = 1.0}, cal),
      policy);

  const auto jobs = fuzz_jobs(rng, 300);
  for (const auto& j : jobs) sched.submit(j);
  eng.run();
  const RunResult result = sched.take_result(30000);

  // 1. Everything completes exactly once.
  ASSERT_EQ(result.records.size(), jobs.size());
  std::map<workload::JobId, const JobRecord*> recs;
  for (const auto& r : result.records) {
    EXPECT_TRUE(recs.emplace(r.job.id, &r).second);
  }

  // 2. Causality and duration.
  for (const auto& r : result.records) {
    EXPECT_GE(r.start, r.job.submit);
    EXPECT_EQ(r.end - r.start, r.job.runtime);
  }

  // 3. No instant oversubscribes the machine.
  std::map<SimTime, int> delta;
  for (const auto& r : result.records) {
    delta[r.start] += r.job.cpus;
    delta[r.end] -= r.job.cpus;
  }
  int busy = 0;
  for (const auto& [t, d] : delta) {
    busy += d;
    EXPECT_GE(busy, 0);
    EXPECT_LE(busy, kCpus) << "oversubscribed at t=" << t;
  }

  // 4. No job's *estimate window* crosses a downtime window, hence no job
  //    actually runs during one (estimate >= runtime).
  for (const auto& r : result.records) {
    EXPECT_TRUE(cal.can_run(r.start, r.job.estimate))
        << "job " << r.job.id << " crosses downtime";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BackfillFuzz,
    ::testing::Values(FuzzCase{1, BackfillMode::kEasy},
                      FuzzCase{2, BackfillMode::kEasy},
                      FuzzCase{3, BackfillMode::kEasy},
                      FuzzCase{4, BackfillMode::kConservative},
                      FuzzCase{5, BackfillMode::kConservative},
                      FuzzCase{6, BackfillMode::kConservative}),
    [](const ::testing::TestParamInfo<FuzzCase>& param_info) {
      return std::string(param_info.param.mode == BackfillMode::kEasy ? "easy"
                                                                : "cons") +
             std::to_string(param_info.param.seed);
    });

// kNone: strict priority order — nothing overtakes a blocked job.
TEST(NoBackfill, JuniorNeverOvertakesBlockedHead) {
  sim::Engine eng;
  PolicySpec policy;
  policy.backfill = BackfillMode::kNone;
  policy.fairshare.age_weight_per_hour = 0.0;
  policy.fairshare.size_weight = 0.0;
  BatchScheduler sched(
      eng, cluster::Machine({.name = "n", .site = "", .queue_system = "",
                             .cpus = 10, .clock_ghz = 1.0}),
      policy);
  workload::Job runner;
  runner.id = 0;
  runner.submit = 0;
  runner.cpus = 6;
  runner.runtime = 100;
  runner.estimate = 100;
  sched.submit(runner);
  workload::Job blocked;  // head, needs more than the 4 free
  blocked.id = 1;
  blocked.submit = 1;
  blocked.cpus = 8;
  blocked.runtime = 10;
  blocked.estimate = 10;
  sched.submit(blocked);
  workload::Job tiny;  // would fit beside the runner, must NOT start
  tiny.id = 2;
  tiny.submit = 2;
  tiny.cpus = 1;
  tiny.runtime = 5;
  tiny.estimate = 5;
  sched.submit(tiny);
  eng.run();
  const auto result = sched.take_result(1000);
  SimTime tiny_start = -1, blocked_start = -1;
  for (const auto& r : result.records) {
    if (r.job.id == 1) blocked_start = r.start;
    if (r.job.id == 2) tiny_start = r.start;
  }
  EXPECT_EQ(blocked_start, 100);
  EXPECT_GE(tiny_start, blocked_start);  // no overtaking
}

TEST(NoBackfill, LowerUtilizationThanEasyOnFuzzedStream) {
  // The ablation claim in one assertion: dropping backfill wastes CPUs.
  auto run_mode = [](BackfillMode mode) {
    Rng rng(11);
    sim::Engine eng;
    PolicySpec policy;
    policy.backfill = mode;
    BatchScheduler sched(
        eng, cluster::Machine({.name = "m", .site = "", .queue_system = "",
                               .cpus = kCpus, .clock_ghz = 1.0}),
        policy);
    for (const auto& j : fuzz_jobs(rng, 400)) sched.submit(j);
    eng.run();
    const auto result = sched.take_result(30000);
    return result.sim_end;  // drain time: lower is better packing
  };
  EXPECT_LT(run_mode(BackfillMode::kEasy), run_mode(BackfillMode::kNone));
}

// Work conservation: the schedule's busy integral equals the log's work.
TEST(BackfillConservation, BusyAreaEqualsWork) {
  Rng rng(42);
  sim::Engine eng;
  PolicySpec policy;
  BatchScheduler sched(
      eng, cluster::Machine({.name = "c", .site = "", .queue_system = "",
                             .cpus = kCpus, .clock_ghz = 1.0}),
      policy);
  const auto jobs = fuzz_jobs(rng, 200);
  double work = 0;
  for (const auto& j : jobs) {
    sched.submit(j);
    work += j.cpu_seconds();
  }
  eng.run();
  const auto result = sched.take_result(30000);
  double busy = 0;
  for (const auto& r : result.records) {
    busy += static_cast<double>(r.job.cpus) *
            static_cast<double>(r.end - r.start);
  }
  EXPECT_DOUBLE_EQ(busy, work);
}

// Backfill must actually help: a stream with one huge job and many small
// ones finishes the small ones while the huge job drains, in both modes.
TEST(BackfillUsefulness, SmallJobsOvertakeDrainingGiant) {
  for (auto mode : {BackfillMode::kEasy, BackfillMode::kConservative}) {
    sim::Engine eng;
    PolicySpec policy;
    policy.backfill = mode;
    BatchScheduler sched(
        eng, cluster::Machine({.name = "b", .site = "", .queue_system = "",
                               .cpus = 10, .clock_ghz = 1.0}),
        policy);
    workload::Job running;
    running.id = 0;
    running.submit = 0;
    running.cpus = 6;
    running.runtime = 1000;
    running.estimate = 1000;
    sched.submit(running);
    workload::Job giant;
    giant.id = 1;
    giant.user = 1;
    giant.submit = 10;
    giant.cpus = 10;
    giant.runtime = 100;
    giant.estimate = 100;
    sched.submit(giant);  // blocked until t=1000
    // Small short jobs that fit beside the runner and end before t=1000.
    for (workload::JobId i = 2; i < 12; ++i) {
      workload::Job s;
      s.id = i;
      s.user = 2;
      s.submit = 20;
      s.cpus = 2;
      s.runtime = 50;
      s.estimate = 50;
      sched.submit(s);
    }
    eng.run();
    const auto result = sched.take_result(5000);
    int backfilled_before_giant = 0;
    for (const auto& r : result.records) {
      if (r.job.id >= 2 && r.start < 1000) ++backfilled_before_giant;
    }
    EXPECT_GT(backfilled_before_giant, 5)
        << "mode=" << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace istc::sched
