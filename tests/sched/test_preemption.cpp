// The preemptible-interstitial extension: natives evict scavenger jobs
// instead of waiting on them (beyond the paper, whose jobs never preempt).

#include <gtest/gtest.h>

#include <map>

#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace istc::sched {
namespace {

using workload::Job;
using workload::JobClass;

cluster::Machine machine_of(int cpus) {
  return cluster::Machine({.name = "p", .site = "", .queue_system = "",
                           .cpus = cpus, .clock_ghz = 1.0});
}

PolicySpec preempting_policy() {
  PolicySpec p;
  p.preempt_interstitial = true;
  p.fairshare.age_weight_per_hour = 0.0;
  p.fairshare.size_weight = 0.0;
  return p;
}

Job native_job(workload::JobId id, SimTime submit, int cpus, Seconds run) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.cpus = cpus;
  j.runtime = run;
  j.estimate = run;
  return j;
}

Job interstitial_job(workload::JobId id, int cpus, Seconds run) {
  Job j = native_job(id, 0, cpus, run);
  j.klass = JobClass::kInterstitial;
  return j;
}

// Fill the machine with interstitial jobs at t=0, then watch a native
// arrival evict exactly enough of them.
struct Harness {
  sim::Engine eng;
  BatchScheduler sched;
  explicit Harness(PolicySpec policy, int cpus = 20)
      : sched(eng, machine_of(cpus), std::move(policy)) {}
};

TEST(Preemption, NativeStartsImmediatelyByEvicting) {
  Harness s(preempting_policy());
  s.eng.schedule(0, [&] {
    for (workload::JobId i = 100; i < 105; ++i) {
      ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(i, 4, 500)));
    }
  });
  s.sched.submit(native_job(0, 10, 12, 100));
  s.eng.run();
  const auto r = s.sched.take_result(1000);
  // The native started at its submit time, not at the interstitial drain.
  SimTime native_start = -1;
  for (const auto& rec : r.records) {
    if (!rec.interstitial()) native_start = rec.start;
  }
  EXPECT_EQ(native_start, 10);
  // Exactly 3 victims (12 CPUs needed, 4 per victim; 0 free).
  EXPECT_EQ(r.killed.size(), 3u);
  EXPECT_EQ(s.sched.stats().interstitial_kills, 3u);
  // Survivors completed normally.
  EXPECT_EQ(r.interstitial_count(), 2u);
}

TEST(Preemption, KilledRecordsCarryPartialExecution) {
  Harness s(preempting_policy());
  s.eng.schedule(0, [&] {
    ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(100, 20, 500)));
  });
  s.sched.submit(native_job(0, 42, 20, 100));
  s.eng.run();
  const auto r = s.sched.take_result(1000);
  ASSERT_EQ(r.killed.size(), 1u);
  EXPECT_EQ(r.killed[0].start, 0);
  EXPECT_EQ(r.killed[0].end, 42);  // killed at the native's arrival
  EXPECT_DOUBLE_EQ(r.wasted_cpu_seconds(), 20.0 * 42.0);
}

TEST(Preemption, DisabledPolicyNeverKills) {
  PolicySpec p = preempting_policy();
  p.preempt_interstitial = false;
  Harness s(std::move(p));
  s.eng.schedule(0, [&] {
    ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(100, 20, 500)));
  });
  s.sched.submit(native_job(0, 10, 20, 100));
  s.eng.run();
  const auto r = s.sched.take_result(1000);
  EXPECT_TRUE(r.killed.empty());
  SimTime native_start = -1;
  for (const auto& rec : r.records) {
    if (!rec.interstitial()) native_start = rec.start;
  }
  EXPECT_EQ(native_start, 500);  // had to wait out the scavenger
}

TEST(Preemption, YoungestVictimsDieFirst) {
  Harness s(preempting_policy());
  s.eng.schedule(0, [&] {
    ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(100, 8, 500)));
  });
  s.eng.schedule(50, [&] {
    ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(101, 8, 500)));
  });
  // Native needs 12: one victim (8) + 4 free suffices -> kill only #101.
  s.sched.submit(native_job(0, 100, 12, 50));
  s.eng.run();
  const auto r = s.sched.take_result(2000);
  ASSERT_EQ(r.killed.size(), 1u);
  EXPECT_EQ(r.killed[0].job.id, 101u);  // the younger one
}

TEST(Preemption, NativesNeverKillNatives) {
  Harness s(preempting_policy());
  s.sched.submit(native_job(0, 0, 20, 300));
  s.sched.submit(native_job(1, 10, 20, 50));
  s.eng.run();
  const auto r = s.sched.take_result(1000);
  EXPECT_TRUE(r.killed.empty());
  // Job 1 waited for job 0's completion like any batch job.
  for (const auto& rec : r.records) {
    if (rec.job.id == 1) {
      EXPECT_EQ(rec.start, 300);
    }
  }
}

TEST(Preemption, NoSpuriousKillsWhenEvictionCannotHelp) {
  // Native needs 20; interstitial holds 8 and a native holds 12: evicting
  // all scavengers still leaves only 8 free -> nothing should die yet.
  Harness s(preempting_policy());
  s.sched.submit(native_job(0, 0, 12, 300));
  s.eng.schedule(1, [&] {
    ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(100, 8, 100)));
  });
  s.sched.submit(native_job(1, 10, 20, 50));
  s.eng.run(200);
  EXPECT_EQ(s.sched.stats().interstitial_kills, 0u);
  s.eng.run();
  s.sched.take_result(2000);
}

TEST(Preemption, StaleCompletionEventIsHarmless) {
  // After a kill, the victim's completion event still fires at its
  // original end time; the scheduler must swallow it exactly once.
  Harness s(preempting_policy());
  s.eng.schedule(0, [&] {
    ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(100, 20, 500)));
  });
  s.sched.submit(native_job(0, 10, 20, 100));
  s.eng.run();  // drains past t=500 without aborting
  const auto r = s.sched.take_result(1000);
  EXPECT_EQ(r.killed.size(), 1u);
  EXPECT_EQ(r.interstitial_count(), 0u);
}

TEST(Preemption, MachineNeverOversubscribedAroundKills) {
  Harness s(preempting_policy(), 16);
  // A rolling scavenger load plus native arrivals that evict repeatedly.
  s.eng.schedule(0, [&] {
    for (workload::JobId i = 100; i < 104; ++i) {
      ASSERT_TRUE(s.sched.try_start_immediately(interstitial_job(i, 4, 300)));
    }
  });
  for (workload::JobId i = 0; i < 5; ++i) {
    s.sched.submit(native_job(i, 20 + i * 40, 8, 30));
  }
  s.eng.run();
  const auto r = s.sched.take_result(2000);
  // Rebuild occupancy from completed + killed records.
  std::map<SimTime, int> delta;
  for (const auto& rec : r.records) {
    delta[rec.start] += rec.job.cpus;
    delta[rec.end] -= rec.job.cpus;
  }
  for (const auto& rec : r.killed) {
    delta[rec.start] += rec.job.cpus;
    delta[rec.end] -= rec.job.cpus;
  }
  int busy = 0;
  for (const auto& [t, d] : delta) {
    busy += d;
    ASSERT_LE(busy, 16) << "oversubscribed at " << t;
    ASSERT_GE(busy, 0);
  }
}

}  // namespace
}  // namespace istc::sched
