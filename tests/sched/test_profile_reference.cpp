// Differential test: ResourceProfile against a brute-force second-by-second
// reference implementation, over randomized operation sequences.

#include <gtest/gtest.h>

#include <vector>

#include "sched/resource_profile.hpp"
#include "util/rng.hpp"

namespace istc::sched {
namespace {

/// Dense array reference: free[t] for t in [0, horizon).
class ReferenceProfile {
 public:
  ReferenceProfile(int capacity, SimTime horizon)
      : capacity_(capacity),
        free_(static_cast<std::size_t>(horizon), capacity) {}

  int free_at(SimTime t) const {
    return t < horizon() ? free_[static_cast<std::size_t>(t)] : capacity_;
  }

  int min_free(SimTime start, SimTime end) const {
    int lo = capacity_;
    for (SimTime t = start; t < end; ++t) lo = std::min(lo, free_at(t));
    return lo;
  }

  void reserve(SimTime start, SimTime end, int cpus) {
    // The reference must contain every reservation entirely, or the two
    // implementations silently diverge past the horizon.
    ASSERT_LE(end, horizon());
    for (SimTime t = start; t < end; ++t) {
      free_[static_cast<std::size_t>(t)] -= cpus;
    }
  }

  void release(SimTime start, SimTime end, int cpus) {
    ASSERT_LE(end, horizon());
    for (SimTime t = start; t < end; ++t) {
      free_[static_cast<std::size_t>(t)] += cpus;
    }
  }

  SimTime earliest_fit(int cpus, Seconds dur, SimTime not_before) const {
    for (SimTime t = not_before;; ++t) {
      if (min_free(t, t + dur) >= cpus) return t;
    }
  }

  SimTime horizon() const { return static_cast<SimTime>(free_.size()); }

 private:
  int capacity_;
  std::vector<int> free_;
};

class ProfileDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileDifferential, MatchesBruteForce) {
  constexpr int kCapacity = 24;
  constexpr SimTime kHorizon = 600;  // query/insertion window
  ResourceProfile fast(0, kCapacity);
  // Congestion can push fits far past the insertion window; size the
  // dense reference generously so every reservation fits inside it.
  ReferenceProfile slow(kCapacity, kHorizon * 40);
  Rng rng(GetParam());

  struct Reservation {
    SimTime start, end;
    int cpus;
  };
  std::vector<Reservation> live;

  for (int op = 0; op < 400; ++op) {
    const auto choice = rng.below(10);
    if (choice < 4) {
      // Reserve at a feasible location.
      const int cpus = static_cast<int>(rng.range(1, kCapacity));
      const Seconds dur = rng.range(1, 60);
      const SimTime after = rng.range(0, kHorizon);
      const SimTime t = fast.earliest_fit(cpus, dur, after);
      ASSERT_EQ(t, slow.earliest_fit(cpus, dur, after))
          << "op " << op << " cpus=" << cpus << " dur=" << dur
          << " after=" << after;
      fast.reserve(t, t + dur, cpus);
      slow.reserve(t, t + dur, cpus);
      live.push_back({t, t + dur, cpus});
    } else if (choice < 6 && !live.empty()) {
      // Release a random live reservation.
      const auto idx = rng.below(live.size());
      const auto r = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      fast.release(r.start, r.end, r.cpus);
      slow.release(r.start, r.end, r.cpus);
    } else if (choice < 8) {
      const SimTime t = rng.range(0, kHorizon);
      ASSERT_EQ(fast.free_at(t), slow.free_at(t)) << "free_at(" << t << ")";
    } else {
      const SimTime a = rng.range(0, kHorizon);
      const SimTime b = a + rng.range(1, 80);
      ASSERT_EQ(fast.min_free(a, b), slow.min_free(a, b))
          << "min_free(" << a << "," << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace istc::sched
