#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/rng.hpp"

namespace istc::sched {
namespace {

using workload::Job;
using workload::JobClass;

cluster::Machine machine_of(int cpus, cluster::DowntimeCalendar cal = {}) {
  return cluster::Machine(
      {.name = "m", .site = "", .queue_system = "", .cpus = cpus,
       .clock_ghz = 1.0},
      std::move(cal));
}

PolicySpec fcfs_policy(BackfillMode mode = BackfillMode::kEasy) {
  PolicySpec p;
  p.backfill = mode;
  p.fairshare.age_weight_per_hour = 0.0;
  return p;
}

Job mk(workload::JobId id, SimTime submit, int cpus, Seconds run,
       Seconds est = 0) {
  Job j;
  j.id = id;
  j.user = static_cast<workload::UserId>(id % 7);
  j.group = static_cast<workload::GroupId>(id % 3);
  j.submit = submit;
  j.cpus = cpus;
  j.runtime = run;
  j.estimate = est ? est : run;
  return j;
}

std::map<workload::JobId, JobRecord> by_id(const RunResult& r) {
  std::map<workload::JobId, JobRecord> m;
  for (const auto& rec : r.records) m[rec.job.id] = rec;
  return m;
}

TEST(Scheduler, SingleJobRunsAtSubmit) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  s.submit(mk(0, 100, 4, 50));
  eng.run();
  const auto recs = by_id(s.take_result(1000));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs.at(0).start, 100);
  EXPECT_EQ(recs.at(0).end, 150);
  EXPECT_EQ(recs.at(0).wait(), 0);
  EXPECT_DOUBLE_EQ(recs.at(0).expansion_factor(), 1.0);
}

TEST(Scheduler, QueuedJobWaitsForSpace) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  s.submit(mk(0, 0, 10, 100));
  s.submit(mk(1, 10, 10, 50));
  eng.run();
  const auto recs = by_id(s.take_result(1000));
  EXPECT_EQ(recs.at(0).start, 0);
  EXPECT_EQ(recs.at(1).start, 100);  // must wait for job 0's completion
}

TEST(Scheduler, ParallelJobsSharemachine) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  s.submit(mk(0, 0, 4, 100));
  s.submit(mk(1, 0, 6, 100));
  eng.run();
  const auto recs = by_id(s.take_result(1000));
  EXPECT_EQ(recs.at(0).start, 0);
  EXPECT_EQ(recs.at(1).start, 0);
}

TEST(Scheduler, EasyBackfillUsesEstimateShadow) {
  // cap 10: J0 runs [0,100) with 6 cpus (est 100). J1 (8 cpus) blocked,
  // shadow at t=100. J2 (4 cpus, est 50) fits now and ends before shadow:
  // backfills at t=0. J3 (4 cpus, est 200) would cross the shadow and
  // cannot use extra (only 10-8=2 at shadow): waits.
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy(BackfillMode::kEasy));
  s.submit(mk(0, 0, 6, 100));
  s.submit(mk(1, 1, 8, 100));
  s.submit(mk(2, 2, 4, 50));
  s.submit(mk(3, 3, 4, 200));
  eng.run();
  const auto recs = by_id(s.take_result(1000));
  EXPECT_EQ(recs.at(0).start, 0);
  EXPECT_EQ(recs.at(2).start, 2);    // backfilled on arrival
  EXPECT_EQ(recs.at(1).start, 100);  // reservation honored
  EXPECT_GE(recs.at(3).start, 100);  // could not jump the reservation
}

TEST(Scheduler, BackfillCandidateMayUseShadowExtra) {
  // cap 10: J0 6cpus est 100; J1 needs 8 -> shadow 100, extra at shadow =
  // 10-8 = 2. J2 (2 cpus, est 500) exceeds shadow in time but fits in the
  // extra capacity: backfills immediately.
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy(BackfillMode::kEasy));
  s.submit(mk(0, 0, 6, 100));
  s.submit(mk(1, 1, 8, 100));
  s.submit(mk(2, 2, 2, 500));
  eng.run();
  const auto recs = by_id(s.take_result(2000));
  EXPECT_EQ(recs.at(2).start, 2);
  EXPECT_EQ(recs.at(1).start, 100);
}

TEST(Scheduler, EarlyCompletionPullsWorkForward) {
  // J0 estimates 1000 but actually runs 100; J1 blocked on J0's cpus must
  // start at the *actual* completion, not the estimate.
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  s.submit(mk(0, 0, 10, 100, 1000));
  s.submit(mk(1, 5, 10, 10, 100));
  eng.run();
  const auto recs = by_id(s.take_result(2000));
  EXPECT_EQ(recs.at(1).start, 100);
}

TEST(Scheduler, ConservativeBlocksJuniorJumping) {
  // cap 10. J0 8cpus est100 runs. J1 4cpus est100 blocked (reserve @100).
  // J2 2cpus est100: EASY starts it now (fits beside J0 and can't delay
  // J1's 4-cpu reservation: 10-4=6 extra at shadow).  Under conservative
  // it also fits (profile room).  Distinguish with a third waiter J3 whose
  // reservation a backfiller could delay under EASY but not conservative:
  // J2' = 2cpus est 300 long.
  //   EASY: J2' starts at 0 (ends 300; shadow of J1 is 100, extra 10-4=6,
  //         J2' uses 2 <= 6: allowed).
  //   Conservative: J3 (6 cpus, est 150) reserves [100,250) leaving 0
  //         spare with J1; J2' (2 cpus) would overlap that window: denied.
  sim::Engine e1, e2;
  BatchScheduler easy(e1, machine_of(10), fcfs_policy(BackfillMode::kEasy));
  BatchScheduler cons(e2, machine_of(10),
                      fcfs_policy(BackfillMode::kConservative));
  for (auto* s : {&easy, &cons}) {
    s->submit(mk(0, 0, 8, 100));
    s->submit(mk(1, 1, 4, 100));
    s->submit(mk(2, 2, 6, 150));
    s->submit(mk(3, 3, 2, 300));
  }
  e1.run();
  e2.run();
  const auto re = by_id(easy.take_result(2000));
  const auto rc = by_id(cons.take_result(2000));
  // Under EASY only the head (J1) is protected; J3 backfills at submit.
  EXPECT_EQ(re.at(3).start, 3);
  // Under conservative J2's reservation is also protected; J3 cannot start
  // before it without overlapping (2 cpus <= free during [100,250)?
  // J1@100 uses 4, J2@100 uses 6 -> 0 free): J3 must wait.
  EXPECT_GT(rc.at(3).start, 3);
}

TEST(Scheduler, DowntimeDrainsAndResumes) {
  cluster::DowntimeCalendar cal({{100, 200}});
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10, cal), fcfs_policy());
  // est 60 at t=50 would cross the window start: must wait until 200.
  s.submit(mk(0, 50, 4, 60, 60));
  // short job fits before the window.
  s.submit(mk(1, 50, 4, 50, 50));
  eng.run();
  const auto recs = by_id(s.take_result(1000));
  EXPECT_EQ(recs.at(1).start, 50);
  EXPECT_EQ(recs.at(0).start, 200);
}

TEST(Scheduler, DowntimeWithIdleMachineWakesAfterWindow) {
  cluster::DowntimeCalendar cal({{100, 200}});
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10, cal), fcfs_policy());
  s.submit(mk(0, 150, 1, 10, 10));  // submitted mid-window
  eng.run();
  const auto recs = by_id(s.take_result(1000));
  EXPECT_EQ(recs.at(0).start, 200);
}

TEST(Scheduler, TimeOfDayGatesWideJobs) {
  PolicySpec p = fcfs_policy();
  p.time_of_day = TimeOfDayRule{.min_cpus_gated = 8,
                                .min_estimate_gated = kTimeInfinity,
                                .night_start_hour = 18,
                                .night_end_hour = 8,
                                .weekends_open = true};
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(16), p);
  s.submit(mk(0, hours(9), 8, 100));  // Monday 09:00, gated
  s.submit(mk(1, hours(9), 4, 100));  // narrow, runs now
  eng.run();
  const auto recs = by_id(s.take_result(days(2)));
  EXPECT_EQ(recs.at(1).start, hours(9));
  EXPECT_EQ(recs.at(0).start, hours(18));
}

TEST(Scheduler, FairSharePoachingReordersQueue) {
  // User 1 has heavy usage; their queued job is overtaken by a later
  // submission from a fresh user (dynamic re-prioritization).
  PolicySpec p = fcfs_policy();
  p.fairshare.mode = FairShareMode::kEqualUsers;
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), p);
  // Give user 1 usage history: a completed job.
  Job hist = mk(0, 0, 10, 100);
  hist.user = 1;
  s.submit(hist);
  // Both wait behind hist (full machine); user 1 submits first.
  Job a = mk(1, 10, 10, 50);
  a.user = 1;
  Job b = mk(2, 20, 10, 50);
  b.user = 2;
  s.submit(a);
  s.submit(b);
  eng.run();
  const auto recs = by_id(s.take_result(1000));
  EXPECT_EQ(recs.at(2).start, 100);  // fresh user poaches the front
  EXPECT_EQ(recs.at(1).start, 150);
}

TEST(Scheduler, TryStartImmediatelyRespectsSpace) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  Job i1 = mk(100, 0, 6, 50);
  i1.klass = JobClass::kInterstitial;
  Job i2 = mk(101, 0, 6, 50);
  i2.klass = JobClass::kInterstitial;
  eng.schedule(0, [&] {
    EXPECT_TRUE(s.try_start_immediately(i1));
    EXPECT_FALSE(s.try_start_immediately(i2));  // only 4 left
  });
  eng.run();
  const auto r = s.take_result(1000);
  EXPECT_EQ(r.interstitial_count(), 1u);
}

TEST(Scheduler, TryStartImmediatelyRespectsDowntime) {
  cluster::DowntimeCalendar cal({{40, 50}});
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10, cal), fcfs_policy());
  Job i1 = mk(100, 0, 2, 60);
  i1.klass = JobClass::kInterstitial;
  eng.schedule(0, [&] { EXPECT_FALSE(s.try_start_immediately(i1)); });
  eng.run();
  EXPECT_EQ(s.take_result(100).records.size(), 0u);
}

TEST(Scheduler, RecordsCompleteAndConsistent) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(8), fcfs_policy());
  for (int i = 0; i < 20; ++i) {
    s.submit(mk(static_cast<workload::JobId>(i), i * 3,
                1 + (i % 5), 40 + i, 80 + i));
  }
  eng.run();
  const auto r = s.take_result(1000);
  ASSERT_EQ(r.records.size(), 20u);
  for (const auto& rec : r.records) {
    EXPECT_GE(rec.start, rec.job.submit);
    EXPECT_EQ(rec.end - rec.start, rec.job.runtime);
  }
  EXPECT_EQ(r.native_count(), 20u);
  EXPECT_EQ(r.interstitial_count(), 0u);
}

TEST(Scheduler, LoadSubmitsWholeLog) {
  std::vector<Job> jobs;
  for (int i = 0; i < 15; ++i) {
    jobs.push_back(mk(static_cast<workload::JobId>(i), i * 10, 2, 30));
  }
  workload::JobLog log(std::move(jobs));
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(64), fcfs_policy());
  s.load(log);
  eng.run();
  EXPECT_EQ(s.take_result(1000).records.size(), 15u);
}

TEST(Scheduler, PostPassHookSeesQueueState) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(4), fcfs_policy());
  std::vector<PassContext> contexts;
  s.set_post_pass_hook(
      [&](const PassContext& c) { contexts.push_back(c); });
  s.submit(mk(0, 0, 4, 100));
  s.submit(mk(1, 10, 4, 50));  // will queue at t=10
  eng.run();
  ASSERT_FALSE(contexts.empty());
  // At t=10 the queue holds job 1; head shadow = estimated end of job 0.
  bool saw_blocked = false;
  for (const auto& c : contexts) {
    if (c.now == 10) {
      saw_blocked = true;
      EXPECT_FALSE(c.queue_empty);
      EXPECT_EQ(c.head_earliest_start, 100);
      EXPECT_EQ(c.free_cpus, 0);
    }
  }
  EXPECT_TRUE(saw_blocked);
  s.take_result(1000);
}

TEST(Scheduler, StatsCountersTrackActivity) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  // Head blocks behind a runner; a small job backfills.
  s.submit(mk(0, 0, 6, 100));
  s.submit(mk(1, 1, 8, 100));
  s.submit(mk(2, 2, 4, 50));
  eng.run();
  const auto& st = s.stats();
  EXPECT_GE(st.passes, 3u);              // at least one per event time
  EXPECT_EQ(st.native_starts, 3u);
  EXPECT_EQ(st.interstitial_starts, 0u);
  EXPECT_GE(st.backfilled_starts, 1u);   // job 2 starts past blocked job 1
  EXPECT_GE(st.reservations, 1u);        // job 1's head reservation
  EXPECT_GE(st.max_queue_length, 1u);
  s.take_result(1000);
}

TEST(Scheduler, StatsCountInterstitialStartsSeparately) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  Job i1 = mk(100, 0, 2, 50);
  i1.klass = JobClass::kInterstitial;
  eng.schedule(0, [&] { ASSERT_TRUE(s.try_start_immediately(i1)); });
  eng.run();
  EXPECT_EQ(s.stats().interstitial_starts, 1u);
  EXPECT_EQ(s.stats().native_starts, 0u);
  s.take_result(1000);
}

TEST(Scheduler, WakeAtDedupsCoveredWakes) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  s.wake_at(10);  // queued
  s.wake_at(5);   // earlier: must queue its own event
  s.wake_at(7);   // covered by the wake at 5
  EXPECT_EQ(s.stats().wakeups, 2u);
}

TEST(Scheduler, WakeAtNotFooledByStaleEarlierWake) {
  // Regression: the old single next_wake_ register was never cleared once
  // its wake fired, so a later wake_at for a still-queued time scheduled a
  // duplicate event (and counted a phantom wakeup).
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(10), fcfs_policy());
  s.wake_at(10);
  s.wake_at(5);
  ASSERT_EQ(s.stats().wakeups, 2u);
  std::uint64_t wakeups_at_6 = 0;
  s.set_post_pass_hook([&](const PassContext& c) {
    if (c.now == 6) {
      // The wake at 5 has fired; the one at 10 is still queued, so this
      // must be recognized as covered.
      s.wake_at(10);
      wakeups_at_6 = s.stats().wakeups;
    }
  });
  s.engine().schedule(6, [] {});
  eng.run();
  EXPECT_EQ(wakeups_at_6, 2u);
  EXPECT_EQ(s.stats().wakeups, 2u);
  s.take_result(20);
}

TEST(Scheduler, StaleWakeDedupSurvivesQueueSwap) {
  // The queued-wakes set must behave identically under every queue impl:
  // the calendar queue's bucket ordering changes *how* wake events are
  // stored, never which wakes are deduplicated or when passes fire.  The
  // wake plan walks the calendar's tiers — same rung-1 bucket (5, 7, 10),
  // a later rung-1 bucket (70), rung 2 (70000), and the far-future
  // overflow list (100000000) — re-arming from the post-pass hook the way
  // the interstitial driver does (arming everything up front would be
  // covered by the earliest wake and prove nothing).
  const std::vector<SimTime> plan = {70, 70000, 100000000};
  std::vector<std::vector<SimTime>> fired_by_impl;
  std::vector<std::uint64_t> wakeups_by_impl;
  for (const sim::QueueImpl impl :
       {sim::QueueImpl::kLegacy, sim::QueueImpl::kBinaryHeap,
        sim::QueueImpl::kCalendar}) {
    sim::Engine eng(impl);
    BatchScheduler s(eng, machine_of(10), fcfs_policy());
    std::vector<SimTime> fired;
    s.set_post_pass_hook([&](const PassContext& c) {
      fired.push_back(c.now);
      for (const SimTime t : plan) {
        if (t > c.now) {
          s.wake_at(t);
          s.wake_at(t);  // immediate duplicate: must be covered
          break;
        }
      }
    });
    s.wake_at(10);
    s.wake_at(5);
    s.wake_at(7);  // covered by the wake at 5
    eng.run();
    fired_by_impl.push_back(std::move(fired));
    wakeups_by_impl.push_back(s.stats().wakeups);
    s.take_result(200000000);
  }
  // 2 up-front (10, 5) + one per plan step; the re-armed duplicates and
  // the covered 7 never reach the queue.
  const std::vector<SimTime> expected = {5, 10, 70, 70000, 100000000};
  for (std::size_t i = 0; i < fired_by_impl.size(); ++i) {
    EXPECT_EQ(fired_by_impl[i], expected) << "impl " << i;
    EXPECT_EQ(wakeups_by_impl[i], 5u) << "impl " << i;
  }
}

TEST(Scheduler, IncrementalProfileMatchesRebuildSchedules) {
  // The pass-persistent profile (deltas + origin advance) and the old
  // from-scratch per-pass rebuild must produce byte-identical schedules,
  // under every backfill discipline, across a workload dense enough to
  // exercise blocking, backfill, reservations and downtime drains.
  for (const BackfillMode mode :
       {BackfillMode::kEasy, BackfillMode::kConservative,
        BackfillMode::kNone}) {
    std::map<workload::JobId, JobRecord> recs[2];
    for (int variant = 0; variant < 2; ++variant) {
      sim::Engine eng;
      PolicySpec policy = fcfs_policy(mode);
      policy.incremental_profile = variant == 1;
      BatchScheduler s(
          eng, machine_of(32, cluster::DowntimeCalendar({{900, 1100}})),
          policy);
      Rng rng(99);
      SimTime submit = 0;
      for (workload::JobId id = 0; id < 120; ++id) {
        submit += static_cast<SimTime>(rng.below(40));
        const auto runtime = 20 + static_cast<Seconds>(rng.below(300));
        Job j = mk(id, submit, 1 + static_cast<int>(rng.below(20)), runtime,
                   runtime * (1 + static_cast<Seconds>(rng.below(3))));
        s.submit(j);
      }
      eng.run();
      recs[variant] = by_id(s.take_result(10000));
    }
    ASSERT_EQ(recs[0].size(), recs[1].size());
    for (const auto& [id, rec] : recs[0]) {
      EXPECT_EQ(rec.start, recs[1].at(id).start) << "job " << id;
      EXPECT_EQ(rec.end, recs[1].at(id).end) << "job " << id;
    }
  }
}

TEST(Scheduler, ProfileDescribesRunningJobsBetweenPasses) {
  // At every post-pass point the persistent profile's present-time value
  // must agree with the machine: temps undone, all running jobs applied.
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(16), fcfs_policy());
  bool checked = false;
  s.set_post_pass_hook([&](const PassContext& c) {
    EXPECT_EQ(s.profile().free_at(c.now), s.machine().free_cpus());
    checked = true;
  });
  Rng rng(7);
  SimTime submit = 0;
  for (workload::JobId id = 0; id < 40; ++id) {
    submit += static_cast<SimTime>(rng.below(60));
    s.submit(mk(id, submit, 1 + static_cast<int>(rng.below(12)),
                10 + static_cast<Seconds>(rng.below(200))));
  }
  eng.run();
  EXPECT_TRUE(checked);
  s.take_result(10000);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(SchedulerDeath, TakeResultWithPendingJobsAborts) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(4), fcfs_policy());
  s.submit(mk(0, 0, 4, 100));
  eng.run(50);  // stop before completion
  EXPECT_DEATH(s.take_result(100), "precondition");
}

TEST(SchedulerDeath, OversizedJobRejected) {
  sim::Engine eng;
  BatchScheduler s(eng, machine_of(4), fcfs_policy());
  EXPECT_DEATH(s.submit(mk(0, 0, 5, 100)), "precondition");
}
#endif

}  // namespace
}  // namespace istc::sched
