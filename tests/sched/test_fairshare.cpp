#include "sched/fairshare.hpp"

#include <gtest/gtest.h>

namespace istc::sched {
namespace {

workload::Job job_of(workload::UserId u, workload::GroupId g,
                     SimTime submit = 0) {
  workload::Job j;
  j.id = 1;
  j.user = u;
  j.group = g;
  j.cpus = 1;
  j.submit = submit;
  j.runtime = 100;
  j.estimate = 100;
  return j;
}

FairShareConfig cfg(FairShareMode mode) {
  FairShareConfig c;
  c.mode = mode;
  c.half_life = days(7);
  c.age_weight_per_hour = 0.0;  // isolate the share term in most tests
  return c;
}

TEST(FairShare, FreshTrackerIsNeutral) {
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  EXPECT_DOUBLE_EQ(t.user_usage(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.priority(job_of(1, 0), 0),
                   t.priority(job_of(2, 0), 0));
}

TEST(FairShare, ChargeAccumulates) {
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  t.charge(1, 0, 1000.0, 0);
  t.charge(1, 0, 500.0, 0);
  EXPECT_DOUBLE_EQ(t.user_usage(1, 0), 1500.0);
  EXPECT_DOUBLE_EQ(t.group_usage(0, 0), 1500.0);
}

TEST(FairShare, UsageDecaysWithHalfLife) {
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  t.charge(1, 0, 1000.0, 0);
  EXPECT_NEAR(t.user_usage(1, days(7)), 500.0, 1e-6);
  EXPECT_NEAR(t.user_usage(1, days(14)), 250.0, 1e-6);
}

TEST(FairShare, HeavyUserSinks) {
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  t.charge(1, 0, 100000.0, 0);
  t.charge(2, 0, 10.0, 0);
  EXPECT_LT(t.priority(job_of(1, 0), 0), t.priority(job_of(2, 0), 0));
}

TEST(FairShare, EqualUsersIgnoresGroupUsage) {
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  // Same user, different groups; group 5 is heavily charged by user 9.
  t.charge(9, 5, 100000.0, 0);
  EXPECT_DOUBLE_EQ(t.priority(job_of(1, 5), 0), t.priority(job_of(1, 6), 0));
}

TEST(FairShare, GroupHierarchyGroupDominates) {
  FairShareTracker t(cfg(FairShareMode::kGroupHierarchy));
  // Group 1 consumed a lot via user 10; user 11 in group 1 is clean but
  // should still rank below a clean user in a clean group.
  t.charge(10, 1, 50000.0, 0);
  EXPECT_LT(t.priority(job_of(11, 1), 0), t.priority(job_of(12, 2), 0));
}

TEST(FairShare, GroupHierarchyUserBreaksTiesWithinGroup) {
  FairShareTracker t(cfg(FairShareMode::kGroupHierarchy));
  t.charge(10, 1, 10000.0, 0);
  // Same group usage for both; user 10 has personal usage, 11 does not.
  EXPECT_LT(t.priority(job_of(10, 1), 0), t.priority(job_of(11, 1), 0));
}

TEST(FairShare, UserAndGroupBlends) {
  auto c = cfg(FairShareMode::kUserAndGroup);
  c.group_weight = 0.5;
  FairShareTracker t(c);
  t.charge(1, 1, 10000.0, 0);
  // User 1 in a clean group vs clean user in group 1: equal blended usage.
  EXPECT_NEAR(t.priority(job_of(1, 2), 0), t.priority(job_of(3, 1), 0),
              1e-12);
  // Clean user + clean group beats both.
  EXPECT_GT(t.priority(job_of(4, 3), 0), t.priority(job_of(1, 2), 0));
}

TEST(FairShare, AgingLiftsWaitingJobs) {
  auto c = cfg(FairShareMode::kEqualUsers);
  c.age_weight_per_hour = 0.1;
  FairShareTracker t(c);
  t.charge(1, 0, 100.0, 0);
  t.charge(2, 0, 100.0, 0);
  const auto old_job = job_of(1, 0, 0);
  const auto new_job = job_of(2, 0, hours(10));
  // At t=10h the old job has 10h of age credit, the new one none.
  EXPECT_GT(t.priority(old_job, hours(10)), t.priority(new_job, hours(10)));
}

TEST(FairShare, AgingEventuallyOvercomesUsageDeficit) {
  auto c = cfg(FairShareMode::kEqualUsers);
  c.age_weight_per_hour = 0.05;
  FairShareTracker t(c);
  t.charge(1, 0, 1e6, 0);  // user 1 consumed everything so far
  const auto heavy_old = job_of(1, 0, 0);
  const auto light_new = job_of(2, 0, hours(100));
  // After 100 h of waiting the heavy user's job outranks a fresh job.
  EXPECT_GT(t.priority(heavy_old, hours(100)),
            t.priority(light_new, hours(100)));
}

TEST(FairShare, PrioritiesBoundedByNormalization) {
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  t.charge(1, 0, 12345.0, 100);
  t.charge(2, 1, 777.0, 200);
  // Usage fractions are normalized by the grand total: deficits in [-1,0].
  for (workload::UserId u : {1, 2, 3}) {
    const double p = t.priority(job_of(u, 0), 300);
    EXPECT_LE(p, 0.0);
    EXPECT_GE(p, -1.0);
  }
}

TEST(FairShare, DecayConsistentAcrossChargePattern) {
  // Charging 500 at t=0 and 500 at t=hl must equal 250+500 at t=hl.
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  t.charge(1, 0, 500.0, 0);
  t.charge(1, 0, 500.0, days(7));
  EXPECT_NEAR(t.user_usage(1, days(7)), 750.0, 1e-6);
}

TEST(FairShare, SizeBonusRanksWideJobsUp) {
  auto c = cfg(FairShareMode::kEqualUsers);
  c.size_weight = 0.5;
  FairShareTracker t(c);
  auto wide = job_of(1, 0);
  wide.cpus = 1024;
  auto narrow = job_of(2, 0);
  narrow.cpus = 1;
  EXPECT_GT(t.priority(wide, 0), t.priority(narrow, 0));
}

TEST(FairShare, SizeBonusDisabledByZeroWeight) {
  auto c = cfg(FairShareMode::kEqualUsers);
  c.size_weight = 0.0;
  FairShareTracker t(c);
  auto wide = job_of(1, 0);
  wide.cpus = 1024;
  EXPECT_DOUBLE_EQ(t.priority(wide, 0), t.priority(job_of(2, 0), 0));
}

TEST(FairShare, GroupUsageAggregatesAcrossUsers) {
  FairShareTracker t(cfg(FairShareMode::kGroupHierarchy));
  t.charge(1, 5, 300.0, 0);
  t.charge(2, 5, 700.0, 0);
  EXPECT_DOUBLE_EQ(t.group_usage(5, 0), 1000.0);
  EXPECT_DOUBLE_EQ(t.user_usage(1, 0), 300.0);
}

TEST(FairShare, UsageFractionsNormalizedByGrandTotal) {
  // Two users split the machine 3:1; the light user's deficit advantage
  // should match the usage split regardless of absolute magnitudes.
  for (double scale : {1.0, 1e6}) {
    FairShareTracker t(cfg(FairShareMode::kEqualUsers));
    t.charge(1, 0, 3.0 * scale, 0);
    t.charge(2, 0, 1.0 * scale, 0);
    const double gap =
        t.priority(job_of(2, 0), 0) - t.priority(job_of(1, 0), 0);
    EXPECT_NEAR(gap, 0.5, 1e-9);  // (3/4 - 1/4)
  }
}

// Parameterized: every mode keeps the "heavy sinks" ordering.
class ModeSweep : public ::testing::TestWithParam<FairShareMode> {};

TEST_P(ModeSweep, HeavyPrincipalSinks) {
  FairShareTracker t(cfg(GetParam()));
  t.charge(1, 1, 1e6, 0);
  t.charge(2, 2, 1.0, 0);
  EXPECT_LT(t.priority(job_of(1, 1), 0), t.priority(job_of(2, 2), 0));
}

TEST(FairShare, EpochAdvancesOnlyOnCharges) {
  FairShareTracker t(cfg(FairShareMode::kEqualUsers));
  EXPECT_EQ(t.epoch(), 0u);
  t.charge(1, 1, 100.0, 10);
  EXPECT_EQ(t.epoch(), 1u);
  // Queries never move the epoch — that is what lets the scheduler reuse
  // its cached priority order between charges.
  (void)t.priority(job_of(1, 1), 500);
  (void)t.user_usage(1, 500);
  EXPECT_EQ(t.epoch(), 1u);
  t.charge(2, 1, 1.0, 20);
  EXPECT_EQ(t.epoch(), 2u);
}

TEST(FairShare, PriorityComposesDeficitExactly) {
  // priority() must equal the split form bit-for-bit: PriorityStage
  // memoizes deficit() per principal and recombines, and the schedules
  // must not depend on which path computed the number.
  FairShareConfig c = cfg(FairShareMode::kUserAndGroup);
  c.age_weight_per_hour = 0.7;
  c.size_weight = 0.3;
  FairShareTracker t(c);
  t.charge(1, 1, 5000.0, 0);
  t.charge(2, 2, 100.0, 50);
  const auto j = job_of(1, 1, 25);
  for (const SimTime now : {50, 500, 50000}) {
    EXPECT_EQ(t.priority(j, now),
              t.priority_with_deficit(t.deficit(j.user, j.group, now), j, now));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ModeSweep,
                         ::testing::Values(FairShareMode::kEqualUsers,
                                           FairShareMode::kGroupHierarchy,
                                           FairShareMode::kUserAndGroup));

}  // namespace
}  // namespace istc::sched
