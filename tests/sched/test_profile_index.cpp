// The hole index is a pure accelerator: with the segment tree forced on
// (threshold 1) and forced off (kIndexDisabled), every query over the same
// operation sequence must return the same answer.  A randomized property
// test drives both instances in lockstep; smaller cases pin the rebuild
// amortization and the advance_origin/coalesce interactions.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sched/resource_profile.hpp"
#include "util/rng.hpp"

namespace istc::sched {
namespace {

class IndexDifferential : public ::testing::TestWithParam<std::uint64_t> {};

// Indexed vs. linear-scan instances fed identical operations; mirrors the
// brute-force differential in test_profile_reference.cpp but pits the two
// production paths against each other, including advance_origin (which
// shifts the live window the tree is built over).
TEST_P(IndexDifferential, IndexedQueriesMatchLinearScan) {
  constexpr int kCapacity = 48;
  constexpr SimTime kHorizon = 800;
  ResourceProfile indexed(0, kCapacity);
  indexed.set_index_threshold(1);  // force the tree from the first step
  ResourceProfile linear(0, kCapacity);
  linear.set_index_threshold(ResourceProfile::kIndexDisabled);
  Rng rng(GetParam());

  struct Reservation {
    SimTime start, end;
    int cpus;
  };
  std::vector<Reservation> live;
  SimTime origin = 0;

  for (int op = 0; op < 500; ++op) {
    const auto choice = rng.below(12);
    if (choice < 5) {
      const int cpus = static_cast<int>(rng.range(1, kCapacity));
      const Seconds dur = rng.range(1, 70);
      const SimTime after = origin + rng.range(0, kHorizon);
      const SimTime t = indexed.earliest_fit(cpus, dur, after);
      ASSERT_EQ(t, linear.earliest_fit(cpus, dur, after))
          << "op " << op << " cpus=" << cpus << " dur=" << dur
          << " after=" << after;
      indexed.reserve(t, t + dur, cpus);
      linear.reserve(t, t + dur, cpus);
      live.push_back({t, t + dur, cpus});
    } else if (choice < 7 && !live.empty()) {
      const auto idx = rng.below(live.size());
      const auto r = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      if (r.start >= origin) {
        indexed.release(r.start, r.end, r.cpus);
        linear.release(r.start, r.end, r.cpus);
      }
    } else if (choice < 9) {
      const SimTime a = origin + rng.range(0, kHorizon);
      const SimTime b = a + rng.range(1, 90);
      ASSERT_EQ(indexed.min_free(a, b), linear.min_free(a, b))
          << "min_free(" << a << "," << b << ")";
    } else if (choice < 11) {
      const SimTime t = origin + rng.range(0, kHorizon);
      ASSERT_EQ(indexed.free_at(t), linear.free_at(t));
      const auto si = indexed.step_at(t);
      const auto sl = linear.step_at(t);
      ASSERT_EQ(si.free, sl.free);
      ASSERT_EQ(si.until, sl.until);
    } else if (rng.below(4) == 0) {
      // Occasionally advance the origin past some history; reservations
      // straddling the cut become unreleasable, so drop them from `live`.
      origin += rng.range(1, 50);
      indexed.advance_origin(origin);
      linear.advance_origin(origin);
      std::erase_if(live,
                    [&](const Reservation& r) { return r.start < origin; });
    } else {
      indexed.coalesce();
      linear.coalesce();
    }
    ASSERT_TRUE(indexed.same_function(linear)) << "op " << op;
  }
  EXPECT_GT(indexed.index_rebuilds(), 0u);
  EXPECT_EQ(linear.index_rebuilds(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDifferential,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// Rebuilds are lazy and amortized: a burst of queries with no intervening
// mutation costs exactly one rebuild.
TEST(HoleIndex, RebuildsAmortizeAcrossQueryBursts) {
  ResourceProfile p(0, 32);
  p.set_index_threshold(1);
  for (int i = 0; i < 20; ++i) {
    p.reserve(i * 100, i * 100 + 60, 1 + (i % 8));
  }
  const auto after_mutations = p.index_rebuilds();
  for (int i = 0; i < 50; ++i) {
    (void)p.earliest_fit(30, 40, i * 37);
    (void)p.min_free(i * 13, i * 13 + 200);
  }
  EXPECT_EQ(p.index_rebuilds(), after_mutations + 1);
  // A mutation dirties the tree; the next query rebuilds once more.
  p.reserve(5000, 5100, 4);
  (void)p.earliest_fit(30, 40, 0);
  EXPECT_EQ(p.index_rebuilds(), after_mutations + 2);
}

// Below the threshold the linear path answers and the tree is never built.
TEST(HoleIndex, SmallProfilesStayOnLinearScan) {
  ResourceProfile p(0, 32);
  p.set_index_threshold(1000);
  for (int i = 0; i < 10; ++i) p.reserve(i * 50, i * 50 + 30, 2);
  for (int i = 0; i < 20; ++i) (void)p.earliest_fit(16, 25, i * 11);
  EXPECT_EQ(p.index_rebuilds(), 0u);
}

// The process-wide default is what the scheduler's profiles inherit;
// changing it must only affect construction-time capture.
TEST(HoleIndex, DefaultThresholdIsCapturedAtConstruction) {
  const std::size_t saved = ResourceProfile::default_index_threshold();
  ResourceProfile::set_default_index_threshold(7);
  ResourceProfile p(0, 16);
  EXPECT_EQ(p.index_threshold(), 7u);
  ResourceProfile::set_default_index_threshold(saved);
  EXPECT_EQ(p.index_threshold(), 7u);  // unaffected retroactively
  ResourceProfile q(0, 16);
  EXPECT_EQ(q.index_threshold(), saved);
}

}  // namespace
}  // namespace istc::sched
