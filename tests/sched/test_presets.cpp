#include "sched/presets.hpp"

#include <gtest/gtest.h>

namespace istc::sched {
namespace {

using cluster::Site;

// Table 1's per-site queueing systems, as modelled.
TEST(SchedPresets, RossIsConservativeEqualShare) {
  const auto p = site_policy(Site::kRoss);
  EXPECT_EQ(p.backfill, BackfillMode::kConservative);
  EXPECT_EQ(p.fairshare.mode, FairShareMode::kEqualUsers);
  EXPECT_FALSE(p.time_of_day.has_value());
  EXPECT_NE(p.name.find("PBS"), std::string::npos);
}

TEST(SchedPresets, BlueMountainIsEasyGroupHierarchy) {
  const auto p = site_policy(Site::kBlueMountain);
  EXPECT_EQ(p.backfill, BackfillMode::kEasy);
  EXPECT_EQ(p.fairshare.mode, FairShareMode::kGroupHierarchy);
  EXPECT_FALSE(p.time_of_day.has_value());
  EXPECT_NE(p.name.find("LSF"), std::string::npos);
}

TEST(SchedPresets, BluePacificIsEasyUserGroupWithTimeOfDay) {
  const auto p = site_policy(Site::kBluePacific);
  EXPECT_EQ(p.backfill, BackfillMode::kEasy);
  EXPECT_EQ(p.fairshare.mode, FairShareMode::kUserAndGroup);
  ASSERT_TRUE(p.time_of_day.has_value());
  EXPECT_EQ(p.time_of_day->min_cpus_gated, 128);
  EXPECT_NE(p.name.find("DPCS"), std::string::npos);
}

TEST(SchedPresets, BluePacificGateLeavesInterstitialJobsFree) {
  // The canonical 32-CPU interstitial job must not be day-gated, or the
  // paper's continual experiments would stall every morning.
  const auto p = site_policy(Site::kBluePacific);
  workload::Job j;
  j.cpus = 32;
  j.runtime = 325;
  j.estimate = 325;
  EXPECT_FALSE(p.time_of_day->gates(j));
}

TEST(SchedPresets, AllSitesShareWeeklyHalfLife) {
  for (auto site : cluster::all_sites()) {
    EXPECT_EQ(site_policy(site).fairshare.half_life, days(7));
  }
}

}  // namespace
}  // namespace istc::sched
