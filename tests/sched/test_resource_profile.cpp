#include "sched/resource_profile.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace istc::sched {
namespace {

TEST(ResourceProfile, FullCapacityInitially) {
  ResourceProfile p(0, 100);
  EXPECT_EQ(p.free_at(0), 100);
  EXPECT_EQ(p.free_at(1000000), 100);
  EXPECT_EQ(p.min_free(0, 50), 100);
}

TEST(ResourceProfile, ReserveSubtractsOverInterval) {
  ResourceProfile p(0, 100);
  p.reserve(10, 20, 30);
  EXPECT_EQ(p.free_at(9), 100);
  EXPECT_EQ(p.free_at(10), 70);
  EXPECT_EQ(p.free_at(19), 70);
  EXPECT_EQ(p.free_at(20), 100);
}

TEST(ResourceProfile, OverlappingReservationsStack) {
  ResourceProfile p(0, 100);
  p.reserve(10, 30, 40);
  p.reserve(20, 40, 40);
  EXPECT_EQ(p.free_at(15), 60);
  EXPECT_EQ(p.free_at(25), 20);
  EXPECT_EQ(p.free_at(35), 60);
  EXPECT_EQ(p.min_free(0, 50), 20);
}

TEST(ResourceProfile, ReleaseRestores) {
  ResourceProfile p(0, 100);
  p.reserve(10, 30, 50);
  p.release(10, 30, 50);
  EXPECT_EQ(p.min_free(0, 100), 100);
  EXPECT_EQ(p.steps(), 1u);  // coalesced back to a single segment
}

TEST(ResourceProfile, MinFreeScansWindow) {
  ResourceProfile p(0, 100);
  p.reserve(10, 20, 60);
  p.reserve(30, 40, 90);
  EXPECT_EQ(p.min_free(0, 10), 100);
  EXPECT_EQ(p.min_free(5, 15), 40);
  EXPECT_EQ(p.min_free(15, 35), 10);
  EXPECT_EQ(p.min_free(40, 100), 100);
}

TEST(ResourceProfile, EarliestFitImmediate) {
  ResourceProfile p(0, 100);
  EXPECT_EQ(p.earliest_fit(100, 1000, 0), 0);
  EXPECT_EQ(p.earliest_fit(1, 1, 12345), 12345);
}

TEST(ResourceProfile, EarliestFitAfterBlockingSegment) {
  ResourceProfile p(0, 100);
  p.reserve(0, 50, 80);  // only 20 free until t=50
  EXPECT_EQ(p.earliest_fit(20, 10, 0), 0);
  EXPECT_EQ(p.earliest_fit(21, 10, 0), 50);
  EXPECT_EQ(p.earliest_fit(100, 10, 0), 50);
}

TEST(ResourceProfile, EarliestFitMustSpanWholeWindow) {
  ResourceProfile p(0, 100);
  p.reserve(30, 40, 90);  // a dip mid-horizon
  // A 20-wide, 35-long job cannot start at 0 (dip at 30); must wait to 40.
  EXPECT_EQ(p.earliest_fit(20, 35, 0), 40);
  // A short job fits before the dip.
  EXPECT_EQ(p.earliest_fit(20, 30, 0), 0);
}

TEST(ResourceProfile, EarliestFitSkipsMultipleBlocks) {
  ResourceProfile p(0, 10);
  p.reserve(0, 10, 8);
  p.reserve(15, 30, 8);
  p.reserve(35, 60, 9);
  // 3-wide 10-long: the 2-free stretches block it and the clear gaps
  // [10,15) and [30,35) are too short; first fit at 60.
  EXPECT_EQ(p.earliest_fit(3, 10, 0), 60);
  // 2-wide squeezes beside the 8-cpu reservations from the start.
  EXPECT_EQ(p.earliest_fit(2, 10, 0), 0);
  // 1-wide fits everywhere.
  EXPECT_EQ(p.earliest_fit(1, 10, 0), 0);
}

TEST(ResourceProfile, ReserveAtFitNeverFails) {
  ResourceProfile p(0, 64);
  Rng rng(1);
  // Fuzz: find a fit, reserve there; the invariant inside reserve() checks
  // min_free >= cpus, so any violation aborts.
  for (int i = 0; i < 2000; ++i) {
    const int cpus = static_cast<int>(rng.range(1, 64));
    const Seconds dur = rng.range(1, 500);
    const SimTime after = rng.range(0, 5000);
    const SimTime t = p.earliest_fit(cpus, dur, after);
    EXPECT_GE(t, after);
    EXPECT_GE(p.min_free(t, t + dur), cpus);
    if (i % 3 != 0) p.reserve(t, t + dur, cpus);
  }
}

TEST(ResourceProfile, EarliestFitIsEarliest) {
  // Property: no admissible start exists strictly before the returned one.
  ResourceProfile p(0, 32);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const SimTime a = rng.range(0, 2000);
    const Seconds d = rng.range(1, 100);
    const int c = static_cast<int>(rng.range(1, 20));
    if (p.min_free(a, a + d) >= c) p.reserve(a, a + d, c);
  }
  for (int i = 0; i < 200; ++i) {
    const int cpus = static_cast<int>(rng.range(1, 32));
    const Seconds dur = rng.range(1, 150);
    const SimTime t = p.earliest_fit(cpus, dur, 0);
    // Check a sample of earlier instants.
    for (SimTime probe = 0; probe < t; probe += std::max<SimTime>(1, t / 17)) {
      EXPECT_LT(p.min_free(probe, probe + dur), cpus)
          << "fit missed earlier start " << probe << " for t=" << t;
    }
  }
}

TEST(ResourceProfile, CoalescingBoundsSteps) {
  ResourceProfile p(0, 10);
  for (int i = 0; i < 100; ++i) {
    p.reserve(i * 10, i * 10 + 10, 5);  // adjacent equal-valued segments
  }
  // [0,1000) at 5 free, then capacity: a handful of breakpoints, not 200.
  EXPECT_LE(p.steps(), 3u);
}

TEST(ResourceProfile, NonZeroOrigin) {
  ResourceProfile p(1000, 50);
  EXPECT_EQ(p.free_at(1000), 50);
  p.reserve(1000, 1100, 50);
  EXPECT_EQ(p.earliest_fit(1, 10, 1000), 1100);
}

TEST(ResourceProfile, AdvanceOriginChopsHistoryKeepsFuture) {
  ResourceProfile p(0, 100);
  p.reserve(10, 20, 30);
  p.reserve(40, 60, 50);
  p.advance_origin(15);
  EXPECT_EQ(p.origin(), 15);
  EXPECT_EQ(p.free_at(15), 70);   // inside the first reservation
  EXPECT_EQ(p.free_at(20), 100);  // unchanged future
  EXPECT_EQ(p.free_at(45), 50);
  EXPECT_EQ(p.min_free(15, 100), 50);
}

TEST(ResourceProfile, AdvanceOriginPastEverythingLeavesFlatCapacity) {
  ResourceProfile p(0, 100);
  p.reserve(10, 20, 30);
  p.advance_origin(500);
  EXPECT_EQ(p.origin(), 500);
  EXPECT_EQ(p.free_at(500), 100);
  EXPECT_EQ(p.steps(), 1u);  // one flat segment, history fully chopped
}

TEST(ResourceProfile, AdvanceOriginToCurrentOriginIsNoop) {
  ResourceProfile p(7, 10);
  p.reserve(8, 9, 3);
  p.advance_origin(7);
  EXPECT_EQ(p.origin(), 7);
  EXPECT_EQ(p.free_at(8), 7);
}

TEST(ResourceProfile, CoalesceCanonicalizesAfterComposedOps) {
  ResourceProfile p(0, 100);
  p.reserve(10, 30, 20);
  p.reserve(30, 50, 20);  // adjacent, equal value: one logical segment
  p.coalesce();
  // origin segment, the merged reservation, and the tail.
  EXPECT_EQ(p.steps(), 3u);
  EXPECT_EQ(p.min_free(10, 50), 80);
  EXPECT_EQ(p.free_at(50), 100);
}

TEST(ResourceProfile, SegmentCountBoundedUnderChurn) {
  // The pass-persistent profile's memory guarantee: breakpoints track live
  // change points, never the cumulative operation count.
  Rng rng(11);
  ResourceProfile p(0, 256);
  std::size_t live = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime start = rng.range(0, 5000);
    const auto dur = rng.range(10, 500);
    const int cpus = static_cast<int>(rng.range(1, 64));
    if (p.min_free(start, start + dur) < cpus) continue;
    p.reserve(start, start + dur, cpus);
    ++live;
    if (rng.below(2) == 0) {
      p.release(start, start + dur, cpus);  // paired undo, like GateStage
      --live;
    }
    // Live reservations induce at most 2 breakpoints each, plus the origin
    // segment; undone ones must leave nothing behind — the bound depends on
    // what is outstanding, never on the 2000-operation history.
    EXPECT_LE(p.steps(), 2u * live + 1u);
  }
  const std::size_t before = p.steps();
  p.coalesce();
  EXPECT_EQ(p.steps(), before);  // reserve/release already canonicalize
}

TEST(ResourceProfile, SameFunctionComparesValuesNotSegmentation) {
  ResourceProfile a(0, 100);
  a.reserve(10, 50, 20);
  ResourceProfile b(0, 100);
  b.reserve(10, 30, 20);
  b.reserve(30, 50, 20);  // different ops, same step function
  EXPECT_TRUE(a.same_function(b));
  EXPECT_TRUE(b.same_function(a));
  b.reserve(60, 70, 1);
  EXPECT_FALSE(a.same_function(b));
  ResourceProfile c(5, 100);  // different origin
  EXPECT_FALSE(a.same_function(c));
}

TEST(ResourceProfile, SameFunctionAfterAdvanceMatchesFreshRebuild) {
  // The ISTC_PARANOID invariant in miniature: incrementally maintained ==
  // rebuilt from scratch at the new origin.
  ResourceProfile inc(0, 64);
  inc.reserve(0, 100, 16);  // job A, estimated end 100
  inc.reserve(0, 250, 8);   // job B, estimated end 250
  inc.advance_origin(120);  // job A's estimate expired
  ResourceProfile rebuilt(120, 64);
  rebuilt.reserve(120, 250, 8);  // only job B still runs
  EXPECT_TRUE(inc.same_function(rebuilt));
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(ResourceProfileDeath, OverReserveAborts) {
  ResourceProfile p(0, 10);
  p.reserve(0, 100, 8);
  EXPECT_DEATH(p.reserve(50, 60, 3), "precondition");
}

TEST(ResourceProfileDeath, QueryBeforeOriginAborts) {
  ResourceProfile p(100, 10);
  EXPECT_DEATH(p.free_at(99), "precondition");
}

TEST(ResourceProfileDeath, ReleaseAboveCapacityAborts) {
  ResourceProfile p(0, 10);
  EXPECT_DEATH(p.release(0, 10, 1), "invariant");
}
#endif

}  // namespace
}  // namespace istc::sched
