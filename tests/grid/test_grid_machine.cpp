// GridMachine port semantics: a machine with no grid traffic is exactly
// the bare scheduler stack; delivered jobs start through the Figure-1
// gate and report completions with the right harvest charge; kills
// report the checkpoint remainder in machine-neutral cycles; jobs that
// cannot start within the patience window bounce.

#include <gtest/gtest.h>

#include <vector>

#include "grid/fleet.hpp"
#include "grid/machine.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace istc::grid {
namespace {

constexpr SimTime kSpan = 5000;

workload::Job native(workload::JobId id, SimTime submit, int cpus,
                     Seconds runtime) {
  workload::Job j;
  j.id = id;
  j.submit = submit;
  j.cpus = cpus;
  j.runtime = runtime;
  j.estimate = runtime;
  return j;
}

MachineSetup mini_setup(std::vector<workload::Job> natives) {
  MachineSetup setup;
  setup.spec = {.name = "port-mini", .site = "", .queue_system = "",
                .cpus = 64, .clock_ghz = 1.0};
  setup.natives = workload::JobLog(std::move(natives));
  setup.span = kSpan;
  setup.bounce_patience = 400;
  return setup;
}

TEST(GridMachine, NativeOnlyMatchesBareSchedulerStack) {
  std::vector<workload::Job> jobs;
  for (workload::JobId id = 0; id < 20; ++id)
    jobs.push_back(native(id, id * 37, 1 + static_cast<int>(id % 16),
                          50 + static_cast<Seconds>(id) * 11));

  GridMachine m(mini_setup(jobs));
  m.drain();
  const auto grid_run = m.take_result();

  sim::Engine eng(true);
  cluster::Machine machine({.name = "port-mini", .site = "",
                            .queue_system = "", .cpus = 64,
                            .clock_ghz = 1.0},
                           {});
  sched::BatchScheduler s(eng, machine, {});
  s.load(workload::JobLog(jobs));
  eng.run();
  const auto bare_run = s.take_result(kSpan);

  EXPECT_EQ(hash_run(grid_run), hash_run(bare_run));
  EXPECT_EQ(grid_run.native_count(), 20u);
}

TEST(GridMachine, DeliveredJobStartsAndReportsCompletion) {
  GridMachine m(mini_setup({}));  // empty queue: gate is open
  GridJob job;
  job.gid = 7;
  job.cpus = 8;
  job.work_per_cpu = m.machine().spec().cycles_in(600);

  m.deliver(100, job);
  EXPECT_EQ(m.port_stats().delivered, 1u);

  m.advance(100);  // landing event triggers the pass that starts it
  EXPECT_EQ(m.port_stats().started, 1u);
  EXPECT_TRUE(m.collect_reports(100).empty());  // still running

  // Exactly-known end: 100 + 600.
  EXPECT_EQ(m.next_report_time(101), 700);
  m.advance(700);
  const auto reports = m.collect_reports(700);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ReportKind::kCompleted);
  EXPECT_EQ(reports[0].job.gid, 7u);
  EXPECT_EQ(reports[0].time, 700);
  EXPECT_EQ(reports[0].cpu_sec, 8u * 600u);
  EXPECT_EQ(m.port_stats().completed, 1u);
}

TEST(GridMachine, GateRefusesWhenNativeWouldBeDelayed) {
  // One 64-wide native queued to start at t=300: the gate protects it, so
  // a 600 s grid job delivered at t=100 must not start, and bounces once
  // its patience (400 s) expires.
  std::vector<workload::Job> jobs = {native(0, 0, 64, 300),
                                     native(1, 0, 64, 2000)};
  GridMachine m(mini_setup(jobs));
  GridJob job;
  job.gid = 9;
  job.cpus = 4;
  job.work_per_cpu = m.machine().spec().cycles_in(600);

  m.deliver(100, job);
  m.advance(100);
  EXPECT_EQ(m.port_stats().started, 0u);

  const SimTime deadline = m.next_report_time(101);
  EXPECT_EQ(deadline, 500);  // arrived 100 + patience 400
  m.advance(deadline);
  const auto reports = m.collect_reports(deadline);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ReportKind::kBounced);
  EXPECT_EQ(reports[0].cpu_sec, 0u);
  EXPECT_EQ(m.port_stats().bounced, 1u);
}

TEST(GridMachine, PreemptionKillReportsCheckpointRemainder) {
  // Grid job starts at t=10 on an idle machine; a 64-wide native arriving
  // at t=1000 preempts it.  With a 400 s checkpoint cadence the kill
  // loses only work since the last checkpoint.
  std::vector<workload::Job> jobs = {native(0, 1000, 64, 500)};
  auto setup = mini_setup(jobs);
  setup.policy.preempt_interstitial = true;

  GridMachine m(std::move(setup));
  const auto& spec = m.machine().spec();
  GridJob job;
  job.gid = 3;
  job.cpus = 8;
  job.work_per_cpu = spec.cycles_in(3000);
  job.checkpoint = 400;

  m.deliver(10, job);
  m.advance(2000);
  const auto reports = m.collect_reports(2000);
  ASSERT_EQ(reports.size(), 1u);
  const auto& r = reports[0];
  EXPECT_EQ(r.kind, ReportKind::kKilled);
  EXPECT_EQ(r.time, 1000);
  // Started at 10, killed at 1000: 990 s elapsed, checkpointed at 800.
  EXPECT_EQ(r.cpu_sec, 8u * 990u);
  EXPECT_EQ(r.job.work_per_cpu, spec.cycles_in(3000) - spec.cycles_in(800));
  EXPECT_EQ(r.job.checkpoint, 400);
  EXPECT_EQ(m.port_stats().killed, 1u);
}

TEST(GridMachine, LocalModeRejectsRoutedTraffic) {
  auto setup = mini_setup({});
  setup.local_project = core::ProjectSpec::continual_stream(8, 120, kSpan);
  GridMachine m(std::move(setup));
  EXPECT_FALSE(m.accepts_routed());
  EXPECT_NE(m.driver(), nullptr);
}

TEST(GridMachine, LookaheadSeesQueuedNativeLoad) {
  // A 64-wide native running [0, 1000) leaves no free CPUs in that window
  // but a full machine afterwards.
  std::vector<workload::Job> jobs = {native(0, 0, 64, 1000)};
  GridMachine m(mini_setup(jobs));
  m.advance(1);
  EXPECT_EQ(m.lookahead_min_free(1, 500), 0);
  EXPECT_EQ(m.lookahead_min_free(1500, 500), 64);
}

}  // namespace
}  // namespace istc::grid
