// FleetRun fork-tree contract: forking a whole brokered fleet mid-run and
// draining the fork must be bit-identical to never having forked, knob
// setters applied at a boundary must equal a scratch run with the knob set
// at the same boundary, and a SweepRunner<FleetRun> must be thread-count
// invariant.  Also pins the batched-delivery counters: every job arrives
// through a packed DeliverySpan, many jobs per timed arrival event.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sweep.hpp"
#include "grid/fleet.hpp"
#include "util/rng.hpp"

namespace istc::grid {
namespace {

constexpr SimTime kSpan = 6000;

std::vector<workload::Job> random_natives(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<workload::Job> jobs;
  SimTime submit = 0;
  for (workload::JobId id = 0; id < 150; ++id) {
    submit += static_cast<SimTime>(rng.below(80));
    workload::Job j;
    j.id = id;
    j.submit = submit;
    j.cpus = 1 + static_cast<int>(rng.below(32));
    j.runtime = 20 + static_cast<Seconds>(rng.below(400));
    j.estimate = j.runtime * (1 + static_cast<Seconds>(rng.below(4)));
    j.user = static_cast<workload::UserId>(rng.below(5));
    jobs.push_back(j);
  }
  return jobs;
}

// Three brokered miniature machines (the ShardThreadCountIsInvisible
// fleet), kept small so every test runs in milliseconds.
std::vector<MachineSetup> mini_fleet() {
  std::vector<MachineSetup> fleet;
  for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
    MachineSetup setup;
    setup.spec = {.name = "mini-" + std::to_string(seed), .site = "",
                  .queue_system = "", .cpus = 64, .clock_ghz = 1.0};
    setup.downtime = cluster::DowntimeCalendar({{2000, 2400}, {4500, 4800}});
    setup.policy.preempt_interstitial = true;
    setup.natives = workload::JobLog(random_natives(seed));
    setup.span = kSpan;
    setup.bounce_patience = 300;
    fleet.push_back(std::move(setup));
  }
  return fleet;
}

std::unique_ptr<FleetRun> mini_run(BrokerPolicy policy = BrokerPolicy::kBestFit,
                                   std::size_t threads = 1) {
  FleetConfig cfg;
  cfg.broker.policy = policy;
  cfg.threads = threads;
  return std::make_unique<FleetRun>(
      mini_fleet(), sweep_projects(3, 25, 3 * 64, 0.5, 0xFEEDu), cfg);
}

bool same_fleet(const FleetResult& a, const FleetResult& b) {
  if (a.hash != b.hash || a.epochs != b.epochs || a.sim_end != b.sim_end ||
      a.dispatches.size() != b.dispatches.size() ||
      a.ledgers.size() != b.ledgers.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ledgers.size(); ++i) {
    if (a.ledgers[i].completed != b.ledgers[i].completed ||
        a.ledgers[i].abandoned() != b.ledgers[i].abandoned() ||
        a.ledgers[i].harvested_cpu_sec != b.ledgers[i].harvested_cpu_sec) {
      return false;
    }
  }
  return true;
}

// FleetRun with no intervening fork must reproduce run_fleet exactly —
// the two epoch loops are one implementation.
TEST(FleetFork, FleetRunMatchesRunFleet) {
  const auto via_run_fleet =
      run_fleet(mini_fleet(), sweep_projects(3, 25, 3 * 64, 0.5, 0xFEEDu));
  const auto via_fleet_run = mini_run()->finish();
  EXPECT_TRUE(same_fleet(via_run_fleet, via_fleet_run));
  EXPECT_FALSE(via_fleet_run.dispatches.empty());
}

// The core contract: fork the whole fleet at a mid boundary, drain both
// sides, get the same answer as never having forked.
TEST(FleetFork, ForkMatchesUnforkedAtSeveralTimes) {
  const auto scratch = mini_run()->finish();
  for (const SimTime t0 : {kSpan / 4, kSpan / 2, kSpan / 4 * 3}) {
    auto prefix = mini_run();
    prefix->run_until(t0);
    auto forked = prefix->fork();
    // Fork finishes first: its result must not depend on the source's
    // subsequent progress.
    EXPECT_TRUE(same_fleet(forked->finish(), scratch)) << "fork @" << t0;
    EXPECT_TRUE(same_fleet(prefix->finish(), scratch)) << "source @" << t0;
  }
}

// Knob-at-boundary equivalence: a fork that flips the routing policy at
// its boundary equals a scratch FleetRun advanced to the same boundary
// with the same setter applied there.
TEST(FleetFork, PolicyKnobAtBoundaryMatchesScratch) {
  const SimTime t0 = kSpan / 2;
  auto prefix = mini_run();
  prefix->run_until(t0);
  auto forked = prefix->fork();
  forked->set_policy(BrokerPolicy::kRoundRobin);
  const auto via_fork = forked->finish();

  auto scratch = mini_run();
  scratch->run_until(t0);
  scratch->set_policy(BrokerPolicy::kRoundRobin);
  const auto via_scratch = scratch->finish();

  EXPECT_TRUE(same_fleet(via_fork, via_scratch));
}

TEST(FleetFork, QuotaKnobAtBoundaryMatchesScratch) {
  const SimTime t0 = kSpan / 2;
  auto prefix = mini_run();
  prefix->run_until(t0);
  auto forked = prefix->fork();
  for (std::size_t p = 0; p < 3; ++p) forked->set_project_quota(p, 32);
  const auto via_fork = forked->finish();

  auto scratch = mini_run();
  scratch->run_until(t0);
  for (std::size_t p = 0; p < 3; ++p) scratch->set_project_quota(p, 32);
  const auto via_scratch = scratch->finish();

  EXPECT_TRUE(same_fleet(via_fork, via_scratch));
}

// A SweepRunner over whole-fleet forks: results identical at 1, 2 and 8
// sweep threads, and each point identical to its scratch twin.
TEST(FleetFork, SweepRunnerOverFleetIsThreadInvariant) {
  const BrokerPolicy policies[] = {BrokerPolicy::kBestFit,
                                   BrokerPolicy::kRoundRobin,
                                   BrokerPolicy::kLeastLoaded};
  const SimTime t0 = kSpan / 2;
  const auto finish = [&](FleetRun& run, std::size_t i) {
    run.set_policy(policies[i]);
    return run.finish();
  };
  core::SweepRunner<FleetRun> sweep(
      std::size(policies), [](std::size_t) { return mini_run(); });
  sweep.set_threads(1);
  const auto v = sweep.run_verified(t0, finish, same_fleet);
  EXPECT_TRUE(v.equal);
  sweep.set_threads(2);
  const auto r2 = sweep.run_forked(t0, finish);
  sweep.set_threads(8);
  const auto r8 = sweep.run_forked(t0, finish);
  for (std::size_t i = 0; i < std::size(policies); ++i) {
    EXPECT_TRUE(same_fleet(v.forked[i], r2[i])) << "point " << i;
    EXPECT_TRUE(same_fleet(v.forked[i], r8[i])) << "point " << i;
  }
}

// Batched deliveries: every delivered job arrives inside a packed span,
// spans carry more than one job on average (the message-batching win),
// and a forked fleet sees the same delivery stream as its source.
TEST(FleetFork, DeliveriesArriveBatched) {
  auto run = mini_run();
  run->run_until(kSpan / 2);
  auto forked = run->fork();
  (void)forked->finish();
  (void)run->finish();

  std::size_t delivered = 0, batches = 0;
  std::size_t delivered_f = 0, batches_f = 0;
  for (std::size_t m = 0; m < run->machine_count(); ++m) {
    delivered += run->machine(m).port_stats().delivered;
    batches += run->machine(m).delivery_batches();
    delivered_f += forked->machine(m).port_stats().delivered;
    batches_f += forked->machine(m).delivery_batches();
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(batches, 0u);
  EXPECT_LE(batches, delivered);  // a span never holds fewer than one job
  EXPECT_EQ(delivered, delivered_f);
  EXPECT_EQ(batches, batches_f);
}

}  // namespace
}  // namespace istc::grid
