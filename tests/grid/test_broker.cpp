// Broker safety properties, from both ends of the link (the machine's
// PortStats and the broker's ProjectLedger):
//   - no dispatch ever lands on a machine without the free CPUs for it;
//   - per-project quotas are never exceeded, even transiently (peak
//     in-flight CPUs is tracked at dispatch);
//   - job conservation — every materialized job is eventually completed
//     or abandoned, mirroring the fault layer's kill accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grid/broker.hpp"
#include "grid/fleet.hpp"
#include "util/rng.hpp"

namespace istc::grid {
namespace {

constexpr SimTime kSpan = 6000;

std::vector<workload::Job> busy_natives(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<workload::Job> jobs;
  SimTime submit = 0;
  for (workload::JobId id = 0; id < 80; ++id) {
    submit += static_cast<SimTime>(rng.below(100));
    workload::Job j;
    j.id = id;
    j.submit = submit;
    j.cpus = 1 + static_cast<int>(rng.below(48));
    j.runtime = 30 + static_cast<Seconds>(rng.below(500));
    j.estimate = j.runtime * (1 + static_cast<Seconds>(rng.below(3)));
    j.user = static_cast<workload::UserId>(rng.below(4));
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<MachineSetup> test_fleet() {
  std::vector<MachineSetup> fleet;
  for (std::uint64_t seed : {7ull, 8ull}) {
    MachineSetup setup;
    setup.name = "broker-mini-" + std::to_string(seed);
    setup.spec = {.name = setup.name, .site = "", .queue_system = "",
                  .cpus = 64, .clock_ghz = 1.0};
    setup.natives = workload::JobLog(busy_natives(seed));
    setup.span = kSpan;
    setup.bounce_patience = 300;
    fleet.push_back(std::move(setup));
  }
  return fleet;
}

std::vector<GridProjectSpec> test_projects() {
  std::vector<GridProjectSpec> projects;
  GridProjectSpec a;
  a.name = "narrow";
  a.cpus_per_job = 4;
  a.work_per_cpu = 90.0 * cluster::kGiga;
  a.jobs = 30;
  a.share = 2.0;
  a.quota_cpus = 16;  // tight: at most 4 jobs in flight
  projects.push_back(a);
  GridProjectSpec b;
  b.name = "wide";
  b.cpus_per_job = 32;
  b.work_per_cpu = 200.0 * cluster::kGiga;
  b.jobs = 12;
  b.share = 1.0;
  b.quota_cpus = 64;
  projects.push_back(b);
  GridProjectSpec c;
  c.name = "late";
  c.cpus_per_job = 8;
  c.work_per_cpu = 120.0 * cluster::kGiga;
  c.jobs = 15;
  c.submit_time = 2000;
  projects.push_back(c);
  return projects;
}

FleetResult run_property_fleet(BrokerPolicy policy) {
  FleetConfig cfg;
  cfg.broker.policy = policy;
  return run_fleet(test_fleet(), test_projects(), cfg);
}

TEST(Broker, PolicyNamesRoundTrip) {
  for (const auto p : {BrokerPolicy::kBestFit, BrokerPolicy::kRoundRobin,
                       BrokerPolicy::kLeastLoaded}) {
    const auto parsed = parse_broker_policy(broker_policy_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_broker_policy("first-fit").has_value());
  EXPECT_FALSE(parse_broker_policy("").has_value());
}

TEST(Broker, DispatchesNeverExceedMachineCapacity) {
  const auto result = run_property_fleet(BrokerPolicy::kBestFit);
  ASSERT_FALSE(result.dispatches.empty());
  for (const auto& d : result.dispatches) {
    EXPECT_GE(d.free_at_dispatch, d.cpus)
        << "gid " << d.gid << " on machine " << d.machine;
    EXPECT_GE(d.machine, 0);
    EXPECT_LT(static_cast<std::size_t>(d.machine), result.machines.size());
    EXPECT_LE(d.cpus,
              result.machines[static_cast<std::size_t>(d.machine)]
                  .run.machine.cpus);
  }
}

TEST(Broker, QuotasNeverExceeded) {
  const auto result = run_property_fleet(BrokerPolicy::kBestFit);
  for (std::size_t p = 0; p < result.projects.size(); ++p) {
    const int quota = result.projects[p].quota_cpus;
    if (quota <= 0) continue;
    EXPECT_LE(result.ledgers[p].peak_inflight_cpus, quota)
        << result.projects[p].name;
    EXPECT_GT(result.ledgers[p].peak_inflight_cpus, 0)
        << result.projects[p].name << " never dispatched";
  }
}

TEST(Broker, EveryMaterializedJobIsAccounted) {
  for (const auto policy :
       {BrokerPolicy::kBestFit, BrokerPolicy::kRoundRobin,
        BrokerPolicy::kLeastLoaded}) {
    const auto result = run_property_fleet(policy);
    std::size_t port_completed = 0, port_bounced = 0, port_killed = 0;
    for (const auto& m : result.machines) {
      port_completed += m.port.completed;
      port_bounced += m.port.bounced;
      port_killed += m.port.killed;
    }
    std::size_t completed = 0, bounced = 0, killed = 0;
    for (std::size_t p = 0; p < result.projects.size(); ++p) {
      const auto& led = result.ledgers[p];
      EXPECT_EQ(led.materialized, result.projects[p].jobs);
      // run_fleet asserts broker.done(): nothing queued or in flight, so
      // conservation closes to completed + abandoned.
      EXPECT_EQ(led.materialized, led.completed + led.abandoned())
          << result.projects[p].name << " under "
          << broker_policy_name(policy);
      EXPECT_EQ(led.inflight_jobs, 0u);
      EXPECT_EQ(led.inflight_cpus, 0);
      completed += led.completed;
      bounced += led.bounced;
      killed += led.killed;
    }
    // Both ends of the link agree event-by-event.
    EXPECT_EQ(completed, port_completed);
    EXPECT_EQ(bounced, port_bounced);
    EXPECT_EQ(killed, port_killed);
  }
}

TEST(Broker, AllPoliciesCompleteTheSweep) {
  for (const auto policy :
       {BrokerPolicy::kBestFit, BrokerPolicy::kRoundRobin,
        BrokerPolicy::kLeastLoaded}) {
    const auto result = run_property_fleet(policy);
    std::size_t completed = 0, materialized = 0;
    for (const auto& led : result.ledgers) {
      completed += led.completed;
      materialized += led.materialized;
    }
    EXPECT_EQ(materialized, 57u);
    // The miniature fleet has ample post-span idle: nothing should be
    // abandoned under any policy.
    EXPECT_EQ(completed, materialized)
        << "under " << broker_policy_name(policy);
  }
}

TEST(Broker, UnplaceableJobsAreAbandonedNotStuck) {
  auto projects = test_projects();
  GridProjectSpec giant;
  giant.name = "giant";
  giant.cpus_per_job = 4096;  // wider than any machine in the fleet
  giant.work_per_cpu = 60.0 * cluster::kGiga;
  giant.jobs = 3;
  projects.push_back(giant);
  const auto result = run_fleet(test_fleet(), std::move(projects), {});
  const auto& led = result.ledgers.back();
  EXPECT_EQ(led.abandoned_unplaceable, 3u);
  EXPECT_EQ(led.completed, 0u);
}

TEST(Broker, ConsumedAtLeastHarvested) {
  const auto result = run_property_fleet(BrokerPolicy::kBestFit);
  for (const auto& led : result.ledgers) {
    EXPECT_GE(led.consumed_cpu_sec, led.harvested_cpu_sec);
  }
}

}  // namespace
}  // namespace istc::grid
