// The federated-fleet determinism contract, in three layers:
//   1. a single-machine grid in local-driver mode IS the existing
//      single-machine stack — it must reproduce the golden schedule hash
//      pinned by trace/test_determinism.cpp;
//   2. epoch slicing is invisible — a heartbeat-sliced run leaves the same
//      hash as an unsliced one (advance() never moves the clock past a
//      processed event);
//   3. sharding is invisible — the fleet hash is bit-identical at 1, 2 and
//      8 shard threads (the conservative-sync argument in fleet.hpp).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grid/fleet.hpp"
#include "sched/resource_profile.hpp"
#include "util/rng.hpp"

namespace istc::grid {
namespace {

constexpr SimTime kSpan = 6000;
constexpr std::uint64_t kScheduleGolden = 0x4cb3857a75f8d6bfull;

// The exact miniature of trace/test_determinism.cpp, expressed as a
// MachineSetup: same machine, downtime, policy, native log, interstitial
// stream, and first interstitial id.
std::vector<workload::Job> random_natives(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<workload::Job> jobs;
  SimTime submit = 0;
  for (workload::JobId id = 0; id < 150; ++id) {
    submit += static_cast<SimTime>(rng.below(80));
    workload::Job j;
    j.id = id;
    j.submit = submit;
    j.cpus = 1 + static_cast<int>(rng.below(32));
    j.runtime = 20 + static_cast<Seconds>(rng.below(400));
    j.estimate = j.runtime * (1 + static_cast<Seconds>(rng.below(4)));
    j.user = static_cast<workload::UserId>(rng.below(5));
    jobs.push_back(j);
  }
  return jobs;
}

MachineSetup miniature_setup(std::uint64_t seed) {
  MachineSetup setup;
  setup.spec = {.name = "determinism-mini", .site = "", .queue_system = "",
                .cpus = 64, .clock_ghz = 1.0};
  setup.downtime = cluster::DowntimeCalendar({{2000, 2400}, {4500, 4800}});
  setup.policy.preempt_interstitial = true;
  setup.natives = workload::JobLog(random_natives(seed));
  setup.span = kSpan;
  core::ProjectSpec spec = core::ProjectSpec::continual_stream(8, 120, kSpan);
  spec.recovery = core::PreemptionRecovery::kCheckpoint;
  setup.local_project = spec;
  setup.first_interstitial_id = 10000;
  return setup;
}

TEST(FleetDeterminism, SingleMachineLocalModeMatchesGolden) {
  GridMachine m(miniature_setup(42));
  m.drain();
  EXPECT_EQ(hash_run(m.take_result()), kScheduleGolden);
}

TEST(FleetDeterminism, GoldenHashUnchangedWithHoleIndexForced) {
  // The segment-tree hole index is a pure accelerator: forcing it on for
  // every profile (threshold 1) must still land on the golden schedule.
  const std::size_t saved = sched::ResourceProfile::default_index_threshold();
  sched::ResourceProfile::set_default_index_threshold(1);
  GridMachine m(miniature_setup(42));
  m.drain();
  sched::ResourceProfile::set_default_index_threshold(saved);
  EXPECT_EQ(hash_run(m.take_result()), kScheduleGolden);
}

TEST(FleetDeterminism, FleetLoopWithNoProjectsMatchesGolden) {
  // Through run_fleet (which just drains when the broker has nothing).
  std::vector<MachineSetup> fleet;
  fleet.push_back(miniature_setup(42));
  const auto result = run_fleet(std::move(fleet), {});
  ASSERT_EQ(result.machines.size(), 1u);
  EXPECT_EQ(result.machines[0].hash, kScheduleGolden);
}

TEST(FleetDeterminism, HeartbeatSlicingIsInvisible) {
  // Force boundaries every 500 s; the sliced machine must still land on
  // the unsliced golden — including sim_end, the part a run(until)-style
  // advance would corrupt.
  std::vector<MachineSetup> fleet;
  fleet.push_back(miniature_setup(42));
  FleetConfig cfg;
  cfg.heartbeat = 500;
  const auto result = run_fleet(std::move(fleet), {}, cfg);
  EXPECT_GT(result.epochs, 5u);
  EXPECT_EQ(result.machines[0].hash, kScheduleGolden);
}

std::vector<GridProjectSpec> test_projects(int fleet_cpus) {
  return sweep_projects(3, 25, fleet_cpus, 0.5, 0xFEEDu);
}

std::uint64_t fleet_hash_at(std::size_t threads) {
  std::vector<MachineSetup> fleet;
  for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
    auto setup = miniature_setup(seed);
    setup.name = "mini-" + std::to_string(seed);
    setup.local_project.reset();  // brokered mode
    setup.bounce_patience = 300;
    fleet.push_back(std::move(setup));
  }
  FleetConfig cfg;
  cfg.threads = threads;
  const auto result =
      run_fleet(std::move(fleet), test_projects(3 * 64), cfg);
  // The sweep must actually place work for the hash to mean anything.
  EXPECT_FALSE(result.dispatches.empty());
  return result.hash;
}

TEST(FleetDeterminism, ShardThreadCountIsInvisible) {
  const std::uint64_t h1 = fleet_hash_at(1);
  const std::uint64_t h2 = fleet_hash_at(2);
  const std::uint64_t h8 = fleet_hash_at(8);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
}

TEST(FleetDeterminism, RepeatedRunsAreBitIdentical) {
  EXPECT_EQ(fleet_hash_at(2), fleet_hash_at(2));
}

TEST(FleetDeterminism, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace istc::grid
