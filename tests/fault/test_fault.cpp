#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/driver.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

// Unit and miniature tests for the unplanned-failure layer: fail_capacity
// kill/repair mechanics, the injector's native resubmission, the driver's
// retry / checkpoint accounting, and determinism of faulty runs.

namespace istc::fault {
namespace {

cluster::Machine machine_of(int cpus) {
  return cluster::Machine({.name = "m", .site = "", .queue_system = "",
                           .cpus = cpus, .clock_ghz = 1.0},
                          {});
}

sched::PolicySpec easy() {
  sched::PolicySpec p;
  p.fairshare.age_weight_per_hour = 0.0;
  return p;
}

workload::Job native(workload::JobId id, SimTime submit, int cpus,
                     Seconds run, Seconds est = 0) {
  workload::Job j;
  j.id = id;
  j.submit = submit;
  j.cpus = cpus;
  j.runtime = run;
  j.estimate = est ? est : run;
  return j;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_run(const sched::RunResult& run) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto* list : {&run.records, &run.killed}) {
    for (const auto& r : *list) {
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.cpus));
    }
  }
  h = fnv1a_u64(h, static_cast<std::uint64_t>(run.sim_end));
  return h;
}

TEST(FaultSpec, DefaultIsInert) {
  FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  spec.check();  // a disabled spec needs no stop bound
}

TEST(FaultSpec, EnabledNeedsFiniteStop) {
  FaultSpec spec;
  spec.crash_mtbf = kSecondsPerWeek;
  EXPECT_TRUE(spec.enabled());
#ifdef GTEST_HAS_DEATH_TEST
  EXPECT_DEATH(spec.check(), "");
#endif
  spec.stop = 30 * kSecondsPerDay;
  spec.check();
}

// fail_capacity kills youngest-first (natives included), fires the kill
// hook exactly once per killed record, and gives the CPUs back at repair.
TEST(FailCapacity, KillsYoungestFirstAndRepairs) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), easy());
  s.submit(native(0, 0, 4, 200));
  s.submit(native(1, 0, 3, 200));
  s.submit(native(2, 10, 3, 200));

  std::vector<workload::JobId> hook_kills;
  s.set_kill_hook([&](const sched::JobRecord& r, sched::KillReason reason) {
    EXPECT_EQ(reason, sched::KillReason::kNodeFailure);
    hook_kills.push_back(r.job.id);
  });

  std::vector<sched::JobRecord> victims;
  eng.schedule(50, [&] {
    victims = s.fail_capacity(5, 100, sched::KillReason::kNodeFailure);
    EXPECT_EQ(s.failed_cpus(), 5);
  });
  bool checked_mid_outage = false;
  eng.schedule(70, [&] {
    EXPECT_EQ(s.failed_cpus(), 5);
    checked_mid_outage = true;
  });
  eng.run();

  // Free pool was 0; killing job 2 (start 10, youngest) frees 3 < 5, so
  // job 1 (same start as 0 but higher id) dies too.  Job 0 survives.
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0].job.id, 2u);
  EXPECT_EQ(victims[1].job.id, 1u);
  EXPECT_EQ(victims[0].end, 50);
  EXPECT_EQ(hook_kills, (std::vector<workload::JobId>{2, 1}));
  EXPECT_TRUE(checked_mid_outage);
  EXPECT_EQ(s.failed_cpus(), 0);  // repaired at t=100

  const auto run = s.take_result(1000);
  ASSERT_EQ(run.records.size(), 1u);
  EXPECT_EQ(run.records[0].job.id, 0u);
  EXPECT_EQ(run.records[0].end, 200);
  ASSERT_EQ(run.killed.size(), 2u);
}

TEST(FailCapacity, SpareCpusAbsorbOutageWithoutKills) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), easy());
  s.submit(native(0, 0, 4, 200));
  int hook_fired = 0;
  s.set_kill_hook(
      [&](const sched::JobRecord&, sched::KillReason) { ++hook_fired; });
  std::size_t victims = 99;
  eng.schedule(50, [&] {
    victims = s.fail_capacity(6, 100, sched::KillReason::kNodeFailure).size();
  });
  eng.run();
  EXPECT_EQ(victims, 0u);
  EXPECT_EQ(hook_fired, 0);
  const auto run = s.take_result(1000);
  EXPECT_EQ(run.records.size(), 1u);
  EXPECT_EQ(run.killed.size(), 0u);
}

// The injector resubmits a crash-killed native with its original estimate;
// the rerun completes after repair under a fresh id (a reused id would let
// the dead original's stale finish event complete the replacement early).
TEST(FaultInjector, CrashedNativeIsResubmittedAndReruns) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), easy());
  s.submit(native(7, 0, 10, 500));

  FaultSpec spec;
  spec.seed = 3;
  spec.crash_mtbf = 1;
  spec.crash_repair = 50;
  spec.start = 100;
  spec.stop = 110;
  FaultInjector injector(s, spec);
  ASSERT_GE(injector.scheduled_faults(), 1u);

  eng.run();
  const auto run = s.take_result(1000);

  EXPECT_EQ(injector.stats().crashes, injector.scheduled_faults());
  EXPECT_EQ(injector.stats().native_kills, 1u);
  EXPECT_EQ(injector.stats().native_resubmits, 1u);
  ASSERT_EQ(run.killed.size(), 1u);
  EXPECT_EQ(run.killed[0].job.id, 7u);
  EXPECT_GT(injector.stats().native_cpu_seconds_lost, 0.0);

  ASSERT_EQ(run.records.size(), 1u);
  const auto& rerun = run.records[0];
  EXPECT_GE(rerun.job.id, 0xF0000000u);  // fresh id, not 7
  EXPECT_EQ(rerun.job.cpus, 10);
  EXPECT_EQ(rerun.job.runtime, 500);              // restart from scratch
  EXPECT_EQ(rerun.end - rerun.start, 500);
  EXPECT_GT(rerun.start, run.killed[0].end);      // after the repair
}

// Driver retry with checkpointing: runtime 100, checkpoint every 30 s,
// killed at t=50 -> 30 s survive, 20 s are lost, and a 70 s remainder is
// resubmitted once the 10 s backoff expires.
TEST(FaultRetry, CheckpointRetryResubmitsRemainder) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), easy());
  trace::Tracer tracer(trace::TraceMode::kCountersOnly);
  s.set_tracer(&tracer);

  core::ProjectSpec spec = core::ProjectSpec::paper(1, 10, 100);
  spec.fault_retry.max_retries = 3;
  spec.fault_retry.backoff = 10;
  spec.fault_retry.checkpoint_interval = 30;
  core::InterstitialDriver driver(s, spec, 1000);

  eng.schedule(50, [&] {
    s.fail_capacity(10, 55, sched::KillReason::kMachineCrash);
  });
  eng.run();
  const auto run = s.take_result(1000);

  ASSERT_EQ(run.killed.size(), 1u);
  EXPECT_EQ(run.killed[0].end - run.killed[0].start, 50);
  ASSERT_EQ(run.records.size(), 1u);
  EXPECT_EQ(run.records[0].job.runtime, 70);  // remainder only
  EXPECT_EQ(run.records[0].start, 60);        // kill + backoff
  EXPECT_EQ(run.records[0].end, 130);

  EXPECT_EQ(driver.kills_observed(), 1u);
  EXPECT_EQ(driver.retries_exhausted(), 0u);
  EXPECT_EQ(driver.fault_retries_pending(), 0u);
  const auto& c = run.trace;
  EXPECT_EQ(c.fault_cpu_sec_lost, 10u * 20u);
  EXPECT_EQ(c.fault_cpu_sec_recovered, 10u * 30u);
  EXPECT_EQ(c.fault_retries, 1u);
  EXPECT_EQ(c.fault_retries_exhausted, 0u);
}

TEST(FaultRetry, ZeroRetriesAbandonsTheLineage) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), easy());
  trace::Tracer tracer(trace::TraceMode::kCountersOnly);
  s.set_tracer(&tracer);

  core::ProjectSpec spec = core::ProjectSpec::paper(1, 10, 100);
  spec.fault_retry.max_retries = 0;
  core::InterstitialDriver driver(s, spec, 1000);

  eng.schedule(50, [&] {
    s.fail_capacity(10, 55, sched::KillReason::kNodeFailure);
  });
  eng.run();
  const auto run = s.take_result(1000);

  EXPECT_EQ(run.records.size(), 0u);  // nothing ever completes
  ASSERT_EQ(run.killed.size(), 1u);
  EXPECT_EQ(driver.retries_exhausted(), 1u);
  EXPECT_EQ(driver.fault_retries_pending(), 0u);
  EXPECT_EQ(run.trace.fault_retries_exhausted, 1u);
  // No checkpointing: the whole 50 executed seconds are lost.
  EXPECT_EQ(run.trace.fault_cpu_sec_lost, 10u * 50u);
  EXPECT_EQ(run.trace.fault_cpu_sec_recovered, 0u);
}

// The satellite accounting miniature: a continual stream under repeated
// node failures.  Every killed record's occupied cpu-time must be fully
// classified as lost or recovered-by-checkpoint (useful + lost + recovered
// = occupied), and the kill hook (observed via the driver) fires exactly
// once per killed record.
TEST(FaultAccounting, CpuTimeConservesAcrossKills) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(20), easy());
  trace::Tracer tracer(trace::TraceMode::kCountersOnly);
  s.set_tracer(&tracer);

  core::ProjectSpec spec = core::ProjectSpec::continual_stream(5, 60, 4000);
  spec.fault_retry.max_retries = 2;
  spec.fault_retry.backoff = 15;
  spec.fault_retry.checkpoint_interval = 25;
  core::InterstitialDriver driver(s, spec, 1000);

  FaultSpec faults;
  faults.seed = 11;
  faults.node_mtbf = 300;
  faults.node_repair = 100;
  faults.node_cpus = 7;
  faults.stop = 4000;
  FaultInjector injector(s, faults);
  ASSERT_GT(injector.scheduled_faults(), 5u);

  eng.run();
  const auto run = s.take_result(4000);

  ASSERT_GT(run.killed.size(), 0u);
  ASSERT_GT(run.records.size(), 0u);
  EXPECT_EQ(driver.kills_observed(), run.killed.size());
  EXPECT_EQ(injector.stats().interstitial_kills, run.killed.size());
  EXPECT_EQ(injector.stats().native_kills, 0u);

  std::uint64_t occupied_by_killed = 0;
  double useful = 0;
  for (const auto& r : run.killed) {
    EXPECT_TRUE(r.interstitial());
    occupied_by_killed += static_cast<std::uint64_t>(r.job.cpus) *
                          static_cast<std::uint64_t>(r.end - r.start);
  }
  for (const auto& r : run.records) {
    EXPECT_EQ(r.end - r.start, r.job.runtime);
    useful += r.cpu_seconds();
  }
  const auto& c = run.trace;
  // Occupied cpu-time of killed jobs splits exactly into lost work and
  // checkpoint-recovered work; completed jobs are the useful remainder.
  EXPECT_EQ(c.fault_cpu_sec_lost + c.fault_cpu_sec_recovered,
            occupied_by_killed);
  EXPECT_GT(c.fault_cpu_sec_recovered, 0u);
  EXPECT_GT(useful, 0.0);
  EXPECT_EQ(c.fault_killed_interstitial, run.killed.size());
  EXPECT_EQ(c.faults_injected, injector.scheduled_faults());
}

sched::RunResult faulty_miniature(std::uint64_t fault_seed,
                                  bool attach_injector = true) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(20), easy());
  s.submit(native(0, 0, 8, 900));
  s.submit(native(1, 300, 12, 400));
  core::ProjectSpec spec = core::ProjectSpec::continual_stream(5, 60, 3000);
  spec.fault_retry.checkpoint_interval = 25;
  core::InterstitialDriver driver(s, spec, 1000);
  FaultSpec faults;
  faults.seed = fault_seed;
  if (attach_injector) {
    faults.crash_mtbf = 900;
    faults.node_mtbf = 450;
    faults.node_cpus = 6;
    faults.node_repair = 120;
    faults.crash_repair = 200;
    faults.stop = 3000;
  }
  std::optional<FaultInjector> injector;
  if (faults.enabled()) injector.emplace(s, faults);
  eng.run();
  return s.take_result(3000);
}

TEST(FaultDeterminism, SameSeedSameSchedule) {
  const auto a = faulty_miniature(5);
  const auto b = faulty_miniature(5);
  EXPECT_EQ(hash_run(a), hash_run(b));
  EXPECT_GT(a.killed.size(), 0u);
}

TEST(FaultDeterminism, DifferentSeedDifferentSchedule) {
  EXPECT_NE(hash_run(faulty_miniature(5)), hash_run(faulty_miniature(6)));
}

TEST(FaultDeterminism, DisabledSpecMatchesFaultFreeRun) {
  // A disabled FaultSpec schedules nothing: bit-identical to no injector.
  const auto off = faulty_miniature(5, /*attach_injector=*/false);
  EXPECT_EQ(off.killed.size(), 0u);
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(20), easy());
  s.submit(native(0, 0, 8, 900));
  s.submit(native(1, 300, 12, 400));
  core::ProjectSpec spec = core::ProjectSpec::continual_stream(5, 60, 3000);
  spec.fault_retry.checkpoint_interval = 25;
  core::InterstitialDriver driver(s, spec, 1000);
  eng.run();
  EXPECT_EQ(hash_run(s.take_result(3000)), hash_run(off));
}

}  // namespace
}  // namespace istc::fault
