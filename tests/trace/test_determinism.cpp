// The trace contract that makes traces diffable artifacts: events are
// keyed by (SimTime, seq) exactly like the simulator's event heap, wall
// clock readings never enter the event stream, and exporters sort before
// writing.  Two runs with the same seed must therefore produce
// byte-identical JSONL — and attaching a tracer must not perturb the
// schedule at all.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/downtime.hpp"
#include "core/driver.hpp"
#include "metrics/report.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"

namespace istc::trace {
namespace {

// A miniature that exercises every event kind: downtime calendar
// (downtime_begin/end), native churn with overestimates (submit, start,
// finish, reservations made/honored/violated, fair-share recomputes),
// a continual interstitial stream behind the gate (gate_decision,
// rejected-by-gate), and native preemption with checkpoint recovery
// (job_kill).
constexpr SimTime kSpan = 6000;

std::vector<workload::Job> random_natives(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<workload::Job> jobs;
  SimTime submit = 0;
  for (workload::JobId id = 0; id < 150; ++id) {
    submit += static_cast<SimTime>(rng.below(80));
    workload::Job j;
    j.id = id;
    j.submit = submit;
    j.cpus = 1 + static_cast<int>(rng.below(32));
    j.runtime = 20 + static_cast<Seconds>(rng.below(400));
    // Paper-style overestimates, occasionally accurate.
    j.estimate = j.runtime * (1 + static_cast<Seconds>(rng.below(4)));
    j.user = static_cast<workload::UserId>(rng.below(5));
    jobs.push_back(j);
  }
  return jobs;
}

sched::RunResult run_miniature(
    std::uint64_t seed, Tracer* tracer,
    sim::QueueImpl impl = sim::QueueImpl::kCalendar,
    metrics::RunMetrics* metrics = nullptr) {
  sim::Engine eng(impl);
  cluster::DowntimeCalendar cal({{2000, 2400}, {4500, 4800}});
  cluster::Machine machine(
      {.name = "determinism-mini", .site = "", .queue_system = "",
       .cpus = 64, .clock_ghz = 1.0},
      cal);
  sched::PolicySpec policy;  // priority + EASY backfill + fair share
  policy.preempt_interstitial = true;
  sched::BatchScheduler s(eng, machine, policy);
  if (tracer != nullptr) s.set_tracer(tracer);
  for (const auto& j : random_natives(seed)) s.submit(j);
  core::ProjectSpec spec = core::ProjectSpec::continual_stream(8, 120, kSpan);
  spec.recovery = core::PreemptionRecovery::kCheckpoint;
  core::InterstitialDriver driver(s, spec, 10000);
  if (metrics != nullptr) metrics->attach(eng, s, kSpan);
  eng.run();
  return s.take_result(kSpan);
}

std::string jsonl_of(std::uint64_t seed,
                     sim::QueueImpl impl = sim::QueueImpl::kCalendar) {
  Tracer tracer(TraceMode::kFull, 4u << 20);
  run_miniature(seed, &tracer, impl);
  EXPECT_EQ(tracer.dropped(), 0u);
  std::ostringstream out;
  write_jsonl(out, tracer);
  return out.str();
}

TEST(TraceDeterminism, SameSeedProducesByteIdenticalJsonl) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  const std::string a = jsonl_of(42);
  const std::string b = jsonl_of(42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The miniature must actually exercise the interesting kinds, or the
  // byte-compare proves less than it claims.
  for (const char* kind :
       {"job_submit", "job_start", "job_finish", "job_kill",
        "reservation_made", "gate_decision", "fairshare_recompute",
        "downtime_begin", "downtime_end"}) {
    EXPECT_NE(a.find(std::string("\"kind\":\"") + kind + "\""),
              std::string::npos)
        << kind;
  }
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_run(const sched::RunResult& run) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : run.records) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.cpus));
  }
  for (const auto& r : run.killed) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
  }
  h = fnv1a_u64(h, static_cast<std::uint64_t>(run.sim_end));
  return h;
}

std::uint64_t hash_str(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Golden pins: FNV-1a hashes of the miniature's schedule and JSONL trace.
// These freeze the simulator's observable behavior across refactors — a
// change here is a behavior change, not noise, and needs the same scrutiny
// as a changed experiment table.  Regenerate by printing hash_run /
// hash_str on the values below after an intentional change.
TEST(TraceDeterminism, MiniatureScheduleMatchesGolden) {
  const auto run = run_miniature(42, nullptr);
  EXPECT_EQ(hash_run(run), 0x4cb3857a75f8d6bfull);
}

TEST(TraceDeterminism, MiniatureJsonlMatchesGolden) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  EXPECT_EQ(hash_str(jsonl_of(42)), 0x36432d51afb41bcaull);
}

// The calendar queue (the default above), the typed binary heap, and the
// legacy std::function queue implement the same (time, seq) contract, so
// all three must hit the same golden pins: the queue knob changes
// representation cost, never behavior.
TEST(TraceDeterminism, BinaryHeapQueueMatchesScheduleGolden) {
  const auto run = run_miniature(42, nullptr, sim::QueueImpl::kBinaryHeap);
  EXPECT_EQ(hash_run(run), 0x4cb3857a75f8d6bfull);
}

TEST(TraceDeterminism, BinaryHeapQueueMatchesJsonlGolden) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  EXPECT_EQ(hash_str(jsonl_of(42, sim::QueueImpl::kBinaryHeap)),
            0x36432d51afb41bcaull);
}

TEST(TraceDeterminism, LegacyQueueMatchesScheduleGolden) {
  const auto run = run_miniature(42, nullptr, sim::QueueImpl::kLegacy);
  EXPECT_EQ(hash_run(run), 0x4cb3857a75f8d6bfull);
}

TEST(TraceDeterminism, LegacyQueueMatchesJsonlGolden) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  EXPECT_EQ(hash_str(jsonl_of(42, sim::QueueImpl::kLegacy)),
            0x36432d51afb41bcaull);
}

TEST(TraceDeterminism, EngineEventCoreGaugesReachSummary) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  // The engine mirrors its event-core gauges (queue high-water mark,
  // largest same-timestamp batch, scheduled-by-kind tallies) into the
  // counting tracer once per drained timestep.
  Tracer tracer(TraceMode::kCountersOnly);
  run_miniature(42, &tracer);
  const auto& s = tracer.summary();
  EXPECT_GT(s.engine_peak_queue_depth, 0u);
  EXPECT_GT(s.engine_max_timestep_batch, 0u);
  // The miniature schedules every typed kind: 150 native submits, a
  // finish per started job, and a wake per scheduler arm.
  EXPECT_EQ(s.engine_events_job_submit, 150u);
  EXPECT_GT(s.engine_events_job_finish, 0u);
  EXPECT_GT(s.engine_events_wake, 0u);
  // The whole scheduler stack runs on typed events: nothing in the
  // miniature needs the type-erased callback fallback.
  EXPECT_EQ(s.engine_events_callback, 0u);
}

// Telemetry with sampling disabled is a pure observer: the golden
// schedule hash — including sim_end — is untouched.
TEST(TraceDeterminism, MetricsAttachedSamplerOffMatchesGolden) {
  metrics::RunMetrics m;  // default config: interval 0, no sampler
  const auto run = run_miniature(42, nullptr, sim::QueueImpl::kCalendar, &m);
  EXPECT_EQ(hash_run(run), 0x4cb3857a75f8d6bfull);
  EXPECT_EQ(m.sampler(), nullptr);
  m.ingest(run);
  const auto* c = m.registry().find_counter("jobs_native_completed");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, run.native_count());
}

// With the sampler on, sample ticks are hook-transparent in both queue
// modes (the pending sample is a scalar deadline beside the event heap,
// never a heap entry): either way the schedule — every record and
// kill — is bit-identical to the bare run.  Only sim_end may move (the
// engine drains sample ticks out to the sampler stop), which is why this
// compares records rather than the golden hash.
TEST(TraceDeterminism, SamplingIsScheduleNeutral) {
  const auto bare = run_miniature(42, nullptr);
  auto same = [](const sched::JobRecord& x, const sched::JobRecord& y) {
    return x.job.id == y.job.id && x.job.cpus == y.job.cpus &&
           x.job.runtime == y.job.runtime && x.job.submit == y.job.submit &&
           x.start == y.start && x.end == y.end &&
           x.interstitial() == y.interstitial();
  };
  for (const sim::QueueImpl impl :
       {sim::QueueImpl::kCalendar, sim::QueueImpl::kBinaryHeap,
        sim::QueueImpl::kLegacy}) {
    const int mode = static_cast<int>(impl);
    metrics::SamplerConfig cfg;
    cfg.interval = 60;
    metrics::RunMetrics m(cfg);
    const auto sampled = run_miniature(42, nullptr, impl, &m);
    ASSERT_NE(m.sampler(), nullptr);
    // kSpan / 60 ticks, the last exactly on the stop.
    EXPECT_EQ(m.sampler()->rows().size(), 100u) << "impl=" << mode;
    ASSERT_EQ(sampled.records.size(), bare.records.size());
    for (std::size_t i = 0; i < sampled.records.size(); ++i) {
      EXPECT_TRUE(same(sampled.records[i], bare.records[i]))
          << "impl=" << mode << " record " << i;
    }
    ASSERT_EQ(sampled.killed.size(), bare.killed.size());
    for (std::size_t i = 0; i < sampled.killed.size(); ++i) {
      EXPECT_TRUE(same(sampled.killed[i], bare.killed[i]))
          << "impl=" << mode << " kill " << i;
    }
  }
}

// Pass setup is timed into its own slot, so the stage timers partition
// the pass total exactly — no pass microsecond is unattributed.
TEST(TraceDeterminism, StageTimersSumToPassTotal) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  Tracer tracer(TraceMode::kCountersOnly);
  run_miniature(42, &tracer);
  const auto s = tracer.summary();
  ASSERT_GT(s.sched_passes, 0u);
  std::uint64_t sum = s.stage_setup_us;
  for (int i = 0; i < TraceSummary::kNumStages; ++i) sum += s.stage_us[i];
  EXPECT_EQ(sum, s.sched_pass_us_total);
}

TEST(TraceDeterminism, DifferentSeedsProduceDifferentTraces) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  // Sanity that the byte-compare above can discriminate at all.
  EXPECT_NE(jsonl_of(42), jsonl_of(43));
}

TEST(TraceDeterminism, ChromeExportIsDeterministicToo) {
  auto chrome_of = [](std::uint64_t seed) {
    Tracer tracer(TraceMode::kFull, 4u << 20);
    const auto run = run_miniature(seed, &tracer);
    std::ostringstream out;
    write_chrome_trace(out, tracer,
                       {.machine_name = run.machine.name,
                        .total_cpus = run.machine.cpus});
    return out.str();
  };
  EXPECT_EQ(chrome_of(7), chrome_of(7));
}

TEST(TraceDeterminism, TracingObservesButNeverPerturbs) {
  // The schedule with a full tracer attached must be bit-identical to the
  // untraced schedule: same records, same kills, in the same order.
  Tracer tracer(TraceMode::kFull, 4u << 20);
  const auto traced = run_miniature(42, &tracer);
  const auto bare = run_miniature(42, nullptr);

  auto same = [](const sched::JobRecord& x, const sched::JobRecord& y) {
    return x.job.id == y.job.id && x.job.cpus == y.job.cpus &&
           x.job.runtime == y.job.runtime && x.job.submit == y.job.submit &&
           x.start == y.start && x.end == y.end &&
           x.interstitial() == y.interstitial();
  };
  ASSERT_EQ(traced.records.size(), bare.records.size());
  for (std::size_t i = 0; i < traced.records.size(); ++i) {
    EXPECT_TRUE(same(traced.records[i], bare.records[i])) << "record " << i;
  }
  ASSERT_EQ(traced.killed.size(), bare.killed.size());
  for (std::size_t i = 0; i < traced.killed.size(); ++i) {
    EXPECT_TRUE(same(traced.killed[i], bare.killed[i])) << "kill " << i;
  }
  EXPECT_EQ(traced.sim_end, bare.sim_end);

#if ISTC_TRACING_ENABLED
  // And the traced run's summary reflects real work.
  const auto s = tracer.summary();
  EXPECT_GT(s.events_recorded, 0u);
  EXPECT_GT(s.sched_passes, 0u);
  EXPECT_GT(s.gate_decisions, 0u);
#endif
}

}  // namespace
}  // namespace istc::trace
