#include "trace/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace istc::trace {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TraceEvent job_event(EventKind kind, SimTime t, std::int64_t job, int cpus,
                     bool interstitial, SimTime aux = 0,
                     std::int64_t value = 0) {
  TraceEvent e;
  e.time = t;
  e.kind = kind;
  e.job = job;
  e.cpus = cpus;
  e.interstitial = interstitial;
  e.aux_time = aux;
  e.value = value;
  return e;
}

TEST(JsonlExport, FixedFieldOrderPerKind) {
  Tracer tracer;
  tracer.record(
      job_event(EventKind::kJobSubmit, 0, 7, 4, false, 0, /*estimate=*/50));
  tracer.record(job_event(EventKind::kJobStart, 0, 7, 4, false,
                          /*est_end=*/50, /*runtime=*/30));
  TraceEvent gate;
  gate.time = 10;
  gate.kind = EventKind::kGateDecision;
  gate.open = true;
  gate.aux_time = kTimeInfinity;  // empty queue: wall time serializes null
  gate.value = 3;
  tracer.record(gate);
  tracer.record(job_event(EventKind::kJobFinish, 30, 7, 4, false,
                          /*start=*/0));

  std::ostringstream out;
  write_jsonl(out, tracer);
  EXPECT_EQ(out.str(),
            "{\"t\":0,\"seq\":0,\"kind\":\"job_submit\",\"job\":7,"
            "\"class\":\"native\",\"cpus\":4,\"estimate\":50}\n"
            "{\"t\":0,\"seq\":1,\"kind\":\"job_start\",\"job\":7,"
            "\"class\":\"native\",\"cpus\":4,\"runtime\":30,\"est_end\":50}\n"
            "{\"t\":10,\"seq\":2,\"kind\":\"gate_decision\",\"open\":true,"
            "\"wall_time\":null,\"k\":3}\n"
            "{\"t\":30,\"seq\":3,\"kind\":\"job_finish\",\"job\":7,"
            "\"class\":\"native\",\"cpus\":4,\"start\":0}\n");
}

TEST(JsonlExport, GateDecisionWithFiniteWallTime) {
  Tracer tracer;
  TraceEvent gate;
  gate.time = 5;
  gate.kind = EventKind::kGateDecision;
  gate.open = false;
  gate.aux_time = 900;
  gate.value = 2;
  tracer.record(gate);
  std::ostringstream out;
  write_jsonl(out, tracer);
  EXPECT_EQ(out.str(),
            "{\"t\":5,\"seq\":0,\"kind\":\"gate_decision\",\"open\":false,"
            "\"wall_time\":900,\"k\":2}\n");
}

TEST(ChromeExport, JobsLandOnFirstFitCpuBlockTracks) {
  Tracer tracer;
  // Two 4-CPU jobs overlap: blocks 0 and 4.  A third job after the first
  // finishes reuses block 0.
  tracer.record(job_event(EventKind::kJobStart, 0, 1, 4, false, 100, 100));
  tracer.record(job_event(EventKind::kJobStart, 0, 2, 4, true, 100, 100));
  tracer.record(job_event(EventKind::kJobFinish, 100, 1, 4, false, 0));
  tracer.record(job_event(EventKind::kJobStart, 100, 3, 4, false, 200, 100));
  tracer.record(job_event(EventKind::kJobFinish, 200, 2, 4, true, 0));
  tracer.record(job_event(EventKind::kJobFinish, 200, 3, 4, false, 100));

  std::ostringstream out;
  write_chrome_trace(out, tracer, {.machine_name = "m", .total_cpus = 8});
  const std::string s = out.str();

  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(s.find("{\"name\":\"job 1\",\"cat\":\"native\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":100000000,"
                   "\"args\":{\"cpus\":4,\"job\":1}}"),
            std::string::npos);
  EXPECT_NE(s.find("{\"name\":\"job 2\",\"cat\":\"interstitial\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":4,"),
            std::string::npos);
  // Job 3 reuses the block job 1 released.
  EXPECT_NE(s.find("{\"name\":\"job 3\",\"cat\":\"native\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":0,\"ts\":100000000,"),
            std::string::npos);
  // Braces balance (cheap well-formedness check).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}

TEST(ChromeExport, GateAndDowntimeRender) {
  Tracer tracer;
  TraceEvent down;
  down.time = 50;
  down.kind = EventKind::kDowntimeBegin;
  down.aux_time = 80;
  tracer.record(down);
  TraceEvent gate;
  gate.time = 10;
  gate.kind = EventKind::kGateDecision;
  gate.open = false;
  gate.aux_time = 40;
  gate.value = 5;
  tracer.record(gate);

  std::ostringstream out;
  write_chrome_trace(out, tracer, {.machine_name = "m", .total_cpus = 8});
  const std::string s = out.str();
  EXPECT_NE(s.find("\"name\":\"gate closed k=5\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"downtime\""), std::string::npos);
  EXPECT_NE(s.find("\"dur\":30000000"), std::string::npos);
}

TEST(ChromeExport, RunningJobsAtTraceEndStillRender) {
  Tracer tracer;
  tracer.record(job_event(EventKind::kJobStart, 0, 9, 2, false, 500, 500));
  tracer.record(job_event(EventKind::kJobStart, 300, 10, 2, false, 800, 500));
  std::ostringstream out;
  write_chrome_trace(out, tracer, {.machine_name = "m", .total_cpus = 8});
  EXPECT_NE(out.str().find("\"job\":9"), std::string::npos);
  EXPECT_NE(out.str().find("\"job\":10"), std::string::npos);
}

TEST(CountersCsv, HeaderAndRowRoundTrip) {
  const std::string path = ::testing::TempDir() + "/istc_trace_counters.csv";
  TraceSummary s;
  s.events_recorded = 12;
  s.sched_passes = 3;
  s.sched_pass_us_total = 450;
  s.interstitial_rejected_by_gate = 7;
  write_counters_csv(path, s);
  const std::string text = read_all(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("events_recorded,"), std::string::npos);
  EXPECT_NE(text.find("interstitial_rejected_by_gate"), std::string::npos);
  EXPECT_NE(text.find("\n12,0,"), std::string::npos);
}

TEST(CountersCsv, EngineEventCoreColumnsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/istc_engine_counters.csv";
  TraceSummary s;
  s.engine_peak_queue_depth = 321;
  s.engine_max_timestep_batch = 17;
  s.engine_events_callback = 4;
  s.engine_events_job_submit = 150;
  s.engine_events_job_finish = 140;
  s.engine_events_wake = 88;
  s.engine_heap_allocations = 2;
  write_counters_csv(path, s);
  const std::string text = read_all(path);
  std::remove(path.c_str());
  for (const char* col :
       {"engine_peak_queue_depth", "engine_max_timestep_batch",
        "engine_events_callback", "engine_events_job_submit",
        "engine_events_job_finish", "engine_events_wake",
        "engine_heap_allocations"}) {
    EXPECT_NE(text.find(col), std::string::npos) << col;
  }
  // The gauge values land in the row in header order.
  EXPECT_NE(text.find("321,17,4,150,140,88,2"), std::string::npos);
}

}  // namespace
}  // namespace istc::trace
