#include "trace/tracer.hpp"

#include <gtest/gtest.h>

namespace istc::trace {
namespace {

TraceEvent at(SimTime t, EventKind kind = EventKind::kJobStart) {
  TraceEvent e;
  e.time = t;
  e.kind = kind;
  return e;
}

TEST(Tracer, AssignsMonotoneSequenceNumbers) {
  Tracer tracer;
  tracer.record(at(10));
  tracer.record(at(10));
  tracer.record(at(5));
  ASSERT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer[0].seq, 0u);
  EXPECT_EQ(tracer[1].seq, 1u);
  EXPECT_EQ(tracer[2].seq, 2u);
}

TEST(Tracer, SortedEventsOrderByTimeThenSeq) {
  Tracer tracer;
  tracer.record(at(100, EventKind::kDowntimeBegin));  // future, recorded first
  tracer.record(at(5));
  tracer.record(at(5, EventKind::kJobFinish));
  const auto events = tracer.sorted_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 5);
  EXPECT_EQ(events[0].kind, EventKind::kJobStart);
  EXPECT_EQ(events[1].time, 5);
  EXPECT_EQ(events[1].kind, EventKind::kJobFinish);
  EXPECT_EQ(events[2].time, 100);
}

TEST(Tracer, GrowsAcrossChunks) {
  Tracer tracer;
  const std::size_t n = Tracer::kChunkEvents + 100;
  for (std::size_t i = 0; i < n; ++i) {
    tracer.record(at(static_cast<SimTime>(i)));
  }
  ASSERT_EQ(tracer.size(), n);
  EXPECT_EQ(tracer[Tracer::kChunkEvents].time,
            static_cast<SimTime>(Tracer::kChunkEvents));
  EXPECT_EQ(tracer[n - 1].seq, n - 1);
}

TEST(Tracer, DropsPastTheCapAndCounts) {
  Tracer tracer(TraceMode::kFull, /*max_events=*/10);
  for (int i = 0; i < 15; ++i) tracer.record(at(i));
  EXPECT_EQ(tracer.size(), 10u);
  EXPECT_EQ(tracer.dropped(), 5u);
  EXPECT_EQ(tracer.summary().events_recorded, 10u);
  EXPECT_EQ(tracer.summary().events_dropped, 5u);
}

TEST(Tracer, CountersOnlyStoresNoEvents) {
  Tracer tracer(TraceMode::kCountersOnly);
  EXPECT_TRUE(tracer.counters_enabled());
  EXPECT_FALSE(tracer.events_enabled());
  tracer.record(at(1));
  EXPECT_EQ(tracer.size(), 0u);
  ++tracer.counters().sched_passes;
  EXPECT_EQ(tracer.summary().sched_passes, 1u);
}

TEST(Tracer, DisabledModeIsInert) {
  Tracer tracer(TraceMode::kDisabled);
  EXPECT_FALSE(tracer.counters_enabled());
  EXPECT_FALSE(tracer.events_enabled());
  EXPECT_FALSE(ISTC_TRACE_EVENTS_ON(&tracer));
  EXPECT_FALSE(ISTC_TRACE_COUNTERS_ON(&tracer));
  Tracer* null_tracer = nullptr;
  EXPECT_FALSE(ISTC_TRACE_COUNTERS_ON(null_tracer));
}

TEST(Tracer, ScopedPassTimerCountsPasses) {
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  Tracer tracer(TraceMode::kCountersOnly);
  { ScopedPassTimer t1(&tracer); }
  { ScopedPassTimer t2(&tracer); }
  EXPECT_EQ(tracer.counters().sched_passes, 2u);

  Tracer off(TraceMode::kDisabled);
  { ScopedPassTimer t3(&off); }
  { ScopedPassTimer t4(nullptr); }
  EXPECT_EQ(off.counters().sched_passes, 0u);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tracer(TraceMode::kFull, 5);
  for (int i = 0; i < 8; ++i) tracer.record(at(i));
  ++tracer.counters().backfill_scans;
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.summary().backfill_scans, 0u);
  tracer.record(at(42));
  EXPECT_EQ(tracer[0].seq, 0u);
}

TEST(Tracer, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(EventKind::kJobSubmit), "job_submit");
  EXPECT_STREQ(kind_name(EventKind::kGateDecision), "gate_decision");
  EXPECT_STREQ(kind_name(EventKind::kDowntimeEnd), "downtime_end");
}

}  // namespace
}  // namespace istc::trace
