#include "core/driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace istc::core {
namespace {

cluster::Machine machine_of(int cpus, cluster::DowntimeCalendar cal = {}) {
  return cluster::Machine(
      {.name = "m", .site = "", .queue_system = "", .cpus = cpus,
       .clock_ghz = 1.0},
      std::move(cal));
}

sched::PolicySpec easy() {
  sched::PolicySpec p;
  p.fairshare.age_weight_per_hour = 0.0;
  return p;
}

workload::Job native(workload::JobId id, SimTime submit, int cpus,
                     Seconds run, Seconds est = 0) {
  workload::Job j;
  j.id = id;
  j.submit = submit;
  j.cpus = cpus;
  j.runtime = run;
  j.estimate = est ? est : run;
  return j;
}

TEST(Driver, FillsEmptyMachine) {
  // 100 cpus, 10-cpu jobs: 10 at a time; project of 25 jobs of 50 s
  // finishes in 3 waves = 150 s.
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(100), easy());
  ProjectSpec spec = ProjectSpec::paper(25, 10, 50);
  InterstitialDriver driver(s, spec, 1000);
  eng.run();
  const auto r = s.take_result(1000);
  EXPECT_EQ(driver.submitted(), 25u);
  EXPECT_TRUE(driver.exhausted());
  EXPECT_EQ(r.interstitial_count(), 25u);
  SimTime last_end = 0;
  for (const auto& rec : r.records) last_end = std::max(last_end, rec.end);
  EXPECT_EQ(last_end, 150);
}

TEST(Driver, RespectsStartTime) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(100), easy());
  ProjectSpec spec = ProjectSpec::paper(5, 10, 50);
  spec.start_time = 500;
  InterstitialDriver driver(s, spec, 1000);
  eng.run();
  const auto r = s.take_result(1000);
  for (const auto& rec : r.records) EXPECT_GE(rec.start, 500);
}

TEST(Driver, RespectsStopTime) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), easy());
  ProjectSpec spec = ProjectSpec::continual_stream(10, 100, /*stop=*/250);
  InterstitialDriver driver(s, spec, 1000);
  eng.run();
  const auto r = s.take_result(1000);
  // Jobs at t=0, 100, 200 — none at 300 (>= stop).
  EXPECT_EQ(r.interstitial_count(), 3u);
  for (const auto& rec : r.records) EXPECT_LT(rec.start, 250);
}

TEST(Driver, SubmitsFloorOfFreeOverSize) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(100), easy());
  // Native occupies 45: free 55 -> floor(55/10) = 5 interstitial jobs.
  s.submit(native(0, 0, 45, 1000));
  ProjectSpec spec = ProjectSpec::paper(100, 10, 50);
  InterstitialDriver driver(s, spec, 1000);
  eng.run(10);  // first wave only
  EXPECT_EQ(driver.submitted(), 5u);
  eng.run();
  s.take_result(2000);
}

TEST(Driver, GateClosedWhenHeadJobImminent) {
  // Native J0 occupies the machine [0,100) with an accurate estimate; J1
  // queues behind it.  backfillWallTime (100) minus now (50) = 50 < the
  // interstitial runtime (80): the driver must NOT submit at t=50.
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), easy());
  s.submit(native(0, 0, 10, 100));
  s.submit(native(1, 50, 10, 100));
  ProjectSpec spec = ProjectSpec::paper(100, 1, 80);
  spec.start_time = 0;
  InterstitialDriver driver(s, spec, 1000);
  eng.run(60);
  EXPECT_EQ(driver.submitted(), 0u);
  eng.run();
  s.take_result(2000);
}

TEST(Driver, GateOpenWhenShadowFar) {
  // Same setup but the queued job's start is far (native est 1000):
  // interstitial of runtime 80 fits before the shadow.
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(20), easy());
  s.submit(native(0, 0, 15, 1000, 1000));
  s.submit(native(1, 10, 20, 100, 100));  // queued; shadow at 1000
  ProjectSpec spec = ProjectSpec::paper(100, 5, 80);
  InterstitialDriver driver(s, spec, 1000);
  eng.run(50);
  EXPECT_GT(driver.submitted(), 0u);
  eng.run();
  s.take_result(5000);
}

TEST(Driver, NativeDelayBoundedByInterstitialRuntime) {
  // The paper's core impact claim: a native job that could have started at
  // a native completion is deferred at most ~one interstitial runtime.
  // J0 [0,100) actual but estimate 500 (gross overestimate).  Interstitial
  // jobs (runtime 80 < 500-0) are admitted and hold the cpus when J0 ends
  // early at t=100.  J1 (arrives t=5, needs all 20 cpus) must wait for the
  // last interstitial wave started before t=100.
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(20), easy());
  s.submit(native(0, 0, 15, 100, 500));
  s.submit(native(1, 5, 20, 50, 50));
  ProjectSpec spec = ProjectSpec::continual_stream(5, 80, 90);
  InterstitialDriver driver(s, spec, 1000);
  eng.run();
  const auto r = s.take_result(2000);
  SimTime j1_start = -1;
  for (const auto& rec : r.records) {
    if (!rec.interstitial() && rec.job.id == 1) j1_start = rec.start;
  }
  ASSERT_GE(j1_start, 0);
  // Without interstitial, J1 starts at 100.  With it, at most one
  // interstitial runtime later.
  EXPECT_GE(j1_start, 100);
  EXPECT_LE(j1_start, 100 + 80);
}

TEST(Driver, QueueProtectiveGatePreventsHeadPinnedLivelock) {
  // The Ross livelock in miniature (DESIGN.md): the head job is pinned far
  // in the future by a long-estimated runner, so the head-only gate stays
  // open; freed interstitial CPUs come back in waves *smaller than the
  // junior's width* and are re-scavenged the same instant — the junior
  // starves.  The queue-protective gate sees the junior's imminent
  // earliest start, stops refilling, and lets capacity accumulate.
  auto junior_start_with = [](GatePolicy gate) {
    sim::Engine eng;
    sched::PolicySpec policy;  // EASY
    policy.fairshare.age_weight_per_hour = 0.0;
    policy.fairshare.size_weight = 0.0;
    sched::BatchScheduler s(eng, machine_of(20), policy);
    s.submit(native(0, 0, 10, 5000, 5000));  // long runner, accurate est
    s.submit(native(1, 0, 4, 20, 20));       // staggers interstitial waves
    // t=0: free 6 -> 3 interstitial; t=20: free 4 -> 2 more (staggered).
    s.submit(native(2, 25, 16, 100, 100));   // head: earliest ~5000 (far)
    s.submit(native(3, 26, 10, 50, 50));     // junior: needs a full drain
    ProjectSpec spec = ProjectSpec::continual_stream(2, 100, 1500);
    spec.gate = gate;
    InterstitialDriver driver(s, spec, 1000);
    eng.run();
    SimTime junior_start = -1;
    for (const auto& r : s.take_result(10000).records) {
      if (!r.interstitial() && r.job.id == 3) junior_start = r.start;
    }
    return junior_start;
  };
  const SimTime protective = junior_start_with(GatePolicy::kQueueProtective);
  const SimTime head_only = junior_start_with(GatePolicy::kHeadOnly);
  ASSERT_GE(protective, 0);
  ASSERT_GE(head_only, 0);
  // Queue-protective: the junior runs within a couple of wave lengths.
  EXPECT_LE(protective, 26 + 3 * 100);
  // Head-only: the junior starves until the stream stops at t=1500.
  EXPECT_GE(head_only, 1000);
}

TEST(Driver, TraceRecordsHeadPinnedLivelock) {
  // Same miniature as above, but now read the story out of the trace: the
  // head-only gate keeps deciding "open" against the *same* pinned wall
  // time (the head's far-future earliest start never moves) while the
  // junior starves; the queue-protective gate instead emits repeated
  // rejected-by-gate decisions against the junior's imminent start.
#if !ISTC_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (ISTC_TRACING=OFF)";
#endif
  auto run_traced = [](GatePolicy gate, trace::Tracer* tracer) {
    sim::Engine eng;
    sched::PolicySpec policy;  // EASY
    policy.fairshare.age_weight_per_hour = 0.0;
    policy.fairshare.size_weight = 0.0;
    sched::BatchScheduler s(eng, machine_of(20), policy);
    s.set_tracer(tracer);
    s.submit(native(0, 0, 10, 5000, 5000));
    s.submit(native(1, 0, 4, 20, 20));
    s.submit(native(2, 25, 16, 100, 100));  // head: earliest ~5000 (far)
    s.submit(native(3, 26, 10, 50, 50));    // junior: needs a full drain
    ProjectSpec spec = ProjectSpec::continual_stream(2, 100, 1500);
    spec.gate = gate;
    InterstitialDriver driver(s, spec, 1000);
    eng.run();
    s.take_result(10000);
  };
  auto gate_events = [](const trace::Tracer& t) {
    std::vector<trace::TraceEvent> out;
    for (const auto& e : t.sorted_events()) {
      if (e.kind == trace::EventKind::kGateDecision) out.push_back(e);
    }
    return out;
  };

  trace::Tracer head_trace(trace::TraceMode::kFull);
  run_traced(GatePolicy::kHeadOnly, &head_trace);
  std::size_t head_open = 0;
  std::size_t same_wall = 0;
  for (const auto& e : gate_events(head_trace)) {
    if (!e.open || e.time < 25 || e.time >= 1500) continue;
    ++head_open;
    // The pinned head: wall time is the long runner's completion at
    // t=5000, identical pass after pass while the junior waits.
    if (e.aux_time == 5000) ++same_wall;
  }
  EXPECT_GE(head_open, 5u);
  EXPECT_EQ(same_wall, head_open);
  EXPECT_EQ(head_trace.summary().interstitial_rejected_by_gate, 0u);

  trace::Tracer prot_trace(trace::TraceMode::kFull);
  run_traced(GatePolicy::kQueueProtective, &prot_trace);
  std::size_t closed = 0;
  std::int64_t withheld = 0;
  for (const auto& e : gate_events(prot_trace)) {
    if (e.open) continue;
    ++closed;
    withheld += e.value;
    // A closed decision always carries the finite wall time it compared.
    EXPECT_LT(e.aux_time, kTimeInfinity);
  }
  EXPECT_GE(closed, 2u);
  EXPECT_EQ(prot_trace.summary().gate_closed, closed);
  EXPECT_EQ(prot_trace.summary().interstitial_rejected_by_gate,
            static_cast<std::uint64_t>(withheld));
}

TEST(Driver, AlwaysGateHarvestsMoreThanProtectiveGate) {
  auto harvested = [](GatePolicy gate) {
    sim::Engine eng;
    sched::PolicySpec policy;
    sched::BatchScheduler s(eng, machine_of(20), policy);
    for (workload::JobId i = 0; i < 10; ++i) {
      s.submit(native(i, i * 30, 12, 60, 600));  // overestimates
    }
    ProjectSpec spec = ProjectSpec::continual_stream(4, 50, 400);
    spec.gate = gate;
    InterstitialDriver driver(s, spec, 1000);
    eng.run();
    const auto r = s.take_result(5000);
    return r.interstitial_count();
  };
  EXPECT_GE(harvested(GatePolicy::kAlways),
            harvested(GatePolicy::kQueueProtective));
}

TEST(Driver, UtilizationCapLimitsSubmission) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(100), easy());
  s.submit(native(0, 0, 50, 1000));
  ProjectSpec spec = ProjectSpec::paper(100, 10, 50);
  spec.utilization_cap = 0.8;  // 80 cpus max busy: room for 3 jobs of 10
  InterstitialDriver driver(s, spec, 1000);
  eng.run(10);
  EXPECT_EQ(driver.submitted(), 3u);
  eng.run();
  s.take_result(3000);
}

TEST(Driver, CapBelowCurrentUseSubmitsNothing) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(100), easy());
  s.submit(native(0, 0, 90, 200));
  ProjectSpec spec = ProjectSpec::paper(10, 5, 50);
  spec.utilization_cap = 0.5;
  spec.stop_time = 150;  // give up before the native completes
  InterstitialDriver driver(s, spec, 1000);
  eng.run(100);
  EXPECT_EQ(driver.submitted(), 0u);
  eng.run();
  s.take_result(2000);
}

TEST(Driver, SurvivesDowntimeOnIdleMachine) {
  // Machine idle, queue empty, a downtime window ahead: the driver must
  // wake itself after the window and resume the project.
  cluster::DowntimeCalendar cal({{100, 200}});
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10, cal), easy());
  ProjectSpec spec = ProjectSpec::paper(30, 10, 60);
  InterstitialDriver driver(s, spec, 1000);
  eng.run();
  const auto r = s.take_result(1000);
  EXPECT_EQ(r.interstitial_count(), 30u);
  for (const auto& rec : r.records) {
    EXPECT_TRUE(cal.can_run(rec.start, rec.job.runtime));
  }
}

sched::PolicySpec preempting_easy() {
  sched::PolicySpec p;
  p.preempt_interstitial = true;
  p.fairshare.age_weight_per_hour = 0.0;
  p.fairshare.size_weight = 0.0;
  return p;
}

TEST(Driver, CheckpointRecoveryResubmitsRemainingWork) {
  // Bounded project on an empty 10-cpu machine; a native eviction at t=40
  // kills one 100-second job; checkpoint recovery resubmits a 60-second
  // fragment, so the *completed* interstitial work still totals the
  // project work.
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), preempting_easy());
  ProjectSpec spec = ProjectSpec::paper(4, 10, 100);  // serial waves
  spec.recovery = PreemptionRecovery::kCheckpoint;
  InterstitialDriver driver(s, spec, 1000);
  s.submit(native(0, 40, 10, 30));  // evicts the first wave at t=40
  eng.run();
  const auto r = s.take_result(5000);
  ASSERT_EQ(r.killed.size(), 1u);
  EXPECT_EQ(driver.kills_observed(), 1u);
  EXPECT_EQ(driver.resume_fragments_pending(), 0u);  // fragment completed
  // Completed interstitial runtime: 3 full jobs + one 40 s executed-lost
  // + one 60 s fragment... executed work of the victim is *lost* under
  // checkpoint-as-implemented?  No: the fragment is runtime-60, and the
  // victim's first 40 s count as useful (checkpointed).  Completed records
  // hold 3 x 100 + 60 = 360 s; the killed record holds the 40 s.
  Seconds completed = 0;
  for (const auto& rec : r.records) {
    if (rec.interstitial()) completed += rec.job.runtime;
  }
  EXPECT_EQ(completed, 360);
  EXPECT_DOUBLE_EQ(r.wasted_cpu_seconds(), 10.0 * 40.0);
}

TEST(Driver, RestartRecoveryRedoesWholeJob) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), preempting_easy());
  ProjectSpec spec = ProjectSpec::paper(4, 10, 100);
  spec.recovery = PreemptionRecovery::kRestart;
  InterstitialDriver driver(s, spec, 1000);
  s.submit(native(0, 40, 10, 30));
  eng.run();
  const auto r = s.take_result(5000);
  ASSERT_EQ(r.killed.size(), 1u);
  // All 4 project jobs complete at full length despite the kill.
  Seconds completed = 0;
  std::size_t n = 0;
  for (const auto& rec : r.records) {
    if (rec.interstitial()) {
      completed += rec.job.runtime;
      ++n;
    }
  }
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(completed, 400);
}

TEST(Driver, NoRecoveryLosesKilledJob) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(10), preempting_easy());
  ProjectSpec spec = ProjectSpec::paper(4, 10, 100);
  spec.recovery = PreemptionRecovery::kNone;
  InterstitialDriver driver(s, spec, 1000);
  s.submit(native(0, 40, 10, 30));
  eng.run();
  const auto r = s.take_result(5000);
  ASSERT_EQ(r.killed.size(), 1u);
  EXPECT_EQ(r.interstitial_count(), 3u);  // one job's work is simply gone
}

TEST(Driver, PreemptionWithRecoveryProtectsNativesCompletely) {
  // Under fill-and-evict with checkpoint recovery, natives start exactly
  // when they would on an interstitial-free machine, and the project's
  // work still completes in full.
  auto run_mode = [](bool with_stream) {
    sim::Engine eng;
    sched::BatchScheduler s(eng, machine_of(20), preempting_easy());
    for (workload::JobId i = 0; i < 12; ++i) {
      s.submit(native(i, i * 120, 16, 100, 110));
    }
    std::optional<InterstitialDriver> driver;
    if (with_stream) {
      ProjectSpec spec = ProjectSpec::paper(10, 8, 90);
      spec.gate = GatePolicy::kAlways;
      spec.recovery = PreemptionRecovery::kCheckpoint;
      driver.emplace(s, spec, 1000);
    }
    eng.run();
    std::map<workload::JobId, SimTime> starts;
    // Under checkpoint recovery, useful interstitial seconds = completed
    // fragment runtimes + the executed (checkpointed) part of every kill.
    Seconds useful = 0;
    const auto r = s.take_result(20000);
    for (const auto& rec : r.records) {
      if (rec.interstitial()) {
        useful += rec.job.runtime;
      } else {
        starts[rec.job.id] = rec.start;
      }
    }
    for (const auto& rec : r.killed) useful += rec.end - rec.start;
    return std::pair{starts, useful};
  };
  const auto [base_starts, zero] = run_mode(false);
  const auto [with_starts, harvested] = run_mode(true);
  EXPECT_EQ(base_starts, with_starts);      // natives untouched
  EXPECT_EQ(zero, 0);
  EXPECT_EQ(harvested, 10 * 90);  // the project's work is fully conserved
}

TEST(Driver, IdsCountUpFromFirstJobId) {
  sim::Engine eng;
  sched::BatchScheduler s(eng, machine_of(50), easy());
  ProjectSpec spec = ProjectSpec::paper(5, 10, 50);
  InterstitialDriver driver(s, spec, 7777);
  eng.run();
  const auto r = s.take_result(1000);
  std::vector<workload::JobId> ids;
  for (const auto& rec : r.records) ids.push_back(rec.job.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids.front(), 7777u);
  EXPECT_EQ(ids.back(), 7781u);
}

TEST(Driver, AccurateEstimatesBoundDelayToOneInterstitialRuntime) {
  // With *accurate* native estimates (and a stable priority order — one
  // user, no aging) the Figure 1 gate bounds every native delay by one
  // interstitial runtime: a job blocked by scavenged CPUs waits only until
  // that interstitial wave drains.  (With the paper's gross overestimates
  // and fair-share re-prioritization, cascades can exceed this — that is
  // §4.3's point, covered by the integration tests.)
  constexpr Seconds kInterstitialRuntime = 30;
  auto run_natives = [&](bool with_interstitial) {
    sim::Engine eng;
    sched::BatchScheduler s(eng, machine_of(20), easy());
    for (workload::JobId i = 0; i < 12; ++i) {
      s.submit(native(i, i * 40, 5 + static_cast<int>(i % 3) * 5, 120));
    }
    std::optional<InterstitialDriver> d;
    ProjectSpec spec =
        ProjectSpec::continual_stream(4, kInterstitialRuntime, 2000);
    if (with_interstitial) d.emplace(s, spec, 1000);
    eng.run();
    std::map<workload::JobId, SimTime> starts;
    for (const auto& rec : s.take_result(3000).records) {
      if (!rec.interstitial()) starts[rec.job.id] = rec.start;
    }
    return starts;
  };
  const auto base = run_natives(false);
  const auto with = run_natives(true);
  ASSERT_EQ(base.size(), with.size());
  for (const auto& [id, t0] : base) {
    EXPECT_GE(with.at(id), t0) << "job " << id;
    EXPECT_LE(with.at(id), t0 + kInterstitialRuntime) << "job " << id;
  }
}

}  // namespace
}  // namespace istc::core
