// SweepRunner determinism: a fork-tree sweep must produce bit-identical
// results at any thread count, and each forked point must match the same
// point re-simulated from scratch — including when the shared prefix
// itself carries a fault process.  This pins the contract the bench exit
// gates (table9_limited, sweep_forks) are built on.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/presets.hpp"
#include "core/experiment.hpp"
#include "core/fork.hpp"
#include "core/sweep.hpp"
#include "fault/fault.hpp"

namespace istc::core {
namespace {

bool same_records(const std::vector<sched::JobRecord>& a,
                  const std::vector<sched::JobRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].job.id != b[i].job.id || a[i].job.cpus != b[i].job.cpus ||
        a[i].job.submit != b[i].job.submit || a[i].start != b[i].start ||
        a[i].end != b[i].end) {
      return false;
    }
  }
  return true;
}

bool same_run(const sched::RunResult& a, const sched::RunResult& b) {
  return a.sim_end == b.sim_end && same_records(a.records, b.records) &&
         same_records(a.killed, b.killed);
}

Scenario fast_scenario() {
  Scenario s;
  s.site = cluster::Site::kRoss;  // smallest canonical site = fastest run
  s.project = ProjectSpec::continual_stream(
      32, 458, cluster::site_span(cluster::Site::kRoss));
  return s;
}

const double kCaps[] = {0.90, 0.95, 1.0};
constexpr std::size_t kPoints = std::size(kCaps);

// The finish callable shared by every cap-sweep test below: apply point
// i's cap at the fork time, then drain.
sched::RunResult finish_cap(SimRun& run, std::size_t i) {
  if (kCaps[i] < 1.0) run.driver()->set_utilization_cap(kCaps[i]);
  return run.finish();
}

SweepRunner<SimRun> cap_sweep() {
  return SweepRunner<SimRun>(kPoints, [](std::size_t) {
    return std::make_unique<SimRun>(fast_scenario());
  });
}

// Fork mode at 1, 2 and 8 worker threads: the thread count must change
// only the wall clock, never a single record.
TEST(SweepRunner, ForkedResultsIdenticalAcrossThreadCounts) {
  const SimTime t0 = cluster::site_span(cluster::Site::kRoss) / 2;
  auto sweep = cap_sweep();
  sweep.set_threads(1);
  const auto r1 = sweep.run_forked(t0, finish_cap);
  sweep.set_threads(2);
  const auto r2 = sweep.run_forked(t0, finish_cap);
  sweep.set_threads(8);
  const auto r8 = sweep.run_forked(t0, finish_cap);
  ASSERT_EQ(r1.size(), kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    EXPECT_TRUE(same_run(r1[i], r2[i])) << "point " << i << " @2 threads";
    EXPECT_TRUE(same_run(r1[i], r8[i])) << "point " << i << " @8 threads";
  }
  // The capped points genuinely diverged from the uncapped one (else the
  // equality above proves nothing about per-point isolation).
  EXPECT_FALSE(same_run(r1[0], r1[kPoints - 1]));
}

// run_verified is the bench gate: every forked point bit-equal to the
// same point simulated from scratch, with a real speedup measured.
TEST(SweepRunner, VerifiedForkMatchesScratch) {
  const SimTime t0 = cluster::site_span(cluster::Site::kRoss) / 4 * 3;
  auto sweep = cap_sweep();
  sweep.set_threads(1);
  const auto v = sweep.run_verified(t0, finish_cap, same_run);
  EXPECT_TRUE(v.equal);
  ASSERT_EQ(v.forked.size(), kPoints);
  ASSERT_EQ(v.scratch.size(), kPoints);
  EXPECT_GT(v.forked_wall_s, 0.0);
  EXPECT_GT(v.scratch_wall_s, 0.0);
  // Sharing three quarters of the run must buy *some* speedup; the hard
  // 2x floor lives in the bench gates where the geometry is tuned.
  EXPECT_GT(v.speedup(), 1.0);
}

// A faulted shared prefix: the fault process starts before t0, so crash
// and node-failure events are part of the prefix every fork inherits.
// Fork==scratch must still hold bit for bit.
TEST(SweepRunner, VerifiedSweepWithFaultedPrefix) {
  const SimTime span = cluster::site_span(cluster::Site::kRoss);
  const SimTime t0 = span / 2;
  const auto make_faulted = [](std::size_t) {
    auto run = std::make_unique<SimRun>(fast_scenario());
    fault::FaultSpec faults;
    faults.crash_mtbf = 30 * kSecondsPerHour;
    faults.start = 0;
    run->add_faults(faults);
    return run;
  };
  SweepRunner<SimRun> sweep(kPoints, make_faulted);
  sweep.set_threads(2);
  const auto v = sweep.run_verified(t0, finish_cap, same_run);
  EXPECT_TRUE(v.equal);
  // The prefix really faulted (otherwise this is just the clean test).
  SimRun probe(fast_scenario());
  fault::FaultSpec faults;
  faults.crash_mtbf = 30 * kSecondsPerHour;
  faults.start = 0;
  probe.add_faults(faults);
  probe.run_until(t0);
  EXPECT_GT(probe.injector()->stats().crashes, 0u);
}

// Scratch mode builds one run per point, so points may differ from t=0 —
// the per-seed sweep shape.  Results must land in point order regardless
// of which thread finished first.
TEST(SweepRunner, ScratchModeKeepsPointOrder) {
  const std::uint64_t seeds[] = {1, 2, 3, 4};
  SweepRunner<SimRun> sweep(std::size(seeds), [&](std::size_t i) {
    Scenario s = fast_scenario();
    s.log_seed = seeds[i];
    return std::make_unique<SimRun>(s);
  });
  const auto finish = [&](SimRun& run, std::size_t i) {
    auto result = run.finish();
    // Tag the result with the point index via a probe rerun below.
    (void)i;
    return result;
  };
  sweep.set_threads(4);
  const auto parallel = sweep.run_scratch(0, finish);
  sweep.set_threads(1);
  const auto serial = sweep.run_scratch(0, finish);
  ASSERT_EQ(parallel.size(), std::size(seeds));
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_TRUE(same_run(parallel[i], serial[i])) << "point " << i;
  }
  // Distinct seeds produce distinct schedules, so an ordering bug could
  // not hide behind identical points.
  EXPECT_FALSE(same_run(parallel[0], parallel[1]));
}

// A run whose fork is deliberately slow and whose advancement is fast:
// isolates where SweepRunner's clocks charge the serial fork loop.
struct SleepyRun {
  static constexpr std::chrono::milliseconds kForkDelay{60};
  static constexpr std::chrono::milliseconds kAdvanceDelay{5};
  std::unique_ptr<SleepyRun> fork() {
    std::this_thread::sleep_for(kForkDelay);
    return std::make_unique<SleepyRun>();
  }
  void run_until(SimTime) { std::this_thread::sleep_for(kAdvanceDelay); }
};

// Verified-mode arm clocks compare advancement against advancement: the
// serial fork-creation loop is reported in fork_wall_s and excluded from
// forked_wall_s, so a slow snapshot cannot masquerade as slow simulation
// (or deflate the speedup the bench gates enforce).
TEST(SweepRunner, VerifiedTimingExcludesForkCreation) {
  SweepRunner<SleepyRun> sweep(
      3, [](std::size_t) { return std::make_unique<SleepyRun>(); });
  sweep.set_threads(1);
  const auto v = sweep.run_verified(
      1, [](SleepyRun&, std::size_t i) { return static_cast<int>(i); },
      [](int a, int b) { return a == b; });
  EXPECT_TRUE(v.equal);
  // Three serial forks at 60 ms each are visible in fork_wall_s...
  EXPECT_GE(v.fork_wall_s, 0.15);
  // ...and absent from the forked arm's advancement clock, which saw only
  // one 5 ms prefix run_until plus three trivial finishes.
  EXPECT_LT(v.forked_wall_s, v.fork_wall_s / 2);
  EXPECT_GT(v.scratch_wall_s, 0.0);
}

// The knob-at-fork-time contract in isolation: forked point with the cap
// applied at t0 equals a scratch run advanced to t0 with the same cap.
TEST(SweepRunner, WindowedKnobSemantics) {
  const Scenario scenario = fast_scenario();
  const SimTime t0 = cluster::site_span(scenario.site) / 2;

  SimRun prefix(scenario);
  prefix.run_until(t0);
  auto forked = prefix.fork();
  forked->driver()->set_utilization_cap(0.9);
  const auto via_fork = forked->finish();

  SimRun scratch(scenario);
  scratch.run_until(t0);
  scratch.driver()->set_utilization_cap(0.9);
  const auto via_scratch = scratch.finish();

  EXPECT_TRUE(same_run(via_fork, via_scratch));
  // And it genuinely differs from the uncapped run.
  EXPECT_FALSE(same_run(via_fork, run_scenario(scenario)));
}

}  // namespace
}  // namespace istc::core
