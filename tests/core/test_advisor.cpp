#include "core/advisor.hpp"

#include <gtest/gtest.h>

#include "cluster/presets.hpp"

namespace istc::core {
namespace {

AdvisorInputs base_inputs(cluster::Site site, double util) {
  AdvisorInputs in;
  in.machine = cluster::machine_spec(site);
  in.native_utilization = util;
  in.project_cycles = 7.7e15;
  in.max_native_delay = minutes(15);
  in.max_breakage = 1.10;
  return in;
}

TEST(Advisor, WidthIsPowerOfTwoWithinBreakage) {
  const auto rec = advise(base_inputs(cluster::Site::kBlueMountain, 0.79));
  EXPECT_GT(rec.cpus_per_job, 0);
  EXPECT_EQ(rec.cpus_per_job & (rec.cpus_per_job - 1), 0);
  EXPECT_LE(rec.breakage, 1.10);
}

TEST(Advisor, BluePacificGetsNarrowJobs) {
  // ~86 spare CPUs: 32-wide jobs break badly (1.35); the advisor must pick
  // something narrower.
  const auto rec = advise(base_inputs(cluster::Site::kBluePacific, 0.907));
  EXPECT_LT(rec.cpus_per_job, 32);
  EXPECT_LE(rec.breakage, 1.10);
}

TEST(Advisor, RuntimeEqualsDelayTolerance) {
  auto in = base_inputs(cluster::Site::kBlueMountain, 0.79);
  in.max_native_delay = minutes(10);
  const auto rec = advise(in);
  EXPECT_EQ(rec.job_runtime, minutes(10));
  // Machine-neutral size converts back to roughly the same runtime.
  EXPECT_NEAR(static_cast<double>(rec.work_sec_at_1ghz) / 0.262,
              static_cast<double>(rec.job_runtime), 5.0);
}

TEST(Advisor, JobsCoverProjectWork) {
  const auto in = base_inputs(cluster::Site::kRoss, 0.631);
  const auto rec = advise(in);
  const double per_job = static_cast<double>(rec.cpus_per_job) *
                         static_cast<double>(rec.work_sec_at_1ghz) * 1e9;
  EXPECT_GE(static_cast<double>(rec.jobs) * per_job, in.project_cycles);
  EXPECT_LT((static_cast<double>(rec.jobs) - 1.0) * per_job,
            in.project_cycles);
}

TEST(Advisor, PredictedMakespanTracksFittedModel) {
  const auto in = base_inputs(cluster::Site::kBlueMountain, 0.79);
  const auto rec = advise(in);
  const auto theory = theory_inputs(in.machine, in.native_utilization);
  const double lo = fitted_makespan_s(theory, in.project_cycles) / 3600.0;
  EXPECT_GE(rec.predicted_makespan_h, lo * 0.99);
  EXPECT_LE(rec.predicted_makespan_h, lo * 1.15);  // breakage adds a bit
}

TEST(Advisor, WarnsOnVeryHighUtilization) {
  const auto rec = advise(base_inputs(cluster::Site::kBluePacific, 0.93));
  bool warned = false;
  for (const auto& n : rec.notes) {
    warned |= n.find("utilization cap") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Advisor, TimeBreakageDefaultsToUnity) {
  const auto rec = advise(base_inputs(cluster::Site::kBlueMountain, 0.79));
  EXPECT_DOUBLE_EQ(rec.time_breakage, 1.0);
}

TEST(Advisor, TimeBreakageAppliedWithCalendar) {
  auto in = base_inputs(cluster::Site::kBlueMountain, 0.79);
  in.downtime = cluster::site_downtime(cluster::Site::kBlueMountain);
  in.horizon = cluster::site_span(cluster::Site::kBlueMountain);
  const auto with_cal = advise(in);
  const auto without = advise(base_inputs(cluster::Site::kBlueMountain,
                                          0.79));
  EXPECT_GT(with_cal.time_breakage, 1.0);
  EXPECT_GE(with_cal.predicted_makespan_h, without.predicted_makespan_h);
}

TEST(Advisor, DenseMaintenanceTriggersNote) {
  auto in = base_inputs(cluster::Site::kBlueMountain, 0.79);
  in.max_native_delay = hours(2);  // long jobs
  // Hourly 5-minute windows: brutal cadence.
  std::vector<cluster::DowntimeWindow> windows;
  for (SimTime t = hours(1); t < days(2); t += hours(1)) {
    windows.push_back({t, t + minutes(5)});
  }
  in.downtime = cluster::DowntimeCalendar(std::move(windows));
  in.horizon = days(2);
  const auto rec = advise(in);
  EXPECT_GT(rec.time_breakage, 1.02);
  bool noted = false;
  for (const auto& n : rec.notes) {
    noted |= n.find("maintenance cadence") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(Advisor, TighterBreakageToleranceNarrowsJobs) {
  auto loose = base_inputs(cluster::Site::kBlueMountain, 0.79);
  loose.max_breakage = 1.5;
  auto tight = loose;
  tight.max_breakage = 1.01;
  EXPECT_LE(advise(tight).cpus_per_job, advise(loose).cpus_per_job);
}

}  // namespace
}  // namespace istc::core
