#include "core/project.hpp"

#include <gtest/gtest.h>

#include "cluster/presets.hpp"

namespace istc::core {
namespace {

using cluster::Site;

TEST(Project, PaperConstructorSizes) {
  // Table 2's project sizes: kJobs x CPUs x 120 s @ 1 GHz in peta-cycles.
  EXPECT_NEAR(ProjectSpec::paper(64000, 1, 120).peta_cycles(), 7.7, 0.1);
  EXPECT_NEAR(ProjectSpec::paper(2000, 32, 120).peta_cycles(), 7.7, 0.1);
  EXPECT_NEAR(ProjectSpec::paper(256000, 1, 120).peta_cycles(), 30.7, 0.1);
  EXPECT_NEAR(ProjectSpec::paper(1024000, 1, 120).peta_cycles(), 122.9, 0.1);
  EXPECT_NEAR(ProjectSpec::paper(32000, 32, 120).peta_cycles(), 122.9, 0.1);
  EXPECT_NEAR(ProjectSpec::paper(4000, 32, 960).peta_cycles(), 122.9, 0.1);
}

TEST(Project, RuntimeNormalizationMatchesPaper) {
  // "120 s @ 1 GHz" on each machine (paper §4.3 job durations).
  const auto p120 = ProjectSpec::paper(1000, 32, 120);
  const auto p960 = ProjectSpec::paper(1000, 32, 960);
  EXPECT_EQ(p120.runtime_on(cluster::machine_spec(Site::kBlueMountain)), 458);
  EXPECT_EQ(p960.runtime_on(cluster::machine_spec(Site::kBlueMountain)),
            3664);
  EXPECT_EQ(p120.runtime_on(cluster::machine_spec(Site::kBluePacific)), 325);
  EXPECT_EQ(p960.runtime_on(cluster::machine_spec(Site::kBluePacific)), 2602);
  EXPECT_EQ(p120.runtime_on(cluster::machine_spec(Site::kRoss)), 204);
  EXPECT_EQ(p960.runtime_on(cluster::machine_spec(Site::kRoss)), 1633);
}

TEST(Project, RuntimeNeverZero) {
  ProjectSpec p;
  p.work_per_cpu = 1;  // one cycle
  EXPECT_EQ(p.runtime_on(cluster::machine_spec(Site::kRoss)), 1);
}

TEST(Project, ContinualStream) {
  const auto p = ProjectSpec::continual_stream(32, 120, days(10));
  EXPECT_TRUE(p.continual());
  EXPECT_EQ(p.stop_time, days(10));
  EXPECT_DOUBLE_EQ(p.peta_cycles(), 0.0);
}

TEST(Project, BoundedIsNotContinual) {
  EXPECT_FALSE(ProjectSpec::paper(10, 1, 120).continual());
}

TEST(Project, MakeJobFieldsCorrect) {
  const auto spec = ProjectSpec::paper(100, 32, 120);
  const auto m = cluster::machine_spec(Site::kBlueMountain);
  const auto j = spec.make_job(5000, 12345, m);
  EXPECT_EQ(j.id, 5000u);
  EXPECT_TRUE(j.interstitial());
  EXPECT_EQ(j.user, kInterstitialUser);
  EXPECT_EQ(j.group, kInterstitialGroup);
  EXPECT_EQ(j.cpus, 32);
  EXPECT_EQ(j.submit, 12345);
  EXPECT_EQ(j.runtime, 458);
  EXPECT_EQ(j.estimate, j.runtime);  // exact estimates (zero variance)
}

TEST(Project, TotalCyclesArithmetic) {
  const auto p = ProjectSpec::paper(10, 4, 120);
  EXPECT_DOUBLE_EQ(p.total_cycles(), 10.0 * 4.0 * 120e9);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(ProjectDeath, BadUtilizationCapRejected) {
  ProjectSpec p = ProjectSpec::paper(10, 1, 120);
  p.utilization_cap = 1.5;
  EXPECT_DEATH(p.check(), "invariant");
}

TEST(ProjectDeath, StopBeforeStartRejected) {
  ProjectSpec p = ProjectSpec::paper(10, 1, 120);
  p.start_time = 100;
  p.stop_time = 50;
  EXPECT_DEATH(p.check(), "invariant");
}
#endif

}  // namespace
}  // namespace istc::core
