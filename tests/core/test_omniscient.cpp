#include "core/omniscient.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace istc::core {
namespace {

cluster::Machine machine_of(int cpus, cluster::DowntimeCalendar cal = {}) {
  return cluster::Machine(
      {.name = "m", .site = "", .queue_system = "", .cpus = cpus,
       .clock_ghz = 1.0},
      std::move(cal));
}

sched::JobRecord nrec(SimTime start, Seconds run, int cpus) {
  sched::JobRecord r;
  r.job.cpus = cpus;
  r.job.submit = start;
  r.job.runtime = run;
  r.job.estimate = run;
  r.start = start;
  r.end = start + run;
  return r;
}

TEST(FreeCapacity, EmptyMachineFullyFree) {
  const auto m = machine_of(100);
  const std::vector<sched::JobRecord> none;
  const FreeCapacity f(none, m);
  EXPECT_EQ(f.capacity(), 100);
  EXPECT_EQ(f.free_at(0), 100);
  EXPECT_EQ(f.free_at(123456), 100);
  EXPECT_DOUBLE_EQ(f.average_free_fraction(0, 1000), 1.0);
}

TEST(FreeCapacity, SubtractsNativeOccupancy) {
  const auto m = machine_of(100);
  const std::vector<sched::JobRecord> recs{nrec(10, 20, 40), nrec(20, 20, 30)};
  const FreeCapacity f(recs, m);
  EXPECT_EQ(f.free_at(5), 100);
  EXPECT_EQ(f.free_at(10), 60);
  EXPECT_EQ(f.free_at(25), 30);
  EXPECT_EQ(f.free_at(35), 70);
  EXPECT_EQ(f.free_at(40), 100);
}

TEST(FreeCapacity, DowntimeZeroesFreeCapacity) {
  const auto m = machine_of(100, cluster::DowntimeCalendar({{50, 80}}));
  const std::vector<sched::JobRecord> recs{nrec(0, 40, 100)};
  const FreeCapacity f(recs, m);
  EXPECT_EQ(f.free_at(45), 100);
  EXPECT_EQ(f.free_at(50), 0);
  EXPECT_EQ(f.free_at(79), 0);
  EXPECT_EQ(f.free_at(80), 100);
}

TEST(FreeCapacity, AverageFreeFraction) {
  const auto m = machine_of(100);
  const std::vector<sched::JobRecord> recs{nrec(0, 50, 100)};
  const FreeCapacity f(recs, m);
  EXPECT_DOUBLE_EQ(f.average_free_fraction(0, 100), 0.5);
  EXPECT_DOUBLE_EQ(f.average_free_fraction(0, 50), 0.0);
  EXPECT_DOUBLE_EQ(f.average_free_fraction(50, 100), 1.0);
}

TEST(Omniscient, EmptyMachinePacksDensely) {
  const auto m = machine_of(100);
  const std::vector<sched::JobRecord> none;
  const FreeCapacity f(none, m);
  // 30 jobs of 10 cpus x 50 s on 100 cpus: 10 at a time, 3 waves = 150 s.
  const auto r = pack_omniscient(f, m, ProjectSpec::paper(30, 10, 50), 0);
  EXPECT_EQ(r.jobs_placed, 30u);
  EXPECT_EQ(r.makespan, 150);
  ASSERT_EQ(r.batches.size(), 3u);
  EXPECT_EQ(r.batches[0].second, 10u);
}

TEST(Omniscient, NeverTouchesNativeCpus) {
  // A feasible native schedule: one job per 300-second slot, so occupancy
  // varies randomly but never overlaps (never exceeds capacity).
  const auto m = machine_of(50);
  std::vector<sched::JobRecord> recs;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const SimTime slot = i * 300;
    recs.push_back(nrec(slot, rng.range(10, 290),
                        static_cast<int>(rng.range(1, 50))));
  }
  const FreeCapacity f(recs, m);
  const auto spec = ProjectSpec::paper(200, 4, 30);
  const auto result = pack_omniscient(f, m, spec, 0);
  EXPECT_EQ(result.jobs_placed, 200u);
  // Audit: at every batch, interstitial usage fits inside free capacity at
  // every instant of the batch window.
  for (const auto& [start, count] : result.batches) {
    // Reconstruct concurrent interstitial usage at `start` from batches
    // overlapping it.
    int inter_busy = 0;
    for (const auto& [s2, c2] : result.batches) {
      if (s2 <= start && start < s2 + 30) {
        inter_busy += static_cast<int>(c2) * 4;
      }
    }
    EXPECT_LE(inter_busy, f.free_at(start))
        << "native CPUs stolen at t=" << start;
  }
}

TEST(Omniscient, MakespanShrinksWithMoreFreeCapacity) {
  const auto m = machine_of(100);
  const std::vector<sched::JobRecord> light{nrec(0, 100000, 20)};
  const std::vector<sched::JobRecord> heavy{nrec(0, 100000, 80)};
  const auto spec = ProjectSpec::paper(100, 10, 60);
  const auto r_light =
      pack_omniscient(FreeCapacity(light, m), m, spec, 0);
  const auto r_heavy =
      pack_omniscient(FreeCapacity(heavy, m), m, spec, 0);
  EXPECT_LT(r_light.makespan, r_heavy.makespan);
}

TEST(Omniscient, BreakageVisibleAtNarrowFreeCapacity) {
  // 90 free cpus, 32-cpu jobs: 2 fit (64), wasting 26 — the paper's Blue
  // Pacific example.  vs 1-cpu jobs which use all 90.
  const auto m = machine_of(100);
  const std::vector<sched::JobRecord> recs{nrec(0, 1000000, 10)};
  const FreeCapacity f(recs, m);
  const auto wide = pack_omniscient(f, m, ProjectSpec::paper(90, 32, 60), 0);
  const auto narrow =
      pack_omniscient(f, m, ProjectSpec::paper(2880, 1, 60), 0);
  // Same total work (90*32 = 2880 cpu-jobs): wide takes 45 waves of 2,
  // narrow takes 32 waves of 90.
  EXPECT_EQ(wide.makespan, 45 * 60);
  EXPECT_EQ(narrow.makespan, 32 * 60);
  EXPECT_GT(static_cast<double>(wide.makespan) /
                static_cast<double>(narrow.makespan),
            1.3);
}

TEST(Omniscient, RespectsProjectStart) {
  const auto m = machine_of(10);
  const std::vector<sched::JobRecord> none;
  const FreeCapacity f(none, m);
  const auto r = pack_omniscient(f, m, ProjectSpec::paper(1, 10, 60), 5000);
  ASSERT_EQ(r.batches.size(), 1u);
  EXPECT_EQ(r.batches[0].first, 5000);
  EXPECT_EQ(r.makespan, 60);
}

TEST(Omniscient, WaitsOutDowntime) {
  const auto m = machine_of(10, cluster::DowntimeCalendar({{100, 200}}));
  const std::vector<sched::JobRecord> none;
  const FreeCapacity f(none, m);
  // 60-second jobs started at 90 would cross the window: the second wave
  // must wait until 200.
  const auto r = pack_omniscient(f, m, ProjectSpec::paper(2, 10, 60), 30);
  ASSERT_EQ(r.batches.size(), 2u);
  EXPECT_EQ(r.batches[0].first, 30);
  EXPECT_EQ(r.batches[1].first, 200);
}

TEST(Omniscient, DeterministicForSameInputs) {
  const auto m = machine_of(64);
  // Up to five 150-second jobs of 3 CPUs overlap at once: at most 15 busy.
  std::vector<sched::JobRecord> recs;
  for (int i = 0; i < 20; ++i) recs.push_back(nrec(i * 37, 150, 3));
  const FreeCapacity f(recs, m);
  const auto spec = ProjectSpec::paper(500, 2, 45);
  const auto a = pack_omniscient(f, m, spec, 7);
  const auto b = pack_omniscient(f, m, spec, 7);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.batches, b.batches);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(OmniscientDeath, ContinualSpecRejected) {
  const auto m = machine_of(10);
  const std::vector<sched::JobRecord> none;
  const FreeCapacity f(none, m);
  EXPECT_DEATH(
      pack_omniscient(f, m, ProjectSpec::continual_stream(1, 60, 100), 0),
      "precondition");
}
#endif

}  // namespace
}  // namespace istc::core
