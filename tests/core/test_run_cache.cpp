#include "core/run_cache.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace istc::core {
namespace {

constexpr auto kSite = cluster::Site::kRoss;

TEST(RunCache, NativeBaselineMissThenHit) {
  RunCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);

  const auto& first = cache.native_baseline(kSite);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_FALSE(first.records.empty());

  const auto& second = cache.native_baseline(kSite);
  EXPECT_EQ(&first, &second);  // same entry, no re-simulation
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(RunCache, ContinualKeyedByJobShapeAndCap) {
  RunCache cache;
  const auto& a = cache.continual_run(kSite, 32, 120);
  const auto& a_again = cache.continual_run(kSite, 32, 120);
  EXPECT_EQ(&a, &a_again);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different utilization cap is a different run, not a hit.
  const auto& capped = cache.continual_run(kSite, 32, 120, 0.95);
  EXPECT_NE(&a, &capped);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(RunCache, ClearDropsEveryEntry) {
  RunCache cache;
  (void)cache.native_baseline(kSite);
  (void)cache.continual_run(kSite, 32, 120);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // Next lookup simulates again.
  (void)cache.native_baseline(kSite);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCache, InstancesAreIsolated) {
  RunCache a;
  RunCache b;
  (void)a.native_baseline(kSite);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.stats().misses, 0u);
}

TEST(RunCache, FreeFunctionsUseTheDefaultInstance) {
  clear_experiment_caches();
  const auto& via_free = native_baseline(kSite);
  const auto& via_default = default_run_cache().native_baseline(kSite);
  EXPECT_EQ(&via_free, &via_default);
}

TEST(RunCache, FreeFunctionsHonourExplicitCache) {
  RunCache mine;
  const auto& r = native_baseline(kSite, &mine);
  EXPECT_EQ(mine.size(), 1u);
  EXPECT_EQ(&r, &mine.native_baseline(kSite));
  // The continual entry point threads the cache too.
  (void)continual_run(kSite, 32, 120, 1.0, &mine);
  EXPECT_EQ(mine.size(), 2u);
}

TEST(RunCache, EqualKeysYieldIdenticalRuns) {
  // Two isolated caches must simulate to the same records — the cache is
  // a pure memoization layer, never a source of nondeterminism.
  RunCache a;
  RunCache b;
  const auto& ra = a.native_baseline(kSite);
  const auto& rb = b.native_baseline(kSite);
  ASSERT_EQ(ra.records.size(), rb.records.size());
  for (std::size_t i = 0; i < ra.records.size(); ++i) {
    EXPECT_EQ(ra.records[i].job.id, rb.records[i].job.id);
    EXPECT_EQ(ra.records[i].start, rb.records[i].start);
    EXPECT_EQ(ra.records[i].end, rb.records[i].end);
  }
}

}  // namespace
}  // namespace istc::core
