// Run-fork determinism: a fork taken mid-run and advanced to the end must
// be bit-identical to the same scenario simulated from scratch — same
// records, same kills, same sim_end, same RunReport.  This is the
// contract that lets sweep benches simulate a shared prefix once and fork
// per variant (bench/extension_faults.cpp).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/downtime.hpp"
#include "core/driver.hpp"
#include "core/experiment.hpp"
#include "core/fork.hpp"
#include "fault/fault.hpp"
#include "metrics/report.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace istc::core {
namespace {

bool same_records(const std::vector<sched::JobRecord>& a,
                  const std::vector<sched::JobRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].job.id != b[i].job.id || a[i].job.cpus != b[i].job.cpus ||
        a[i].job.submit != b[i].job.submit || a[i].start != b[i].start ||
        a[i].end != b[i].end) {
      return false;
    }
  }
  return true;
}

void expect_identical(const sched::RunResult& a, const sched::RunResult& b) {
  EXPECT_EQ(a.sim_end, b.sim_end);
  EXPECT_EQ(a.span, b.span);
  EXPECT_TRUE(same_records(a.records, b.records));
  EXPECT_TRUE(same_records(a.killed, b.killed));
}

Scenario fast_scenario() {
  Scenario s;
  s.site = cluster::Site::kRoss;  // smallest canonical site = fastest run
  s.project = ProjectSpec::continual_stream(
      32, 458, cluster::site_span(cluster::Site::kRoss));
  return s;
}

// The core contract: fork at T, drain both sides, get the same answer as
// never having forked.  Exercised at several fork points, including one
// past most of the run.
TEST(ForkDeterminism, ForkMatchesFromScratchAtSeveralTimes) {
  const Scenario scenario = fast_scenario();
  const sched::RunResult scratch = run_scenario(scenario);
  const SimTime span = cluster::site_span(scenario.site);
  for (const double frac : {0.25, 0.75}) {
    SimRun prefix(scenario);
    prefix.run_until(static_cast<SimTime>(static_cast<double>(span) * frac));
    std::unique_ptr<SimRun> forked = prefix.fork();
    // The fork finishes first: its result must not depend on whether the
    // source has advanced past the fork point yet.
    expect_identical(forked->finish(), scratch);
    expect_identical(prefix.finish(), scratch);
  }
}

// Two forks from one prefix are fully independent: giving one of them a
// fault process must not perturb the other.
TEST(ForkDeterminism, SiblingForksAreIsolated) {
  const Scenario scenario = fast_scenario();
  const sched::RunResult scratch = run_scenario(scenario);
  const SimTime span = cluster::site_span(scenario.site);
  const SimTime t0 = span / 2;

  SimRun prefix(scenario);
  prefix.run_until(t0);
  std::unique_ptr<SimRun> clean = prefix.fork();
  std::unique_ptr<SimRun> faulted = prefix.fork();

  fault::FaultSpec faults;
  faults.crash_mtbf = 30 * kSecondsPerHour;
  faults.node_mtbf = 15 * kSecondsPerHour;
  faults.node_cpus = 256;
  faults.start = faulted->now();
  faulted->add_faults(faults);
  const sched::RunResult faulted_result = faulted->finish();
  EXPECT_GT(faulted->injector()->stats().crashes +
                faulted->injector()->stats().node_failures,
            0u);

  expect_identical(clean->finish(), scratch);
  expect_identical(prefix.finish(), scratch);
  // The faulted fork genuinely diverged (else the isolation check above
  // proves nothing).
  EXPECT_FALSE(same_records(faulted_result.records, scratch.records));
}

// The sweep-bench shape: both arms run the fault-free prefix to T0 and
// construct the injector there, one via fork one from scratch, so event
// sequence numbers line up and the results are bit-identical.
TEST(ForkDeterminism, FaultedForkMatchesScratchRunWithSameFaultStart) {
  const Scenario scenario = fast_scenario();
  const SimTime span = cluster::site_span(scenario.site);
  const SimTime t0 = (span / 4) * 3;
  fault::FaultSpec faults;
  faults.crash_mtbf = 30 * kSecondsPerHour;
  faults.start = t0;

  SimRun prefix(scenario);
  prefix.run_until(t0);
  std::unique_ptr<SimRun> forked = prefix.fork();
  forked->add_faults(faults);
  const sched::RunResult via_fork = forked->finish();

  SimRun scratch(scenario);
  scratch.run_until(t0);
  scratch.add_faults(faults);
  const sched::RunResult via_scratch = scratch.finish();

  expect_identical(via_fork, via_scratch);
  EXPECT_EQ(forked->injector()->stats().crashes,
            scratch.injector()->stats().crashes);
  EXPECT_EQ(forked->injector()->stats().native_resubmits,
            scratch.injector()->stats().native_resubmits);
}

// RunReport equality: ingesting the forked and from-scratch results into
// fresh metrics yields byte-identical deterministic reports.
TEST(ForkDeterminism, RunReportsAreByteIdentical) {
  const Scenario scenario = fast_scenario();
  const sched::RunResult scratch = run_scenario(scenario);

  SimRun prefix(scenario);
  prefix.run_until(cluster::site_span(scenario.site) / 2);
  const sched::RunResult via_fork = prefix.fork()->finish();

  const auto report_of = [](const sched::RunResult& r) {
    metrics::RunMetrics m;
    m.ingest(r);
    std::ostringstream out;
    metrics::ReportOptions opts;
    opts.include_wall_clock = false;
    metrics::write_run_report(out, r, m, opts);
    return out.str();
  };
  EXPECT_EQ(report_of(via_fork), report_of(scratch));
}

// Forks start unobserved, but a tracer attached post-fork sees the rest
// of the run without perturbing it.
TEST(ForkDeterminism, PostForkTracerIsScheduleNeutral) {
  const Scenario scenario = fast_scenario();
  const sched::RunResult scratch = run_scenario(scenario);

  SimRun prefix(scenario);
  prefix.run_until(cluster::site_span(scenario.site) / 2);
  std::unique_ptr<SimRun> forked = prefix.fork();
  trace::Tracer tracer(trace::TraceMode::kCountersOnly);
  forked->set_tracer(&tracer);
  const sched::RunResult traced = forked->finish();
  expect_identical(traced, scratch);
  EXPECT_GT(tracer.counters().gate_decisions, 0u);
}

// ---------------------------------------------------------------------------
// Golden pin.  The miniature from tests/trace/test_determinism.cpp is
// rebuilt here by hand (it is not a Scenario), forked mid-run through the
// raw clone constructors, and its drained fork must hit the very same
// golden schedule hash the determinism suite pins.  A fork is not allowed
// to be merely self-consistent — it must reproduce the canonical schedule.

constexpr SimTime kMiniSpan = 6000;

std::vector<workload::Job> random_natives(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<workload::Job> jobs;
  SimTime submit = 0;
  for (workload::JobId id = 0; id < 150; ++id) {
    submit += static_cast<SimTime>(rng.below(80));
    workload::Job j;
    j.id = id;
    j.submit = submit;
    j.cpus = 1 + static_cast<int>(rng.below(32));
    j.runtime = 20 + static_cast<Seconds>(rng.below(400));
    j.estimate = j.runtime * (1 + static_cast<Seconds>(rng.below(4)));
    j.user = static_cast<workload::UserId>(rng.below(5));
    jobs.push_back(j);
  }
  return jobs;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_run(const sched::RunResult& run) {
  // Same (nonstandard) offset basis as tests/trace/test_determinism.cpp —
  // the pin below is only comparable if the hash matches digit for digit.
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : run.records) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.cpus));
  }
  for (const auto& r : run.killed) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
  }
  h = fnv1a_u64(h, static_cast<std::uint64_t>(run.sim_end));
  return h;
}

TEST(ForkDeterminism, MiniatureForkHitsGoldenScheduleHash) {
  sim::Engine eng(sim::QueueImpl::kCalendar);
  cluster::DowntimeCalendar cal({{2000, 2400}, {4500, 4800}});
  cluster::Machine machine(
      {.name = "determinism-mini", .site = "", .queue_system = "",
       .cpus = 64, .clock_ghz = 1.0},
      cal);
  sched::PolicySpec policy;
  policy.preempt_interstitial = true;
  sched::BatchScheduler s(eng, machine, policy);
  for (const auto& j : random_natives(42)) s.submit(j);
  ProjectSpec spec = ProjectSpec::continual_stream(8, 120, kMiniSpan);
  spec.recovery = PreemptionRecovery::kCheckpoint;
  InterstitialDriver driver(s, spec, 10000);

  while (eng.next_event_time() <= 3000) eng.step();

  // Fork through the raw clone constructors, in stack order.
  sim::Engine eng2(eng.queue_impl());
  eng2.adopt_state(eng);
  sched::BatchScheduler s2(eng2, s);
  InterstitialDriver driver2(s2, driver);

  eng2.run();
  EXPECT_EQ(hash_run(s2.take_result(kMiniSpan)), 0x4cb3857a75f8d6bfull);
  // The abandoned source still drains to the same schedule.
  eng.run();
  EXPECT_EQ(hash_run(s.take_result(kMiniSpan)), 0x4cb3857a75f8d6bfull);
}

}  // namespace
}  // namespace istc::core
