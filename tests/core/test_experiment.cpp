#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"

namespace istc::core {
namespace {

using cluster::Site;

TEST(Experiment, NativeBaselineIsCached) {
  const auto& a = native_baseline(Site::kRoss);
  const auto& b = native_baseline(Site::kRoss);
  EXPECT_EQ(&a, &b);
}

TEST(Experiment, ContinualRunCacheKeysOnShapeAndCap) {
  const auto& a = continual_run(Site::kRoss, 32, 120);
  const auto& b = continual_run(Site::kRoss, 32, 120);
  EXPECT_EQ(&a, &b);
  const auto& c = continual_run(Site::kRoss, 32, 120, 0.95);
  EXPECT_NE(&a, &c);
}

TEST(Experiment, RunScenarioDeterministic) {
  Scenario sc;
  sc.site = Site::kRoss;
  sc.log_seed = 42;
  const auto r1 = run_scenario(sc);
  const auto r2 = run_scenario(sc);
  ASSERT_EQ(r1.records.size(), r2.records.size());
  for (std::size_t i = 0; i < r1.records.size(); i += 131) {
    EXPECT_EQ(r1.records[i].start, r2.records[i].start);
    EXPECT_EQ(r1.records[i].end, r2.records[i].end);
  }
}

TEST(Experiment, PerfectEstimatesScenarioRuns) {
  Scenario sc;
  sc.site = Site::kRoss;
  sc.perfect_estimates = true;
  const auto run = run_scenario(sc);
  EXPECT_EQ(run.records.size(), 4423u);
  for (std::size_t i = 0; i < run.records.size(); i += 97) {
    EXPECT_EQ(run.records[i].job.estimate, run.records[i].job.runtime);
  }
}

TEST(Experiment, TimeScalingRaisesUtilization) {
  Scenario base;
  base.site = Site::kRoss;
  Scenario longer = base;
  longer.native_time_factor = 1.2;
  const auto r0 = run_scenario(base);
  const auto r1 = run_scenario(longer);
  const double u0 = metrics::average_utilization(r0.records,
                                                 r0.machine.cpus, 0, r0.span);
  const double u1 = metrics::average_utilization(r1.records,
                                                 r1.machine.cpus, 0, r1.span);
  EXPECT_GT(u1, u0 + 0.05);
}

TEST(Experiment, TileRecordsShiftsAllTimes) {
  const auto& base = native_baseline(Site::kRoss);
  const SimTime shift = base.span + days(10);
  const auto tiled = tile_records(base.records, shift, 2);
  ASSERT_EQ(tiled.size(), base.records.size() * 2);
  const auto& first_copy = tiled[0];
  const auto& second_copy = tiled[base.records.size()];
  EXPECT_EQ(second_copy.start, first_copy.start + shift);
  EXPECT_EQ(second_copy.end, first_copy.end + shift);
  EXPECT_EQ(second_copy.job.submit, first_copy.job.submit + shift);
}

TEST(Experiment, TileCalendarShiftsWindows) {
  cluster::DowntimeCalendar cal({{100, 200}});
  const auto tiled = tile_calendar(cal, 1000, 3);
  ASSERT_EQ(tiled.windows().size(), 3u);
  EXPECT_EQ(tiled.windows()[1].start, 1100);
  EXPECT_EQ(tiled.windows()[2].end, 2200);
}

TEST(Experiment, TileRecordsSingleCopyIsIdentity) {
  const auto& base = native_baseline(Site::kRoss);
  const auto tiled = tile_records(base.records, base.span, 1);
  ASSERT_EQ(tiled.size(), base.records.size());
  for (std::size_t i = 0; i < tiled.size(); i += 61) {
    EXPECT_EQ(tiled[i].job.id, base.records[i].job.id);
    EXPECT_EQ(tiled[i].job.submit, base.records[i].job.submit);
    EXPECT_EQ(tiled[i].start, base.records[i].start);
    EXPECT_EQ(tiled[i].end, base.records[i].end);
  }
}

TEST(Experiment, TileRecordsDrainShiftPreventsOverlap) {
  // A job submitted near the span end drains past it.  Tiling with the
  // drain time (max end), as omniscient_makespans does, keeps copies on
  // disjoint time ranges; tiling with the bare span would overlap them.
  std::vector<sched::JobRecord> records(2);
  records[0].job.id = 1;
  records[0].job.submit = 0;
  records[0].start = 0;
  records[0].end = 500;
  records[1].job.id = 2;
  records[1].job.submit = 900;
  records[1].start = 950;
  records[1].end = 1400;  // past span = 1000
  const SimTime span = 1000;
  SimTime drain = span;
  for (const auto& r : records) drain = std::max(drain, r.end);
  const auto tiled = tile_records(records, drain, 3);
  ASSERT_EQ(tiled.size(), 6u);
  for (std::size_t c = 1; c < 3; ++c) {
    SimTime prev_max_end = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      prev_max_end = std::max(prev_max_end, tiled[(c - 1) * 2 + i].end);
    }
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_GE(tiled[c * 2 + i].start, prev_max_end);
      EXPECT_GE(tiled[c * 2 + i].job.submit, prev_max_end);
    }
  }
}

TEST(Experiment, TileCalendarPreservesWindowShapes) {
  // Every copy keeps each window's duration and its offset within the
  // copy; only the tile shift moves.
  cluster::DowntimeCalendar cal({{100, 250}, {600, 640}});
  const SimTime span = 1000;
  const auto tiled = tile_calendar(cal, span, 4);
  ASSERT_EQ(tiled.windows().size(), 8u);
  for (std::size_t c = 0; c < 4; ++c) {
    const SimTime shift = static_cast<SimTime>(c) * span;
    for (std::size_t w = 0; w < 2; ++w) {
      const auto& orig = cal.windows()[w];
      const auto& copy = tiled.windows()[c * 2 + w];
      EXPECT_EQ(copy.start, orig.start + shift);
      EXPECT_EQ(copy.end - copy.start, orig.end - orig.start);
    }
  }
}

TEST(Experiment, OmniscientMakespansDeterministicAndPositive) {
  const auto spec = ProjectSpec::paper(500, 32, 120);
  const auto a = omniscient_makespans(Site::kRoss, spec, 4, 777);
  const auto b = omniscient_makespans(Site::kRoss, spec, 4, 777);
  ASSERT_EQ(a.hours.size(), 4u);
  EXPECT_EQ(a.hours, b.hours);
  for (double h : a.hours) EXPECT_GT(h, 0.0);
}

TEST(Experiment, OmniscientSeedChangesStarts) {
  const auto spec = ProjectSpec::paper(500, 32, 120);
  const auto a = omniscient_makespans(Site::kRoss, spec, 4, 1);
  const auto b = omniscient_makespans(Site::kRoss, spec, 4, 2);
  EXPECT_NE(a.hours, b.hours);
}

TEST(Experiment, FallibleMakespansComeFromCachedContinualRun) {
  const auto spec = ProjectSpec::paper(200, 32, 120);
  const auto sample = fallible_makespans(Site::kRoss, spec, 50);
  ASSERT_TRUE(sample.feasible());
  EXPECT_EQ(sample.hours.size(), 50u);
  for (double h : sample.hours) EXPECT_GT(h, 0.0);
}

TEST(Experiment, MakespanSampleSummary) {
  MakespanSample s;
  EXPECT_FALSE(s.feasible());
  s.hours = {1.0, 2.0, 3.0};
  EXPECT_TRUE(s.feasible());
  EXPECT_DOUBLE_EQ(s.summary().mean(), 2.0);
}

}  // namespace
}  // namespace istc::core
