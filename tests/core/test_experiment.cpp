#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"

namespace istc::core {
namespace {

using cluster::Site;

TEST(Experiment, NativeBaselineIsCached) {
  const auto& a = native_baseline(Site::kRoss);
  const auto& b = native_baseline(Site::kRoss);
  EXPECT_EQ(&a, &b);
}

TEST(Experiment, ContinualRunCacheKeysOnShapeAndCap) {
  const auto& a = continual_run(Site::kRoss, 32, 120);
  const auto& b = continual_run(Site::kRoss, 32, 120);
  EXPECT_EQ(&a, &b);
  const auto& c = continual_run(Site::kRoss, 32, 120, 0.95);
  EXPECT_NE(&a, &c);
}

TEST(Experiment, RunScenarioDeterministic) {
  Scenario sc;
  sc.site = Site::kRoss;
  sc.log_seed = 42;
  const auto r1 = run_scenario(sc);
  const auto r2 = run_scenario(sc);
  ASSERT_EQ(r1.records.size(), r2.records.size());
  for (std::size_t i = 0; i < r1.records.size(); i += 131) {
    EXPECT_EQ(r1.records[i].start, r2.records[i].start);
    EXPECT_EQ(r1.records[i].end, r2.records[i].end);
  }
}

TEST(Experiment, PerfectEstimatesScenarioRuns) {
  Scenario sc;
  sc.site = Site::kRoss;
  sc.perfect_estimates = true;
  const auto run = run_scenario(sc);
  EXPECT_EQ(run.records.size(), 4423u);
  for (std::size_t i = 0; i < run.records.size(); i += 97) {
    EXPECT_EQ(run.records[i].job.estimate, run.records[i].job.runtime);
  }
}

TEST(Experiment, TimeScalingRaisesUtilization) {
  Scenario base;
  base.site = Site::kRoss;
  Scenario longer = base;
  longer.native_time_factor = 1.2;
  const auto r0 = run_scenario(base);
  const auto r1 = run_scenario(longer);
  const double u0 = metrics::average_utilization(r0.records,
                                                 r0.machine.cpus, 0, r0.span);
  const double u1 = metrics::average_utilization(r1.records,
                                                 r1.machine.cpus, 0, r1.span);
  EXPECT_GT(u1, u0 + 0.05);
}

TEST(Experiment, TileRecordsShiftsAllTimes) {
  const auto& base = native_baseline(Site::kRoss);
  const SimTime shift = base.span + days(10);
  const auto tiled = tile_records(base.records, shift, 2);
  ASSERT_EQ(tiled.size(), base.records.size() * 2);
  const auto& first_copy = tiled[0];
  const auto& second_copy = tiled[base.records.size()];
  EXPECT_EQ(second_copy.start, first_copy.start + shift);
  EXPECT_EQ(second_copy.end, first_copy.end + shift);
  EXPECT_EQ(second_copy.job.submit, first_copy.job.submit + shift);
}

TEST(Experiment, TileCalendarShiftsWindows) {
  cluster::DowntimeCalendar cal({{100, 200}});
  const auto tiled = tile_calendar(cal, 1000, 3);
  ASSERT_EQ(tiled.windows().size(), 3u);
  EXPECT_EQ(tiled.windows()[1].start, 1100);
  EXPECT_EQ(tiled.windows()[2].end, 2200);
}

TEST(Experiment, OmniscientMakespansDeterministicAndPositive) {
  const auto spec = ProjectSpec::paper(500, 32, 120);
  const auto a = omniscient_makespans(Site::kRoss, spec, 4, 777);
  const auto b = omniscient_makespans(Site::kRoss, spec, 4, 777);
  ASSERT_EQ(a.hours.size(), 4u);
  EXPECT_EQ(a.hours, b.hours);
  for (double h : a.hours) EXPECT_GT(h, 0.0);
}

TEST(Experiment, OmniscientSeedChangesStarts) {
  const auto spec = ProjectSpec::paper(500, 32, 120);
  const auto a = omniscient_makespans(Site::kRoss, spec, 4, 1);
  const auto b = omniscient_makespans(Site::kRoss, spec, 4, 2);
  EXPECT_NE(a.hours, b.hours);
}

TEST(Experiment, FallibleMakespansComeFromCachedContinualRun) {
  const auto spec = ProjectSpec::paper(200, 32, 120);
  const auto sample = fallible_makespans(Site::kRoss, spec, 50);
  ASSERT_TRUE(sample.feasible());
  EXPECT_EQ(sample.hours.size(), 50u);
  for (double h : sample.hours) EXPECT_GT(h, 0.0);
}

TEST(Experiment, MakespanSampleSummary) {
  MakespanSample s;
  EXPECT_FALSE(s.feasible());
  s.hours = {1.0, 2.0, 3.0};
  EXPECT_TRUE(s.feasible());
  EXPECT_DOUBLE_EQ(s.summary().mean(), 2.0);
}

}  // namespace
}  // namespace istc::core
