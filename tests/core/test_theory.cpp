#include "core/theory.hpp"

#include <gtest/gtest.h>

#include "cluster/presets.hpp"

namespace istc::core {
namespace {

using cluster::Site;

TheoryInputs paper_inputs(Site site) {
  return theory_inputs(cluster::machine_spec(site),
                       cluster::site_targets(site).utilization);
}

TEST(Theory, IdealMakespanFormula) {
  // Blue Mountain, 7.7 Pc: P/(N*C*(1-U)).
  const auto in = paper_inputs(Site::kBlueMountain);
  const double expected =
      7.7e15 / (4662.0 * 0.262e9 * (1.0 - 0.790));
  EXPECT_NEAR(ideal_makespan_s(in, 7.7e15), expected, 1.0);
  EXPECT_NEAR(ideal_makespan_s(in, 7.7e15) / 3600.0, 8.34, 0.05);
}

TEST(Theory, FittedMakespanUsesPaperConstants) {
  const auto in = paper_inputs(Site::kRoss);
  const double ideal = ideal_makespan_s(in, 1e15);
  EXPECT_DOUBLE_EQ(fitted_makespan_s(in, 1e15), 5256.0 + 1.16 * ideal);
}

TEST(Theory, DedicatedFasterThanIdeal) {
  for (auto site : cluster::all_sites()) {
    const auto in = paper_inputs(site);
    EXPECT_LT(dedicated_makespan_s(in, 1e15), ideal_makespan_s(in, 1e15));
  }
}

TEST(Theory, SpareCpus) {
  const auto in = paper_inputs(Site::kBluePacific);
  // 926 * (1-.907) ~ 86 spare CPUs (the paper's "about 90").
  EXPECT_NEAR(spare_cpus(in), 86.1, 0.1);
}

// §4.2's worked breakage examples, exactly as printed in the paper.
TEST(Theory, BreakageRoss) {
  const auto in = paper_inputs(Site::kRoss);
  EXPECT_EQ(breakage_slots(in, 32), 16);   // floor(16.55)
  EXPECT_NEAR(breakage_factor(in, 32), 1.035, 0.001);
}

TEST(Theory, BreakageBlueMountain) {
  const auto in = paper_inputs(Site::kBlueMountain);
  EXPECT_EQ(breakage_slots(in, 32), 30);   // floor(30.59)
  EXPECT_NEAR(breakage_factor(in, 32), 1.020, 0.001);
}

TEST(Theory, BreakageBluePacific) {
  const auto in = paper_inputs(Site::kBluePacific);
  EXPECT_EQ(breakage_slots(in, 32), 2);    // floor(2.69) — just below 3!
  EXPECT_NEAR(breakage_factor(in, 32), 1.346, 0.001);
}

TEST(Theory, OneCpuJobsHaveNearUnitBreakage) {
  for (auto site : cluster::all_sites()) {
    const auto in = paper_inputs(site);
    EXPECT_GE(breakage_factor(in, 1), 1.0);
    EXPECT_LT(breakage_factor(in, 1), 1.02);
  }
}

TEST(Theory, BreakageMonotoneInJobWidthOnAverage) {
  // Wider jobs can only waste as much or more of the spare capacity.
  const auto in = paper_inputs(Site::kBluePacific);
  EXPECT_LE(breakage_factor(in, 1), breakage_factor(in, 32));
}

TEST(Theory, BreakageCorrectedMakespan) {
  const auto in = paper_inputs(Site::kBluePacific);
  EXPECT_NEAR(breakage_corrected_makespan_s(in, 1e15, 32),
              ideal_makespan_s(in, 1e15) * breakage_factor(in, 32), 1e-6);
  EXPECT_NEAR(breakage_corrected_makespan_s(in, 1e15, 32) /
                  ideal_makespan_s(in, 1e15),
              1.346, 0.001);
}

TEST(Theory, HigherUtilizationLongerMakespan) {
  const auto m = cluster::machine_spec(Site::kBlueMountain);
  EXPECT_LT(ideal_makespan_s(theory_inputs(m, 0.5), 1e15),
            ideal_makespan_s(theory_inputs(m, 0.9), 1e15));
}

TEST(Theory, Table2ScaleSanity) {
  // The paper's omniscient Blue Pacific 123-Pc makespan is ~979 h; the
  // ideal model gives ~1076 h — same order, slightly above the measured.
  const auto in = paper_inputs(Site::kBluePacific);
  EXPECT_NEAR(ideal_makespan_s(in, 123e15) / 3600.0, 1076.0, 15.0);
}

TEST(TheoryTimeBreakage, ZeroWithoutOutages) {
  cluster::DowntimeCalendar none;
  EXPECT_DOUBLE_EQ(time_breakage_loss(none, days(30), 458), 0.0);
  EXPECT_DOUBLE_EQ(time_breakage_factor(none, days(30), 458), 1.0);
}

TEST(TheoryTimeBreakage, KnownCalendar) {
  // Two 1-hour windows in 10 days: up time = 10 d - 2 h.
  cluster::DowntimeCalendar cal(
      {{days(3), days(3) + hours(1)}, {days(7), days(7) + hours(1)}});
  const double up = static_cast<double>(days(10) - hours(2));
  const Seconds r = 3600;
  EXPECT_NEAR(time_breakage_loss(cal, days(10), r), 2.0 * 1800.0 / up,
              1e-12);
}

TEST(TheoryTimeBreakage, GrowsWithJobLength) {
  const auto cal = cluster::site_downtime(Site::kBlueMountain);
  const auto span = cluster::site_span(Site::kBlueMountain);
  EXPECT_LT(time_breakage_factor(cal, span, 458),
            time_breakage_factor(cal, span, 3664));
  // Both are small corrections for the paper's job lengths.
  EXPECT_LT(time_breakage_factor(cal, span, 3664), 1.01);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(TheoryDeath, FullUtilizationRejected) {
  const auto m = cluster::machine_spec(Site::kRoss);
  EXPECT_DEATH(theory_inputs(m, 1.0), "precondition");
}

TEST(TheoryDeath, JobWiderThanSpareCapacityRejected) {
  const auto in = paper_inputs(Site::kBluePacific);  // ~86 spare
  EXPECT_DEATH(breakage_factor(in, 128), "precondition");
}
#endif

}  // namespace
}  // namespace istc::core
