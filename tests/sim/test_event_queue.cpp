#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace istc::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.heap_allocations(), 0u);
}

TEST(EventQueue, OrdersTypedEventsByTime) {
  EventQueue q;
  q.push_typed(30, EventType::kJobFinish, 3);
  q.push_typed(10, EventType::kJobFinish, 1);
  q.push_typed(20, EventType::kJobFinish, 2);
  std::vector<std::uint32_t> fired;
  while (!q.empty()) fired.push_back(q.pop().arg);
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 50; ++i) q.push_typed(5, EventType::kJobSubmit, i);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 5);
    EXPECT_EQ(e.arg, i);
  }
}

TEST(EventQueue, PopCarriesTypeAndArg) {
  EventQueue q;
  q.push_typed(7, EventType::kSchedulerWake, 0);
  q.push_typed(3, EventType::kJobFinish, 42);
  Event e = q.pop();
  EXPECT_EQ(e.time, 3);
  EXPECT_EQ(e.type, EventType::kJobFinish);
  EXPECT_EQ(e.arg, 42u);
  e = q.pop();
  EXPECT_EQ(e.type, EventType::kSchedulerWake);
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  q.push_typed(42, EventType::kSchedulerWake, 0);
  q.push_typed(7, EventType::kSchedulerWake, 0);
  EXPECT_EQ(q.next_time(), 7);
  q.pop();
  EXPECT_EQ(q.next_time(), 42);
}

TEST(EventQueue, SizeTracksPushPop) {
  EventQueue q;
  q.push_typed(1, EventType::kSchedulerWake, 0);
  q.push_typed(2, EventType::kSchedulerWake, 0);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.peak_size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peak_size(), 2u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push_callback(10, [&] { fired.push_back(10); });
  q.push_callback(5, [&] { fired.push_back(5); });
  q.take_callback(q.pop()).invoke();  // fires 5
  q.push_callback(1, [&] { fired.push_back(1); });  // earlier than remaining 10
  q.take_callback(q.pop()).invoke();
  q.take_callback(q.pop()).invoke();
  EXPECT_EQ(fired, (std::vector<int>{5, 1, 10}));
}

TEST(EventQueue, NegativeTimesAllowedAndOrdered) {
  // The queue itself is time-agnostic (the engine enforces monotonicity).
  EventQueue q;
  q.push_typed(-5, EventType::kJobFinish, 5);
  q.push_typed(-10, EventType::kJobFinish, 10);
  EXPECT_EQ(q.pop().time, -10);
  EXPECT_EQ(q.pop().time, -5);
}

TEST(EventQueue, SmallTrivialCallbackStaysInline) {
  EventQueue q;
  q.reserve(4);
  long sink = 0;
  q.push_callback(1, [&sink] { ++sink; });  // 8-byte capture: inline
  EXPECT_EQ(q.heap_allocations(), 0u);
  q.take_callback(q.pop()).invoke();
  EXPECT_EQ(sink, 1);
}

TEST(EventQueue, CallbackSlotsRecycleThroughFreeList) {
  // A popped callback's slab slot returns to the free list, so sustained
  // one-in-flight churn touches a single slot and never allocates.
  EventQueue q;
  q.reserve(2);
  long sink = 0;
  for (SimTime t = 0; t < 100; ++t) {
    q.push_callback(t, [&sink] { ++sink; });
    q.take_callback(q.pop()).invoke();
  }
  EXPECT_EQ(sink, 100);
  EXPECT_EQ(q.heap_allocations(), 0u);
}

TEST(EventQueue, OversizeOrNonTrivialCallbackIsBoxedAndCounted) {
  EventQueue q;
  q.reserve(4);
  std::string payload = "a string is not trivially copyable";
  bool fired = false;
  q.push_callback(1, [payload, &fired] { fired = payload.size() > 0; });
  EXPECT_EQ(q.boxed_callbacks(), 1u);
  EXPECT_GE(q.heap_allocations(), 1u);
  q.take_callback(q.pop()).invoke();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ReservedSteadyStateAllocatesNothing) {
  // The acceptance criterion of the rewrite: with a reserve()d backing
  // vector and typed / inline-callback events, a sustained push/pop churn
  // performs zero heap allocations.
  EventQueue q;
  q.reserve(1024);
  long sink = 0;
  for (SimTime t = 0; t < 512; ++t) q.push_typed(t, EventType::kJobFinish, 0);
  for (int round = 0; round < 200; ++round) {
    const Event e = q.pop();
    if (e.type == EventType::kCallback) q.take_callback(e).invoke();
    q.push_typed(e.time + 1000, EventType::kJobSubmit, 1);
    q.push_callback(e.time + 1001, [&sink] { ++sink; });
    const Event e2 = q.pop();
    if (e2.type == EventType::kCallback) q.take_callback(e2).invoke();
  }
  EXPECT_EQ(q.heap_allocations(), 0u);
}

TEST(EventQueue, DestructorDisposesUndrainedBoxedCallbacks) {
  // Leak-checked under the ASan CI job: destroying a queue that still
  // holds boxed callbacks must free their boxes without invoking them.
  auto alive = std::make_shared<int>(7);
  bool invoked = false;
  {
    EventQueue q;
    q.push_callback(1, [alive, &invoked] { invoked = true; });
    EXPECT_EQ(q.boxed_callbacks(), 1u);
    EXPECT_EQ(alive.use_count(), 2);
  }
  EXPECT_FALSE(invoked);
  EXPECT_EQ(alive.use_count(), 1);
}

TEST(EventQueue, GrowthWithoutReserveIsCounted) {
  EventQueue q;  // no reserve: vector growth must be visible
  for (std::uint32_t i = 0; i < 100; ++i) {
    q.push_typed(static_cast<SimTime>(i), EventType::kSchedulerWake, 0);
  }
  EXPECT_GT(q.heap_allocations(), 0u);
  EXPECT_EQ(q.boxed_callbacks(), 0u);
}

// -- property test: typed heap vs. a naive reference model ----------------
//
// Random push/pop interleavings, with deliberately clumped timestamps (so
// large same-time batches occur) and pushes at the current minimum time
// (the "schedule for now from inside a callback" shape), checked against a
// linear-scan reference model of the (time, insertion-seq) FIFO contract.

struct RefEvent {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t arg;
};

class ReferenceModel {
 public:
  void push(SimTime t, std::uint32_t arg) {
    events_.push_back(RefEvent{t, next_seq_++, arg});
  }

  RefEvent pop() {
    auto it = std::min_element(events_.begin(), events_.end(),
                               [](const RefEvent& a, const RefEvent& b) {
                                 if (a.time != b.time) return a.time < b.time;
                                 return a.seq < b.seq;
                               });
    const RefEvent e = *it;
    events_.erase(it);
    return e;
  }

  bool empty() const { return events_.empty(); }

 private:
  std::vector<RefEvent> events_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventQueueProperty, RandomInterleavingsMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(0xE7E27 + seed);
    EventQueue q;
    ReferenceModel ref;
    std::uint32_t next_arg = 0;
    SimTime floor = 0;  // pops are monotone; pushes never go below this

    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t roll = rng.below(100);
      if (roll < 55 || q.empty()) {
        // Clumped times: ~half the pushes land on a shared timestamp to
        // build large same-time batches; some land exactly at the current
        // minimum ("scheduled for the current timestep").
        SimTime t;
        if (roll < 15 && !q.empty()) {
          t = q.next_time();
        } else if (roll < 35) {
          t = floor + static_cast<SimTime>(rng.below(3));  // clump
        } else {
          t = floor + static_cast<SimTime>(rng.below(200));
        }
        q.push_typed(t, EventType::kJobSubmit, next_arg);
        ref.push(t, next_arg);
        ++next_arg;
      } else {
        const Event got = q.pop();
        const RefEvent want = ref.pop();
        ASSERT_EQ(got.time, want.time) << "seed " << seed << " step " << step;
        ASSERT_EQ(got.seq, want.seq) << "seed " << seed << " step " << step;
        ASSERT_EQ(got.arg, want.arg) << "seed " << seed << " step " << step;
        floor = got.time;
      }
    }
    while (!q.empty()) {
      const Event got = q.pop();
      const RefEvent want = ref.pop();
      ASSERT_EQ(got.time, want.time);
      ASSERT_EQ(got.seq, want.seq);
      ASSERT_EQ(got.arg, want.arg);
    }
    EXPECT_TRUE(ref.empty());
  }
}

TEST(EventQueueProperty, LargeSameTimestampBatchDrainsInInsertionOrder) {
  EventQueue q;
  ReferenceModel ref;
  Rng rng(0xBA7C4);
  // A few thousand events on just three timestamps, pushed in random
  // time order: FIFO-within-time must still hold exactly.
  for (std::uint32_t i = 0; i < 3000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.below(3)) * 100;
    q.push_typed(t, EventType::kJobFinish, i);
    ref.push(t, i);
  }
  std::uint64_t last_seq_at_time[3] = {0, 0, 0};
  bool seen[3] = {false, false, false};
  while (!q.empty()) {
    const Event got = q.pop();
    const RefEvent want = ref.pop();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.seq, want.seq);
    const auto slot = static_cast<std::size_t>(got.time / 100);
    if (seen[slot]) {
      EXPECT_GT(got.seq, last_seq_at_time[slot]);
    }
    last_seq_at_time[slot] = got.seq;
    seen[slot] = true;
  }
}

// -- the legacy std::function baseline ------------------------------------

TEST(LegacyEventQueue, OrdersByTime) {
  LegacyEventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(30); });
  q.push(10, [&] { fired.push_back(10); });
  q.push(20, [&] { fired.push_back(20); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
}

TEST(LegacyEventQueue, FifoAmongEqualTimes) {
  LegacyEventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 50; ++i) q.push(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(LegacyEventQueue, NextTimeAndSize) {
  LegacyEventQueue q;
  q.push(42, [] {});
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.next_time(), 42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(LegacyEventQueue, MatchesTypedQueueOrderOnRandomWorkload) {
  // Both implementations must realize the same (time, seq) contract.
  Rng rng(0x5EED5);
  EventQueue typed;
  LegacyEventQueue legacy;
  std::vector<std::uint32_t> legacy_fired;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.below(50));
    typed.push_typed(t, EventType::kJobSubmit, i);
    legacy.push(t, [&legacy_fired, i] { legacy_fired.push_back(i); });
  }
  std::vector<std::uint32_t> typed_fired;
  while (!typed.empty()) typed_fired.push_back(typed.pop().arg);
  while (!legacy.empty()) legacy.pop()();
  EXPECT_EQ(typed_fired, legacy_fired);
}

// -- the calendar/ladder queue --------------------------------------------

TEST(CalendarQueue, OrdersTypedEventsByTime) {
  CalendarEventQueue q;
  q.push_typed(30, EventType::kJobFinish, 3);
  q.push_typed(10, EventType::kJobFinish, 1);
  q.push_typed(20, EventType::kJobFinish, 2);
  std::vector<std::uint32_t> fired;
  while (!q.empty()) fired.push_back(q.pop().arg);
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(CalendarQueue, FifoAmongEqualTimes) {
  CalendarEventQueue q;
  for (std::uint32_t i = 0; i < 50; ++i) {
    q.push_typed(5, EventType::kJobSubmit, i);
  }
  for (std::uint32_t i = 0; i < 50; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 5);
    EXPECT_EQ(e.arg, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, OrdersAcrossRungBoundaries) {
  // One event per tier: sorted window, rung 1, rung 2, far overflow —
  // pushed far-first so every routing branch is taken.
  constexpr SimTime kRung1Span = 64 * 1024;            // rung-1 horizon
  constexpr SimTime kRung2Span = SimTime{65536} * 1024;  // rung-2 horizon
  CalendarEventQueue q;
  q.push_typed(kRung2Span + 1000, EventType::kJobFinish, 4);  // far
  q.push_typed(kRung1Span + 1000, EventType::kJobFinish, 3);  // rung 2
  q.push_typed(1000, EventType::kJobFinish, 2);               // rung 1
  q.push_typed(0, EventType::kJobFinish, 1);                  // window
  std::vector<std::uint32_t> fired;
  while (!q.empty()) fired.push_back(q.pop().arg);
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST(CalendarQueue, NegativeTimesAllowedAndOrdered) {
  // The queue itself is time-agnostic (the engine enforces t >= now);
  // bucket math must stay floor-consistent below zero.
  CalendarEventQueue q;
  q.push_typed(5, EventType::kJobSubmit, 3);
  q.push_typed(-100, EventType::kJobSubmit, 1);
  q.push_typed(-7, EventType::kJobSubmit, 2);
  std::vector<std::uint32_t> fired;
  while (!q.empty()) fired.push_back(q.pop().arg);
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(CalendarQueue, DrainedQueueReanchorsAtDistantTime) {
  // Drain completely, then push far beyond the old wheel position: the
  // queue must re-anchor instead of leaving events in unscanned slots.
  CalendarEventQueue q;
  q.push_typed(100, EventType::kJobSubmit, 1);
  EXPECT_EQ(q.pop().arg, 1u);
  EXPECT_TRUE(q.empty());
  const SimTime far = SimTime{65536} * 5000;  // past the old rung-2 horizon
  q.push_typed(far + 50, EventType::kJobSubmit, 3);
  q.push_typed(far, EventType::kJobSubmit, 2);
  EXPECT_EQ(q.next_time(), far);
  EXPECT_EQ(q.pop().arg, 2u);
  EXPECT_EQ(q.pop().arg, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, WarmedUpSteadyStateAllocatesNothing) {
  // Unlike the binary heap (whose reserve() pre-sizes everything), the
  // calendar's buckets warm up to their working capacity on first
  // contact.  Once warm, an identical second phase must not allocate:
  // bucket vectors recycle modulo the wheel size.
  CalendarEventQueue q;
  const auto churn = [&](SimTime base) {
    Rng rng(0xCA1E17D);  // same stream both phases: identical offsets
    for (int i = 0; i < 4000; ++i) {
      const SimTime t = base + static_cast<SimTime>(rng.below(600)) +
                        static_cast<SimTime>(i) * 40;
      q.push_typed(t, EventType::kJobFinish, static_cast<std::uint32_t>(i));
      if (i % 2 == 1) {
        q.pop();
        q.pop();
      }
    }
    while (!q.empty()) q.pop();
  };
  churn(0);
  const std::uint64_t warm = q.heap_allocations();
  // Same time-offsets relative to a far-future base: same bucket slots
  // modulo the wheel, so the warmed capacities are reused exactly.
  churn(SimTime{65536} * 1024 * 4);
  EXPECT_EQ(q.heap_allocations(), warm);
}

TEST(CalendarQueue, CallbacksInvokeAndSlotsRecycle) {
  CalendarEventQueue q;
  int fired = 0;
  q.push_callback(10, [&fired] { ++fired; });
  q.push_callback(5, [&fired] { fired += 10; });
  Event e = q.pop();
  ASSERT_EQ(e.type, EventType::kCallback);
  q.take_callback(e).invoke();
  EXPECT_EQ(fired, 10);
  e = q.pop();
  q.take_callback(e).invoke();
  EXPECT_EQ(fired, 11);
  EXPECT_EQ(q.boxed_callbacks(), 0u);
  EXPECT_EQ(q.live_callbacks(), 0u);
}

TEST(CalendarQueue, DestructorDisposesUndrainedBoxedCallbacks) {
  // A boxed (non-trivially-copyable) callback left in any tier must be
  // released by the destructor; ASan/LSan enforce this test's point.
  auto marker = std::make_shared<int>(42);
  {
    CalendarEventQueue q;
    q.push_callback(5, [marker] { (void)*marker; });
    q.push_callback(SimTime{65536} * 2000, [marker] { (void)*marker; });
    EXPECT_EQ(q.boxed_callbacks(), 2u);
    EXPECT_EQ(q.live_callbacks(), 2u);
  }
  EXPECT_EQ(marker.use_count(), 1);
}

TEST(CalendarQueue, AssignFromReplaysIdentically) {
  // The run-fork primitive: a copy made mid-run must pop the exact same
  // (time, seq, arg) stream as the original.
  Rng rng(0xF08C);
  CalendarEventQueue a;
  for (std::uint32_t i = 0; i < 500; ++i) {
    a.push_typed(static_cast<SimTime>(rng.below(1 << 22)),
                 EventType::kJobFinish, i);
  }
  for (int i = 0; i < 100; ++i) a.pop();
  CalendarEventQueue b;
  b.assign_from(a);
  EXPECT_EQ(b.size(), a.size());
  while (!a.empty()) {
    const Event ea = a.pop();
    const Event eb = b.pop();
    ASSERT_EQ(ea.time, eb.time);
    ASSERT_EQ(ea.seq, eb.seq);
    ASSERT_EQ(ea.arg, eb.arg);
  }
  EXPECT_TRUE(b.empty());
  // New pushes continue the shared seq counter, so interleaved-time
  // pushes after a fork stay FIFO-consistent with the original's.
  a.push_typed(7, EventType::kJobSubmit, 1);
  b.push_typed(7, EventType::kJobSubmit, 1);
  EXPECT_EQ(a.pop().seq, b.pop().seq);
}

TEST(CalendarQueueProperty, RandomInterleavingsMatchReferenceModel) {
  // The heap property harness, plus calendar-specific hazards: pushes
  // that jump past the rung-1 window (bucket rollover), past the rung-2
  // horizon (far overflow + re-anchor), and gap pushes behind the cursor
  // after such a jump.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(0xCA1E2 + seed);
    CalendarEventQueue q;
    ReferenceModel ref;
    std::uint32_t next_arg = 0;
    SimTime floor = 0;  // pops are monotone; pushes never go below this

    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t roll = rng.below(100);
      if (roll < 55 || q.empty()) {
        SimTime t;
        if (roll < 10 && !q.empty()) {
          t = q.next_time();  // scheduled for the current timestep
        } else if (roll < 30) {
          t = floor + static_cast<SimTime>(rng.below(3));  // clump
        } else if (roll < 48) {
          t = floor + static_cast<SimTime>(rng.below(200));
        } else if (roll < 52) {
          // Beyond the rung-1 window: lands in rung 2.
          t = floor + 64 * 1024 + static_cast<SimTime>(rng.below(1 << 22));
        } else {
          // Beyond the rung-2 horizon: lands in the far overflow.
          t = floor + (SimTime{65536} * 1024) +
              static_cast<SimTime>(rng.below(1u << 30));
        }
        q.push_typed(t, EventType::kJobSubmit, next_arg);
        ref.push(t, next_arg);
        ++next_arg;
      } else {
        const Event got = q.pop();
        const RefEvent want = ref.pop();
        ASSERT_EQ(got.time, want.time) << "seed " << seed << " step " << step;
        ASSERT_EQ(got.seq, want.seq) << "seed " << seed << " step " << step;
        ASSERT_EQ(got.arg, want.arg) << "seed " << seed << " step " << step;
        floor = got.time;
      }
    }
    while (!q.empty()) {
      const Event got = q.pop();
      const RefEvent want = ref.pop();
      ASSERT_EQ(got.time, want.time);
      ASSERT_EQ(got.seq, want.seq);
      ASSERT_EQ(got.arg, want.arg);
    }
    EXPECT_TRUE(ref.empty());
  }
}

TEST(CalendarQueueProperty, MatchesBinaryHeapOrderOnRandomWorkload) {
  // All three implementations realize one contract; this pins calendar
  // vs. heap directly (legacy vs. heap is pinned above).
  Rng rng(0x3C4D5);
  EventQueue heap;
  CalendarEventQueue cal;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.below(1 << 20));
    heap.push_typed(t, EventType::kJobSubmit, i);
    cal.push_typed(t, EventType::kJobSubmit, i);
  }
  while (!heap.empty()) {
    const Event a = heap.pop();
    const Event b = cal.pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
    ASSERT_EQ(a.arg, b.arg);
  }
  EXPECT_TRUE(cal.empty());
}

}  // namespace
}  // namespace istc::sim
