#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace istc::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(30); });
  q.push(10, [&] { fired.push_back(10); });
  q.push(20, [&] { fired.push_back(20); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 50; ++i) q.push(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  q.push(42, [] {});
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
  q.pop();
  EXPECT_EQ(q.next_time(), 42);
}

TEST(EventQueue, SizeTracksPushPop) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(10, [&] { fired.push_back(10); });
  q.push(5, [&] { fired.push_back(5); });
  q.pop()();  // fires 5
  q.push(1, [&] { fired.push_back(1); });  // earlier than remaining 10
  q.pop()();
  q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{5, 1, 10}));
}

TEST(EventQueue, NegativeTimesAllowedAndOrdered) {
  // The queue itself is time-agnostic (the engine enforces monotonicity).
  EventQueue q;
  std::vector<SimTime> fired;
  q.push(-5, [&] { fired.push_back(-5); });
  q.push(-10, [&] { fired.push_back(-10); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<SimTime>{-10, -5}));
}

}  // namespace
}  // namespace istc::sim
