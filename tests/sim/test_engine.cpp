#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace istc::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.finished());
}

TEST(Engine, RunsEventsInOrder) {
  Engine e;
  std::vector<SimTime> fired;
  e.schedule(20, [&] { fired.push_back(20); });
  e.schedule(10, [&] { fired.push_back(10); });
  e.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.events_processed(), 2u);
}

TEST(Engine, ScheduleInRelative) {
  Engine e;
  SimTime seen = -1;
  e.schedule(5, [&e, &seen] {
    e.schedule_in(10, [&e, &seen] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 15);
}

TEST(Engine, QuiescentHookOncePerTimestamp) {
  Engine e;
  std::vector<SimTime> hook_times;
  e.on_quiescent([&](SimTime t) { hook_times.push_back(t); });
  e.schedule(5, [] {});
  e.schedule(5, [] {});
  e.schedule(5, [] {});
  e.schedule(9, [] {});
  e.run();
  EXPECT_EQ(hook_times, (std::vector<SimTime>{5, 9}));
}

TEST(Engine, HookRunsAfterAllEventsAtTimestamp) {
  Engine e;
  int events_before_hook = 0;
  int counted_at_hook = -1;
  e.on_quiescent([&](SimTime) { counted_at_hook = events_before_hook; });
  for (int i = 0; i < 4; ++i) e.schedule(3, [&] { ++events_before_hook; });
  e.run();
  EXPECT_EQ(counted_at_hook, 4);
}

TEST(Engine, EventScheduledForNowByEventRunsThisStep) {
  Engine e;
  std::vector<int> order;
  e.schedule(5, [&] {
    order.push_back(1);
    e.schedule(5, [&] { order.push_back(2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 5);
}

TEST(Engine, HookMaySchedulePresentAndFuture) {
  Engine e;
  int hook_calls = 0;
  bool future_ran = false;
  e.on_quiescent([&](SimTime t) {
    ++hook_calls;
    if (t == 1 && hook_calls == 1) {
      e.schedule(4, [&] { future_ran = true; });
    }
  });
  e.schedule(1, [] {});
  e.run();
  EXPECT_TRUE(future_ran);
  EXPECT_GE(hook_calls, 2);  // once at t=1, once at t=4
}

TEST(Engine, MultipleHooksInRegistrationOrder) {
  Engine e;
  std::vector<int> order;
  e.on_quiescent([&](SimTime) { order.push_back(1); });
  e.on_quiescent([&](SimTime) { order.push_back(2); });
  e.schedule(3, [] {});
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, RunUntilStopsAndResumes) {
  Engine e;
  std::vector<SimTime> fired;
  e.schedule(10, [&] { fired.push_back(10); });
  e.schedule(20, [&] { fired.push_back(20); });
  e.schedule(30, [&] { fired.push_back(30); });
  e.run(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_FALSE(e.finished());
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockToLimit) {
  Engine e;
  e.schedule(5, [] {});
  e.run(100);
  EXPECT_EQ(e.now(), 100);
}

TEST(Engine, StepProcessesOneTimestamp) {
  Engine e;
  int fired = 0;
  e.schedule(5, [&] { ++fired; });
  e.schedule(5, [&] { ++fired; });
  e.schedule(8, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 5);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(e.step());
}

TEST(Engine, ChainedSimulationDrains) {
  // A self-perpetuating chain that stops after N links.
  Engine e;
  int links = 0;
  std::function<void()> link = [&] {
    if (++links < 100) e.schedule_in(7, link);
  };
  e.schedule(0, link);
  e.run();
  EXPECT_EQ(links, 100);
  EXPECT_EQ(e.now(), 99 * 7);
}

TEST(Engine, EventsProcessedCounts) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

TEST(Engine, RunWithEmptyQueueIsNoOp) {
  Engine e;
  e.run();
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.finished());
}

TEST(Engine, FinishedReflectsQueueState) {
  Engine e;
  e.schedule(5, [] {});
  EXPECT_FALSE(e.finished());
  e.run();
  EXPECT_TRUE(e.finished());
}

TEST(Engine, HookNotCalledWithoutEvents) {
  Engine e;
  int calls = 0;
  e.on_quiescent([&](SimTime) { ++calls; });
  e.run();
  EXPECT_EQ(calls, 0);
}

TEST(Engine, RunUntilExactEventTimeProcessesIt) {
  Engine e;
  bool fired = false;
  e.schedule(10, [&] { fired = true; });
  e.run(10);
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, ScheduleAtCurrentTimeBeforeRunWorks) {
  Engine e;
  bool fired = false;
  e.schedule(0, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(EngineDeath, SchedulingInThePastAborts) {
  Engine e;
  e.schedule(10, [] {});
  e.run();
  EXPECT_DEATH(e.schedule(5, [] {}), "precondition");
}
#endif

}  // namespace
}  // namespace istc::sim
