#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace istc::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.finished());
}

TEST(Engine, RunsEventsInOrder) {
  Engine e;
  std::vector<SimTime> fired;
  e.schedule(20, [&] { fired.push_back(20); });
  e.schedule(10, [&] { fired.push_back(10); });
  e.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.events_processed(), 2u);
}

TEST(Engine, ScheduleInRelative) {
  Engine e;
  SimTime seen = -1;
  e.schedule(5, [&e, &seen] {
    e.schedule_in(10, [&e, &seen] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 15);
}

TEST(Engine, QuiescentHookOncePerTimestamp) {
  Engine e;
  std::vector<SimTime> hook_times;
  e.on_quiescent([&](SimTime t) { hook_times.push_back(t); });
  e.schedule(5, [] {});
  e.schedule(5, [] {});
  e.schedule(5, [] {});
  e.schedule(9, [] {});
  e.run();
  EXPECT_EQ(hook_times, (std::vector<SimTime>{5, 9}));
}

TEST(Engine, HookRunsAfterAllEventsAtTimestamp) {
  Engine e;
  int events_before_hook = 0;
  int counted_at_hook = -1;
  e.on_quiescent([&](SimTime) { counted_at_hook = events_before_hook; });
  for (int i = 0; i < 4; ++i) e.schedule(3, [&] { ++events_before_hook; });
  e.run();
  EXPECT_EQ(counted_at_hook, 4);
}

TEST(Engine, EventScheduledForNowByEventRunsThisStep) {
  Engine e;
  std::vector<int> order;
  e.schedule(5, [&] {
    order.push_back(1);
    e.schedule(5, [&] { order.push_back(2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 5);
}

TEST(Engine, HookMaySchedulePresentAndFuture) {
  Engine e;
  int hook_calls = 0;
  bool future_ran = false;
  e.on_quiescent([&](SimTime t) {
    ++hook_calls;
    if (t == 1 && hook_calls == 1) {
      e.schedule(4, [&] { future_ran = true; });
    }
  });
  e.schedule(1, [] {});
  e.run();
  EXPECT_TRUE(future_ran);
  EXPECT_GE(hook_calls, 2);  // once at t=1, once at t=4
}

TEST(Engine, MultipleHooksInRegistrationOrder) {
  Engine e;
  std::vector<int> order;
  e.on_quiescent([&](SimTime) { order.push_back(1); });
  e.on_quiescent([&](SimTime) { order.push_back(2); });
  e.schedule(3, [] {});
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, RunUntilStopsAndResumes) {
  Engine e;
  std::vector<SimTime> fired;
  e.schedule(10, [&] { fired.push_back(10); });
  e.schedule(20, [&] { fired.push_back(20); });
  e.schedule(30, [&] { fired.push_back(30); });
  e.run(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_FALSE(e.finished());
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockToLimit) {
  Engine e;
  e.schedule(5, [] {});
  e.run(100);
  EXPECT_EQ(e.now(), 100);
}

TEST(Engine, StepProcessesOneTimestamp) {
  Engine e;
  int fired = 0;
  e.schedule(5, [&] { ++fired; });
  e.schedule(5, [&] { ++fired; });
  e.schedule(8, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 5);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(e.step());
}

TEST(Engine, ChainedSimulationDrains) {
  // A self-perpetuating chain that stops after N links.
  Engine e;
  int links = 0;
  std::function<void()> link = [&] {
    if (++links < 100) e.schedule_in(7, link);
  };
  e.schedule(0, link);
  e.run();
  EXPECT_EQ(links, 100);
  EXPECT_EQ(e.now(), 99 * 7);
}

TEST(Engine, EventsProcessedCounts) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

TEST(Engine, RunWithEmptyQueueIsNoOp) {
  Engine e;
  e.run();
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.finished());
}

TEST(Engine, FinishedReflectsQueueState) {
  Engine e;
  e.schedule(5, [] {});
  EXPECT_FALSE(e.finished());
  e.run();
  EXPECT_TRUE(e.finished());
}

TEST(Engine, HookNotCalledWithoutEvents) {
  Engine e;
  int calls = 0;
  e.on_quiescent([&](SimTime) { ++calls; });
  e.run();
  EXPECT_EQ(calls, 0);
}

TEST(Engine, RunUntilExactEventTimeProcessesIt) {
  Engine e;
  bool fired = false;
  e.schedule(10, [&] { fired = true; });
  e.run(10);
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, ScheduleAtCurrentTimeBeforeRunWorks) {
  Engine e;
  bool fired = false;
  e.schedule(0, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(EngineDeath, SchedulingInThePastAborts) {
  Engine e;
  e.schedule(10, [] {});
  e.run();
  EXPECT_DEATH(e.schedule(5, [] {}), "precondition");
}
#endif

// -- typed event core ------------------------------------------------------

struct RecordingSink : JobEventSink {
  std::vector<std::pair<char, std::uint32_t>> log;  // ('s'|'f', arg)
  void job_submit(std::uint32_t index) override { log.push_back({'s', index}); }
  void job_finish(std::uint32_t id) override { log.push_back({'f', id}); }
};

TEST(EngineTyped, DispatchesJobEventsToSink) {
  Engine e;
  RecordingSink sink;
  e.set_job_sink(&sink);
  e.schedule_job_finish(20, 7);
  e.schedule_job_submit(10, 3);
  e.schedule_wake(15);
  e.run();
  EXPECT_EQ(sink.log, (std::vector<std::pair<char, std::uint32_t>>{
                          {'s', 3}, {'f', 7}}));
  EXPECT_EQ(e.events_processed(), 3u);  // the wake drains too
  EXPECT_EQ(e.now(), 20);
}

TEST(EngineTyped, WakeTriggersQuiescentHook) {
  Engine e;
  std::vector<SimTime> hook_times;
  e.on_quiescent([&](SimTime t) { hook_times.push_back(t); });
  e.schedule_wake(9);
  e.run();
  EXPECT_EQ(hook_times, (std::vector<SimTime>{9}));
}

TEST(EngineTyped, SteadyStateIsAllocationFree) {
  // The rewrite's acceptance criterion at engine level: reserve once, then
  // a sustained typed churn (job events, wakes, small trivially copyable
  // callbacks) performs zero queue heap allocations.
  Engine e;
  RecordingSink sink;
  e.set_job_sink(&sink);
  e.reserve_events(256);
  long fired = 0;
  for (SimTime t = 0; t < 64; ++t) {
    e.schedule_job_submit(t, static_cast<std::uint32_t>(t));
    e.schedule_job_finish(t + 40, static_cast<std::uint32_t>(t));
    e.schedule_wake(t + 20);
    e.schedule(t + 10, [&fired] { ++fired; });
  }
  e.run();
  EXPECT_EQ(e.stats().heap_allocations, 0u);
  EXPECT_EQ(fired, 64);
  EXPECT_EQ(sink.log.size(), 128u);
}

TEST(EngineTyped, StatsTrackDepthBatchAndKinds) {
  Engine e;
  RecordingSink sink;
  e.set_job_sink(&sink);
  for (std::uint32_t i = 0; i < 5; ++i) e.schedule_job_finish(10, i);
  e.schedule_wake(10);
  e.schedule(3, [] {});
  e.run();
  const EngineStats& s = e.stats();
  EXPECT_EQ(s.peak_queue_depth, 7u);
  EXPECT_EQ(s.max_timestep_batch, 6u);  // the 6-event batch at t=10
  EXPECT_EQ(s.scheduled_by_type[static_cast<int>(EventType::kCallback)], 1u);
  EXPECT_EQ(s.scheduled_by_type[static_cast<int>(EventType::kJobFinish)], 5u);
  EXPECT_EQ(s.scheduled_by_type[static_cast<int>(EventType::kSchedulerWake)],
            1u);
  EXPECT_EQ(s.scheduled_by_type[static_cast<int>(EventType::kJobSubmit)], 0u);
}

TEST(EngineTyped, EventScheduledForNowFromCallbackCountsInBatch) {
  Engine e;
  int order = 0;
  e.schedule(5, [&e, &order] {
    ++order;
    e.schedule(5, [&order] { ++order; });
  });
  e.run();
  EXPECT_EQ(order, 2);
  EXPECT_EQ(e.stats().max_timestep_batch, 2u);
}

// -- legacy mode (the std::function A/B baseline) --------------------------

TEST(EngineLegacy, RunsEventsInOrder) {
  Engine e(/*typed_events=*/false);
  EXPECT_FALSE(e.typed_events());
  std::vector<SimTime> fired;
  e.schedule(20, [&] { fired.push_back(20); });
  e.schedule(10, [&] { fired.push_back(10); });
  e.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(e.events_processed(), 2u);
}

TEST(EngineLegacy, TypedCallsStillDispatchToSink) {
  Engine e(/*typed_events=*/false);
  RecordingSink sink;
  e.set_job_sink(&sink);
  e.schedule_job_submit(1, 11);
  e.schedule_job_finish(2, 22);
  e.schedule_wake(3);
  e.run();
  EXPECT_EQ(sink.log, (std::vector<std::pair<char, std::uint32_t>>{
                          {'s', 11}, {'f', 22}}));
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(EngineLegacy, FiringOrderMatchesTypedMode) {
  // Both modes implement the same (time, seq) contract; an identical
  // random schedule must fire in the identical order.
  auto run_mode = [](bool typed) {
    Engine e(typed);
    std::vector<int> fired;
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < 500; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const SimTime t = static_cast<SimTime>(state % 40);
      e.schedule(t, [&fired, i] { fired.push_back(i); });
    }
    e.run();
    return fired;
  };
  EXPECT_EQ(run_mode(true), run_mode(false));
}

TEST(EngineTyped, AttachingCountersTracerNeverChangesEventsProcessed) {
  // Regression guard: tracing observes, never perturbs — the drained
  // event count must be identical with and without a tracer attached.
  auto run_once = [](trace::Tracer* tracer) {
    Engine e;
    if (tracer != nullptr) e.set_tracer(tracer);
    int chain = 0;
    std::function<void()> link = [&] {
      if (++chain < 50) e.schedule_in(3, link);
    };
    e.schedule(0, link);
    for (SimTime t = 0; t < 30; ++t) e.schedule_wake(t * 2);
    e.run();
    return e.events_processed();
  };
  const std::uint64_t bare = run_once(nullptr);
#if ISTC_TRACING_ENABLED
  trace::Tracer counters(trace::TraceMode::kCountersOnly);
  trace::Tracer full(trace::TraceMode::kFull);
  EXPECT_EQ(run_once(&counters), bare);
  EXPECT_EQ(run_once(&full), bare);
  EXPECT_EQ(counters.counters().engine_events_drained, bare);
#else
  EXPECT_GT(bare, 0u);
#endif
}

}  // namespace
}  // namespace istc::sim
