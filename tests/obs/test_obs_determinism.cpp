// The hard requirement of the observability layer: with spans and the
// stage profiler fully enabled, nothing observable about the simulation
// changes.  Golden schedule hashes stay pinned, a threaded fleet hashes
// identically on and off, and what-if replies stay byte-identical in
// forked and scratch modes.  Wall time flows OUT of the sim into obs —
// never back in.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "grid/fleet.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "service/json.hpp"
#include "service/session.hpp"
#include "util/rng.hpp"

namespace istc {
namespace {

constexpr SimTime kSpan = 6000;
/// The schedule golden pinned by trace/test_determinism.cpp and
/// grid/test_fleet_determinism.cpp — reproduced here obs-enabled.
constexpr std::uint64_t kScheduleGolden = 0x4cb3857a75f8d6bfull;

struct ObsOnFixture : ::testing::Test {
  void SetUp() override {
    obs::reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

using ObsDeterminism = ObsOnFixture;

std::vector<workload::Job> random_natives(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<workload::Job> jobs;
  SimTime submit = 0;
  for (workload::JobId id = 0; id < 150; ++id) {
    submit += static_cast<SimTime>(rng.below(80));
    workload::Job j;
    j.id = id;
    j.submit = submit;
    j.cpus = 1 + static_cast<int>(rng.below(32));
    j.runtime = 20 + static_cast<Seconds>(rng.below(400));
    j.estimate = j.runtime * (1 + static_cast<Seconds>(rng.below(4)));
    j.user = static_cast<workload::UserId>(rng.below(5));
    jobs.push_back(j);
  }
  return jobs;
}

grid::MachineSetup miniature_setup(std::uint64_t seed) {
  grid::MachineSetup setup;
  setup.spec = {.name = "determinism-mini", .site = "", .queue_system = "",
                .cpus = 64, .clock_ghz = 1.0};
  setup.downtime = cluster::DowntimeCalendar({{2000, 2400}, {4500, 4800}});
  setup.policy.preempt_interstitial = true;
  setup.natives = workload::JobLog(random_natives(seed));
  setup.span = kSpan;
  core::ProjectSpec spec = core::ProjectSpec::continual_stream(8, 120, kSpan);
  spec.recovery = core::PreemptionRecovery::kCheckpoint;
  setup.local_project = spec;
  setup.first_interstitial_id = 10000;
  return setup;
}

TEST_F(ObsDeterminism, GoldenScheduleHashUnchangedWithObsFullyEnabled) {
  grid::GridMachine m(miniature_setup(42));
  m.drain();
  EXPECT_EQ(grid::hash_run(m.take_result()), kScheduleGolden);
  // And the run actually exercised the profiler (the scheduler's pass
  // stages observe when obs is on) — this was not a vacuous A/B.
  EXPECT_FALSE(obs::profile_snapshot().empty());
}

std::uint64_t threaded_fleet_hash(std::size_t threads) {
  std::vector<grid::MachineSetup> setups;
  for (std::uint64_t s = 0; s < 3; ++s) {
    auto setup = miniature_setup(7 + s);
    setup.spec.name = "mini-" + std::to_string(s);
    setup.name = setup.spec.name;
    setups.push_back(std::move(setup));
  }
  grid::FleetConfig cfg;
  cfg.threads = threads;
  auto projects = grid::sweep_projects(2, 20, 192, 0.25, 0xD15EA5E);
  return grid::run_fleet(std::move(setups), std::move(projects), cfg).hash;
}

TEST_F(ObsDeterminism, ThreadedFleetHashMatchesObsOffRun) {
  // Spans here cross the epoch fan-out onto pool workers; the hash must
  // not care.  Same fleet, 1 thread and 4 threads, obs on vs off.
  const std::uint64_t on_1 = threaded_fleet_hash(1);
  const std::uint64_t on_4 = threaded_fleet_hash(4);
  obs::set_enabled(false);
  const std::uint64_t off_4 = threaded_fleet_hash(4);
  obs::set_enabled(true);
  EXPECT_EQ(on_1, on_4);
  EXPECT_EQ(on_4, off_4);
  EXPECT_GT(obs::recorder_stats().recorded, 0u);
}

std::string swf_line(SimTime submit, Seconds runtime, int cpus,
                     Seconds estimate) {
  return "1 " + std::to_string(submit) + " 0 " + std::to_string(runtime) +
         " " + std::to_string(cpus) + " -1 -1 " + std::to_string(cpus) + " " +
         std::to_string(estimate) + " -1 1 3 2 -1 -1 -1 -1 -1";
}

void feed_tail(service::Session& session) {
  for (int i = 0; i < 40; ++i) {
    const std::string line = swf_line(100 + 60 * i, 240 + 30 * (i % 5),
                                      8 + 8 * (i % 4), 1200);
    session.handle_line("{\"op\":\"ingest\",\"line\":\"" +
                        service::json_escape(line) + "\"}");
  }
}

service::SessionConfig ross_config() {
  service::SessionConfig cfg;
  cfg.site = cluster::Site::kRoss;
  cfg.snapshot_interval = 1000;
  return cfg;
}

constexpr const char* kQueryPrefix =
    "{\"op\":\"whatif\",\"jobs\":3,\"cpus\":16,\"runtime_s\":300,"
    "\"horizon_s\":7200,\"points_s\":[0,1800]";

TEST_F(ObsDeterminism, WhatIfForkedEqualsScratchWithObsEnabled) {
  service::Session session(ross_config());
  feed_tail(session);
  const std::string forked =
      session.handle_line(std::string(kQueryPrefix) + "}");
  const std::string scratch =
      session.handle_line(std::string(kQueryPrefix) + ",\"mode\":\"scratch\"}");
  EXPECT_EQ(forked, scratch);
  EXPECT_GT(obs::recorder_stats().recorded, 0u);
}

TEST_F(ObsDeterminism, WhatIfReplyBytesUnchangedByObservability) {
  std::string with_obs;
  {
    service::Session session(ross_config());
    feed_tail(session);
    with_obs = session.handle_line(std::string(kQueryPrefix) + "}");
  }
  obs::set_enabled(false);
  std::string without_obs;
  {
    service::Session session(ross_config());
    feed_tail(session);
    without_obs = session.handle_line(std::string(kQueryPrefix) + "}");
  }
  obs::set_enabled(true);
  EXPECT_EQ(with_obs, without_obs);
  // Sanity: this is a real whatif reply, not a shared error string.
  EXPECT_NE(with_obs.find("\"op\":\"whatif\""), std::string::npos);
  EXPECT_EQ(with_obs.find("\"error\""), std::string::npos);
}

}  // namespace
}  // namespace istc
