// Causal span recorder (src/obs): nesting, cross-thread propagation,
// ring wrap accounting, Chrome-trace export validity, and disabled
// inertness.  Every test quiesces its writer threads before exporting
// (the recorder's contract) and leaves observability disabled + reset so
// suites compose.

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"
#include "service/json.hpp"

namespace istc::obs {
namespace {

/// RAII guard: every test runs obs-enabled inside and leaves the global
/// recorder disabled and empty for whoever runs next.
struct ObsFixture : ::testing::Test {
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    set_ring_capacity(16384);
    reset();
  }
};

using ObsSpans = ObsFixture;

/// Export the quiesced rings and parse the Chrome JSON back.
service::Value exported() {
  std::ostringstream out;
  write_chrome_spans(out);
  const service::ParseResult parsed = service::parse(out.str());
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_TRUE(parsed.value.is_array());
  return parsed.value;
}

/// First "X" (complete) event with the given name, or nullptr.
const service::Value* find_event(const service::Value& doc,
                                 const std::string& name) {
  for (const service::Value& e : doc.array) {
    if (e.str_or("ph", "") == "X" && e.str_or("name", "") == name) return &e;
  }
  return nullptr;
}

TEST(ObsDisabled, SpansAreInertWhenDisabled) {
  set_enabled(false);
  reset();
  const std::uint64_t before = recorder_stats().recorded;
  {
    ScopedSpan span("should.not.record");
    // A disabled span must not establish a causal context either.
    EXPECT_EQ(current_context().trace, 0u);
    EXPECT_EQ(current_context().span, 0u);
  }
  EXPECT_EQ(recorder_stats().recorded, before);
}

TEST_F(ObsSpans, RootSpanOpensATraceAndRestoresIdleContext) {
  EXPECT_EQ(current_context().trace, 0u);
  {
    ScopedSpan span("root");
    const TraceContext ctx = current_context();
    EXPECT_NE(ctx.trace, 0u);
    EXPECT_NE(ctx.span, 0u);
    EXPECT_EQ(ctx.span, span.context().span);
  }
  EXPECT_EQ(current_context().trace, 0u);
  EXPECT_EQ(recorder_stats().recorded, 1u);
}

TEST_F(ObsSpans, NestedSpansParentUnderTheSameTrace) {
  TraceContext outer_ctx;
  {
    ScopedSpan outer("outer");
    outer_ctx = outer.context();
    ScopedSpan inner("inner");
    EXPECT_EQ(current_context().trace, outer_ctx.trace);
    EXPECT_NE(current_context().span, outer_ctx.span);
  }
  const service::Value doc = exported();
  const service::Value* inner = find_event(doc, "inner");
  const service::Value* outer = find_event(doc, "outer");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  const service::Value* iargs = inner->find("args");
  const service::Value* oargs = outer->find("args");
  ASSERT_NE(iargs, nullptr);
  ASSERT_NE(oargs, nullptr);
  EXPECT_EQ(iargs->num_or("trace", -1), oargs->num_or("trace", -2));
  EXPECT_EQ(iargs->num_or("parent", -1), oargs->num_or("span", -2));
  EXPECT_EQ(oargs->num_or("parent", -1), 0.0);  // root
  // The child closes before (and nests within) the parent.
  EXPECT_LE(outer->num_or("ts", 1e18), inner->num_or("ts", -1));
  EXPECT_GE(outer->num_or("dur", -1), inner->num_or("dur", 1e18));
}

TEST_F(ObsSpans, SiblingTracesGetDistinctTraceIds) {
  std::uint64_t t1 = 0;
  std::uint64_t t2 = 0;
  {
    ScopedSpan a("first.root");
    t1 = a.context().trace;
  }
  {
    ScopedSpan b("second.root");
    t2 = b.context().trace;
  }
  EXPECT_NE(t1, 0u);
  EXPECT_NE(t2, 0u);
  EXPECT_NE(t1, t2);
}

TEST_F(ObsSpans, ContextBridgesAcrossThreads) {
  TraceContext root_ctx;
  {
    ScopedSpan root("query.root");
    root_ctx = root.context();
    std::thread worker([&root_ctx] {
      ScopedContext adopt(root_ctx);
      ScopedSpan child("worker.child");
      EXPECT_EQ(current_context().trace, root_ctx.trace);
    });
    worker.join();
  }
  const RecorderStats s = recorder_stats();
  EXPECT_EQ(s.recorded, 2u);
  EXPECT_EQ(s.threads, 2u);  // main + worker each own a ring
  const service::Value doc = exported();
  const service::Value* child = find_event(doc, "worker.child");
  ASSERT_NE(child, nullptr);
  const service::Value* args = child->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->num_or("trace", -1),
            static_cast<double>(root_ctx.trace));
  EXPECT_EQ(args->num_or("parent", -1),
            static_cast<double>(root_ctx.span));
}

TEST_F(ObsSpans, RingWrapCountsDropsAndKeepsNewest) {
  set_ring_capacity(8);
  reset();  // this thread re-registers with the small ring
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span("wrap.me", i);
  }
  const RecorderStats s = recorder_stats();
  EXPECT_EQ(s.recorded, 20u);
  EXPECT_EQ(s.dropped, 12u);
  EXPECT_EQ(s.ring_capacity, 8u);
  // Export holds exactly the newest capacity-many spans: args 12..19.
  const service::Value doc = exported();
  int events = 0;
  double min_arg = 1e18;
  for (const service::Value& e : doc.array) {
    if (e.str_or("ph", "") != "X") continue;
    ++events;
    if (const service::Value* args = e.find("args")) {
      min_arg = std::min(min_arg, args->num_or("arg", 1e18));
    }
  }
  EXPECT_EQ(events, 8);
  EXPECT_EQ(min_arg, 12.0);
}

TEST_F(ObsSpans, ExportEmitsProcessAndThreadMetadata) {
  {
    ScopedSpan span("one");
  }
  const service::Value doc = exported();
  bool process_meta = false;
  bool thread_meta = false;
  for (const service::Value& e : doc.array) {
    if (e.str_or("ph", "") != "M") continue;
    if (e.str_or("name", "") == "process_name") process_meta = true;
    if (e.str_or("name", "") == "thread_name") thread_meta = true;
  }
  EXPECT_TRUE(process_meta);
  EXPECT_TRUE(thread_meta);
}

TEST_F(ObsSpans, ResetClearsSpansAndProfiles) {
  {
    ScopedSpan span("gone");
    ScopedTimer timer(Stage::kSweepArm);
  }
  EXPECT_GT(recorder_stats().recorded, 0u);
  reset();
  EXPECT_EQ(recorder_stats().recorded, 0u);
  EXPECT_EQ(recorder_stats().dropped, 0u);
  EXPECT_TRUE(profile_snapshot().empty());
  const service::Value doc = exported();
  for (const service::Value& e : doc.array) {
    EXPECT_NE(e.str_or("ph", ""), "X");
  }
}

}  // namespace
}  // namespace istc::obs
