// Wall-clock stage profiler (src/obs/profiler): attribution, labels,
// cross-thread merge, snapshot ordering, and the disabled no-op path.

#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace istc::obs {
namespace {

struct ProfilerFixture : ::testing::Test {
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

using Profiler = ProfilerFixture;

TEST(ProfilerDisabled, ObserveIsANoopWhenDisabled) {
  set_enabled(false);
  reset();
  observe_stage_us(Stage::kSweepArm, 100);
  {
    ScopedTimer timer(Stage::kSweepFork);
  }
  EXPECT_TRUE(profile_snapshot().empty());
  EXPECT_EQ(stage_histogram(Stage::kSweepArm).total(), 0u);
}

TEST_F(Profiler, ObservationsAttributeToTheirStage) {
  observe_stage_us(Stage::kSweepArm, 100);
  observe_stage_us(Stage::kSweepArm, 100);
  observe_stage_us(Stage::kSweepArm, 100);
  observe_stage_us(Stage::kIngestRewind, 7);

  const auto profile = profile_snapshot();
  ASSERT_EQ(profile.size(), 2u);
  // Snapshot comes out in Stage declaration order.
  EXPECT_EQ(profile[0].stage, Stage::kSweepArm);
  EXPECT_STREQ(profile[0].label, "sweep_arm");
  EXPECT_EQ(profile[0].count, 3u);
  EXPECT_EQ(profile[0].total_us, 300u);
  // 100 lives in log2 bucket [64,128): quantiles must stay inside it.
  EXPECT_GE(profile[0].p50_us, 64.0);
  EXPECT_LT(profile[0].p50_us, 128.0);
  EXPECT_GE(profile[0].p99_us, profile[0].p50_us);

  EXPECT_EQ(profile[1].stage, Stage::kIngestRewind);
  EXPECT_STREQ(profile[1].label, "ingest_rewind");
  EXPECT_EQ(profile[1].count, 1u);
}

TEST_F(Profiler, ScopedTimerObservesElapsedTime) {
  {
    ScopedTimer timer(Stage::kQueryCapture);
  }
  const auto h = stage_histogram(Stage::kQueryCapture);
  EXPECT_EQ(h.total(), 1u);
}

TEST_F(Profiler, StageLabelsAreStable) {
  EXPECT_STREQ(stage_label(Stage::kSchedSetup), "sched_setup");
  EXPECT_STREQ(stage_label(Stage::kSchedBackfill), "sched_backfill");
  EXPECT_STREQ(stage_label(Stage::kSweepPrefix), "sweep_prefix");
  EXPECT_STREQ(stage_label(Stage::kEpochAdvance), "epoch_advance");
  EXPECT_STREQ(stage_label(Stage::kEpochBoundary), "epoch_boundary");
  EXPECT_STREQ(stage_label(Stage::kQueryVerdict), "query_verdict");
}

TEST_F(Profiler, SnapshotMergesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kEach = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kEach; ++i) {
        observe_stage_us(Stage::kEpochAdvance,
                         static_cast<std::uint64_t>(10 + t));
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto h = stage_histogram(Stage::kEpochAdvance);
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kThreads * kEach));
  const auto profile = profile_snapshot();
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].count, static_cast<std::uint64_t>(kThreads * kEach));
}

TEST_F(Profiler, ResetProfilesDropsAllObservations) {
  observe_stage_us(Stage::kSchedDispatch, 42);
  EXPECT_FALSE(profile_snapshot().empty());
  reset_profiles();
  EXPECT_TRUE(profile_snapshot().empty());
  // And the profiler keeps working after a reset.
  observe_stage_us(Stage::kSchedDispatch, 42);
  EXPECT_EQ(stage_histogram(Stage::kSchedDispatch).total(), 1u);
}

}  // namespace
}  // namespace istc::obs
