// SimSampler + RunMetrics: the sim-time probe series is deterministic
// (equal-seed runs serialize to byte-identical RunReports), the tick grid
// covers [start+interval .. stop] with a final partial tick, the probed
// CPU-state columns always partition the machine's capacity — including
// under unplanned failures — and the Scenario::metrics wiring feeds all of
// it from a real site run.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "core/driver.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "metrics/report.hpp"
#include "metrics/sampler.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace istc::metrics {
namespace {

constexpr SimTime kSpan = 4000;

cluster::Machine machine_of(int cpus) {
  return cluster::Machine({.name = "sampler-mini", .site = "",
                           .queue_system = "", .cpus = cpus,
                           .clock_ghz = 1.0},
                          {});
}

std::vector<workload::Job> random_natives(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<workload::Job> jobs;
  SimTime submit = 0;
  for (int i = 0; i < count; ++i) {
    submit += static_cast<SimTime>(rng.below(60));
    workload::Job j;
    j.id = static_cast<workload::JobId>(i);
    j.submit = submit;
    j.cpus = 1 + static_cast<int>(rng.below(12));
    j.runtime = 30 + static_cast<Seconds>(rng.below(300));
    j.estimate = j.runtime * (1 + static_cast<Seconds>(rng.below(3)));
    jobs.push_back(j);
  }
  return jobs;
}

/// Miniature with native churn, a continual interstitial stream, and
/// (optionally) crash + node faults; RunMetrics attached before the run.
sched::RunResult run_miniature(std::uint64_t seed, RunMetrics& metrics,
                               bool with_faults = false) {
  sim::Engine eng;
  cluster::Machine machine = machine_of(24);
  sched::BatchScheduler s(eng, machine, {});
  for (const auto& j : random_natives(seed, 60)) s.submit(j);
  core::ProjectSpec spec = core::ProjectSpec::continual_stream(4, 60, kSpan);
  spec.fault_retry.max_retries = 2;
  spec.fault_retry.backoff = 15;
  spec.fault_retry.checkpoint_interval = 25;
  core::InterstitialDriver driver(s, spec, 2000);
  fault::FaultSpec faults;
  std::optional<fault::FaultInjector> injector;
  if (with_faults) {
    faults.seed = seed;
    faults.crash_mtbf = 1200;
    faults.crash_repair = 150;
    faults.node_mtbf = 500;
    faults.node_cpus = 7;
    faults.node_repair = 120;
    faults.stop = kSpan;
    injector.emplace(s, faults);
  }
  metrics.attach(eng, s, kSpan);
  eng.run();
  auto result = s.take_result(kSpan);
  metrics.ingest(result);
  return result;
}

std::string report_of(std::uint64_t seed, Seconds interval,
                      bool with_faults = false) {
  SamplerConfig cfg;
  cfg.interval = interval;
  RunMetrics m(cfg);
  const auto run = run_miniature(seed, m, with_faults);
  std::ostringstream out;
  // Wall-clock section off: this is the deterministic document.
  write_run_report(out, run, m, {.include_wall_clock = false});
  return out.str();
}

TEST(SimSampler, EqualSeedRunsProduceByteIdenticalReports) {
  const std::string a = report_of(42, 60);
  const std::string b = report_of(42, 60);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, report_of(43, 60));
  // The document carries the sections the schema names: the v2 header
  // with its v1 compat marker, the new per-machine section, and every
  // retained v1 section.
  for (const char* needle :
       {"\"schema\": \"istc.run_report.v2\"",
        "\"compat\": [\"istc.run_report.v1\"]", "\"machines\"",
        "\"counters\"", "\"histograms\"", "\"series\"",
        "\"native_wait_s\""}) {
    EXPECT_NE(a.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(a.find("\"wall_clock\""), std::string::npos);
}

TEST(SimSampler, TickGridCoversStartToStopWithFinalPartialTick) {
  // 4000 / 150 leaves a remainder: ticks at 150, 300, ..., 3900, then a
  // final partial tick exactly at stop.
  SamplerConfig cfg;
  cfg.interval = 150;
  RunMetrics m(cfg);
  run_miniature(7, m);
  const SimSampler* s = m.sampler();
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->rows().size(), 27u);
  EXPECT_EQ(s->rows().front()[0], 150);
  EXPECT_EQ(s->rows()[25][0], 3900);
  EXPECT_EQ(s->rows().back()[0], kSpan);
  EXPECT_EQ(s->dropped(), 0u);
}

TEST(SimSampler, RowCapCountsDroppedTicks) {
  SamplerConfig cfg;
  cfg.interval = 100;
  cfg.max_samples = 10;
  RunMetrics m(cfg);
  run_miniature(7, m);
  const SimSampler* s = m.sampler();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->rows().size(), 10u);
  // 4000/100 grid = 40 ticks; 30 past the cap.
  EXPECT_EQ(s->dropped(), 30u);
}

TEST(SimSampler, ProbedCpuStatesPartitionCapacityUnderFaults) {
  // Every tick: busy_native + busy_interstitial + free + offline must
  // equal the machine's capacity, even while crashes and node failures
  // are taking slices of the machine up and down.
  SamplerConfig cfg;
  cfg.interval = 20;
  RunMetrics m(cfg);
  const auto run = run_miniature(42, m, /*with_faults=*/true);
  ASSERT_GT(run.killed.size(), 0u);  // the faults actually bit
  const SimSampler* s = m.sampler();
  ASSERT_NE(s, nullptr);
  ASSERT_GT(s->rows().size(), 0u);
  bool saw_offline = false;
  for (const auto& row : s->rows()) {
    EXPECT_EQ(row[1] + row[2] + row[3] + row[4], 24) << "t=" << row[0];
    EXPECT_GE(row[1], 0);
    EXPECT_GE(row[2], 0);
    EXPECT_GE(row[3], 0);
    EXPECT_GE(row[4], 0);
    saw_offline = saw_offline || row[4] > 0;
  }
  EXPECT_TRUE(saw_offline);
}

TEST(SimSampler, CpuSecDeltasSumToRecordCpuSeconds) {
  // Kill-free miniature: the per-interval busy-CPU-second deltas must sum
  // to exactly the CPU-seconds of all completed records clipped to the
  // span — the identity the fig4 port rests on.
  SamplerConfig cfg;
  cfg.interval = 60;
  RunMetrics m(cfg);
  const auto run = run_miniature(42, m);
  ASSERT_EQ(run.killed.size(), 0u);
  ASSERT_NE(m.sampler(), nullptr);
  std::int64_t sampled = 0;
  for (const auto& row : m.sampler()->rows()) sampled += row[12] + row[13];
  std::int64_t from_records = 0;
  for (const auto& r : run.records) {
    const SimTime end = std::min(r.end, kSpan);
    if (end > r.start) from_records += r.job.cpus * (end - r.start);
  }
  EXPECT_EQ(sampled, from_records);
}

TEST(RunMetrics, ScenarioWiringFeedsRegistryAndSampler) {
  // The run_scenario integration path: Scenario::metrics attaches the
  // bundle to a real site run and ingests the result.
  SamplerConfig cfg;
  cfg.interval = 6 * kSecondsPerHour;
  RunMetrics m(cfg);
  core::Scenario sc;
  sc.site = cluster::Site::kRoss;
  sc.metrics = &m;
  const auto run = core::run_scenario(sc);
  core::clear_experiment_caches();

  const SimSampler* s = m.sampler();
  ASSERT_NE(s, nullptr);
  // Stop defaulted to the site span: final tick exactly at span.
  EXPECT_EQ(s->rows().back()[0], cluster::site_span(sc.site));
  const auto* completed = m.registry().find_counter("jobs_native_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value, run.native_count());
  // The TraceSummary bridge registers every summary counter (zero-valued
  // here — the scenario ran untraced), so equal configs always serialize
  // the same instrument set.
  ASSERT_NE(m.registry().find_counter("sched_passes"), nullptr);
  const auto* waits = m.registry().find_histogram("native_wait_s");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->hist.total(), run.native_count());
}

}  // namespace
}  // namespace istc::metrics
