#include "metrics/utilization.hpp"

#include <gtest/gtest.h>

namespace istc::metrics {
namespace {

sched::JobRecord rec(SimTime start, SimTime end, int cpus,
                     bool interstitial = false) {
  sched::JobRecord r;
  r.job.id = 0;
  r.job.cpus = cpus;
  r.job.submit = start;
  r.job.runtime = end - start;
  r.job.estimate = end - start;
  r.job.klass = interstitial ? workload::JobClass::kInterstitial
                             : workload::JobClass::kNative;
  r.start = start;
  r.end = end;
  return r;
}

TEST(Utilization, Filters) {
  const auto native = rec(0, 10, 1, false);
  const auto inter = rec(0, 10, 1, true);
  EXPECT_TRUE(passes(native, JobFilter::kAll));
  EXPECT_TRUE(passes(native, JobFilter::kNativeOnly));
  EXPECT_FALSE(passes(native, JobFilter::kInterstitialOnly));
  EXPECT_TRUE(passes(inter, JobFilter::kInterstitialOnly));
  EXPECT_FALSE(passes(inter, JobFilter::kNativeOnly));
}

TEST(Utilization, BusyCpuSecondsClipsToWindow) {
  const std::vector<sched::JobRecord> rs{rec(0, 100, 4)};
  EXPECT_DOUBLE_EQ(busy_cpu_seconds(rs, 0, 100, JobFilter::kAll), 400.0);
  EXPECT_DOUBLE_EQ(busy_cpu_seconds(rs, 50, 100, JobFilter::kAll), 200.0);
  EXPECT_DOUBLE_EQ(busy_cpu_seconds(rs, 90, 200, JobFilter::kAll), 40.0);
  EXPECT_DOUBLE_EQ(busy_cpu_seconds(rs, 100, 200, JobFilter::kAll), 0.0);
}

TEST(Utilization, AverageUtilization) {
  const std::vector<sched::JobRecord> rs{rec(0, 50, 10), rec(50, 100, 5)};
  // 10 cpus for 50 s + 5 for 50 s on a 10-cpu machine over 100 s = 0.75.
  EXPECT_DOUBLE_EQ(average_utilization(rs, 10, 0, 100), 0.75);
}

TEST(Utilization, SeparatesNativeAndInterstitial) {
  const std::vector<sched::JobRecord> rs{rec(0, 100, 6, false),
                                         rec(0, 100, 2, true)};
  EXPECT_DOUBLE_EQ(average_utilization(rs, 10, 0, 100, JobFilter::kAll), 0.8);
  EXPECT_DOUBLE_EQ(
      average_utilization(rs, 10, 0, 100, JobFilter::kNativeOnly), 0.6);
  EXPECT_DOUBLE_EQ(
      average_utilization(rs, 10, 0, 100, JobFilter::kInterstitialOnly),
      0.2);
}

TEST(Utilization, SeriesBucketsCorrectly) {
  const std::vector<sched::JobRecord> rs{rec(0, 3600, 10),
                                         rec(3600, 5400, 10)};
  const auto s = utilization_series(rs, 10, 7200, 3600);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 0.5);
}

TEST(Utilization, SeriesHandlesPartialLastBucket) {
  const std::vector<sched::JobRecord> rs{rec(0, 5000, 10)};
  const auto s = utilization_series(rs, 10, 5000, 3600);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  // Second bucket: 1400 busy seconds of 3600 (denominator is full bucket).
  EXPECT_NEAR(s[1], 1400.0 / 3600.0, 1e-12);
}

TEST(Utilization, SeriesIgnoresWorkPastSpan) {
  const std::vector<sched::JobRecord> rs{rec(1800, 7200, 10)};
  const auto s = utilization_series(rs, 10, 3600, 3600);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0], 0.5);
}

TEST(Utilization, BusyStepFunctionBuildsAndBalances) {
  const std::vector<sched::JobRecord> rs{rec(10, 30, 4), rec(20, 40, 2),
                                         rec(30, 50, 8)};
  const auto steps = busy_step_function(rs, JobFilter::kAll);
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps.front().first, 0);
  EXPECT_EQ(steps.front().second, 0);
  // Evaluate at sample points.
  auto at = [&](SimTime t) {
    int v = 0;
    for (const auto& [time, busy] : steps) {
      if (time <= t) v = busy;
    }
    return v;
  };
  EXPECT_EQ(at(5), 0);
  EXPECT_EQ(at(10), 4);
  EXPECT_EQ(at(25), 6);
  EXPECT_EQ(at(35), 10);
  EXPECT_EQ(at(45), 8);
  EXPECT_EQ(at(50), 0);
}

TEST(Utilization, BusyStepFunctionRespectsFilter) {
  const std::vector<sched::JobRecord> rs{rec(0, 10, 4, false),
                                         rec(0, 10, 2, true)};
  const auto native = busy_step_function(rs, JobFilter::kNativeOnly);
  int peak = 0;
  for (const auto& [t, b] : native) peak = std::max(peak, b);
  EXPECT_EQ(peak, 4);
}

TEST(Utilization, EmptyRecordsYieldZero) {
  const std::vector<sched::JobRecord> none;
  EXPECT_DOUBLE_EQ(average_utilization(none, 10, 0, 100), 0.0);
  const auto steps = busy_step_function(none, JobFilter::kAll);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].second, 0);
}

}  // namespace
}  // namespace istc::metrics
