#include "metrics/makespan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace istc::metrics {
namespace {

sched::JobRecord irec(SimTime start, Seconds run) {
  sched::JobRecord r;
  r.job.klass = workload::JobClass::kInterstitial;
  r.job.cpus = 1;
  r.job.submit = start;
  r.job.runtime = run;
  r.job.estimate = run;
  r.start = start;
  r.end = start + run;
  return r;
}

sched::JobRecord nrec(SimTime start, Seconds run) {
  auto r = irec(start, run);
  r.job.klass = workload::JobClass::kNative;
  return r;
}

TEST(Completions, SortedInterstitialOnly) {
  const std::vector<sched::JobRecord> rs{irec(30, 10), nrec(0, 100),
                                         irec(0, 10), irec(10, 10)};
  const auto c = interstitial_completions(rs);
  EXPECT_EQ(c, (std::vector<SimTime>{10, 20, 40}));
}

TEST(DirectMakespan, LastCompletionMinusStart) {
  const std::vector<sched::JobRecord> rs{irec(100, 50), irec(200, 50),
                                         nrec(0, 10000)};
  EXPECT_EQ(direct_makespan(rs, 80), 170);
}

TEST(SampledMakespans, UniformStreamMatchesExpectation) {
  // Completions every 10 s forever: a project of N jobs started anywhere
  // takes about 10*N seconds.
  std::vector<SimTime> completions;
  for (SimTime t = 10; t <= 100000; t += 10) completions.push_back(t);
  Rng rng(1);
  const auto m =
      sampled_makespans(completions, 100, 200, /*horizon=*/50000, rng);
  ASSERT_EQ(m.size(), 200u);
  for (double v : m) {
    EXPECT_GE(v, 990.0);
    EXPECT_LE(v, 1010.0);
  }
}

TEST(SampledMakespans, CountsOnlyCompletionsAfterStart) {
  const std::vector<SimTime> completions{100, 200, 300, 400, 500};
  Rng rng(2);
  // njobs = 2, horizon tiny so t1 is within [0, 50): expect c[1] = 200 - t1.
  const auto m = sampled_makespans(completions, 2, 50, 50, rng);
  ASSERT_FALSE(m.empty());
  for (double v : m) {
    EXPECT_GT(v, 150.0);
    EXPECT_LE(v, 200.0);
  }
}

TEST(SampledMakespans, InfeasibleProjectYieldsEmpty) {
  const std::vector<SimTime> completions{100, 200};
  Rng rng(3);
  EXPECT_TRUE(sampled_makespans(completions, 5, 10, 1000, rng).empty());
}

TEST(SampledMakespans, MostlyInfeasibleHorizonTruncates) {
  // Only starts before t=100 can see 3 completions; horizon much larger.
  const std::vector<SimTime> completions{100, 200, 300};
  Rng rng(4);
  const auto m = sampled_makespans(completions, 3, 50, 1000000, rng);
  // Feasibility region is ~1e-4 of the horizon: sampling gives up early.
  EXPECT_LT(m.size(), 50u);
}

TEST(SampledMakespans, DeterministicPerSeed) {
  std::vector<SimTime> completions;
  for (SimTime t = 5; t < 50000; t += 5) completions.push_back(t);
  Rng a(7), b(7);
  EXPECT_EQ(sampled_makespans(completions, 50, 100, 20000, a),
            sampled_makespans(completions, 50, 100, 20000, b));
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(DirectMakespanDeath, NoInterstitialRecordsAborts) {
  const std::vector<sched::JobRecord> rs{nrec(0, 10)};
  EXPECT_DEATH(direct_makespan(rs, 0), "precondition");
}
#endif

}  // namespace
}  // namespace istc::metrics
