// Registry: idempotent by-name registration, array-indexed hot path,
// registration-order iteration (the property the byte-stable RunReport
// serialization rests on), and per-instrument determinism flags.

#include <gtest/gtest.h>

#include "metrics/registry.hpp"

namespace istc::metrics {
namespace {

TEST(Registry, RegistrationIsIdempotentByName) {
  Registry reg;
  const CounterId a = reg.counter("passes");
  const CounterId b = reg.counter("passes");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.counters().size(), 1u);

  const HistogramId h1 = reg.histogram("wait_s");
  const HistogramId h2 = reg.histogram("wait_s");
  EXPECT_EQ(h1.index, h2.index);
  EXPECT_EQ(reg.histograms().size(), 1u);

  // Counters, gauges, and histograms are separate namespaces.
  const GaugeId g = reg.gauge("passes");
  EXPECT_EQ(reg.gauges().size(), 1u);
  EXPECT_EQ(g.index, 0u);
}

TEST(Registry, IterationFollowsRegistrationOrder) {
  Registry reg;
  reg.counter("zulu");
  reg.counter("alpha");
  reg.counter("mike");
  ASSERT_EQ(reg.counters().size(), 3u);
  EXPECT_EQ(reg.counters()[0].name, "zulu");
  EXPECT_EQ(reg.counters()[1].name, "alpha");
  EXPECT_EQ(reg.counters()[2].name, "mike");
}

TEST(Registry, HotPathAccumulatesThroughIds) {
  Registry reg;
  const CounterId c = reg.counter("events");
  const GaugeId g = reg.gauge("depth");
  const HistogramId h = reg.histogram("sizes");
  reg.add(c);
  reg.add(c, 41);
  reg.set(g, -7);
  reg.observe(h, 3);
  reg.observe(h, 300);
  EXPECT_EQ(reg.counter_value(c), 42u);
  EXPECT_EQ(reg.gauge_value(g), -7);
  EXPECT_EQ(reg.histogram_ref(h).total(), 2u);
  EXPECT_EQ(reg.histogram_ref(h).sum(), 303u);
  reg.set_counter(c, 5);
  EXPECT_EQ(reg.counter_value(c), 5u);
}

TEST(Registry, FindByNameReturnsInstrumentOrNull) {
  Registry reg;
  reg.counter("present", Determinism::kWallClock);
  const auto* c = reg.find_counter("present");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name, "present");
  EXPECT_EQ(c->det, Determinism::kWallClock);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("present"), nullptr);
  EXPECT_EQ(reg.find_histogram("present"), nullptr);
}

TEST(Registry, DeterminismFlagSticksToFirstRegistration) {
  Registry reg;
  reg.counter("pass_us", Determinism::kWallClock);
  // Re-registering with the same flag is the idempotent lookup.
  reg.counter("pass_us", Determinism::kWallClock);
  const auto* c = reg.find_counter("pass_us");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->det, Determinism::kWallClock);
}

}  // namespace
}  // namespace istc::metrics
