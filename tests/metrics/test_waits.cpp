#include "metrics/waits.hpp"

#include <gtest/gtest.h>

namespace istc::metrics {
namespace {

sched::JobRecord rec(SimTime submit, SimTime start, Seconds run, int cpus = 1,
                     bool interstitial = false) {
  sched::JobRecord r;
  r.job.submit = submit;
  r.job.cpus = cpus;
  r.job.runtime = run;
  r.job.estimate = run;
  r.job.klass = interstitial ? workload::JobClass::kInterstitial
                             : workload::JobClass::kNative;
  r.start = start;
  r.end = start + run;
  return r;
}

TEST(WaitStats, BasicNumbers) {
  const std::vector<sched::JobRecord> rs{
      rec(0, 0, 100),    // wait 0, EF 1
      rec(0, 100, 100),  // wait 100, EF 2
      rec(0, 300, 100),  // wait 300, EF 4
  };
  const auto s = wait_stats(rs);
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_NEAR(s.avg_wait_s, 400.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.median_wait_s, 100.0);
  EXPECT_NEAR(s.avg_ef, 7.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.median_ef, 2.0);
}

TEST(WaitStats, IgnoresInterstitialRecords) {
  const std::vector<sched::JobRecord> rs{
      rec(0, 0, 100),
      rec(0, 99999, 100, 1, /*interstitial=*/true),
  };
  const auto s = wait_stats(rs);
  EXPECT_EQ(s.jobs, 1u);
  EXPECT_DOUBLE_EQ(s.avg_wait_s, 0.0);
}

TEST(WaitStats, EmptyInput) {
  const std::vector<sched::JobRecord> rs;
  const auto s = wait_stats(rs);
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.avg_wait_s, 0.0);
}

TEST(LargestNative, SelectsByCpuSeconds) {
  std::vector<sched::JobRecord> rs;
  // 100 jobs: job i has cpu-seconds = (i+1)*100.
  for (int i = 0; i < 100; ++i) {
    rs.push_back(rec(0, 0, 100, i + 1));
  }
  const auto top = largest_native(rs, 0.05);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& r : top) EXPECT_GE(r.job.cpus, 96);
}

TEST(LargestNative, AtLeastOneJobKept) {
  const std::vector<sched::JobRecord> rs{rec(0, 0, 100)};
  EXPECT_EQ(largest_native(rs, 0.05).size(), 1u);
}

TEST(LargestNative, ExcludesInterstitial) {
  std::vector<sched::JobRecord> rs{
      rec(0, 0, 100, 1000, /*interstitial=*/true),
      rec(0, 0, 100, 1),
  };
  const auto top = largest_native(rs, 1.0);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].job.cpus, 1);
}

TEST(NativeWaits, ExtractsSeconds) {
  const std::vector<sched::JobRecord> rs{rec(10, 25, 5), rec(0, 0, 5)};
  const auto w = native_waits(rs);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 15.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(BoundedSlowdown, UnitForImmediateStarts) {
  const std::vector<sched::JobRecord> rs{rec(0, 0, 100), rec(5, 5, 50)};
  const auto s = bounded_slowdown(rs);
  EXPECT_EQ(s.jobs, 2u);
  EXPECT_DOUBLE_EQ(s.avg, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 1.0);
}

TEST(BoundedSlowdown, KnownValues) {
  const std::vector<sched::JobRecord> rs{
      rec(0, 100, 100),  // (100+100)/100 = 2
      rec(0, 300, 100),  // (300+100)/100 = 4
  };
  const auto s = bounded_slowdown(rs);
  EXPECT_DOUBLE_EQ(s.avg, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(BoundedSlowdown, TauFloorsShortJobs) {
  // A 1-second job waiting 9 s: raw slowdown 10; with tau=10 it is
  // (9+1)/10 = 1.
  const std::vector<sched::JobRecord> rs{rec(0, 9, 1)};
  EXPECT_DOUBLE_EQ(bounded_slowdown(rs, 10).avg, 1.0);
  EXPECT_DOUBLE_EQ(bounded_slowdown(rs, 1).avg, 10.0);
}

TEST(BoundedSlowdown, IgnoresInterstitial) {
  const std::vector<sched::JobRecord> rs{
      rec(0, 1000, 100, 1, /*interstitial=*/true)};
  EXPECT_EQ(bounded_slowdown(rs).jobs, 0u);
}

TEST(QueueLengthSeries, CountsWaitingJobs) {
  // Job waits [0, 200); buckets of 100 s over span 300.
  const std::vector<sched::JobRecord> rs{rec(0, 200, 50)};
  const auto q = queue_length_series(rs, 300, 100);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_DOUBLE_EQ(q[1], 1.0);
  EXPECT_DOUBLE_EQ(q[2], 0.0);
}

TEST(QueueLengthSeries, FractionalOccupancy) {
  // Waits [50, 150): half of bucket 0, half of bucket 1.
  const std::vector<sched::JobRecord> rs{rec(50, 150, 10)};
  const auto q = queue_length_series(rs, 200, 100);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q[0], 0.5);
  EXPECT_DOUBLE_EQ(q[1], 0.5);
}

TEST(QueueLengthSeries, OverlappingJobsSum) {
  const std::vector<sched::JobRecord> rs{rec(0, 100, 10), rec(0, 100, 10)};
  const auto q = queue_length_series(rs, 100, 100);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q[0], 2.0);
}

TEST(QueueLengthSeries, ZeroWaitContributesNothing) {
  const std::vector<sched::JobRecord> rs{rec(10, 10, 100)};
  const auto q = queue_length_series(rs, 200, 100);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
}

TEST(WaitHistogram, BinsLikeThePaper) {
  // Figs. 5-6: decades of seconds; zero waits land in [0,1).
  std::vector<sched::JobRecord> rs{
      rec(0, 0, 10),        // wait 0      -> [0,1)
      rec(0, 5, 10),        // wait 5      -> [0,1)
      rec(0, 50, 10),       // wait 50     -> [1,2)
      rec(0, 5000, 10),     // wait 5e3    -> [3,4)
      rec(0, 200000, 10),   // wait 2e5    -> [5,6)
  };
  const auto h = wait_histogram(rs, 6);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

}  // namespace
}  // namespace istc::metrics
