// Log2Histogram: the bucket map must agree with a naive edge-scanning
// binner on every value class — the property that lets the figure benches
// replace their bespoke binning with the shared histogram.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "metrics/histogram.hpp"
#include "util/rng.hpp"

namespace istc::metrics {
namespace {

/// Naive reference: linear scan over [bucket_lo, bucket_hi) edges.
int naive_bucket(std::uint64_t v) {
  for (int k = 0; k < Log2Histogram::kBuckets; ++k) {
    const bool last = k == Log2Histogram::kBuckets - 1;
    if (v >= Log2Histogram::bucket_lo(k) &&
        (last || v < Log2Histogram::bucket_hi(k))) {
      return k;
    }
  }
  return -1;
}

TEST(Log2Histogram, BucketIndexMatchesNaiveBinnerOnEdges) {
  // 0 and 1 are their own buckets; every power of two starts a bucket.
  EXPECT_EQ(Log2Histogram::bucket_index(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_index(1), 1);
  for (int p = 1; p < 64; ++p) {
    const std::uint64_t pow = std::uint64_t{1} << p;
    for (const std::uint64_t v : {pow - 1, pow, pow + 1}) {
      EXPECT_EQ(Log2Histogram::bucket_index(v), naive_bucket(v)) << v;
    }
  }
  const auto max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(Log2Histogram::bucket_index(max), 64);
  EXPECT_EQ(naive_bucket(max), 64);
}

TEST(Log2Histogram, BucketIndexMatchesNaiveBinnerOnRandomValues) {
  Rng rng(0x10c2);
  for (int i = 0; i < 20000; ++i) {
    // Uniform over bit widths, then uniform within the width — plain
    // uniform u64 would almost never land in the small buckets.
    const int width = static_cast<int>(rng.below(65));
    const std::uint64_t lo =
        width == 0 ? 0 : std::uint64_t{1} << (width - 1);
    const std::uint64_t v = width == 0 ? 0 : lo + rng.below(lo);
    EXPECT_EQ(Log2Histogram::bucket_index(v), naive_bucket(v)) << v;
  }
}

TEST(Log2Histogram, EveryBucketContainsItsOwnEdges) {
  for (int k = 0; k < Log2Histogram::kBuckets; ++k) {
    EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_lo(k)), k);
    if (k < 64) {
      EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_hi(k) - 1),
                k);
      EXPECT_LT(Log2Histogram::bucket_lo(k), Log2Histogram::bucket_hi(k));
    } else {
      // Bucket 64's exclusive edge does not fit in uint64; the clamped
      // edge value itself belongs to the bucket.
      EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_hi(k)), k);
    }
  }
}

TEST(Log2Histogram, AddAccumulatesCountsTotalsAndSum) {
  Log2Histogram h;
  EXPECT_EQ(h.first_nonzero(), -1);
  EXPECT_EQ(h.last_nonzero(), -1);
  h.add(0);
  h.add(1);
  h.add(5);
  h.add(5);
  h.add(1023);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 5 + 5 + 1023);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 2u);   // [4,8)
  EXPECT_EQ(h.count(10), 1u);  // [512,1024)
  EXPECT_EQ(h.first_nonzero(), 0);
  EXPECT_EQ(h.last_nonzero(), 10);
}

TEST(Log2Histogram, BucketLabelsSpellTheRanges) {
  EXPECT_EQ(bucket_label(0), "0");
  EXPECT_EQ(bucket_label(1), "[1,2)");
  EXPECT_EQ(bucket_label(4), "[8,16)");
}

// -- quantile() (feeds the stats verb, /metrics and istc top) ----------------

TEST(Log2Histogram, QuantileOfEmptyHistogramIsZero) {
  const Log2Histogram h;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0.0) << q;
  }
}

TEST(Log2Histogram, QuantileClampsOutOfRangeInputs) {
  Log2Histogram h;
  h.add(100);
  EXPECT_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(Log2Histogram, QuantileOfSingleSampleLandsInItsBucket) {
  Log2Histogram h;
  h.add(100);  // bucket [64,128)
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 64.0) << q;
    EXPECT_LT(v, 128.0) << q;
    // One sample means one answer: every quantile reads the same rank.
    EXPECT_EQ(v, h.quantile(0.5)) << q;
  }
}

TEST(Log2Histogram, QuantileOfZeroSamplesIsExactlyZero) {
  Log2Histogram h;
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Log2Histogram, QuantileAllInOverflowBucketStaysInBucket) {
  Log2Histogram h;
  const auto big = std::uint64_t{1} << 63;  // first value of bucket 64
  h.add(big);
  h.add(std::numeric_limits<std::uint64_t>::max());
  const double lo = static_cast<double>(big);
  for (const double q : {0.0, 0.5, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, lo) << q;
    EXPECT_LE(v, static_cast<double>(
                     std::numeric_limits<std::uint64_t>::max()))
        << q;
  }
}

TEST(Log2Histogram, QuantileIsMonotoneInQ) {
  Rng rng(0x9A517);
  Log2Histogram h;
  for (int i = 0; i < 5000; ++i) {
    const int width = static_cast<int>(rng.below(20));
    const std::uint64_t lo = width == 0 ? 0 : std::uint64_t{1} << (width - 1);
    h.add(width == 0 ? 0 : lo + rng.below(lo));
  }
  double prev = h.quantile(0.0);
  for (int i = 1; i <= 100; ++i) {
    const double v = h.quantile(static_cast<double>(i) / 100.0);
    EXPECT_GE(v, prev) << i;
    prev = v;
  }
}

TEST(Log2Histogram, QuantileBracketsTheMedianOfAKnownSet) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  // True median 500; log2 buckets bound it to [256,512).
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 512.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 512.0);  // true p99 ~990
  EXPECT_LT(p99, 1024.0);
}

TEST(Log2Histogram, MergeSumsCountsTotalsAndSums) {
  Log2Histogram a;
  Log2Histogram b;
  a.add(5);
  a.add(100);
  b.add(5);
  b.add(70000);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.sum(), 5u + 100 + 5 + 70000);
  EXPECT_EQ(a.count(Log2Histogram::bucket_index(5)), 2u);
  EXPECT_EQ(a.count(Log2Histogram::bucket_index(100)), 1u);
  EXPECT_EQ(a.count(Log2Histogram::bucket_index(70000)), 1u);
  // Merging an empty histogram is the identity.
  const std::uint64_t before = a.total();
  a.merge(Log2Histogram{});
  EXPECT_EQ(a.total(), before);
}

}  // namespace
}  // namespace istc::metrics
