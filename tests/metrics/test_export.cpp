#include "metrics/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/swf.hpp"

namespace istc::metrics {
namespace {

sched::JobRecord rec(workload::JobId id, SimTime submit, SimTime start,
                     Seconds run, int cpus, bool interstitial = false) {
  sched::JobRecord r;
  r.job.id = id;
  r.job.submit = submit;
  r.job.cpus = cpus;
  r.job.runtime = run;
  r.job.estimate = run * 2;
  r.job.user = 3;
  r.job.group = 1;
  r.job.klass = interstitial ? workload::JobClass::kInterstitial
                             : workload::JobClass::kNative;
  r.start = start;
  r.end = start + run;
  return r;
}

TEST(Export, SwfRecordsFieldsAndQueueTag) {
  const std::vector<sched::JobRecord> rs{
      rec(0, 100, 150, 60, 8),
      rec(1, 200, 200, 30, 4, /*interstitial=*/true),
  };
  std::ostringstream out;
  write_swf_records(out, rs, "result trace");
  std::istringstream lines(out.str());
  std::string l;
  std::getline(lines, l);
  EXPECT_EQ(l, "; result trace");
  std::getline(lines, l);
  // seq submit wait run procs ... estimate ... queue field = 1 (native)
  EXPECT_EQ(l.substr(0, 15), "1 100 50 60 8 -");
  EXPECT_NE(l.find(" 120 "), std::string::npos);  // estimate
  std::getline(lines, l);
  EXPECT_EQ(l.substr(0, 12), "2 200 0 30 4");
  // queue column (15th field) is 2 for interstitial.
  std::istringstream fields(l);
  std::string f;
  for (int i = 0; i < 15; ++i) fields >> f;
  EXPECT_EQ(f, "2");
}

TEST(Export, SwfRecordsRoundTripThroughReader) {
  const std::vector<sched::JobRecord> rs{rec(0, 10, 40, 60, 8),
                                         rec(1, 20, 25, 30, 4)};
  std::ostringstream out;
  write_swf_records(out, rs);
  std::istringstream in(out.str());
  workload::SwfReadOptions opts;
  opts.rebase_time = false;
  const auto log = workload::read_swf(in, opts);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].submit, 10);
  EXPECT_EQ(log[0].runtime, 60);
  EXPECT_EQ(log[0].estimate, 120);
  EXPECT_EQ(log[0].cpus, 8);
  EXPECT_EQ(log[0].user, 3);
}

class ExportFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/istc_export_test.out";
  void TearDown() override { std::remove(path_.c_str()); }
  std::string read_all() {
    std::ifstream in(path_);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(ExportFileTest, SwfFileWritten) {
  const std::vector<sched::JobRecord> rs{rec(0, 0, 5, 10, 2)};
  write_swf_records_file(path_, rs, "hdr");
  const auto content = read_all();
  EXPECT_NE(content.find("; hdr"), std::string::npos);
  EXPECT_NE(content.find("1 0 5 10 2"), std::string::npos);
}

TEST_F(ExportFileTest, CsvHasHeaderAndRows) {
  const std::vector<sched::JobRecord> rs{
      rec(7, 0, 5, 10, 2), rec(8, 1, 1, 10, 2, /*interstitial=*/true)};
  write_records_csv(path_, rs);
  const auto content = read_all();
  EXPECT_NE(content.find("id,class,user"), std::string::npos);
  EXPECT_NE(content.find("7,native"), std::string::npos);
  EXPECT_NE(content.find("8,interstitial"), std::string::npos);
  // wait and EF of record 7: wait 5, ef 1.5.
  EXPECT_NE(content.find(",5,1.5000"), std::string::npos);
}

TEST(Export, MissingDirectoryThrows) {
  const std::vector<sched::JobRecord> rs;
  EXPECT_THROW(write_swf_records_file("/no/such/dir/x.swf", rs),
               std::runtime_error);
}

}  // namespace
}  // namespace istc::metrics
