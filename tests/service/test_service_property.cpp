#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/json.hpp"
#include "service/session.hpp"

/// \file test_service_property.cpp
/// Property: service answers are pure functions of (query, baseline epoch).
/// The same query against the same epoch must return byte-identical JSON no
/// matter how queries are ordered, whether they run concurrently, and
/// whether no-op ingests (blanks, filtered records, malformed lines) are
/// interleaved between them.

namespace istc::service {
namespace {

std::string swf_line(SimTime submit, Seconds runtime, int cpus,
                     Seconds estimate) {
  return "1 " + std::to_string(submit) + " 0 " + std::to_string(runtime) +
         " " + std::to_string(cpus) + " -1 -1 " + std::to_string(cpus) + " " +
         std::to_string(estimate) + " -1 1 3 2 -1 -1 -1 -1 -1";
}

std::string ingest_request(const std::string& line) {
  return "{\"op\":\"ingest\",\"line\":\"" + json_escape(line) + "\"}";
}

SessionConfig ross_config() {
  SessionConfig cfg;
  cfg.site = cluster::Site::kRoss;
  cfg.snapshot_interval = 2000;
  return cfg;
}

void preload(Session& session, int jobs) {
  for (int i = 0; i < jobs; ++i) {
    const std::string reply = session.handle_line(ingest_request(
        swf_line(100 + 60 * i, 300 + 40 * (i % 7), 8 + 8 * (i % 6), 900)));
    ASSERT_NE(reply.find("\"accepted\":true"), std::string::npos) << reply;
  }
}

std::vector<std::string> query_set() {
  return {
      "{\"op\":\"whatif\",\"jobs\":2,\"cpus\":32,\"runtime_s\":300,"
      "\"horizon_s\":7200}",
      "{\"op\":\"whatif\",\"jobs\":5,\"cpus\":16,\"runtime_s\":600,"
      "\"horizon_s\":10800,\"points_s\":[0,1800]}",
      "{\"op\":\"whatif\",\"class\":\"interstitial\",\"jobs\":4,\"cpus\":8,"
      "\"runtime_s\":204,\"horizon_s\":20000}",
      "{\"op\":\"whatif\",\"jobs\":1,\"cpus\":128,\"runtime_s\":450,"
      "\"horizon_s\":7200,\"mode\":\"scratch\"}",
  };
}

TEST(ServiceProperty, AnswersAreIndependentOfQueryOrder) {
  const auto queries = query_set();

  Session forward(ross_config());
  preload(forward, 12);
  std::vector<std::string> first;
  for (const auto& q : queries) first.push_back(forward.handle_line(q));

  // Same session, queries replayed in reverse: same epoch, same bytes.
  std::vector<std::string> again(queries.size());
  for (std::size_t i = queries.size(); i-- > 0;) {
    again[i] = forward.handle_line(queries[i]);
  }
  EXPECT_EQ(first, again);

  // A freshly built session over the same tail answers identically too.
  Session rebuilt(ross_config());
  preload(rebuilt, 12);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(rebuilt.handle_line(queries[i]), first[i]) << queries[i];
  }
}

TEST(ServiceProperty, NoOpIngestsDoNotPerturbAnswers) {
  const auto queries = query_set();
  Session session(ross_config());
  preload(session, 12);

  std::vector<std::string> baseline;
  for (const auto& q : queries) baseline.push_back(session.handle_line(q));
  const std::uint64_t hash_before = session.baseline_hash();

  const std::vector<std::string> noops = {
      ingest_request(""),
      ingest_request("; swf header comment"),
      ingest_request("2 500 0 -1 8 -1 -1 8 240 -1 0 1 1"),  // filtered status
      ingest_request("total garbage"),
      ingest_request(swf_line(300, 300, 1000000, 600)),  // infeasible
      "{\"op\":\"status\"}",
      "not even json",
  };
  for (std::size_t i = 0; i < queries.size(); ++i) {
    session.handle_line(noops[i % noops.size()]);
    session.handle_line(noops[(i + 3) % noops.size()]);
    EXPECT_EQ(session.handle_line(queries[i]), baseline[i]) << queries[i];
  }
  EXPECT_EQ(session.epoch(), 12u);
  EXPECT_EQ(session.baseline_hash(), hash_before);
}

TEST(ServiceProperty, ConcurrentAnswersMatchSerialAnswers) {
  const auto queries = query_set();
  Session session(ross_config());
  preload(session, 12);

  std::vector<std::string> serial;
  for (const auto& q : queries) serial.push_back(session.handle_line(q));

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<std::vector<std::pair<std::size_t, std::string>>> got(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&queries, &session, &got, t] {
      // Each thread walks the query set in a different shuffled order so
      // the interleavings differ across threads.
      std::mt19937 rng(static_cast<unsigned>(t) * 7919u + 17u);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t pick =
              (i + static_cast<std::size_t>(rng())) % queries.size();
          got[static_cast<std::size_t>(t)].emplace_back(
              pick, session.handle_line(queries[pick]));
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  for (const auto& thread_replies : got) {
    ASSERT_EQ(thread_replies.size(),
              static_cast<std::size_t>(kRounds) * queries.size());
    for (const auto& [pick, reply] : thread_replies) {
      EXPECT_EQ(reply, serial[pick]);
    }
  }
}

TEST(ServiceProperty, EpochBumpChangesTheBaselineAdvertisedToClients) {
  Session session(ross_config());
  preload(session, 6);
  const std::string q =
      "{\"op\":\"whatif\",\"jobs\":2,\"cpus\":32,\"runtime_s\":300}";
  const std::string before = session.handle_line(q);
  session.handle_line(ingest_request(swf_line(5000, 900, 512, 1800)));
  const std::string after = session.handle_line(q);
  EXPECT_NE(before, after);
  EXPECT_NE(before.find("\"epoch\":6"), std::string::npos);
  EXPECT_NE(after.find("\"epoch\":7"), std::string::npos);
}

}  // namespace
}  // namespace istc::service
