#include "service/session.hpp"

#include <gtest/gtest.h>

#include <string>

#include "service/json.hpp"

namespace istc::service {
namespace {

std::string swf_line(SimTime submit, Seconds runtime, int cpus,
                     Seconds estimate) {
  return "1 " + std::to_string(submit) + " 0 " + std::to_string(runtime) +
         " " + std::to_string(cpus) + " -1 -1 " + std::to_string(cpus) + " " +
         std::to_string(estimate) + " -1 1 3 2 -1 -1 -1 -1 -1";
}

std::string ingest_request(const std::string& line) {
  return "{\"op\":\"ingest\",\"line\":\"" + json_escape(line) + "\"}";
}

SessionConfig ross_config() {
  SessionConfig cfg;
  cfg.site = cluster::Site::kRoss;
  cfg.snapshot_interval = 1000;
  return cfg;
}

/// Parse a reply and fail the test if it is not valid protocol JSON.
Value reply_of(Session& session, const std::string& request) {
  const std::string reply = session.handle_line(request);
  const ParseResult parsed = parse(reply);
  EXPECT_TRUE(parsed.ok()) << reply;
  EXPECT_EQ(parsed.value.str_or("schema", ""), kWhatIfSchema) << reply;
  return parsed.value;
}

TEST(Session, StatusReportsBaseline) {
  Session session(ross_config());
  const Value v = reply_of(session, "{\"op\":\"status\"}");
  EXPECT_EQ(v.str_or("op", ""), "status");
  EXPECT_EQ(v.str_or("site", ""), "Ross");
  EXPECT_DOUBLE_EQ(v.num_or("epoch", -1), 0);
  EXPECT_DOUBLE_EQ(v.num_or("accepted_jobs", -1), 0);
  EXPECT_FALSE(v.bool_or("stream", true));
}

TEST(Session, IngestAcceptsAndBumpsEpoch) {
  Session session(ross_config());
  const Value v = reply_of(session, ingest_request(swf_line(100, 300, 8, 600)));
  EXPECT_TRUE(v.bool_or("accepted", false));
  EXPECT_DOUBLE_EQ(v.num_or("epoch", -1), 1);
  EXPECT_DOUBLE_EQ(v.num_or("id", -1), 0);
  EXPECT_DOUBLE_EQ(v.num_or("frontier_s", -1), 100);
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.accepted_jobs(), 1u);
}

TEST(Session, NoOpIngestsLeaveEpochAlone) {
  Session session(ross_config());
  reply_of(session, ingest_request(swf_line(100, 300, 8, 600)));

  const Value blank = reply_of(session, ingest_request("   "));
  EXPECT_FALSE(blank.bool_or("accepted", true));
  EXPECT_EQ(blank.str_or("reason", ""), "blank");

  const Value comment = reply_of(session, ingest_request("; header"));
  EXPECT_EQ(comment.str_or("reason", ""), "blank");

  // Failed/cancelled trace entries are filtered, not errors.
  const Value filtered =
      reply_of(session, ingest_request("2 150 0 -1 8 -1 -1 8 240 -1 0 1 1"));
  EXPECT_EQ(filtered.str_or("reason", ""), "filtered");

  EXPECT_EQ(session.epoch(), 1u);
}

TEST(Session, MalformedIngestLinesAreStructuredErrors) {
  Session session(ross_config());
  const Value truncated = reply_of(session, ingest_request("1 2 3"));
  ASSERT_NE(truncated.find("error"), nullptr);
  EXPECT_EQ(truncated.find("error")->str_or("code", ""), "bad_line");

  const Value garbage = reply_of(session, ingest_request("not a record"));
  ASSERT_NE(garbage.find("error"), nullptr);
  EXPECT_EQ(garbage.find("error")->str_or("code", ""), "bad_line");
  EXPECT_EQ(session.epoch(), 0u);
}

TEST(Session, OversizedIngestIsInfeasible) {
  Session session(ross_config());
  const Value v =
      reply_of(session, ingest_request(swf_line(100, 300, 100000, 600)));
  ASSERT_NE(v.find("error"), nullptr);
  EXPECT_EQ(v.find("error")->str_or("code", ""), "infeasible");
  EXPECT_EQ(session.epoch(), 0u);
}

TEST(Session, MalformedJsonIsAStructuredError) {
  Session session(ross_config());
  const Value v = reply_of(session, "{\"op\":\"status\"");
  ASSERT_NE(v.find("error"), nullptr);
  EXPECT_EQ(v.find("error")->str_or("code", ""), "bad_json");
}

TEST(Session, WhatIfValidationErrors) {
  Session session(ross_config());
  const auto code_of = [&](const std::string& req) {
    const Value v = reply_of(session, req);
    const Value* err = v.find("error");
    return err == nullptr ? std::string("none") : err->str_or("code", "");
  };
  EXPECT_EQ(code_of("{\"op\":\"teleport\"}"), "bad_request");
  EXPECT_EQ(code_of("{\"op\":\"whatif\",\"jobs\":0}"), "bad_shape");
  EXPECT_EQ(code_of("{\"op\":\"whatif\",\"jobs\":2.5}"), "bad_shape");
  EXPECT_EQ(code_of("{\"op\":\"whatif\",\"cpus\":1000000}"), "infeasible");
  EXPECT_EQ(code_of("{\"op\":\"whatif\",\"class\":\"magic\"}"), "bad_request");
  EXPECT_EQ(code_of("{\"op\":\"whatif\",\"points_s\":[]}"), "bad_shape");
  EXPECT_EQ(code_of("{\"op\":\"whatif\",\"points_s\":[-5]}"), "bad_shape");
  EXPECT_EQ(code_of("{\"op\":\"whatif\",\"runtime_s\":0}"), "bad_shape");
}

TEST(Session, WhatIfNativeVerdict) {
  Session session(ross_config());
  for (int i = 0; i < 10; ++i) {
    reply_of(session,
             ingest_request(swf_line(100 + 50 * i, 400, 16 + 16 * (i % 3),
                                     800)));
  }
  const Value v = reply_of(
      session,
      "{\"op\":\"whatif\",\"project\":\"demo\",\"jobs\":4,\"cpus\":32,"
      "\"runtime_s\":600,\"horizon_s\":7200}");
  EXPECT_EQ(v.str_or("op", ""), "whatif");
  EXPECT_EQ(v.str_or("project", ""), "demo");
  EXPECT_EQ(v.str_or("class", ""), "native");
  EXPECT_DOUBLE_EQ(v.num_or("epoch", -1), 10);
  const Value* points = v.find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->array.size(), 1u);
  const Value& p = points->array[0];
  EXPECT_DOUBLE_EQ(p.num_or("offset_s", -1), 0);
  EXPECT_DOUBLE_EQ(p.num_or("completed", -1), 4);
  EXPECT_DOUBLE_EQ(p.num_or("killed", -1), 0);
  EXPECT_GT(p.num_or("makespan_s", 0), 0);
  // 4 jobs x 32 cpus x 600 s of speculative work completed.
  EXPECT_DOUBLE_EQ(p.num_or("harvested_cpu_s", 0), 4 * 32 * 600.0);
  const Value* impact = p.find("native_impact");
  ASSERT_NE(impact, nullptr);
  EXPECT_DOUBLE_EQ(impact->num_or("compared", -1), 10);
}

TEST(Session, WhatIfMultiPoint) {
  Session session(ross_config());
  reply_of(session, ingest_request(swf_line(100, 500, 64, 1000)));
  const Value v = reply_of(
      session,
      "{\"op\":\"whatif\",\"jobs\":2,\"cpus\":16,\"runtime_s\":300,"
      "\"points_s\":[0,1800,3600]}");
  const Value* points = v.find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->array.size(), 3u);
  EXPECT_DOUBLE_EQ(points->array[0].num_or("offset_s", -1), 0);
  EXPECT_DOUBLE_EQ(points->array[1].num_or("offset_s", -1), 1800);
  EXPECT_DOUBLE_EQ(points->array[2].num_or("offset_s", -1), 3600);
  for (const Value& p : points->array) {
    EXPECT_DOUBLE_EQ(p.num_or("completed", -1), 2);
  }
}

TEST(Session, ForkedAndScratchRepliesAreByteIdentical) {
  Session session(ross_config());
  for (int i = 0; i < 8; ++i) {
    reply_of(session, ingest_request(swf_line(200 + 90 * i, 350, 24, 700)));
  }
  const std::string query =
      "{\"op\":\"whatif\",\"jobs\":3,\"cpus\":48,\"runtime_s\":450,"
      "\"horizon_s\":7200,\"points_s\":[0,900]";
  const std::string forked = session.handle_line(query + "}");
  const std::string scratch =
      session.handle_line(query + ",\"mode\":\"scratch\"}");
  EXPECT_EQ(forked, scratch);
}

TEST(Session, InterstitialWhatIfOnNativesOnlyBaseline) {
  Session session(ross_config());
  reply_of(session, ingest_request(swf_line(100, 500, 64, 1000)));
  const Value v = reply_of(
      session,
      "{\"op\":\"whatif\",\"class\":\"interstitial\",\"jobs\":6,\"cpus\":8,"
      "\"runtime_s\":204,\"horizon_s\":50000}");
  EXPECT_EQ(v.str_or("class", ""), "interstitial");
  const Value* points = v.find("points");
  ASSERT_NE(points, nullptr);
  EXPECT_DOUBLE_EQ(points->array[0].num_or("completed", -1), 6);
}

TEST(Session, InterstitialWhatIfConflictsWithBaselineStream) {
  SessionConfig cfg = ross_config();
  cfg.stream = core::ProjectSpec::continual_stream(8, 120, kTimeInfinity);
  Session session(cfg);
  const Value v = reply_of(
      session, "{\"op\":\"whatif\",\"class\":\"interstitial\",\"jobs\":2}");
  ASSERT_NE(v.find("error"), nullptr);
  EXPECT_EQ(v.find("error")->str_or("code", ""), "conflict");
}

TEST(Session, StreamBaselineReportsHarvestDelta) {
  SessionConfig cfg = ross_config();
  cfg.stream = core::ProjectSpec::continual_stream(8, 120, kTimeInfinity);
  Session session(cfg);
  reply_of(session, ingest_request(swf_line(100, 500, 64, 1000)));
  const Value v = reply_of(session,
                           "{\"op\":\"whatif\",\"jobs\":2,\"cpus\":700,"
                           "\"runtime_s\":600,\"horizon_s\":4000}");
  const Value* points = v.find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_NE(points->array[0].find("stream_harvest_delta_cpu_s"), nullptr);
}

TEST(Session, ShutdownSetsTheFlag) {
  Session session(ross_config());
  EXPECT_FALSE(session.shutdown_requested());
  const Value v = reply_of(session, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(v.bool_or("ok", false));
  EXPECT_TRUE(session.shutdown_requested());
}

// -- observability surface: status quantiles, stats verb, /metrics body -----

TEST(Session, StatusIncludesQueryLatencyQuantiles) {
  Session session(ross_config());
  reply_of(session, "{\"op\":\"whatif\",\"jobs\":1,\"cpus\":8}");
  const Value v = reply_of(session, "{\"op\":\"status\"}");
  const Value* lat = v.find("query_latency_us");
  ASSERT_NE(lat, nullptr) << "status must publish latency quantiles";
  EXPECT_DOUBLE_EQ(lat->num_or("count", -1), 1);
  const double p50 = lat->num_or("p50_us", -1);
  const double p90 = lat->num_or("p90_us", -1);
  const double p99 = lat->num_or("p99_us", -1);
  EXPECT_GE(p50, 0.0);
  EXPECT_GE(p90, p50);
  EXPECT_GE(p99, p90);
}

TEST(Session, StatsVerbPublishesTheTelemetrySchema) {
  Session session(ross_config());
  reply_of(session, "{\"op\":\"whatif\",\"jobs\":1,\"cpus\":8}");
  const Value v = reply_of(session, "{\"op\":\"stats\"}");
  EXPECT_EQ(v.str_or("op", ""), "stats");
  EXPECT_EQ(v.find("error"), nullptr);
  EXPECT_GE(v.num_or("uptime_s", -1), 0.0);
  // No ingest yet: lag is the -1 sentinel.
  EXPECT_DOUBLE_EQ(v.num_or("ingest_lag_s", 0), -1.0);

  const Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->num_or("queries", -1), 1);
  EXPECT_DOUBLE_EQ(counters->num_or("ingests", -1), 0);

  const Value* lat = v.find("query_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->num_or("count", -1), 1);

  const Value* pool = v.find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->num_or("default_threads", -1), 1.0);
  EXPECT_GE(pool->num_or("tasks_executed", -1), 0.0);

  const Value* o = v.find("obs");
  ASSERT_NE(o, nullptr);
  EXPECT_GE(o->num_or("spans_recorded", -1), 0.0);

  const Value* profile = v.find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_TRUE(profile->is_array());
}

TEST(Session, StatsReportsIngestLagAfterAcceptedIngest) {
  Session session(ross_config());
  reply_of(session, ingest_request(swf_line(100, 300, 8, 600)));
  const Value v = reply_of(session, "{\"op\":\"stats\"}");
  EXPECT_GE(v.num_or("ingest_lag_s", -1), 0.0);
  const Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->num_or("ingests_accepted", -1), 1);
}

TEST(Session, PrometheusTextExposesTheRegistryAndGauges) {
  Session session(ross_config());
  reply_of(session, ingest_request(swf_line(100, 300, 8, 600)));
  reply_of(session, "{\"op\":\"whatif\",\"jobs\":1,\"cpus\":8}");
  const std::string text = session.prometheus_text();
  EXPECT_NE(text.find("# TYPE istc_service_queries counter"),
            std::string::npos);
  EXPECT_NE(text.find("istc_service_queries 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE istc_service_query_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("istc_service_query_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("istc_service_query_latency_us_count"),
            std::string::npos);
  EXPECT_NE(text.find("istc_ingest_lag_seconds"), std::string::npos);
  EXPECT_NE(text.find("istc_snapshot_chain_depth"), std::string::npos);
  EXPECT_NE(text.find("istc_pool_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("istc_obs_spans_recorded"), std::string::npos);
  // Prometheus text format: every line is a comment or "name[{labels}] value".
  EXPECT_EQ(text.back(), '\n');
}

TEST(Session, StatsRepliesAreNotPartOfThePurityContract) {
  // Two stats replies differ (uptime moves) while whatif replies must not:
  // the test documents why stats/status are never byte-compared.
  Session session(ross_config());
  const std::string a =
      session.handle_line("{\"op\":\"whatif\",\"jobs\":1,\"cpus\":8}");
  const std::string b =
      session.handle_line("{\"op\":\"whatif\",\"jobs\":1,\"cpus\":8}");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("uptime"), std::string::npos);
  EXPECT_EQ(a.find("_us"), std::string::npos);
}

TEST(Session, MetricsCountTraffic) {
  Session session(ross_config());
  reply_of(session, ingest_request(swf_line(100, 300, 8, 600)));
  reply_of(session, ingest_request("garbage line"));
  reply_of(session, "{\"op\":\"whatif\",\"jobs\":1,\"cpus\":8}");
  const auto& reg = session.registry();
  EXPECT_EQ(reg.find_counter("service.ingests")->value, 2u);
  EXPECT_EQ(reg.find_counter("service.ingests_accepted")->value, 1u);
  EXPECT_EQ(reg.find_counter("service.ingests_rejected")->value, 1u);
  EXPECT_EQ(reg.find_counter("service.queries")->value, 1u);
  EXPECT_GT(reg.find_histogram("service.query_latency_us")->hist.total(), 0u);
}

}  // namespace
}  // namespace istc::service
