#include "service/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace istc::service {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").value.is_null());
  EXPECT_TRUE(parse("true").value.boolean);
  EXPECT_FALSE(parse("false").value.boolean);
  EXPECT_DOUBLE_EQ(parse("42").value.number, 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").value.number, -350.0);
  EXPECT_EQ(parse("\"hi\"").value.string, "hi");
}

TEST(Json, ParsesNested) {
  const auto r = parse(R"({"op":"whatif","jobs":8,"points_s":[0,3600],)"
                       R"("nested":{"a":true}})");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.str_or("op", ""), "whatif");
  EXPECT_DOUBLE_EQ(r.value.num_or("jobs", 0), 8.0);
  const Value* points = r.value.find("points_s");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->array.size(), 2u);
  EXPECT_DOUBLE_EQ(points->array[1].number, 3600.0);
  const Value* nested = r.value.find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->bool_or("a", false));
}

TEST(Json, ParsesEscapes) {
  const auto r = parse(R"("a\"b\\c\nd")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.string, "a\"b\\c\nd");
}

TEST(Json, AsciiUnicodeEscapes) {
  const auto a_nl = parse("\"\\u0041\\u000a\"");
  ASSERT_TRUE(a_nl.ok()) << a_nl.error;
  EXPECT_EQ(a_nl.value.string, "A\n");
  EXPECT_FALSE(parse("\"\\u00e9\"").ok());  // non-ASCII: reject, not mangle
  EXPECT_FALSE(parse("\"\\u12\"").ok());    // truncated
  EXPECT_FALSE(parse("\"\\uzzzz\"").ok());  // bad digits
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("{").ok());
  EXPECT_FALSE(parse("{\"a\":}").ok());
  EXPECT_FALSE(parse("[1,2").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("nul").ok());
  EXPECT_FALSE(parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(parse("--5").ok());
  EXPECT_FALSE(parse("{1:2}").ok());
}

TEST(Json, RejectsDepthBombWithoutCrashing) {
  std::string bomb(10000, '[');
  const auto r = parse(bomb);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("nesting"), std::string::npos);
}

TEST(Json, MissingMembersUseDefaults) {
  const auto r = parse("{}");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value.num_or("jobs", 7), 7.0);
  EXPECT_EQ(r.value.str_or("op", "none"), "none");
  EXPECT_TRUE(r.value.bool_or("flag", true));
  EXPECT_EQ(r.value.find("nothing"), nullptr);
}

TEST(Json, WrongTypeMembersUseDefaults) {
  const auto r = parse(R"({"jobs":"eight","op":5})");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value.num_or("jobs", 7), 7.0);
  EXPECT_EQ(r.value.str_or("op", "none"), "none");
}

TEST(JsonWriter, WritesDeterministicObject) {
  const auto build = [] {
    JsonWriter w;
    w.begin_object();
    w.member("s", "a\"b");
    w.member("n", 1.5);
    w.member("i", std::int64_t{-3});
    w.member("b", true);
    w.key("arr");
    w.begin_array();
    w.comma();
    w.value(1.0);
    w.comma();
    w.value(2.0);
    w.end_array();
    w.end_object();
    return w.take();
  };
  const std::string a = build();
  EXPECT_EQ(a, R"({"s":"a\"b","n":1.5,"i":-3,"b":true,"arr":[1,2]})");
  EXPECT_EQ(a, build());
}

TEST(JsonWriter, RoundTripsThroughParser) {
  JsonWriter w;
  w.begin_object();
  w.member("text", "line1\nline2\t\"quoted\"");
  w.member("num", 0.125);
  w.end_object();
  const auto r = parse(w.str());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.str_or("text", ""), "line1\nline2\t\"quoted\"");
  EXPECT_DOUBLE_EQ(r.value.num_or("num", 0), 0.125);
}

}  // namespace
}  // namespace istc::service
