#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fork.hpp"
#include "grid/fleet.hpp"
#include "service/baseline.hpp"
#include "service/json.hpp"
#include "service/session.hpp"
#include "service/tail_run.hpp"
#include "workload/swf.hpp"

/// \file test_staleness_differential.cpp
/// Differential pin for the bounded-staleness machinery: an incrementally
/// maintained baseline that survives tail invalidations (rewind to a
/// snapshot + replay) must be bit-identical to a from-scratch simulation
/// of the full ingested log.  Checked at the Session level (out-of-order
/// SWF lines at several invalidation depths) and for SnapshotChain over
/// both single-machine (core::SimRun) and federated (grid::FleetRun)
/// baselines.

namespace istc::service {
namespace {

std::string swf_line(SimTime submit, Seconds runtime, int cpus,
                     Seconds estimate) {
  return "1 " + std::to_string(submit) + " 0 " + std::to_string(runtime) +
         " " + std::to_string(cpus) + " -1 -1 " + std::to_string(cpus) + " " +
         std::to_string(estimate) + " -1 1 3 2 -1 -1 -1 -1 -1";
}

std::string ingest_request(const std::string& line) {
  return "{\"op\":\"ingest\",\"line\":\"" + json_escape(line) + "\"}";
}

/// Feed `lines` through a session and return its final baseline hash,
/// asserting every line was accepted.
std::uint64_t session_hash_after(const std::vector<std::string>& lines,
                                 Seconds snapshot_interval,
                                 std::size_t* rewinds_out = nullptr) {
  SessionConfig cfg;
  cfg.site = cluster::Site::kRoss;
  cfg.snapshot_interval = snapshot_interval;
  Session session(cfg);
  for (const auto& l : lines) {
    const std::string reply = session.handle_line(ingest_request(l));
    EXPECT_NE(reply.find("\"accepted\":true"), std::string::npos) << reply;
  }
  if (rewinds_out != nullptr) *rewinds_out = session.rewinds();
  // The oracle must stand at the same clock as the live baseline.
  TailRun offline(TailConfig{cluster::Site::kRoss, std::nullopt});
  std::size_t id = 0;
  for (const auto& l : lines) {
    const workload::SwfLineOutcome out = workload::parse_swf_line(l);
    EXPECT_EQ(out.status, workload::SwfLineOutcome::Status::kJob);
    workload::Job j = out.job;
    j.id = static_cast<workload::JobId>(id++);
    offline.submit(j);
  }
  offline.run_until(session.frontier() - 1);
  EXPECT_EQ(session.baseline_hash(), offline.state_hash());
  return session.baseline_hash();
}

/// A 30-line in-order tail, then one straggler inserted at `straggler_at`
/// — an out-of-order line whose submit time sits that far into history.
std::vector<std::string> tail_with_straggler(SimTime straggler_at) {
  std::vector<std::string> lines;
  for (int i = 0; i < 30; ++i) {
    lines.push_back(
        swf_line(100 + 120 * i, 300 + 50 * (i % 6), 16 + 16 * (i % 4), 900));
  }
  lines.push_back(swf_line(straggler_at, 400, 64, 800));
  return lines;
}

TEST(StalenessDifferential, SessionRecoversFromInvalidationAtSeveralDepths) {
  // Straggler depths: near time zero (virgin-snapshot rewind), early,
  // middle, and just behind the frontier (newest-snapshot rewind).
  for (const SimTime depth : {SimTime{0}, SimTime{450}, SimTime{1700},
                              SimTime{3400}}) {
    SCOPED_TRACE("straggler at " + std::to_string(depth));
    std::size_t rewinds = 0;
    session_hash_after(tail_with_straggler(depth), /*snapshot_interval=*/700,
                       &rewinds);
    EXPECT_EQ(rewinds, 1u);
  }
}

TEST(StalenessDifferential, RepeatedInvalidationsStillConverge) {
  // Interleave three stragglers at different depths in one session: each
  // rewind replays a tail that itself contains earlier stragglers.
  std::vector<std::string> lines;
  for (int i = 0; i < 30; ++i) {
    lines.push_back(
        swf_line(100 + 120 * i, 300 + 50 * (i % 6), 16 + 16 * (i % 4), 900));
    if (i == 9) lines.push_back(swf_line(200, 350, 32, 700));
    if (i == 19) lines.push_back(swf_line(1500, 500, 48, 1000));
    if (i == 29) lines.push_back(swf_line(50, 250, 8, 500));
  }
  std::size_t rewinds = 0;
  session_hash_after(lines, /*snapshot_interval=*/600, &rewinds);
  EXPECT_EQ(rewinds, 3u);
}

TEST(StalenessDifferential, SnapshotIntervalDoesNotChangeTheAnswer) {
  // The snapshot cadence bounds rewind cost; it must never change state.
  const auto lines = tail_with_straggler(1234);
  const std::uint64_t coarse = session_hash_after(lines, 5000);
  const std::uint64_t fine = session_hash_after(lines, 250);
  EXPECT_EQ(coarse, fine);
}

TEST(StalenessDifferential, SimRunChainRewindMatchesUninterrupted) {
  core::Scenario scenario;
  scenario.site = cluster::Site::kRoss;
  scenario.project = core::ProjectSpec::continual_stream(
      32, 458, cluster::site_span(cluster::Site::kRoss));
  const std::uint64_t scratch =
      grid::hash_run(core::run_scenario(scenario));

  const SimTime span = cluster::site_span(scenario.site);
  for (const double frac : {0.2, 0.7}) {
    SCOPED_TRACE("rewind fraction " + std::to_string(frac));
    SnapshotChain<core::SimRun> chain(
        std::make_unique<core::SimRun>(scenario), span / 6);
    chain.advance_to(span * 3 / 4);
    chain.rewind_to(static_cast<SimTime>(static_cast<double>(span) * frac));
    EXPECT_GE(chain.rewinds(), 1u);
    chain.advance_to(span * 7 / 8);
    EXPECT_EQ(grid::hash_run(chain.live().finish()), scratch);
  }
}

TEST(StalenessDifferential, FleetRunChainRewindMatchesUninterrupted) {
  const auto make_fleet = [] {
    std::vector<grid::MachineSetup> setups;
    setups.push_back(grid::site_machine_setup(cluster::Site::kRoss));
    auto projects = grid::sweep_projects(2, 10, 1436, 0.0, 42);
    grid::FleetConfig cfg;
    cfg.threads = 1;
    return std::make_unique<grid::FleetRun>(std::move(setups),
                                            std::move(projects), cfg);
  };

  const grid::FleetResult scratch = make_fleet()->finish();

  const SimTime span = cluster::site_span(cluster::Site::kRoss);
  SnapshotChain<grid::FleetRun> chain(make_fleet(), span / 5);
  chain.advance_to(span / 2);
  chain.rewind_to(span / 4);
  EXPECT_GE(chain.rewinds(), 1u);
  chain.advance_to(span * 2 / 3);
  const grid::FleetResult rewound = chain.live().finish();
  EXPECT_EQ(rewound.hash, scratch.hash);
  EXPECT_EQ(rewound.sim_end, scratch.sim_end);
}

}  // namespace
}  // namespace istc::service
