#include "service/tail_run.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "service/baseline.hpp"

namespace istc::service {
namespace {

workload::Job make_job(workload::JobId id, SimTime submit, int cpus,
                       Seconds runtime) {
  workload::Job j;
  j.id = id;
  j.klass = workload::JobClass::kNative;
  j.user = static_cast<workload::UserId>(1 + id % 7);
  j.group = 1;
  j.cpus = cpus;
  j.submit = submit;
  j.runtime = runtime;
  j.estimate = runtime * 2;
  return j;
}

std::vector<workload::Job> sample_tail() {
  std::vector<workload::Job> jobs;
  for (workload::JobId i = 0; i < 40; ++i) {
    jobs.push_back(make_job(i, 100 + 70 * static_cast<SimTime>(i),
                            8 + static_cast<int>(i % 5) * 16,
                            300 + 40 * static_cast<Seconds>(i % 11)));
  }
  return jobs;
}

TEST(TailRun, ForkReproducesSourceBitForBit) {
  TailRun a(TailConfig{cluster::Site::kRoss, std::nullopt});
  for (const auto& j : sample_tail()) a.submit(j);
  a.run_until(1500);

  auto b = a.fork();
  EXPECT_EQ(a.now(), b->now());
  EXPECT_EQ(a.state_hash(), b->state_hash());

  // Advance both sides independently past every event: identical state.
  a.run_until(kTimeInfinity / 2);
  b->run_until(kTimeInfinity / 2);
  EXPECT_EQ(a.state_hash(), b->state_hash());
}

TEST(TailRun, ForkMatchesScratchReplay) {
  const auto tail = sample_tail();

  TailRun live(TailConfig{cluster::Site::kRoss, std::nullopt});
  for (const auto& j : tail) live.submit(j);
  live.run_until(900);
  auto fork = live.fork();
  fork->run_until(5000);

  TailRun scratch(TailConfig{cluster::Site::kRoss, std::nullopt});
  for (const auto& j : tail) scratch.submit(j);
  scratch.run_until(5000);

  EXPECT_EQ(fork->state_hash(), scratch.state_hash());
}

TEST(TailRun, StateHashDistinguishesTails) {
  TailRun a(TailConfig{cluster::Site::kRoss, std::nullopt});
  TailRun b(TailConfig{cluster::Site::kRoss, std::nullopt});
  auto tail = sample_tail();
  for (const auto& j : tail) a.submit(j);
  tail[5].cpus += 16;  // one job wider
  for (const auto& j : tail) b.submit(j);
  a.run_until(10000);
  b.run_until(10000);
  EXPECT_NE(a.state_hash(), b.state_hash());
}

TEST(TailRun, StreamForkDrainsOnceStopped) {
  TailConfig cfg{cluster::Site::kRoss,
                 core::ProjectSpec::continual_stream(8, 120, kTimeInfinity)};
  TailRun live(cfg);
  for (const auto& j : sample_tail()) live.submit(j);
  live.run_until(2000);

  auto query = live.fork();
  ASSERT_NE(query->driver(), nullptr);
  query->driver()->set_stop_time(query->now() + 4000);
  const sched::RunResult result = query->finish();

  std::size_t interstitial = 0;
  for (const auto& r : result.records) {
    if (r.job.id >= kStreamIdBase && r.job.id < kSpeculativeIdBase) {
      ++interstitial;
      EXPECT_TRUE(r.job.interstitial());
    }
  }
  EXPECT_GT(interstitial, 0u);
  EXPECT_EQ(result.records.size(), 40u + interstitial);
}

TEST(TailRun, AddStreamEvaluatesSpeculativeProject) {
  TailRun live(TailConfig{cluster::Site::kRoss, std::nullopt});
  for (const auto& j : sample_tail()) live.submit(j);
  live.run_until(1000);

  auto query = live.fork();
  core::ProjectSpec spec = core::ProjectSpec::paper(10, 8, 120);
  spec.start_time = query->now();
  spec.stop_time = query->now() + 50000;
  query->add_stream(spec, kSpeculativeIdBase);
  const sched::RunResult result = query->finish();

  std::size_t speculative = 0;
  for (const auto& r : result.records) {
    if (r.job.id >= kSpeculativeIdBase) ++speculative;
  }
  EXPECT_EQ(speculative, 10u);
}

TEST(SnapshotChain, TakesSnapshotsAtCadence) {
  auto initial =
      std::make_unique<TailRun>(TailConfig{cluster::Site::kRoss, std::nullopt});
  SnapshotChain<TailRun> chain(std::move(initial), 1000);
  for (const auto& j : sample_tail()) chain.live().submit(j);
  chain.note_submitted(40);
  EXPECT_EQ(chain.snapshot_count(), 1u);  // the virgin time-zero fork
  chain.advance_to(3500);
  // Cadence marks at 1000, 2000, 3000 crossed.
  EXPECT_EQ(chain.snapshot_count(), 4u);
  EXPECT_EQ(chain.live_seq(), 40u);
}

TEST(SnapshotChain, RewindDiscardsNewerSnapshots) {
  auto initial =
      std::make_unique<TailRun>(TailConfig{cluster::Site::kRoss, std::nullopt});
  SnapshotChain<TailRun> chain(std::move(initial), 1000);
  for (const auto& j : sample_tail()) chain.live().submit(j);
  chain.note_submitted(40);
  chain.advance_to(3500);

  const std::size_t seq = chain.rewind_to(2100);
  EXPECT_EQ(seq, 40u);
  // Snapshots at marks >= 2100 dropped; virgin + 1000 + 2000 survive.
  EXPECT_EQ(chain.snapshot_count(), 3u);
  EXPECT_LT(chain.live().now(), 2100);
  EXPECT_EQ(chain.rewinds(), 1u);
}

TEST(SnapshotChain, RewindToTimeZeroUsesVirginSnapshot) {
  auto initial =
      std::make_unique<TailRun>(TailConfig{cluster::Site::kRoss, std::nullopt});
  SnapshotChain<TailRun> chain(std::move(initial), 500);
  for (const auto& j : sample_tail()) chain.live().submit(j);
  chain.note_submitted(40);
  chain.advance_to(3000);

  // A submit-time-0 line can only rebase on the virgin snapshot.
  const std::size_t seq = chain.rewind_to(0);
  EXPECT_EQ(seq, 0u);
  EXPECT_EQ(chain.snapshot_count(), 1u);
  EXPECT_EQ(chain.live().now(), 0);
}

TEST(SnapshotChain, RewindReplayMatchesUninterrupted) {
  const auto tail = sample_tail();

  auto initial =
      std::make_unique<TailRun>(TailConfig{cluster::Site::kRoss, std::nullopt});
  SnapshotChain<TailRun> chain(std::move(initial), 800);
  for (const auto& j : tail) chain.live().submit(j);
  chain.note_submitted(tail.size());
  chain.advance_to(2500);
  const std::size_t seq = chain.rewind_to(1300);
  for (std::size_t i = seq; i < tail.size(); ++i) {
    chain.live().submit(tail[i]);
  }
  chain.note_submitted(tail.size());
  chain.advance_to(2500);

  TailRun straight(TailConfig{cluster::Site::kRoss, std::nullopt});
  for (const auto& j : tail) straight.submit(j);
  straight.run_until(2500);

  EXPECT_EQ(chain.live().state_hash(), straight.state_hash());
}

}  // namespace
}  // namespace istc::service
