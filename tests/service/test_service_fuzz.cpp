#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/tail_run.hpp"
#include "workload/swf.hpp"

/// \file test_service_fuzz.cpp
/// Randomized query/ingest interleavings against the daemon brain: valid
/// tail lines (in- and out-of-order), malformed JSON, truncated SWF
/// records, oversized job shapes, and what-if queries, all shuffled by a
/// seeded RNG.  Invariants: every reply is one line of valid protocol
/// JSON (errors are structured, the process never dies), and afterwards
/// the baseline hash equals an oracle that replays only the accepted
/// lines into a fresh run.  CI runs this under ASan/UBSan, where any
/// out-of-bounds parse or lifetime bug in the fork/rewind machinery trips.

namespace istc::service {
namespace {

constexpr int kRossCpus = 1436;

std::string swf_line(SimTime submit, Seconds runtime, int cpus,
                     Seconds estimate) {
  return "1 " + std::to_string(submit) + " 0 " + std::to_string(runtime) +
         " " + std::to_string(cpus) + " -1 -1 " + std::to_string(cpus) + " " +
         std::to_string(estimate) + " -1 1 3 2 -1 -1 -1 -1 -1";
}

std::string ingest_request(const std::string& line) {
  return "{\"op\":\"ingest\",\"line\":\"" + json_escape(line) + "\"}";
}

/// One fuzzing campaign: `ops` random requests from seed, then the
/// oracle comparison.
void run_campaign(std::uint64_t seed, int ops) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  std::mt19937_64 rng(seed);
  const auto pick = [&rng](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };

  SessionConfig cfg;
  cfg.site = cluster::Site::kRoss;
  cfg.snapshot_interval = 3000;
  Session session(cfg);

  std::vector<workload::Job> oracle;
  SimTime max_submit = 0;

  for (int i = 0; i < ops; ++i) {
    std::string request;
    std::string line;  // non-empty when this op is an ingest
    switch (pick(0, 9)) {
      case 0:
      case 1:
      case 2: {  // in-order tail line
        const SimTime submit = max_submit + pick(1, 400);
        line = swf_line(submit, pick(60, 900), static_cast<int>(pick(1, 256)),
                        pick(60, 1800));
        request = ingest_request(line);
        break;
      }
      case 3: {  // out-of-order tail line: forces rewind + replay
        line = swf_line(pick(0, max_submit), pick(60, 900),
                        static_cast<int>(pick(1, 256)), pick(60, 1800));
        request = ingest_request(line);
        break;
      }
      case 4: {  // mid-record truncation
        const std::string full =
            swf_line(pick(0, max_submit + 400), pick(60, 900),
                     static_cast<int>(pick(1, 256)), pick(60, 1800));
        line = full.substr(0, static_cast<std::size_t>(
                                  pick(1, static_cast<std::int64_t>(
                                              full.size() - 1))));
        request = ingest_request(line);
        break;
      }
      case 5: {  // oversized / degenerate job shapes
        static const char* kShapes[] = {
            "1 100 0 300 1000000 -1 -1 1000000 600 -1 1 1 1",  // too wide
            "1 100 0 -5 8 -1 -1 8 600 -1 1 1 1",               // negative run
            "1 -9 0 300 8 -1 -1 8 600 -1 1 1 1",               // negative submit
            "1 100 0 300 0 -1 -1 0 600 -1 1 1 1",              // zero cpus
        };
        line = kShapes[pick(0, 3)];
        request = ingest_request(line);
        break;
      }
      case 6: {  // malformed JSON / garbage requests
        static const char* kGarbage[] = {
            "{\"op\":\"whatif\"",
            "[1,2,3]",
            "\"just a string\"",
            "{\"op\":42}",
            "{\"op\":\"whatif\",\"jobs\":-1}",
            "{\"op\":\"whatif\",\"points_s\":\"zero\"}",
            "lorem ipsum { ] ",
            "",
        };
        request = kGarbage[pick(0, 7)];
        break;
      }
      case 7:
      case 8: {  // well-formed what-if query
        request = "{\"op\":\"whatif\",\"jobs\":" + std::to_string(pick(1, 4)) +
                  ",\"cpus\":" + std::to_string(pick(1, 64)) +
                  ",\"runtime_s\":" + std::to_string(pick(60, 600)) +
                  ",\"horizon_s\":" + std::to_string(pick(1000, 8000)) +
                  (pick(0, 1) ? std::string(",\"mode\":\"scratch\"") : "") +
                  "}";
        break;
      }
      default:
        // Telemetry verbs: never byte-compared, but they must always
        // parse and never disturb the session's deterministic state.
        request = pick(0, 1) ? "{\"op\":\"status\"}" : "{\"op\":\"stats\"}";
        break;
    }

    const std::string reply = session.handle_line(request);

    // Invariant: every reply parses and self-identifies, even for garbage.
    const ParseResult parsed = parse(reply);
    ASSERT_TRUE(parsed.ok()) << "request: " << request << "\nreply: " << reply;
    ASSERT_EQ(parsed.value.str_or("schema", ""), kWhatIfSchema) << reply;

    // Mirror accepted ingests into the oracle using the same parser the
    // session uses — the valid-subset replay.
    if (!line.empty() && parsed.value.bool_or("accepted", false)) {
      const workload::SwfLineOutcome out = workload::parse_swf_line(line);
      ASSERT_EQ(out.status, workload::SwfLineOutcome::Status::kJob) << line;
      ASSERT_LE(out.job.cpus, kRossCpus);
      workload::Job j = out.job;
      j.id = static_cast<workload::JobId>(oracle.size());
      j.klass = workload::JobClass::kNative;
      oracle.push_back(j);
      max_submit = std::max(max_submit, j.submit);
    }
  }

  ASSERT_EQ(session.accepted_jobs(), oracle.size());

  // Oracle: replay the valid subset, in ingest order, into a fresh run
  // advanced offline to the live baseline's clock.
  TailRun offline(TailConfig{cluster::Site::kRoss, std::nullopt});
  for (const auto& j : oracle) offline.submit(j);
  offline.run_until(session.frontier() - 1);
  EXPECT_EQ(session.baseline_hash(), offline.state_hash())
      << "accepted " << oracle.size() << " jobs, " << session.rewinds()
      << " rewinds";
}

TEST(ServiceFuzz, RandomInterleavingsKeepTheDaemonSaneSeed1) {
  run_campaign(0xA11CE5EEDull, 220);
}

TEST(ServiceFuzz, RandomInterleavingsKeepTheDaemonSaneSeed2) {
  run_campaign(0xBEEFCAFE42ull, 220);
}

TEST(ServiceFuzz, RandomInterleavingsKeepTheDaemonSaneSeed3) {
  run_campaign(0x5CA1AB1E99ull, 220);
}

}  // namespace
}  // namespace istc::service
