#include "cluster/machine.hpp"

#include <gtest/gtest.h>

namespace istc::cluster {
namespace {

MachineSpec tiny() {
  return {.name = "tiny", .site = "test", .queue_system = "none",
          .cpus = 100, .clock_ghz = 0.5};
}

TEST(MachineSpec, TeraCycles) {
  EXPECT_DOUBLE_EQ(tiny().tera_cycles(), 100 * 0.5 * 1e9 / 1e12);
  // Table 1 checks.
  const MachineSpec bm{.name = "bm", .site = "", .queue_system = "",
                       .cpus = 4662, .clock_ghz = 0.262};
  EXPECT_NEAR(bm.tera_cycles(), 1.221, 0.001);
}

TEST(MachineSpec, RuntimeForRoundsUpAndFloorsAtOne) {
  const auto m = tiny();  // 0.5 GHz
  EXPECT_EQ(m.runtime_for(1e9), 2);     // 1 s @ 1 GHz -> 2 s here
  EXPECT_EQ(m.runtime_for(0.4e9), 1);   // 0.8 s -> ceil 1
  EXPECT_EQ(m.runtime_for(1), 1);       // never zero
  EXPECT_EQ(m.runtime_for(0.75e9), 2);  // 1.5 s -> ceil 2
}

TEST(MachineSpec, CyclesInInvertsRuntime) {
  const auto m = tiny();
  EXPECT_DOUBLE_EQ(m.cycles_in(10), 10 * 0.5e9);
}

TEST(Machine, AllocationLifecycle) {
  Machine m(tiny());
  EXPECT_EQ(m.total_cpus(), 100);
  EXPECT_EQ(m.free_cpus(), 100);
  EXPECT_EQ(m.in_use(), 0);
  m.allocate(30);
  EXPECT_EQ(m.free_cpus(), 70);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.3);
  m.allocate(70);
  EXPECT_EQ(m.free_cpus(), 0);
  m.release(100);
  EXPECT_EQ(m.free_cpus(), 100);
}

TEST(Machine, CanStartChecksSpace) {
  Machine m(tiny());
  m.allocate(95);
  EXPECT_TRUE(m.can_start(5, 0, 100));
  EXPECT_FALSE(m.can_start(6, 0, 100));
}

TEST(Machine, CanStartChecksDowntime) {
  Machine m(tiny(), DowntimeCalendar({{1000, 2000}}));
  EXPECT_TRUE(m.can_start(1, 0, 1000));    // ends exactly at window start
  EXPECT_FALSE(m.can_start(1, 0, 1001));   // crosses
  EXPECT_FALSE(m.can_start(1, 1500, 10));  // inside window
  EXPECT_TRUE(m.can_start(1, 2000, 10));
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(MachineDeath, OverAllocationAborts) {
  Machine m(tiny());
  m.allocate(100);
  EXPECT_DEATH(m.allocate(1), "precondition");
}

TEST(MachineDeath, OverReleaseAborts) {
  Machine m(tiny());
  m.allocate(10);
  EXPECT_DEATH(m.release(11), "precondition");
}
#endif

}  // namespace
}  // namespace istc::cluster
