#include "cluster/downtime.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "util/rng.hpp"

// Property test: DowntimeCalendar against a brute-force per-second oracle.
//
// The calendar answers interval queries with binary search over sorted
// windows; the oracle materializes a boolean "down" bit per second and
// answers every query by linear scan.  Any disagreement — especially at
// the half-open boundaries (window start inclusive, end exclusive) — is a
// calendar bug.  Calendars are generated randomly (seeded), including
// back-to-back windows with a one-second gap and windows touching t = 0.

namespace istc::cluster {
namespace {

/// Per-second reference model over [0, horizon).  Queries beyond the
/// horizon are the caller's responsibility to avoid.
struct Oracle {
  std::vector<bool> down;

  explicit Oracle(const std::vector<DowntimeWindow>& windows,
                  SimTime horizon)
      : down(static_cast<std::size_t>(horizon), false) {
    for (const auto& w : windows) {
      for (SimTime t = w.start; t < w.end; ++t) {
        down[static_cast<std::size_t>(t)] = true;
      }
    }
  }

  bool is_down(SimTime t) const {
    return down[static_cast<std::size_t>(t)];
  }

  /// Start of the first window whose start is >= t: the first down second
  /// at or after t that is not a continuation of an earlier window.
  SimTime next_down_start(SimTime t) const {
    // A window already in progress at t started before t and does not
    // qualify; only a down second preceded by an up second is a start.
    for (SimTime s = t; s < static_cast<SimTime>(down.size()); ++s) {
      if (is_down(s) && (s == 0 || !is_down(s - 1))) return s;
    }
    return kTimeInfinity;
  }

  SimTime up_again_at(SimTime t) const {
    SimTime u = t;
    while (u < static_cast<SimTime>(down.size()) && is_down(u)) ++u;
    return u;
  }

  bool can_run(SimTime t, Seconds dur) const {
    for (SimTime x = t; x < t + dur; ++x) {
      if (x < static_cast<SimTime>(down.size()) && is_down(x)) return false;
    }
    return true;
  }

  Seconds down_seconds(SimTime lo, SimTime hi) const {
    Seconds n = 0;
    for (SimTime x = lo; x < hi && x < static_cast<SimTime>(down.size());
         ++x) {
      if (is_down(x)) ++n;
    }
    return n;
  }
};

std::vector<DowntimeWindow> random_windows(Rng& rng, SimTime horizon) {
  std::vector<DowntimeWindow> ws;
  // March forward leaving random gaps so windows never overlap; allow a
  // gap of exactly one second (the tightest legal spacing) and a window
  // starting at 0.
  SimTime t = rng.bernoulli(0.2) ? 0 : rng.range(1, 40);
  while (t < horizon - 2) {
    const Seconds dur = rng.range(1, 60);
    const SimTime end = std::min<SimTime>(t + dur, horizon - 1);
    ws.push_back({t, end});
    t = end + rng.range(1, 50);
  }
  return ws;
}

TEST(DowntimeProperty, MatchesBruteForceOracle) {
  const bool quick = std::getenv("ISTC_QUICK") != nullptr;
  const int kCalendars = quick ? 8 : 40;
  const SimTime kHorizon = 2000;
  const Rng root(0xD07);  // fixed seed
  for (int c = 0; c < kCalendars; ++c) {
    Rng rng = root.fork(static_cast<std::uint64_t>(c));
    const auto windows = random_windows(rng, kHorizon);
    const DowntimeCalendar cal(windows);
    const Oracle oracle(windows, kHorizon);

    // Query points: every window's start, end-1, and end (the half-open
    // boundary trio), plus a sweep of random interior points.
    std::vector<SimTime> points = {0, 1, kHorizon - 2};
    for (const auto& w : windows) {
      points.push_back(w.start);
      if (w.start > 0) points.push_back(w.start - 1);
      points.push_back(w.end - 1);
      points.push_back(w.end);
    }
    for (int i = 0; i < (quick ? 50 : 300); ++i) {
      points.push_back(rng.range(0, kHorizon - 2));
    }

    for (const SimTime t : points) {
      ASSERT_EQ(cal.is_down(t), oracle.is_down(t))
          << "is_down(" << t << ") calendar " << c;
      ASSERT_EQ(cal.up_again_at(t), oracle.up_again_at(t))
          << "up_again_at(" << t << ") calendar " << c;
      ASSERT_EQ(cal.next_down_start(t), oracle.next_down_start(t))
          << "next_down_start(" << t << ") calendar " << c;
      const Seconds dur = rng.range(1, 120);
      if (t + dur < kHorizon) {
        ASSERT_EQ(cal.can_run(t, dur), oracle.can_run(t, dur))
            << "can_run(" << t << ", " << dur << ") calendar " << c;
      }
      const SimTime hi = t + rng.range(0, kHorizon - 1 - t);
      ASSERT_EQ(cal.down_seconds(t, hi), oracle.down_seconds(t, hi))
          << "down_seconds(" << t << ", " << hi << ") calendar " << c;
    }
  }
}

// An empty calendar and a single-window calendar hit the binary-search
// edge cases (lower_bound returning begin/end) directly.
TEST(DowntimeProperty, DegenerateCalendarsMatchOracle) {
  for (const auto& windows : std::vector<std::vector<DowntimeWindow>>{
           {}, {{0, 1}}, {{5, 6}}, {{0, 100}}, {{99, 100}}}) {
    const DowntimeCalendar cal(windows);
    const Oracle oracle(windows, 100);
    for (SimTime t = 0; t < 100; ++t) {
      ASSERT_EQ(cal.is_down(t), oracle.is_down(t)) << t;
      ASSERT_EQ(cal.up_again_at(t), oracle.up_again_at(t)) << t;
      ASSERT_EQ(cal.down_seconds(0, t), oracle.down_seconds(0, t)) << t;
      ASSERT_EQ(cal.can_run(t, 3), oracle.can_run(t, 3)) << t;
    }
  }
}

}  // namespace
}  // namespace istc::cluster
