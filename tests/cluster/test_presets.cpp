#include "cluster/presets.hpp"

#include <gtest/gtest.h>

namespace istc::cluster {
namespace {

// The presets must mirror the paper's Table 1 exactly.
TEST(Presets, Table1Ross) {
  const auto m = machine_spec(Site::kRoss);
  EXPECT_EQ(m.name, "Ross");
  EXPECT_EQ(m.site, "Sandia");
  EXPECT_EQ(m.queue_system, "PBS");
  EXPECT_EQ(m.cpus, 1436);
  EXPECT_DOUBLE_EQ(m.clock_ghz, 0.588);
  EXPECT_NEAR(m.tera_cycles(), 0.844, 0.001);
  const auto t = site_targets(Site::kRoss);
  EXPECT_DOUBLE_EQ(t.utilization, 0.631);
  EXPECT_DOUBLE_EQ(t.span_days, 40.7);
  EXPECT_EQ(t.jobs, 4423);
}

TEST(Presets, Table1BlueMountain) {
  const auto m = machine_spec(Site::kBlueMountain);
  EXPECT_EQ(m.queue_system, "LSF");
  EXPECT_EQ(m.cpus, 4662);
  EXPECT_DOUBLE_EQ(m.clock_ghz, 0.262);
  EXPECT_NEAR(m.tera_cycles(), 1.221, 0.001);
  const auto t = site_targets(Site::kBlueMountain);
  EXPECT_DOUBLE_EQ(t.utilization, 0.790);
  EXPECT_DOUBLE_EQ(t.span_days, 84.2);
  EXPECT_EQ(t.jobs, 7763);
}

TEST(Presets, Table1BluePacific) {
  const auto m = machine_spec(Site::kBluePacific);
  EXPECT_EQ(m.queue_system, "DPCS");
  EXPECT_EQ(m.cpus, 926);
  EXPECT_DOUBLE_EQ(m.clock_ghz, 0.369);
  EXPECT_NEAR(m.tera_cycles(), 0.342, 0.001);
  const auto t = site_targets(Site::kBluePacific);
  EXPECT_DOUBLE_EQ(t.utilization, 0.907);
  EXPECT_DOUBLE_EQ(t.span_days, 63.0);
  EXPECT_EQ(t.jobs, 12761);
}

TEST(Presets, SiteNames) {
  EXPECT_STREQ(site_name(Site::kRoss), "Ross");
  EXPECT_STREQ(site_name(Site::kBlueMountain), "Blue Mountain");
  EXPECT_STREQ(site_name(Site::kBluePacific), "Blue Pacific");
}

TEST(Presets, AllSitesEnumerated) {
  EXPECT_EQ(all_sites().size(), 3u);
}

TEST(Presets, SpanMatchesTargets) {
  for (auto site : all_sites()) {
    EXPECT_EQ(site_span(site),
              static_cast<SimTime>(site_targets(site).span_days * 86400.0));
  }
}

TEST(Presets, DowntimeDeterministicAndWithinSpan) {
  for (auto site : all_sites()) {
    const auto a = site_downtime(site);
    const auto b = site_downtime(site);
    ASSERT_EQ(a.windows().size(), b.windows().size());
    EXPECT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.windows().size(); ++i) {
      EXPECT_EQ(a.windows()[i].start, b.windows()[i].start);
      EXPECT_LT(a.windows()[i].end, site_span(site));
    }
  }
}

TEST(Presets, DowntimeFractionModest) {
  // Outages should depress utilization by a few percent, not dominate it.
  for (auto site : all_sites()) {
    const auto cal = site_downtime(site);
    const double frac =
        static_cast<double>(cal.down_seconds(0, site_span(site))) /
        static_cast<double>(site_span(site));
    EXPECT_GT(frac, 0.01);
    EXPECT_LT(frac, 0.08);
  }
}

TEST(Presets, MakeMachineBundlesDowntime) {
  const auto m = make_machine(Site::kRoss);
  EXPECT_EQ(m.total_cpus(), 1436);
  EXPECT_FALSE(m.downtime().empty());
}

}  // namespace
}  // namespace istc::cluster
