#include "cluster/downtime.hpp"

#include <gtest/gtest.h>

namespace istc::cluster {
namespace {

DowntimeCalendar two_windows() {
  return DowntimeCalendar({{100, 200}, {500, 550}});
}

TEST(Downtime, EmptyCalendarAlwaysUp) {
  DowntimeCalendar cal;
  EXPECT_TRUE(cal.empty());
  EXPECT_FALSE(cal.is_down(0));
  EXPECT_FALSE(cal.is_down(1000000));
  EXPECT_EQ(cal.next_down_start(0), kTimeInfinity);
  EXPECT_TRUE(cal.can_run(0, days(365)));
  EXPECT_EQ(cal.down_seconds(0, 1000), 0);
}

TEST(Downtime, IsDownBoundaries) {
  const auto cal = two_windows();
  EXPECT_FALSE(cal.is_down(99));
  EXPECT_TRUE(cal.is_down(100));   // inclusive start
  EXPECT_TRUE(cal.is_down(199));
  EXPECT_FALSE(cal.is_down(200));  // exclusive end
  EXPECT_TRUE(cal.is_down(520));
}

TEST(Downtime, NextDownStart) {
  const auto cal = two_windows();
  EXPECT_EQ(cal.next_down_start(0), 100);
  EXPECT_EQ(cal.next_down_start(100), 100);
  EXPECT_EQ(cal.next_down_start(101), 500);
  EXPECT_EQ(cal.next_down_start(550), kTimeInfinity);
}

TEST(Downtime, UpAgainAt) {
  const auto cal = two_windows();
  EXPECT_EQ(cal.up_again_at(50), 50);     // already up
  EXPECT_EQ(cal.up_again_at(100), 200);
  EXPECT_EQ(cal.up_again_at(150), 200);
  EXPECT_EQ(cal.up_again_at(200), 200);
  EXPECT_EQ(cal.up_again_at(549), 550);
}

TEST(Downtime, CanRun) {
  const auto cal = two_windows();
  EXPECT_TRUE(cal.can_run(0, 100));    // [0,100) touches nothing
  EXPECT_FALSE(cal.can_run(0, 101));   // crosses into window
  EXPECT_FALSE(cal.can_run(150, 1));   // starts inside window
  EXPECT_TRUE(cal.can_run(200, 300));  // [200,500) exactly fits the gap
  EXPECT_FALSE(cal.can_run(200, 301));
  EXPECT_TRUE(cal.can_run(550, kTimeInfinity / 8));  // after last window
}

TEST(Downtime, DownSeconds) {
  const auto cal = two_windows();
  EXPECT_EQ(cal.down_seconds(0, 1000), 150);
  EXPECT_EQ(cal.down_seconds(150, 520), 70);  // 50 of first + 20 of second
  EXPECT_EQ(cal.down_seconds(200, 500), 0);
}

TEST(Downtime, WindowsSortedOnConstruction) {
  DowntimeCalendar cal({{500, 550}, {100, 200}});
  EXPECT_EQ(cal.windows().front().start, 100);
  EXPECT_EQ(cal.next_down_start(0), 100);
}

TEST(Downtime, PeriodicGeneratorProperties) {
  Rng rng(1);
  const SimTime span = days(60);
  const auto cal =
      DowntimeCalendar::periodic(days(10), hours(10), span, rng, 0.1);
  EXPECT_FALSE(cal.empty());
  EXPECT_GE(cal.windows().size(), 4u);
  for (std::size_t i = 0; i < cal.windows().size(); ++i) {
    const auto& w = cal.windows()[i];
    EXPECT_EQ(w.duration(), hours(10));
    EXPECT_GE(w.start, 0);
    EXPECT_LT(w.end, span);
    if (i > 0) EXPECT_GT(w.start, cal.windows()[i - 1].end);
  }
}

TEST(Downtime, PeriodicDeterministicPerSeed) {
  Rng a(7), b(7);
  const auto c1 = DowntimeCalendar::periodic(days(7), hours(8), days(40), a);
  const auto c2 = DowntimeCalendar::periodic(days(7), hours(8), days(40), b);
  ASSERT_EQ(c1.windows().size(), c2.windows().size());
  for (std::size_t i = 0; i < c1.windows().size(); ++i) {
    EXPECT_EQ(c1.windows()[i].start, c2.windows()[i].start);
    EXPECT_EQ(c1.windows()[i].end, c2.windows()[i].end);
  }
}

// Property: for any time t, exactly one of is_down / can_run(t, 1) given
// the next window is not immediately adjacent.
class DowntimeSweep : public ::testing::TestWithParam<SimTime> {};

TEST_P(DowntimeSweep, DownXorRunnable) {
  const auto cal = two_windows();
  const SimTime t = GetParam();
  if (cal.is_down(t)) {
    EXPECT_FALSE(cal.can_run(t, 1));
  } else if (t + 1 <= cal.next_down_start(t)) {
    EXPECT_TRUE(cal.can_run(t, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Times, DowntimeSweep,
                         ::testing::Values(0, 99, 100, 150, 199, 200, 499,
                                           500, 549, 550, 10000));

#ifdef GTEST_HAS_DEATH_TEST
TEST(DowntimeDeath, OverlappingWindowsRejected) {
  EXPECT_DEATH(DowntimeCalendar({{100, 200}, {150, 250}}), "precondition");
}

TEST(DowntimeDeath, EmptyWindowRejected) {
  EXPECT_DEATH(DowntimeCalendar({{100, 100}}), "precondition");
}
#endif

}  // namespace
}  // namespace istc::cluster
