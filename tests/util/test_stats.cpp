#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace istc {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownSample) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, BasicStats) {
  const Summary s({3.0, 1.0, 2.0, 4.0, 5.0});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, EvenCountMedianInterpolates) {
  const Summary s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Summary, Quantiles) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  const Summary s(std::move(v));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.95), 95.0);
}

TEST(Summary, MeanPmStdFormat) {
  const Summary s({1.0, 2.0, 3.0});
  EXPECT_EQ(s.mean_pm_std(1), "2.0 ± 1.0");
}

TEST(MedianOf, OddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median_of(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median_of(even), 2.5);
}

TEST(SortedQuantile, SingleElement) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(sorted_quantile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(one, 1.0), 7.0);
}

TEST(Correlation, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, y), -1.0, 1e-12);
}

TEST(Correlation, DegenerateIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{2, 5, 9};
  EXPECT_DOUBLE_EQ(correlation(x, y), 0.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{5, 7, 9, 11};  // y = 5 + 2x
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineReasonable) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 0.5 * i + ((i % 2) ? 0.2 : -0.2));
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 0.5, 0.01);
  EXPECT_NEAR(f.intercept, 3.0, 0.25);
  EXPECT_GT(f.r2, 0.99);
}

// Property: Summary mean/std agree with OnlineStats on random data.
class SummaryVsOnline : public ::testing::TestWithParam<int> {};

TEST_P(SummaryVsOnline, Agree) {
  std::vector<double> v;
  OnlineStats os;
  for (int i = 0; i < GetParam(); ++i) {
    const double x = std::cos(i * 0.7) * 100 + i;
    v.push_back(x);
    os.add(x);
  }
  const Summary s(std::move(v));
  EXPECT_NEAR(s.mean(), os.mean(), 1e-9);
  EXPECT_NEAR(s.stddev(), os.stddev(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SummaryVsOnline,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

}  // namespace
}  // namespace istc
