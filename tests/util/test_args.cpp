#include "util/args.hpp"

#include <gtest/gtest.h>

namespace istc {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"istc"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const auto a = parse({});
  EXPECT_TRUE(a.positionals().empty());
  EXPECT_EQ(a.command(), "");
  EXPECT_TRUE(a.errors().empty());
}

TEST(Args, PositionalsInOrder) {
  const auto a = parse({"plan", "extra"});
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.command(), "plan");
  EXPECT_EQ(a.positionals()[1], "extra");
}

TEST(Args, FlagWithSeparateValue) {
  const auto a = parse({"--site", "ross"});
  EXPECT_TRUE(a.has("site"));
  EXPECT_EQ(a.get_or("site", "x"), "ross");
}

TEST(Args, FlagWithEqualsValue) {
  const auto a = parse({"--cap=0.9"});
  EXPECT_EQ(a.get_or("cap", ""), "0.9");
  EXPECT_DOUBLE_EQ(a.get_num_or("cap", 0.0), 0.9);
}

TEST(Args, SwitchWithoutValue) {
  const auto a = parse({"--verbose", "--site", "ross"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose").value(), "");
  EXPECT_EQ(a.get_or("verbose", "fallback"), "fallback");
}

TEST(Args, AbsentFlag) {
  const auto a = parse({"report"});
  EXPECT_FALSE(a.has("site"));
  EXPECT_FALSE(a.get("site").has_value());
  EXPECT_EQ(a.get_or("site", "dflt"), "dflt");
  EXPECT_EQ(a.get_int_or("cpus", 7), 7);
}

TEST(Args, IntegerParsing) {
  const auto a = parse({"--cpus", "32"});
  EXPECT_EQ(a.get_int_or("cpus", 0), 32);
  EXPECT_TRUE(a.errors().empty());
}

TEST(Args, BadIntegerRecordsError) {
  const auto a = parse({"--cpus", "thirty"});
  EXPECT_EQ(a.get_int_or("cpus", 5), 5);
  ASSERT_EQ(a.errors().size(), 1u);
  EXPECT_NE(a.errors()[0].find("cpus"), std::string::npos);
}

TEST(Args, BadNumberRecordsError) {
  const auto a = parse({"--cap", "0.9x"});
  EXPECT_DOUBLE_EQ(a.get_num_or("cap", 1.0), 1.0);
  EXPECT_EQ(a.errors().size(), 1u);
}

TEST(Args, LastOccurrenceWins) {
  const auto a = parse({"--site", "ross", "--site", "bluemtn"});
  EXPECT_EQ(a.get_or("site", ""), "bluemtn");
}

TEST(Args, SingleDashRejected) {
  const auto a = parse({"-v"});
  ASSERT_EQ(a.errors().size(), 1u);
  EXPECT_NE(a.errors()[0].find("-v"), std::string::npos);
}

TEST(Args, UnconsumedFlagsDetected) {
  const auto a = parse({"--site", "ross", "--typo", "zzz"});
  EXPECT_EQ(a.get_or("site", ""), "ross");
  const auto unknown = a.unconsumed();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, MixedPositionalsAndFlags) {
  const auto a = parse({"harvest", "--cpus", "16", "tail"});
  EXPECT_EQ(a.command(), "harvest");
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[1], "tail");
  EXPECT_EQ(a.get_int_or("cpus", 0), 16);
}

TEST(Args, NegativeNumberAsValue) {
  // "-5" does not start with "--" so it is consumed as the flag's value.
  const auto a = parse({"--offset", "-5"});
  EXPECT_EQ(a.get_int_or("offset", 0), -5);
}

}  // namespace
}  // namespace istc
