#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace istc {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values from the canonical splitmix64 with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkIndependentStreams) {
  Rng root(7);
  Rng s0 = root.fork(0);
  Rng s1 = root.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += s0.next() == s1.next();
  EXPECT_LE(same, 1);
  // Forking is a pure function of parent state + stream index (fork does
  // not advance the parent, so a fresh root reproduces the same stream).
  Rng root2(7);
  Rng s0b = root2.fork(0);
  Rng s0c = root.fork(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s0c.next(), s0b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndRange) {
  Rng rng(4);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform(10.0, 20.0));
  EXPECT_NEAR(s.mean(), 15.0, 0.1);
  EXPECT_GE(s.min(), 10.0);
  EXPECT_LT(s.max(), 20.0);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, draws / 7, draws / 7 / 5);
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(50.0));
  EXPECT_NEAR(s.mean(), 50.0, 1.0);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(10);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.lognormal(3.0, 1.0));
  EXPECT_NEAR(median_of(v), std::exp(3.0), 0.5);
}

TEST(Rng, ParetoSupport) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BoundedParetoSupport) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.0, 100.0, 1.2);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, BoundedParetoSkewsLow) {
  Rng rng(13);
  int low = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    low += rng.bounded_pareto(1.0, 1024.0, 1.0) < 8.0;
  }
  // With alpha=1 most of the mass sits near the lower bound.
  EXPECT_GT(low, draws / 2);
}

TEST(DiscreteSampler, RespectsWeights) {
  const std::vector<double> w{1.0, 3.0, 6.0};
  DiscreteSampler sampler{std::span<const double>(w)};
  Rng rng(14);
  std::vector<int> counts(3, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[sampler(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(DiscreteSampler, SingleOutcome) {
  const std::vector<double> w{5.0};
  DiscreteSampler sampler{std::span<const double>(w)};
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverDrawn) {
  const std::vector<double> w{1.0, 0.0, 1.0};
  DiscreteSampler sampler{std::span<const double>(w)};
  Rng rng(16);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(sampler(rng), 1u);
}

// Property sweep: uniform() stays in range for many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformAlwaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST_P(RngSeedSweep, BelowNeverReachesBound) {
  Rng rng(GetParam() * 77 + 1);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) ASSERT_LT(rng.below(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1337, 0xdeadbeef,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace istc
