#include "util/cow_log.hpp"

#include <gtest/gtest.h>

#include <string>

namespace istc::util {
namespace {

TEST(CowLog, BehavesLikeAVectorBeforeFreezing) {
  CowLog<int> log;
  EXPECT_TRUE(log.empty());
  log.push_back(1);
  log.push_back(2);
  log.push_back(3);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 1);
  EXPECT_EQ(log[2], 3);
  EXPECT_EQ(log.back(), 3);
}

TEST(CowLog, FreezePreservesContentsAndIndices) {
  CowLog<int> log;
  for (int i = 0; i < 10; ++i) log.push_back(i);
  log.freeze();
  EXPECT_EQ(log.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)], i);
  log.push_back(10);
  EXPECT_EQ(log.size(), 11u);
  EXPECT_EQ(log[10], 10);
  EXPECT_EQ(log.back(), 10);
}

// The fork contract: after freeze + copy, each side appends privately and
// neither sees the other's tail, while the shared prefix stays put (its
// indices must remain valid — queued event args point into it).
TEST(CowLog, CopiesShareThePrefixButNotTheTail) {
  CowLog<std::string> a;
  a.push_back("shared0");
  a.push_back("shared1");
  a.freeze();
  CowLog<std::string> b = a;

  a.push_back("a-only");
  b.push_back("b-only0");
  b.push_back("b-only1");

  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(a[1], "shared1");
  EXPECT_EQ(b[1], "shared1");
  EXPECT_EQ(a[2], "a-only");
  EXPECT_EQ(b[2], "b-only0");
  EXPECT_EQ(b[3], "b-only1");
}

TEST(CowLog, RepeatedFreezesFoldTheTailIntoThePrefix) {
  CowLog<int> log;
  log.push_back(0);
  log.freeze();
  log.push_back(1);
  log.freeze();  // refreeze with a non-empty tail
  log.freeze();  // refreeze with an empty tail is a no-op
  log.push_back(2);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 0);
  EXPECT_EQ(log[1], 1);
  EXPECT_EQ(log[2], 2);
}

TEST(CowLog, TakeMaterializesEverythingAndResets) {
  CowLog<int> log;
  log.push_back(1);
  log.freeze();
  CowLog<int> fork = log;
  log.push_back(2);
  const std::vector<int> all = log.take();
  EXPECT_EQ(all, (std::vector<int>{1, 2}));
  EXPECT_TRUE(log.empty());
  // The fork's view is untouched by the source's take.
  EXPECT_EQ(fork.size(), 1u);
  EXPECT_EQ(fork[0], 1);
}

TEST(CowLog, TakeWithoutFreezeMovesTheTail) {
  CowLog<int> log;
  log.push_back(7);
  log.push_back(8);
  EXPECT_EQ(log.take(), (std::vector<int>{7, 8}));
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace istc::util
