#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace istc {
namespace {

TEST(Log10Histogram, SubSecondValuesInFirstBin) {
  Log10Histogram h(6);
  h.add(0.0);
  h.add(0.5);
  h.add(0.99);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Log10Histogram, DecadeBoundaries) {
  Log10Histogram h(6);
  h.add(1.0);     // log10 = 0 -> bin 0
  h.add(9.99);    // bin 0
  h.add(10.0);    // bin 1
  h.add(99.0);    // bin 1
  h.add(100.0);   // bin 2
  h.add(1e5);     // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(5), 1u);
}

TEST(Log10Histogram, OverflowClampsToLastBin) {
  Log10Histogram h(3);
  h.add(1e9);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Log10Histogram, Fractions) {
  Log10Histogram h(4);
  h.add(1);
  h.add(1);
  h.add(10);
  h.add(100);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
}

TEST(Log10Histogram, EmptyFractionIsZero) {
  Log10Histogram h(4);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Log10Histogram, BinLabel) {
  EXPECT_EQ(Log10Histogram::bin_label(0), "[0,1)");
  EXPECT_EQ(Log10Histogram::bin_label(3), "[3,4)");
}

TEST(Log10Histogram, AddAll) {
  Log10Histogram h(6);
  h.add_all({0.0, 5.0, 50.0, 5000.0});
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);  // 0.0 and 5.0
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(LinearHistogram, BinAssignment) {
  LinearHistogram h(0.0, 10.0, 5);  // width 2
  h.add(0.0);
  h.add(1.99);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, OutOfRangeClampsConservingTotal) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(LinearHistogram, BinEdges) {
  LinearHistogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(SurvivalCurve, BasicEvaluation) {
  SurvivalCurve c({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(c.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(1.0), 0.75);   // strictly greater than 1
  EXPECT_DOUBLE_EQ(c.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.at(4.0), 0.0);
  EXPECT_DOUBLE_EQ(c.at(100.0), 0.0);
}

TEST(SurvivalCurve, DuplicatesCollapse) {
  SurvivalCurve c({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(c.at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(2.0), 0.25);
  const auto steps = c.steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].first, 2.0);
  EXPECT_DOUBLE_EQ(steps[0].second, 0.25);
  EXPECT_DOUBLE_EQ(steps[1].first, 5.0);
  EXPECT_DOUBLE_EQ(steps[1].second, 0.0);
}

TEST(SurvivalCurve, StepsAreMonotone) {
  SurvivalCurve c({3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0});
  const auto steps = c.steps();
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i].first, steps[i - 1].first);
    EXPECT_LT(steps[i].second, steps[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(steps.back().second, 0.0);
}

// Property: totals conserved and fractions sum to 1 for random inputs.
class HistogramConservation : public ::testing::TestWithParam<int> {};

TEST_P(HistogramConservation, FractionsSumToOne) {
  Log10Histogram h(6);
  const int n = GetParam();
  for (int i = 0; i < n; ++i) h.add(std::pow(1.37, i % 40));
  EXPECT_EQ(h.total(), static_cast<std::size_t>(n));
  double sum = 0;
  for (std::size_t d = 0; d < h.decades(); ++d) sum += h.fraction(d);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HistogramConservation,
                         ::testing::Values(1, 7, 100, 5000));

}  // namespace
}  // namespace istc
