#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace istc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelFor, MoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 500, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

TEST(ParallelFor, TransientPoolOverload) {
  std::atomic<int> n{0};
  parallel_for(16, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

TEST(ParallelFor, SerialFallbackForTinyN) {
  std::atomic<int> n{0};
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    n.fetch_add(1);
  });
  EXPECT_EQ(n.load(), 1);
}

// Determinism contract: per-index forked RNG streams give results that are
// independent of thread count / interleaving.
TEST(ParallelFor, DeterministicWithForkedStreams) {
  const Rng root(99);
  auto run = [&](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(64);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      Rng rng = root.fork(i);
      double acc = 0;
      for (int k = 0; k < 100; ++k) acc += rng.uniform();
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

// -- saturation gauges (bench preambles, stats verb, /metrics) ---------------

TEST(ThreadPool, InstanceStatsCountSubmittedAndExecuted) {
  ThreadPool pool(3);
  for (int i = 0; i < 50; ++i) {
    pool.submit([] {});
  }
  pool.wait_idle();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_submitted, 50u);
  EXPECT_EQ(s.tasks_executed, 50u);
  EXPECT_EQ(s.queue_depth, 0u);
  // 50 tasks through 3 workers must have queued at least once.
  EXPECT_GE(s.queue_hwm, 1u);
  EXPECT_LE(s.busy_hwm, 3u);
}

TEST(ThreadPool, GlobalStatsAreMonotoneAcrossPools) {
  const PoolStats before = ThreadPool::global_stats();
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([] {});
    }
    pool.wait_idle();
  }
  const PoolStats after = ThreadPool::global_stats();
  EXPECT_GE(after.tasks_submitted, before.tasks_submitted + 20);
  EXPECT_GE(after.tasks_executed, before.tasks_executed + 20);
  EXPECT_GE(after.pools_created, before.pools_created + 1);
  // Process-lifetime HWMs never move backwards.
  EXPECT_GE(after.queue_hwm, before.queue_hwm);
  EXPECT_GE(after.busy_hwm, before.busy_hwm);
}

TEST(ThreadPool, BusyWorkersReturnToZeroWhenIdle) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  parallel_for(pool, 64, [&](std::size_t) { n.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(pool.stats().busy_workers, 0u);
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> a{0};
  parallel_for(pool, 10, [&](std::size_t) { a.fetch_add(1); });
  parallel_for(pool, 20, [&](std::size_t) { a.fetch_add(1); });
  EXPECT_EQ(a.load(), 30);
}

#ifdef GTEST_HAS_DEATH_TEST
// A task that throws must terminate the process — loudly, via the explicit
// std::terminate in worker_loop — rather than skip the active_ decrement
// and leave wait_idle() blocked on a pool that never drains.  This suite is
// named *DeathTest so the TSan CI filter (which cannot run fork-based death
// tests) excludes it by name.
TEST(ParallelForDeathTest, TaskExceptionTerminates) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        parallel_for(pool, 8, [](std::size_t i) {
          if (i == 3) throw std::runtime_error("boom");
        });
      },
      "parallel_for task threw");
}
#endif

}  // namespace
}  // namespace istc
