#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace istc {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/istc_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter w(path_);
    w.header({"x", "y"});
    w.row(std::vector<std::string>{"1", "2"});
    w.row(std::vector<double>{3.5, 4.25});
  }
  EXPECT_EQ(read_all(path_), "x,y\n1,2\n3.5,4.25\n");
}

TEST_F(CsvTest, EscapesCommas) {
  {
    CsvWriter w(path_);
    w.row(std::vector<std::string>{"a,b", "plain"});
  }
  EXPECT_EQ(read_all(path_), "\"a,b\",plain\n");
}

TEST_F(CsvTest, EscapesQuotes) {
  {
    CsvWriter w(path_);
    w.row(std::vector<std::string>{"say \"hi\""});
  }
  EXPECT_EQ(read_all(path_), "\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, EscapePassthroughForPlainFields) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, OpenFailureThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/file.csv"),
               std::runtime_error);
}

TEST_F(CsvTest, NumericPrecision) {
  {
    CsvWriter w(path_);
    w.row(std::vector<double>{1.0 / 3.0}, 3);
  }
  EXPECT_EQ(read_all(path_), "0.333\n");
}

}  // namespace
}  // namespace istc
