#include "util/time.hpp"

#include <gtest/gtest.h>

namespace istc {
namespace {

TEST(Time, UnitConstants) {
  EXPECT_EQ(kSecondsPerMinute, 60);
  EXPECT_EQ(kSecondsPerHour, 3600);
  EXPECT_EQ(kSecondsPerDay, 86400);
  EXPECT_EQ(kSecondsPerWeek, 604800);
}

TEST(Time, Constructors) {
  EXPECT_EQ(minutes(3), 180);
  EXPECT_EQ(hours(2), 7200);
  EXPECT_EQ(days(1), 86400);
  EXPECT_EQ(hours(0), 0);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_hours(3600), 1.0);
  EXPECT_DOUBLE_EQ(to_hours(5400), 1.5);
  EXPECT_DOUBLE_EQ(to_days(43200), 0.5);
}

TEST(Time, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(3600), 1);
  EXPECT_EQ(hour_of_day(hours(23) + 3599), 23);
  EXPECT_EQ(hour_of_day(days(1)), 0);
  EXPECT_EQ(hour_of_day(days(2) + hours(14)), 14);
}

TEST(Time, DayIndex) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(days(1) - 1), 0);
  EXPECT_EQ(day_index(days(1)), 1);
  EXPECT_EQ(day_index(days(9) + hours(3)), 9);
}

TEST(Time, FormatDurationShort) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(61), "00:01:01");
  EXPECT_EQ(format_duration(hours(5) + minutes(4) + 3), "05:04:03");
}

TEST(Time, FormatDurationDays) {
  EXPECT_EQ(format_duration(days(2) + hours(3) + minutes(4) + 5),
            "2d 03:04:05");
}

TEST(Time, FormatDurationNegative) {
  EXPECT_EQ(format_duration(-61), "-00:01:01");
}

TEST(Time, FormatHours) {
  EXPECT_EQ(format_hours(3600), "1.0 h");
  EXPECT_EQ(format_hours(5400, 2), "1.50 h");
}

TEST(Time, InfinityIsFarButSafe) {
  // Adding a realistic duration to "infinity" must not overflow.
  EXPECT_GT(kTimeInfinity + days(100000), kTimeInfinity);
  EXPECT_GT(kTimeInfinity, days(365) * 1000);
}

}  // namespace
}  // namespace istc
