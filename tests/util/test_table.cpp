#include "util/table.hpp"

#include <gtest/gtest.h>

namespace istc {
namespace {

TEST(Table, CellFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::integer(-7), "-7");
  EXPECT_EQ(Table::pm(12.3, 4.5, 1), "12.3 ± 4.5");
}

TEST(Table, RendersHeadersAndRows) {
  Table t("title");
  t.headers({"a", "bb"});
  t.row({"1", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| bb "), std::string::npos);
  EXPECT_NE(s.find("| 1 "), std::string::npos);
}

TEST(Table, ColumnWidthsAccommodateLongestCell) {
  Table t;
  t.headers({"x"});
  t.row({"longvalue"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| longvalue |"), std::string::npos);
  EXPECT_NE(s.find("| x         |"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t;
  t.headers({"a", "b", "c"});
  t.row({"1"});
  const std::string s = t.str();
  // Three columns drawn even though the row had one cell.
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(Table, ExtraCellsWidenTable) {
  Table t;
  t.headers({"a"});
  t.row({"1", "2", "3"});
  EXPECT_NE(t.str().find("| 3 |"), std::string::npos);
}

TEST(Table, EmptyTable) {
  Table t("only title");
  EXPECT_NE(t.str().find("empty table"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t;
  EXPECT_EQ(t.rows(), 0u);
  t.row({"x"});
  t.row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(KeyValueBlock, Renders) {
  KeyValueBlock kv("params");
  kv.add("alpha", "1");
  kv.add("beta", 2.5, 1);
  const std::string s = kv.str();
  EXPECT_NE(s.find("params"), std::string::npos);
  EXPECT_NE(s.find("alpha : 1"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(KeyValueBlock, KeysAligned) {
  KeyValueBlock kv;
  kv.add("a", "1");
  kv.add("longer", "2");
  const std::string s = kv.str();
  // Short key padded to the longest key width before the colon.
  EXPECT_NE(s.find("a      : 1"), std::string::npos);
}

}  // namespace
}  // namespace istc
