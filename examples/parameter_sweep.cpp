// A researcher's workflow: plan a parameter-sweep campaign as an
// interstitial project on a production machine.
//
// The sweep: 7.7 peta-cycles of independent simulations (the paper's
// smallest Table 2 project).  Questions answered here:
//   1. How should the sweep be chopped into jobs? (advisor)
//   2. How long will it take, best case? (theory + omniscient packing)
//   3. How long under realistic, estimate-driven submission? (continual
//      sampling)

#include <cstdio>

#include "core/advisor.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace istc;
  const auto site = cluster::Site::kBlueMountain;
  const auto machine = cluster::machine_spec(site);
  const double util = core::native_utilization(site);
  const double project_cycles = 7.7e15;

  std::printf("Planning a %.1f peta-cycle sweep on %s (native util %.3f)\n\n",
              project_cycles / 1e15, machine.name.c_str(), util);

  // 1. Ask the advisor for a job shape.
  core::AdvisorInputs in;
  in.machine = machine;
  in.native_utilization = util;
  in.project_cycles = project_cycles;
  in.max_native_delay = minutes(10);
  in.max_breakage = 1.05;
  const auto rec = core::advise(in);

  KeyValueBlock plan("Recommended project shape");
  plan.add("CPUs per job", Table::integer(rec.cpus_per_job));
  plan.add("job runtime on this machine", format_duration(rec.job_runtime));
  plan.add("machine-neutral job size",
           std::to_string(rec.work_sec_at_1ghz) + " s @ 1 GHz");
  plan.add("number of jobs", Table::integer(static_cast<long long>(rec.jobs)));
  plan.add("breakage factor", rec.breakage, 3);
  plan.add("predicted makespan (fitted model)",
           Table::num(rec.predicted_makespan_h, 1) + " h");
  plan.print();
  for (const auto& note : rec.notes) std::printf("  note: %s\n", note.c_str());

  // 2. Best case: omniscient packing at random start times.
  const auto spec =
      core::ProjectSpec::paper(rec.jobs, rec.cpus_per_job,
                               rec.work_sec_at_1ghz);
  const auto omni = core::omniscient_makespans(site, spec, 10);
  const auto so = omni.summary();
  std::printf("\nOmniscient makespan over 10 random starts: %s h "
              "(min %.1f, max %.1f)\n",
              so.mean_pm_std(1).c_str(), so.min(), so.max());

  // 3. Realistic: estimate-driven submission, sampled from a continual run.
  const auto fall = core::fallible_makespans(site, spec, 200);
  if (fall.feasible()) {
    const auto sf = fall.summary();
    std::printf("Fallible makespan over %zu samples:        %s h "
                "(median %.1f)\n",
                sf.count(), sf.mean_pm_std(1).c_str(), sf.median());
  } else {
    std::printf("Fallible makespan: project does not fit in one log pass\n");
  }

  std::printf(
      "\nReading: the sweep costs the facility nothing it was using — the\n"
      "jobs run purely in the schedule's interstices — and the realistic\n"
      "makespan is within a factor of ~2 of the perfect-knowledge bound.\n");
  return 0;
}
