// A facility administrator's workflow: choose the interstitial submission
// utilization cap (the paper's Table 8 "limited" policy).
//
// Sweep the cap and print the frontier: interstitial throughput vs native
// impact, so the site can pick its own operating point.

#include <cstdio>

#include "core/experiment.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"
#include "util/table.hpp"

int main() {
  using namespace istc;
  const auto site = cluster::Site::kBlueMountain;
  std::printf(
      "Choosing an interstitial utilization cap on %s\n"
      "(32-CPU, 120 s @ 1 GHz continual stream; caps limit instantaneous\n"
      "machine utilization at submission time)\n\n",
      cluster::site_name(site));

  const auto& base = core::native_baseline(site);
  const auto w_base = metrics::wait_stats(base.records);
  const auto wl_base =
      metrics::wait_stats(metrics::largest_native(base.records, 0.05));

  Table t("cap sweep (native baseline: median wait "
          + Table::num(w_base.median_wait_s, 0) + " s, largest-5% "
          + Table::num(wl_base.median_wait_s, 0) + " s)");
  t.headers({"cap", "interstitial jobs", "overall util", "native util",
             "median wait (s)", "largest-5% median wait (s)"});

  const double caps[] = {0.85, 0.90, 0.95, 0.98, 1.0};
  for (double cap : caps) {
    const auto& run = core::continual_run(site, 32, 120, cap);
    const double overall = metrics::average_utilization(
        run.records, run.machine.cpus, 0, run.span);
    const double native = metrics::average_utilization(
        run.records, run.machine.cpus, 0, run.span,
        metrics::JobFilter::kNativeOnly);
    const auto w = metrics::wait_stats(run.records);
    const auto wl =
        metrics::wait_stats(metrics::largest_native(run.records, 0.05));
    t.row({cap < 1.0 ? Table::num(cap, 2) : std::string("none"),
           Table::integer(static_cast<long long>(run.interstitial_count())),
           Table::num(overall, 3), Table::num(native, 3),
           Table::num(w.median_wait_s, 0), Table::num(wl.median_wait_s, 0)});
  }
  t.print();

  std::printf(
      "\nReading: tighter caps surrender interstitial throughput roughly\n"
      "linearly while the native impact falls — the paper recommends ~90%%\n"
      "for sites that must keep native service levels untouched.\n");
  return 0;
}
