// Quickstart: simulate one machine, inject a continual interstitial stream,
// and report what the spare cycles yielded and what it cost the natives.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/experiment.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"
#include "util/table.hpp"

int main() {
  using namespace istc;
  const auto site = cluster::Site::kBlueMountain;
  const auto span = cluster::site_span(site);

  std::printf("Interstitial computing quickstart — %s\n\n",
              cluster::site_name(site));

  // 1. Native-only baseline: the machine's own job log, replayed.
  const sched::RunResult& native = core::native_baseline(site);
  const double u_native = metrics::average_utilization(
      native.records, native.machine.cpus, 0, span);
  const metrics::WaitStats w_native = metrics::wait_stats(native.records);

  // 2. Same log plus a continual stream of 32-CPU, 120 s @ 1 GHz jobs.
  const sched::RunResult& with_i = core::continual_run(site, 32, 120);
  const double u_overall = metrics::average_utilization(
      with_i.records, with_i.machine.cpus, 0, span);
  const double u_nat_after = metrics::average_utilization(
      with_i.records, with_i.machine.cpus, 0, span,
      metrics::JobFilter::kNativeOnly);
  const metrics::WaitStats w_after = metrics::wait_stats(with_i.records);

  Table t("native-only vs continual interstitial");
  t.headers({"metric", "native only", "with interstitial"});
  t.row({"machine utilization", Table::num(u_native, 3),
         Table::num(u_overall, 3)});
  t.row({"native utilization", Table::num(u_native, 3),
         Table::num(u_nat_after, 3)});
  t.row({"interstitial jobs completed", "0",
         Table::integer(static_cast<long long>(with_i.interstitial_count()))});
  t.row({"native median wait (s)", Table::num(w_native.median_wait_s, 0),
         Table::num(w_after.median_wait_s, 0)});
  t.row({"native mean wait (s)", Table::num(w_native.avg_wait_s, 0),
         Table::num(w_after.avg_wait_s, 0)});
  t.row({"native median EF", Table::num(w_native.median_ef, 2),
         Table::num(w_after.median_ef, 2)});
  t.print();

  std::printf(
      "\nThe interstitial stream harvested %.1f%% of the machine that was\n"
      "idle under native load alone, at the native-impact cost shown above.\n",
      100.0 * (u_overall - u_native));
  return 0;
}
