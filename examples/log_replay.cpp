// Replay a real (or exported) job trace in Standard Workload Format and
// measure its interstitial potential: how many spare cycles exist, and
// what a continual interstitial stream would harvest.
//
// Usage:
//   log_replay [trace.swf [cpus [clock_ghz]]]
//
// With no arguments the example exports the calibrated Blue Mountain
// synthetic log to SWF, reads it back (exercising the same path a real
// trace takes) and replays it.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/driver.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"
#include "sched/presets.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/table.hpp"
#include "workload/presets.hpp"
#include "workload/swf.hpp"

namespace {

istc::sched::RunResult replay(const istc::workload::JobLog& log,
                              const istc::cluster::MachineSpec& machine,
                              istc::SimTime span, bool with_interstitial,
                              istc::trace::Tracer* tracer = nullptr) {
  using namespace istc;
  sim::Engine engine;
  // A generic EASY + user-fair-share policy for foreign traces.
  sched::PolicySpec policy;
  policy.name = "EASY + equal-user fair share";
  sched::BatchScheduler scheduler(engine, cluster::Machine(machine), policy);
  if (tracer != nullptr) scheduler.set_tracer(tracer);
  scheduler.load(log);
  std::optional<core::InterstitialDriver> driver;
  if (with_interstitial) {
    driver.emplace(scheduler,
                   core::ProjectSpec::continual_stream(8, 120, span),
                   static_cast<workload::JobId>(log.size()));
  }
  engine.run();
  return scheduler.take_result(span);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace istc;

  workload::JobLog log;
  cluster::MachineSpec machine;
  if (argc >= 2) {
    machine.name = "user trace machine";
    machine.cpus = argc >= 3 ? std::atoi(argv[2]) : 1024;
    machine.clock_ghz = argc >= 4 ? std::atof(argv[3]) : 1.0;
    std::printf("Reading SWF trace %s (machine: %d CPUs @ %.3f GHz)\n",
                argv[1], machine.cpus, machine.clock_ghz);
    log = workload::read_swf_file(argv[1]);
  } else {
    // Round-trip the synthetic Blue Mountain log through SWF.
    machine = cluster::machine_spec(cluster::Site::kBlueMountain);
    const auto path = std::string("bluemtn_synth.swf");
    workload::write_swf_file(path, workload::site_log(cluster::Site::kBlueMountain),
                             "synthetic Blue Mountain log (calibrated to "
                             "CLUSTER'03 Table 1)");
    std::printf("No trace given; exported and re-reading %s\n", path.c_str());
    log = workload::read_swf_file(path);
  }
  if (log.empty()) {
    std::fprintf(stderr, "trace contains no usable jobs\n");
    return 1;
  }
  const SimTime span = log.last_submit() + 1;
  std::printf("%zu jobs spanning %.1f days\n\n", log.size(), to_days(span));

  const auto native = replay(log, machine, span, false);
  trace::Tracer tracer(trace::TraceMode::kFull, 4u << 20);
  const auto with_i = replay(log, machine, span, true, &tracer);

  const double u0 = metrics::average_utilization(native.records, machine.cpus,
                                                 0, span);
  const double u1 = metrics::average_utilization(with_i.records, machine.cpus,
                                                 0, span);
  const auto w0 = metrics::wait_stats(native.records);
  const auto w1 = metrics::wait_stats(with_i.records);

  Table t("interstitial potential of this trace (8-CPU, 120 s @ 1 GHz jobs)");
  t.headers({"metric", "native only", "with interstitial"});
  t.row({"utilization", Table::num(u0, 3), Table::num(u1, 3)});
  t.row({"interstitial jobs", "0",
         Table::integer(static_cast<long long>(with_i.interstitial_count()))});
  t.row({"native median wait (s)", Table::num(w0.median_wait_s, 0),
         Table::num(w1.median_wait_s, 0)});
  t.print();

  std::printf("\nSpare cycles harvested: %.1f%% of the machine.\n",
              100.0 * (u1 - u0));

  // Export the interstitial replay's event trace for visual inspection:
  // load log_replay_trace.json in chrome://tracing (or ui.perfetto.dev)
  // to see jobs on CPU-block tracks and every Fig. 1 gate decision.
  const std::string trace_path = "log_replay_trace.json";
  trace::write_chrome_trace_file(
      trace_path, tracer,
      {.machine_name = machine.name, .total_cpus = machine.cpus});
  std::printf("Wrote %s (%zu events) - open it in chrome://tracing\n",
              trace_path.c_str(), tracer.size());
  if (tracer.dropped() > 0) {
    std::printf("(buffer cap reached: %zu later events dropped)\n",
                tracer.dropped());
  }
  return 0;
}
