#pragma once

#include <cstdint>

/// \file summary.hpp
/// Aggregate counters and timers collected alongside (or instead of) the
/// event stream.  Deliberately dependency-free: sched::RunResult embeds a
/// TraceSummary so every experiment carries its scheduling-cost profile.
///
/// Wall-clock timers (`*_us`) are host measurements and therefore *not*
/// deterministic across runs; they never feed the event stream, only this
/// summary, so JSONL exports stay byte-identical while the summary still
/// answers "what did the scheduler pass cost".

namespace istc::trace {

struct TraceSummary {
  // -- event volume -------------------------------------------------------
  std::uint64_t events_recorded = 0;   ///< events kept in the buffer
  std::uint64_t events_dropped = 0;    ///< events past the buffer cap

  // -- engine -------------------------------------------------------------
  std::uint64_t engine_events_drained = 0;  ///< events fired
  std::uint64_t engine_timesteps = 0;       ///< distinct quiescent passes

  // -- engine event core ---------------------------------------------------
  // Gauges mirrored from sim::EngineStats once per timestep (max-merged,
  // so a tracer shared across engines reports the largest value seen).
  // The by-kind counts tally *scheduled* events per sim::EventType.
  std::uint64_t engine_peak_queue_depth = 0;   ///< event-heap high-water mark
  std::uint64_t engine_max_timestep_batch = 0; ///< largest same-time batch
  std::uint64_t engine_events_callback = 0;    ///< generic-callback events
  std::uint64_t engine_events_job_submit = 0;  ///< typed job-submit events
  std::uint64_t engine_events_job_finish = 0;  ///< typed job-finish events
  std::uint64_t engine_events_wake = 0;        ///< scheduler-wake events
  std::uint64_t engine_events_sample = 0;      ///< metrics-sample events
  std::uint64_t engine_events_repair = 0;      ///< capacity-repair events
  std::uint64_t engine_events_fault = 0;       ///< fault-timeline firings
  std::uint64_t engine_events_grid_arrival = 0;  ///< grid-port deliveries
  /// Typed-queue heap allocations (vector growth + boxed callbacks);
  /// zero in steady state on the typed path, 0 (unknowable) in legacy mode.
  std::uint64_t engine_heap_allocations = 0;

  // -- scheduler ----------------------------------------------------------
  std::uint64_t sched_passes = 0;         ///< scheduling passes timed
  std::uint64_t sched_pass_us_total = 0;  ///< wall µs across all passes
  std::uint64_t sched_pass_us_max = 0;    ///< slowest single pass, wall µs
  std::uint64_t backfill_scans = 0;       ///< earliest_start evaluations
  std::uint64_t reservations_made = 0;
  std::uint64_t reservations_honored = 0;
  std::uint64_t reservations_violated = 0;

  // -- scheduler pipeline stages (one slot per sched::StageKind) ----------
  // Wall µs spent inside each pass stage, and how often the stage ran.
  // Pass setup (wake pruning, profile origin-advance, the paranoid
  // cross-check) is timed into its own stage_setup_us slot, so
  // stage_setup_us + sum(stage_us) == sched_pass_us_total holds exactly
  // (pinned by tests/trace/test_determinism.cpp).
  static constexpr int kNumStages = 4;
  std::uint64_t stage_us[kNumStages] = {0, 0, 0, 0};
  std::uint64_t stage_runs[kNumStages] = {0, 0, 0, 0};
  std::uint64_t stage_setup_us = 0;  ///< pre-stage pass setup, wall µs

  // -- incremental scheduling state --------------------------------------
  /// Passes that re-sorted the queue because the fair-share ledger or the
  /// pending set changed, vs. passes that reused the cached priority order.
  std::uint64_t priority_recomputes = 0;
  std::uint64_t priority_reuses = 0;
  /// From-scratch ResourceProfile rebuilds (rebuild path or paranoia).
  std::uint64_t profile_rebuilds = 0;

  // -- interstitial stream (Fig. 1 driver) --------------------------------
  std::uint64_t gate_decisions = 0;
  std::uint64_t gate_open = 0;
  std::uint64_t gate_closed = 0;
  std::uint64_t interstitial_submitted = 0;
  /// Jobs that had space but were withheld because the gate was closed.
  std::uint64_t interstitial_rejected_by_gate = 0;
  std::uint64_t interstitial_killed = 0;

  // -- unplanned failures (fault::FaultInjector) --------------------------
  std::uint64_t faults_injected = 0;       ///< crash + node-failure events
  std::uint64_t fault_crashes = 0;         ///< whole-machine crashes
  std::uint64_t fault_node_failures = 0;   ///< partial-capacity failures
  std::uint64_t fault_killed_native = 0;   ///< native jobs killed by faults
  std::uint64_t fault_killed_interstitial = 0;
  /// CPU-seconds of executed work thrown away by fault kills (work since
  /// the last checkpoint for checkpointing streams; everything otherwise).
  std::uint64_t fault_cpu_sec_lost = 0;
  /// CPU-seconds of executed work preserved by checkpoints across kills.
  std::uint64_t fault_cpu_sec_recovered = 0;
  std::uint64_t fault_native_resubmits = 0;  ///< killed natives re-queued
  std::uint64_t fault_retries = 0;           ///< interstitial retry submissions
  std::uint64_t fault_retries_exhausted = 0; ///< jobs abandoned after retries

  /// Mean scheduler-pass cost in µs (0 when no pass was timed).
  double mean_pass_us() const {
    return sched_passes == 0 ? 0.0
                             : static_cast<double>(sched_pass_us_total) /
                                   static_cast<double>(sched_passes);
  }
};

}  // namespace istc::trace
