#pragma once

#include <cstdint>

#include "util/time.hpp"

/// \file event.hpp
/// Typed trace records.  Every observable decision of the simulator — job
/// lifecycle, backfill reservations, the Fig. 1 gate, fair-share
/// recomputes, downtime windows — becomes one fixed-size TraceEvent.
///
/// Events are keyed by (time, seq) exactly like the engine's event heap:
/// `seq` is the tracer's record-order counter, so two runs of the same
/// seeded scenario produce identical event streams and byte-identical
/// exports (tests/trace/test_determinism.cpp enforces this).

namespace istc::trace {

enum class EventKind : std::uint8_t {
  kJobSubmit,             ///< job entered the system (native or interstitial)
  kJobStart,              ///< job allocated CPUs and began running
  kJobFinish,             ///< job completed normally
  kJobKill,               ///< running job killed (preemption or fault)
  kReservationMade,       ///< backfill reservation placed for a blocked job
  kReservationHonored,    ///< reserved job started at/before its reservation
  kReservationViolated,   ///< reserved job started after its reservation
  kGateDecision,          ///< Fig. 1 gate evaluated (open or closed)
  kFairShareRecompute,    ///< per-pass dynamic re-prioritization
  kDowntimeBegin,         ///< scheduled outage window opens
  kDowntimeEnd,           ///< scheduled outage window closes
  kMachineCrash,          ///< unplanned whole-machine crash (fault injection)
  kNodeFailure,           ///< unplanned partial-capacity failure
  kFaultRepair,           ///< failed capacity restored
};

/// Stable lower-case name used by every exporter ("job_start", ...).
const char* kind_name(EventKind kind);

/// One trace record.  Generic fields carry kind-specific meanings, spelled
/// out below, so the record stays a flat preallocatable POD:
///
///   kind                  aux_time                      value
///   ------------------    --------------------------    --------------------
///   kJobSubmit            (unused)                      estimate (s)
///   kJobStart             estimated end time            runtime (s)
///   kJobFinish            start time                    (unused)
///   kJobKill              start time                    sched::KillReason
///   kReservationMade      reserved start time           (unused)
///   kReservationHonored   reserved start time           (unused)
///   kReservationViolated  reserved start time           start - reserved (s)
///   kGateDecision         backfill wall time            chosen k (open) or
///                         (kTimeInfinity: empty queue)  rejected k (closed)
///   kFairShareRecompute   (unused)                      queue length
///   kDowntimeBegin        window end                    (unused)
///   kDowntimeEnd          window start                  (unused)
///   kMachineCrash         repair (up-again) time        jobs killed
///   kNodeFailure          repair (up-again) time        jobs killed
///   kFaultRepair          failure time                  (unused)
///
/// For the fault kinds `cpus` carries the capacity taken down / restored,
/// and kJobKill's value is the sched::KillReason of the kill.
struct TraceEvent {
  SimTime time = 0;         ///< simulation time of the event
  std::uint64_t seq = 0;    ///< record order; (time, seq) is the total key
  EventKind kind = EventKind::kJobSubmit;
  bool interstitial = false;  ///< job class, for job/reservation events
  bool open = false;          ///< kGateDecision: gate verdict
  std::int64_t job = -1;      ///< job id; -1 when not applicable
  std::int32_t cpus = 0;      ///< job width, for job/reservation events
  SimTime aux_time = 0;       ///< kind-specific time (see table above)
  std::int64_t value = 0;     ///< kind-specific scalar (see table above)
};

}  // namespace istc::trace
