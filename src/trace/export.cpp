#include "trace/export.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/csv.hpp"

namespace istc::trace {

namespace {

constexpr std::int64_t kUsPerSecond = 1'000'000;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

const char* class_name(bool interstitial) {
  return interstitial ? "interstitial" : "native";
}

void jsonl_line(std::ostream& out, const TraceEvent& e) {
  out << "{\"t\":" << e.time << ",\"seq\":" << e.seq << ",\"kind\":\""
      << kind_name(e.kind) << "\"";
  switch (e.kind) {
    case EventKind::kJobSubmit:
      out << ",\"job\":" << e.job << ",\"class\":\""
          << class_name(e.interstitial) << "\",\"cpus\":" << e.cpus
          << ",\"estimate\":" << e.value;
      break;
    case EventKind::kJobStart:
      out << ",\"job\":" << e.job << ",\"class\":\""
          << class_name(e.interstitial) << "\",\"cpus\":" << e.cpus
          << ",\"runtime\":" << e.value << ",\"est_end\":" << e.aux_time;
      break;
    case EventKind::kJobFinish:
    case EventKind::kJobKill:
      out << ",\"job\":" << e.job << ",\"class\":\""
          << class_name(e.interstitial) << "\",\"cpus\":" << e.cpus
          << ",\"start\":" << e.aux_time;
      break;
    case EventKind::kReservationMade:
    case EventKind::kReservationHonored:
      out << ",\"job\":" << e.job << ",\"cpus\":" << e.cpus
          << ",\"reserved_start\":" << e.aux_time;
      break;
    case EventKind::kReservationViolated:
      out << ",\"job\":" << e.job << ",\"cpus\":" << e.cpus
          << ",\"reserved_start\":" << e.aux_time << ",\"late_s\":" << e.value;
      break;
    case EventKind::kGateDecision:
      out << ",\"open\":" << (e.open ? "true" : "false") << ",\"wall_time\":";
      if (e.aux_time >= kTimeInfinity) {
        out << "null";
      } else {
        out << e.aux_time;
      }
      out << ",\"k\":" << e.value;
      break;
    case EventKind::kFairShareRecompute:
      out << ",\"queue\":" << e.value;
      break;
    case EventKind::kDowntimeBegin:
      out << ",\"until\":" << e.aux_time;
      break;
    case EventKind::kDowntimeEnd:
      out << ",\"since\":" << e.aux_time;
      break;
    case EventKind::kMachineCrash:
    case EventKind::kNodeFailure:
      out << ",\"cpus\":" << e.cpus << ",\"repair\":" << e.aux_time
          << ",\"killed\":" << e.value;
      break;
    case EventKind::kFaultRepair:
      out << ",\"cpus\":" << e.cpus << ",\"failed_at\":" << e.aux_time;
      break;
  }
  out << "}\n";
}

/// First-fit allocator of contiguous CPU blocks, used only for layout:
/// the simulator itself tracks a bare counter, but chrome://tracing wants
/// stable tracks, and first-fit over the deterministic event stream gives
/// every job a reproducible [offset, offset+cpus) block.
class BlockAllocator {
 public:
  explicit BlockAllocator(int total) { free_[0] = total; }

  int allocate(int cpus) {
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second < cpus) continue;
      const int offset = it->first;
      const int len = it->second;
      free_.erase(it);
      if (len > cpus) free_[offset + cpus] = len - cpus;
      return offset;
    }
    return -1;  // cannot happen unless total_cpus was understated
  }

  void release(int offset, int cpus) {
    auto [it, inserted] = free_.emplace(offset, cpus);
    if (!inserted) return;
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
      it->second += next->second;
      free_.erase(next);
    }
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        free_.erase(it);
      }
    }
  }

 private:
  std::map<int, int> free_;  // offset -> length
};

}  // namespace

void write_jsonl(std::ostream& out, const Tracer& tracer) {
  for (const TraceEvent& e : tracer.sorted_events()) jsonl_line(out, e);
}

void write_jsonl_file(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_jsonl(out, tracer);
}

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const ChromeTraceOptions& options) {
  constexpr int kMachinePid = 1;
  constexpr int kSchedulerPid = 2;
  const int total = options.total_cpus > 0 ? options.total_cpus : (1 << 30);

  struct RunningJob {
    int offset = 0;
    int cpus = 0;
    SimTime start = 0;
    bool interstitial = false;
  };

  const std::vector<TraceEvent> events = tracer.sorted_events();
  SimTime last_time = 0;
  for (const TraceEvent& e : events) last_time = std::max(last_time, e.time);

  BlockAllocator lanes(total);
  std::unordered_map<std::int64_t, RunningJob> running;
  std::set<int> used_offsets;
  std::vector<std::string> lines;
  lines.reserve(events.size());

  auto emit_job = [&](std::int64_t id, const RunningJob& r, SimTime end,
                      bool killed) {
    std::ostringstream line;
    line << "{\"name\":\"job " << id << (killed ? " (killed)" : "")
         << "\",\"cat\":\"" << class_name(r.interstitial)
         << "\",\"ph\":\"X\",\"pid\":" << kMachinePid << ",\"tid\":" << r.offset
         << ",\"ts\":" << r.start * kUsPerSecond
         << ",\"dur\":" << (end - r.start) * kUsPerSecond
         << ",\"args\":{\"cpus\":" << r.cpus << ",\"job\":" << id << "}}";
    lines.push_back(line.str());
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kJobStart: {
        RunningJob r;
        r.cpus = e.cpus;
        r.start = e.time;
        r.interstitial = e.interstitial;
        r.offset = lanes.allocate(e.cpus);
        if (r.offset < 0) r.offset = total;  // overflow track
        used_offsets.insert(r.offset);
        running[e.job] = r;
        break;
      }
      case EventKind::kJobFinish:
      case EventKind::kJobKill: {
        const auto it = running.find(e.job);
        if (it == running.end()) break;
        emit_job(e.job, it->second, e.time, e.kind == EventKind::kJobKill);
        if (it->second.offset < total) {
          lanes.release(it->second.offset, it->second.cpus);
        }
        running.erase(it);
        break;
      }
      case EventKind::kGateDecision: {
        std::ostringstream line;
        line << "{\"name\":\"gate " << (e.open ? "open" : "closed") << " k="
             << e.value
             << "\",\"cat\":\"gate\",\"ph\":\"i\",\"s\":\"p\",\"pid\":"
             << kSchedulerPid << ",\"tid\":0,\"ts\":" << e.time * kUsPerSecond
             << ",\"args\":{\"open\":" << (e.open ? "true" : "false")
             << ",\"k\":" << e.value << ",\"wall_time\":";
        if (e.aux_time >= kTimeInfinity) {
          line << "null";
        } else {
          line << e.aux_time;
        }
        line << "}}";
        lines.push_back(line.str());
        break;
      }
      case EventKind::kFairShareRecompute: {
        std::ostringstream line;
        line << "{\"name\":\"queue length\",\"ph\":\"C\",\"pid\":"
             << kSchedulerPid << ",\"ts\":" << e.time * kUsPerSecond
             << ",\"args\":{\"waiting\":" << e.value << "}}";
        lines.push_back(line.str());
        break;
      }
      case EventKind::kDowntimeBegin: {
        std::ostringstream line;
        line << "{\"name\":\"downtime\",\"cat\":\"downtime\",\"ph\":\"X\","
                "\"pid\":"
             << kSchedulerPid << ",\"tid\":1,\"ts\":" << e.time * kUsPerSecond
             << ",\"dur\":" << (e.aux_time - e.time) * kUsPerSecond << "}";
        lines.push_back(line.str());
        break;
      }
      case EventKind::kMachineCrash:
      case EventKind::kNodeFailure: {
        std::ostringstream line;
        line << "{\"name\":\"" << kind_name(e.kind)
             << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":"
             << kSchedulerPid << ",\"tid\":2,\"ts\":" << e.time * kUsPerSecond
             << ",\"args\":{\"cpus\":" << e.cpus << ",\"repair\":" << e.aux_time
             << ",\"killed\":" << e.value << "}}";
        lines.push_back(line.str());
        break;
      }
      default:
        break;  // submits, reservations, downtime ends: JSONL-only detail
    }
  }
  // Jobs still running when the trace ends render up to the last event.
  for (const auto& [id, r] : running) emit_job(id, r, last_time, false);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kMachinePid
      << ",\"args\":{\"name\":\"" << json_escape(options.machine_name)
      << "\"}}";
  out << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSchedulerPid
      << ",\"args\":{\"name\":\"scheduler\"}}";
  out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kSchedulerPid
      << ",\"tid\":0,\"args\":{\"name\":\"gate\"}}";
  out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kSchedulerPid
      << ",\"tid\":1,\"args\":{\"name\":\"downtime\"}}";
  for (const int offset : used_offsets) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kMachinePid
        << ",\"tid\":" << offset << ",\"args\":{\"name\":\"cpu " << offset
        << "\"}}";
  }
  for (const std::string& line : lines) out << ",\n" << line;
  out << "\n]}\n";
}

void write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_chrome_trace(out, tracer, options);
}

void write_counters_csv(const std::string& path,
                        const TraceSummary& summary) {
  CsvWriter csv(path);
  csv.header({"events_recorded", "events_dropped", "engine_events_drained",
              "engine_timesteps", "sched_passes", "sched_pass_us_total",
              "sched_pass_us_max", "backfill_scans", "reservations_made",
              "reservations_honored", "reservations_violated",
              "gate_decisions", "gate_open", "gate_closed",
              "interstitial_submitted", "interstitial_rejected_by_gate",
              "interstitial_killed",
              // Pass-pipeline stage timings (one slot per sched::StageKind;
              // new columns append so existing consumers keep their offsets).
              "stage_priority_us", "stage_dispatch_us", "stage_backfill_us",
              "stage_gate_us", "priority_recomputes", "priority_reuses",
              "profile_rebuilds",
              // Engine event-core gauges (typed event queue; new columns
              // append so existing consumers keep their offsets).
              "engine_peak_queue_depth", "engine_max_timestep_batch",
              "engine_events_callback", "engine_events_job_submit",
              "engine_events_job_finish", "engine_events_wake",
              "engine_heap_allocations",
              // Fault-injection counters (new columns append so existing
              // consumers keep their offsets).
              "faults_injected", "fault_crashes", "fault_node_failures",
              "fault_killed_native", "fault_killed_interstitial",
              "fault_cpu_sec_lost", "fault_cpu_sec_recovered",
              "fault_native_resubmits", "fault_retries",
              "fault_retries_exhausted"});
  csv.row({std::to_string(summary.events_recorded),
           std::to_string(summary.events_dropped),
           std::to_string(summary.engine_events_drained),
           std::to_string(summary.engine_timesteps),
           std::to_string(summary.sched_passes),
           std::to_string(summary.sched_pass_us_total),
           std::to_string(summary.sched_pass_us_max),
           std::to_string(summary.backfill_scans),
           std::to_string(summary.reservations_made),
           std::to_string(summary.reservations_honored),
           std::to_string(summary.reservations_violated),
           std::to_string(summary.gate_decisions),
           std::to_string(summary.gate_open),
           std::to_string(summary.gate_closed),
           std::to_string(summary.interstitial_submitted),
           std::to_string(summary.interstitial_rejected_by_gate),
           std::to_string(summary.interstitial_killed),
           std::to_string(summary.stage_us[0]),
           std::to_string(summary.stage_us[1]),
           std::to_string(summary.stage_us[2]),
           std::to_string(summary.stage_us[3]),
           std::to_string(summary.priority_recomputes),
           std::to_string(summary.priority_reuses),
           std::to_string(summary.profile_rebuilds),
           std::to_string(summary.engine_peak_queue_depth),
           std::to_string(summary.engine_max_timestep_batch),
           std::to_string(summary.engine_events_callback),
           std::to_string(summary.engine_events_job_submit),
           std::to_string(summary.engine_events_job_finish),
           std::to_string(summary.engine_events_wake),
           std::to_string(summary.engine_heap_allocations),
           std::to_string(summary.faults_injected),
           std::to_string(summary.fault_crashes),
           std::to_string(summary.fault_node_failures),
           std::to_string(summary.fault_killed_native),
           std::to_string(summary.fault_killed_interstitial),
           std::to_string(summary.fault_cpu_sec_lost),
           std::to_string(summary.fault_cpu_sec_recovered),
           std::to_string(summary.fault_native_resubmits),
           std::to_string(summary.fault_retries),
           std::to_string(summary.fault_retries_exhausted)});
}

}  // namespace istc::trace
