#include "trace/export.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/csv.hpp"

namespace istc::trace {

namespace {

constexpr std::int64_t kUsPerSecond = 1'000'000;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

const char* class_name(bool interstitial) {
  return interstitial ? "interstitial" : "native";
}

void jsonl_line(std::ostream& out, const TraceEvent& e) {
  out << "{\"t\":" << e.time << ",\"seq\":" << e.seq << ",\"kind\":\""
      << kind_name(e.kind) << "\"";
  switch (e.kind) {
    case EventKind::kJobSubmit:
      out << ",\"job\":" << e.job << ",\"class\":\""
          << class_name(e.interstitial) << "\",\"cpus\":" << e.cpus
          << ",\"estimate\":" << e.value;
      break;
    case EventKind::kJobStart:
      out << ",\"job\":" << e.job << ",\"class\":\""
          << class_name(e.interstitial) << "\",\"cpus\":" << e.cpus
          << ",\"runtime\":" << e.value << ",\"est_end\":" << e.aux_time;
      break;
    case EventKind::kJobFinish:
    case EventKind::kJobKill:
      out << ",\"job\":" << e.job << ",\"class\":\""
          << class_name(e.interstitial) << "\",\"cpus\":" << e.cpus
          << ",\"start\":" << e.aux_time;
      break;
    case EventKind::kReservationMade:
    case EventKind::kReservationHonored:
      out << ",\"job\":" << e.job << ",\"cpus\":" << e.cpus
          << ",\"reserved_start\":" << e.aux_time;
      break;
    case EventKind::kReservationViolated:
      out << ",\"job\":" << e.job << ",\"cpus\":" << e.cpus
          << ",\"reserved_start\":" << e.aux_time << ",\"late_s\":" << e.value;
      break;
    case EventKind::kGateDecision:
      out << ",\"open\":" << (e.open ? "true" : "false") << ",\"wall_time\":";
      if (e.aux_time >= kTimeInfinity) {
        out << "null";
      } else {
        out << e.aux_time;
      }
      out << ",\"k\":" << e.value;
      break;
    case EventKind::kFairShareRecompute:
      out << ",\"queue\":" << e.value;
      break;
    case EventKind::kDowntimeBegin:
      out << ",\"until\":" << e.aux_time;
      break;
    case EventKind::kDowntimeEnd:
      out << ",\"since\":" << e.aux_time;
      break;
    case EventKind::kMachineCrash:
    case EventKind::kNodeFailure:
      out << ",\"cpus\":" << e.cpus << ",\"repair\":" << e.aux_time
          << ",\"killed\":" << e.value;
      break;
    case EventKind::kFaultRepair:
      out << ",\"cpus\":" << e.cpus << ",\"failed_at\":" << e.aux_time;
      break;
  }
  out << "}\n";
}

/// First-fit allocator of contiguous CPU blocks, used only for layout:
/// the simulator itself tracks a bare counter, but chrome://tracing wants
/// stable tracks, and first-fit over the deterministic event stream gives
/// every job a reproducible [offset, offset+cpus) block.
class BlockAllocator {
 public:
  explicit BlockAllocator(int total) { free_[0] = total; }

  int allocate(int cpus) {
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second < cpus) continue;
      const int offset = it->first;
      const int len = it->second;
      free_.erase(it);
      if (len > cpus) free_[offset + cpus] = len - cpus;
      return offset;
    }
    return -1;  // cannot happen unless total_cpus was understated
  }

  void release(int offset, int cpus) {
    auto [it, inserted] = free_.emplace(offset, cpus);
    if (!inserted) return;
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
      it->second += next->second;
      free_.erase(next);
    }
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        free_.erase(it);
      }
    }
  }

 private:
  std::map<int, int> free_;  // offset -> length
};

}  // namespace

void write_jsonl(std::ostream& out, const Tracer& tracer) {
  for (const TraceEvent& e : tracer.sorted_events()) jsonl_line(out, e);
}

void write_jsonl_file(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_jsonl(out, tracer);
}

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const ChromeTraceOptions& options) {
  constexpr int kMachinePid = 1;
  constexpr int kSchedulerPid = 2;
  const int total = options.total_cpus > 0 ? options.total_cpus : (1 << 30);

  struct RunningJob {
    int offset = 0;
    int cpus = 0;
    SimTime start = 0;
    bool interstitial = false;
  };

  const std::vector<TraceEvent> events = tracer.sorted_events();
  SimTime last_time = 0;
  for (const TraceEvent& e : events) last_time = std::max(last_time, e.time);

  BlockAllocator lanes(total);
  std::unordered_map<std::int64_t, RunningJob> running;
  std::set<int> used_offsets;
  std::vector<std::string> lines;
  lines.reserve(events.size());

  auto emit_job = [&](std::int64_t id, const RunningJob& r, SimTime end,
                      bool killed) {
    std::ostringstream line;
    line << "{\"name\":\"job " << id << (killed ? " (killed)" : "")
         << "\",\"cat\":\"" << class_name(r.interstitial)
         << "\",\"ph\":\"X\",\"pid\":" << kMachinePid << ",\"tid\":" << r.offset
         << ",\"ts\":" << r.start * kUsPerSecond
         << ",\"dur\":" << (end - r.start) * kUsPerSecond
         << ",\"args\":{\"cpus\":" << r.cpus << ",\"job\":" << id << "}}";
    lines.push_back(line.str());
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kJobStart: {
        RunningJob r;
        r.cpus = e.cpus;
        r.start = e.time;
        r.interstitial = e.interstitial;
        r.offset = lanes.allocate(e.cpus);
        if (r.offset < 0) r.offset = total;  // overflow track
        used_offsets.insert(r.offset);
        running[e.job] = r;
        break;
      }
      case EventKind::kJobFinish:
      case EventKind::kJobKill: {
        const auto it = running.find(e.job);
        if (it == running.end()) break;
        emit_job(e.job, it->second, e.time, e.kind == EventKind::kJobKill);
        if (it->second.offset < total) {
          lanes.release(it->second.offset, it->second.cpus);
        }
        running.erase(it);
        break;
      }
      case EventKind::kGateDecision: {
        std::ostringstream line;
        line << "{\"name\":\"gate " << (e.open ? "open" : "closed") << " k="
             << e.value
             << "\",\"cat\":\"gate\",\"ph\":\"i\",\"s\":\"p\",\"pid\":"
             << kSchedulerPid << ",\"tid\":0,\"ts\":" << e.time * kUsPerSecond
             << ",\"args\":{\"open\":" << (e.open ? "true" : "false")
             << ",\"k\":" << e.value << ",\"wall_time\":";
        if (e.aux_time >= kTimeInfinity) {
          line << "null";
        } else {
          line << e.aux_time;
        }
        line << "}}";
        lines.push_back(line.str());
        break;
      }
      case EventKind::kFairShareRecompute: {
        std::ostringstream line;
        line << "{\"name\":\"queue length\",\"ph\":\"C\",\"pid\":"
             << kSchedulerPid << ",\"ts\":" << e.time * kUsPerSecond
             << ",\"args\":{\"waiting\":" << e.value << "}}";
        lines.push_back(line.str());
        break;
      }
      case EventKind::kDowntimeBegin: {
        std::ostringstream line;
        line << "{\"name\":\"downtime\",\"cat\":\"downtime\",\"ph\":\"X\","
                "\"pid\":"
             << kSchedulerPid << ",\"tid\":1,\"ts\":" << e.time * kUsPerSecond
             << ",\"dur\":" << (e.aux_time - e.time) * kUsPerSecond << "}";
        lines.push_back(line.str());
        break;
      }
      case EventKind::kMachineCrash:
      case EventKind::kNodeFailure: {
        std::ostringstream line;
        line << "{\"name\":\"" << kind_name(e.kind)
             << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":"
             << kSchedulerPid << ",\"tid\":2,\"ts\":" << e.time * kUsPerSecond
             << ",\"args\":{\"cpus\":" << e.cpus << ",\"repair\":" << e.aux_time
             << ",\"killed\":" << e.value << "}}";
        lines.push_back(line.str());
        break;
      }
      default:
        break;  // submits, reservations, downtime ends: JSONL-only detail
    }
  }
  // Jobs still running when the trace ends render up to the last event.
  for (const auto& [id, r] : running) emit_job(id, r, last_time, false);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kMachinePid
      << ",\"args\":{\"name\":\"" << json_escape(options.machine_name)
      << "\"}}";
  out << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSchedulerPid
      << ",\"args\":{\"name\":\"scheduler\"}}";
  out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kSchedulerPid
      << ",\"tid\":0,\"args\":{\"name\":\"gate\"}}";
  out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kSchedulerPid
      << ",\"tid\":1,\"args\":{\"name\":\"downtime\"}}";
  for (const int offset : used_offsets) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kMachinePid
        << ",\"tid\":" << offset << ",\"args\":{\"name\":\"cpu " << offset
        << "\"}}";
  }
  for (const std::string& line : lines) out << ",\n" << line;
  out << "\n]}\n";
}

void write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_chrome_trace(out, tracer, options);
}

std::vector<SummaryField> summary_fields(const TraceSummary& s) {
  // Pinned column order of counters.csv: new fields append at the end so
  // existing consumers keep their offsets.  Wall-clock (`*_us`) timers are
  // flagged — they never participate in determinism comparisons.
  return {
      {"events_recorded", s.events_recorded, false},
      {"events_dropped", s.events_dropped, false},
      {"engine_events_drained", s.engine_events_drained, false},
      {"engine_timesteps", s.engine_timesteps, false},
      {"sched_passes", s.sched_passes, false},
      {"sched_pass_us_total", s.sched_pass_us_total, true},
      {"sched_pass_us_max", s.sched_pass_us_max, true},
      {"backfill_scans", s.backfill_scans, false},
      {"reservations_made", s.reservations_made, false},
      {"reservations_honored", s.reservations_honored, false},
      {"reservations_violated", s.reservations_violated, false},
      {"gate_decisions", s.gate_decisions, false},
      {"gate_open", s.gate_open, false},
      {"gate_closed", s.gate_closed, false},
      {"interstitial_submitted", s.interstitial_submitted, false},
      {"interstitial_rejected_by_gate", s.interstitial_rejected_by_gate,
       false},
      {"interstitial_killed", s.interstitial_killed, false},
      // Pass-pipeline stage timings (one slot per sched::StageKind).
      {"stage_priority_us", s.stage_us[0], true},
      {"stage_dispatch_us", s.stage_us[1], true},
      {"stage_backfill_us", s.stage_us[2], true},
      {"stage_gate_us", s.stage_us[3], true},
      {"priority_recomputes", s.priority_recomputes, false},
      {"priority_reuses", s.priority_reuses, false},
      {"profile_rebuilds", s.profile_rebuilds, false},
      // Engine event-core gauges (typed event queue).
      {"engine_peak_queue_depth", s.engine_peak_queue_depth, false},
      {"engine_max_timestep_batch", s.engine_max_timestep_batch, false},
      {"engine_events_callback", s.engine_events_callback, false},
      {"engine_events_job_submit", s.engine_events_job_submit, false},
      {"engine_events_job_finish", s.engine_events_job_finish, false},
      {"engine_events_wake", s.engine_events_wake, false},
      {"engine_heap_allocations", s.engine_heap_allocations, false},
      // Fault-injection counters.
      {"faults_injected", s.faults_injected, false},
      {"fault_crashes", s.fault_crashes, false},
      {"fault_node_failures", s.fault_node_failures, false},
      {"fault_killed_native", s.fault_killed_native, false},
      {"fault_killed_interstitial", s.fault_killed_interstitial, false},
      {"fault_cpu_sec_lost", s.fault_cpu_sec_lost, false},
      {"fault_cpu_sec_recovered", s.fault_cpu_sec_recovered, false},
      {"fault_native_resubmits", s.fault_native_resubmits, false},
      {"fault_retries", s.fault_retries, false},
      {"fault_retries_exhausted", s.fault_retries_exhausted, false},
      // Telemetry layer (appended).
      {"stage_setup_us", s.stage_setup_us, true},
      {"engine_events_sample", s.engine_events_sample, false},
      // Typed fault-path events (appended with the calendar-queue core).
      {"engine_events_repair", s.engine_events_repair, false},
      {"engine_events_fault", s.engine_events_fault, false},
      // Grid-port deliveries (appended with the fork-tree sweep engine).
      {"engine_events_grid_arrival", s.engine_events_grid_arrival, false},
  };
}

void write_counters_csv(const std::string& path,
                        const TraceSummary& summary) {
  const auto fields = summary_fields(summary);
  std::vector<std::string> names;
  std::vector<std::string> values;
  names.reserve(fields.size());
  values.reserve(fields.size());
  for (const SummaryField& f : fields) {
    names.emplace_back(f.name);
    values.push_back(std::to_string(f.value));
  }
  CsvWriter csv(path);
  csv.header(names);
  csv.row(values);
}

}  // namespace istc::trace
