#include "trace/tracer.hpp"

#include <algorithm>

namespace istc::trace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kJobSubmit: return "job_submit";
    case EventKind::kJobStart: return "job_start";
    case EventKind::kJobFinish: return "job_finish";
    case EventKind::kJobKill: return "job_kill";
    case EventKind::kReservationMade: return "reservation_made";
    case EventKind::kReservationHonored: return "reservation_honored";
    case EventKind::kReservationViolated: return "reservation_violated";
    case EventKind::kGateDecision: return "gate_decision";
    case EventKind::kFairShareRecompute: return "fairshare_recompute";
    case EventKind::kDowntimeBegin: return "downtime_begin";
    case EventKind::kDowntimeEnd: return "downtime_end";
    case EventKind::kMachineCrash: return "machine_crash";
    case EventKind::kNodeFailure: return "node_failure";
    case EventKind::kFaultRepair: return "fault_repair";
  }
  return "unknown";
}

Tracer::Tracer(TraceMode mode, std::size_t max_events)
    : mode_(mode), max_events_(max_events) {
  if (events_enabled()) {
    chunks_.push_back(std::make_unique<TraceEvent[]>(kChunkEvents));
  }
}

void Tracer::record(TraceEvent event) {
  if (!events_enabled()) return;
  if (size_ >= max_events_) {
    ++dropped_;
    ++next_seq_;  // the key stays dense even across drops
    return;
  }
  const std::size_t chunk = size_ / kChunkEvents;
  if (chunk == chunks_.size()) {
    chunks_.push_back(std::make_unique<TraceEvent[]>(kChunkEvents));
  }
  event.seq = next_seq_++;
  chunks_[chunk][size_ % kChunkEvents] = event;
  ++size_;
}

TraceSummary Tracer::summary() const {
  TraceSummary s = counters_;
  s.events_recorded = size_;
  s.events_dropped = dropped_;
  return s;
}

std::vector<TraceEvent> Tracer::sorted_events() const {
  std::vector<TraceEvent> events;
  events.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) events.push_back((*this)[i]);
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  return events;
}

void Tracer::clear() {
  size_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
  if (chunks_.size() > 1) chunks_.resize(1);
  counters_ = TraceSummary{};
}

}  // namespace istc::trace
