#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/summary.hpp"
#include "trace/tracer.hpp"

/// \file export.hpp
/// Trace serialization: JSONL (one event per line, machine-greppable),
/// Chrome trace-event JSON (load in chrome://tracing or Perfetto: jobs as
/// duration events on per-CPU-block tracks, gate decisions as instants),
/// and a flat CSV counter dump via util/csv.
///
/// All exporters write events in (time, seq) order with fixed field order,
/// so equal traces serialize to byte-identical output.

namespace istc::trace {

/// One JSON object per line; field order fixed per kind (see event.hpp).
void write_jsonl(std::ostream& out, const Tracer& tracer);
void write_jsonl_file(const std::string& path, const Tracer& tracer);

struct ChromeTraceOptions {
  std::string machine_name = "machine";
  /// Total CPUs; used to lay jobs out on contiguous CPU-block tracks.
  int total_cpus = 0;
};

/// Chrome trace-event format (the chrome://tracing JSON flavour).  Jobs
/// become "X" complete events whose track (tid) is the first CPU of a
/// contiguous block assigned first-fit at export time; gate decisions and
/// scheduler housekeeping become instant events on a scheduler process.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const ChromeTraceOptions& options);
void write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const ChromeTraceOptions& options);

/// One named TraceSummary field.  `wall_clock` marks host-time (`*_us`)
/// measurements, which are not deterministic across runs; everything else
/// is sim-time derived and byte-stable for a given seed.
struct SummaryField {
  const char* name;
  std::uint64_t value;
  bool wall_clock;
};

/// Every TraceSummary counter as an ordered (name, value, wall_clock)
/// table.  This is the single enumeration both the counters.csv exporter
/// and the metrics registry bridge consume, so a counter added here shows
/// up everywhere at once.  Order is pinned: new fields append at the end,
/// so existing CSV consumers keep their column offsets.
std::vector<SummaryField> summary_fields(const TraceSummary& summary);

/// Counter dump: one header row, one value row (util/csv formatting);
/// columns are summary_fields() in order.
void write_counters_csv(const std::string& path, const TraceSummary& summary);

}  // namespace istc::trace
