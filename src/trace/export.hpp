#pragma once

#include <iosfwd>
#include <string>

#include "trace/summary.hpp"
#include "trace/tracer.hpp"

/// \file export.hpp
/// Trace serialization: JSONL (one event per line, machine-greppable),
/// Chrome trace-event JSON (load in chrome://tracing or Perfetto: jobs as
/// duration events on per-CPU-block tracks, gate decisions as instants),
/// and a flat CSV counter dump via util/csv.
///
/// All exporters write events in (time, seq) order with fixed field order,
/// so equal traces serialize to byte-identical output.

namespace istc::trace {

/// One JSON object per line; field order fixed per kind (see event.hpp).
void write_jsonl(std::ostream& out, const Tracer& tracer);
void write_jsonl_file(const std::string& path, const Tracer& tracer);

struct ChromeTraceOptions {
  std::string machine_name = "machine";
  /// Total CPUs; used to lay jobs out on contiguous CPU-block tracks.
  int total_cpus = 0;
};

/// Chrome trace-event format (the chrome://tracing JSON flavour).  Jobs
/// become "X" complete events whose track (tid) is the first CPU of a
/// contiguous block assigned first-fit at export time; gate decisions and
/// scheduler housekeeping become instant events on a scheduler process.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const ChromeTraceOptions& options);
void write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const ChromeTraceOptions& options);

/// Counter dump: one header row, one value row (util/csv formatting).
void write_counters_csv(const std::string& path, const TraceSummary& summary);

}  // namespace istc::trace
