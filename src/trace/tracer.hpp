#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "trace/event.hpp"
#include "trace/summary.hpp"

/// \file tracer.hpp
/// The tracing core: a chunked, preallocated event buffer plus the
/// TraceSummary counters.  Hooks throughout sim/sched/core hold a
/// `Tracer*` that is null by default, so an untraced run pays one branch
/// per hook; `ISTC_TRACING_ENABLED=0` compiles even that out.
///
/// Determinism contract: `record()` stamps each event with a monotone
/// sequence number, so the (time, seq) key mirrors the engine's event heap
/// and equal-seed runs yield identical streams.  Nothing in the tracer
/// feeds back into the simulation — tracing observes, never perturbs.

// CMake's ISTC_TRACING option defines this to 0 to compile tracing out;
// the hook macros below then evaluate to constant false / no-ops.
#ifndef ISTC_TRACING_ENABLED
#define ISTC_TRACING_ENABLED 1
#endif

#if ISTC_TRACING_ENABLED
/// True when `p` (a Tracer*) wants full event records.
#define ISTC_TRACE_EVENTS_ON(p) ((p) != nullptr && (p)->events_enabled())
/// True when `p` wants counters (full or counters-only mode).
#define ISTC_TRACE_COUNTERS_ON(p) ((p) != nullptr && (p)->counters_enabled())
#else
#define ISTC_TRACE_EVENTS_ON(p) false
#define ISTC_TRACE_COUNTERS_ON(p) false
#endif

namespace istc::trace {

enum class TraceMode : std::uint8_t {
  kDisabled,      ///< attached but inert (overhead measurement baseline)
  kCountersOnly,  ///< summary counters/timers only, no event records
  kFull,          ///< counters plus the event stream
};

class Tracer {
 public:
  /// Events per allocation chunk; chunks are never moved once allocated,
  /// so record() is pointer-bump cheap and iteration is stable.
  static constexpr std::size_t kChunkEvents = 1u << 16;

  /// Default cap: 1M events (~48 MB).  Past the cap events are counted in
  /// `events_dropped` but not stored — a trace that silently truncates
  /// must say so.
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  explicit Tracer(TraceMode mode = TraceMode::kFull,
                  std::size_t max_events = kDefaultMaxEvents);

  TraceMode mode() const { return mode_; }
  bool events_enabled() const { return mode_ == TraceMode::kFull; }
  bool counters_enabled() const { return mode_ != TraceMode::kDisabled; }

  /// Append one event (fields other than `seq` filled by the caller).
  /// No-op unless events are enabled.
  void record(TraceEvent event);

  /// Mutable counter block for hook sites; cheap direct increments.
  TraceSummary& counters() { return counters_; }
  const TraceSummary& counters() const { return counters_; }

  /// Counter snapshot with the event-volume fields filled in.
  TraceSummary summary() const;

  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }
  const TraceEvent& operator[](std::size_t i) const {
    return chunks_[i / kChunkEvents][i % kChunkEvents];
  }

  /// Events sorted by the (time, seq) key.  Hooks record in causal order,
  /// but statically-known futures (the downtime calendar) are recorded up
  /// front, so exporters sort before writing.
  std::vector<TraceEvent> sorted_events() const;

  /// Forget all recorded events and counters; keeps the first chunk.
  void clear();

 private:
  TraceMode mode_;
  std::size_t max_events_;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
  TraceSummary counters_;
};

/// RAII wall-clock timer for one scheduler pass: on destruction adds the
/// elapsed µs to the summary's pass counters.  Constructed with a null
/// tracer (or counters disabled) it does nothing, including skipping the
/// clock reads.
class ScopedPassTimer {
 public:
  explicit ScopedPassTimer(Tracer* tracer)
      : tracer_(ISTC_TRACE_COUNTERS_ON(tracer) ? tracer : nullptr) {
    if (tracer_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }

  ScopedPassTimer(const ScopedPassTimer&) = delete;
  ScopedPassTimer& operator=(const ScopedPassTimer&) = delete;

  ~ScopedPassTimer() {
    if (tracer_ == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    TraceSummary& c = tracer_->counters();
    ++c.sched_passes;
    c.sched_pass_us_total += static_cast<std::uint64_t>(us);
    c.sched_pass_us_max =
        std::max(c.sched_pass_us_max, static_cast<std::uint64_t>(us));
  }

 private:
  Tracer* tracer_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace istc::trace
