#include "metrics/histogram.hpp"

#include "util/assert.hpp"

namespace istc::metrics {

std::string bucket_label(int k) {
  ISTC_EXPECTS(k >= 0 && k < Log2Histogram::kBuckets);
  if (k == 0) return "0";
  return "[" + std::to_string(Log2Histogram::bucket_lo(k)) + "," +
         std::to_string(Log2Histogram::bucket_hi(k)) + ")";
}

}  // namespace istc::metrics
