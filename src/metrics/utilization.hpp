#pragma once

#include <span>
#include <vector>

#include "sched/record.hpp"
#include "util/time.hpp"

/// \file utilization.hpp
/// Machine utilization from job records.  The denominator is always the
/// full machine (N CPUs x wall time), so outages depress utilization — the
/// paper's convention ("94% including outages").

namespace istc::metrics {

/// Which jobs count toward the busy numerator.
enum class JobFilter { kAll, kNativeOnly, kInterstitialOnly };

bool passes(const sched::JobRecord& r, JobFilter f);

/// Busy CPU-seconds contributed by records inside [lo, hi) (occupancy is
/// clipped to the window).
double busy_cpu_seconds(std::span<const sched::JobRecord> records,
                        SimTime lo, SimTime hi, JobFilter filter);

/// Average utilization over [lo, hi).
double average_utilization(std::span<const sched::JobRecord> records,
                           int machine_cpus, SimTime lo, SimTime hi,
                           JobFilter filter = JobFilter::kAll);

/// Per-bucket utilization series over [0, span); the Fig. 4 time series.
std::vector<double> utilization_series(
    std::span<const sched::JobRecord> records, int machine_cpus, SimTime span,
    Seconds bucket = kSecondsPerHour, JobFilter filter = JobFilter::kAll);

/// Instantaneous busy CPUs as a step function: (time, busy) breakpoints,
/// starting at (0, 0).  Used by the omniscient packer to derive free
/// capacity from a native-only run.
std::vector<std::pair<SimTime, int>> busy_step_function(
    std::span<const sched::JobRecord> records, JobFilter filter);

}  // namespace istc::metrics
