#include "metrics/sampler.hpp"

#include <algorithm>

#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace istc::metrics {

const std::array<const char*, SimSampler::kNumSeries>& SimSampler::columns() {
  static const std::array<const char*, kNumSeries> kColumns = {
      "time_s",
      "busy_native_cpus",
      "busy_interstitial_cpus",
      "free_cpus",
      "offline_cpus",
      "queue_native",
      "running_native",
      "running_interstitial",
      "head_backfill_wall_s",
      "interstice_cpus",
      "interstice_hold_s",
      "profile_steps",
      "native_cpu_sec",
      "interstitial_cpu_sec",
      "dropped_before",
  };
  return kColumns;
}

SimSampler::SimSampler(sim::Engine& engine,
                       const sched::BatchScheduler& sched, SamplerConfig cfg)
    : engine_(engine), sched_(sched), cfg_(cfg) {
  ISTC_EXPECTS(cfg_.interval > 0);
  ISTC_EXPECTS(cfg_.max_samples > 0);
  // An unbounded sampler would re-arm forever and the engine would never
  // drain; callers must bound it (RunMetrics::attach uses the site span).
  ISTC_EXPECTS(cfg_.stop != kTimeInfinity);
  ISTC_EXPECTS(cfg_.stop > cfg_.start);
  rows_.reserve(std::min<std::size_t>(
      cfg_.max_samples,
      static_cast<std::size_t>((cfg_.stop - cfg_.start) / cfg_.interval) + 2));
  engine_.set_sample_hook([this](SimTime now) { tick(now); });
  const SimTime first = cfg_.start + cfg_.interval;
  engine_.schedule_sample(std::min(first, cfg_.stop));
}

void SimSampler::tick(SimTime now) {
  const sched::SchedulerProbe p = sched_.probe();
  ISTC_ASSERT(p.now == now);
  if (rows_.size() < cfg_.max_samples) {
    Row row;
    row[0] = now;
    row[1] = p.busy_native_cpus;
    row[2] = p.busy_interstitial_cpus;
    row[3] = p.free_cpus;
    row[4] = p.offline_cpus;
    row[5] = static_cast<std::int64_t>(p.queue_native);
    row[6] = static_cast<std::int64_t>(p.running_native);
    row[7] = static_cast<std::int64_t>(p.running_interstitial);
    row[8] = p.head_backfill_wall;
    row[9] = p.interstice_cpus;
    row[10] = p.interstice_hold;
    row[11] = static_cast<std::int64_t>(p.profile_steps);
    row[12] = static_cast<std::int64_t>(p.native_cpu_sec -
                                        last_native_cpu_sec_);
    row[13] = static_cast<std::int64_t>(p.interstitial_cpu_sec -
                                        last_interstitial_cpu_sec_);
    row[14] = static_cast<std::int64_t>(dropped_);
    rows_.push_back(row);
  } else {
    ++dropped_;
  }
  last_native_cpu_sec_ = p.native_cpu_sec;
  last_interstitial_cpu_sec_ = p.interstitial_cpu_sec;
  // Re-arm: next grid tick, or one final partial tick exactly at stop.
  const SimTime next = now + cfg_.interval;
  if (next <= cfg_.stop) {
    engine_.schedule_sample(next);
  } else if (now < cfg_.stop) {
    engine_.schedule_sample(cfg_.stop);
  }
}

}  // namespace istc::metrics
