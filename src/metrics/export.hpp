#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "sched/record.hpp"

/// \file export.hpp
/// Export simulation results for external analysis.
///
/// Two formats: Standard Workload Format (the community's trace format,
/// with the wait-time field filled in so the result reads as a *completed*
/// trace), and CSV for direct plotting.

namespace istc::metrics {

/// Write records as an SWF trace: submit (2), wait (3), run (4), procs
/// (5/8), estimate (9), status 1, user (12), group (13).  Interstitial
/// jobs carry queue number 2 (field 15), native jobs 1, so downstream
/// tools can split the streams.
void write_swf_records(std::ostream& out,
                       std::span<const sched::JobRecord> records,
                       const std::string& header_comment = {});

void write_swf_records_file(const std::string& path,
                            std::span<const sched::JobRecord> records,
                            const std::string& header_comment = {});

/// CSV with one row per record:
/// id,class,user,group,cpus,submit,start,end,runtime,estimate,wait,ef
void write_records_csv(const std::string& path,
                       std::span<const sched::JobRecord> records);

}  // namespace istc::metrics
