#include "metrics/export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace istc::metrics {

void write_swf_records(std::ostream& out,
                       std::span<const sched::JobRecord> records,
                       const std::string& header_comment) {
  if (!header_comment.empty()) {
    std::istringstream lines(header_comment);
    std::string l;
    while (std::getline(lines, l)) out << "; " << l << '\n';
  }
  std::uint64_t seq = 0;
  for (const auto& r : records) {
    const int queue = r.interstitial() ? 2 : 1;
    out << ++seq << ' ' << r.job.submit << ' ' << r.wait() << ' '
        << r.job.runtime << ' ' << r.job.cpus << ' ' << -1 << ' ' << -1
        << ' ' << r.job.cpus << ' ' << r.job.estimate << ' ' << -1 << ' '
        << 1 << ' ' << r.job.user << ' ' << r.job.group << ' ' << -1 << ' '
        << queue << ' ' << -1 << ' ' << -1 << ' ' << -1 << '\n';
  }
}

void write_swf_records_file(const std::string& path,
                            std::span<const sched::JobRecord> records,
                            const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_swf_records_file: cannot open " + path);
  }
  write_swf_records(out, records, header_comment);
}

void write_records_csv(const std::string& path,
                       std::span<const sched::JobRecord> records) {
  CsvWriter csv(path);
  csv.header({"id", "class", "user", "group", "cpus", "submit", "start",
              "end", "runtime", "estimate", "wait", "ef"});
  for (const auto& r : records) {
    csv.row({std::to_string(r.job.id),
             r.interstitial() ? "interstitial" : "native",
             std::to_string(r.job.user), std::to_string(r.job.group),
             std::to_string(r.job.cpus), std::to_string(r.job.submit),
             std::to_string(r.start), std::to_string(r.end),
             std::to_string(r.job.runtime), std::to_string(r.job.estimate),
             std::to_string(r.wait()),
             CsvWriter::escape(Table::num(r.expansion_factor(), 4))});
  }
}

}  // namespace istc::metrics
