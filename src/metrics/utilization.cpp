#include "metrics/utilization.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace istc::metrics {

bool passes(const sched::JobRecord& r, JobFilter f) {
  switch (f) {
    case JobFilter::kAll: return true;
    case JobFilter::kNativeOnly: return !r.interstitial();
    case JobFilter::kInterstitialOnly: return r.interstitial();
  }
  return false;
}

double busy_cpu_seconds(std::span<const sched::JobRecord> records, SimTime lo,
                        SimTime hi, JobFilter filter) {
  ISTC_EXPECTS(hi > lo);
  double busy = 0;
  for (const auto& r : records) {
    if (!passes(r, filter)) continue;
    const SimTime a = std::max(lo, r.start);
    const SimTime b = std::min(hi, r.end);
    if (b > a) {
      busy += static_cast<double>(r.job.cpus) * static_cast<double>(b - a);
    }
  }
  return busy;
}

double average_utilization(std::span<const sched::JobRecord> records,
                           int machine_cpus, SimTime lo, SimTime hi,
                           JobFilter filter) {
  ISTC_EXPECTS(machine_cpus > 0);
  return busy_cpu_seconds(records, lo, hi, filter) /
         (static_cast<double>(machine_cpus) * static_cast<double>(hi - lo));
}

std::vector<double> utilization_series(
    std::span<const sched::JobRecord> records, int machine_cpus, SimTime span,
    Seconds bucket, JobFilter filter) {
  ISTC_EXPECTS(machine_cpus > 0);
  ISTC_EXPECTS(bucket > 0);
  ISTC_EXPECTS(span > 0);
  const auto nbuckets = static_cast<std::size_t>((span + bucket - 1) / bucket);
  std::vector<double> busy(nbuckets, 0.0);
  for (const auto& r : records) {
    if (!passes(r, filter)) continue;
    const SimTime a = std::max<SimTime>(0, r.start);
    const SimTime b = std::min(span, r.end);
    if (b <= a) continue;
    auto first = static_cast<std::size_t>(a / bucket);
    const auto last = static_cast<std::size_t>((b - 1) / bucket);
    for (std::size_t k = first; k <= last && k < nbuckets; ++k) {
      const SimTime blo = static_cast<SimTime>(k) * bucket;
      const SimTime bhi = blo + bucket;
      const SimTime ov =
          std::min(b, bhi) - std::max(a, blo);
      busy[k] += static_cast<double>(r.job.cpus) * static_cast<double>(ov);
    }
  }
  const double denom =
      static_cast<double>(machine_cpus) * static_cast<double>(bucket);
  for (auto& v : busy) v /= denom;
  return busy;
}

std::vector<std::pair<SimTime, int>> busy_step_function(
    std::span<const sched::JobRecord> records, JobFilter filter) {
  std::map<SimTime, int> delta;
  for (const auto& r : records) {
    if (!passes(r, filter)) continue;
    if (r.end <= r.start) continue;
    delta[r.start] += r.job.cpus;
    delta[r.end] -= r.job.cpus;
  }
  std::vector<std::pair<SimTime, int>> steps;
  steps.reserve(delta.size() + 1);
  steps.emplace_back(0, 0);
  int busy = 0;
  for (const auto& [t, d] : delta) {
    busy += d;
    ISTC_ASSERT(busy >= 0);
    if (!steps.empty() && steps.back().first == t) {
      steps.back().second = busy;
    } else {
      steps.emplace_back(t, busy);
    }
  }
  ISTC_ENSURES(busy == 0);
  return steps;
}

}  // namespace istc::metrics
