#pragma once

#include <bit>
#include <cstdint>
#include <string>

/// \file histogram.hpp
/// Log-bucketed histogram with power-of-two buckets: allocation-free,
/// integer-only, deterministic.  Bucket 0 holds the value 0; bucket k >= 1
/// holds [2^(k-1), 2^k), so any uint64 lands somewhere and the index is a
/// single std::bit_width.  This replaces the bespoke per-bench binning in
/// the wait-histogram figures with one shared, tested implementation.

namespace istc::metrics {

class Log2Histogram {
 public:
  /// Bucket 0 plus one bucket per possible bit width (1..64).
  static constexpr int kBuckets = 65;

  /// Which bucket a value lands in: 0 -> 0, v -> bit_width(v) otherwise.
  static constexpr int bucket_index(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<int>(std::bit_width(v));
  }

  /// Inclusive lower edge of bucket k (0 for buckets 0 and 1's edge is 1).
  static constexpr std::uint64_t bucket_lo(int k) {
    return k == 0 ? 0 : std::uint64_t{1} << (k - 1);
  }

  /// Exclusive upper edge of bucket k.  Bucket 64's true edge (2^64) does
  /// not fit in a uint64; it is clamped to UINT64_MAX, whose value the
  /// bucket does contain.
  static constexpr std::uint64_t bucket_hi(int k) {
    if (k == 0) return 1;
    if (k >= 64) return ~std::uint64_t{0};
    return std::uint64_t{1} << k;
  }

  void add(std::uint64_t v) {
    ++counts_[bucket_index(v)];
    ++total_;
    sum_ += v;
  }

  std::uint64_t count(int k) const { return counts_[k]; }
  std::uint64_t total() const { return total_; }
  /// Sum of observed values (wraps past 2^64 like any uint64 — callers
  /// observe bounded sim-time quantities for which that never triggers).
  std::uint64_t sum() const { return sum_; }

  /// Absorb another histogram's counts — the cross-thread aggregation
  /// primitive (src/obs merges per-thread stage profiles through this).
  void merge(const Log2Histogram& other) {
    for (int k = 0; k < kBuckets; ++k) counts_[k] += other.counts_[k];
    total_ += other.total_;
    sum_ += other.sum_;
  }

  /// Approximate quantile by linear interpolation inside the log2 bucket
  /// holding rank q*(total-1).  Resolution is the bucket width (a factor
  /// of two) — the HDR-histogram trade: O(1) memory, bounded relative
  /// error.  Monotone in q by construction (interpolation is linear
  /// within a bucket and bucket ranges are disjoint and ordered).
  /// Returns 0 for an empty histogram; q is clamped to [0, 1].
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double rank = q * static_cast<double>(total_ - 1);
    std::uint64_t cum = 0;
    for (int k = 0; k < kBuckets; ++k) {
      const std::uint64_t c = counts_[k];
      if (c == 0) continue;
      if (rank < static_cast<double>(cum + c)) {
        if (k == 0) return 0.0;  // bucket 0 holds only the value 0
        const double lo = static_cast<double>(bucket_lo(k));
        const double hi = static_cast<double>(bucket_hi(k));
        const double within =
            (rank - static_cast<double>(cum) + 0.5) / static_cast<double>(c);
        return lo + within * (hi - lo);
      }
      cum += c;
    }
    return static_cast<double>(bucket_hi(kBuckets - 1));
  }

  /// First / last bucket with a nonzero count; -1 when empty.  Exporters
  /// emit only this range so a 65-bucket histogram stays compact.
  int first_nonzero() const {
    for (int k = 0; k < kBuckets; ++k) {
      if (counts_[k] != 0) return k;
    }
    return -1;
  }
  int last_nonzero() const {
    for (int k = kBuckets - 1; k >= 0; --k) {
      if (counts_[k] != 0) return k;
    }
    return -1;
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Human-readable bucket range, e.g. "0", "[1,2)", "[2,4)"; for tables.
std::string bucket_label(int k);

}  // namespace istc::metrics
