#include "metrics/waits.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace istc::metrics {

WaitStats wait_stats(std::span<const sched::JobRecord> records) {
  std::vector<double> waits, efs;
  for (const auto& r : records) {
    if (r.interstitial()) continue;
    waits.push_back(static_cast<double>(r.wait()));
    efs.push_back(r.expansion_factor());
  }
  WaitStats s;
  s.jobs = waits.size();
  if (waits.empty()) return s;
  const Summary ws(std::move(waits));
  const Summary es(std::move(efs));
  s.avg_wait_s = ws.mean();
  s.median_wait_s = ws.median();
  s.avg_ef = es.mean();
  s.median_ef = es.median();
  return s;
}

std::vector<sched::JobRecord> largest_native(
    std::span<const sched::JobRecord> records, double fraction) {
  std::vector<sched::JobRecord> natives;
  for (const auto& r : records) {
    if (!r.interstitial()) natives.push_back(r);
  }
  std::sort(natives.begin(), natives.end(),
            [](const sched::JobRecord& a, const sched::JobRecord& b) {
              return a.cpu_seconds() > b.cpu_seconds();
            });
  const auto keep = static_cast<std::size_t>(
      fraction * static_cast<double>(natives.size()) + 0.5);
  natives.resize(std::max<std::size_t>(1, std::min(keep, natives.size())));
  return natives;
}

std::vector<double> native_waits(std::span<const sched::JobRecord> records) {
  std::vector<double> waits;
  for (const auto& r : records) {
    if (!r.interstitial()) waits.push_back(static_cast<double>(r.wait()));
  }
  return waits;
}

Log10Histogram wait_histogram(std::span<const sched::JobRecord> records,
                              std::size_t decades) {
  Log10Histogram h(decades);
  h.add_all(native_waits(records));
  return h;
}

SlowdownStats bounded_slowdown(std::span<const sched::JobRecord> records,
                               Seconds tau) {
  std::vector<double> slow;
  for (const auto& r : records) {
    if (r.interstitial()) continue;
    const double denom =
        static_cast<double>(std::max(r.job.runtime, tau));
    const double s =
        static_cast<double>(r.wait() + r.job.runtime) / denom;
    slow.push_back(std::max(1.0, s));
  }
  SlowdownStats out;
  out.jobs = slow.size();
  if (slow.empty()) return out;
  const Summary summary(std::move(slow));
  out.avg = summary.mean();
  out.median = summary.median();
  out.p95 = summary.quantile(0.95);
  return out;
}

std::vector<double> queue_length_series(
    std::span<const sched::JobRecord> records, SimTime span, Seconds bucket) {
  const auto nbuckets =
      static_cast<std::size_t>((span + bucket - 1) / bucket);
  std::vector<double> waiting_seconds(nbuckets, 0.0);
  for (const auto& r : records) {
    if (r.interstitial()) continue;
    const SimTime a = std::max<SimTime>(0, r.job.submit);
    const SimTime b = std::min(span, r.start);
    if (b <= a) continue;
    const auto first = static_cast<std::size_t>(a / bucket);
    const auto last = static_cast<std::size_t>((b - 1) / bucket);
    for (std::size_t k = first; k <= last && k < nbuckets; ++k) {
      const SimTime blo = static_cast<SimTime>(k) * bucket;
      const SimTime bhi = blo + bucket;
      waiting_seconds[k] +=
          static_cast<double>(std::min(b, bhi) - std::max(a, blo));
    }
  }
  for (auto& v : waiting_seconds) v /= static_cast<double>(bucket);
  return waiting_seconds;
}

}  // namespace istc::metrics
