#include "metrics/makespan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace istc::metrics {

std::vector<SimTime> interstitial_completions(
    std::span<const sched::JobRecord> records) {
  std::vector<SimTime> out;
  for (const auto& r : records) {
    if (r.interstitial()) out.push_back(r.end);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Seconds direct_makespan(std::span<const sched::JobRecord> records,
                        SimTime project_start) {
  SimTime last = -1;
  for (const auto& r : records) {
    if (r.interstitial()) last = std::max(last, r.end);
  }
  ISTC_EXPECTS(last >= project_start);
  return last - project_start;
}

std::vector<double> sampled_makespans(std::span<const SimTime> completions,
                                      std::size_t njobs,
                                      std::size_t nsamples,
                                      SimTime sample_horizon, Rng& rng) {
  ISTC_EXPECTS(njobs > 0);
  ISTC_EXPECTS(nsamples > 0);
  ISTC_EXPECTS(sample_horizon > 0);
  ISTC_EXPECTS(std::is_sorted(completions.begin(), completions.end()));

  std::vector<double> out;
  // Infeasible on this log: the paper reports such cells as
  // "n/a (makespan >= log time)"; callers treat an empty result the same.
  if (completions.size() < njobs) return out;

  out.reserve(nsamples);
  const int max_attempts = 200;
  for (std::size_t s = 0; s < nsamples; ++s) {
    bool ok = false;
    for (int attempt = 0; attempt < max_attempts && !ok; ++attempt) {
      const auto t1 = static_cast<SimTime>(
          rng.below(static_cast<std::uint64_t>(sample_horizon)));
      const auto it =
          std::upper_bound(completions.begin(), completions.end(), t1);
      const auto first = static_cast<std::size_t>(it - completions.begin());
      if (first + njobs > completions.size()) continue;  // runs off the log
      const SimTime t2 = completions[first + njobs - 1];
      out.push_back(static_cast<double>(t2 - t1));
      ok = true;
    }
    if (!ok) break;  // virtually no feasible start time remains
  }
  return out;
}

}  // namespace istc::metrics
