#include "metrics/registry.hpp"

#include "util/assert.hpp"

namespace istc::metrics {

namespace {

// Registration-time linear scan: instrument counts are tens, registration
// happens once per run, and the flat vector keeps iteration ordered and
// the hot path a raw index.
template <class Vec>
std::int64_t find_index(const Vec& v, std::string_view name) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].name == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

}  // namespace

CounterId Registry::counter(std::string_view name, Determinism det) {
  if (const auto i = find_index(counters_, name); i >= 0) {
    ISTC_EXPECTS(counters_[static_cast<std::size_t>(i)].det == det);
    return CounterId{static_cast<std::uint32_t>(i)};
  }
  counters_.push_back(Counter{std::string(name), det, 0});
  return CounterId{static_cast<std::uint32_t>(counters_.size() - 1)};
}

GaugeId Registry::gauge(std::string_view name, Determinism det) {
  if (const auto i = find_index(gauges_, name); i >= 0) {
    ISTC_EXPECTS(gauges_[static_cast<std::size_t>(i)].det == det);
    return GaugeId{static_cast<std::uint32_t>(i)};
  }
  gauges_.push_back(Gauge{std::string(name), det, 0});
  return GaugeId{static_cast<std::uint32_t>(gauges_.size() - 1)};
}

HistogramId Registry::histogram(std::string_view name, Determinism det) {
  if (const auto i = find_index(histograms_, name); i >= 0) {
    ISTC_EXPECTS(histograms_[static_cast<std::size_t>(i)].det == det);
    return HistogramId{static_cast<std::uint32_t>(i)};
  }
  histograms_.push_back(NamedHistogram{std::string(name), det, {}});
  return HistogramId{static_cast<std::uint32_t>(histograms_.size() - 1)};
}

const Registry::Counter* Registry::find_counter(std::string_view name) const {
  const auto i = find_index(counters_, name);
  return i >= 0 ? &counters_[static_cast<std::size_t>(i)] : nullptr;
}

const Registry::Gauge* Registry::find_gauge(std::string_view name) const {
  const auto i = find_index(gauges_, name);
  return i >= 0 ? &gauges_[static_cast<std::size_t>(i)] : nullptr;
}

const Registry::NamedHistogram* Registry::find_histogram(
    std::string_view name) const {
  const auto i = find_index(histograms_, name);
  return i >= 0 ? &histograms_[static_cast<std::size_t>(i)] : nullptr;
}

}  // namespace istc::metrics
