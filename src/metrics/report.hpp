#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"
#include "sched/record.hpp"

/// \file report.hpp
/// RunMetrics — the per-run telemetry bundle — and the unified RunReport.
///
/// A RunMetrics owns a Registry (completion histograms + job counters),
/// optionally a SimSampler (when the config's interval > 0), and a bridge
/// that copies every TraceSummary counter into the registry after the run.
/// write_run_report() merges all of it into one JSON document; the
/// deterministic sections are byte-identical across equal-seed runs, and
/// wall-clock timers live in an explicitly separate section that
/// ReportOptions can drop entirely.

namespace istc::sim {
class Engine;
}
namespace istc::sched {
class BatchScheduler;
}

namespace istc::metrics {

/// Integer bounded slowdown in milli-units:
/// max(1000, 1000 * (wait + runtime) / max(runtime, tau)).  Pure int64
/// arithmetic, so histograms of it are exactly reproducible.
std::uint64_t bounded_slowdown_milli(Seconds wait, Seconds runtime,
                                     Seconds tau = 10);

class RunMetrics {
 public:
  /// Instruments are registered up front so two runs configured alike
  /// serialize identically even if one saw no interstitial jobs.
  explicit RunMetrics(SamplerConfig cfg = {});

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// The sampler, or nullptr when sampling is disabled / not attached.
  const SimSampler* sampler() const {
    return sampler_ ? &*sampler_ : nullptr;
  }
  Seconds sample_interval() const { return cfg_.interval; }

  /// Wire into a live run: installs the scheduler start hook (interstice
  /// width at interstitial dispatch) and, when the interval is set, the
  /// sim-time sampler (stop defaults to `span`).  Both observe only —
  /// attaching metrics never perturbs the schedule (pinned by tests).
  void attach(sim::Engine& engine, sched::BatchScheduler& sched, SimTime span);

  /// Fill completion histograms and job counters from a finished run, and
  /// bridge its TraceSummary counters into the registry.
  void ingest(const sched::RunResult& result);

  /// Histogram-only ingestion of a record subset (e.g. the largest-5%
  /// native jobs for the Fig. 6 analysis).
  void ingest_records(std::span<const sched::JobRecord> records);

 private:
  SamplerConfig cfg_;
  Registry registry_;
  HistogramId native_wait_s_;
  HistogramId interstitial_wait_s_;
  HistogramId native_slowdown_milli_;
  HistogramId interstice_cpus_at_dispatch_;
  CounterId jobs_native_completed_;
  CounterId jobs_interstitial_completed_;
  CounterId jobs_killed_;
  std::optional<SimSampler> sampler_;
};

/// RunReport schema identity.  v2 adds a "machines" section (one entry
/// per machine; single-element for solo runs) for grid/federated runs and
/// a "compat" list naming the older schemas whose fields are all still
/// present at their original paths.
inline constexpr const char* kRunReportSchema = "istc.run_report.v2";
inline constexpr const char* kRunReportCompat = "istc.run_report.v1";

struct ReportOptions {
  /// Emit the "wall_clock" section (host-time counters).  OFF yields a
  /// fully deterministic document — the form the determinism tests compare
  /// byte for byte.
  bool include_wall_clock = true;
};

/// The unified RunReport: one JSON document (kRunReportSchema) merging
/// run identity, job totals, deterministic registry counters/gauges,
/// histogram buckets, the sampled time series, a one-element "machines"
/// section (the v2 shape shared with fleet reports), and (optionally) the
/// wall-clock counters.
void write_run_report(std::ostream& out, const sched::RunResult& result,
                      const RunMetrics& metrics,
                      const ReportOptions& options = {});
void write_run_report_file(const std::string& path,
                           const sched::RunResult& result,
                           const RunMetrics& metrics,
                           const ReportOptions& options = {});

/// The sampled series alone, as CSV (header = SimSampler::columns()).
/// No-op with a warning row when the metrics carry no sampler.
void write_series_csv(const std::string& path, const RunMetrics& metrics);

}  // namespace istc::metrics
