#pragma once

#include <span>
#include <vector>

#include "sched/record.hpp"
#include "util/rng.hpp"

/// \file makespan.hpp
/// Interstitial-project makespan extraction.
///
/// Two measurement modes, mirroring the paper:
///  * direct: a single project was injected; makespan = last interstitial
///    completion − project start.
///  * continual sampling (§4.3.1): from one continual run, pick a random
///    start t1 and report the time until N further interstitial jobs have
///    completed.  This substitutes a cheap resample for many full runs.

namespace istc::metrics {

/// Sorted completion times of interstitial records.
std::vector<SimTime> interstitial_completions(
    std::span<const sched::JobRecord> records);

/// Direct makespan of an injected project: last interstitial completion
/// minus `project_start`.  Requires at least one interstitial record.
Seconds direct_makespan(std::span<const sched::JobRecord> records,
                        SimTime project_start);

/// The continual-sampling trick.  `completions` must be sorted ascending.
/// Samples `nsamples` random start times t1 uniform in
/// [0, sample_horizon); each sample's makespan is c[j + njobs - 1] - t1
/// where c[j] is the first completion > t1.  Samples whose window runs off
/// the end of the log are redrawn (the paper keeps projects that fit).
/// Returns makespans in seconds.
std::vector<double> sampled_makespans(std::span<const SimTime> completions,
                                      std::size_t njobs,
                                      std::size_t nsamples,
                                      SimTime sample_horizon, Rng& rng);

}  // namespace istc::metrics
