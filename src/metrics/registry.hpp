#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/histogram.hpp"

/// \file registry.hpp
/// A registry of named counters, gauges, and log-bucketed histograms.
///
/// Registration (by name, idempotent) happens during setup and may
/// allocate; the hot path — add / set / observe through an opaque id — is
/// an array index, allocation-free.  Iteration is in registration order,
/// so two equal-seed runs that register the same instruments serialize to
/// byte-identical snapshots.
///
/// Determinism is a per-instrument property: sim-time derived values are
/// kDeterministic and participate in golden comparisons; host-time
/// measurements (`*_us` timers) are kWallClock and are excluded from the
/// deterministic sections of a RunReport.

namespace istc::metrics {

enum class Determinism : std::uint8_t {
  kDeterministic,  ///< sim-time derived; byte-stable for a given seed
  kWallClock,      ///< host measurement; varies run to run
};

struct CounterId {
  std::uint32_t index = 0;
};
struct GaugeId {
  std::uint32_t index = 0;
};
struct HistogramId {
  std::uint32_t index = 0;
};

class Registry {
 public:
  struct Counter {
    std::string name;
    Determinism det = Determinism::kDeterministic;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    Determinism det = Determinism::kDeterministic;
    std::int64_t value = 0;
  };
  struct NamedHistogram {
    std::string name;
    Determinism det = Determinism::kDeterministic;
    Log2Histogram hist;
  };

  /// Register (or look up) an instrument by name.  Re-registering an
  /// existing name returns the same id; the determinism flag must match
  /// (checked) — one name, one meaning.
  CounterId counter(std::string_view name,
                    Determinism det = Determinism::kDeterministic);
  GaugeId gauge(std::string_view name,
                Determinism det = Determinism::kDeterministic);
  HistogramId histogram(std::string_view name,
                        Determinism det = Determinism::kDeterministic);

  // Hot path: plain array indexing, no lookup, no allocation.
  void add(CounterId id, std::uint64_t delta = 1) {
    counters_[id.index].value += delta;
  }
  void set_counter(CounterId id, std::uint64_t value) {
    counters_[id.index].value = value;
  }
  void set(GaugeId id, std::int64_t value) { gauges_[id.index].value = value; }
  void observe(HistogramId id, std::uint64_t value) {
    histograms_[id.index].hist.add(value);
  }

  std::uint64_t counter_value(CounterId id) const {
    return counters_[id.index].value;
  }
  std::int64_t gauge_value(GaugeId id) const { return gauges_[id.index].value; }
  const Log2Histogram& histogram_ref(HistogramId id) const {
    return histograms_[id.index].hist;
  }

  /// Snapshots in registration order (serialization / iteration).
  const std::vector<Counter>& counters() const { return counters_; }
  const std::vector<Gauge>& gauges() const { return gauges_; }
  const std::vector<NamedHistogram>& histograms() const { return histograms_; }

  /// Lookup by name (tests / ad-hoc consumers); nullptr when absent.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const NamedHistogram* find_histogram(std::string_view name) const;

 private:
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<NamedHistogram> histograms_;
};

}  // namespace istc::metrics
