#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

/// \file sampler.hpp
/// Sim-time sampler: a self-scheduling probe of live scheduler state.
///
/// The sampler rides the engine's sample deadline (Engine::schedule_sample),
/// which is *hook-transparent* in both queue modes: a timestamp reached
/// only by the sample never triggers a scheduler pass, so sampling on
/// or off yields bit-identical schedules (pinned by tests) and the
/// per-tick cost is one probe plus one row append.  Every sampled value is
/// sim-time derived, so equal-seed runs produce byte-identical series.

namespace istc::sim {
class Engine;
}
namespace istc::sched {
class BatchScheduler;
}

namespace istc::metrics {

struct SamplerConfig {
  /// Sampling period in sim seconds; 0 disables the sampler entirely.
  Seconds interval = 0;
  /// First tick fires at start + interval.
  SimTime start = 0;
  /// Last tick at `stop` exactly (a final partial tick is scheduled when
  /// the grid does not land on it).  kTimeInfinity = keep sampling as long
  /// as the run produces events; RunMetrics::attach fills in the site span.
  SimTime stop = kTimeInfinity;
  /// Row cap; ticks past it are counted as dropped, not stored.
  std::size_t max_samples = std::size_t{1} << 17;
};

class SimSampler {
 public:
  /// One sampled row: kColumns values, in order, all int64.  Seconds
  /// columns holding "none" are -1 (head_backfill_wall_s, interstice_hold_s
  /// when the profile is flat forever).
  static constexpr int kNumSeries = 15;
  using Row = std::array<std::int64_t, kNumSeries>;

  /// Column names, fixed order (also the series CSV header).  The two
  /// *_cpu_sec columns are per-interval busy-CPU-second deltas, whose
  /// hourly sums reproduce metrics::utilization_series numerators for
  /// kill-free runs.
  static const std::array<const char*, kNumSeries>& columns();

  /// Installs itself as the engine's sample hook and schedules the first
  /// tick.  `cfg.interval` must be > 0; both references must outlive the
  /// sampler.  The scheduler is only probed, never mutated.
  SimSampler(sim::Engine& engine, const sched::BatchScheduler& sched,
             SamplerConfig cfg);

  const SamplerConfig& config() const { return cfg_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  void tick(SimTime now);

  sim::Engine& engine_;
  const sched::BatchScheduler& sched_;
  SamplerConfig cfg_;
  std::vector<Row> rows_;
  std::uint64_t dropped_ = 0;
  /// Integral values at the previous tick, for the per-interval deltas.
  std::uint64_t last_native_cpu_sec_ = 0;
  std::uint64_t last_interstitial_cpu_sec_ = 0;
};

}  // namespace istc::metrics
