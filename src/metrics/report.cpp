#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"

namespace istc::metrics {

std::uint64_t bounded_slowdown_milli(Seconds wait, Seconds runtime,
                                     Seconds tau) {
  ISTC_EXPECTS(wait >= 0);
  ISTC_EXPECTS(runtime >= 0);
  ISTC_EXPECTS(tau > 0);
  const std::uint64_t denom =
      static_cast<std::uint64_t>(std::max(runtime, tau));
  const std::uint64_t num =
      static_cast<std::uint64_t>(wait + runtime) * 1000u;
  return std::max<std::uint64_t>(1000, num / denom);
}

RunMetrics::RunMetrics(SamplerConfig cfg) : cfg_(cfg) {
  native_wait_s_ = registry_.histogram("native_wait_s");
  interstitial_wait_s_ = registry_.histogram("interstitial_wait_s");
  native_slowdown_milli_ = registry_.histogram("native_slowdown_milli");
  interstice_cpus_at_dispatch_ =
      registry_.histogram("interstice_cpus_at_dispatch");
  jobs_native_completed_ = registry_.counter("jobs_native_completed");
  jobs_interstitial_completed_ =
      registry_.counter("jobs_interstitial_completed");
  jobs_killed_ = registry_.counter("jobs_killed");
}

void RunMetrics::attach(sim::Engine& engine, sched::BatchScheduler& sched,
                        SimTime span) {
  sched.set_start_hook([this](const workload::Job& job, int free_before) {
    if (job.interstitial()) {
      registry_.observe(interstice_cpus_at_dispatch_,
                        static_cast<std::uint64_t>(free_before));
    }
  });
  if (cfg_.interval > 0) {
    if (cfg_.stop == kTimeInfinity) cfg_.stop = span;
    sampler_.emplace(engine, sched, cfg_);
  }
}

void RunMetrics::ingest_records(std::span<const sched::JobRecord> records) {
  for (const auto& r : records) {
    const auto wait = static_cast<std::uint64_t>(r.wait());
    if (r.interstitial()) {
      registry_.observe(interstitial_wait_s_, wait);
    } else {
      registry_.observe(native_wait_s_, wait);
      registry_.observe(native_slowdown_milli_,
                        bounded_slowdown_milli(r.wait(), r.job.runtime));
    }
  }
}

void RunMetrics::ingest(const sched::RunResult& result) {
  ingest_records(result.records);
  registry_.set_counter(jobs_native_completed_,
                        static_cast<std::uint64_t>(result.native_count()));
  registry_.set_counter(
      jobs_interstitial_completed_,
      static_cast<std::uint64_t>(result.interstitial_count()));
  registry_.set_counter(jobs_killed_,
                        static_cast<std::uint64_t>(result.killed.size()));
  // Bridge: every TraceSummary counter, registered under its CSV column
  // name (one enumeration, trace::summary_fields, feeds both outputs).
  for (const auto& f : trace::summary_fields(result.trace)) {
    const Determinism det =
        f.wall_clock ? Determinism::kWallClock : Determinism::kDeterministic;
    registry_.set_counter(registry_.counter(f.name, det), f.value);
  }
}

namespace {

// The report only ever quotes instrument and machine names; escape the two
// characters that could break the document rather than full JSON strings.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void write_counter_object(std::ostream& out, const Registry& reg,
                          Determinism det) {
  out << "{";
  bool first = true;
  for (const auto& c : reg.counters()) {
    if (c.det != det) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << json_escape(c.name) << "\": " << c.value;
  }
  out << (first ? "}" : "\n  }");
}

}  // namespace

void write_run_report(std::ostream& out, const sched::RunResult& result,
                      const RunMetrics& metrics,
                      const ReportOptions& options) {
  const Registry& reg = metrics.registry();
  out << "{\n";
  out << "  \"schema\": \"" << kRunReportSchema << "\",\n";
  out << "  \"compat\": [\"" << kRunReportCompat << "\"],\n";
  out << "  \"machine\": {\"name\": \"" << json_escape(result.machine.name)
      << "\", \"site\": \"" << json_escape(result.machine.site)
      << "\", \"cpus\": " << result.machine.cpus
      << ", \"clock_ghz\": " << format_double(result.machine.clock_ghz)
      << "},\n";
  // v2: per-machine sections.  A solo run is a one-machine fleet; the
  // fleet writer (grid/report.hpp) emits the same shape with one entry
  // per shard.
  out << "  \"machines\": [\n    {\"name\": \""
      << json_escape(result.machine.name) << "\", \"site\": \""
      << json_escape(result.machine.site)
      << "\", \"cpus\": " << result.machine.cpus
      << ", \"clock_ghz\": " << format_double(result.machine.clock_ghz)
      << ",\n     \"span_s\": " << result.span
      << ", \"sim_end_s\": " << result.sim_end
      << ",\n     \"jobs\": {\"native_completed\": " << result.native_count()
      << ", \"interstitial_completed\": " << result.interstitial_count()
      << ", \"killed\": " << result.killed.size() << "}}\n  ],\n";
  out << "  \"span_s\": " << result.span << ",\n";
  out << "  \"sim_end_s\": " << result.sim_end << ",\n";
  out << "  \"sample_interval_s\": " << metrics.sample_interval() << ",\n";
  out << "  \"jobs\": {\"native_completed\": " << result.native_count()
      << ", \"interstitial_completed\": " << result.interstitial_count()
      << ", \"killed\": " << result.killed.size() << "},\n";

  out << "  \"counters\": ";
  write_counter_object(out, reg, Determinism::kDeterministic);
  out << ",\n";

  out << "  \"gauges\": {";
  {
    bool first = true;
    for (const auto& g : reg.gauges()) {
      if (g.det != Determinism::kDeterministic) continue;
      if (!first) out << ",";
      first = false;
      out << "\n    \"" << json_escape(g.name) << "\": " << g.value;
    }
    out << (first ? "}" : "\n  }");
  }
  out << ",\n";

  out << "  \"histograms\": [";
  {
    bool first_h = true;
    for (const auto& h : reg.histograms()) {
      if (h.det != Determinism::kDeterministic) continue;
      if (!first_h) out << ",";
      first_h = false;
      out << "\n    {\"name\": \"" << json_escape(h.name)
          << "\", \"count\": " << h.hist.total()
          << ", \"sum\": " << h.hist.sum() << ", \"buckets\": [";
      const int lo = h.hist.first_nonzero();
      const int hi = h.hist.last_nonzero();
      for (int k = lo; k >= 0 && k <= hi; ++k) {
        if (k != lo) out << ", ";
        out << "[" << Log2Histogram::bucket_lo(k) << ", "
            << Log2Histogram::bucket_hi(k) << ", " << h.hist.count(k) << "]";
      }
      out << "]}";
    }
    out << (first_h ? "]" : "\n  ]");
  }
  out << ",\n";

  out << "  \"series\": ";
  if (const SimSampler* s = metrics.sampler(); s != nullptr) {
    out << "{\n    \"interval_s\": " << s->config().interval
        << ",\n    \"samples\": " << s->rows().size()
        << ",\n    \"dropped\": " << s->dropped() << ",\n    \"columns\": [";
    const auto& cols = SimSampler::columns();
    for (int i = 0; i < SimSampler::kNumSeries; ++i) {
      if (i != 0) out << ", ";
      out << "\"" << cols[static_cast<std::size_t>(i)] << "\"";
    }
    out << "],\n    \"rows\": [";
    bool first_r = true;
    for (const auto& row : s->rows()) {
      out << (first_r ? "\n" : ",\n") << "      [";
      first_r = false;
      for (int i = 0; i < SimSampler::kNumSeries; ++i) {
        if (i != 0) out << ", ";
        out << row[static_cast<std::size_t>(i)];
      }
      out << "]";
    }
    out << (first_r ? "]" : "\n    ]") << "\n  }";
  } else {
    out << "null";
  }

  if (options.include_wall_clock) {
    // Host-time measurements, explicitly quarantined: everything above
    // this key is byte-identical across equal-seed runs.
    out << ",\n  \"wall_clock\": ";
    write_counter_object(out, reg, Determinism::kWallClock);
  }
  out << "\n}\n";
}

void write_run_report_file(const std::string& path,
                           const sched::RunResult& result,
                           const RunMetrics& metrics,
                           const ReportOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_run_report(out, result, metrics, options);
}

void write_series_csv(const std::string& path, const RunMetrics& metrics) {
  CsvWriter csv(path);
  const auto& cols = SimSampler::columns();
  std::vector<std::string> header(cols.begin(), cols.end());
  csv.header(header);
  const SimSampler* s = metrics.sampler();
  if (s == nullptr) return;  // header-only file: sampling was off
  std::vector<std::string> cells(SimSampler::kNumSeries);
  for (const auto& row : s->rows()) {
    for (int i = 0; i < SimSampler::kNumSeries; ++i) {
      cells[static_cast<std::size_t>(i)] =
          std::to_string(row[static_cast<std::size_t>(i)]);
    }
    csv.row(cells);
  }
}

}  // namespace istc::metrics
