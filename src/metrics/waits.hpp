#pragma once

#include <span>
#include <vector>

#include "sched/record.hpp"
#include "util/histogram.hpp"

/// \file waits.hpp
/// Native-job impact metrics: wait times and expansion factors, overall and
/// for the "5% largest" jobs (the paper measures size in CPU-seconds).

namespace istc::metrics {

/// The four numbers of each Table 5 block.
struct WaitStats {
  double avg_wait_s = 0.0;
  double median_wait_s = 0.0;
  double avg_ef = 0.0;
  double median_ef = 0.0;
  std::size_t jobs = 0;
};

/// Stats over native records (interstitial records are ignored).
WaitStats wait_stats(std::span<const sched::JobRecord> records);

/// The fraction (e.g. 0.05) of native jobs largest by CPU-seconds.
std::vector<sched::JobRecord> largest_native(
    std::span<const sched::JobRecord> records, double fraction);

/// Native wait times in seconds (for histograms / distribution plots).
std::vector<double> native_waits(std::span<const sched::JobRecord> records);

/// The paper's Figs. 5-6 histogram: native waits binned by log10(seconds).
Log10Histogram wait_histogram(std::span<const sched::JobRecord> records,
                              std::size_t decades = 6);

/// Bounded slowdown, the scheduling literature's standard responsiveness
/// metric: max(1, (wait + runtime) / max(runtime, tau)).  The tau floor
/// (default 10 s) keeps trivially short jobs from dominating.
struct SlowdownStats {
  double avg = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  std::size_t jobs = 0;
};

SlowdownStats bounded_slowdown(std::span<const sched::JobRecord> records,
                               Seconds tau = 10);

/// Time-averaged number of waiting native jobs per bucket over [0, span):
/// a job contributes to the queue from submit until start.
std::vector<double> queue_length_series(
    std::span<const sched::JobRecord> records, SimTime span,
    Seconds bucket = kSecondsPerHour);

}  // namespace istc::metrics
