#include "core/run_cache.hpp"

#include <cmath>
#include <utility>

#include "core/experiment.hpp"
#include "core/project.hpp"
#include "trace/tracer.hpp"

namespace istc::core {

const sched::RunResult& RunCache::native_baseline(cluster::Site site) {
  std::lock_guard lk(mu_);
  auto it = native_.find(site);
  if (it == native_.end()) {
    ++stats_.misses;
    // Counters-only tracing is cheap (no event records) and gives every
    // cached run a scheduling-cost profile in RunResult::trace.
    trace::Tracer tracer(trace::TraceMode::kCountersOnly);
    Scenario scenario{site, {}, 0};
    scenario.tracer = &tracer;
    it = native_.emplace(site, run_scenario(scenario)).first;
  } else {
    ++stats_.hits;
  }
  return it->second;
}

const sched::RunResult& RunCache::continual_run(cluster::Site site,
                                                int cpus_per_job,
                                                Seconds sec_at_1ghz,
                                                double utilization_cap) {
  const ContinualKey key{site, cpus_per_job, sec_at_1ghz,
                         std::lround(utilization_cap * 1000)};
  {
    std::lock_guard lk(mu_);
    const auto it = continual_.find(key);
    if (it != continual_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  ProjectSpec stream = ProjectSpec::continual_stream(
      cpus_per_job, sec_at_1ghz, cluster::site_span(site));
  stream.utilization_cap = utilization_cap;
  trace::Tracer tracer(trace::TraceMode::kCountersOnly);
  Scenario scenario{site, stream, 0};
  scenario.tracer = &tracer;
  sched::RunResult result = run_scenario(scenario);
  std::lock_guard lk(mu_);
  return continual_.emplace(key, std::move(result)).first->second;
}

const sched::RunResult& RunCache::memoized(
    std::uint64_t key, const std::function<sched::RunResult()>& compute) {
  {
    std::lock_guard lk(mu_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  sched::RunResult result = compute();
  std::lock_guard lk(mu_);
  return memo_.emplace(key, std::move(result)).first->second;
}

void RunCache::clear() {
  std::lock_guard lk(mu_);
  native_.clear();
  continual_.clear();
  memo_.clear();
}

std::size_t RunCache::size() const {
  std::lock_guard lk(mu_);
  return native_.size() + continual_.size() + memo_.size();
}

RunCache::Stats RunCache::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

RunCache& default_run_cache() {
  static RunCache cache;
  return cache;
}

}  // namespace istc::core
