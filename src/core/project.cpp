#include "core/project.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace istc::core {

Seconds ProjectSpec::runtime_on(const cluster::MachineSpec& machine) const {
  ISTC_EXPECTS(machine.clock_ghz > 0);
  const double secs = work_per_cpu / (machine.clock_ghz * cluster::kGiga);
  const auto s = static_cast<Seconds>(std::llround(secs));
  return s > 0 ? s : 1;
}

ProjectSpec ProjectSpec::paper(std::size_t jobs, int cpus,
                               Seconds sec_at_1ghz) {
  ProjectSpec p;
  p.work_per_cpu = static_cast<double>(sec_at_1ghz) * cluster::kGiga;
  p.cpus_per_job = cpus;
  p.total_jobs = jobs;
  p.check();
  return p;
}

ProjectSpec ProjectSpec::continual_stream(int cpus, Seconds sec_at_1ghz,
                                          SimTime stop) {
  ProjectSpec p;
  p.work_per_cpu = static_cast<double>(sec_at_1ghz) * cluster::kGiga;
  p.cpus_per_job = cpus;
  p.total_jobs = 0;
  p.stop_time = stop;
  p.check();
  return p;
}

workload::Job ProjectSpec::make_job(workload::JobId id, SimTime submit,
                                    const cluster::MachineSpec& machine) const {
  workload::Job j;
  j.id = id;
  j.klass = workload::JobClass::kInterstitial;
  j.user = kInterstitialUser;
  j.group = kInterstitialGroup;
  j.cpus = cpus_per_job;
  j.submit = submit;
  j.runtime = runtime_on(machine);
  // Parameter-sweep tasks have (near-)zero runtime variance and are known
  // to the submitter, so the estimate is exact — a key asymmetry vs native
  // jobs' gross overestimates.
  j.estimate = j.runtime;
  j.check();
  return j;
}

void FaultRetryPolicy::check() const {
  ISTC_ASSERT(max_retries >= 0);
  ISTC_ASSERT(backoff >= 0);
  ISTC_ASSERT(checkpoint_interval >= 0);
}

void ProjectSpec::check() const {
  ISTC_ASSERT(work_per_cpu > 0);
  ISTC_ASSERT(cpus_per_job > 0);
  ISTC_ASSERT(start_time >= 0);
  ISTC_ASSERT(stop_time > start_time);
  ISTC_ASSERT(utilization_cap > 0 && utilization_cap <= 1.0);
  fault_retry.check();
}

}  // namespace istc::core
