#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <tuple>

#include "cluster/presets.hpp"
#include "sched/record.hpp"
#include "util/time.hpp"

/// \file run_cache.hpp
/// Explicit cache of whole-log simulations.
///
/// Every comparison experiment replays the same canonical native log per
/// machine, and the eight Table 4 rows on a machine share two underlying
/// continual co-simulations — so those runs are computed once and reused.
/// The cache used to live in hidden file-scope globals inside
/// experiment.cpp; it is now an object that can be instantiated per test,
/// inspected (hit/miss counts, entry counts) and cleared, with one
/// process-wide default instance behind the convenience free functions in
/// experiment.hpp.

namespace istc::core {

class RunCache {
 public:
  RunCache() = default;

  RunCache(const RunCache&) = delete;
  RunCache& operator=(const RunCache&) = delete;

  /// Native-only run of the canonical site log, computed on first use.
  /// The reference stays valid until clear().
  const sched::RunResult& native_baseline(cluster::Site site);

  /// Continual co-simulation for a job shape (32 CPU x 458 s etc.), keyed
  /// by (site, cpus/job, work @1GHz, utilization cap).  Computed unlocked
  /// on miss — concurrent callers may race to simulate, first insert wins —
  /// so a slow continual run never serializes unrelated lookups.
  const sched::RunResult& continual_run(cluster::Site site, int cpus_per_job,
                                        Seconds sec_at_1ghz,
                                        double utilization_cap = 1.0);

  /// Generic memo: a whole-run result under a caller-computed 64-bit key.
  /// The what-if service keys its reference arm by (session id, baseline
  /// epoch, horizon), so every query against the same epoch shares one
  /// reference simulation.  Same discipline as continual_run: computed
  /// unlocked on miss (concurrent callers may race to simulate; the first
  /// insert wins and later computes are discarded), cleared by clear().
  const sched::RunResult& memoized(
      std::uint64_t key, const std::function<sched::RunResult()>& compute);

  /// Drop every entry (tests use this to bound memory).  Invalidates all
  /// references previously returned.
  void clear();

  /// Cached entries across both maps (diagnostics / tests).
  std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

 private:
  // Key: site, cpus/job, work seconds @1GHz, utilization cap (scaled x1000).
  using ContinualKey = std::tuple<cluster::Site, int, Seconds, long>;

  mutable std::mutex mu_;
  std::map<cluster::Site, sched::RunResult> native_;
  std::map<ContinualKey, sched::RunResult> continual_;
  std::map<std::uint64_t, sched::RunResult> memo_;
  Stats stats_;
};

/// The process-wide instance the free functions in experiment.hpp use.
RunCache& default_run_cache();

}  // namespace istc::core
