#include "core/omniscient.hpp"

#include <algorithm>

#include "metrics/utilization.hpp"
#include "sched/resource_profile.hpp"
#include "util/assert.hpp"

namespace istc::core {

FreeCapacity::FreeCapacity(std::span<const sched::JobRecord> native_records,
                           const cluster::Machine& machine)
    : capacity_(machine.total_cpus()) {
  const auto busy = metrics::busy_step_function(
      native_records, metrics::JobFilter::kNativeOnly);
  // free = capacity - busy; then carve out downtime windows entirely.
  steps_.reserve(busy.size() + machine.downtime().windows().size() * 2);
  for (const auto& [t, b] : busy) {
    ISTC_ASSERT(b <= capacity_);
    steps_.emplace_back(t, capacity_ - b);
  }
  for (const auto& w : machine.downtime().windows()) {
    // Nothing native runs inside a window (the scheduler drains), so the
    // free value there is `capacity`; replace it with 0.
    // Insert boundary points and zero the interior.
    auto insert_point = [&](SimTime t) {
      auto it = std::lower_bound(
          steps_.begin(), steps_.end(), t,
          [](const auto& s, SimTime v) { return s.first < v; });
      if (it != steps_.end() && it->first == t) return;
      ISTC_ASSERT(it != steps_.begin());
      steps_.insert(it, {t, std::prev(it)->second});
    };
    if (w.start > steps_.front().first) insert_point(w.start);
    insert_point(w.end);
    for (auto& [t, f] : steps_) {
      if (t >= w.start && t < w.end) {
        ISTC_ASSERT(f == capacity_);  // scheduler drained before the window
        f = 0;
      }
    }
  }
}

int FreeCapacity::free_at(SimTime t) const {
  ISTC_EXPECTS(!steps_.empty());
  if (t < steps_.front().first) return capacity_;
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](SimTime v, const auto& s) { return v < s.first; });
  return std::prev(it)->second;
}

double FreeCapacity::average_free_fraction(SimTime lo, SimTime hi) const {
  ISTC_EXPECTS(hi > lo);
  double free_area = 0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const SimTime a = std::max(lo, steps_[i].first);
    const SimTime b =
        std::min(hi, i + 1 < steps_.size() ? steps_[i + 1].first : hi);
    if (b > a) {
      free_area += static_cast<double>(steps_[i].second) *
                   static_cast<double>(b - a);
    }
  }
  // Before the first step (t < steps_[0].first) the machine is empty.
  if (lo < steps_.front().first) {
    free_area += static_cast<double>(capacity_) *
                 static_cast<double>(std::min(hi, steps_.front().first) - lo);
  }
  return free_area /
         (static_cast<double>(capacity_) * static_cast<double>(hi - lo));
}

OmniscientResult pack_omniscient(const FreeCapacity& free,
                                 const cluster::Machine& machine,
                                 const ProjectSpec& spec,
                                 SimTime project_start) {
  ISTC_EXPECTS(!spec.continual());
  ISTC_EXPECTS(spec.cpus_per_job <= machine.total_cpus());
  const Seconds r = spec.runtime_on(machine.spec());
  const int n = spec.cpus_per_job;

  // Seed a ResourceProfile with the *used* capacity (capacity - free):
  // reservations then claim the genuinely idle CPUs only.
  sched::ResourceProfile profile(project_start, machine.total_cpus());
  const auto& steps = free.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const SimTime a = std::max(project_start, steps[i].first);
    const SimTime b =
        i + 1 < steps.size() ? std::max(project_start, steps[i + 1].first)
                             : kTimeInfinity;
    const int used = machine.total_cpus() - steps[i].second;
    if (b > a && used > 0) profile.reserve(a, b, used);
  }

  OmniscientResult result;
  std::size_t remaining = spec.total_jobs;
  SimTime t = project_start;
  SimTime last_end = project_start;
  while (remaining > 0) {
    t = profile.earliest_fit(n, r, t);
    const int window_min = profile.min_free(t, t + r);
    auto batch = static_cast<std::size_t>(window_min / n);
    ISTC_ASSERT(batch >= 1);
    batch = std::min(batch, remaining);
    profile.reserve(t, t + r, static_cast<int>(batch) * n);
    remaining -= batch;
    last_end = std::max(last_end, t + r);
    result.batches.emplace_back(t, batch);
    result.jobs_placed += batch;
  }
  result.makespan = last_end - project_start;
  return result;
}

}  // namespace istc::core
