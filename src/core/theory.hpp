#pragma once

#include "cluster/machine.hpp"
#include "util/time.hpp"

/// \file theory.hpp
/// The paper's analytic model (§4.2).
///
/// On a machine of N CPUs at clock C running at constant native utilization
/// U, the spare capacity is N(1-U) CPUs, so a project of P cycles needs
///
///     makespan = P / (N * C * (1 - U))            [ideal]
///
/// Fitting the omniscient measurements gives the empirical correction
///
///     makespan = 5256 + 1.16 * P / (N * C * (1-U))  [fitted, +-17%]
///
/// Finite job width wastes CPUs ("breakage in space"): with n-CPU jobs only
/// floor(N(1-U)/n) can run in the average N(1-U) spare CPUs, inflating the
/// makespan by
///
///     breakage(n) = (N(1-U)/n) / floor(N(1-U)/n).

namespace istc::core {

struct TheoryInputs {
  int machine_cpus = 0;     ///< N
  double clock_ghz = 0.0;   ///< C
  double utilization = 0.0; ///< U, native average
};

TheoryInputs theory_inputs(const cluster::MachineSpec& machine,
                           double native_utilization);

/// Ideal makespan in seconds for a project of `cycles` total cycles.
double ideal_makespan_s(const TheoryInputs& in, double cycles);

/// The paper's fitted makespan (seconds): 5256 + 1.16 * ideal.
double fitted_makespan_s(const TheoryInputs& in, double cycles);

/// Minimum possible makespan: the whole machine dedicated to the project.
double dedicated_makespan_s(const TheoryInputs& in, double cycles);

/// Spare CPUs on average: N(1-U).
double spare_cpus(const TheoryInputs& in);

/// How many n-wide interstitial jobs fit in the average spare capacity.
long breakage_slots(const TheoryInputs& in, int job_cpus);

/// Breakage inflation factor for n-CPU jobs ( >= 1 ).  Requires at least
/// one slot (job narrower than the average spare capacity).
double breakage_factor(const TheoryInputs& in, int job_cpus);

/// Expected makespan including breakage: ideal * breakage(n).
double breakage_corrected_makespan_s(const TheoryInputs& in, double cycles,
                                     int job_cpus);

/// Constants of the paper's fit, exposed for reporting.
inline constexpr double kFitOffsetSeconds = 5256.0;
inline constexpr double kFitSlope = 1.16;

/// "Breakage in time" (§4.2 names it; we quantify it): because jobs have
/// no checkpoint/restart, no interstitial job of runtime r may *start*
/// within r of a downtime window, so a CPU freed inside that approach
/// strip idles r/2 on average.  The up-time fraction lost is
///
///     loss = windows * (r/2) / (span - total_down_seconds)
///
/// and the corresponding makespan inflation is 1 / (1 - loss).
double time_breakage_loss(const cluster::DowntimeCalendar& downtime,
                          SimTime span, Seconds job_runtime);

double time_breakage_factor(const cluster::DowntimeCalendar& downtime,
                            SimTime span, Seconds job_runtime);

}  // namespace istc::core
