#include "core/advisor.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace istc::core {

Recommendation advise(const AdvisorInputs& in) {
  ISTC_EXPECTS(in.machine.cpus > 0 && in.machine.clock_ghz > 0);
  ISTC_EXPECTS(in.native_utilization >= 0 && in.native_utilization < 1);
  ISTC_EXPECTS(in.project_cycles > 0);
  ISTC_EXPECTS(in.max_native_delay >= 1);
  ISTC_EXPECTS(in.max_breakage > 1.0);

  const TheoryInputs theory =
      theory_inputs(in.machine, in.native_utilization);
  Recommendation rec;

  // Guideline 1: widest power-of-two width whose breakage stays within
  // tolerance (wider jobs amortize per-job overheads in practice).
  const double spare = spare_cpus(theory);
  int best = 1;
  for (int n = 1; static_cast<double>(n) <= spare; n *= 2) {
    if (breakage_factor(theory, n) <= in.max_breakage) best = n;
  }
  rec.cpus_per_job = best;
  rec.breakage = breakage_factor(theory, best);
  if (static_cast<double>(best * 4) > spare) {
    rec.notes.push_back(
        "job width is a large fraction of the average spare capacity; "
        "expect high makespan variance run-to-run");
  }

  // Guideline 2: the native delay bound is one interstitial runtime, so the
  // longest admissible job runtime is the delay tolerance itself.
  rec.job_runtime = in.max_native_delay;
  rec.work_sec_at_1ghz = static_cast<Seconds>(std::llround(
      static_cast<double>(rec.job_runtime) * in.machine.clock_ghz));
  if (rec.work_sec_at_1ghz < 1) rec.work_sec_at_1ghz = 1;
  rec.notes.push_back(
      "a native job start is deferred by at most one interstitial runtime "
      "(cascades can add more under fair-share re-prioritization)");

  // Project decomposition.
  const double per_job_cycles =
      static_cast<double>(rec.cpus_per_job) *
      static_cast<double>(rec.work_sec_at_1ghz) * cluster::kGiga;
  rec.jobs = static_cast<std::size_t>(
      std::ceil(in.project_cycles / per_job_cycles));

  // Breakage in time: runtime lost to the no-start strip before outages.
  if (!in.downtime.empty() && in.horizon > 0) {
    rec.time_breakage =
        time_breakage_factor(in.downtime, in.horizon, rec.job_runtime);
    if (rec.time_breakage > 1.02) {
      rec.notes.push_back(
          "maintenance cadence is dense relative to the job length; "
          "shorter jobs would waste fewer cycles before outages");
    }
  }

  // Predicted makespan: fitted model with both breakage corrections.
  rec.predicted_makespan_h =
      (kFitOffsetSeconds +
       kFitSlope * ideal_makespan_s(theory, in.project_cycles) *
           rec.breakage * rec.time_breakage) /
      3600.0;

  if (in.native_utilization > 0.9) {
    rec.notes.push_back(
        "machine runs above 90% utilization: consider a submission "
        "utilization cap (Table 8) to protect native jobs");
  }
  return rec;
}

}  // namespace istc::core
