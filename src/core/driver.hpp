#pragma once

#include <cstddef>
#include <vector>

#include "core/project.hpp"
#include "sched/scheduler.hpp"

/// \file driver.hpp
/// The interstitial submission engine — the paper's Figure 1:
///
///   (native head-of-queue dispatch and backfill happen first)
///   nInterstitialJobs = floor(nodesAvailable / interstitialJobSize)
///   if (jobsInQueue == 0)                          submit(nInterstitialJobs)
///   else if (backFillWallTime > interstitialRuntime) submit(nInterstitialJobs)
///
/// The driver runs as the scheduler's post-pass hook, i.e. whenever the
/// system checks for new jobs: on submissions, completions, and timer
/// wake-ups.  Interstitial jobs are "meta-backfilled" directly onto free
/// CPUs, never entering the native queue, and never start when their
/// (exactly known) runtime would cross a downtime window.

namespace istc::core {

class InterstitialDriver {
 public:
  /// \param scheduler the native scheduler to attach to (registers the
  ///        post-pass hook; one driver per scheduler).
  /// \param spec the project / stream to run.
  /// \param first_job_id ids for interstitial jobs count up from here
  ///        (callers pass the native log size to keep ids unique).
  InterstitialDriver(sched::BatchScheduler& scheduler, ProjectSpec spec,
                     workload::JobId first_job_id);

  InterstitialDriver(const InterstitialDriver&) = delete;
  InterstitialDriver& operator=(const InterstitialDriver&) = delete;

  std::size_t submitted() const { return submitted_; }

  /// All project jobs have been *submitted* (always false for continual
  /// streams before stop_time).
  bool exhausted() const {
    return !spec_.continual() && submitted_ >= spec_.total_jobs;
  }

  const ProjectSpec& spec() const { return spec_; }
  Seconds job_runtime() const { return job_runtime_; }

  /// Preemption-recovery accounting (see PreemptionRecovery).
  std::size_t kills_observed() const { return kills_observed_; }
  std::size_t resume_fragments_pending() const { return resume_.size(); }

 private:
  void on_pass(const sched::PassContext& ctx);
  void on_kill(const sched::JobRecord& victim);

  /// floor(free/size) clamped by the utilization cap and remaining jobs.
  std::size_t submittable(const sched::PassContext& ctx) const;

  sched::BatchScheduler& scheduler_;
  ProjectSpec spec_;
  Seconds job_runtime_;
  workload::JobId next_id_;
  std::size_t submitted_ = 0;
  std::size_t kills_observed_ = 0;
  /// Remaining runtimes of checkpointed victims awaiting resubmission.
  std::vector<Seconds> resume_;
};

}  // namespace istc::core
