#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/project.hpp"
#include "sched/scheduler.hpp"

/// \file driver.hpp
/// The interstitial submission engine — the paper's Figure 1:
///
///   (native head-of-queue dispatch and backfill happen first)
///   nInterstitialJobs = floor(nodesAvailable / interstitialJobSize)
///   if (jobsInQueue == 0)                          submit(nInterstitialJobs)
///   else if (backFillWallTime > interstitialRuntime) submit(nInterstitialJobs)
///
/// The driver runs as the scheduler's post-pass hook, i.e. whenever the
/// system checks for new jobs: on submissions, completions, and timer
/// wake-ups.  Interstitial jobs are "meta-backfilled" directly onto free
/// CPUs, never entering the native queue, and never start when their
/// (exactly known) runtime would cross a downtime window.

namespace istc::core {

class InterstitialDriver {
 public:
  /// \param scheduler the native scheduler to attach to (registers the
  ///        post-pass hook; one driver per scheduler).
  /// \param spec the project / stream to run.
  /// \param first_job_id ids for interstitial jobs count up from here
  ///        (callers pass the native log size to keep ids unique).
  InterstitialDriver(sched::BatchScheduler& scheduler, ProjectSpec spec,
                     workload::JobId first_job_id);

  /// Run-fork clone: copy `other`'s mid-run submission state and attach to
  /// `scheduler` (the forked scheduler; registers the post-pass and kill
  /// hooks there).  Unlike the primary constructor this schedules no
  /// initial wake — the forked engine's queue already holds every wake the
  /// source had armed.
  InterstitialDriver(sched::BatchScheduler& scheduler,
                     const InterstitialDriver& other);

  InterstitialDriver(const InterstitialDriver&) = delete;
  InterstitialDriver& operator=(const InterstitialDriver&) = delete;

  std::size_t submitted() const { return submitted_; }

  /// All project jobs have been *submitted* (always false for continual
  /// streams before stop_time).
  bool exhausted() const {
    return !spec_.continual() && submitted_ >= spec_.total_jobs;
  }

  const ProjectSpec& spec() const { return spec_; }
  Seconds job_runtime() const { return job_runtime_; }

  /// Sweep support: swap the fault-retry policy (max retries, backoff,
  /// checkpoint cadence) mid-run.  The policy is only consulted when a
  /// fault kill is handled, so setting it on a freshly forked run whose
  /// fault window lies entirely ahead is exactly equivalent to having
  /// constructed the driver with it (the fork determinism gate in
  /// bench/extension_faults.cpp checks that equivalence every run).
  void set_fault_retry(const FaultRetryPolicy& policy) {
    spec_.fault_retry = policy;
  }

  /// Sweep support: swap the instantaneous utilization cap (Table 9's
  /// limited mode) mid-run.  The cap is consulted per pass when sizing the
  /// next submission burst, so setting it on a freshly forked run caps the
  /// stream from the fork point on — the windowed-cap semantics the
  /// fork-tree cap sweep measures (bench/table9_limited.cpp), with the
  /// fork==scratch gate pinning that a scratch run receiving the same cap
  /// at the same instant behaves bit-identically.
  void set_utilization_cap(double cap) {
    ISTC_EXPECTS(cap > 0 && cap <= 1.0);
    spec_.utilization_cap = cap;
  }

  /// What-if service support: cut the stream's submission window short (or
  /// extend it) mid-run.  Like the cap, stop_time is consulted per pass
  /// when sizing the next burst, so setting it on a freshly forked run
  /// stops the stream from the fork point on — which is what lets a query
  /// fork of a continual (stop = infinity) baseline drain: the speculative
  /// run's stream ends at the query horizon while the live baseline keeps
  /// flowing.  Already-running jobs are unaffected.
  void set_stop_time(SimTime stop) { spec_.stop_time = stop; }

  /// Kill accounting: every interstitial kill the scheduler reported
  /// (preemption and faults alike; see PreemptionRecovery / FaultRetryPolicy).
  std::size_t kills_observed() const { return kills_observed_; }
  std::size_t resume_fragments_pending() const { return resume_.size(); }

  /// Fault-retry accounting (see ProjectSpec::fault_retry).
  std::size_t fault_retries_pending() const { return retry_queue_.size(); }
  std::size_t retries_exhausted() const { return retries_exhausted_; }

 private:
  /// A fault-killed job waiting to be resubmitted: the runtime still owed
  /// (post-checkpoint remainder), the retries its lineage has consumed,
  /// and the earliest submission time (kill time + backoff).
  struct FaultRetry {
    Seconds remaining = 0;
    int attempts = 0;
    SimTime eligible_at = 0;
  };

  void on_pass(const sched::PassContext& ctx);
  void on_kill(const sched::JobRecord& victim, sched::KillReason reason);

  /// Handle a fault kill per spec_.fault_retry: charge lost/recovered
  /// work, then requeue the remainder or abandon the lineage.
  void on_fault_kill(const sched::JobRecord& victim);

  /// floor(free/size) clamped by the utilization cap and remaining jobs.
  std::size_t submittable(const sched::PassContext& ctx) const;

  sched::BatchScheduler& scheduler_;
  ProjectSpec spec_;
  Seconds job_runtime_;
  workload::JobId next_id_;
  std::size_t submitted_ = 0;
  std::size_t kills_observed_ = 0;
  std::size_t retries_exhausted_ = 0;
  /// Remaining runtimes of checkpointed victims awaiting resubmission.
  std::vector<Seconds> resume_;
  /// Fault-killed jobs awaiting retry, ordered by eligible_at (kills
  /// arrive in simulation-time order and the backoff is constant).
  std::deque<FaultRetry> retry_queue_;
  /// Retries consumed by each currently *running* retry job, keyed by the
  /// id it ran under; consulted (and erased) if that job is killed again.
  std::unordered_map<workload::JobId, int> retry_attempts_;
};

}  // namespace istc::core
