#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "cluster/machine.hpp"
#include "core/project.hpp"
#include "sched/record.hpp"
#include "util/time.hpp"

/// \file omniscient.hpp
/// Omniscient interstitial packing (paper §4.1, Table 2).
///
/// Given perfect prior knowledge of native start and finish times, the
/// packer lays interstitial jobs into the free-capacity step function of a
/// native-only run such that no native CPU is ever touched: zero native
/// impact by construction.  At each opportunity it starts
/// floor(min-window-free / n) jobs, the greedy discipline of Figure 1 with
/// a perfect oracle.

namespace istc::core {

/// The free-capacity environment of one native-only run.
class FreeCapacity {
 public:
  /// \param native_records completed records of a native-only simulation
  /// \param machine        full machine (capacity and downtime windows —
  ///                       downtime counts as zero free capacity)
  FreeCapacity(std::span<const sched::JobRecord> native_records,
               const cluster::Machine& machine);

  int capacity() const { return capacity_; }

  /// Free CPUs at time t.
  int free_at(SimTime t) const;

  /// Average free fraction over [lo, hi) (1 - utilization incl. outages).
  double average_free_fraction(SimTime lo, SimTime hi) const;

  /// (time, free CPU) breakpoints (for tests / plots).
  const std::vector<std::pair<SimTime, int>>& steps() const { return steps_; }

 private:
  int capacity_;
  std::vector<std::pair<SimTime, int>> steps_;  // sorted by time
};

struct OmniscientResult {
  Seconds makespan = 0;
  std::size_t jobs_placed = 0;
  /// (start, simultaneous job count) batches, for audit/property tests.
  std::vector<std::pair<SimTime, std::size_t>> batches;
};

/// Pack `spec.total_jobs` jobs (spec must be bounded) of runtime
/// spec.runtime_on(machine) into the free capacity, starting no earlier
/// than `project_start`.  Native occupancy is never violated.
OmniscientResult pack_omniscient(const FreeCapacity& free,
                                 const cluster::Machine& machine,
                                 const ProjectSpec& spec,
                                 SimTime project_start);

}  // namespace istc::core
