#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/presets.hpp"
#include "core/omniscient.hpp"
#include "core/project.hpp"
#include "fault/fault.hpp"
#include "sched/record.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"
#include "util/stats.hpp"

/// \file experiment.hpp
/// The experiment runner: builds a site (machine + policy + synthetic log),
/// runs native-only and with-interstitial scenarios, and provides the
/// replication machinery (random project starts, omniscient packing,
/// continual-sampling) behind every table and figure of the paper.
///
/// Replications run in parallel on a thread pool; each replication forks
/// its own RNG stream keyed by the replication index, so results are
/// independent of thread count.

namespace istc::metrics {
class RunMetrics;  // metrics/report.hpp
}

namespace istc::sched {
enum class BackfillMode : std::uint8_t;  // sched/scheduler.hpp
}

namespace istc::core {

class RunCache;  // run_cache.hpp

/// One simulation setup.
struct Scenario {
  cluster::Site site = cluster::Site::kBlueMountain;
  /// Interstitial project / stream; nullopt = native-only run.
  std::optional<ProjectSpec> project;
  /// Seed for the synthetic native log; 0 = the canonical per-site log
  /// (the fixed trace every experiment replays, like the paper's logs).
  std::uint64_t log_seed = 0;
  /// Ablation knob: replace every user estimate with the true runtime.
  bool perfect_estimates = false;
  /// Comparator knobs (§4.3.2): scale native runtimes / widths to raise
  /// utilization the "longer or larger jobs" way instead of interstitially.
  double native_time_factor = 1.0;
  double native_size_factor = 1.0;
  /// Extension: natives evict running interstitial jobs instead of waiting
  /// (sched::PolicySpec::preempt_interstitial).
  bool preempt_interstitial = false;
  /// Ablation knob: override the site policy's backfill discipline
  /// (sched::PolicySpec::backfill); nullopt keeps the site default.
  std::optional<sched::BackfillMode> backfill;
  /// Maintain the scheduler's free-CPU profile incrementally across passes
  /// (sched::PolicySpec::incremental_profile).  OFF selects the from-scratch
  /// per-pass rebuild — the A/B baseline for bench/micro_scheduler;
  /// schedules are identical either way.
  bool incremental_profile = true;
  /// Use the engine's typed, allocation-free event core (ON is the fast
  /// path).  OFF selects the legacy std::function event queue — kept as
  /// the A/B baseline for bench/micro_engine; schedules are bit-identical
  /// either way (pinned by tests/trace/test_determinism.cpp).
  bool typed_events = true;
  /// Which typed queue runs the engine (ignored when typed_events is
  /// false): the calendar/ladder queue is the production default, the
  /// binary heap the PR 3 A/B baseline.  Schedules are bit-identical in
  /// every mode (same golden pins).
  sim::QueueImpl queue = sim::QueueImpl::kCalendar;
  /// The engine queue selection this scenario resolves to.
  sim::QueueImpl queue_impl() const {
    return typed_events ? queue : sim::QueueImpl::kLegacy;
  }
  /// Unplanned failures (crashes + node outages); the default is inert and
  /// fault-free runs are bit-identical to pre-fault builds.  An enabled
  /// spec has its stop clamped to the site span, and the run stays
  /// deterministic per (scenario, faults.seed).
  fault::FaultSpec faults;
  /// Observability: when set, the engine/scheduler/driver record into this
  /// tracer and the RunResult carries its TraceSummary.  Not owned; must
  /// outlive the call.  Tracing never perturbs the schedule.
  trace::Tracer* tracer = nullptr;
  /// Telemetry: when set, run_scenario attaches the RunMetrics (start hook
  /// + optional sim-time sampler) before the run and ingests the result
  /// after.  Not owned; must outlive the call.  With sampling disabled the
  /// run is bit-identical to an unmetered one; with it enabled, sample
  /// events are hook-transparent, so the schedule still is (pinned by
  /// tests/metrics/test_sampler.cpp).
  metrics::RunMetrics* metrics = nullptr;
};

/// Run a scenario to completion and collect all records.
sched::RunResult run_scenario(const Scenario& scenario);

/// Native-only run of the canonical site log, cached in `cache` (default:
/// the process-wide RunCache; every comparison experiment shares it,
/// exactly as the paper reuses one log per machine).
const sched::RunResult& native_baseline(cluster::Site site,
                                        RunCache* cache = nullptr);

/// Average native utilization of the baseline over [0, span), including
/// outages — the measured analogue of Table 1's "Utilization".
double native_utilization(cluster::Site site, RunCache* cache = nullptr);

/// Replicated makespans, mean/std in hours.
struct MakespanSample {
  std::vector<double> hours;  ///< per-replication makespans
  Summary summary() const { return Summary(hours); }
  bool feasible() const { return !hours.empty(); }
};

/// Table 2: omniscient makespans of `spec` at `reps` uniformly random
/// project starts within the (tiled) native log.
MakespanSample omniscient_makespans(cluster::Site site,
                                    const ProjectSpec& spec, int reps,
                                    std::uint64_t seed = 0x7AB1E2,
                                    RunCache* cache = nullptr);

/// §4.3.1 continual-sampling: run one continual stream of the project's
/// job shape, then sample `nsamples` random project start times.
/// The continual run is cached per (site, cpus, work) so the eight Table 4
/// rows on a machine share two underlying simulations.
MakespanSample fallible_makespans(cluster::Site site, const ProjectSpec& spec,
                                  int nsamples, std::uint64_t seed = 0xFA111B,
                                  RunCache* cache = nullptr);

/// Cached continual co-simulation for a job shape (32 CPU x 458 s etc.):
/// the Table 5-8 scenarios.  utilization_cap keys the cache too.
const sched::RunResult& continual_run(cluster::Site site, int cpus_per_job,
                                      Seconds sec_at_1ghz,
                                      double utilization_cap = 1.0,
                                      RunCache* cache = nullptr);

/// Tile a record set k times along the time axis (the native environment
/// repeated, used to let large projects run past the end of one log pass —
/// the paper's biggest projects exceed the shortest logs).
std::vector<sched::JobRecord> tile_records(
    std::span<const sched::JobRecord> records, SimTime span, int copies);

/// Tile a downtime calendar along with the records.
cluster::DowntimeCalendar tile_calendar(const cluster::DowntimeCalendar& cal,
                                        SimTime span, int copies);

/// Drop the process-wide default RunCache (tests use this to bound memory).
void clear_experiment_caches();

}  // namespace istc::core
