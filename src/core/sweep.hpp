#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

/// \file sweep.hpp
/// SweepRunner — the generic fork-tree sweep engine.
///
/// Every headline experiment is a *parameter sweep over a shared workload
/// prefix*: the same scenario up to a divergence time t0, then one knob
/// (utilization cap, fault process, broker policy, quota) per point.  A
/// SweepRunner turns such a sweep into a fork tree: simulate the common
/// prefix once, fork one run per point at t0, apply each point's knob to
/// its fork, and advance the forks — optionally in parallel on
/// util::ThreadPool, with results landing in index-addressed slots so the
/// output order (and content) is independent of thread count.
///
/// The runner is generic over a *Run* type providing the fork protocol:
///
///   std::unique_ptr<Run> fork();   // copy-on-write mid-run snapshot
///   void run_until(SimTime t);     // advance to the divergence time
///
/// core::SimRun (one machine) and grid::FleetRun (a whole brokered fleet)
/// both satisfy it.  Point configuration and completion live in a caller
/// callable `finish(Run&, std::size_t point) -> Result` invoked with the
/// run standing at t0 — apply the point's knobs there, then drain.
///
/// Three modes:
///   - run_forked:  prefix once + one fork per point (the fast path);
///   - run_scratch: every point re-simulated from time zero through the
///     same `finish` (the pre-fork world, kept as the reference arm and as
///     the executor for sweeps that cannot share a prefix, e.g. per-seed
///     workload regeneration);
///   - run_verified: both arms plus a caller equality predicate — the
///     fork==scratch bit-equality mode the bench exit gates are built on,
///     with per-arm wall clocks so the same call also yields the speedup.
///
/// Determinism: forks are created serially (forking freezes the source's
/// copy-on-write log prefixes), each fork is advanced by exactly one task,
/// and results are written to pre-sized slots — so a sweep's output is
/// bit-identical at 1, 2 or 8 threads (pinned by tests/core/test_sweep.cpp).

namespace istc::core {

/// Wall-clock breakdown of the most recent sweep arm.
struct SweepTiming {
  double prefix_wall_s = 0.0;  ///< shared-prefix simulation (forked arm)
  double fork_wall_s = 0.0;    ///< serial fork creation (forked arm only)
  double points_wall_s = 0.0;  ///< per-point advancement / re-simulation
  double total_s() const { return prefix_wall_s + fork_wall_s + points_wall_s; }
};

/// Both arms of a verified sweep plus the equality verdict and the
/// end-to-end speedup prefix sharing bought.  Per-arm clocks compare
/// *simulation advancement* only: the serial fork-creation loop — a fixed
/// artifact of the forked arm, measured separately in fork_wall_s — is
/// excluded from forked_wall_s, so speedup() reports prefix reuse rather
/// than prefix reuse minus snapshot cost (the bench gates compare
/// advancement against advancement; pinned by tests/core/test_sweep.cpp).
template <class Result>
struct VerifiedSweep {
  std::vector<Result> forked;
  std::vector<Result> scratch;
  bool equal = false;       ///< every point bit-equal across the arms
  double forked_wall_s = 0.0;   ///< prefix + fork advancement, no fork setup
  double fork_wall_s = 0.0;     ///< serial fork creation (reported, ungated)
  double scratch_wall_s = 0.0;
  double speedup() const {
    return forked_wall_s > 0.0 ? scratch_wall_s / forked_wall_s : 0.0;
  }
};

template <class Run>
class SweepRunner {
 public:
  /// \param points number of sweep points.
  /// \param make_run fresh run at time zero for point `i`.  Fork mode
  ///        calls it exactly once (point 0) for the shared prefix, so the
  ///        run it builds must be point-independent there; scratch mode
  ///        calls it per point (which is what lets per-seed sweeps — whose
  ///        points differ from t=0 — share this engine).
  SweepRunner(std::size_t points,
              std::function<std::unique_ptr<Run>(std::size_t)> make_run)
      : points_(points), make_run_(std::move(make_run)) {
    ISTC_EXPECTS(points_ > 0);
    ISTC_EXPECTS(make_run_ != nullptr);
  }

  /// Worker threads for advancing points (0 = default_thread_count()).
  /// Thread count never changes results, only wall clock; bench speedup
  /// gates pin 1 so they measure prefix reuse, not host parallelism.
  void set_threads(std::size_t threads) { threads_ = threads; }

  std::size_t points() const { return points_; }
  const SweepTiming& last_timing() const { return timing_; }

  /// Fork mode: simulate [0, t0] once, fork per point, finish each fork.
  /// `finish(Run&, i)` sees the run standing at t0 — apply point i's knobs
  /// there, then drain.  Results are in point order.
  template <class Finish>
  auto run_forked(SimTime t0, Finish&& finish)
      -> std::vector<decltype(finish(std::declval<Run&>(), std::size_t{}))> {
    using Result = decltype(finish(std::declval<Run&>(), std::size_t{}));
    const auto prefix_t0 = Clock::now();
    std::unique_ptr<Run> prefix;
    {
      obs::ScopedSpan span("sweep.prefix");
      obs::ScopedTimer timer(obs::Stage::kSweepPrefix);
      prefix = make_run_(0);
      prefix->run_until(t0);
    }
    timing_.prefix_wall_s = since(prefix_t0);

    const auto forks_t0 = Clock::now();
    // Forking mutates the source (freezing the shared log prefixes), so
    // fork creation is serial; only the advancement fans out.  It is
    // clocked apart from the advancement so per-arm comparisons (the
    // verified-mode speedup gates) measure simulation work only.
    std::vector<std::unique_ptr<Run>> forks;
    {
      obs::ScopedSpan span("sweep.fork",
                           static_cast<std::int64_t>(points_));
      obs::ScopedTimer timer(obs::Stage::kSweepFork);
      forks.reserve(points_);
      for (std::size_t i = 0; i < points_; ++i) {
        forks.push_back(prefix->fork());
      }
    }
    timing_.fork_wall_s = since(forks_t0);

    const auto points_t0 = Clock::now();
    std::vector<Result> results(points_);
    each_point([&](std::size_t i) { results[i] = finish(*forks[i], i); });
    timing_.points_wall_s = since(points_t0);
    return results;
  }

  /// Scratch mode: every point from time zero — make the run, advance to
  /// t0, then the same `finish` as fork mode.  The reference arm, and the
  /// executor for sweeps with no shared prefix (pass t0 = 0).
  template <class Finish>
  auto run_scratch(SimTime t0, Finish&& finish)
      -> std::vector<decltype(finish(std::declval<Run&>(), std::size_t{}))> {
    using Result = decltype(finish(std::declval<Run&>(), std::size_t{}));
    timing_.prefix_wall_s = 0.0;
    timing_.fork_wall_s = 0.0;
    const auto points_t0 = Clock::now();
    std::vector<Result> results(points_);
    each_point([&](std::size_t i) {
      std::unique_ptr<Run> run = make_run_(i);
      run->run_until(t0);
      results[i] = finish(*run, i);
    });
    timing_.points_wall_s = since(points_t0);
    return results;
  }

  /// Bit-equality mode: run both arms and compare point-wise with
  /// `equal(forked_result, scratch_result)`.  The bench exit gates hang
  /// off `.equal` and `.speedup()`.
  template <class Finish, class Equal>
  auto run_verified(SimTime t0, Finish&& finish, Equal&& equal)
      -> VerifiedSweep<decltype(finish(std::declval<Run&>(), std::size_t{}))> {
    using Result = decltype(finish(std::declval<Run&>(), std::size_t{}));
    VerifiedSweep<Result> v;
    v.forked = run_forked(t0, finish);
    // Advancement-only clocks: fork creation is serial bookkeeping, not
    // simulation, and must not dilute (or flatter) the speedup the gates
    // compare — it is surfaced separately in fork_wall_s.
    v.forked_wall_s = timing_.prefix_wall_s + timing_.points_wall_s;
    v.fork_wall_s = timing_.fork_wall_s;
    v.scratch = run_scratch(t0, finish);
    v.scratch_wall_s = timing_.total_s();
    v.equal = true;
    for (std::size_t i = 0; i < points_; ++i) {
      v.equal = v.equal && equal(v.forked[i], v.scratch[i]);
    }
    return v;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static double since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  }

  void each_point(const std::function<void(std::size_t)>& fn) {
    // Span causality crosses the pool: capture the caller's context (the
    // query/sweep span) here and adopt it inside each task, so every
    // "sweep.arm" parents correctly in the exported trace regardless of
    // which worker ran it.  One simulation per call amortizes the
    // wrapper; with obs disabled the adopt/span/timer are inert.
    const obs::TraceContext ctx = obs::current_context();
    const auto instrumented = [&fn, ctx](std::size_t i) {
      obs::ScopedContext adopt(ctx);
      obs::ScopedSpan span("sweep.arm", static_cast<std::int64_t>(i));
      obs::ScopedTimer timer(obs::Stage::kSweepArm);
      fn(i);
    };
    const std::size_t threads =
        threads_ > 0 ? threads_ : default_thread_count();
    if (threads > 1 && points_ > 1) {
      ThreadPool pool(threads);
      parallel_for(pool, points_, instrumented);
    } else {
      for (std::size_t i = 0; i < points_; ++i) instrumented(i);
    }
  }

  std::size_t points_;
  std::function<std::unique_ptr<Run>(std::size_t)> make_run_;
  std::size_t threads_ = 0;
  SweepTiming timing_;
};

}  // namespace istc::core
