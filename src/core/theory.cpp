#include "core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace istc::core {

TheoryInputs theory_inputs(const cluster::MachineSpec& machine,
                           double native_utilization) {
  ISTC_EXPECTS(native_utilization >= 0 && native_utilization < 1);
  return TheoryInputs{machine.cpus, machine.clock_ghz, native_utilization};
}

double ideal_makespan_s(const TheoryInputs& in, double cycles) {
  ISTC_EXPECTS(in.machine_cpus > 0 && in.clock_ghz > 0);
  ISTC_EXPECTS(in.utilization >= 0 && in.utilization < 1);
  ISTC_EXPECTS(cycles > 0);
  return cycles / (static_cast<double>(in.machine_cpus) * in.clock_ghz *
                   cluster::kGiga * (1.0 - in.utilization));
}

double fitted_makespan_s(const TheoryInputs& in, double cycles) {
  return kFitOffsetSeconds + kFitSlope * ideal_makespan_s(in, cycles);
}

double dedicated_makespan_s(const TheoryInputs& in, double cycles) {
  ISTC_EXPECTS(in.machine_cpus > 0 && in.clock_ghz > 0);
  ISTC_EXPECTS(cycles > 0);
  return cycles / (static_cast<double>(in.machine_cpus) * in.clock_ghz *
                   cluster::kGiga);
}

double spare_cpus(const TheoryInputs& in) {
  return static_cast<double>(in.machine_cpus) * (1.0 - in.utilization);
}

long breakage_slots(const TheoryInputs& in, int job_cpus) {
  ISTC_EXPECTS(job_cpus > 0);
  return static_cast<long>(std::floor(spare_cpus(in) /
                                      static_cast<double>(job_cpus)));
}

double breakage_factor(const TheoryInputs& in, int job_cpus) {
  const long slots = breakage_slots(in, job_cpus);
  ISTC_EXPECTS(slots >= 1);
  return spare_cpus(in) /
         (static_cast<double>(slots) * static_cast<double>(job_cpus));
}

double breakage_corrected_makespan_s(const TheoryInputs& in, double cycles,
                                     int job_cpus) {
  return ideal_makespan_s(in, cycles) * breakage_factor(in, job_cpus);
}

double time_breakage_loss(const cluster::DowntimeCalendar& downtime,
                          SimTime span, Seconds job_runtime) {
  ISTC_EXPECTS(span > 0);
  ISTC_EXPECTS(job_runtime > 0);
  const auto windows = static_cast<double>(downtime.windows().size());
  const double up_seconds =
      static_cast<double>(span - downtime.down_seconds(0, span));
  ISTC_EXPECTS(up_seconds > 0);
  const double loss =
      windows * static_cast<double>(job_runtime) / 2.0 / up_seconds;
  return std::min(loss, 1.0);
}

double time_breakage_factor(const cluster::DowntimeCalendar& downtime,
                            SimTime span, Seconds job_runtime) {
  // A loss approaching 1 means jobs of this length barely fit between
  // outages at all; cap the inflation rather than divide by zero (the
  // advisor surfaces a note well before this regime).
  constexpr double kMaxLoss = 0.95;
  const double loss =
      std::min(time_breakage_loss(downtime, span, job_runtime), kMaxLoss);
  return 1.0 / (1.0 - loss);
}

}  // namespace istc::core
