#pragma once

#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "core/project.hpp"
#include "core/theory.hpp"
#include "util/time.hpp"

/// \file advisor.hpp
/// The paper's §5 operating guidelines as an executable facility:
/// given a machine profile and a project, recommend interstitial job
/// parameters and predict the consequences.
///
///  1. CPUs per job must be small relative to the average spare capacity
///     N(1-U), or breakage inflates the makespan (Blue Pacific's 32-CPU
///     jobs at 90 spare CPUs suffered 35% theoretical breakage).
///  2. Job runtime bounds the per-job delay inflicted on any native job
///     (a native start is deferred at most one interstitial runtime, plus
///     cascades), so shorter jobs mean less native impact.
///  3. A submission utilization cap trades interstitial throughput for
///     native-impact protection (Table 8: a 90% cap cost ~40% of the
///     interstitial jobs but left the natives essentially untouched).

namespace istc::core {

struct AdvisorInputs {
  cluster::MachineSpec machine;
  double native_utilization = 0.0;
  /// Total project work in cycles.
  double project_cycles = 0.0;
  /// Maximum tolerable median native-job delay (bounds job runtime).
  Seconds max_native_delay = 15 * kSecondsPerMinute;
  /// Maximum tolerable breakage inflation (bounds job width).
  double max_breakage = 1.10;
  /// Optional maintenance calendar (with its horizon) for the
  /// breakage-in-time correction; empty calendar = no outages.
  cluster::DowntimeCalendar downtime;
  SimTime horizon = 0;
};

struct Recommendation {
  int cpus_per_job = 1;
  Seconds job_runtime = 0;          ///< on this machine
  Seconds work_sec_at_1ghz = 0;     ///< machine-neutral job size
  std::size_t jobs = 0;             ///< project job count
  double breakage = 1.0;            ///< breakage in space (width)
  double time_breakage = 1.0;       ///< breakage in time (outage approach)
  double predicted_makespan_h = 0.0;  ///< fitted model incl. both breakages
  std::vector<std::string> notes;
};

/// Recommend the widest/longest job shape satisfying the tolerances, and
/// predict makespan with the paper's fitted model.
Recommendation advise(const AdvisorInputs& in);

}  // namespace istc::core
