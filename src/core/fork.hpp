#pragma once

#include <memory>
#include <optional>

#include "core/driver.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

/// \file fork.hpp
/// Run forks: copy-on-write snapshots of a live simulation.
///
/// A SimRun owns one scenario's full simulation stack (engine, scheduler,
/// driver, fault injector) and can be advanced to any sim time, *forked*,
/// and finished.  Forking captures the complete mid-run state — pending
/// event queue, SoA job store, free-CPU profile, submission bookkeeping —
/// so a sweep whose variants share a prefix (same scenario up to time T,
/// divergent knobs after) simulates the prefix once and forks per variant
/// instead of re-simulating from scratch.
///
/// What makes the fork cheap and exact:
///   - the typed event core is POD-only mid-run (job/wake/sample/repair/
///     fault events carry 32-bit args, never closures), so the queue is
///     memcpy-able (sim::Engine::adopt_state);
///   - the scheduler's append-only logs (submission table, completed
///     records) are CowLog<T>: the fork shares the frozen prefix and each
///     side appends to a private tail — indices stay stable, so queued
///     event args remain valid across the fork boundary;
///   - all randomness (native log, fault timeline) is pre-generated, so
///     there is no live RNG state to capture: the shared fault timeline is
///     an immutable shared_ptr.
///
/// Determinism: a fork advanced to the end is bit-identical to a
/// from-scratch run of the same scenario (pinned by
/// tests/core/test_fork.cpp) — the fork copies the engine's event sequence
/// counter, so post-fork events tie-break exactly as they would have.
///
/// Restrictions (ISTC_EXPECTS-enforced): forking requires the typed event
/// core (legacy boxed callbacks can't be copied), no pending metrics
/// sample, and no scheduler pass in flight (fork between events, not
/// inside one).  Forks start unobserved — tracer and metrics are not
/// carried over; attach a fresh tracer via set_tracer if the post-fork
/// window should be traced.

namespace istc::core {

class SimRun {
 public:
  /// Build the full simulation stack for `scenario`, exactly as
  /// run_scenario does, but leave the clock at 0.  The scenario's tracer
  /// and metrics (if any) attach to this primary run only; forks start
  /// unobserved.
  explicit SimRun(const Scenario& scenario);

  SimRun(const SimRun&) = delete;
  SimRun& operator=(const SimRun&) = delete;
  // Not movable: the driver and injector hold references into this stack.
  SimRun(SimRun&&) = delete;

  /// Fork: a new SimRun whose state is a copy-on-write snapshot of this
  /// one at the current sim time.  Cheap (no event replay; the logs share
  /// their prefix) and exact (advancing the fork reproduces the source
  /// bit-for-bit).  The source must be quiescent: between events, with no
  /// metrics sampler attached.  `this` is non-const only because forking
  /// freezes the shared log prefixes (an O(tail) fold, amortized O(1)).
  std::unique_ptr<SimRun> fork();

  /// Advance until every event at time <= t has fired.  The clock does not
  /// jump to t on an empty queue (mirrors grid::GridMachine::advance), so
  /// fork points land on real event boundaries.
  void run_until(SimTime t);

  /// Inject a failure process from here on: spec.start must be >= now().
  /// Typical use: fork a fault-free prefix, then give each fork its own
  /// fault spec (the MTBF-grid sweep).  One injector per run.
  void add_faults(fault::FaultSpec spec);

  /// Trace the rest of the run (schedule-neutral; counters and events
  /// cover the post-attach window only).  Not owned; must outlive finish().
  void set_tracer(trace::Tracer* tracer) { scheduler_->set_tracer(tracer); }

  /// Drain every remaining event and collect the result.  If the
  /// originating scenario carried metrics, they are ingested here (primary
  /// run only; forks never carry metrics).
  sched::RunResult finish();

  SimTime now() const { return engine_.now(); }
  sim::Engine& engine() { return engine_; }
  sched::BatchScheduler& scheduler() { return *scheduler_; }
  const InterstitialDriver* driver() const {
    return driver_ ? &*driver_ : nullptr;
  }
  /// Mutable driver access, for post-fork sweep knobs that only affect
  /// behavior ahead of the fork point (InterstitialDriver::set_fault_retry).
  InterstitialDriver* driver() { return driver_ ? &*driver_ : nullptr; }
  const fault::FaultInjector* injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

 private:
  /// Fork constructor (use fork(); `other` is mutated only to freeze its
  /// copy-on-write log prefixes).
  explicit SimRun(SimRun& other);

  cluster::Site site_;
  SimTime span_ = 0;
  metrics::RunMetrics* metrics_ = nullptr;
  sim::Engine engine_;
  // unique_ptr keeps the scheduler's address stable (the driver and
  // injector hold references to it); engine_ is referenced by everything
  // and declared first.
  std::unique_ptr<sched::BatchScheduler> scheduler_;
  std::optional<InterstitialDriver> driver_;
  std::optional<fault::FaultInjector> injector_;
};

}  // namespace istc::core
