#pragma once

#include <cstddef>

#include "cluster/machine.hpp"
#include "util/time.hpp"
#include "workload/job.hpp"

/// \file project.hpp
/// An interstitial project: a fixed number of identical jobs, each a fixed
/// number of CPUs and a fixed amount of work per CPU.
///
/// Work is machine-neutral: a job is specified as "S seconds at 1 GHz"
/// (S * 1e9 cycles per CPU) and runs S / C seconds on a C-GHz machine, the
/// paper's normalization ("120 sec @ 1 GHz" = 458 s on Blue Mountain).
/// Project size is quoted in peta-cycles: jobs * cpus * work (1 Pc = 1e15).

namespace istc::core {

/// User/group ids reserved for the interstitial stream (outside any
/// generated native population, and excluded from fair share).
inline constexpr workload::UserId kInterstitialUser = 60000;
inline constexpr workload::GroupId kInterstitialGroup = 600;

/// What happens to a preempted (killed) interstitial job's work when the
/// scheduler runs with preempt_interstitial (extension feature).
enum class PreemptionRecovery : std::uint8_t {
  /// Work is lost and the job is not replaced (a continual stream refills
  /// naturally; a bounded project simply loses the job).
  kNone,
  /// Restart from scratch: a bounded project re-submits a full job for
  /// every kill (work lost = executed fraction).
  kRestart,
  /// Checkpoint/restart: the remaining runtime is resubmitted as a
  /// shorter job; executed work counts (the §4.2 "breakage in time"
  /// remedy the paper's jobs lack).
  kCheckpoint,
};

/// How the Figure 1 submission gate protects waiting native jobs.
enum class GatePolicy : std::uint8_t {
  /// Default: submit only when no waiting native could start (per
  /// estimates) before the interstitial jobs finish.  Strictly safer than
  /// the paper's literal pseudocode; prevents the head-pinned livelock
  /// (see DESIGN.md).
  kQueueProtective,
  /// The paper's Figure 1 verbatim: protect only the highest-priority
  /// waiting job ("backFillWallTime").
  kHeadOnly,
  /// No gate at all: fill every hole (ablation baseline; maximum harvest,
  /// maximum native damage).
  kAlways,
};

/// What happens to an interstitial job killed by an *unplanned* failure
/// (fault::FaultInjector).  Orthogonal to PreemptionRecovery, which covers
/// deliberate scheduler preemption: a fault-killed job re-enters through a
/// bounded retry loop with a submission backoff, optionally resuming from
/// its last checkpoint.
struct FaultRetryPolicy {
  /// Resubmissions per job lineage before its work is abandoned
  /// (counted towards TraceSummary::fault_retries_exhausted).
  int max_retries = 3;
  /// Delay after the kill before the retry becomes submittable (a real
  /// system waits out the failure storm instead of resubmitting into it).
  Seconds backoff = 5 * kSecondsPerMinute;
  /// Checkpoint cadence: a kill loses only work since the last multiple of
  /// this interval, and the retry runs just the remainder.  0 disables
  /// checkpointing (the retry redoes the whole job).
  Seconds checkpoint_interval = 0;

  void check() const;
};

struct ProjectSpec {
  /// Work per CPU in cycles ("120 s @ 1 GHz" = 120e9).
  cluster::Cycles work_per_cpu = 120.0 * cluster::kGiga;
  /// CPUs per interstitial job (identical across the project).
  int cpus_per_job = 32;
  /// Number of jobs; 0 means unbounded (continual interstitial computing).
  std::size_t total_jobs = 0;
  /// Earliest submission time.
  SimTime start_time = 0;
  /// Submissions cease at this time (continual runs stop at the log span).
  SimTime stop_time = kTimeInfinity;
  /// Only submit while (busy + new interstitial CPUs) / N < cap
  /// (Table 8 "limited" policy).  1.0 disables the cap.
  double utilization_cap = 1.0;
  /// Native-protection gate variant (ablation knob; see GatePolicy).
  GatePolicy gate = GatePolicy::kQueueProtective;
  /// Recovery mode for preempted jobs (only meaningful when the scheduler
  /// runs with preempt_interstitial).
  PreemptionRecovery recovery = PreemptionRecovery::kNone;
  /// Retry policy for jobs killed by unplanned failures (only meaningful
  /// when a fault::FaultInjector is attached to the run).
  FaultRetryPolicy fault_retry;

  bool continual() const { return total_jobs == 0; }

  /// Job runtime on the target machine (paper's normalization; rounded to
  /// the nearest second as the paper does: 120/.262 -> 458 s).
  Seconds runtime_on(const cluster::MachineSpec& machine) const;

  /// Total project size in cycles (0 for continual projects).
  cluster::Cycles total_cycles() const {
    return static_cast<double>(total_jobs) *
           static_cast<double>(cpus_per_job) * work_per_cpu;
  }

  double peta_cycles() const { return total_cycles() / cluster::kPeta; }

  /// A project described the way the paper's tables do: job count, CPUs
  /// per job, and seconds at 1 GHz.
  static ProjectSpec paper(std::size_t jobs, int cpus, Seconds sec_at_1ghz);

  /// A continual stream of (cpus x sec@1GHz) jobs active over [0, stop).
  static ProjectSpec continual_stream(int cpus, Seconds sec_at_1ghz,
                                      SimTime stop);

  /// Materialize the i-th job of the project for a machine.
  workload::Job make_job(workload::JobId id, SimTime submit,
                         const cluster::MachineSpec& machine) const;

  void check() const;
};

}  // namespace istc::core
