#include "core/fork.hpp"

#include <algorithm>

#include "metrics/report.hpp"
#include "sched/presets.hpp"
#include "util/assert.hpp"
#include "workload/presets.hpp"

namespace istc::core {

SimRun::SimRun(const Scenario& scenario)
    : site_(scenario.site),
      span_(cluster::site_span(scenario.site)),
      metrics_(scenario.metrics),
      engine_(scenario.queue_impl()) {
  workload::JobLog log = scenario.log_seed == 0
                             ? workload::site_log(site_)
                             : workload::site_log(site_, scenario.log_seed);
  if (scenario.perfect_estimates) {
    log = workload::with_perfect_estimates(log);
  }
  if (scenario.native_time_factor != 1.0 ||
      scenario.native_size_factor != 1.0) {
    log = workload::with_scaled_jobs(log, scenario.native_time_factor,
                                     scenario.native_size_factor,
                                     cluster::machine_spec(site_).cpus);
  }

  sched::PolicySpec policy = sched::site_policy(site_);
  policy.preempt_interstitial = scenario.preempt_interstitial;
  policy.incremental_profile = scenario.incremental_profile;
  if (scenario.backfill) policy.backfill = *scenario.backfill;
  scheduler_ = std::make_unique<sched::BatchScheduler>(
      engine_, cluster::make_machine(site_), std::move(policy));
  if (scenario.tracer != nullptr) scheduler_->set_tracer(scenario.tracer);
  scheduler_->load(log);

  if (scenario.project) {
    driver_.emplace(*scheduler_, *scenario.project,
                    static_cast<workload::JobId>(log.size()));
  }

  // Constructed after the driver so the fault timeline's event sequence
  // numbers follow the driver's initial wake — times are unaffected.
  if (scenario.faults.enabled()) {
    fault::FaultSpec faults = scenario.faults;
    faults.stop = std::min(faults.stop, span_);
    injector_.emplace(*scheduler_, faults);
  }

  // Attached last so the sampler's first tick follows every constructor's
  // initial events in sequence order; attach only observes the run.
  if (metrics_ != nullptr) {
    metrics_->attach(engine_, *scheduler_, span_);
  }
}

SimRun::SimRun(SimRun& other)
    : site_(other.site_), span_(other.span_), engine_(other.engine_.queue_impl()) {
  // Order matters: the engine snapshot first (adopt_state checks that no
  // sample is pending and the queue holds no boxed callbacks), then the
  // scheduler clone registers itself as the new engine's sink, then the
  // driver/injector clones re-register their hooks on the new scheduler.
  engine_.adopt_state(other.engine_);
  scheduler_ =
      std::make_unique<sched::BatchScheduler>(engine_, *other.scheduler_);
  if (other.driver_) driver_.emplace(*scheduler_, *other.driver_);
  if (other.injector_) injector_.emplace(*scheduler_, *other.injector_);
}

std::unique_ptr<SimRun> SimRun::fork() {
  return std::unique_ptr<SimRun>(new SimRun(*this));
}

void SimRun::run_until(SimTime t) {
  while (engine_.next_event_time() <= t) engine_.step();
}

void SimRun::add_faults(fault::FaultSpec spec) {
  ISTC_EXPECTS(!injector_);
  ISTC_EXPECTS(spec.start >= engine_.now());
  spec.stop = std::min(spec.stop, span_);
  injector_.emplace(*scheduler_, spec);
}

sched::RunResult SimRun::finish() {
  engine_.run();
  sched::RunResult result = scheduler_->take_result(span_);
  if (metrics_ != nullptr) metrics_->ingest(result);
  return result;
}

}  // namespace istc::core
