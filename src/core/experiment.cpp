#include "core/experiment.hpp"

#include <algorithm>

#include "core/driver.hpp"
#include "core/fork.hpp"
#include "core/run_cache.hpp"
#include "metrics/makespan.hpp"
#include "metrics/report.hpp"
#include "metrics/utilization.hpp"
#include "sched/presets.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/presets.hpp"

namespace istc::core {

using cluster::Site;

sched::RunResult run_scenario(const Scenario& scenario) {
  // SimRun owns the construction order (engine → scheduler → driver →
  // injector → metrics); running straight to the end without forking is
  // the degenerate case.
  SimRun run(scenario);
  return run.finish();
}

namespace {

// Free functions default to the process-wide cache; callers owning their
// own RunCache pass it explicitly.
RunCache& cache_or_default(RunCache* cache) {
  return cache != nullptr ? *cache : default_run_cache();
}

}  // namespace

const sched::RunResult& native_baseline(Site site, RunCache* cache) {
  return cache_or_default(cache).native_baseline(site);
}

double native_utilization(Site site, RunCache* cache) {
  const auto& base = native_baseline(site, cache);
  return metrics::average_utilization(base.records, base.machine.cpus, 0,
                                      base.span, metrics::JobFilter::kAll);
}

const sched::RunResult& continual_run(Site site, int cpus_per_job,
                                      Seconds sec_at_1ghz,
                                      double utilization_cap,
                                      RunCache* cache) {
  return cache_or_default(cache).continual_run(site, cpus_per_job,
                                               sec_at_1ghz, utilization_cap);
}

void clear_experiment_caches() { default_run_cache().clear(); }

std::vector<sched::JobRecord> tile_records(
    std::span<const sched::JobRecord> records, SimTime span, int copies) {
  ISTC_EXPECTS(span > 0);
  ISTC_EXPECTS(copies >= 1);
  std::vector<sched::JobRecord> out;
  out.reserve(records.size() * static_cast<std::size_t>(copies));
  for (int c = 0; c < copies; ++c) {
    const SimTime shift = static_cast<SimTime>(c) * span;
    for (const auto& r : records) {
      sched::JobRecord copy = r;
      copy.job.submit += shift;
      copy.start += shift;
      copy.end += shift;
      out.push_back(copy);
    }
  }
  return out;
}

cluster::DowntimeCalendar tile_calendar(const cluster::DowntimeCalendar& cal,
                                        SimTime span, int copies) {
  ISTC_EXPECTS(span > 0);
  ISTC_EXPECTS(copies >= 1);
  std::vector<cluster::DowntimeWindow> windows;
  for (int c = 0; c < copies; ++c) {
    const SimTime shift = static_cast<SimTime>(c) * span;
    for (const auto& w : cal.windows()) {
      windows.push_back({w.start + shift, w.end + shift});
    }
  }
  return cluster::DowntimeCalendar(std::move(windows));
}

MakespanSample omniscient_makespans(Site site, const ProjectSpec& spec,
                                    int reps, std::uint64_t seed,
                                    RunCache* cache) {
  ISTC_EXPECTS(reps >= 1);
  ISTC_EXPECTS(!spec.continual());

  const sched::RunResult& base = native_baseline(site, cache);
  const SimTime span = base.span;

  // Tile the native environment so projects started late in the log keep
  // meeting native load instead of an artificially empty machine (the
  // paper's larger projects outlast the shorter logs).  The tile shift is
  // the drain time, not the log span: jobs submitted near the span end run
  // past it, and copies must not overlap them (capacity is physical).
  constexpr int kCopies = 4;
  SimTime shift = span;
  for (const auto& r : base.records) shift = std::max(shift, r.end);
  const auto tiled = tile_records(base.records, shift, kCopies);
  const cluster::Machine machine(
      cluster::machine_spec(site),
      tile_calendar(cluster::site_downtime(site), shift, kCopies));
  const FreeCapacity free(tiled, machine);

  MakespanSample sample;
  sample.hours.resize(static_cast<std::size_t>(reps));
  Rng root(seed ^ (static_cast<std::uint64_t>(site) << 32));
  std::vector<SimTime> starts(static_cast<std::size_t>(reps));
  for (auto& s : starts) {
    s = static_cast<SimTime>(root.below(static_cast<std::uint64_t>(span)));
  }
  parallel_for(static_cast<std::size_t>(reps), [&](std::size_t i) {
    const OmniscientResult r =
        pack_omniscient(free, machine, spec, starts[i]);
    sample.hours[i] = to_hours(r.makespan);
  });
  return sample;
}

MakespanSample fallible_makespans(Site site, const ProjectSpec& spec,
                                  int nsamples, std::uint64_t seed,
                                  RunCache* cache) {
  ISTC_EXPECTS(!spec.continual());
  const Seconds sec_at_1ghz = static_cast<Seconds>(
      spec.work_per_cpu / cluster::kGiga);
  const sched::RunResult& run =
      continual_run(site, spec.cpus_per_job, sec_at_1ghz, 1.0, cache);
  const auto completions = metrics::interstitial_completions(run.records);
  Rng rng(seed ^ (static_cast<std::uint64_t>(site) << 24) ^
          static_cast<std::uint64_t>(spec.total_jobs));
  MakespanSample sample;
  const auto makespans = metrics::sampled_makespans(
      completions, spec.total_jobs, static_cast<std::size_t>(nsamples),
      run.span, rng);
  sample.hours.reserve(makespans.size());
  for (double m : makespans) sample.hours.push_back(m / 3600.0);
  return sample;
}

}  // namespace istc::core
