#include "core/driver.hpp"

#include <algorithm>
#include <cmath>

#include "trace/tracer.hpp"
#include "util/assert.hpp"

namespace istc::core {

InterstitialDriver::InterstitialDriver(sched::BatchScheduler& scheduler,
                                       ProjectSpec spec,
                                       workload::JobId first_job_id)
    : scheduler_(scheduler),
      spec_(spec),
      job_runtime_(spec.runtime_on(scheduler.machine().spec())),
      next_id_(first_job_id) {
  spec_.check();
  scheduler_.set_post_pass_hook(
      [this](const sched::PassContext& ctx) { on_pass(ctx); });
  // Always registered (fault kills can happen regardless of the preemption
  // recovery mode); the hook only observes, so registration is
  // schedule-neutral.
  scheduler_.set_kill_hook(
      [this](const sched::JobRecord& victim, sched::KillReason reason) {
        on_kill(victim, reason);
      });
  // Guarantee a pass at the project start even if no native event lands
  // there (an idle machine would otherwise never wake the driver).
  scheduler_.wake_at(std::max(spec_.start_time, scheduler.engine().now()));
}

InterstitialDriver::InterstitialDriver(sched::BatchScheduler& scheduler,
                                       const InterstitialDriver& other)
    : scheduler_(scheduler),
      spec_(other.spec_),
      job_runtime_(other.job_runtime_),
      next_id_(other.next_id_),
      submitted_(other.submitted_),
      kills_observed_(other.kills_observed_),
      retries_exhausted_(other.retries_exhausted_),
      resume_(other.resume_),
      retry_queue_(other.retry_queue_),
      retry_attempts_(other.retry_attempts_) {
  scheduler_.set_post_pass_hook(
      [this](const sched::PassContext& ctx) { on_pass(ctx); });
  scheduler_.set_kill_hook(
      [this](const sched::JobRecord& victim, sched::KillReason reason) {
        on_kill(victim, reason);
      });
}

void InterstitialDriver::on_kill(const sched::JobRecord& victim,
                                 sched::KillReason reason) {
  if (!victim.interstitial()) return;
  ++kills_observed_;
  if (reason != sched::KillReason::kPreempted) {
    on_fault_kill(victim);
    return;
  }
  switch (spec_.recovery) {
    case PreemptionRecovery::kNone:
      break;
    case PreemptionRecovery::kRestart:
      // The whole job must be redone; reopen one submission slot.
      ISTC_ASSERT(submitted_ > 0);
      --submitted_;
      break;
    case PreemptionRecovery::kCheckpoint: {
      const Seconds remaining = victim.job.runtime - (victim.end - victim.start);
      if (remaining >= 1) {
        resume_.push_back(remaining);
      }
      // Fully-executed victims (killed at the completion instant) count as
      // done; nothing to resubmit.
      break;
    }
  }
}

void InterstitialDriver::on_fault_kill(const sched::JobRecord& victim) {
  const FaultRetryPolicy& policy = spec_.fault_retry;
  const Seconds elapsed = victim.end - victim.start;
  // Work up to the last checkpoint survives the kill; the rest is redone.
  const Seconds saved = policy.checkpoint_interval > 0
                            ? (elapsed / policy.checkpoint_interval) *
                                  policy.checkpoint_interval
                            : 0;
  const Seconds remaining = victim.job.runtime - saved;
  const Seconds lost = elapsed - saved;
  int attempts = 0;
  if (const auto it = retry_attempts_.find(victim.job.id);
      it != retry_attempts_.end()) {
    attempts = it->second;
    retry_attempts_.erase(it);
  }
  trace::Tracer* tracer = scheduler_.tracer();
  if (ISTC_TRACE_COUNTERS_ON(tracer)) {
    trace::TraceSummary& c = tracer->counters();
    const auto cpus = static_cast<std::uint64_t>(victim.job.cpus);
    c.fault_cpu_sec_lost += cpus * static_cast<std::uint64_t>(lost);
    c.fault_cpu_sec_recovered += cpus * static_cast<std::uint64_t>(saved);
  }
  if (attempts >= policy.max_retries) {
    ++retries_exhausted_;
    if (ISTC_TRACE_COUNTERS_ON(tracer)) {
      ++tracer->counters().fault_retries_exhausted;
    }
    return;  // lineage abandoned (a continual stream refills naturally)
  }
  if (remaining < 1) return;  // killed at the completion instant: done
  const SimTime eligible = victim.end + policy.backoff;
  retry_queue_.push_back(FaultRetry{remaining, attempts + 1, eligible});
  // The backoff expiring is a submission opportunity no other event may
  // land on; on_pass re-arms this every pass while retries wait.
  if (eligible < spec_.stop_time) scheduler_.wake_at(eligible);
}

std::size_t InterstitialDriver::submittable(
    const sched::PassContext& ctx) const {
  const auto& machine = scheduler_.machine();
  std::size_t k = static_cast<std::size_t>(
      ctx.free_cpus / spec_.cpus_per_job);
  std::size_t backlog = resume_.size();
  for (const FaultRetry& r : retry_queue_) {
    if (r.eligible_at > ctx.now) break;  // ordered by eligible_at
    ++backlog;
  }
  if (!spec_.continual()) {
    ISTC_ASSERT(submitted_ <= spec_.total_jobs);
    backlog += spec_.total_jobs - submitted_;
  }
  if (spec_.utilization_cap < 1.0) {
    // Table 8: keep (busy + k*n) / N strictly below the cap.
    const double n = static_cast<double>(machine.total_cpus());
    const double busy = n - static_cast<double>(ctx.free_cpus);
    const double room = spec_.utilization_cap * n - busy;
    const double cap_k = std::floor(room / static_cast<double>(
                                               spec_.cpus_per_job));
    k = std::min(k, static_cast<std::size_t>(std::max(0.0, cap_k)));
  }
  if (!spec_.continual()) k = std::min(k, backlog);
  return k;
}

void InterstitialDriver::on_pass(const sched::PassContext& ctx) {
  if (ctx.now < spec_.start_time || ctx.now >= spec_.stop_time) return;
  if (exhausted() && resume_.empty() && retry_queue_.empty()) return;

  // Figure 1 gating: only when the queue is empty, or when no protected
  // waiting job could start (per estimates) before our jobs would finish.
  // The default protects the whole queue rather than only its head, which
  // keeps freed CPUs flowing to mid-priority waiters when the head is
  // pinned far in the future by overestimated native runtimes.
  bool gate_open = true;
  switch (spec_.gate) {
    case GatePolicy::kQueueProtective:
      gate_open = ctx.queue_empty ||
                  ctx.queue_earliest_start - ctx.now > job_runtime_;
      break;
    case GatePolicy::kHeadOnly:
      gate_open = ctx.queue_empty ||
                  ctx.head_earliest_start - ctx.now > job_runtime_;
      break;
    case GatePolicy::kAlways:
      gate_open = true;
      break;
  }
  const auto& machine = scheduler_.machine();

  // The wall time the gate actually compared against (paper's
  // "backFillWallTime"; the whole-queue variant for the default policy).
  const SimTime wall_time = spec_.gate == GatePolicy::kHeadOnly
                                ? ctx.head_earliest_start
                                : ctx.queue_earliest_start;
  std::size_t started = 0;

  if (gate_open) {
    const std::size_t k = submittable(ctx);
    for (std::size_t i = 0; i < k; ++i) {
      workload::Job job = spec_.make_job(next_id_, ctx.now, machine.spec());
      // Redo work goes out before fresh submissions: checkpointed
      // preemption fragments first, then fault retries whose backoff has
      // expired.  Both run a remainder, never longer than a full job.
      const bool is_fragment = !resume_.empty();
      const bool is_retry =
          !is_fragment && !retry_queue_.empty() &&
          retry_queue_.front().eligible_at <= ctx.now;
      if (is_fragment) {
        job.runtime = resume_.back();
        job.estimate = job.runtime;
      } else if (is_retry) {
        job.runtime = retry_queue_.front().remaining;
        job.estimate = job.runtime;
      }
      if (!scheduler_.try_start_immediately(job)) break;  // downtime ahead
      ++started;
      if (is_fragment) {
        resume_.pop_back();
      } else if (is_retry) {
        retry_attempts_.emplace(job.id, retry_queue_.front().attempts);
        retry_queue_.pop_front();
        if (trace::Tracer* t = scheduler_.tracer();
            ISTC_TRACE_COUNTERS_ON(t)) {
          ++t->counters().fault_retries;
        }
      } else {
        ++submitted_;
      }
      ++next_id_;
    }
  }

  // Every gate evaluation becomes one trace record: verdict, the wall time
  // it compared, and the k it submitted (open) or withheld (closed).
  trace::Tracer* tracer = scheduler_.tracer();
  if (ISTC_TRACE_COUNTERS_ON(tracer)) {
    const std::size_t rejected = gate_open ? 0 : submittable(ctx);
    trace::TraceSummary& c = tracer->counters();
    ++c.gate_decisions;
    ++(gate_open ? c.gate_open : c.gate_closed);
    c.interstitial_submitted += started;
    c.interstitial_rejected_by_gate += rejected;
    if (ISTC_TRACE_EVENTS_ON(tracer)) {
      trace::TraceEvent e;
      e.time = ctx.now;
      e.kind = trace::EventKind::kGateDecision;
      e.open = gate_open;
      e.aux_time = ctx.queue_empty ? kTimeInfinity : wall_time;
      e.value = static_cast<std::int64_t>(gate_open ? started : rejected);
      tracer->record(e);
    }
  }

  // Keep the stream alive across machine-idle stretches: if nothing is
  // running and nothing is queued, no completion event will retrigger us —
  // wake after the blocking downtime window (the only reason an empty
  // machine refuses an interstitial job).
  if (machine.in_use() == 0 && ctx.queue_empty &&
      (!exhausted() || !resume_.empty() || !retry_queue_.empty())) {
    const auto& cal = machine.downtime();
    SimTime wake = kTimeInfinity;
    if (cal.is_down(ctx.now)) {
      wake = cal.up_again_at(ctx.now);
    } else if (!cal.can_run(ctx.now, job_runtime_)) {
      wake = cal.up_again_at(cal.next_down_start(ctx.now));
    }
    if (wake < spec_.stop_time) scheduler_.wake_at(wake);
  }

  // Retries still serving their backoff: re-arm the wake every pass so
  // wake_at's "an earlier wake covers this one" dedup stays sound (each
  // covering pass lands here and re-arms until the backoff expires).
  if (!retry_queue_.empty() && retry_queue_.front().eligible_at > ctx.now &&
      retry_queue_.front().eligible_at < spec_.stop_time) {
    scheduler_.wake_at(retry_queue_.front().eligible_at);
  }
}

}  // namespace istc::core
