#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

/// \file protocol.hpp
/// The what-if wire protocol: newline-delimited JSON, one request per
/// line, one reply per line, schema `istc.whatif.v1`.
///
/// Requests (all fields beyond "op" optional unless noted):
///
///   {"op":"whatif", "jobs":8, "cpus":16, "runtime_s":600,
///    "class":"native"|"interstitial", "horizon_s":86400,
///    "points_s":[0,3600,7200], "mode":"forked"|"scratch",
///    "project":"P"}
///       Admission query: if project P submitted `jobs` jobs of
///       `cpus` x `runtime_s` now (or at each offset in points_s), what
///       would happen by `horizon_s`?  mode=scratch re-simulates from
///       time zero instead of forking the live baseline — the reference
///       arm; replies are bit-identical across modes.
///
///   {"op":"ingest", "line":"<one SWF record>"}
///       Feed one line of the site's log tail into the live baseline.
///
///   {"op":"status"}      Daemon introspection (epoch, frontier, hash)
///                        plus query-latency quantiles.
///   {"op":"stats"}       Full wall-clock telemetry: counters, latency
///                        quantiles, per-stage profile, pool saturation,
///                        span-recorder counters (what `istc top` renders;
///                        the same data backs `GET /metrics`).
///   {"op":"shutdown"}    Stop accepting work; the server exits.
///
/// Replies always carry {"schema":"istc.whatif.v1","op":<echo>} and
/// either the op's payload or {"error":{"code":...,"message":...}}.
/// Purity contract: *whatif* replies contain no wall-clock fields — the
/// same query against the same baseline epoch is byte-identical
/// regardless of concurrency or query order (the property the service
/// tests pin).  Wall-clock telemetry lives only in status/stats replies
/// and the /metrics endpoint, which are never hashed or compared.

namespace istc::service {

inline constexpr std::string_view kWhatIfSchema = "istc.whatif.v1";

enum class Op : unsigned char { kWhatIf, kIngest, kStatus, kStats, kShutdown };

/// Bounds a single query may not exceed (a socket peer is untrusted; the
/// daemon refuses rather than simulates absurd shapes).
inline constexpr std::size_t kMaxQueryJobs = 100000;
inline constexpr std::size_t kMaxQueryPoints = 64;

struct WhatIfQuery {
  std::string project = "adhoc";
  std::size_t jobs = 1;
  int cpus = 1;
  Seconds runtime_s = 60;
  bool interstitial = false;
  Seconds horizon_s = 24 * kSecondsPerHour;
  /// Offsets from the baseline frontier at which to try the submission
  /// (a multi-point what-if sweeps one fork per offset).
  std::vector<Seconds> points_s = {0};
  bool scratch = false;
};

/// A parsed request: `error` empty means the request is well-formed.
struct Request {
  Op op = Op::kStatus;
  WhatIfQuery query;  ///< op == kWhatIf
  std::string line;   ///< op == kIngest
  std::string error_code;
  std::string error;
};

/// Parse and validate one request line.  Never throws; malformed JSON,
/// unknown ops, wrong types, and out-of-range shapes all land in
/// Request::error with a machine-readable error_code.
Request parse_request(std::string_view text);

/// One-line error reply (no trailing newline; the transport appends it).
std::string error_reply(std::string_view op, std::string_view code,
                        std::string_view message);

}  // namespace istc::service
