#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

/// \file baseline.hpp
/// SnapshotChain — bounded-staleness incremental re-simulation.
///
/// The what-if daemon keeps one *live* baseline run advanced to the tail
/// frontier, plus a chain of copy-on-write snapshots (forks) taken at a
/// configurable sim-time cadence.  Each snapshot records the ingest
/// sequence number current when it was taken: "accepted jobs [0, seq)
/// were already submitted into this run".
///
/// In-order tail lines extend the live run directly.  An out-of-order
/// line (submit time at or before the live clock) *invalidates* the live
/// run: rewind_to() discards it and every snapshot newer than the line,
/// re-forks from the newest surviving snapshot, and returns its seq — the
/// caller (service::Session) replays accepted jobs [seq, end) in ingest
/// order and re-advances.  Replay in ingest order reproduces the engine's
/// event sequencing exactly, so the rebuilt baseline is bit-identical to
/// a from-scratch run over the full accepted tail (pinned by
/// tests/service/test_staleness_differential.cpp, for TailRun and for
/// SimRun/FleetRun baselines).
///
/// Generic over the repo's fork protocol (core::SimRun, grid::FleetRun,
/// service::TailRun):
///
///   std::unique_ptr<Run> fork();
///   void run_until(SimTime t);
///   SimTime now() const;
///
/// Rewind-target rule: a snapshot is a legal base for a line submitting
/// at S only when its clock is *strictly* before S — or when it is the
/// virgin time-zero snapshot, which has fired no events at all.  Strict
/// inequality matters: a snapshot standing exactly at S has already run
/// its scheduling pass at S, so submitting another S-job there would fire
/// a second pass at S, while a from-scratch replay sees all S-jobs in one
/// pass.  Rewinding past S keeps the pass structure identical.

namespace istc::service {

template <class Run>
class SnapshotChain {
 public:
  /// \param initial the run at time zero (nothing fired yet).
  /// \param interval sim-time cadence between snapshots (> 0).  The
  ///        time-zero snapshot is always kept, so a rewind target exists
  ///        for any submit time.
  SnapshotChain(std::unique_ptr<Run> initial, Seconds interval)
      : interval_(interval) {
    ISTC_EXPECTS(initial != nullptr);
    ISTC_EXPECTS(interval_ > 0);
    live_ = std::move(initial);
    snaps_.push_back(Snapshot{live_->fork(), 0, /*virgin=*/true});
  }

  Run& live() { return *live_; }
  const Run& live() const { return *live_; }

  std::size_t snapshot_count() const { return snaps_.size(); }

  /// Sequence number the *live* run has been fed up to; the caller bumps
  /// it via note_submitted after feeding jobs into live().
  std::size_t live_seq() const { return live_seq_; }
  void note_submitted(std::size_t seq) { live_seq_ = seq; }

  /// Advance the live run to t, taking a snapshot whenever the clock
  /// crosses the cadence.  Snapshots are forked at real event boundaries
  /// (run_until never overshoots), tagged with the current live_seq.
  void advance_to(SimTime t) {
    while (true) {
      const SimTime next_snap = next_snapshot_time();
      if (next_snap > t) break;
      live_->run_until(next_snap);
      // The clock may stand short of next_snap (no event exactly there);
      // the snapshot is still taken — its *clock* is what rewinds key on.
      snaps_.push_back(Snapshot{live_->fork(), live_seq_, /*virgin=*/false});
      last_snapshot_mark_ = next_snap;
    }
    live_->run_until(t);
  }

  /// Invalidate the live run for an out-of-order submission at time S:
  /// drop every snapshot that has advanced to S or beyond, re-fork the
  /// newest survivor as the new live run, and return its ingest seq.
  /// The caller must replay accepted jobs [seq, end) in ingest order and
  /// then advance_to the old frontier.  The time-zero snapshot always
  /// survives, so this never fails.
  std::size_t rewind_to(SimTime s) {
    while (snaps_.size() > 1 &&
           !(snaps_.back().virgin || snaps_.back().run->now() < s)) {
      snaps_.pop_back();
    }
    ISTC_ASSERT(snaps_.back().virgin || snaps_.back().run->now() < s);
    live_ = snaps_.back().run->fork();
    live_seq_ = snaps_.back().seq;
    last_snapshot_mark_ = snaps_.back().virgin ? 0 : snaps_.back().run->now();
    ++rewinds_;
    return live_seq_;
  }

  std::size_t rewinds() const { return rewinds_; }

 private:
  struct Snapshot {
    std::unique_ptr<Run> run;
    std::size_t seq = 0;  ///< accepted jobs [0, seq) are inside this run
    bool virgin = false;  ///< time-zero fork, no events fired
  };

  SimTime next_snapshot_time() const { return last_snapshot_mark_ + interval_; }

  Seconds interval_;
  std::unique_ptr<Run> live_;
  std::vector<Snapshot> snaps_;
  std::size_t live_seq_ = 0;
  SimTime last_snapshot_mark_ = 0;
  std::size_t rewinds_ = 0;
};

}  // namespace istc::service
