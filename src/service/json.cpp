#include "service/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace istc::service {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

double Value::num_or(std::string_view key, double def) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number : def;
}

std::string Value::str_or(std::string_view key, std::string_view def) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->string : std::string(def);
}

bool Value::bool_or(std::string_view key, bool def) const {
  const Value* v = find(key);
  return v != nullptr && v->is_bool() ? v->boolean : def;
}

namespace {

/// Recursive-descent parser over a bounded cursor.  Errors are sticky:
/// once set, every production bails out immediately.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    result.value = parse_value(0);
    if (!error_.empty()) {
      result.value = Value{};
      result.error = error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.value = Value{};
      result.error = "trailing characters after value";
    }
    return result;
  }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value(std::size_t depth) {
    Value v;
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return v;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return v;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (literal("null")) return v;
    if (literal("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      return v;
    }
    return parse_number();
  }

  Value parse_number() {
    Value v;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      digits = digits ||
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
      ++pos_;
    }
    if (!digits) {
      fail("invalid token");
      return v;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("invalid number '" + token + "'");
      return v;
    }
    v.kind = Value::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
          return out;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // ASCII-range \uXXXX only (what json_escape emits for control
            // characters); reject the rest rather than silently mangle.
            if (pos_ + 4 > text_.size()) {
              fail("unterminated \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
                return out;
              }
            }
            if (code > 0x7F) {
              fail("non-ASCII \\u escape");
              return out;
            }
            c = static_cast<char>(code);
            break;
          }
          default:
            fail("unsupported escape");
            return out;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  Value parse_array(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::kArray;
    ++pos_;  // '['
    if (consume(']')) return v;
    while (error_.empty()) {
      v.array.push_back(parse_value(depth + 1));
      if (consume(']')) return v;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return v;
      }
    }
    return v;
  }

  Value parse_object(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    if (consume('}')) return v;
    while (error_.empty()) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return v;
      }
      std::string key = parse_string();
      if (!error_.empty()) return v;
      if (!consume(':')) {
        fail("expected ':'");
        return v;
      }
      v.object[std::move(key)] = parse_value(depth + 1);
      if (consume('}')) return v;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return v;
      }
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (ch == '\n') {
      out += "\\n";
    } else if (ch == '\t') {
      out += "\\t";
    } else if (ch == '\r') {
      out += "\\r";
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(ch));
      out += buf;
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void JsonWriter::key(std::string_view k) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

void JsonWriter::comma() {
  if (!first_) out_ += ',';
  first_ = false;
}

void JsonWriter::value(std::string_view s) {
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(double v) { out_ += format_double(v); }

void JsonWriter::value(std::int64_t v) { out_ += std::to_string(v); }

void JsonWriter::value(std::uint64_t v) { out_ += std::to_string(v); }

void JsonWriter::value(bool v) { out_ += v ? "true" : "false"; }

}  // namespace istc::service
