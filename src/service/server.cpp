#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace istc::service {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int make_listener(const Endpoint& endpoint) {
  if (!endpoint.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("socket path too long: " + endpoint.unix_path);
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    ::unlink(endpoint.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
        0) {
      ::close(fd);
      fail("bind " + endpoint.unix_path);
    }
    if (::listen(fd, 64) < 0) {
      ::close(fd);
      fail("listen");
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.tcp_port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    fail("bind port " + std::to_string(endpoint.tcp_port));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    fail("listen");
  }
  return fd;
}

int connect_to(const Endpoint& endpoint) {
  if (!endpoint.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("socket path too long: " + endpoint.unix_path);
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
        0) {
      ::close(fd);
      fail("connect " + endpoint.unix_path);
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.tcp_port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    fail("connect port " + std::to_string(endpoint.tcp_port));
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// "GET /metrics HTTP/1.1" (or any first line starting "GET ") marks an
/// HTTP scrape rather than an NDJSON peer.  One request, one response,
/// close — exactly what a Prometheus scraper does.
bool looks_like_http(const std::string& buffer) {
  return buffer.rfind("GET ", 0) == 0;
}

std::string http_response(int code, std::string_view status,
                          std::string_view content_type, std::string body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    std::string(status) + "\r\nContent-Type: " +
                    std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Server::Server(Session& session, const Endpoint& endpoint)
    : session_(session), endpoint_(endpoint) {
  listen_fd_ = make_listener(endpoint_);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (!endpoint_.unix_path.empty()) ::unlink(endpoint_.unix_path.c_str());
}

void Server::serve() {
  while (!session_.shutdown_requested()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("poll");
    }
    if (ready == 0) continue;  // timeout: re-check the shutdown flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      fail("accept");
    }
    threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  bool sniffed = false;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (!sniffed && buffer.size() >= 4) {
      sniffed = true;
      if (looks_like_http(buffer)) {
        // Wait for the end of the request line, answer, close.  Headers
        // and body (GETs have none) are ignored.
        while (buffer.find('\n') == std::string::npos) {
          const ssize_t m = ::recv(fd, chunk, sizeof chunk, 0);
          if (m < 0 && errno == EINTR) continue;
          if (m <= 0) break;
          buffer.append(chunk, static_cast<std::size_t>(m));
        }
        const std::size_t sp = buffer.find(' ', 4);
        const std::string path = buffer.substr(4, sp == std::string::npos
                                                      ? std::string::npos
                                                      : sp - 4);
        if (path == "/metrics") {
          send_all(fd, http_response(200, "OK",
                                     "text/plain; version=0.0.4",
                                     session_.prometheus_text()));
        } else {
          send_all(fd, http_response(404, "Not Found", "text/plain",
                                     "only /metrics is served here\n"));
        }
        ::close(fd);
        return;
      }
    }
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) {
        if (!send_all(fd, session_.handle_line(line) + "\n")) {
          open = false;
          break;
        }
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  // A final unterminated line still gets an answer (clients that close
  // without a trailing newline).
  if (open && !buffer.empty()) {
    send_all(fd, session_.handle_line(buffer) + "\n");
  }
  ::close(fd);
}

std::vector<std::string> ask(const Endpoint& endpoint,
                             const std::vector<std::string>& requests) {
  const int fd = connect_to(endpoint);
  std::string out;
  for (const std::string& r : requests) {
    out += r;
    out += '\n';
  }
  if (!send_all(fd, out)) {
    ::close(fd);
    throw std::runtime_error("ask: send failed");
  }
  ::shutdown(fd, SHUT_WR);
  std::string in;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    in.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::vector<std::string> replies;
  std::size_t start = 0;
  for (std::size_t nl = in.find('\n', start); nl != std::string::npos;
       nl = in.find('\n', start)) {
    replies.emplace_back(in.substr(start, nl - start));
    start = nl + 1;
  }
  if (start < in.size()) replies.emplace_back(in.substr(start));
  return replies;
}

}  // namespace istc::service
