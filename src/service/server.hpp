#pragma once

#include <string>
#include <thread>
#include <vector>

#include "service/session.hpp"

/// \file server.hpp
/// The NDJSON socket transport around a Session.
///
/// One listener (Unix-domain path or loopback TCP port), one thread per
/// connection, one request line in / one reply line out.  All protocol
/// logic lives in Session::handle_line, which never throws — the
/// transport only moves bytes.  A handled {"op":"shutdown"} makes
/// serve() stop accepting, join the connection threads, and return.

namespace istc::service {

struct Endpoint {
  /// Unix-domain socket path; non-empty selects AF_UNIX.
  std::string unix_path;
  /// Loopback TCP port; used when unix_path is empty.
  int tcp_port = 0;
};

class Server {
 public:
  /// Bind and listen (throws std::runtime_error on socket failures; the
  /// CLI surfaces the message).  An existing file at unix_path is
  /// unlinked first — the daemon owns its socket path.
  Server(Session& session, const Endpoint& endpoint);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; returns after a shutdown request has been handled and
  /// every connection thread has been joined.
  void serve();

 private:
  void handle_connection(int fd);

  Session& session_;
  Endpoint endpoint_;
  int listen_fd_ = -1;
  std::vector<std::thread> threads_;
};

/// Client side (`istc ask`): connect to `endpoint`, send each request
/// line, and return one reply line per request.  Throws
/// std::runtime_error on connect/transport failure.
std::vector<std::string> ask(const Endpoint& endpoint,
                             const std::vector<std::string>& requests);

}  // namespace istc::service
