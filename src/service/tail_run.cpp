#include "service/tail_run.hpp"

#include <algorithm>

#include "sched/presets.hpp"
#include "util/assert.hpp"

namespace istc::service {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

TailRun::TailRun(const TailConfig& cfg)
    : site_(cfg.site),
      span_(cluster::site_span(cfg.site)),
      engine_(sim::QueueImpl::kCalendar) {
  scheduler_ = std::make_unique<sched::BatchScheduler>(
      engine_, cluster::make_machine(site_), sched::site_policy(site_));
  if (cfg.stream) {
    driver_.emplace(*scheduler_, *cfg.stream, kStreamIdBase);
  }
}

TailRun::TailRun(TailRun& other)
    : site_(other.site_), span_(other.span_), engine_(other.engine_.queue_impl()) {
  // Same order as SimRun's fork constructor: the engine snapshot first,
  // then the scheduler clone registers itself as the new engine's sink,
  // then the driver clone re-registers its hooks on the new scheduler.
  engine_.adopt_state(other.engine_);
  scheduler_ =
      std::make_unique<sched::BatchScheduler>(engine_, *other.scheduler_);
  if (other.driver_) driver_.emplace(*scheduler_, *other.driver_);
}

std::unique_ptr<TailRun> TailRun::fork() {
  return std::unique_ptr<TailRun>(new TailRun(*this));
}

void TailRun::run_until(SimTime t) {
  while (engine_.next_event_time() <= t) engine_.step();
}

void TailRun::add_stream(const core::ProjectSpec& spec,
                         workload::JobId first_id) {
  ISTC_EXPECTS(!driver_);
  core::ProjectSpec bounded = spec;
  bounded.start_time = std::max(bounded.start_time, engine_.now());
  driver_.emplace(*scheduler_, bounded, first_id);
}

sched::RunResult TailRun::finish() {
  engine_.run();
  return scheduler_->take_result(span_);
}

std::uint64_t TailRun::state_hash() const {
  std::uint64_t h = kFnvOffset;
  const auto& records = scheduler_->completed_records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const sched::JobRecord& r = records[i];
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.cpus));
  }
  for (const sched::JobRecord& r : scheduler_->killed_records()) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
  }
  h = fnv1a_u64(h, static_cast<std::uint64_t>(engine_.now()));
  return h;
}

}  // namespace istc::service
