#pragma once

#include <cstddef>
#include <map>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file json.hpp
/// A minimal JSON value and a non-throwing, depth-limited parser.
///
/// The what-if daemon speaks newline-delimited JSON with untrusted peers,
/// so the parser must survive anything a socket can deliver: truncated
/// documents, deep nesting bombs, stray bytes after the value.  parse()
/// therefore never throws — it returns an empty optional-style Value with
/// an error string — and refuses documents nested deeper than kMaxDepth.
///
/// Writing goes through JsonWriter, which mirrors the repo's hand-rolled
/// report idiom (grid/report.cpp): escaped strings, %.6g numbers, ordered
/// keys — so two equal inputs serialize byte-identically, which the
/// service's purity property test depends on.

namespace istc::service {

/// An immutable parsed JSON value.  Requests only ever look members up by
/// name (never iterate), so a std::map keeps it simple.
class Value {
 public:
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Typed member accessors with defaults (missing or wrong type -> def).
  double num_or(std::string_view key, double def) const;
  std::string str_or(std::string_view key, std::string_view def) const;
  bool bool_or(std::string_view key, bool def) const;
};

/// Parse outcome: ok() iff the whole input was one valid JSON value.
struct ParseResult {
  Value value;
  std::string error;  ///< empty on success
  bool ok() const { return error.empty(); }
};

/// Nesting bound: a request deeper than this is rejected, not recursed
/// into (stack safety against `[[[[...` bombs from the socket).
inline constexpr std::size_t kMaxDepth = 32;

/// Parse one JSON document.  Never throws; trailing whitespace is allowed,
/// trailing non-whitespace is an error.
ParseResult parse(std::string_view text);

/// Append-only JSON writer with deterministic formatting.
class JsonWriter {
 public:
  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

  void begin_object() { out_ += '{'; first_ = true; }
  void end_object() { out_ += '}'; first_ = false; }
  void begin_array() { out_ += '['; first_ = true; }
  void end_array() { out_ += ']'; first_ = false; }

  /// Start a member: emits the separating comma and the escaped key.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);

  /// Element separator for arrays of values.
  void comma();

  template <class T>
  void member(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  std::string out_;
  bool first_ = true;
};

/// Escape a string for embedding in JSON (same table as grid/report.cpp).
std::string json_escape(std::string_view s);

/// The repo-wide deterministic double format ("%.6g", integral values
/// printed without an exponent where possible).
std::string format_double(double v);

}  // namespace istc::service
