#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cluster/presets.hpp"
#include "core/driver.hpp"
#include "core/project.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

/// \file tail_run.hpp
/// TailRun — a live simulation stack fed from a streaming workload tail.
///
/// Where core::SimRun wraps one *scenario* (a fixed pre-generated log),
/// TailRun wraps an *open-ended* run: it starts empty and jobs arrive one
/// at a time through submit() as the daemon ingests an SWF tail.  It
/// exposes the same fork protocol as SimRun and grid::FleetRun —
///
///   std::unique_ptr<TailRun> fork();
///   void run_until(SimTime t);
///
/// — so a core::SweepRunner<TailRun> can evaluate multi-point what-if
/// queries against a forked baseline, and service::SnapshotChain can keep
/// a rewindable snapshot history for out-of-order tail lines.
///
/// Id discipline (the streaming analogue of SimRun's "driver ids start
/// after the log"): ingested native jobs get dense ids assigned by the
/// caller from 0; a baseline harvest stream counts from kStreamIdBase;
/// speculative what-if jobs count from kSpeculativeIdBase — three disjoint
/// ranges, so a query can pick its own jobs out of a drained result.

namespace istc::service {

/// First id of the baseline's continual harvest stream (when configured).
inline constexpr workload::JobId kStreamIdBase = 0x10000000;
/// First id of a query's speculative jobs (native or interstitial).
inline constexpr workload::JobId kSpeculativeIdBase = 0x40000000;

struct TailConfig {
  cluster::Site site = cluster::Site::kBlueMountain;
  /// Baseline harvest stream co-simulated with the ingested natives
  /// (nullopt = natives only).  Ids count from kStreamIdBase.
  std::optional<core::ProjectSpec> stream;
};

class TailRun {
 public:
  explicit TailRun(const TailConfig& cfg);

  TailRun(const TailRun&) = delete;
  TailRun& operator=(const TailRun&) = delete;
  TailRun(TailRun&&) = delete;

  /// Feed one job into the live run (job.submit must be >= now()).  The
  /// submission is an engine event; nothing simulates until run_until.
  void submit(const workload::Job& job) { scheduler_->submit(job); }

  /// Advance until every event at time <= t has fired (same contract as
  /// SimRun::run_until: the clock stands at the last real event boundary).
  void run_until(SimTime t);

  /// Copy-on-write snapshot at the current boundary (see core/fork.hpp for
  /// the machinery; `this` is mutated only to freeze shared log prefixes).
  std::unique_ptr<TailRun> fork();

  /// Attach a bounded interstitial stream from here on (spec.start_time is
  /// clamped up to now()).  One driver per run: ISTC_EXPECTS(!driver()).
  /// Queries use this to evaluate speculative interstitial projects on a
  /// natives-only baseline fork.
  void add_stream(const core::ProjectSpec& spec, workload::JobId first_id);

  /// Drain every remaining event and collect the result.  Requires the
  /// run to be finite: every ingested job bounded, and any stream's
  /// stop_time < infinity (query forks cut continual streams short via
  /// InterstitialDriver::set_stop_time).
  sched::RunResult finish();

  SimTime now() const { return engine_.now(); }
  cluster::Site site() const { return site_; }
  sched::BatchScheduler& scheduler() { return *scheduler_; }
  const sched::BatchScheduler& scheduler() const { return *scheduler_; }
  core::InterstitialDriver* driver() {
    return driver_ ? &*driver_ : nullptr;
  }
  const core::InterstitialDriver* driver() const {
    return driver_ ? &*driver_ : nullptr;
  }

  /// FNV-1a over the *observable mid-run state*: completed records (id,
  /// start, end, cpus), kills (id, start, end), and now() — the streaming
  /// analogue of grid::hash_run, usable without draining.  Two runs that
  /// ingested the same tail and advanced to the same time hash equal; the
  /// staleness differential test pins incremental == scratch with it.
  std::uint64_t state_hash() const;

 private:
  /// Fork constructor (use fork()); mirrors SimRun's clone order: engine
  /// snapshot, then scheduler clone (registers as the new engine's sink),
  /// then the driver clone re-registers its hooks.
  explicit TailRun(TailRun& other);

  cluster::Site site_;
  SimTime span_ = 0;
  sim::Engine engine_;
  // unique_ptr keeps the scheduler's address stable (the driver holds a
  // reference to it); engine_ is referenced by everything, declared first.
  std::unique_ptr<sched::BatchScheduler> scheduler_;
  std::optional<core::InterstitialDriver> driver_;
};

}  // namespace istc::service
