#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/project.hpp"
#include "core/run_cache.hpp"
#include "metrics/registry.hpp"
#include "service/baseline.hpp"
#include "service/protocol.hpp"
#include "service/tail_run.hpp"
#include "workload/job.hpp"

/// \file session.hpp
/// Session — the what-if daemon's brain, transport-free.
///
/// One Session owns the live baseline (a SnapshotChain<TailRun>), the
/// accepted-tail replay journal, the reference-arm RunCache, and the
/// metrics registry.  The entire protocol funnels through handle_line():
/// one request line in, one reply line out, never throwing — which is
/// what makes the server loop trivial and the whole daemon testable (and
/// fuzzable) without a socket.
///
/// Concurrency model: a mutex serializes *state transitions* — ingest,
/// snapshot/rewind bookkeeping, fork creation, metrics — but speculative
/// simulation runs outside the lock on the calling thread.  A what-if
/// query captures its epoch and creates its forks in one critical
/// section, so every reply is computed against a consistent baseline
/// even while other clients ingest; the reply's byte content depends
/// only on (epoch, query), never on interleaving (the purity property
/// tests/service/test_service_property.cpp pins).
///
/// Staleness model: the live run is advanced to frontier-1 (one tick shy
/// of the newest accepted submit time), so an in-order tail line is
/// always a future event.  A line submitting at or before the live clock
/// invalidates the baseline: the chain rewinds to the newest snapshot
/// strictly older than the line, the accepted tail [seq, end) replays in
/// ingest order, and the clock re-advances — bit-identical to a
/// from-scratch run over the full accepted tail.

namespace istc::service {

struct SessionConfig {
  cluster::Site site = cluster::Site::kBlueMountain;
  /// Baseline harvest stream (nullopt = natives-only baseline).
  std::optional<core::ProjectSpec> stream;
  /// Sim-time cadence between baseline snapshots: the rewind cost bound.
  Seconds snapshot_interval = 6 * kSecondsPerHour;
};

class Session {
 public:
  explicit Session(const SessionConfig& cfg);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Handle one request line, return one reply line (no trailing
  /// newline).  Thread-safe; never throws.
  std::string handle_line(std::string_view line);

  /// True once a shutdown request was handled; the server drains and exits.
  bool shutdown_requested() const;

  // -- introspection (tests / bench) ---------------------------------------

  std::uint64_t epoch() const;
  SimTime frontier() const;
  std::uint64_t baseline_hash();
  std::size_t accepted_jobs() const;
  std::size_t snapshot_count() const;
  std::size_t rewinds() const;
  const SessionConfig& config() const { return cfg_; }

  /// The metrics registry (counters + the query latency histogram).
  /// Take a quiesced snapshot: concurrent handle_line calls mutate it
  /// under the session mutex.
  metrics::Registry& registry() { return registry_; }

  /// The `GET /metrics` body: every registry instrument, the latency
  /// summary, per-stage profile quantiles, ThreadPool saturation and
  /// span-recorder counters in Prometheus text format.  Thread-safe.
  std::string prometheus_text();

 private:
  struct QueryBase;  // epoch-consistent fork set, created under the lock

  std::string do_whatif(const WhatIfQuery& q);
  std::string do_ingest(const std::string& line);
  std::string do_status();
  std::string do_stats();
  std::string do_shutdown();

  /// Seconds of wall time since the last accepted ingest (-1 before the
  /// first): the operator's "how stale is my tail feed" number.  Caller
  /// holds mu_.
  double ingest_lag_s() const;

  /// Feed an accepted job into the live baseline: fast path for future
  /// submits, rewind + replay for out-of-order ones.  Caller holds mu_.
  void ingest_job(workload::Job job);

  SessionConfig cfg_;
  int machine_cpus_ = 0;
  double clock_ghz_ = 0.0;

  /// Wall-clock anchors (telemetry only; never in whatif replies).
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point last_accepted_ingest_{};

  mutable std::mutex mu_;
  SnapshotChain<TailRun> chain_;
  /// Every accepted job in ingest order — the replay journal.  Ids are
  /// dense [0, size).
  std::vector<workload::Job> accepted_;
  SimTime frontier_ = 0;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;

  core::RunCache ref_cache_;

  metrics::Registry registry_;
  metrics::CounterId queries_;
  metrics::CounterId query_errors_;
  metrics::CounterId ingests_;
  metrics::CounterId ingests_accepted_;
  metrics::CounterId ingests_rejected_;
  metrics::CounterId rewinds_metric_;
  metrics::GaugeId epoch_gauge_;
  metrics::GaugeId snapshots_gauge_;
  metrics::HistogramId query_latency_us_;
};

}  // namespace istc::service
