#include "service/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "cluster/presets.hpp"
#include "core/sweep.hpp"
#include "obs/exposition.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "service/json.hpp"
#include "util/thread_pool.hpp"
#include "workload/swf.hpp"

namespace istc::service {

namespace {

/// User/group for speculative what-if *native* jobs: a reserved range
/// outside generated populations and distinct from kInterstitialUser.
constexpr workload::UserId kWhatIfUser = 59000;
constexpr workload::GroupId kWhatIfGroup = 590;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

std::string hex_hash(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Per-point verdict inputs: (submit, start, wait) of every native
/// record, keyed by id, restricted to ingested natives.
std::map<workload::JobId, Seconds> native_waits(const sched::RunResult& run) {
  std::map<workload::JobId, Seconds> waits;
  for (const auto& r : run.records) {
    if (r.job.id < kStreamIdBase && !r.job.interstitial()) {
      waits.emplace(r.job.id, r.start - r.job.submit);
    }
  }
  return waits;
}

double harvested_cpu_seconds(const sched::RunResult& run, workload::JobId lo,
                             workload::JobId hi) {
  double total = 0.0;
  for (const auto& r : run.records) {
    if (r.job.id >= lo && r.job.id < hi) {
      total += static_cast<double>(r.job.cpus) *
               static_cast<double>(r.end - r.start);
    }
  }
  return total;
}

}  // namespace

Session::Session(const SessionConfig& cfg)
    : cfg_(cfg),
      chain_(std::make_unique<TailRun>(TailConfig{cfg.site, cfg.stream}),
             cfg.snapshot_interval) {
  const cluster::MachineSpec spec = cluster::machine_spec(cfg_.site);
  machine_cpus_ = spec.cpus;
  clock_ghz_ = spec.clock_ghz;
  queries_ = registry_.counter("service.queries");
  query_errors_ = registry_.counter("service.query_errors");
  ingests_ = registry_.counter("service.ingests");
  ingests_accepted_ = registry_.counter("service.ingests_accepted");
  ingests_rejected_ = registry_.counter("service.ingests_rejected");
  rewinds_metric_ = registry_.counter("service.rewinds");
  epoch_gauge_ = registry_.gauge("service.epoch");
  snapshots_gauge_ = registry_.gauge("service.snapshots");
  query_latency_us_ = registry_.histogram("service.query_latency_us",
                                          metrics::Determinism::kWallClock);
}

std::string Session::handle_line(std::string_view line) {
  try {
    const Request req = parse_request(line);
    if (!req.error.empty()) {
      std::lock_guard lk(mu_);
      registry_.add(query_errors_);
      return error_reply("error", req.error_code, req.error);
    }
    switch (req.op) {
      case Op::kWhatIf: {
        // Root span: one trace per query, with capture / sweep arms /
        // verdict hanging off it in the exported Chrome trace.
        obs::ScopedSpan span("query.whatif",
                             static_cast<std::int64_t>(req.query.jobs));
        return do_whatif(req.query);
      }
      case Op::kIngest: {
        obs::ScopedSpan span("query.ingest");
        return do_ingest(req.line);
      }
      case Op::kStatus:
        return do_status();
      case Op::kStats:
        return do_stats();
      case Op::kShutdown:
        return do_shutdown();
    }
    return error_reply("error", "internal", "unreachable");
  } catch (const std::exception& e) {
    return error_reply("error", "internal", e.what());
  } catch (...) {
    return error_reply("error", "internal", "unknown exception");
  }
}

bool Session::shutdown_requested() const {
  std::lock_guard lk(mu_);
  return shutdown_;
}

std::uint64_t Session::epoch() const {
  std::lock_guard lk(mu_);
  return epoch_;
}

SimTime Session::frontier() const {
  std::lock_guard lk(mu_);
  return frontier_;
}

std::uint64_t Session::baseline_hash() {
  std::lock_guard lk(mu_);
  return chain_.live().state_hash();
}

std::size_t Session::accepted_jobs() const {
  std::lock_guard lk(mu_);
  return accepted_.size();
}

std::size_t Session::snapshot_count() const {
  std::lock_guard lk(mu_);
  return chain_.snapshot_count();
}

std::size_t Session::rewinds() const {
  std::lock_guard lk(mu_);
  return chain_.rewinds();
}

// -- ingest -----------------------------------------------------------------

void Session::ingest_job(workload::Job job) {
  job.id = static_cast<workload::JobId>(accepted_.size());
  job.klass = workload::JobClass::kNative;
  if (job.submit > chain_.live().now()) {
    // In-order: the submission is still a future event for the live run.
    chain_.live().submit(job);
    accepted_.push_back(job);
  } else {
    // Out-of-order: the live run has advanced past (or onto) the submit
    // time, so everything it simulated from there is invalid.  Rewind to
    // the newest snapshot strictly older than the line and replay the
    // accepted tail in ingest order — the order the from-scratch oracle
    // uses, so the rebuilt baseline is bit-identical to it.
    obs::ScopedSpan span("ingest.rewind");
    obs::ScopedTimer timer(obs::Stage::kIngestRewind);
    accepted_.push_back(job);
    const std::size_t seq = chain_.rewind_to(job.submit);
    for (std::size_t i = seq; i < accepted_.size(); ++i) {
      chain_.live().submit(accepted_[i]);
    }
    registry_.add(rewinds_metric_);
  }
  chain_.note_submitted(accepted_.size());
  frontier_ = std::max(frontier_, job.submit);
  chain_.advance_to(frontier_ - 1);
  ++epoch_;
  // Reference-arm memo entries are keyed by epoch; an accepted line
  // invalidates them all, so drop them rather than accumulate.
  ref_cache_.clear();
  registry_.set(epoch_gauge_, static_cast<std::int64_t>(epoch_));
  registry_.set(snapshots_gauge_,
                static_cast<std::int64_t>(chain_.snapshot_count()));
}

std::string Session::do_ingest(const std::string& line) {
  obs::ScopedTimer timer(obs::Stage::kIngestApply);
  std::lock_guard lk(mu_);
  registry_.add(ingests_);
  const workload::SwfLineOutcome out = workload::parse_swf_line(line);
  switch (out.status) {
    case workload::SwfLineOutcome::Status::kError:
      registry_.add(ingests_rejected_);
      return error_reply("ingest", "bad_line", out.error);
    case workload::SwfLineOutcome::Status::kBlank:
    case workload::SwfLineOutcome::Status::kSkipped: {
      JsonWriter w;
      w.begin_object();
      w.member("schema", kWhatIfSchema);
      w.member("op", "ingest");
      w.member("accepted", false);
      w.member("reason",
               out.status == workload::SwfLineOutcome::Status::kBlank
                   ? "blank"
                   : "filtered");
      w.member("epoch", epoch_);
      w.end_object();
      return w.take();
    }
    case workload::SwfLineOutcome::Status::kJob:
      break;
  }
  if (out.job.cpus > machine_cpus_) {
    registry_.add(ingests_rejected_);
    return error_reply("ingest", "infeasible",
                       "job wants " + std::to_string(out.job.cpus) +
                           " cpus, machine has " +
                           std::to_string(machine_cpus_));
  }
  registry_.add(ingests_accepted_);
  last_accepted_ingest_ = std::chrono::steady_clock::now();
  ingest_job(out.job);
  JsonWriter w;
  w.begin_object();
  w.member("schema", kWhatIfSchema);
  w.member("op", "ingest");
  w.member("accepted", true);
  w.member("id", static_cast<std::uint64_t>(accepted_.back().id));
  w.member("epoch", epoch_);
  w.member("frontier_s", static_cast<std::int64_t>(frontier_));
  w.member("now_s", static_cast<std::int64_t>(chain_.live().now()));
  w.end_object();
  return w.take();
}

// -- what-if ----------------------------------------------------------------

/// Everything a query needs from the baseline, captured in one critical
/// section so the reply is consistent even while other clients ingest.
struct Session::QueryBase {
  std::uint64_t epoch = 0;
  SimTime frontier = 0;  ///< live clock at capture (fork time)
  std::uint64_t hash = 0;
  bool has_stream = false;
  std::unique_ptr<TailRun> spec_prefix;  ///< forked mode: what-if arm base
  std::unique_ptr<TailRun> ref_prefix;   ///< forked mode: reference arm base
  std::vector<workload::Job> accepted;   ///< scratch mode: replay journal
};

std::string Session::do_whatif(const WhatIfQuery& q) {
  const auto wall0 = std::chrono::steady_clock::now();

  QueryBase base;
  {
    obs::ScopedSpan span("query.capture");
    obs::ScopedTimer timer(obs::Stage::kQueryCapture);
    std::lock_guard lk(mu_);
    registry_.add(queries_);
    if (q.cpus > machine_cpus_) {
      registry_.add(query_errors_);
      return error_reply("whatif", "infeasible",
                         "job wants " + std::to_string(q.cpus) +
                             " cpus, machine has " +
                             std::to_string(machine_cpus_));
    }
    if (q.interstitial && cfg_.stream) {
      registry_.add(query_errors_);
      return error_reply("whatif", "conflict",
                         "baseline already runs an interstitial stream; "
                         "interstitial what-ifs need a natives-only baseline");
    }
    base.epoch = epoch_;
    base.frontier = chain_.live().now();
    base.hash = chain_.live().state_hash();
    base.has_stream = cfg_.stream.has_value();
    if (q.scratch) {
      base.accepted = accepted_;
    } else {
      base.spec_prefix = chain_.live().fork();
      base.ref_prefix = chain_.live().fork();
    }
  }

  const SimTime frontier = base.frontier;
  const std::size_t npoints = q.points_s.size();

  // One fork (or scratch rebuild) per point; apply the speculative
  // workload at frontier + offset and drain to collect the schedule.
  auto finish_spec = [&](TailRun& run, std::size_t i) -> sched::RunResult {
    const SimTime at = frontier + q.points_s[i];
    if (auto* driver = run.driver()) {
      driver->set_stop_time(at + q.horizon_s);
    }
    run.run_until(at);
    if (q.interstitial) {
      core::ProjectSpec spec = core::ProjectSpec::paper(
          q.jobs, q.cpus,
          static_cast<Seconds>(static_cast<double>(q.runtime_s) * clock_ghz_));
      spec.start_time = at;
      spec.stop_time = at + q.horizon_s;
      run.add_stream(spec, kSpeculativeIdBase);
    } else {
      for (std::size_t j = 0; j < q.jobs; ++j) {
        workload::Job job;
        job.id = kSpeculativeIdBase + static_cast<workload::JobId>(j);
        job.klass = workload::JobClass::kNative;
        job.user = kWhatIfUser;
        job.group = kWhatIfGroup;
        job.cpus = q.cpus;
        job.submit = at;
        job.runtime = q.runtime_s;
        job.estimate = q.runtime_s;
        run.submit(job);
      }
    }
    return run.finish();
  };

  // The reference arm: the same window with *no* speculative workload.
  auto finish_ref = [&](TailRun& run, std::size_t i) -> sched::RunResult {
    const SimTime at = frontier + q.points_s[i];
    if (auto* driver = run.driver()) {
      driver->set_stop_time(at + q.horizon_s);
    }
    run.run_until(at);
    return run.finish();
  };

  std::vector<sched::RunResult> specs;
  std::vector<sched::RunResult> refs(npoints);
  if (q.scratch) {
    // Reference arm of the bench's bit-equality gate: every arm of every
    // point re-simulated from time zero through the same finish path.
    auto make_run = [&](std::size_t) {
      auto run = std::make_unique<TailRun>(TailConfig{cfg_.site, cfg_.stream});
      for (const workload::Job& job : base.accepted) run->submit(job);
      return run;
    };
    core::SweepRunner<TailRun> sweep(npoints, make_run);
    specs = sweep.run_scratch(frontier, finish_spec);
    for (std::size_t i = 0; i < npoints; ++i) {
      auto run = make_run(i);
      run->run_until(frontier);
      refs[i] = finish_ref(*run, i);
    }
  } else {
    // Forked mode: the prefix fork was taken under the lock at the
    // captured epoch; SweepRunner forks it once per point (its prefix
    // advance to `frontier` is a no-op — the live run already stood
    // there) and the per-point advancement fans out.
    auto prefix = std::make_shared<std::unique_ptr<TailRun>>(
        std::move(base.spec_prefix));
    auto make_run = [prefix](std::size_t) { return std::move(*prefix); };
    core::SweepRunner<TailRun> sweep(npoints, make_run);
    specs = sweep.run_forked(frontier, finish_spec);
    // Reference arms are memoized per (epoch, point, horizon): concurrent
    // same-epoch queries share one baseline-window simulation.
    for (std::size_t i = 0; i < npoints; ++i) {
      std::uint64_t key = kFnvOffset;
      key = fnv1a_u64(key, base.epoch);
      key = fnv1a_u64(key, static_cast<std::uint64_t>(frontier));
      key = fnv1a_u64(key, static_cast<std::uint64_t>(q.points_s[i]));
      key = fnv1a_u64(key, static_cast<std::uint64_t>(q.horizon_s));
      refs[i] = ref_cache_.memoized(key, [&]() -> sched::RunResult {
        std::unique_ptr<TailRun> run = base.ref_prefix->fork();
        return finish_ref(*run, i);
      });
    }
  }

  // -- verdict --------------------------------------------------------------

  obs::ScopedSpan verdict_span("query.verdict");
  obs::ScopedTimer verdict_timer(obs::Stage::kQueryVerdict);
  JsonWriter w;
  w.begin_object();
  w.member("schema", kWhatIfSchema);
  w.member("op", "whatif");
  w.member("project", q.project);
  w.member("class", q.interstitial ? "interstitial" : "native");
  w.member("epoch", base.epoch);
  w.member("frontier_s", static_cast<std::int64_t>(frontier));
  w.member("baseline_hash", hex_hash(base.hash));
  w.member("horizon_s", static_cast<std::int64_t>(q.horizon_s));
  w.key("points");
  w.begin_array();
  for (std::size_t i = 0; i < npoints; ++i) {
    const sched::RunResult& spec = specs[i];
    const sched::RunResult& ref = refs[i];
    const SimTime at = frontier + q.points_s[i];

    std::size_t completed = 0;
    std::size_t killed = 0;
    SimTime last_end = at;
    double wait_sum = 0.0;
    for (const auto& r : spec.records) {
      if (r.job.id < kSpeculativeIdBase) continue;
      ++completed;
      last_end = std::max(last_end, r.end);
      wait_sum += static_cast<double>(r.start - r.job.submit);
    }
    for (const auto& r : spec.killed) {
      if (r.job.id >= kSpeculativeIdBase) ++killed;
    }

    const auto ref_waits = native_waits(ref);
    const auto spec_waits = native_waits(spec);
    std::size_t compared = 0;
    std::size_t affected = 0;
    double delta_sum = 0.0;
    for (const auto& [id, wait] : ref_waits) {
      const auto it = spec_waits.find(id);
      if (it == spec_waits.end()) continue;
      ++compared;
      const double delta = static_cast<double>(it->second - wait);
      delta_sum += delta;
      if (it->second != wait) ++affected;
    }

    w.comma();
    w.begin_object();
    w.member("offset_s", static_cast<std::int64_t>(q.points_s[i]));
    w.member("submit_s", static_cast<std::int64_t>(at));
    w.member("completed", completed);
    w.member("killed", killed);
    w.member("makespan_s", static_cast<std::int64_t>(last_end - at));
    w.member("mean_wait_s",
             completed > 0 ? wait_sum / static_cast<double>(completed) : 0.0);
    w.member("harvested_cpu_s",
             harvested_cpu_seconds(spec, kSpeculativeIdBase,
                                   workload::kInvalidJob));
    w.key("native_impact");
    w.begin_object();
    w.member("compared", compared);
    w.member("affected", affected);
    w.member("mean_wait_delta_s",
             compared > 0 ? delta_sum / static_cast<double>(compared) : 0.0);
    w.end_object();
    if (base.has_stream) {
      w.member("stream_harvest_delta_cpu_s",
               harvested_cpu_seconds(spec, kStreamIdBase, kSpeculativeIdBase) -
                   harvested_cpu_seconds(ref, kStreamIdBase,
                                         kSpeculativeIdBase));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wall0)
                           .count();
  {
    std::lock_guard lk(mu_);
    registry_.observe(query_latency_us_, static_cast<std::uint64_t>(wall_us));
  }
  return w.take();
}

// -- status / stats / shutdown ----------------------------------------------

namespace {

/// {"count":N,"p50_us":...,"p90_us":...,"p99_us":...} for a histogram.
void write_quantiles(JsonWriter& w, const char* key,
                     const metrics::Log2Histogram& h) {
  w.key(key);
  w.begin_object();
  w.member("count", h.total());
  w.member("p50_us", h.quantile(0.50));
  w.member("p90_us", h.quantile(0.90));
  w.member("p99_us", h.quantile(0.99));
  w.end_object();
}

}  // namespace

double Session::ingest_lag_s() const {
  if (last_accepted_ingest_.time_since_epoch().count() == 0) return -1.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       last_accepted_ingest_)
      .count();
}

std::string Session::do_status() {
  std::lock_guard lk(mu_);
  JsonWriter w;
  w.begin_object();
  w.member("schema", kWhatIfSchema);
  w.member("op", "status");
  w.member("site", cluster::machine_spec(cfg_.site).name);
  w.member("stream", cfg_.stream.has_value());
  w.member("epoch", epoch_);
  w.member("frontier_s", static_cast<std::int64_t>(frontier_));
  w.member("now_s", static_cast<std::int64_t>(chain_.live().now()));
  w.member("accepted_jobs", accepted_.size());
  w.member("snapshots", chain_.snapshot_count());
  w.member("rewinds", chain_.rewinds());
  w.member("baseline_hash", hex_hash(chain_.live().state_hash()));
  // Wall-clock telemetry is fine here: status replies are never part of
  // the purity comparison (only whatif replies are hashed/compared).
  write_quantiles(w, "query_latency_us",
                  registry_.histogram_ref(query_latency_us_));
  w.end_object();
  return w.take();
}

std::string Session::do_stats() {
  const auto pool = ThreadPool::global_stats();
  const obs::RecorderStats rec = obs::recorder_stats();
  const std::vector<obs::StageProfile> profile = obs::profile_snapshot();

  std::lock_guard lk(mu_);
  JsonWriter w;
  w.begin_object();
  w.member("schema", kWhatIfSchema);
  w.member("op", "stats");
  w.member("site", cluster::machine_spec(cfg_.site).name);
  w.member("stream", cfg_.stream.has_value());
  w.member("epoch", epoch_);
  w.member("frontier_s", static_cast<std::int64_t>(frontier_));
  w.member("now_s", static_cast<std::int64_t>(chain_.live().now()));
  w.member("accepted_jobs", accepted_.size());
  w.member("snapshots", chain_.snapshot_count());
  w.member("rewinds", chain_.rewinds());
  w.member("uptime_s",
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
               .count());
  w.member("ingest_lag_s", ingest_lag_s());

  w.key("counters");
  w.begin_object();
  w.member("queries", registry_.counter_value(queries_));
  w.member("query_errors", registry_.counter_value(query_errors_));
  w.member("ingests", registry_.counter_value(ingests_));
  w.member("ingests_accepted", registry_.counter_value(ingests_accepted_));
  w.member("ingests_rejected", registry_.counter_value(ingests_rejected_));
  w.end_object();

  write_quantiles(w, "query_latency_us",
                  registry_.histogram_ref(query_latency_us_));

  w.key("pool");
  w.begin_object();
  w.member("default_threads", default_thread_count());
  w.member("tasks_submitted", pool.tasks_submitted);
  w.member("tasks_executed", pool.tasks_executed);
  w.member("queue_depth", pool.queue_depth);
  w.member("queue_hwm", pool.queue_hwm);
  w.member("busy_workers", pool.busy_workers);
  w.member("busy_hwm", pool.busy_hwm);
  w.member("pools_created", pool.pools_created);
  w.end_object();

  w.key("obs");
  w.begin_object();
  w.member("enabled", obs::enabled());
  w.member("spans_recorded", rec.recorded);
  w.member("spans_dropped", rec.dropped);
  w.member("span_threads", rec.threads);
  w.end_object();

  w.key("profile");
  w.begin_array();
  for (const obs::StageProfile& p : profile) {
    w.comma();
    w.begin_object();
    w.member("stage", p.label);
    w.member("count", p.count);
    w.member("total_us", p.total_us);
    w.member("p50_us", p.p50_us);
    w.member("p90_us", p.p90_us);
    w.member("p99_us", p.p99_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Session::prometheus_text() {
  const auto pool = ThreadPool::global_stats();
  const obs::RecorderStats rec = obs::recorder_stats();
  const std::vector<obs::StageProfile> profile = obs::profile_snapshot();
  obs::PrometheusWriter prom;

  std::lock_guard lk(mu_);
  // Registry instruments under their sanitized names, deterministic and
  // wall-clock alike (Prometheus consumers do their own bucketing).
  for (const auto& c : registry_.counters()) {
    const std::string name = obs::PrometheusWriter::sanitize(c.name);
    prom.family(name, "counter", c.name);
    prom.sample(name, static_cast<double>(c.value));
  }
  for (const auto& g : registry_.gauges()) {
    const std::string name = obs::PrometheusWriter::sanitize(g.name);
    prom.family(name, "gauge", g.name);
    prom.sample(name, static_cast<double>(g.value));
  }
  for (const auto& h : registry_.histograms()) {
    static constexpr double kQ[] = {0.5, 0.9, 0.99};
    const double v[] = {h.hist.quantile(0.5), h.hist.quantile(0.9),
                        h.hist.quantile(0.99)};
    prom.summary(obs::PrometheusWriter::sanitize(h.name), h.name, kQ, v, 3,
                 static_cast<double>(h.hist.sum()), h.hist.total());
  }

  prom.family("istc_ingest_lag_seconds", "gauge",
              "wall seconds since the last accepted ingest (-1 before any)");
  prom.sample("istc_ingest_lag_seconds", ingest_lag_s());
  prom.family("istc_snapshot_chain_depth", "gauge",
              "snapshots currently held by the baseline chain");
  prom.sample("istc_snapshot_chain_depth",
              static_cast<double>(chain_.snapshot_count()));
  prom.family("istc_uptime_seconds", "gauge", "daemon wall-clock uptime");
  prom.sample("istc_uptime_seconds",
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - started_)
                  .count());

  prom.family("istc_pool_tasks_executed", "counter",
              "thread-pool tasks executed, every pool since process start");
  prom.sample("istc_pool_tasks_executed",
              static_cast<double>(pool.tasks_executed));
  prom.family("istc_pool_queue_depth", "gauge",
              "tasks currently queued across live pools");
  prom.sample("istc_pool_queue_depth", static_cast<double>(pool.queue_depth));
  prom.family("istc_pool_queue_hwm", "gauge",
              "high-water mark of the pool queue depth");
  prom.sample("istc_pool_queue_hwm", static_cast<double>(pool.queue_hwm));
  prom.family("istc_pool_busy_workers", "gauge",
              "workers currently running a task across live pools");
  prom.sample("istc_pool_busy_workers",
              static_cast<double>(pool.busy_workers));
  prom.family("istc_pool_busy_hwm", "gauge",
              "high-water mark of concurrently busy workers");
  prom.sample("istc_pool_busy_hwm", static_cast<double>(pool.busy_hwm));

  prom.family("istc_obs_spans_recorded", "counter",
              "spans recorded into the per-thread rings");
  prom.sample("istc_obs_spans_recorded", static_cast<double>(rec.recorded));
  prom.family("istc_obs_spans_dropped", "counter",
              "spans that overwrote an unexported ring slot");
  prom.sample("istc_obs_spans_dropped", static_cast<double>(rec.dropped));

  if (!profile.empty()) {
    prom.family("istc_obs_stage_us", "summary",
                "wall-clock stage profile (microseconds, log2-bucketed)");
    for (const obs::StageProfile& p : profile) {
      char label[96];
      std::snprintf(label, sizeof label, "stage=\"%s\",quantile=\"0.5\"",
                    p.label);
      prom.sample("istc_obs_stage_us", label, p.p50_us);
      std::snprintf(label, sizeof label, "stage=\"%s\",quantile=\"0.99\"",
                    p.label);
      prom.sample("istc_obs_stage_us", label, p.p99_us);
      std::snprintf(label, sizeof label, "stage=\"%s\"", p.label);
      prom.sample("istc_obs_stage_us_count", label,
                  static_cast<double>(p.count));
      prom.sample("istc_obs_stage_us_sum", label,
                  static_cast<double>(p.total_us));
    }
  }
  return prom.take();
}

std::string Session::do_shutdown() {
  std::lock_guard lk(mu_);
  shutdown_ = true;
  JsonWriter w;
  w.begin_object();
  w.member("schema", kWhatIfSchema);
  w.member("op", "shutdown");
  w.member("ok", true);
  w.end_object();
  return w.take();
}

}  // namespace istc::service
