#include "service/protocol.hpp"

#include <cmath>

#include "service/json.hpp"

namespace istc::service {

namespace {

Request bad(std::string_view code, std::string message) {
  Request r;
  r.error_code = std::string(code);
  r.error = std::move(message);
  return r;
}

/// A JSON number usable as a non-negative integral quantity.
bool whole_number(double v, double max) {
  return std::isfinite(v) && v >= 0 && v <= max && v == std::floor(v);
}

}  // namespace

Request parse_request(std::string_view text) {
  const ParseResult parsed = parse(text);
  if (!parsed.ok()) return bad("bad_json", parsed.error);
  const Value& root = parsed.value;
  if (!root.is_object()) return bad("bad_request", "request must be an object");

  const std::string op = root.str_or("op", "");
  if (op == "status") {
    Request r;
    r.op = Op::kStatus;
    return r;
  }
  if (op == "stats") {
    Request r;
    r.op = Op::kStats;
    return r;
  }
  if (op == "shutdown") {
    Request r;
    r.op = Op::kShutdown;
    return r;
  }
  if (op == "ingest") {
    const Value* line = root.find("line");
    if (line == nullptr || !line->is_string()) {
      return bad("bad_request", "ingest requires a string 'line'");
    }
    Request r;
    r.op = Op::kIngest;
    r.line = line->string;
    return r;
  }
  if (op != "whatif") {
    return bad("bad_request", "unknown op '" + op + "'");
  }

  Request r;
  r.op = Op::kWhatIf;
  WhatIfQuery& q = r.query;
  q.project = root.str_or("project", "adhoc");

  const double jobs = root.num_or("jobs", 1);
  if (!whole_number(jobs, static_cast<double>(kMaxQueryJobs)) || jobs < 1) {
    return bad("bad_shape", "jobs must be an integer in [1, " +
                                std::to_string(kMaxQueryJobs) + "]");
  }
  q.jobs = static_cast<std::size_t>(jobs);

  const double cpus = root.num_or("cpus", 1);
  if (!whole_number(cpus, 1e9) || cpus < 1) {
    return bad("bad_shape", "cpus must be a positive integer");
  }
  q.cpus = static_cast<int>(cpus);

  const double runtime = root.num_or("runtime_s", 60);
  if (!whole_number(runtime, 1e12) || runtime < 1) {
    return bad("bad_shape", "runtime_s must be a positive integer");
  }
  q.runtime_s = static_cast<Seconds>(runtime);

  const double horizon = root.num_or("horizon_s", 24 * kSecondsPerHour);
  if (!whole_number(horizon, 1e12) || horizon < 1) {
    return bad("bad_shape", "horizon_s must be a positive integer");
  }
  q.horizon_s = static_cast<Seconds>(horizon);

  const std::string klass = root.str_or("class", "native");
  if (klass == "interstitial") {
    q.interstitial = true;
  } else if (klass != "native") {
    return bad("bad_request", "class must be 'native' or 'interstitial'");
  }

  const std::string mode = root.str_or("mode", "forked");
  if (mode == "scratch") {
    q.scratch = true;
  } else if (mode != "forked") {
    return bad("bad_request", "mode must be 'forked' or 'scratch'");
  }

  if (const Value* points = root.find("points_s"); points != nullptr) {
    if (!points->is_array() || points->array.empty() ||
        points->array.size() > kMaxQueryPoints) {
      return bad("bad_shape", "points_s must be a non-empty array of at most " +
                                  std::to_string(kMaxQueryPoints) + " offsets");
    }
    q.points_s.clear();
    for (const Value& p : points->array) {
      if (!p.is_number() || !whole_number(p.number, 1e12)) {
        return bad("bad_shape", "points_s entries must be non-negative integers");
      }
      q.points_s.push_back(static_cast<Seconds>(p.number));
    }
  }
  return r;
}

std::string error_reply(std::string_view op, std::string_view code,
                        std::string_view message) {
  JsonWriter w;
  w.begin_object();
  w.member("schema", kWhatIfSchema);
  w.member("op", op);
  w.key("error");
  w.begin_object();
  w.member("code", code);
  w.member("message", message);
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace istc::service
