#pragma once

#include <iosfwd>
#include <string>

#include "grid/fleet.hpp"

/// \file report.hpp
/// Fleet RunReport: the "istc.run_report.v2" document for a federated run —
/// one entry per machine in the new "machines" section plus a "fleet"
/// section (projects, broker ledgers, fairness, epoch count).  The
/// single-machine writer (metrics/report.hpp) emits the same schema with a
/// one-element machine list; both declare v1 compatibility because every
/// v1 field is preserved at its old path.

namespace istc::grid {

/// Deterministic by construction: everything in a FleetResult is sim-time
/// derived, so equal-seed fleet runs serialize byte-identically.
void write_fleet_report(std::ostream& out, const FleetResult& fleet);
void write_fleet_report_file(const std::string& path,
                             const FleetResult& fleet);

}  // namespace istc::grid
