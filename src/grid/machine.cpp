#include "grid/machine.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace istc::grid {

GridMachine::GridMachine(MachineSetup setup)
    : setup_(std::move(setup)),
      name_(setup_.name.empty() ? setup_.spec.name : setup_.name),
      engine_(setup_.queue_impl()),
      tracer_(trace::TraceMode::kCountersOnly) {
  scheduler_ = std::make_unique<sched::BatchScheduler>(
      engine_, cluster::Machine(setup_.spec, setup_.downtime), setup_.policy);
  scheduler_->set_tracer(&tracer_);
  scheduler_->load(setup_.natives);
  next_local_id_ = setup_.first_interstitial_id.value_or(
      static_cast<workload::JobId>(setup_.natives.size()));
  if (setup_.local_project) {
    driver_.emplace(*scheduler_, *setup_.local_project, next_local_id_);
  } else {
    register_port_hooks();
  }
  if (setup_.faults.enabled()) injector_.emplace(*scheduler_, setup_.faults);
}

GridMachine::GridMachine(GridMachine& other)
    : setup_(other.setup_),
      name_(other.name_),
      engine_(other.setup_.queue_impl()),
      tracer_(trace::TraceMode::kCountersOnly),
      next_local_id_(other.next_local_id_),
      arrivals_(other.arrivals_),
      landed_(other.landed_),
      running_(other.running_),
      reports_(other.reports_),
      stats_(other.stats_) {
  // Share the delivery logs copy-on-write: freeze the source's prefix so
  // both sides append privately, and in-flight kGridArrival events (whose
  // args index these logs) resolve identically in either machine.
  other.delivery_jobs_.freeze();
  other.delivery_spans_.freeze();
  delivery_jobs_ = other.delivery_jobs_;
  delivery_spans_ = other.delivery_spans_;
  // Same order as SimRun's fork ctor: engine snapshot first (adopt_state
  // checks the queue holds no boxed callbacks — guaranteed since the port
  // delivers through typed events), then the scheduler clone registers
  // itself on the new engine, then driver/injector clones or the port
  // hooks re-attach to the new stack.
  engine_.adopt_state(other.engine_);
  scheduler_ =
      std::make_unique<sched::BatchScheduler>(engine_, *other.scheduler_);
  scheduler_->set_tracer(&tracer_);
  if (other.driver_) {
    driver_.emplace(*scheduler_, *other.driver_);
  } else {
    register_port_hooks();
  }
  if (other.injector_) injector_.emplace(*scheduler_, *other.injector_);
}

std::unique_ptr<GridMachine> GridMachine::fork() {
  return std::unique_ptr<GridMachine>(new GridMachine(*this));
}

void GridMachine::register_port_hooks() {
  scheduler_->set_post_pass_hook(
      [this](const sched::PassContext& ctx) { on_pass(ctx); });
  scheduler_->set_kill_hook(
      [this](const sched::JobRecord& victim, sched::KillReason reason) {
        on_kill(victim, reason);
      });
  engine_.set_grid_hook([this](std::uint32_t span) { on_arrival(span); });
}

void GridMachine::advance(SimTime until) {
  while (engine_.next_event_time() <= until) engine_.step();
}

SimTime GridMachine::next_report_time(SimTime asap) const {
  SimTime t = kTimeInfinity;
  if (!reports_.empty()) t = asap;
  // An in-flight or landed job resolves (start or bounce) no later than
  // its arrival plus the patience window.
  for (const SimTime at : arrivals_) {
    t = std::min(t, std::max(at + setup_.bounce_patience, asap));
  }
  for (const auto& l : landed_) {
    t = std::min(t, std::max(l.arrived + setup_.bounce_patience, asap));
  }
  for (const auto& r : running_) t = std::min(t, r.end);
  return t;
}

void GridMachine::deliver_batch(SimTime at, std::span<const GridJob> jobs) {
  obs::ScopedSpan span("grid.deliver",
                       static_cast<std::int64_t>(jobs.size()));
  ISTC_EXPECTS(accepts_routed());
  ISTC_EXPECTS(at >= engine_.now());
  ISTC_EXPECTS(!jobs.empty());
  const std::size_t begin = delivery_jobs_.size();
  for (const GridJob& job : jobs) delivery_jobs_.push_back(job);
  const std::size_t span_index = delivery_spans_.size();
  ISTC_ASSERT(begin + jobs.size() <= UINT32_MAX && span_index <= UINT32_MAX);
  delivery_spans_.push_back({static_cast<std::uint32_t>(begin),
                             static_cast<std::uint32_t>(jobs.size())});
  stats_.delivered += jobs.size();
  arrivals_.push_back(at);
  engine_.schedule_grid_arrival(at, static_cast<std::uint32_t>(span_index));
}

void GridMachine::on_arrival(std::uint32_t span_index) {
  ISTC_ASSERT(!arrivals_.empty());
  arrivals_.pop_front();
  const DeliverySpan s = delivery_spans_[span_index];
  for (std::uint32_t k = 0; k < s.count; ++k) {
    landed_.push_back({delivery_jobs_[s.begin + k], engine_.now()});
  }
}

void GridMachine::on_pass(const sched::PassContext& ctx) {
  if (landed_.empty()) return;
  std::size_t kept = 0;
  for (auto& l : landed_) {
    const Seconds runtime = runtime_for(l.job.work_per_cpu);
    // The Figure-1 gate, same predicate as InterstitialDriver: start only
    // when no waiting native could (per estimates) start before this job
    // would finish.
    const bool gate_open =
        ctx.queue_empty || ctx.queue_earliest_start - ctx.now > runtime;
    bool started = false;
    if (gate_open) {
      workload::Job j;
      j.id = next_local_id_;
      j.klass = workload::JobClass::kInterstitial;
      j.user = core::kInterstitialUser;
      j.group = core::kInterstitialGroup;
      j.cpus = l.job.cpus;
      j.submit = l.arrived;
      j.runtime = runtime;
      j.estimate = runtime;
      if (scheduler_->try_start_immediately(j)) {
        ++next_local_id_;
        ++stats_.started;
        running_.push_back({j.id, l.job, ctx.now, ctx.now + runtime});
        started = true;
      }
    }
    if (!started) landed_[kept++] = l;
  }
  landed_.resize(kept);
}

void GridMachine::on_kill(const sched::JobRecord& victim,
                          sched::KillReason /*reason*/) {
  if (!victim.job.interstitial()) return;  // native requeue is the injector's
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [&](const RunningGrid& r) { return r.local_id == victim.job.id; });
  if (it == running_.end()) return;
  const Seconds elapsed = victim.end - victim.start;
  // Checkpoint arithmetic mirrors InterstitialDriver::on_fault_kill: work
  // up to the last checkpoint survives; the remainder is re-routed by the
  // broker (possibly to a machine with a different clock, which is why the
  // remainder travels as machine-neutral cycles).
  const Seconds saved =
      it->job.checkpoint > 0 ? (elapsed / it->job.checkpoint) * it->job.checkpoint
                             : 0;
  GridJob rest = it->job;
  rest.work_per_cpu -= machine().spec().cycles_in(saved);
  ISTC_ASSERT(rest.work_per_cpu > 0);
  ++stats_.killed;
  reports_.push_back(
      {ReportKind::kKilled, rest, victim.end,
       static_cast<std::uint64_t>(it->job.cpus) *
           static_cast<std::uint64_t>(elapsed)});
  running_.erase(it);
}

void GridMachine::collect_reports(SimTime now, std::vector<PortReport>& out) {
  out.insert(out.end(), reports_.begin(), reports_.end());
  reports_.clear();
  std::size_t kept = 0;
  for (auto& r : running_) {
    if (r.end <= now) {
      ++stats_.completed;
      out.push_back({ReportKind::kCompleted, r.job, r.end,
                     static_cast<std::uint64_t>(r.job.cpus) *
                         static_cast<std::uint64_t>(r.end - r.start)});
    } else {
      running_[kept++] = r;
    }
  }
  running_.resize(kept);
  kept = 0;
  for (auto& l : landed_) {
    if (l.arrived + setup_.bounce_patience <= now) {
      ++stats_.bounced;
      out.push_back({ReportKind::kBounced, l.job, now, 0});
    } else {
      landed_[kept++] = l;
    }
  }
  landed_.resize(kept);
}

int GridMachine::lookahead_min_free(SimTime t, Seconds dur) const {
  const sched::ResourceProfile& profile = scheduler_->profile();
  const SimTime start = std::max(t, profile.origin());
  return profile.min_free(start, start + std::max<Seconds>(dur, 1));
}

}  // namespace istc::grid
