#include "grid/machine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace istc::grid {

GridMachine::GridMachine(MachineSetup setup)
    : setup_(std::move(setup)),
      name_(setup_.name.empty() ? setup_.spec.name : setup_.name),
      engine_(setup_.queue_impl()),
      scheduler_(engine_, cluster::Machine(setup_.spec, setup_.downtime),
                 setup_.policy),
      tracer_(trace::TraceMode::kCountersOnly) {
  scheduler_.set_tracer(&tracer_);
  scheduler_.load(setup_.natives);
  next_local_id_ = setup_.first_interstitial_id.value_or(
      static_cast<workload::JobId>(setup_.natives.size()));
  if (setup_.local_project) {
    driver_.emplace(scheduler_, *setup_.local_project, next_local_id_);
  } else {
    scheduler_.set_post_pass_hook(
        [this](const sched::PassContext& ctx) { on_pass(ctx); });
    scheduler_.set_kill_hook(
        [this](const sched::JobRecord& victim, sched::KillReason reason) {
          on_kill(victim, reason);
        });
  }
  if (setup_.faults.enabled()) injector_.emplace(scheduler_, setup_.faults);
}

void GridMachine::advance(SimTime until) {
  while (engine_.next_event_time() <= until) engine_.step();
}

SimTime GridMachine::next_report_time(SimTime asap) const {
  SimTime t = kTimeInfinity;
  if (!reports_.empty()) t = asap;
  // An in-flight or landed job resolves (start or bounce) no later than
  // its arrival plus the patience window.
  for (const SimTime at : arrivals_) {
    t = std::min(t, std::max(at + setup_.bounce_patience, asap));
  }
  for (const auto& l : landed_) {
    t = std::min(t, std::max(l.arrived + setup_.bounce_patience, asap));
  }
  for (const auto& r : running_) t = std::min(t, r.end);
  return t;
}

void GridMachine::deliver(SimTime at, const GridJob& job) {
  ISTC_EXPECTS(accepts_routed());
  ISTC_EXPECTS(at >= engine_.now());
  ++stats_.delivered;
  arrivals_.push_back(at);
  engine_.schedule(at, [this, job] {
    arrivals_.pop_front();
    landed_.push_back({job, engine_.now()});
  });
}

void GridMachine::on_pass(const sched::PassContext& ctx) {
  if (landed_.empty()) return;
  std::size_t kept = 0;
  for (auto& l : landed_) {
    const Seconds runtime = runtime_for(l.job.work_per_cpu);
    // The Figure-1 gate, same predicate as InterstitialDriver: start only
    // when no waiting native could (per estimates) start before this job
    // would finish.
    const bool gate_open =
        ctx.queue_empty || ctx.queue_earliest_start - ctx.now > runtime;
    bool started = false;
    if (gate_open) {
      workload::Job j;
      j.id = next_local_id_;
      j.klass = workload::JobClass::kInterstitial;
      j.user = core::kInterstitialUser;
      j.group = core::kInterstitialGroup;
      j.cpus = l.job.cpus;
      j.submit = l.arrived;
      j.runtime = runtime;
      j.estimate = runtime;
      if (scheduler_.try_start_immediately(j)) {
        ++next_local_id_;
        ++stats_.started;
        running_.push_back({j.id, l.job, ctx.now, ctx.now + runtime});
        started = true;
      }
    }
    if (!started) landed_[kept++] = l;
  }
  landed_.resize(kept);
}

void GridMachine::on_kill(const sched::JobRecord& victim,
                          sched::KillReason /*reason*/) {
  if (!victim.job.interstitial()) return;  // native requeue is the injector's
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [&](const RunningGrid& r) { return r.local_id == victim.job.id; });
  if (it == running_.end()) return;
  const Seconds elapsed = victim.end - victim.start;
  // Checkpoint arithmetic mirrors InterstitialDriver::on_fault_kill: work
  // up to the last checkpoint survives; the remainder is re-routed by the
  // broker (possibly to a machine with a different clock, which is why the
  // remainder travels as machine-neutral cycles).
  const Seconds saved =
      it->job.checkpoint > 0 ? (elapsed / it->job.checkpoint) * it->job.checkpoint
                             : 0;
  GridJob rest = it->job;
  rest.work_per_cpu -= machine().spec().cycles_in(saved);
  ISTC_ASSERT(rest.work_per_cpu > 0);
  ++stats_.killed;
  reports_.push_back(
      {ReportKind::kKilled, rest, victim.end,
       static_cast<std::uint64_t>(it->job.cpus) *
           static_cast<std::uint64_t>(elapsed)});
  running_.erase(it);
}

std::vector<PortReport> GridMachine::collect_reports(SimTime now) {
  std::vector<PortReport> out = std::move(reports_);
  reports_.clear();
  std::size_t kept = 0;
  for (auto& r : running_) {
    if (r.end <= now) {
      ++stats_.completed;
      out.push_back({ReportKind::kCompleted, r.job, r.end,
                     static_cast<std::uint64_t>(r.job.cpus) *
                         static_cast<std::uint64_t>(r.end - r.start)});
    } else {
      running_[kept++] = r;
    }
  }
  running_.resize(kept);
  kept = 0;
  for (auto& l : landed_) {
    if (l.arrived + setup_.bounce_patience <= now) {
      ++stats_.bounced;
      out.push_back({ReportKind::kBounced, l.job, now, 0});
    } else {
      landed_[kept++] = l;
    }
  }
  landed_.resize(kept);
  return out;
}

int GridMachine::lookahead_min_free(SimTime t, Seconds dur) const {
  const sched::ResourceProfile& profile = scheduler_.profile();
  const SimTime start = std::max(t, profile.origin());
  return profile.min_free(start, start + std::max<Seconds>(dur, 1));
}

}  // namespace istc::grid
