#include "grid/fleet.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "sched/presets.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/presets.hpp"

namespace istc::grid {

namespace {

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

}  // namespace

std::uint64_t hash_run(const sched::RunResult& run) {
  std::uint64_t h = kFnvOffset;
  for (const auto& r : run.records) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.cpus));
  }
  for (const auto& r : run.killed) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.job.id));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.start));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.end));
  }
  h = fnv1a_u64(h, static_cast<std::uint64_t>(run.sim_end));
  return h;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

FleetRun::FleetRun(std::vector<MachineSetup> setups,
                   std::vector<GridProjectSpec> projects,
                   const FleetConfig& cfg)
    : cfg_(cfg), broker_(std::move(projects), cfg.broker) {
  ISTC_EXPECTS(!setups.empty());
  owned_.reserve(setups.size());
  for (auto& s : setups) {
    owned_.push_back(std::make_unique<GridMachine>(std::move(s)));
  }
  for (auto& m : owned_) machines_.push_back(m.get());
  const std::size_t threads =
      cfg_.threads > 0 ? cfg_.threads : default_thread_count();
  if (threads > 1 && machines_.size() > 1) pool_.emplace(threads);
}

FleetRun::FleetRun(FleetRun& other)
    : cfg_(other.cfg_),
      broker_(other.broker_),  // queues + ledgers + dispatch log, all values
      now_(other.now_),
      epochs_(other.epochs_) {
  owned_.reserve(other.owned_.size());
  // Machines fork serially: each fork freezes its parent's shared log
  // prefixes, and the forks themselves are only advanced later (by
  // finish(), possibly on a SweepRunner's pool).
  for (auto& m : other.owned_) owned_.push_back(m->fork());
  for (auto& m : owned_) machines_.push_back(m.get());
  const std::size_t threads =
      cfg_.threads > 0 ? cfg_.threads : default_thread_count();
  if (threads > 1 && machines_.size() > 1) pool_.emplace(threads);
}

std::unique_ptr<FleetRun> FleetRun::fork() {
  return std::unique_ptr<FleetRun>(new FleetRun(*this));
}

SimTime FleetRun::next_boundary() const {
  SimTime next = broker_.next_wake(now_);
  for (const auto* m : machines_) {
    // Any queued report is deliverable at the next instant; bounce
    // deadlines and exact grid-job completions are known futures.
    next = std::min(next, m->next_report_time(now_ + 1));
  }
  if (cfg_.heartbeat > 0) {
    bool live = false;
    for (const auto* m : machines_) {
      live = live || m->next_event_time() < kTimeInfinity;
    }
    if (live) next = std::min(next, now_ + cfg_.heartbeat);
  }
  return next;
}

void FleetRun::each_machine(const std::function<void(std::size_t)>& fn) {
  // Same causality bridge as SweepRunner::each_point: machine-advance
  // spans opened on pool workers parent under the caller's epoch span.
  const obs::TraceContext ctx = obs::current_context();
  const auto instrumented = [&fn, ctx](std::size_t i) {
    obs::ScopedContext adopt(ctx);
    obs::ScopedSpan span("fleet.machine", static_cast<std::int64_t>(i));
    fn(i);
  };
  if (pool_) {
    parallel_for(*pool_, machines_.size(), instrumented);
  } else {
    for (std::size_t i = 0; i < machines_.size(); ++i) instrumented(i);
  }
}

void FleetRun::run_until(SimTime t) {
  for (;;) {
    const SimTime next = next_boundary();
    if (next >= kTimeInfinity || next > t) break;
    ISTC_ASSERT(next > now_);
    obs::ScopedSpan epoch_span("fleet.epoch",
                               static_cast<std::int64_t>(epochs_));
    // Advance phase: shards are independent up to `next` — nothing routed
    // at this boundary can land before next + latency (conservative
    // lookahead), so this fans out without any cross-shard ordering.
    {
      obs::ScopedSpan span("fleet.advance");
      obs::ScopedTimer timer(obs::Stage::kEpochAdvance);
      each_machine([&](std::size_t i) { machines_[i]->advance(next); });
    }
    now_ = next;
    ++epochs_;
    // Boundary phase (serial, machine order, then broker): deterministic
    // regardless of how the advance phase was threaded.
    {
      obs::ScopedSpan span("fleet.boundary");
      obs::ScopedTimer timer(obs::Stage::kEpochBoundary);
      for (auto* m : machines_) {
        report_buf_.clear();
        m->collect_reports(now_, report_buf_);
        for (const auto& report : report_buf_) broker_.ingest(report);
      }
      broker_.route(now_, machines_);
    }
  }
}

FleetResult FleetRun::finish() {
  run_until(kTimeInfinity);
  ISTC_ASSERT(broker_.done());
  // Native drain: all grid work is accounted, the rest of each machine's
  // timeline is purely local.
  each_machine([&](std::size_t i) { machines_[i]->drain(); });
  for (auto* m : machines_) {
    ISTC_ASSERT(m->collect_reports(kTimeInfinity).empty());
  }

  FleetResult out;
  out.epochs = epochs_;
  out.hash = kFnvOffset;
  for (auto* m : machines_) {
    FleetMachineOutcome mo;
    mo.name = m->name();
    mo.port = m->port_stats();
    mo.run = m->take_result();
    mo.hash = hash_run(mo.run);
    out.hash = fnv1a_u64(out.hash, mo.hash);
    out.sim_end = std::max(out.sim_end, mo.run.sim_end);
    out.machines.push_back(std::move(mo));
  }
  out.projects = broker_.project_specs();
  out.ledgers = broker_.ledgers();
  out.dispatches = broker_.dispatches();
  std::vector<double> per_share;
  for (std::size_t p = 0; p < out.projects.size(); ++p) {
    per_share.push_back(static_cast<double>(out.ledgers[p].harvested_cpu_sec) /
                        out.projects[p].share);
  }
  out.fairness = jain_fairness(per_share);
  return out;
}

FleetResult run_fleet(std::vector<MachineSetup> setups,
                      std::vector<GridProjectSpec> projects,
                      const FleetConfig& cfg) {
  FleetRun run(std::move(setups), std::move(projects), cfg);
  return run.finish();
}

sched::RunResult run_native_only(MachineSetup setup) {
  setup.local_project.reset();
  GridMachine machine(std::move(setup));
  machine.drain();
  return machine.take_result();
}

MachineSetup site_machine_setup(cluster::Site site) {
  MachineSetup s;
  s.spec = cluster::machine_spec(site);
  s.name = s.spec.name;
  s.downtime = cluster::site_downtime(site);
  s.policy = sched::site_policy(site);
  s.natives = workload::site_log(site);
  s.span = cluster::site_span(site);
  return s;
}

MachineSetup synthetic_machine_setup(int index) {
  MachineSetup s = site_machine_setup(cluster::Site::kRoss);
  s.spec.name = "Synthetic-" + std::to_string(index);
  s.spec.site = "synthetic";
  s.name = s.spec.name;
  s.natives = workload::site_log(cluster::Site::kRoss,
                                 0x517D0000ull + static_cast<std::uint64_t>(index));
  return s;
}

std::optional<std::vector<MachineSetup>> parse_fleet_list(
    const std::string& csv) {
  std::vector<MachineSetup> fleet;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string tok = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    if (tok == "ross") {
      fleet.push_back(site_machine_setup(cluster::Site::kRoss));
    } else if (tok == "bluemtn" || tok == "bluemountain") {
      fleet.push_back(site_machine_setup(cluster::Site::kBlueMountain));
    } else if (tok == "bluepac" || tok == "bluepacific") {
      fleet.push_back(site_machine_setup(cluster::Site::kBluePacific));
    } else if (tok.rfind("synth", 0) == 0) {
      int index = 0;
      const std::string digits = tok.substr(5);
      if (digits.empty()) return std::nullopt;
      for (const char c : digits) {
        if (c < '0' || c > '9') return std::nullopt;
        index = index * 10 + (c - '0');
      }
      fleet.push_back(synthetic_machine_setup(index));
    } else {
      return std::nullopt;
    }
  }
  if (fleet.empty()) return std::nullopt;
  return fleet;
}

std::vector<MachineSetup> default_fleet() {
  std::vector<MachineSetup> fleet;
  fleet.push_back(site_machine_setup(cluster::Site::kRoss));
  fleet.push_back(site_machine_setup(cluster::Site::kBlueMountain));
  fleet.push_back(site_machine_setup(cluster::Site::kBluePacific));
  fleet.push_back(synthetic_machine_setup(1));
  return fleet;
}

std::vector<GridProjectSpec> sweep_projects(std::size_t nprojects,
                                            std::size_t jobs_each,
                                            int fleet_cpus, double quota_frac,
                                            std::uint64_t seed) {
  ISTC_EXPECTS(nprojects > 0);
  ISTC_EXPECTS(jobs_each > 0);
  Rng rng(seed);
  static constexpr int kWidths[] = {8, 16, 32, 64};
  std::vector<GridProjectSpec> projects;
  for (std::size_t p = 0; p < nprojects; ++p) {
    GridProjectSpec spec;
    spec.name = "P" + std::to_string(p);
    spec.cpus_per_job = kWidths[rng.below(4)];
    // 60 s .. 20 min @ 1 GHz, the paper's interstitial-job scale.
    spec.work_per_cpu =
        static_cast<double>(60 + 60 * rng.below(20)) * cluster::kGiga;
    spec.jobs = jobs_each;
    spec.share = 1.0 + static_cast<double>(rng.below(3));
    if (quota_frac > 0) {
      const int quota =
          static_cast<int>(quota_frac * static_cast<double>(fleet_cpus));
      spec.quota_cpus = std::max(quota, spec.cpus_per_job);
    }
    spec.retry.max_retries = 3;
    spec.retry.backoff = 5 * kSecondsPerMinute;
    spec.retry.checkpoint_interval = 30 * kSecondsPerMinute;
    projects.push_back(std::move(spec));
  }
  return projects;
}

}  // namespace istc::grid
