#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/project.hpp"
#include "grid/machine.hpp"

/// \file broker.hpp
/// GridBroker — the fleet-level interstitial dispatcher.
///
/// The broker ingests one large parameter-sweep stream: many competing
/// projects, each a bag of identical machine-neutral jobs, with per-project
/// quotas (max CPUs in flight fleet-wide) and fleet-level fair share
/// (projects are served in ascending consumed-work-per-share order).  At
/// every routing epoch it places eligible jobs on machines per the selected
/// policy and delivers them one link latency in the future; machines answer
/// with completion / kill / bounce reports that update the ledgers.
///
/// The broker runs only inside the serial boundary step of the fleet loop,
/// so none of this is thread-aware — determinism follows from the fleet
/// loop's ordering guarantees (fleet.hpp).

namespace istc::grid {

enum class BrokerPolicy : std::uint8_t {
  /// Route to the machine with the widest estimated interstice over the
  /// job's runtime window (free-CPU profile lookahead at arrival time).
  kBestFit,
  /// Rotate over candidate machines (the fairness-to-machines baseline).
  kRoundRobin,
  /// Route to the machine with the largest instantaneous free fraction.
  kLeastLoaded,
};

const char* broker_policy_name(BrokerPolicy policy);
std::optional<BrokerPolicy> parse_broker_policy(std::string_view name);

/// One competing project in the sweep stream.
struct GridProjectSpec {
  std::string name;
  int cpus_per_job = 32;
  /// Work per CPU in cycles ("120 s @ 1 GHz" = 120e9).
  cluster::Cycles work_per_cpu = 120.0 * cluster::kGiga;
  std::size_t jobs = 0;  ///< sweep size; must be > 0 (no continual mode)
  /// All of the project's jobs enter the broker queue here at once — the
  /// paper-scale "parameter sweep dropped on the fleet" shape.
  SimTime submit_time = 0;
  /// Fleet fair-share weight; consumed CPU-seconds are normalized by this.
  double share = 1.0;
  /// Max CPUs the project may hold in flight fleet-wide; 0 = unlimited.
  int quota_cpus = 0;
  /// Retry policy for fault-killed jobs (backoff / bounded retries /
  /// checkpoint remainder), applied broker-side on kill reports.
  core::FaultRetryPolicy retry;

  void check() const;
};

struct BrokerConfig {
  BrokerPolicy policy = BrokerPolicy::kBestFit;
  /// Link latency: a job routed at boundary T lands at T + latency, and a
  /// report generated at T is seen at the next boundary > T.  This is the
  /// conservative-sync lookahead, so it must be positive.
  Seconds latency = 30;
  /// Re-check cadence while eligible jobs exist but nothing is placeable.
  Seconds poll = 10 * kSecondsPerMinute;
  /// Delay before a bounced job becomes routable again (prevents tight
  /// bounce/re-route cycles against a machine whose gate stays closed).
  Seconds bounce_backoff = 10 * kSecondsPerMinute;
  /// Bounces per job before its work is abandoned.
  int max_bounces = 64;

  void check() const;
};

/// Per-project accounting, updated at materialization, dispatch, and
/// report ingestion.  Conservation invariant (pinned by tests): at any
/// boundary, materialized == completed + abandoned() + in flight + queued.
struct ProjectLedger {
  std::size_t materialized = 0;
  std::size_t routed = 0;  ///< dispatches, re-routes included
  std::size_t completed = 0;
  std::size_t bounced = 0;  ///< bounce events (job lives on unless abandoned)
  std::size_t killed = 0;   ///< kill events (ditto)
  std::size_t abandoned_bounce = 0;
  std::size_t abandoned_retry = 0;
  std::size_t abandoned_unplaceable = 0;
  std::size_t inflight_jobs = 0;
  int inflight_cpus = 0;
  int peak_inflight_cpus = 0;
  /// CPU-seconds consumed fleet-wide (completions + killed partials) —
  /// the fair-share usage basis.
  std::uint64_t consumed_cpu_sec = 0;
  /// CPU-seconds of *completed* jobs only — the harvest.
  std::uint64_t harvested_cpu_sec = 0;

  std::size_t abandoned() const {
    return abandoned_bounce + abandoned_retry + abandoned_unplaceable;
  }
};

/// One routing decision, kept for tables and the dispatch-safety property
/// test (free_at_dispatch is the machine's uncommitted free-CPU count the
/// instant the broker placed the job — never less than cpus).
struct DispatchRecord {
  SimTime time = 0;
  std::uint32_t gid = 0;
  std::uint32_t project = 0;
  int machine = -1;
  int cpus = 0;
  int free_at_dispatch = 0;
  Seconds runtime = 0;  ///< on the chosen machine
};

class GridBroker {
 public:
  GridBroker(std::vector<GridProjectSpec> projects, BrokerConfig cfg);

  const BrokerConfig& config() const { return cfg_; }
  const std::vector<GridProjectSpec>& project_specs() const { return specs_; }
  const std::vector<ProjectLedger>& ledgers() const { return ledgers_; }
  const std::vector<DispatchRecord>& dispatches() const { return dispatches_; }
  std::size_t total_jobs() const;

  /// All jobs accounted: every project materialized, nothing queued,
  /// nothing in flight.
  bool done() const;

  /// Next boundary the broker itself needs (> now): the earliest pending
  /// project submit time, retry/bounce eligibility times, or a poll tick
  /// while eligible jobs sit unplaceable.  kTimeInfinity when idle.
  SimTime next_wake(SimTime now) const;

  /// Apply one machine report (boundary step, in machine order).
  void ingest(const PortReport& report);

  /// Route every placeable job: projects in fair-share order, one job per
  /// project per round until no project can place.  Placements are
  /// buffered and flushed as one deliver_batch(now + latency, ...) per
  /// machine — a million-job epoch costs one timed event per machine.
  void route(SimTime now, const std::vector<GridMachine*>& machines);

  // -- sweep support ------------------------------------------------------
  // Knob setters for fork-tree sweeps (core/sweep.hpp): a forked fleet
  // applies its point's policy/quota at the fork boundary, so every point
  // shares the prefix simulated under the base configuration.  Both knobs
  // are consulted only inside route()/ingest(), so setting them between
  // boundaries is exactly equivalent to having constructed the broker with
  // them from that boundary on.

  /// Swap the routing policy.
  void set_policy(BrokerPolicy policy) { cfg_.policy = policy; }

  /// Swap a project's fleet-wide in-flight CPU quota (0 = unlimited).
  /// Shrinking below the current in-flight count only pauses new routing
  /// until reports drain the excess.
  void set_project_quota(std::size_t project, int quota_cpus);

 private:
  struct Pending {
    GridJob job;
    SimTime eligible_at = 0;
  };
  struct Project {
    std::deque<Pending> pending;
    bool materialized = false;
  };

  void materialize(SimTime now);
  void requeue(std::uint32_t project, GridJob job, SimTime eligible_at);
  /// Candidate machine per policy, or -1.  `epoch_routed` holds CPUs
  /// already committed this boundary and is how two same-epoch dispatches
  /// never oversubscribe a machine's current free pool.
  int pick_machine(const GridJob& job, SimTime now,
                   const std::vector<GridMachine*>& machines,
                   const std::vector<int>& epoch_routed);

  std::vector<GridProjectSpec> specs_;
  BrokerConfig cfg_;
  std::vector<Project> projects_;
  std::vector<ProjectLedger> ledgers_;
  std::vector<DispatchRecord> dispatches_;
  std::uint32_t next_gid_ = 0;
  std::size_t rr_cursor_ = 0;
  /// Per-machine placement buffers, reused across boundaries (empty
  /// between route() calls; only capacity persists).
  std::vector<std::vector<GridJob>> delivery_buf_;
};

}  // namespace istc::grid
