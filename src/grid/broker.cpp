#include "grid/broker.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace istc::grid {

const char* broker_policy_name(BrokerPolicy policy) {
  switch (policy) {
    case BrokerPolicy::kBestFit:
      return "best-fit";
    case BrokerPolicy::kRoundRobin:
      return "round-robin";
    case BrokerPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "unknown";
}

std::optional<BrokerPolicy> parse_broker_policy(std::string_view name) {
  if (name == "best-fit") return BrokerPolicy::kBestFit;
  if (name == "round-robin") return BrokerPolicy::kRoundRobin;
  if (name == "least-loaded") return BrokerPolicy::kLeastLoaded;
  return std::nullopt;
}

void GridProjectSpec::check() const {
  ISTC_ASSERT(cpus_per_job > 0);
  ISTC_ASSERT(work_per_cpu > 0);
  ISTC_ASSERT(jobs > 0);
  ISTC_ASSERT(submit_time >= 0);
  ISTC_ASSERT(share > 0);
  ISTC_ASSERT(quota_cpus >= 0);
  ISTC_ASSERT(quota_cpus == 0 || quota_cpus >= cpus_per_job);
  retry.check();
}

void BrokerConfig::check() const {
  ISTC_ASSERT(latency > 0);
  ISTC_ASSERT(poll > 0);
  ISTC_ASSERT(bounce_backoff >= 0);
  ISTC_ASSERT(max_bounces >= 0);
}

GridBroker::GridBroker(std::vector<GridProjectSpec> projects, BrokerConfig cfg)
    : specs_(std::move(projects)), cfg_(cfg) {
  cfg_.check();
  for (const auto& p : specs_) p.check();
  projects_.resize(specs_.size());
  ledgers_.resize(specs_.size());
}

std::size_t GridBroker::total_jobs() const {
  std::size_t n = 0;
  for (const auto& p : specs_) n += p.jobs;
  return n;
}

bool GridBroker::done() const {
  for (std::size_t p = 0; p < projects_.size(); ++p) {
    if (!projects_[p].materialized) return false;
    if (!projects_[p].pending.empty()) return false;
    if (ledgers_[p].inflight_jobs != 0) return false;
  }
  return true;
}

SimTime GridBroker::next_wake(SimTime now) const {
  SimTime t = kTimeInfinity;
  for (std::size_t p = 0; p < projects_.size(); ++p) {
    if (!projects_[p].materialized) {
      t = std::min(t, std::max(specs_[p].submit_time, now + 1));
      continue;
    }
    for (const auto& w : projects_[p].pending) {
      // An eligible job still queued means the last route() pass could not
      // place it — re-check on the poll cadence.  An ineligible job has a
      // known wake time.
      t = std::min(t, w.eligible_at <= now ? now + cfg_.poll : w.eligible_at);
    }
  }
  return t;
}

void GridBroker::materialize(SimTime now) {
  for (std::size_t p = 0; p < projects_.size(); ++p) {
    auto& proj = projects_[p];
    if (proj.materialized || specs_[p].submit_time > now) continue;
    proj.materialized = true;
    for (std::size_t i = 0; i < specs_[p].jobs; ++i) {
      GridJob job;
      job.gid = next_gid_++;
      job.project = static_cast<std::uint32_t>(p);
      job.cpus = specs_[p].cpus_per_job;
      job.work_per_cpu = specs_[p].work_per_cpu;
      job.checkpoint = specs_[p].retry.checkpoint_interval;
      proj.pending.push_back({job, specs_[p].submit_time});
      ++ledgers_[p].materialized;
    }
  }
}

void GridBroker::set_project_quota(std::size_t project, int quota_cpus) {
  ISTC_EXPECTS(project < specs_.size());
  ISTC_EXPECTS(quota_cpus >= 0);
  ISTC_EXPECTS(quota_cpus == 0 || quota_cpus >= specs_[project].cpus_per_job);
  specs_[project].quota_cpus = quota_cpus;
}

void GridBroker::requeue(std::uint32_t project, GridJob job,
                         SimTime eligible_at) {
  projects_[project].pending.push_back({job, eligible_at});
}

void GridBroker::ingest(const PortReport& report) {
  const std::uint32_t p = report.job.project;
  ISTC_EXPECTS(p < ledgers_.size());
  auto& led = ledgers_[p];
  ISTC_ASSERT(led.inflight_jobs > 0);
  ISTC_ASSERT(led.inflight_cpus >= report.job.cpus);
  --led.inflight_jobs;
  led.inflight_cpus -= report.job.cpus;
  led.consumed_cpu_sec += report.cpu_sec;
  switch (report.kind) {
    case ReportKind::kCompleted:
      ++led.completed;
      led.harvested_cpu_sec += report.cpu_sec;
      break;
    case ReportKind::kBounced: {
      ++led.bounced;
      GridJob job = report.job;
      ++job.bounces;
      if (job.bounces > cfg_.max_bounces) {
        ++led.abandoned_bounce;
      } else {
        requeue(p, job, report.time + cfg_.bounce_backoff);
      }
      break;
    }
    case ReportKind::kKilled: {
      ++led.killed;
      GridJob job = report.job;  // work_per_cpu is already the remainder
      ++job.attempts;
      if (job.attempts > specs_[p].retry.max_retries) {
        ++led.abandoned_retry;
      } else {
        requeue(p, job, report.time + specs_[p].retry.backoff);
      }
      break;
    }
  }
}

int GridBroker::pick_machine(const GridJob& job, SimTime now,
                             const std::vector<GridMachine*>& machines,
                             const std::vector<int>& epoch_routed) {
  const SimTime arrive = now + cfg_.latency;
  int best = -1;
  std::int64_t best_score = 0;
  const std::size_t n = machines.size();
  for (std::size_t k = 0; k < n; ++k) {
    // Round-robin starts its scan at the rotating cursor; the other
    // policies scan in index order (ties resolve to the lowest index).
    const std::size_t i =
        cfg_.policy == BrokerPolicy::kRoundRobin ? (rr_cursor_ + k) % n : k;
    GridMachine* m = machines[i];
    if (!m->accepts_routed()) continue;
    const int avail = m->free_cpus() - epoch_routed[i];
    if (avail < job.cpus) continue;
    const Seconds runtime = m->runtime_for(job.work_per_cpu);
    if (!m->can_run_at(arrive, runtime)) continue;
    // Remote evaluation of the Figure-1 gate: never ship a job to a
    // machine whose native queue would (per estimates) reclaim the CPUs
    // before the job could finish — it would only land and bounce.
    const auto& pass = m->last_pass();
    if (!pass.queue_empty && pass.queue_earliest_start - arrive <= runtime) {
      continue;
    }
    std::int64_t score = 0;
    switch (cfg_.policy) {
      case BrokerPolicy::kBestFit:
        // Widest estimated interstice over the job's window, net of CPUs
        // already committed this epoch.
        score = static_cast<std::int64_t>(m->lookahead_min_free(arrive, runtime)) -
                epoch_routed[i];
        break;
      case BrokerPolicy::kLeastLoaded:
        // Largest free fraction; scaled to keep integer comparisons.
        score = static_cast<std::int64_t>(avail) * 1'000'000 / m->capacity();
        break;
      case BrokerPolicy::kRoundRobin:
        rr_cursor_ = (i + 1) % n;
        return static_cast<int>(i);
    }
    if (best < 0 || score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

void GridBroker::route(SimTime now, const std::vector<GridMachine*>& machines) {
  materialize(now);
  if (delivery_buf_.size() < machines.size()) {
    delivery_buf_.resize(machines.size());
  }
  std::vector<int> epoch_routed(machines.size(), 0);
  int fleet_max_cpus = 0;
  for (const auto* m : machines) {
    if (m->accepts_routed()) fleet_max_cpus = std::max(fleet_max_cpus, m->capacity());
  }
  // Fair-share order: ascending consumed-work-per-share, project index as
  // the tie-break.  Usage only changes at ingest, so the order is stable
  // across the placement rounds of one boundary.
  std::vector<std::size_t> order(projects_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     const double ua =
                         static_cast<double>(ledgers_[a].consumed_cpu_sec) /
                         specs_[a].share;
                     const double ub =
                         static_cast<double>(ledgers_[b].consumed_cpu_sec) /
                         specs_[b].share;
                     return ua < ub;
                   });
  bool progress = true;
  while (progress) {
    progress = false;
    for (const std::size_t p : order) {
      auto& pending = projects_[p].pending;
      auto& led = ledgers_[p];
      // First eligible job; within a project jobs are interchangeable
      // (retry remainders differ, but any order is fair).
      const auto it = std::find_if(
          pending.begin(), pending.end(),
          [now](const Pending& w) { return w.eligible_at <= now; });
      if (it == pending.end()) continue;
      const GridJob job = it->job;
      if (job.cpus > fleet_max_cpus) {
        // No routed-accepting machine could ever hold this job.
        ++led.abandoned_unplaceable;
        pending.erase(it);
        progress = true;
        continue;
      }
      const int quota = specs_[p].quota_cpus;
      if (quota > 0 && led.inflight_cpus + job.cpus > quota) continue;
      const int m = pick_machine(job, now, machines, epoch_routed);
      if (m < 0) continue;
      const int free_now = machines[static_cast<std::size_t>(m)]->free_cpus() -
                           epoch_routed[static_cast<std::size_t>(m)];
      ISTC_ASSERT(free_now >= job.cpus);
      delivery_buf_[static_cast<std::size_t>(m)].push_back(job);
      epoch_routed[static_cast<std::size_t>(m)] += job.cpus;
      ++led.routed;
      ++led.inflight_jobs;
      led.inflight_cpus += job.cpus;
      led.peak_inflight_cpus = std::max(led.peak_inflight_cpus, led.inflight_cpus);
      ISTC_ASSERT(quota == 0 || led.inflight_cpus <= quota);
      dispatches_.push_back(
          {now, job.gid, job.project, m, job.cpus, free_now,
           machines[static_cast<std::size_t>(m)]->runtime_for(job.work_per_cpu)});
      pending.erase(it);
      progress = true;
    }
  }
  // Flush one packed batch per machine.  All of a boundary's deliveries
  // land at the same instant, and within a machine the span preserves
  // placement order, so batching is observably identical to the per-job
  // deliveries it replaces — minus ~batch-size timed events.
  for (std::size_t i = 0; i < machines.size(); ++i) {
    auto& batch = delivery_buf_[i];
    if (batch.empty()) continue;
    machines[i]->deliver_batch(now + cfg_.latency, batch);
    batch.clear();
  }
}

}  // namespace istc::grid
