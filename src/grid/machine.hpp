#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "core/driver.hpp"
#include "core/project.hpp"
#include "fault/fault.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"
#include "util/cow_log.hpp"
#include "workload/job.hpp"

/// \file machine.hpp
/// GridMachine — one shard of a federated fleet simulation.
///
/// The component/link model (after SST): a GridMachine is a component
/// wrapping today's entire per-machine stack (Engine + BatchScheduler +
/// optional InterstitialDriver + optional FaultInjector + counting tracer)
/// behind a message interface.  The only ways in are timed deliveries
/// (deliver_batch()) and the only ways out are timed reports
/// (collect_reports()), both stamped with simulation times strictly ahead
/// of the sender's clock — the "link" with its routing latency.  Between
/// epoch boundaries a machine touches no shared state, which is what lets
/// the fleet advance shards on a thread pool with bit-identical results at
/// any thread count (see fleet.hpp for the conservative synchronization
/// argument).
///
/// Deliveries are *batched*: one timed message carries a packed span of
/// jobs (everything the broker routed to this machine at one boundary),
/// so a million-job epoch costs one event per (machine, boundary) instead
/// of one per job.  The payload lives in an append-only copy-on-write log
/// and the event carries a 32-bit span index — a mid-run queue therefore
/// holds only POD entries, which is what makes a whole fleet shard
/// *forkable*: fork() snapshots the machine exactly (engine queue, SoA job
/// store, port state), sharing the delivery/submission/record logs with
/// the parent, so a fleet-level sweep can simulate the common prefix once
/// and fork a shard per parameter point (core/sweep.hpp).
///
/// A machine runs one of two interstitial modes, exclusive because the
/// scheduler's post-pass hook is singular:
///   - local: an InterstitialDriver with its own ProjectSpec (exactly the
///     single-machine stack of core::run_scenario; the determinism tests
///     pin that this mode reproduces the golden schedule hashes), or
///   - brokered: a grid port — routed jobs land, are meta-backfilled
///     through the same Figure-1 gate the driver uses, and completions /
///     kills / bounces are reported back to the GridBroker.

namespace istc::grid {

/// A brokered job: fleet-wide identity plus machine-neutral work (cycles
/// per CPU, the paper's normalization), so the same job can be routed to —
/// or retried on — machines with different clocks.
struct GridJob {
  std::uint32_t gid = 0;      ///< fleet-wide id, assigned by the broker
  std::uint32_t project = 0;  ///< index into the broker's project table
  int cpus = 1;
  /// Remaining work per CPU in cycles; the full amount for fresh
  /// dispatches, the post-checkpoint remainder for fault retries.
  cluster::Cycles work_per_cpu = 0;
  /// Checkpoint cadence (from the project's FaultRetryPolicy): a kill
  /// loses only work since the last multiple of this; 0 = restart.
  Seconds checkpoint = 0;
  int attempts = 0;  ///< fault-retry resubmissions already consumed
  int bounces = 0;   ///< times this job failed to start and was re-routed
};

enum class ReportKind : std::uint8_t {
  kCompleted,  ///< ran to completion; cpu_sec is the harvested work
  kBounced,    ///< never started within the patience window; re-route
  kKilled,     ///< killed mid-run; job.work_per_cpu holds the remainder
};

/// A timed message from a machine's port back to the broker.
struct PortReport {
  ReportKind kind = ReportKind::kCompleted;
  GridJob job;
  SimTime time = 0;  ///< completion / bounce / kill time
  /// CPU-seconds consumed on this machine (full runtime for completions,
  /// elapsed for kills, 0 for bounces) — the broker's fair-share charge.
  std::uint64_t cpu_sec = 0;
};

/// Everything needed to stand up one machine of a fleet.  Site presets
/// (fleet.hpp) fill this from cluster/workload/sched presets; tests build
/// miniatures directly.
struct MachineSetup {
  std::string name;  ///< display name; defaults to spec.name when empty
  cluster::MachineSpec spec;
  cluster::DowntimeCalendar downtime;
  sched::PolicySpec policy;
  workload::JobLog natives;
  /// Native log span, i.e. the take_result() span.
  SimTime span = 0;
  /// Local-mode interstitial stream (mutually exclusive with brokered
  /// deliveries; see file comment).
  std::optional<core::ProjectSpec> local_project;
  /// Interstitial job ids count up from here; defaults to natives.size().
  std::optional<workload::JobId> first_interstitial_id;
  /// Unplanned-failure timeline (inert by default).
  fault::FaultSpec faults;
  /// How long a delivered job may sit unstarted (gate closed, no space)
  /// before the port bounces it back to the broker for re-routing.
  Seconds bounce_patience = 0;
  bool typed_events = true;
  /// Typed queue selection (same semantics as core::Scenario::queue).
  sim::QueueImpl queue = sim::QueueImpl::kCalendar;
  sim::QueueImpl queue_impl() const {
    return typed_events ? queue : sim::QueueImpl::kLegacy;
  }
};

class GridMachine {
 public:
  /// Port-side tallies (the broker keeps its own ledger; these let tests
  /// cross-check conservation from both ends of the link).
  struct PortStats {
    std::size_t delivered = 0;
    std::size_t started = 0;
    std::size_t completed = 0;
    std::size_t bounced = 0;
    std::size_t killed = 0;
  };

  explicit GridMachine(MachineSetup setup);

  GridMachine(const GridMachine&) = delete;
  GridMachine& operator=(const GridMachine&) = delete;

  /// Fork: a new GridMachine whose state is a copy-on-write snapshot of
  /// this one at the current sim time — same protocol as core::SimRun.
  /// Requires the typed event core (adopt_state) and a quiescent machine
  /// (between events, i.e. at a fleet epoch boundary).  `this` is mutated
  /// only to freeze its shared log prefixes.  The fork starts with a fresh
  /// counters-only tracer; port statistics carry over.
  std::unique_ptr<GridMachine> fork();

  const std::string& name() const { return name_; }
  const cluster::Machine& machine() const { return scheduler_->machine(); }
  SimTime span() const { return setup_.span; }
  bool accepts_routed() const { return !driver_.has_value(); }

  // -- epoch surface (called by the fleet loop) ---------------------------

  SimTime now() const { return engine_.now(); }
  SimTime next_event_time() const { return engine_.next_event_time(); }

  /// Process every event with time <= until.  Implemented as a step()
  /// loop, so the clock ends on the last *processed* event and a sliced
  /// run leaves the same sim_end as an unsliced one.
  void advance(SimTime until);

  /// Run to quiescence (end-of-run native drain).
  void drain() { engine_.run(); }

  /// Earliest future time this machine will have something to tell the
  /// broker: `asap` when reports are already queued, else the earliest of
  /// running grid jobs' (exactly known) completion times and landed jobs'
  /// bounce deadlines; kTimeInfinity when the port is idle.
  SimTime next_report_time(SimTime asap) const;

  /// A batch of routed jobs arrives at `at` (the sender's boundary time
  /// plus the link latency; must be ahead of this machine's clock).  One
  /// timed event per batch — the jobs land together, in span order, and
  /// the arrival triggers a scheduling pass so each job gets its first
  /// start attempt the instant it lands.
  void deliver_batch(SimTime at, std::span<const GridJob> jobs);

  /// Single-job delivery (tests, miniatures): a batch of one.
  void deliver(SimTime at, const GridJob& job) {
    deliver_batch(at, std::span<const GridJob>(&job, 1));
  }

  /// Drain the port's outbound link into `out` (appended): kill reports
  /// queued since the last boundary, completions with end <= now, and
  /// bounces whose patience expired.  Deterministic order (kills in event
  /// order, then completions and bounces in landing order).  One packed
  /// span per (machine, boundary) — the fleet loop reuses a single buffer
  /// across machines and epochs, so a million-job epoch performs no
  /// per-report allocation in steady state.
  void collect_reports(SimTime now, std::vector<PortReport>& out);

  /// Convenience wrapper returning a fresh vector (tests).
  std::vector<PortReport> collect_reports(SimTime now) {
    std::vector<PortReport> out;
    collect_reports(now, out);
    return out;
  }

  // -- routing surface (read by the broker at boundaries) -----------------

  int capacity() const { return machine().total_cpus(); }
  int free_cpus() const { return machine().free_cpus(); }
  Seconds runtime_for(cluster::Cycles work) const {
    return machine().spec().runtime_for(work);
  }
  /// Snapshot of the most recent scheduling pass (gate inputs: queue
  /// emptiness and the earliest native start the gate protects).
  const sched::PassContext& last_pass() const {
    return scheduler_->last_pass();
  }
  /// Minimum free CPUs over [t, t+dur) per the estimate-based free-CPU
  /// profile — the "current interstice estimate" best-fit routing ranks by.
  int lookahead_min_free(SimTime t, Seconds dur) const;
  /// Planned-downtime check for a candidate start window.
  bool can_run_at(SimTime t, Seconds dur) const {
    return machine().downtime().can_run(t, dur);
  }
  sched::SchedulerProbe probe() const { return scheduler_->probe(); }

  // -- results ------------------------------------------------------------

  const PortStats& port_stats() const { return stats_; }
  /// Packed delivery spans received (one timed arrival event each); the
  /// message-batching win is port_stats().delivered / delivery_batches().
  std::size_t delivery_batches() const { return delivery_spans_.size(); }
  const trace::Tracer& tracer() const { return tracer_; }
  const core::InterstitialDriver* driver() const {
    return driver_ ? &*driver_ : nullptr;
  }
  const fault::FaultInjector* injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

  /// Collect the run result (requires the machine to have drained).
  sched::RunResult take_result() {
    return scheduler_->take_result(setup_.span);
  }

 private:
  /// A delivered job waiting for a pass that can start it.
  struct Landed {
    GridJob job;
    SimTime arrived = 0;
  };
  /// A started grid job; `end` is exact (interstitial runtimes are known),
  /// so completions are detected by a boundary sweep, no callback needed.
  struct RunningGrid {
    workload::JobId local_id = workload::kInvalidJob;
    GridJob job;
    SimTime start = 0;
    SimTime end = 0;
  };
  /// One batched delivery: a packed [begin, begin+count) range of
  /// delivery_jobs_.  kGridArrival events carry an index into this log.
  struct DeliverySpan {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };

  /// Fork constructor (use fork(); `other` is mutated only to freeze its
  /// copy-on-write log prefixes).
  explicit GridMachine(GridMachine& other);

  /// Register the port-mode hooks (post-pass backfill, kill accounting,
  /// grid-arrival dispatch) on this machine's own engine/scheduler; both
  /// constructors share it because hooks are identities of the stack and
  /// are never copied by the clone ctors.
  void register_port_hooks();
  void on_arrival(std::uint32_t span_index);
  void on_pass(const sched::PassContext& ctx);
  void on_kill(const sched::JobRecord& victim, sched::KillReason reason);

  MachineSetup setup_;
  std::string name_;
  sim::Engine engine_;
  // unique_ptr keeps the scheduler's address stable across the fork ctor
  // (the driver and injector hold references to it) and lets the fork
  // adopt the engine state before cloning the scheduler.
  std::unique_ptr<sched::BatchScheduler> scheduler_;
  trace::Tracer tracer_;
  std::optional<core::InterstitialDriver> driver_;
  std::optional<fault::FaultInjector> injector_;

  workload::JobId next_local_id_ = 0;
  /// Arrival times of delivery batches still in flight (scheduled, not
  /// yet landed), FIFO since boundaries are monotone.  Keeps the fleet
  /// loop live: an in-flight batch guarantees a boundary at (or after)
  /// its arrival even when everything else is idle.
  std::deque<SimTime> arrivals_;
  std::vector<Landed> landed_;
  std::vector<RunningGrid> running_;
  /// Outbound reports queued mid-slice (kills); drained at boundaries.
  std::vector<PortReport> reports_;
  /// Batched-delivery payloads: jobs in routing order plus the span table
  /// the 32-bit event args index.  Copy-on-write so forks share the
  /// prefix and queued arrival events stay valid across the fork.
  util::CowLog<GridJob> delivery_jobs_;
  util::CowLog<DeliverySpan> delivery_spans_;
  PortStats stats_;
};

}  // namespace istc::grid
