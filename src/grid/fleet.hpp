#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/presets.hpp"
#include "grid/broker.hpp"
#include "grid/machine.hpp"
#include "util/thread_pool.hpp"

/// \file fleet.hpp
/// run_fleet — the conservatively synchronized federated simulation.
///
/// Epoch loop: the next boundary is the earliest time anything crosses a
/// link — a broker wake (project arrival, retry eligibility, poll tick) or
/// a machine report (grid-job completion, bounce deadline, queued kill).
/// Every machine with events in (T_prev, T] advances *independently* to T
/// (no message can reach it earlier than T + latency, the classic
/// lower-bound-timestamp argument with the link latency as lookahead), so
/// the advance step fans out over the thread pool.  The boundary step —
/// collect reports in machine order, ingest, route — is serial.  Machine
/// state therefore evolves identically at any thread count, and the fleet
/// hash is bit-stable from 1 to N shard threads (pinned by tests and by
/// bench/fleet_broker's exit-code gate).

namespace istc::grid {

struct FleetConfig {
  BrokerConfig broker;
  /// Extra boundary cadence (0 = boundaries only when messages demand
  /// them).  Exists to prove slicing is invisible: a sliced single-machine
  /// run must reproduce the unsliced golden hash.
  Seconds heartbeat = 0;
  /// Shard threads; 0 = util::default_thread_count().
  std::size_t threads = 0;
};

struct FleetMachineOutcome {
  std::string name;
  sched::RunResult run;
  GridMachine::PortStats port;
  std::uint64_t hash = 0;  ///< hash_run(run), the per-shard determinism pin
};

struct FleetResult {
  std::vector<FleetMachineOutcome> machines;
  std::vector<GridProjectSpec> projects;
  std::vector<ProjectLedger> ledgers;
  std::vector<DispatchRecord> dispatches;
  std::size_t epochs = 0;
  SimTime sim_end = 0;      ///< max over machines
  std::uint64_t hash = 0;   ///< machine hashes folded in machine order
  double fairness = 1.0;    ///< Jain's index over harvested work per share
};

/// FNV-1a over a run's observable schedule — records (id, start, end,
/// cpus), kills (id, start, end), sim_end — the exact recipe of the
/// determinism test pins, exported so grid tests and the bench gate can
/// compare against the existing goldens.
std::uint64_t hash_run(const sched::RunResult& run);

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 1.0 for n == 0 or
/// all-zero.
double jain_fairness(const std::vector<double>& xs);

/// FleetRun — a whole federated fleet as a forkable run object.
///
/// Owns the machines, the broker, and the epoch-loop clock, exposing the
/// same protocol as core::SimRun — run_until / fork / finish — so a
/// core::SweepRunner<FleetRun> can sweep broker policies or quotas by
/// simulating the shared fleet prefix once and forking the *entire fleet*
/// (every shard plus the broker's ledgers) per parameter point.
///
/// run_until advances whole epochs: it processes every boundary <= t and
/// stops with the fleet standing at the last one, which is exactly where a
/// fork is legal (all machines quiescent between events, the broker
/// between route() calls).  Knob setters applied to a fork before finish()
/// take effect from that boundary on.
class FleetRun {
 public:
  FleetRun(std::vector<MachineSetup> setups,
           std::vector<GridProjectSpec> projects, const FleetConfig& cfg = {});

  FleetRun(const FleetRun&) = delete;
  FleetRun& operator=(const FleetRun&) = delete;

  /// Process every boundary with time <= t (machines fork serially inside,
  /// then advance on the pool when cfg.threads allows).
  void run_until(SimTime t);

  /// Copy-on-write snapshot of the whole fleet at the current boundary:
  /// every machine forked (sharing logs with its parent), the broker's
  /// queues and ledgers copied.  `this` is mutated only to freeze shared
  /// log prefixes.
  std::unique_ptr<FleetRun> fork();

  /// Run to completion (all grid work accounted, natives drained) and
  /// collect the result.
  FleetResult finish();

  // Sweep knobs, forwarded to the broker (apply to a fork at its boundary).
  void set_policy(BrokerPolicy policy) { broker_.set_policy(policy); }
  void set_project_quota(std::size_t project, int quota_cpus) {
    broker_.set_project_quota(project, quota_cpus);
  }

  SimTime now() const { return now_; }
  std::size_t epochs() const { return epochs_; }
  const GridBroker& broker() const { return broker_; }
  std::size_t machine_count() const { return owned_.size(); }
  const GridMachine& machine(std::size_t i) const { return *owned_[i]; }

 private:
  /// Fork constructor (use fork()).
  explicit FleetRun(FleetRun& other);

  /// Earliest time anything crosses a link (kTimeInfinity when done).
  SimTime next_boundary() const;
  void each_machine(const std::function<void(std::size_t)>& fn);

  FleetConfig cfg_;
  GridBroker broker_;
  std::vector<std::unique_ptr<GridMachine>> owned_;
  std::vector<GridMachine*> machines_;  ///< raw view for the broker
  std::optional<ThreadPool> pool_;
  SimTime now_ = 0;
  std::size_t epochs_ = 0;
  /// Report buffer reused across machines and epochs (steady-state
  /// boundaries perform no per-report allocation).
  std::vector<PortReport> report_buf_;
};

FleetResult run_fleet(std::vector<MachineSetup> setups,
                      std::vector<GridProjectSpec> projects,
                      const FleetConfig& cfg = {});

/// Native-only reference run of one machine (no interstitial stream at
/// all) — the native-impact baseline for the fleet tables.
sched::RunResult run_native_only(MachineSetup setup);

// -- presets ----------------------------------------------------------------

/// The canonical per-site machine: Table-1 spec, site downtime calendar,
/// site queueing policy, and the site's calibrated native log.
MachineSetup site_machine_setup(cluster::Site site);

/// A synthetic Ross-class variant: same spec/policy/downtime, reseeded
/// native log (same statistics, different realization), named
/// "Synthetic-<index>".
MachineSetup synthetic_machine_setup(int index);

/// Parse a fleet list like "ross,bluemtn,bluepac,synth1".  Accepted
/// tokens: ross, bluemtn (bluemountain), bluepac (bluepacific), synthN.
/// Returns nullopt on any unknown token.
std::optional<std::vector<MachineSetup>> parse_fleet_list(
    const std::string& csv);

/// The default fleet: all three paper machines plus one synthetic variant.
std::vector<MachineSetup> default_fleet();

/// A deterministic competing-project sweep: `nprojects` projects of
/// `jobs_each` machine-neutral jobs with varied widths/sizes/shares drawn
/// from `seed`, each quota-capped to `quota_frac` of `fleet_cpus` (0
/// disables quotas).
std::vector<GridProjectSpec> sweep_projects(std::size_t nprojects,
                                            std::size_t jobs_each,
                                            int fleet_cpus, double quota_frac,
                                            std::uint64_t seed);

}  // namespace istc::grid
