#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/presets.hpp"
#include "grid/broker.hpp"
#include "grid/machine.hpp"

/// \file fleet.hpp
/// run_fleet — the conservatively synchronized federated simulation.
///
/// Epoch loop: the next boundary is the earliest time anything crosses a
/// link — a broker wake (project arrival, retry eligibility, poll tick) or
/// a machine report (grid-job completion, bounce deadline, queued kill).
/// Every machine with events in (T_prev, T] advances *independently* to T
/// (no message can reach it earlier than T + latency, the classic
/// lower-bound-timestamp argument with the link latency as lookahead), so
/// the advance step fans out over the thread pool.  The boundary step —
/// collect reports in machine order, ingest, route — is serial.  Machine
/// state therefore evolves identically at any thread count, and the fleet
/// hash is bit-stable from 1 to N shard threads (pinned by tests and by
/// bench/fleet_broker's exit-code gate).

namespace istc::grid {

struct FleetConfig {
  BrokerConfig broker;
  /// Extra boundary cadence (0 = boundaries only when messages demand
  /// them).  Exists to prove slicing is invisible: a sliced single-machine
  /// run must reproduce the unsliced golden hash.
  Seconds heartbeat = 0;
  /// Shard threads; 0 = util::default_thread_count().
  std::size_t threads = 0;
};

struct FleetMachineOutcome {
  std::string name;
  sched::RunResult run;
  GridMachine::PortStats port;
  std::uint64_t hash = 0;  ///< hash_run(run), the per-shard determinism pin
};

struct FleetResult {
  std::vector<FleetMachineOutcome> machines;
  std::vector<GridProjectSpec> projects;
  std::vector<ProjectLedger> ledgers;
  std::vector<DispatchRecord> dispatches;
  std::size_t epochs = 0;
  SimTime sim_end = 0;      ///< max over machines
  std::uint64_t hash = 0;   ///< machine hashes folded in machine order
  double fairness = 1.0;    ///< Jain's index over harvested work per share
};

/// FNV-1a over a run's observable schedule — records (id, start, end,
/// cpus), kills (id, start, end), sim_end — the exact recipe of the
/// determinism test pins, exported so grid tests and the bench gate can
/// compare against the existing goldens.
std::uint64_t hash_run(const sched::RunResult& run);

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 1.0 for n == 0 or
/// all-zero.
double jain_fairness(const std::vector<double>& xs);

FleetResult run_fleet(std::vector<MachineSetup> setups,
                      std::vector<GridProjectSpec> projects,
                      const FleetConfig& cfg = {});

/// Native-only reference run of one machine (no interstitial stream at
/// all) — the native-impact baseline for the fleet tables.
sched::RunResult run_native_only(MachineSetup setup);

// -- presets ----------------------------------------------------------------

/// The canonical per-site machine: Table-1 spec, site downtime calendar,
/// site queueing policy, and the site's calibrated native log.
MachineSetup site_machine_setup(cluster::Site site);

/// A synthetic Ross-class variant: same spec/policy/downtime, reseeded
/// native log (same statistics, different realization), named
/// "Synthetic-<index>".
MachineSetup synthetic_machine_setup(int index);

/// Parse a fleet list like "ross,bluemtn,bluepac,synth1".  Accepted
/// tokens: ross, bluemtn (bluemountain), bluepac (bluepacific), synthN.
/// Returns nullopt on any unknown token.
std::optional<std::vector<MachineSetup>> parse_fleet_list(
    const std::string& csv);

/// The default fleet: all three paper machines plus one synthetic variant.
std::vector<MachineSetup> default_fleet();

/// A deterministic competing-project sweep: `nprojects` projects of
/// `jobs_each` machine-neutral jobs with varied widths/sizes/shares drawn
/// from `seed`, each quota-capped to `quota_frac` of `fleet_cpus` (0
/// disables quotas).
std::vector<GridProjectSpec> sweep_projects(std::size_t nprojects,
                                            std::size_t jobs_each,
                                            int fleet_cpus, double quota_frac,
                                            std::uint64_t seed);

}  // namespace istc::grid
