#include "grid/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "metrics/report.hpp"
#include "metrics/utilization.hpp"

namespace istc::grid {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void write_fleet_report(std::ostream& out, const FleetResult& fleet) {
  out << "{\n";
  out << "  \"schema\": \"" << metrics::kRunReportSchema << "\",\n";
  out << "  \"compat\": [\"" << metrics::kRunReportCompat << "\"],\n";
  out << "  \"machines\": [";
  for (std::size_t i = 0; i < fleet.machines.size(); ++i) {
    const auto& m = fleet.machines[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(m.run.machine.name)
        << "\", \"site\": \"" << json_escape(m.run.machine.site)
        << "\", \"cpus\": " << m.run.machine.cpus
        << ", \"clock_ghz\": " << format_double(m.run.machine.clock_ghz)
        << ",\n     \"span_s\": " << m.run.span
        << ", \"sim_end_s\": " << m.run.sim_end
        << ",\n     \"jobs\": {\"native_completed\": " << m.run.native_count()
        << ", \"interstitial_completed\": " << m.run.interstitial_count()
        << ", \"killed\": " << m.run.killed.size() << "}"
        << ",\n     \"port\": {\"delivered\": " << m.port.delivered
        << ", \"started\": " << m.port.started
        << ", \"completed\": " << m.port.completed
        << ", \"bounced\": " << m.port.bounced
        << ", \"killed\": " << m.port.killed << "}"
        << ",\n     \"utilization\": "
        << format_double(metrics::average_utilization(
               m.run.records, m.run.machine.cpus, 0, m.run.span))
        << ", \"schedule_hash\": \"" << std::hex << m.hash << std::dec
        << "\"}";
  }
  out << "\n  ],\n";
  out << "  \"fleet\": {\n";
  out << "    \"epochs\": " << fleet.epochs << ",\n";
  out << "    \"sim_end_s\": " << fleet.sim_end << ",\n";
  out << "    \"dispatches\": " << fleet.dispatches.size() << ",\n";
  out << "    \"fairness_jain\": " << format_double(fleet.fairness) << ",\n";
  out << "    \"fleet_hash\": \"" << std::hex << fleet.hash << std::dec
      << "\",\n";
  out << "    \"projects\": [";
  for (std::size_t p = 0; p < fleet.projects.size(); ++p) {
    const auto& spec = fleet.projects[p];
    const auto& led = fleet.ledgers[p];
    out << (p == 0 ? "\n" : ",\n");
    out << "      {\"name\": \"" << json_escape(spec.name)
        << "\", \"cpus_per_job\": " << spec.cpus_per_job
        << ", \"jobs\": " << spec.jobs
        << ", \"share\": " << format_double(spec.share)
        << ", \"quota_cpus\": " << spec.quota_cpus
        << ",\n       \"completed\": " << led.completed
        << ", \"routed\": " << led.routed << ", \"bounced\": " << led.bounced
        << ", \"killed\": " << led.killed
        << ", \"abandoned\": " << led.abandoned()
        << ",\n       \"peak_inflight_cpus\": " << led.peak_inflight_cpus
        << ", \"harvested_cpu_sec\": " << led.harvested_cpu_sec
        << ", \"consumed_cpu_sec\": " << led.consumed_cpu_sec << "}";
  }
  out << (fleet.projects.empty() ? "]" : "\n    ]") << "\n";
  out << "  }\n";
  out << "}\n";
}

void write_fleet_report_file(const std::string& path,
                             const FleetResult& fleet) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_fleet_report(out, fleet);
}

}  // namespace istc::grid
