#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace istc::workload {

Generator::Generator(WorkloadSpec spec) : spec_(std::move(spec)) {
  ISTC_EXPECTS(spec_.span > 0);
  ISTC_EXPECTS(spec_.jobs > 0);
  ISTC_EXPECTS(spec_.offered_load > 0 && spec_.offered_load < 1.2);
  ISTC_EXPECTS(!spec_.size_classes.empty());
  ISTC_EXPECTS(spec_.max_cpus >= 1);
  ISTC_EXPECTS(spec_.runtime_median > 0);
  ISTC_EXPECTS(spec_.runtime_mean >= spec_.runtime_median);
  ISTC_EXPECTS(spec_.runtime_max > spec_.runtime_min);
  ISTC_EXPECTS(spec_.correlation_ref_cpus >= 1);
  ISTC_EXPECTS(!spec_.estimate_defaults.empty());
  ISTC_EXPECTS(spec_.estimate_defaults.size() ==
               spec_.estimate_default_weights.size());
  ISTC_EXPECTS(spec_.estimate_max > 0);
}

JobLog Generator::generate(const cluster::MachineSpec& machine,
                           Rng& rng) const {
  ISTC_EXPECTS(spec_.max_cpus <= machine.cpus);

  const ArrivalProcess arrivals(spec_.arrivals);
  const SizeDistribution sizes(spec_.size_classes, spec_.size_tail_prob,
                               spec_.size_tail_alpha, spec_.max_cpus);
  const RuntimeDistribution runtimes(spec_.runtime_median, spec_.runtime_mean,
                                     spec_.runtime_min, spec_.runtime_max);
  const EstimateModel estimates(spec_.estimate_defaults,
                                spec_.estimate_default_weights,
                                spec_.estimate_default_prob,
                                spec_.estimate_pad_lo, spec_.estimate_pad_hi,
                                spec_.estimate_max);

  // Zipf-like user activity; users assigned to groups round-robin so group
  // populations are balanced (hierarchical fair share needs both levels).
  const int nusers = std::max(1, spec_.population.users);
  const int ngroups = std::max(1, std::min(spec_.population.groups, nusers));
  std::vector<double> user_weights(static_cast<std::size_t>(nusers));
  for (int u = 0; u < nusers; ++u) {
    user_weights[static_cast<std::size_t>(u)] =
        1.0 / std::pow(static_cast<double>(u + 1), spec_.population.zipf_s);
  }
  const DiscreteSampler user_sampler(user_weights);

  const std::vector<SimTime> submit_times =
      arrivals.generate(spec_.span, spec_.jobs, rng);

  std::vector<Job> jobs;
  jobs.reserve(spec_.jobs);
  for (std::size_t i = 0; i < submit_times.size(); ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.klass = JobClass::kNative;
    j.user = static_cast<UserId>(user_sampler(rng));
    j.group = static_cast<GroupId>(j.user % ngroups);
    j.submit = submit_times[i];
    j.cpus = sizes(rng);
    j.runtime = runtimes(rng);
    if (spec_.runtime_size_exponent != 0.0) {
      const double mult = std::pow(
          static_cast<double>(j.cpus) /
              static_cast<double>(spec_.correlation_ref_cpus),
          spec_.runtime_size_exponent);
      j.runtime = std::clamp(
          static_cast<Seconds>(static_cast<double>(j.runtime) * mult),
          spec_.runtime_min, spec_.runtime_max);
    }
    jobs.push_back(j);
  }

  // Calibrate: rescale runtimes so total work hits the offered-load target.
  // The clamp to [runtime_min, runtime_max] bleeds work out of the tail, so
  // iterate the rescale on the *unclamped* runtimes until the clamped total
  // converges (a handful of rounds suffice).
  const double target_work = spec_.offered_load *
                             static_cast<double>(machine.cpus) *
                             static_cast<double>(spec_.span);
  std::vector<double> raw(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    raw[i] = static_cast<double>(jobs[i].runtime);
  }
  double scale = 1.0;
  for (int round = 0; round < 25; ++round) {
    double work = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto r = static_cast<Seconds>(raw[i] * scale);
      jobs[i].runtime = std::clamp(r, spec_.runtime_min, spec_.runtime_max);
      work += jobs[i].cpu_seconds();
    }
    ISTC_ASSERT(work > 0);
    const double err = target_work / work;
    if (err > 0.999 && err < 1.001) break;
    scale *= err;
  }

  // Estimates are assigned after calibration so estimate >= runtime holds
  // for the final runtimes.
  for (auto& j : jobs) {
    j.estimate = estimates(j.runtime, rng);
    j.check();
  }

  return JobLog(std::move(jobs));
}

LogStats compute_stats(const JobLog& log, const cluster::MachineSpec& machine,
                       SimTime span) {
  LogStats s;
  s.jobs = log.size();
  if (log.empty() || span <= 0) return s;
  s.offered_load = log.total_cpu_seconds() /
                   (static_cast<double>(machine.cpus) *
                    static_cast<double>(span));
  std::vector<double> cpus, run_h, est_h;
  cpus.reserve(log.size());
  run_h.reserve(log.size());
  est_h.reserve(log.size());
  for (const auto& j : log.jobs()) {
    cpus.push_back(static_cast<double>(j.cpus));
    run_h.push_back(to_hours(j.runtime));
    est_h.push_back(to_hours(j.estimate));
  }
  const Summary sc(std::move(cpus));
  const Summary sr(std::move(run_h));
  const Summary se(std::move(est_h));
  s.mean_cpus = sc.mean();
  s.median_runtime_h = sr.median();
  s.mean_runtime_h = sr.mean();
  s.median_estimate_h = se.median();
  s.mean_estimate_h = se.mean();
  return s;
}

}  // namespace istc::workload
