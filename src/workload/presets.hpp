#pragma once

#include "cluster/presets.hpp"
#include "workload/generator.hpp"

/// \file presets.hpp
/// Per-site workload specifications calibrated against the paper's Table 1
/// (utilization, span, job count) and the Blue Mountain runtime/estimate
/// statistics quoted in §4.3 (median actual 0.8 h vs median estimate 6 h).

namespace istc::workload {

/// The calibrated workload spec for a site.
WorkloadSpec site_workload(cluster::Site site);

/// Generate the site's native log with the canonical per-site seed (the
/// "log" every experiment replays, like the paper replaying a fixed trace).
JobLog site_log(cluster::Site site);

/// Generate the site's native log with an explicit seed (for sensitivity
/// studies and property tests).
JobLog site_log(cluster::Site site, std::uint64_t seed);

}  // namespace istc::workload
