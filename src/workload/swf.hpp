#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "workload/job.hpp"

/// \file swf.hpp
/// Standard Workload Format (SWF) I/O.
///
/// The paper replays real site logs; this repo ships a synthetic-generator
/// substitute, but any SWF trace (e.g. from the Parallel Workloads Archive)
/// can be dropped in instead.  SWF is line-oriented: 18 whitespace-separated
/// fields per job, ';' starts a comment.  We consume the fields relevant to
/// this study: submit time (2), run time (4), allocated/requested processors
/// (5/8), requested time = user estimate (9), user (12), group (13).

namespace istc::workload {

struct SwfReadOptions {
  /// Jobs with non-positive runtime or processors are skipped (failed /
  /// cancelled entries in real traces).
  bool skip_invalid = true;
  /// Shift submit times so the first job arrives at t=0.
  bool rebase_time = true;
  /// Clamp estimate up to runtime when a trace has estimate < runtime
  /// (sites that killed at the limit logged runtime == limit; sites that
  /// did not can log estimate below runtime, which our scheduler forbids).
  bool clamp_estimates = true;
};

/// Outcome of parsing one SWF line in a streaming (tail-ingest) context.
/// Unlike read_swf, the line parser never throws: a long-running service
/// must answer a malformed line with a structured error, not by dropping
/// the connection.  The job's id is NOT assigned — streaming callers own
/// id allocation (read_swf numbers jobs densely itself).
struct SwfLineOutcome {
  enum class Status : std::uint8_t {
    kJob,      ///< job holds a valid record
    kBlank,    ///< blank or comment-only line; nothing to ingest
    kSkipped,  ///< well-formed but filtered (failed/cancelled entry)
    kError,    ///< malformed: truncated record, garbage field, bad values
  };
  Status status = Status::kBlank;
  Job job;
  std::string error;  ///< human-readable cause when status == kError
};

/// Parse one SWF line.  With opts.skip_invalid, non-positive runtime or
/// width yields kSkipped (real traces log failed jobs that way); without
/// it, kError.  opts.rebase_time does not apply line-wise (a tail carries
/// absolute times); opts.clamp_estimates behaves as in read_swf.
SwfLineOutcome parse_swf_line(std::string_view line,
                              const SwfReadOptions& opts = {});

/// Parse an SWF stream.  Throws std::runtime_error on malformed lines.
JobLog read_swf(std::istream& in, const SwfReadOptions& opts = {});

/// Parse an SWF file by path.
JobLog read_swf_file(const std::string& path, const SwfReadOptions& opts = {});

/// Serialize a log as SWF (fields we do not model are -1).
void write_swf(std::ostream& out, const JobLog& log,
               const std::string& header_comment = {});

void write_swf_file(const std::string& path, const JobLog& log,
                    const std::string& header_comment = {});

}  // namespace istc::workload
