#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

/// \file job.hpp
/// The immutable job description fed to the simulator.  Scheduling results
/// (start/finish) live in metrics::JobRecord, not here.

namespace istc::workload {

using JobId = std::uint32_t;
using UserId = std::uint16_t;
using GroupId = std::uint16_t;

inline constexpr JobId kInvalidJob = UINT32_MAX;

/// Native = from the machine's real job log (here: synthetic log).
/// Interstitial = injected low-priority filler job.
enum class JobClass : std::uint8_t { kNative, kInterstitial };

struct Job {
  JobId id = kInvalidJob;
  JobClass klass = JobClass::kNative;
  UserId user = 0;
  GroupId group = 0;
  int cpus = 1;
  SimTime submit = 0;
  /// True runtime; unknown to the scheduler until completion.
  Seconds runtime = 0;
  /// User-supplied estimate; the only duration the scheduler may consult.
  /// Invariant: estimate >= runtime (generator clamps; real sites kill at
  /// the estimate, which with this invariant never fires).
  Seconds estimate = 0;

  bool interstitial() const { return klass == JobClass::kInterstitial; }

  /// CPU-seconds of real work (the "size" used for largest-5% selection).
  double cpu_seconds() const {
    return static_cast<double>(cpus) * static_cast<double>(runtime);
  }

  void check() const {
    ISTC_ASSERT(cpus > 0);
    ISTC_ASSERT(runtime > 0);
    ISTC_ASSERT(estimate >= runtime);
    ISTC_ASSERT(submit >= 0);
  }
};

/// A job log: jobs sorted by submit time, ids dense in [0, size).
class JobLog {
 public:
  JobLog() = default;
  explicit JobLog(std::vector<Job> jobs);

  const std::vector<Job>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const Job& operator[](std::size_t i) const { return jobs_[i]; }

  /// Total CPU-seconds of work in the log.
  double total_cpu_seconds() const;

  /// Last submit time (0 when empty).
  SimTime last_submit() const;

 private:
  std::vector<Job> jobs_;
};

/// Copy of a log with every estimate set to the true runtime — the
/// "perfect user estimates" counterfactual (the paper attributes much of
/// the fallible-mode native impact to gross overestimates; this knob lets
/// the ablation bench quantify that claim).
JobLog with_perfect_estimates(const JobLog& log);

/// Copy of a log with every runtime scaled by `time_factor` (estimates
/// rescale proportionally, floors at 1 s) and every width scaled by
/// `size_factor` (clamped to [1, max_cpus], *not* re-rounded to powers of
/// two so the offered-load change is exact).  This is the paper's §4.3.2
/// comparator: raising utilization by running "longer or larger" native
/// jobs instead of interstitial ones.
JobLog with_scaled_jobs(const JobLog& log, double time_factor,
                        double size_factor, int max_cpus);

}  // namespace istc::workload
