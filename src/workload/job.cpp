#include "workload/job.hpp"

#include <algorithm>

namespace istc::workload {

JobLog::JobLog(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  for (auto& j : jobs_) j.check();
}

double JobLog::total_cpu_seconds() const {
  double total = 0;
  for (const auto& j : jobs_) total += j.cpu_seconds();
  return total;
}

SimTime JobLog::last_submit() const {
  return jobs_.empty() ? 0 : jobs_.back().submit;
}

JobLog with_perfect_estimates(const JobLog& log) {
  std::vector<Job> jobs(log.jobs());
  for (auto& j : jobs) j.estimate = j.runtime;
  return JobLog(std::move(jobs));
}

JobLog with_scaled_jobs(const JobLog& log, double time_factor,
                        double size_factor, int max_cpus) {
  ISTC_EXPECTS(time_factor > 0);
  ISTC_EXPECTS(size_factor > 0);
  ISTC_EXPECTS(max_cpus >= 1);
  std::vector<Job> jobs(log.jobs());
  for (auto& j : jobs) {
    const auto runtime = static_cast<Seconds>(
        static_cast<double>(j.runtime) * time_factor);
    const auto estimate = static_cast<Seconds>(
        static_cast<double>(j.estimate) * time_factor);
    j.runtime = std::max<Seconds>(1, runtime);
    j.estimate = std::max(j.runtime, estimate);
    const auto cpus =
        static_cast<int>(static_cast<double>(j.cpus) * size_factor);
    j.cpus = std::clamp(cpus, 1, max_cpus);
    j.check();
  }
  return JobLog(std::move(jobs));
}

}  // namespace istc::workload
