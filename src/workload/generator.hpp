#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "workload/arrival.hpp"
#include "workload/distributions.hpp"
#include "workload/job.hpp"

/// \file generator.hpp
/// Synthetic native-log generation, calibrated per machine.
///
/// Substitution note (see DESIGN.md): the paper replays proprietary ASCI
/// logs; we synthesize logs whose statistical structure carries the same
/// phenomena — fat-tailed sizes, bursty arrivals, inflated estimates — and
/// whose offered load matches each site's Table 1 utilization.

namespace istc::workload {

struct UserPopulation {
  /// Number of distinct users; activity follows a Zipf-like law so a few
  /// users dominate submissions, as in real logs.
  int users = 50;
  int groups = 8;
  /// Zipf exponent for user activity weights (0 = uniform).
  double zipf_s = 0.8;
};

struct WorkloadSpec {
  std::string name;
  SimTime span = 0;          ///< log length in seconds
  std::size_t jobs = 0;      ///< number of native jobs
  /// Offered load target: sum(cpus*runtime) / (N * span).  Slightly above
  /// the achieved-utilization target for near-saturated machines.
  double offered_load = 0.7;
  ArrivalSpec arrivals;
  UserPopulation population;
  std::vector<SizeDistribution::SizeClass> size_classes;
  double size_tail_prob = 0.05;
  double size_tail_alpha = 0.9;
  int max_cpus = 0;          ///< clamp on job width (<= machine CPUs)
  Seconds runtime_median = 0;
  Seconds runtime_mean = 0;
  Seconds runtime_min = 60;
  Seconds runtime_max = 0;
  /// Size-runtime correlation: runtime is multiplied by
  /// (cpus / correlation_ref_cpus)^runtime_size_exponent.  Real capability
  /// logs pair wide jobs with long runtimes; this keeps the count-median
  /// job small & short (so most jobs start instantly) while the joint tail
  /// carries the offered load.
  double runtime_size_exponent = 0.0;
  int correlation_ref_cpus = 1;
  /// Estimate model parameters.
  std::vector<Seconds> estimate_defaults;
  std::vector<double> estimate_default_weights;
  double estimate_default_prob = 0.6;
  double estimate_pad_lo = 1.2;
  double estimate_pad_hi = 3.0;
  Seconds estimate_max = 0;
};

class Generator {
 public:
  explicit Generator(WorkloadSpec spec);

  /// Generate the native log.  Runtimes are rescaled multiplicatively after
  /// sampling so that total work equals offered_load * N * span exactly
  /// (subject to the runtime clamps), making the Table 1 utilization targets
  /// reproducible without manual tuning.
  JobLog generate(const cluster::MachineSpec& machine, Rng& rng) const;

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
};

/// Descriptive statistics of a log (reported in Table 1 benches and used by
/// calibration tests).
struct LogStats {
  std::size_t jobs = 0;
  double offered_load = 0.0;   ///< vs a given machine
  double mean_cpus = 0.0;
  double median_runtime_h = 0.0;
  double mean_runtime_h = 0.0;
  double median_estimate_h = 0.0;
  double mean_estimate_h = 0.0;
};

LogStats compute_stats(const JobLog& log, const cluster::MachineSpec& machine,
                       SimTime span);

}  // namespace istc::workload
