#include "workload/presets.hpp"

#include "util/assert.hpp"

namespace istc::workload {

using cluster::Site;

namespace {

/// Offered-load targets.  Slightly above the Table 1 achieved utilization
/// for the near-saturated machines, because a queueing system cannot turn
/// every offered CPU-second into a busy one (drainage before outages,
/// packing losses, end effects).  Tuned once against the native-only
/// simulation; see tests/integration/test_native_run.cpp.
double offered_load_for(Site site) {
  switch (site) {
    case Site::kRoss: return 0.705;
    case Site::kBlueMountain: return 0.795;
    case Site::kBluePacific: return 0.945;
  }
  ISTC_ASSERT(false);
  return 0;
}

}  // namespace

WorkloadSpec site_workload(Site site) {
  const cluster::SiteTargets targets = cluster::site_targets(site);
  WorkloadSpec w;
  w.name = cluster::site_name(site);
  w.span = cluster::site_span(site);
  w.jobs = static_cast<std::size_t>(targets.jobs);
  w.offered_load = offered_load_for(site);

  switch (site) {
    case Site::kRoss:
      // Mid-sized capability jobs; the paper notes users may submit very
      // long jobs (order of weeks) — runtime_max reaches 5 days, bounded by
      // the maintenance cadence (a job must fit between outages).
      w.size_classes = {{1, 3.0},  {2, 2.0},  {4, 2.5},  {8, 2.5},
                        {16, 2.5}, {32, 2.0}, {64, 1.5}, {128, 0.8},
                        {256, 0.4}, {512, 0.15}};
      w.size_tail_prob = 0.04;
      w.size_tail_alpha = 1.0;
      w.max_cpus = 1024;
      w.runtime_median = hours(1);
      w.runtime_mean = hours(3);
      w.runtime_size_exponent = 0.45;
      w.correlation_ref_cpus = 8;
      w.runtime_min = 60;
      w.runtime_max = days(5);
      w.estimate_defaults = {hours(4), hours(12), days(1), days(3)};
      w.estimate_default_weights = {2.0, 2.0, 1.5, 0.7};
      w.estimate_default_prob = 0.6;
      w.estimate_max = days(5);
      w.population = {.users = 40, .groups = 6, .zipf_s = 0.8};
      break;

    case Site::kBlueMountain:
      // Large ASCI capability jobs (128-CPU SGI Origin building blocks).
      // Runtime median/mean match the paper's quoted 0.8 h / 2.5 h; the
      // estimate model reproduces median 6 h / mean ~7.2 h.
      w.size_classes = {{1, 3.0},   {4, 2.0},    {8, 2.0},   {16, 2.5},
                        {32, 2.5},  {64, 2.5},   {128, 3.0}, {256, 1.2},
                        {512, 0.8}, {1024, 0.35}, {2048, 0.12}};
      w.size_tail_prob = 0.05;
      w.size_tail_alpha = 0.8;
      w.max_cpus = 4096;
      w.runtime_median = minutes(30);
      w.runtime_mean = minutes(75);
      w.runtime_size_exponent = 0.55;
      w.correlation_ref_cpus = 16;
      w.runtime_min = 60;
      w.runtime_max = days(2);
      w.estimate_defaults = {hours(6), hours(12), days(1)};
      w.estimate_default_weights = {4.0, 1.0, 0.3};
      w.estimate_default_prob = 0.65;
      w.estimate_max = days(2);
      w.population = {.users = 60, .groups = 10, .zipf_s = 0.8};
      break;

    case Site::kBluePacific:
      // Many relatively small, short jobs that "turn over quickly" (§4.3.2),
      // driving the machine to very high utilization.
      w.size_classes = {{1, 2.5},  {2, 2.0},  {4, 2.5},  {8, 2.5},
                        {16, 2.5}, {32, 2.0}, {64, 1.5}, {128, 1.0},
                        {256, 0.45}};
      w.size_tail_prob = 0.04;
      w.size_tail_alpha = 1.1;
      w.max_cpus = 512;
      w.runtime_median = minutes(25);
      w.runtime_mean = minutes(70);
      w.runtime_size_exponent = 0.35;
      w.correlation_ref_cpus = 8;
      w.runtime_min = 60;
      w.runtime_max = days(1);
      w.estimate_defaults = {hours(2), hours(4), hours(8)};
      w.estimate_default_weights = {2.0, 2.0, 1.0};
      w.estimate_default_prob = 0.6;
      w.estimate_max = hours(30);
      w.population = {.users = 120, .groups = 12, .zipf_s = 0.8};
      break;
  }

  // Arrival burstiness: identical model at all sites; per-site rates come
  // from the job-count target.
  w.arrivals = ArrivalSpec{};
  return w;
}

JobLog site_log(Site site) {
  return site_log(site, 0x15C0FFEEULL + static_cast<std::uint64_t>(site));
}

JobLog site_log(Site site, std::uint64_t seed) {
  const Generator gen(site_workload(site));
  Rng rng(seed);
  return gen.generate(cluster::machine_spec(site), rng);
}

}  // namespace istc::workload
