#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace istc::workload {

int floor_pow2(int v) {
  ISTC_EXPECTS(v >= 1);
  int p = 1;
  while (p * 2 <= v && p < (1 << 30)) p *= 2;
  return p;
}

SizeDistribution::SizeDistribution(std::vector<SizeClass> classes,
                                   double tail_prob, double tail_alpha,
                                   int max_cpus)
    : tail_prob_(tail_prob), tail_alpha_(tail_alpha), max_cpus_(max_cpus) {
  ISTC_EXPECTS(!classes.empty());
  ISTC_EXPECTS(tail_prob >= 0 && tail_prob <= 1);
  ISTC_EXPECTS(tail_alpha > 0);
  ISTC_EXPECTS(max_cpus >= 1);
  std::vector<double> weights;
  for (const auto& c : classes) {
    ISTC_EXPECTS(c.cpus >= 1 && c.cpus <= max_cpus);
    class_cpus_.push_back(c.cpus);
    weights.push_back(c.weight);
  }
  class_sampler_ = DiscreteSampler(weights);
}

int SizeDistribution::operator()(Rng& rng) const {
  if (rng.bernoulli(tail_prob_)) {
    const double v = rng.bounded_pareto(1.0, static_cast<double>(max_cpus_),
                                        tail_alpha_);
    return floor_pow2(std::clamp(static_cast<int>(v), 1, max_cpus_));
  }
  return class_cpus_[class_sampler_(rng)];
}

double SizeDistribution::common_mean() const {
  // The sampler stores cumulative probabilities; recompute weights from
  // the original cpus list is not possible, so approximate by Monte Carlo
  // in tests instead.  Here we return the unweighted mean of classes as a
  // sanity anchor only.
  double sum = 0;
  for (int c : class_cpus_) sum += static_cast<double>(c);
  return sum / static_cast<double>(class_cpus_.size());
}

RuntimeDistribution::RuntimeDistribution(Seconds median, Seconds mean,
                                         Seconds min_runtime,
                                         Seconds max_runtime)
    : mu_(std::log(static_cast<double>(median))),
      sigma_(std::sqrt(2.0 * std::log(static_cast<double>(mean) /
                                      static_cast<double>(median)))),
      min_(min_runtime),
      max_(max_runtime) {
  ISTC_EXPECTS(median > 0);
  ISTC_EXPECTS(mean >= median);  // lognormal has mean >= median
  ISTC_EXPECTS(min_runtime >= 1);
  ISTC_EXPECTS(max_runtime > min_runtime);
}

Seconds RuntimeDistribution::operator()(Rng& rng) const {
  const double r = rng.lognormal(mu_, sigma_);
  const auto s = static_cast<Seconds>(std::llround(r));
  return std::clamp(s, min_, max_);
}

EstimateModel::EstimateModel(std::vector<Seconds> defaults,
                             std::vector<double> weights, double default_prob,
                             double pad_lo, double pad_hi,
                             Seconds max_estimate)
    : defaults_(std::move(defaults)),
      default_sampler_(weights),
      default_prob_(default_prob),
      pad_lo_(pad_lo),
      pad_hi_(pad_hi),
      max_estimate_(max_estimate) {
  ISTC_EXPECTS(!defaults_.empty());
  ISTC_EXPECTS(defaults_.size() == weights.size());
  ISTC_EXPECTS(default_prob >= 0 && default_prob <= 1);
  ISTC_EXPECTS(pad_lo >= 1.0 && pad_hi >= pad_lo);
  ISTC_EXPECTS(max_estimate > 0);
}

Seconds EstimateModel::operator()(Seconds runtime, Rng& rng) const {
  Seconds est;
  if (rng.bernoulli(default_prob_)) {
    est = defaults_[default_sampler_(rng)];
  } else {
    const double padded =
        static_cast<double>(runtime) * rng.uniform(pad_lo_, pad_hi_);
    constexpr Seconds kGranule = 15 * kSecondsPerMinute;
    est = (static_cast<Seconds>(padded) / kGranule + 1) * kGranule;
  }
  return std::clamp(est, runtime, std::max(runtime, max_estimate_));
}

}  // namespace istc::workload
