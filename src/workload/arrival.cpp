#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace istc::workload {

ArrivalProcess::ArrivalProcess(ArrivalSpec spec) : spec_(spec) {
  ISTC_EXPECTS(spec_.calm_mean > 0);
  ISTC_EXPECTS(spec_.burst_mean > 0);
  ISTC_EXPECTS(spec_.burst_factor >= 1.0);
  ISTC_EXPECTS(spec_.diurnal_amplitude >= 0 && spec_.diurnal_amplitude < 1);
  ISTC_EXPECTS(spec_.weekend_factor > 0 && spec_.weekend_factor <= 1);
}

double ArrivalProcess::modulation(SimTime t) const {
  const double hour =
      static_cast<double>(t % kSecondsPerDay) / 3600.0;
  const double phase =
      2.0 * std::numbers::pi * (hour - spec_.diurnal_peak_hour) / 24.0;
  double f = 1.0 + spec_.diurnal_amplitude * std::cos(phase);
  const auto day = static_cast<int>(day_index(t) % 7);
  if (day >= 5) f *= spec_.weekend_factor;  // log starts on a Monday
  return f;
}

std::vector<SimTime> ArrivalProcess::generate_raw(SimTime span,
                                                  double calm_rate,
                                                  Rng& rng) const {
  ISTC_EXPECTS(span > 0);
  ISTC_EXPECTS(calm_rate > 0);
  std::vector<SimTime> out;
  // Thinning: candidate stream at the peak possible rate; accept with
  // probability (state_rate * modulation) / peak.
  const double peak = calm_rate * spec_.burst_factor *
                      (1.0 + spec_.diurnal_amplitude);
  double t = 0.0;
  bool burst = false;
  // Next state flip, exponential sojourns.
  double flip_at = rng.exponential(static_cast<double>(spec_.calm_mean));
  const auto dspan = static_cast<double>(span);
  while (true) {
    t += rng.exponential(1.0 / peak);
    if (t >= dspan) break;
    while (t >= flip_at) {
      burst = !burst;
      flip_at += rng.exponential(static_cast<double>(
          burst ? spec_.burst_mean : spec_.calm_mean));
    }
    const double rate = calm_rate * (burst ? spec_.burst_factor : 1.0) *
                        modulation(static_cast<SimTime>(t));
    if (rng.uniform() < rate / peak) {
      out.push_back(static_cast<SimTime>(t));
    }
  }
  return out;
}

std::vector<SimTime> ArrivalProcess::generate(SimTime span,
                                              std::size_t target,
                                              Rng& rng) const {
  ISTC_EXPECTS(target > 0);
  // Start from the naive homogeneous estimate and correct multiplicatively;
  // the modulation has mean ~1 so one or two rounds suffice.
  double calm_rate = static_cast<double>(target) / static_cast<double>(span);
  std::vector<SimTime> arrivals;
  for (int attempt = 0; attempt < 10; ++attempt) {
    arrivals = generate_raw(span, calm_rate, rng);
    if (arrivals.size() >= target) break;
    const double got = std::max<double>(1.0, static_cast<double>(arrivals.size()));
    calm_rate *= 1.1 * static_cast<double>(target) / got;
  }
  ISTC_ENSURES(arrivals.size() >= target);
  // Thin uniformly down to the exact target with selection sampling
  // (Knuth's Algorithm S): O(n), order-preserving, burst structure intact.
  if (arrivals.size() > target) {
    std::vector<SimTime> kept;
    kept.reserve(target);
    std::size_t remaining = arrivals.size();
    std::size_t needed = target;
    for (SimTime a : arrivals) {
      if (needed > 0 &&
          rng.uniform() < static_cast<double>(needed) /
                              static_cast<double>(remaining)) {
        kept.push_back(a);
        --needed;
      }
      --remaining;
    }
    arrivals = std::move(kept);
  }
  ISTC_ENSURES(arrivals.size() == target);
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

}  // namespace istc::workload
