#include "workload/swf.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace istc::workload {

namespace {

constexpr int kSwfFields = 18;

SwfLineOutcome error_outcome(std::string message) {
  SwfLineOutcome out;
  out.status = SwfLineOutcome::Status::kError;
  out.error = std::move(message);
  return out;
}

}  // namespace

SwfLineOutcome parse_swf_line(std::string_view line,
                              const SwfReadOptions& opts) {
  std::string body(line);
  const auto semi = body.find(';');
  if (semi != std::string::npos) body.resize(semi);
  std::istringstream fields(body);
  std::array<double, kSwfFields> f{};
  int n = 0;
  double v;
  while (n < kSwfFields && fields >> v) f[static_cast<std::size_t>(n++)] = v;
  SwfLineOutcome out;
  if (n == 0) {
    // Distinguish "nothing there" from "something unparseable": leading
    // garbage on a non-comment line is an error, not silence.
    fields.clear();
    std::string token;
    if (fields >> token) return error_outcome("unparseable field: " + token);
    out.status = SwfLineOutcome::Status::kBlank;
    return out;
  }
  if (n < 9) {
    // A truncated record (connection cut mid-line, partial write).
    return error_outcome("expected >=9 fields, got " + std::to_string(n));
  }
  Job j;
  j.klass = JobClass::kNative;
  j.submit = static_cast<SimTime>(f[1]);
  j.runtime = static_cast<Seconds>(f[3]);
  const auto alloc = static_cast<int>(f[4]);
  const auto requested = static_cast<int>(f[7]);
  j.cpus = alloc > 0 ? alloc : requested;
  j.estimate = static_cast<Seconds>(f[8]);
  j.user = n > 11 && f[11] >= 0 ? static_cast<UserId>(f[11]) : UserId{0};
  j.group = n > 12 && f[12] >= 0 ? static_cast<GroupId>(f[12]) : GroupId{0};

  if (j.runtime <= 0 || j.cpus <= 0 || j.submit < 0) {
    if (opts.skip_invalid) {
      out.status = SwfLineOutcome::Status::kSkipped;
      return out;
    }
    return error_outcome("invalid job record");
  }
  if (j.estimate < j.runtime) {
    if (!opts.clamp_estimates) return error_outcome("estimate below runtime");
    j.estimate = j.runtime;
  }
  out.status = SwfLineOutcome::Status::kJob;
  out.job = j;
  return out;
}

JobLog read_swf(std::istream& in, const SwfReadOptions& opts) {
  std::vector<Job> jobs;
  std::string line;
  std::size_t lineno = 0;
  SimTime first_submit = -1;
  while (std::getline(in, line)) {
    ++lineno;
    SwfLineOutcome out = parse_swf_line(line, opts);
    switch (out.status) {
      case SwfLineOutcome::Status::kBlank:
      case SwfLineOutcome::Status::kSkipped:
        continue;
      case SwfLineOutcome::Status::kError:
        throw std::runtime_error("SWF line " + std::to_string(lineno) + ": " +
                                 out.error);
      case SwfLineOutcome::Status::kJob:
        break;
    }
    Job j = out.job;
    j.id = static_cast<JobId>(jobs.size());
    if (first_submit < 0) first_submit = j.submit;
    jobs.push_back(j);
  }
  if (opts.rebase_time && first_submit > 0) {
    for (auto& j : jobs) j.submit -= first_submit;
  }
  return JobLog(std::move(jobs));
}

JobLog read_swf_file(const std::string& path, const SwfReadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_swf_file: cannot open " + path);
  return read_swf(in, opts);
}

void write_swf(std::ostream& out, const JobLog& log,
               const std::string& header_comment) {
  if (!header_comment.empty()) {
    std::istringstream lines(header_comment);
    std::string l;
    while (std::getline(lines, l)) out << "; " << l << '\n';
  }
  for (const auto& j : log.jobs()) {
    // job submit wait run procs avgcpu mem reqprocs reqtime reqmem status
    // user group exe queue partition precede think
    out << (j.id + 1) << ' ' << j.submit << ' ' << -1 << ' ' << j.runtime
        << ' ' << j.cpus << ' ' << -1 << ' ' << -1 << ' ' << j.cpus << ' '
        << j.estimate << ' ' << -1 << ' ' << 1 << ' ' << j.user << ' '
        << j.group << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' '
        << -1 << '\n';
  }
}

void write_swf_file(const std::string& path, const JobLog& log,
                    const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_swf_file: cannot open " + path);
  write_swf(out, log, header_comment);
}

}  // namespace istc::workload
