#include "workload/swf.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace istc::workload {

namespace {

constexpr int kSwfFields = 18;

}  // namespace

JobLog read_swf(std::istream& in, const SwfReadOptions& opts) {
  std::vector<Job> jobs;
  std::string line;
  std::size_t lineno = 0;
  SimTime first_submit = -1;
  while (std::getline(in, line)) {
    ++lineno;
    const auto semi = line.find(';');
    if (semi != std::string::npos) line.resize(semi);
    std::istringstream fields(line);
    std::array<double, kSwfFields> f{};
    int n = 0;
    double v;
    while (n < kSwfFields && fields >> v) f[static_cast<std::size_t>(n++)] = v;
    if (n == 0) continue;  // blank / comment-only line
    if (n < 9) {
      throw std::runtime_error("SWF line " + std::to_string(lineno) +
                               ": expected >=9 fields, got " +
                               std::to_string(n));
    }
    Job j;
    j.id = static_cast<JobId>(jobs.size());
    j.klass = JobClass::kNative;
    j.submit = static_cast<SimTime>(f[1]);
    j.runtime = static_cast<Seconds>(f[3]);
    const auto alloc = static_cast<int>(f[4]);
    const auto requested = static_cast<int>(f[7]);
    j.cpus = alloc > 0 ? alloc : requested;
    j.estimate = static_cast<Seconds>(f[8]);
    j.user = n > 11 && f[11] >= 0 ? static_cast<UserId>(f[11]) : UserId{0};
    j.group = n > 12 && f[12] >= 0 ? static_cast<GroupId>(f[12]) : GroupId{0};

    const bool invalid = j.runtime <= 0 || j.cpus <= 0 || j.submit < 0;
    if (invalid) {
      if (opts.skip_invalid) continue;
      throw std::runtime_error("SWF line " + std::to_string(lineno) +
                               ": invalid job record");
    }
    if (j.estimate < j.runtime) {
      if (!opts.clamp_estimates) {
        throw std::runtime_error("SWF line " + std::to_string(lineno) +
                                 ": estimate below runtime");
      }
      j.estimate = j.runtime;
    }
    if (first_submit < 0) first_submit = j.submit;
    jobs.push_back(j);
  }
  if (opts.rebase_time && first_submit > 0) {
    for (auto& j : jobs) j.submit -= first_submit;
  }
  return JobLog(std::move(jobs));
}

JobLog read_swf_file(const std::string& path, const SwfReadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_swf_file: cannot open " + path);
  return read_swf(in, opts);
}

void write_swf(std::ostream& out, const JobLog& log,
               const std::string& header_comment) {
  if (!header_comment.empty()) {
    std::istringstream lines(header_comment);
    std::string l;
    while (std::getline(lines, l)) out << "; " << l << '\n';
  }
  for (const auto& j : log.jobs()) {
    // job submit wait run procs avgcpu mem reqprocs reqtime reqmem status
    // user group exe queue partition precede think
    out << (j.id + 1) << ' ' << j.submit << ' ' << -1 << ' ' << j.runtime
        << ' ' << j.cpus << ' ' << -1 << ' ' << -1 << ' ' << j.cpus << ' '
        << j.estimate << ' ' << -1 << ' ' << 1 << ' ' << j.user << ' '
        << j.group << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' '
        << -1 << '\n';
  }
}

void write_swf_file(const std::string& path, const JobLog& log,
                    const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_swf_file: cannot open " + path);
  write_swf(out, log, header_comment);
}

}  // namespace istc::workload
