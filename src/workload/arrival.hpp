#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

/// \file arrival.hpp
/// Bursty job arrivals.
///
/// The paper cites long-term correlated, bursty submissions as one of the
/// two drivers of erratic utilization.  We model a 2-state Markov-modulated
/// Poisson process (calm/burst) with diurnal and weekly rate modulation, and
/// generate by thinning against the peak rate, which keeps the sequence
/// exact for the time-varying intensity.

namespace istc::workload {

struct ArrivalSpec {
  /// Mean sojourn in the calm state.
  Seconds calm_mean = 8 * kSecondsPerHour;
  /// Mean sojourn in the burst state.
  Seconds burst_mean = 90 * kSecondsPerMinute;
  /// Burst-state rate multiplier over the calm rate.
  double burst_factor = 6.0;
  /// Peak-to-trough amplitude of the diurnal cycle in [0, 1).
  double diurnal_amplitude = 0.6;
  /// Hour of day at which submissions peak.
  double diurnal_peak_hour = 14.0;
  /// Weekend rate multiplier (Sat/Sun assuming the log starts on Monday).
  double weekend_factor = 0.45;
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec);

  /// Deterministic diurnal*weekly modulation factor at time t (mean ~1).
  double modulation(SimTime t) const;

  /// Generate arrival times in [0, span) with a base calm rate such that
  /// the expected count is roughly `target`; then thin/trim to *exactly*
  /// `target` arrivals.  Sorted ascending.
  std::vector<SimTime> generate(SimTime span, std::size_t target,
                                Rng& rng) const;

  const ArrivalSpec& spec() const { return spec_; }

 private:
  /// One raw MMPP pass at the given calm-state rate (arrivals/second).
  std::vector<SimTime> generate_raw(SimTime span, double calm_rate,
                                    Rng& rng) const;

  ArrivalSpec spec_;
};

}  // namespace istc::workload
