#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

/// \file distributions.hpp
/// The marginal distributions of the synthetic workload.
///
/// The paper attributes interstices to two properties of real logs:
/// fat-tailed CPU-size marginals (jobs demand power-of-two CPU counts, with
/// rare huge jobs) and gross user runtime overestimates (median estimate
/// 6 h vs median actual 0.8 h on Blue Mountain).  Each knob here exists to
/// reproduce one of those properties.

namespace istc::workload {

/// Discrete distribution over power-of-two CPU counts.
/// A weighted set of "common" size classes plus a Pareto tail reaching the
/// largest size, producing the fat-tailed marginals of real logs.
class SizeDistribution {
 public:
  struct SizeClass {
    int cpus = 1;
    double weight = 1.0;
  };

  /// \param classes      common size classes with weights (need not be
  ///                     sorted; weights are normalized)
  /// \param tail_prob    probability of drawing from the Pareto tail instead
  /// \param tail_alpha   tail shape (smaller = fatter)
  /// \param max_cpus     tail values are clamped to [1, max_cpus] and
  ///                     rounded down to a power of two
  SizeDistribution(std::vector<SizeClass> classes, double tail_prob,
                   double tail_alpha, int max_cpus);

  int operator()(Rng& rng) const;

  int max_cpus() const { return max_cpus_; }

  /// Analytic mean of the common-class part (tail excluded); used by tests.
  double common_mean() const;

 private:
  std::vector<int> class_cpus_;
  DiscreteSampler class_sampler_;
  double tail_prob_;
  double tail_alpha_;
  int max_cpus_;
};

/// Round down to the nearest power of two (>= 1).
int floor_pow2(int v);

/// Lognormal runtime with clamping.  Parameterized directly by the target
/// median and mean (the paper quotes those), which determine (mu, sigma):
///   median = exp(mu)          => mu    = ln(median)
///   mean   = exp(mu + s^2/2)  => sigma = sqrt(2 ln(mean/median))
class RuntimeDistribution {
 public:
  RuntimeDistribution(Seconds median, Seconds mean, Seconds min_runtime,
                      Seconds max_runtime);

  Seconds operator()(Rng& rng) const;

  Seconds min_runtime() const { return min_; }
  Seconds max_runtime() const { return max_; }
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
  Seconds min_;
  Seconds max_;
};

/// The user runtime-estimate model.
///
/// With probability `default_prob` the user submits a site default limit
/// (drawn from `defaults`, independent of the actual runtime — this is what
/// makes estimates "gross overestimates"); otherwise the user guesses
/// runtime * U(pad_lo, pad_hi) rounded up to 15-minute granularity.
/// Estimates are clamped to [runtime, max_estimate] so a job is never
/// killed at its limit.
class EstimateModel {
 public:
  EstimateModel(std::vector<Seconds> defaults, std::vector<double> weights,
                double default_prob, double pad_lo, double pad_hi,
                Seconds max_estimate);

  Seconds operator()(Seconds runtime, Rng& rng) const;

  Seconds max_estimate() const { return max_estimate_; }

 private:
  std::vector<Seconds> defaults_;
  DiscreteSampler default_sampler_;
  double default_prob_;
  double pad_lo_;
  double pad_hi_;
  Seconds max_estimate_;
};

}  // namespace istc::workload
