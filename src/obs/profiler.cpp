#include "obs/profiler.hpp"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>

namespace istc::obs {

namespace {

constexpr int kStages = static_cast<int>(Stage::kCount);

constexpr const char* kStageLabels[kStages] = {
    "sched_setup",    "sched_priority", "sched_dispatch", "sched_backfill",
    "sched_gate",     "sweep_prefix",   "sweep_fork",     "sweep_arm",
    "epoch_advance",  "epoch_boundary", "ingest_apply",   "ingest_rewind",
    "query_capture",  "query_verdict",
};

struct ThreadProfile {
  std::array<metrics::Log2Histogram, kStages> hist;
};

struct ProfileRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadProfile>> threads;
};

ProfileRegistry& registry() {
  static ProfileRegistry* r = new ProfileRegistry();
  return *r;
}

std::atomic<std::uint64_t> g_reset_epoch{0};

ThreadProfile& my_profile() {
  struct Slot {
    std::shared_ptr<ThreadProfile> profile;
    std::uint64_t epoch = 0;
  };
  thread_local Slot slot;
  const std::uint64_t epoch = g_reset_epoch.load(std::memory_order_acquire);
  if (!slot.profile || slot.epoch != epoch) {
    slot.profile = std::make_shared<ThreadProfile>();
    slot.epoch = epoch;
    ProfileRegistry& reg = registry();
    std::lock_guard lk(reg.mu);
    reg.threads.push_back(slot.profile);
  }
  return *slot.profile;
}

}  // namespace

const char* stage_label(Stage s) {
  const int i = static_cast<int>(s);
  return (i >= 0 && i < kStages) ? kStageLabels[i] : "?";
}

void observe_stage_us(Stage s, std::uint64_t us) {
  if (!enabled()) return;
  my_profile().hist[static_cast<std::size_t>(s)].add(us);
}

ScopedTimer::ScopedTimer(Stage s) : stage_(s), active_(enabled()) {
  if (active_) start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  my_profile().hist[static_cast<std::size_t>(stage_)].add(
      (now_ns() - start_ns_) / 1000);
}

metrics::Log2Histogram stage_histogram(Stage s) {
  metrics::Log2Histogram merged;
  ProfileRegistry& reg = registry();
  std::lock_guard lk(reg.mu);
  for (const auto& t : reg.threads) {
    merged.merge(t->hist[static_cast<std::size_t>(s)]);
  }
  return merged;
}

std::vector<StageProfile> profile_snapshot() {
  std::array<metrics::Log2Histogram, kStages> merged;
  {
    ProfileRegistry& reg = registry();
    std::lock_guard lk(reg.mu);
    for (const auto& t : reg.threads) {
      for (int s = 0; s < kStages; ++s) merged[s].merge(t->hist[s]);
    }
  }
  std::vector<StageProfile> out;
  for (int s = 0; s < kStages; ++s) {
    if (merged[s].total() == 0) continue;
    StageProfile p;
    p.stage = static_cast<Stage>(s);
    p.label = kStageLabels[s];
    p.count = merged[s].total();
    p.total_us = merged[s].sum();
    p.p50_us = merged[s].quantile(0.50);
    p.p90_us = merged[s].quantile(0.90);
    p.p99_us = merged[s].quantile(0.99);
    out.push_back(p);
  }
  return out;
}

void reset_profiles() {
  ProfileRegistry& reg = registry();
  std::lock_guard lk(reg.mu);
  reg.threads.clear();
  g_reset_epoch.fetch_add(1, std::memory_order_release);
}

}  // namespace istc::obs
