#include "obs/exposition.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace istc::obs {

namespace {

/// Prometheus floats: plain shortest-ish representation; integers stay
/// integral so counters read naturally.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void PrometheusWriter::family(std::string_view name, std::string_view type,
                              std::string_view help) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PrometheusWriter::sample(std::string_view name, double value) {
  out_ += name;
  out_ += ' ';
  out_ += format_value(value);
  out_ += '\n';
}

void PrometheusWriter::sample(std::string_view name, std::string_view labels,
                              double value) {
  out_ += name;
  out_ += '{';
  out_ += labels;
  out_ += "} ";
  out_ += format_value(value);
  out_ += '\n';
}

void PrometheusWriter::summary(std::string_view name, std::string_view help,
                               const double* quantiles, const double* values,
                               int n, double sum, std::uint64_t count) {
  family(name, "summary", help);
  for (int i = 0; i < n; ++i) {
    char label[48];
    std::snprintf(label, sizeof label, "quantile=\"%g\"", quantiles[i]);
    sample(name, label, values[i]);
  }
  sample(std::string(name) + "_sum", sum);
  sample(std::string(name) + "_count", static_cast<double>(count));
}

std::string PrometheusWriter::sanitize(std::string_view name) {
  std::string out = "istc_";
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '_' || c == ':') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

}  // namespace istc::obs
