#include "obs/obs.hpp"

#include "obs/profiler.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace istc::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span{1};
std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::size_t> g_ring_capacity{16384};

/// One thread's span ring.  The owning thread writes without locks; the
/// atomic pushed counter is the only field other threads may read while
/// the owner is live (export walks the slots only after quiesce).
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity) : slots(capacity) {}
  std::vector<SpanRecord> slots;
  std::atomic<std::uint64_t> pushed{0};

  void push(const SpanRecord& r) {
    const std::uint64_t n = pushed.load(std::memory_order_relaxed);
    slots[n % slots.size()] = r;
    pushed.store(n + 1, std::memory_order_release);
  }
};

/// Registry of every ring ever handed to a thread.  shared_ptr keeps a
/// ring alive past its thread's death so shutdown-time export still sees
/// spans from short-lived pool workers.
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

/// Epoch bumped by reset(): thread-local ring handles from before the
/// reset re-register instead of writing into a detached ring.
std::atomic<std::uint64_t> g_reset_epoch{0};

struct ThreadSlot {
  std::shared_ptr<ThreadRing> ring;
  std::uint64_t epoch = 0;
};

ThreadRing& my_ring() {
  thread_local ThreadSlot slot;
  const std::uint64_t epoch = g_reset_epoch.load(std::memory_order_acquire);
  if (!slot.ring || slot.epoch != epoch) {
    slot.ring = std::make_shared<ThreadRing>(
        g_ring_capacity.load(std::memory_order_relaxed));
    slot.epoch = epoch;
    Registry& reg = registry();
    std::lock_guard lk(reg.mu);
    reg.rings.push_back(slot.ring);
  }
  return *slot.ring;
}

thread_local TraceContext t_context;

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

TraceContext current_context() { return t_context; }

ScopedContext::ScopedContext(TraceContext ctx)
    : saved_(t_context), active_(enabled()) {
  if (active_) t_context = ctx;
}

ScopedContext::~ScopedContext() {
  if (active_) t_context = saved_;
}

ScopedSpan::ScopedSpan(const char* name, std::int64_t arg)
    : name_(name), arg_(arg) {
  if (!enabled()) return;
  active_ = true;
  saved_ = t_context;
  mine_.trace = saved_.trace != 0
                    ? saved_.trace
                    : g_next_trace.fetch_add(1, std::memory_order_relaxed);
  mine_.span = g_next_span.fetch_add(1, std::memory_order_relaxed);
  t_context = mine_;
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  SpanRecord r;
  r.name = name_;
  r.trace = mine_.trace;
  r.id = mine_.span;
  r.parent = saved_.span;
  r.start_ns = start_ns_;
  r.end_ns = now_ns();
  r.arg = arg_;
  my_ring().push(r);
  t_context = saved_;
}

TraceContext ScopedSpan::context() const {
  return active_ ? mine_ : t_context;
}

RecorderStats recorder_stats() {
  RecorderStats s;
  Registry& reg = registry();
  std::lock_guard lk(reg.mu);
  s.threads = reg.rings.size();
  s.ring_capacity = g_ring_capacity.load(std::memory_order_relaxed);
  for (const auto& ring : reg.rings) {
    const std::uint64_t pushed = ring->pushed.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    s.recorded += pushed;
    if (pushed > cap) s.dropped += pushed - cap;
  }
  return s;
}

void set_ring_capacity(std::size_t records) {
  g_ring_capacity.store(records > 0 ? records : 1, std::memory_order_relaxed);
}

void reset() {
  {
    Registry& reg = registry();
    std::lock_guard lk(reg.mu);
    reg.rings.clear();
    g_reset_epoch.fetch_add(1, std::memory_order_release);
  }
  reset_profiles();
}

void write_chrome_spans(std::ostream& out) {
  // Snapshot the ring set under the lock; slot contents are read without
  // one, which is only sound because export runs on quiesced writers.
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    Registry& reg = registry();
    std::lock_guard lk(reg.mu);
    rings = reg.rings;
  }
  out << "[";
  bool first = true;
  const auto emit = [&](const std::string& json) {
    if (!first) out << ",\n";
    first = false;
    out << json;
  };
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"istc obs\"}}");
  char buf[512];
  for (std::size_t t = 0; t < rings.size(); ++t) {
    const ThreadRing& ring = *rings[t];
    const std::uint64_t pushed = ring.pushed.load(std::memory_order_acquire);
    const std::uint64_t cap = ring.slots.size();
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"obs-thread-%zu\"}}",
                  t + 1, t + 1);
    emit(buf);
    const std::uint64_t lo = pushed > cap ? pushed - cap : 0;
    for (std::uint64_t i = lo; i < pushed; ++i) {
      const SpanRecord& r = ring.slots[i % cap];
      std::snprintf(
          buf, sizeof buf,
          "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%zu,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace\":%" PRIu64
          ",\"span\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"arg\":%" PRId64
          "}}",
          r.name != nullptr ? r.name : "?", t + 1,
          static_cast<double>(r.start_ns) / 1000.0,
          static_cast<double>(r.end_ns - r.start_ns) / 1000.0, r.trace, r.id,
          r.parent, r.arg);
      emit(buf);
    }
  }
  out << "]\n";
}

void write_chrome_spans_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_chrome_spans(out);
}

}  // namespace istc::obs
